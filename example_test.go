package setupsched_test

import (
	"context"
	"fmt"
	"log"

	"setupsched"
)

// ExampleNewSolver shows the prepare-once/solve-many pattern with
// functional options: the Solver validates the instance and runs the
// shared O(n) preparation a single time, then serves any number of
// solves, dual tests and variants.
func ExampleNewSolver() {
	in := &setupsched.Instance{
		M: 3,
		Classes: []setupsched.Class{
			{Setup: 4, Jobs: []int64{7, 2, 5}},
			{Setup: 1, Jobs: []int64{3, 3}},
		},
	}
	solver, err := setupsched.NewSolver(in)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// The same prepared Solver serves different algorithms and options.
	res, err := solver.Solve(ctx, setupsched.NonPreemptive,
		setupsched.WithAlgorithm(setupsched.EpsilonSearch),
		setupsched.WithEpsilon(1e-3),
		setupsched.WithProbeLimit(64),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("eps-search makespan:", res.Makespan)
	fmt.Println("trivial lower bound:", solver.LowerBound(setupsched.NonPreemptive))
	// Output:
	// eps-search makespan: 11
	// trivial lower bound: 11
}

// ExampleSolver_Solve solves one instance with the default exact
// 3/2-approximation and reads the certified result fields.
func ExampleSolver_Solve() {
	in := &setupsched.Instance{
		M: 3,
		Classes: []setupsched.Class{
			{Setup: 4, Jobs: []int64{7, 2, 5}},
			{Setup: 1, Jobs: []int64{3, 3}},
		},
	}
	solver, err := setupsched.NewSolver(in)
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), setupsched.NonPreemptive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("makespan:", res.Makespan)
	fmt.Println("lower bound:", res.LowerBound)
	fmt.Println("ratio:", res.Ratio)
	// Output:
	// makespan: 11
	// lower bound: 11
	// ratio: 1
}

// ExampleSolver_SolveAll fans several (variant, algorithm) combinations
// out concurrently over one shared preparation.  Results arrive in the
// requested order no matter which run finishes first, and are
// bit-identical to calling Solve once per run.
func ExampleSolver_SolveAll() {
	in := &setupsched.Instance{
		M: 2,
		Classes: []setupsched.Class{
			{Setup: 2, Jobs: []int64{4, 4}},
			{Setup: 3, Jobs: []int64{6}},
		},
	}
	solver, err := setupsched.NewSolver(in)
	if err != nil {
		log.Fatal(err)
	}
	results, err := solver.SolveAll(context.Background(),
		setupsched.WithRuns(
			setupsched.Run{Variant: setupsched.Splittable, Algorithm: setupsched.Exact32},
			setupsched.Run{Variant: setupsched.Preemptive, Algorithm: setupsched.Exact32},
			setupsched.Run{Variant: setupsched.NonPreemptive, Algorithm: setupsched.Exact32},
		),
		setupsched.WithParallelism(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, rr := range results {
		if rr.Err != nil {
			log.Fatal(rr.Err)
		}
		fmt.Printf("%s: makespan %s (certified >= %s)\n", rr.Run, rr.Result.Makespan, rr.Result.LowerBound)
	}
	// Output:
	// splittable/3/2-approximation: makespan 57/4 (certified >= 19/2)
	// preemptive/3/2-approximation: makespan 55/4 (certified >= 19/2)
	// nonpreemptive/3/2-approximation: makespan 10 (certified >= 10)
}
