package setupsched

import (
	"context"
	"testing"

	"setupsched/sched"
)

// fuzzInstance mirrors the decoder in sched/fuzz_test.go: any byte stream
// yields a small valid instance, so the fuzzer explores structure rather
// than parser acceptance.
func fuzzSolveInstance(m int64, data []byte) *Instance {
	next := func() int64 {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return int64(b)
	}
	abs := m
	if abs < 0 {
		abs = -abs
	}
	if abs < 0 { // math.MinInt64
		abs = 0
	}
	in := &Instance{M: 1 + abs%5}
	classes := 1 + int(next())%5
	for c := 0; c < classes; c++ {
		cl := Class{Setup: next() % 24}
		jobs := 1 + int(next())%4
		for j := 0; j < jobs; j++ {
			cl.Jobs = append(cl.Jobs, 1+next()%32)
		}
		in.Classes = append(in.Classes, cl)
	}
	return in
}

func cloneSchedule(s *Schedule) *Schedule {
	out := &Schedule{Variant: s.Variant, T: s.T, Runs: make([]sched.MachineRun, len(s.Runs))}
	for i := range s.Runs {
		out.Runs[i] = sched.MachineRun{
			Count: s.Runs[i].Count,
			Slots: append([]sched.Slot(nil), s.Runs[i].Slots...),
		}
	}
	return out
}

// mutateResult corrupts a copy of the result in a way that is invalid by
// construction.  kind selects the corruption, idx the target slot; the
// second return is false when the corruption does not apply to this
// result (nothing was changed).
func mutateResult(res *Result, kind uint8, idx uint16) (*Result, bool) {
	mut := *res
	mut.Schedule = cloneSchedule(res.Schedule)
	switch kind % 4 {
	case 0: // lie about the makespan
		mut.Makespan = mut.Makespan.AddInt(1)
		return &mut, true
	case 1: // claim a lower bound above the makespan
		mut.LowerBound = mut.Makespan.AddInt(1)
		return &mut, true
	case 2: // drop one job piece: its work can no longer be covered
		target := int(idx)
		for i := range mut.Schedule.Runs {
			slots := mut.Schedule.Runs[i].Slots
			for j := range slots {
				if slots[j].Kind != sched.SlotJob {
					continue
				}
				if target > 0 {
					target--
					continue
				}
				mut.Schedule.Runs[i].Slots = append(slots[:j:j], slots[j+1:]...)
				// The dropped piece may have carried the makespan; keep the
				// stated makespan consistent so the work check, not the
				// makespan mismatch, is what must catch this.
				mut.Makespan = mut.Schedule.Makespan()
				return &mut, true
			}
		}
		return nil, false
	default: // stretch one job piece: overwork and/or overlap
		target := int(idx)
		for i := range mut.Schedule.Runs {
			slots := mut.Schedule.Runs[i].Slots
			for j := range slots {
				if slots[j].Kind != sched.SlotJob {
					continue
				}
				if target > 0 {
					target--
					continue
				}
				slots[j].End = slots[j].End.AddInt(1)
				mut.Makespan = mut.Schedule.Makespan()
				return &mut, true
			}
		}
		return nil, false
	}
}

// FuzzVerifySchedule solves arbitrary small instances under all three
// variants and checks that Verify
//
//   - accepts the solver's result after it has been remapped through the
//     canonical index maps and back (the translation the serving layer
//     performs on every cache hit), and
//   - rejects every corrupted result: a lied-about makespan, an
//     impossible lower bound, a dropped job piece, a stretched job piece.
func FuzzVerifySchedule(f *testing.F) {
	f.Add(int64(2), uint8(0), uint8(0), uint16(0), []byte{2, 3, 2, 7, 9})
	f.Add(int64(3), uint8(1), uint8(2), uint16(1), []byte{1, 0, 1, 16})
	f.Add(int64(1), uint8(2), uint8(3), uint16(5), []byte{4, 4, 2, 2, 2, 8, 1, 1})
	f.Fuzz(func(t *testing.T, m int64, variant, mutKind uint8, mutIdx uint16, data []byte) {
		in := fuzzSolveInstance(m, data)
		if err := in.Validate(); err != nil {
			t.Fatalf("decoder produced invalid instance: %v", err)
		}
		v := sched.Variants[int(variant)%len(sched.Variants)]
		solver, err := NewSolver(in)
		if err != nil {
			t.Fatal(err)
		}
		res, err := solver.Solve(context.Background(), v)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if err := Verify(in, v, res); err != nil {
			t.Fatalf("%v: Verify rejected the solver's own result: %v", v, err)
		}

		// The canonical remap round trip must stay verifiable.
		c := in.Canonicalize()
		remapped := *res
		remapped.Schedule = c.FromCanonical(c.ToCanonical(res.Schedule))
		if err := Verify(in, v, &remapped); err != nil {
			t.Fatalf("%v: Verify rejected the canonically remapped result: %v", v, err)
		}

		// Every applicable corruption must be rejected.
		if mut, ok := mutateResult(res, mutKind, mutIdx); ok {
			if err := Verify(in, v, mut); err == nil {
				t.Fatalf("%v: Verify accepted corrupted result (mutation %d, idx %d)",
					v, mutKind%4, mutIdx)
			}
		}
	})
}
