// Package shard is the distributed state tier of the serving stack: a
// pluggable Store seam behind serve's per-process state (result cache,
// prepared solvers, incremental sessions) and a deterministic
// consistent-hash Ring that assigns every routing key — instance
// fingerprints for solves, session ids for sessions — to exactly one
// shard process.
//
// The split follows the paper's economics: Deppert & Jansen's
// near-linear solvers (SPAA 2019) make one solve so cheap that a single
// process stops being compute-bound; the ceiling is its in-memory state.
// Because the serving layer keys all of that state by the instance's
// canonical fingerprint (the batch-affinity structure of Mäcker et al.,
// arXiv:1504.07066: permutation-equivalent workloads hit the same
// entry), routing a key to a fixed owner keeps every cache exactly as
// effective as it was on one box — shard-by-fingerprint is not just
// load-spreading, it is cache-affinity-preserving.
//
// # The Store seam
//
// Store is deliberately minimal: a keyed recency store (the mechanics of
// an LRU without its policy).  The owning subsystem layers semantics on
// top — capacity eviction, TTL sweeps, hit/miss counters, fingerprint
// collision checks — so those behaviors stay identical whatever the
// backing implementation.  Mem is the first implementation (the
// in-process store every schedserve shard runs today); an external store
// speaking the same interface slots in without touching serve.
//
// Store implementations must be safe under the owning subsystem's
// serialization: serve guards each store with its own mutex and never
// issues concurrent calls to one Store, so Mem carries no lock of its
// own.  An inherently concurrent backend is free to be internally
// synchronized as well — the contract is only that the serialized call
// sequence behaves like a single-threaded recency store.
//
// # The Ring
//
// Ring is a classic consistent-hash ring with virtual nodes.  It is a
// pure function of (replicas, shard set): every process that builds a
// ring from the same topology — the schedlb front tier, a load-test
// driver predicting owners, an operator's migration script — computes
// identical ownership, with no coordination channel.  Topology changes
// are deterministic rebalances: adding one shard to k moves roughly a
// 1/(k+1) fraction of keys (only onto the new shard), removing one moves
// only the removed shard's keys.  Rebalance enumerates exactly which
// keys move, which is what session draining/migration executes (see
// serve's drain endpoint and the README's "Scaling out" section).
package shard

// Kind identifies which serving-tier state a Store holds.  A Factory
// receives it so one backend can make per-kind choices (serialization
// format, namespace, capacity policy) without serve knowing.
type Kind int

const (
	// Results is the solved-result cache, keyed by
	// (fingerprint, variant, algorithm, epsilon).
	Results Kind = iota
	// Solvers is the prepared-solver cache, keyed by fingerprint.
	Solvers
	// Sessions is the incremental solve session registry, keyed by
	// session id.
	Sessions
)

// String names the kind for diagnostics and metric labels.
func (k Kind) String() string {
	switch k {
	case Results:
		return "results"
	case Solvers:
		return "solvers"
	case Sessions:
		return "sessions"
	}
	return "unknown"
}

// Store is a keyed store with recency bookkeeping — the pluggable seam
// between the serving layer and wherever its state lives.  See the
// package comment for the concurrency contract; values are opaque to the
// store (the owner knows their type).
type Store interface {
	// Len reports the number of stored entries.
	Len() int
	// Get returns the value for key without touching recency: owners
	// decide whether a lookup counts as a use (a fingerprint collision,
	// for instance, must not promote the colliding entry).
	Get(key string) (any, bool)
	// Touch marks key most recently used; unknown keys are a no-op.
	Touch(key string)
	// Put inserts or replaces the value for key and marks it most
	// recently used.
	Put(key string, v any)
	// Delete drops the entry for key, reporting whether it existed.
	Delete(key string) bool
	// Oldest returns the least recently used entry without touching it;
	// ok is false on an empty store.  TTL sweeps and capacity eviction
	// are built on it.
	Oldest() (key string, v any, ok bool)
	// Range calls fn for each entry from most to least recently used,
	// stopping early when fn returns false.  The store must not be
	// mutated from inside fn; session draining snapshots through it.
	Range(fn func(key string, v any) bool)
}

// Factory builds the Store behind one state kind.  serve calls it once
// per kind at server construction with the configured capacity as a
// sizing hint (capacity *enforcement* stays with serve, which evicts via
// Oldest; a remote store may use the hint or ignore it).
type Factory func(kind Kind, capacityHint int) Store

// DefaultFactory returns the in-process Mem store for every kind — the
// single-box configuration every shard runs.
func DefaultFactory(_ Kind, capacityHint int) Store { return NewMem(capacityHint) }
