package shard

import "container/list"

// Mem is the in-process Store: the recency list + key index mechanics
// (front = most recently used) that previously lived inside serve as its
// private LRU.  It carries no lock and no policy of its own — see the
// Store contract in the package comment.
type Mem struct {
	ll    *list.List
	byKey map[string]*list.Element
}

type memCell struct {
	key string
	val any
}

// NewMem returns an empty in-process store; capacityHint pre-sizes the
// key index.
func NewMem(capacityHint int) *Mem {
	if capacityHint < 0 {
		capacityHint = 0
	}
	return &Mem{ll: list.New(), byKey: make(map[string]*list.Element, capacityHint)}
}

// Len implements Store.
func (m *Mem) Len() int { return m.ll.Len() }

// Get implements Store: lookup without recency side effects.
func (m *Mem) Get(key string) (any, bool) {
	if el, ok := m.byKey[key]; ok {
		return el.Value.(*memCell).val, true
	}
	return nil, false
}

// Touch implements Store: mark key most recently used.
func (m *Mem) Touch(key string) {
	if el, ok := m.byKey[key]; ok {
		m.ll.MoveToFront(el)
	}
}

// Put implements Store: insert or replace, marking most recently used.
func (m *Mem) Put(key string, v any) {
	if el, ok := m.byKey[key]; ok {
		el.Value.(*memCell).val = v
		m.ll.MoveToFront(el)
		return
	}
	m.byKey[key] = m.ll.PushFront(&memCell{key: key, val: v})
}

// Delete implements Store.
func (m *Mem) Delete(key string) bool {
	el, ok := m.byKey[key]
	if !ok {
		return false
	}
	m.ll.Remove(el)
	delete(m.byKey, key)
	return true
}

// Oldest implements Store.
func (m *Mem) Oldest() (string, any, bool) {
	if back := m.ll.Back(); back != nil {
		c := back.Value.(*memCell)
		return c.key, c.val, true
	}
	return "", nil, false
}

// Range implements Store: most to least recently used.
func (m *Mem) Range(fn func(key string, v any) bool) {
	for el := m.ll.Front(); el != nil; el = el.Next() {
		c := el.Value.(*memCell)
		if !fn(c.key, c.val) {
			return
		}
	}
}
