package shard

import (
	"fmt"
	"testing"
)

// ringKeys generates n deterministic fingerprint-shaped keys.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("fp-%08x-%d", i*2654435761, i)
	}
	return keys
}

// TestRingDeterministic pins the property everything rests on: two rings
// built from the same topology (in any order) route every key
// identically, and routing is stable across calls.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(128, "s0", "s1", "s2")
	b := NewRing(128, "s2", "s0", "s1", "s0")
	for _, k := range ringKeys(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings from the same topology disagree on %q: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
		if a.Owner(k) != a.Owner(k) {
			t.Fatalf("unstable ownership for %q", k)
		}
	}
}

// TestRingBalance asserts the distribution guarantee: across 8 shards
// with >= 128 virtual nodes each, the max and min key shares stay within
// 15% of each other.  The hash is fixed, so this is a deterministic
// property of the implementation, not a flaky statistic.
func TestRingBalance(t *testing.T) {
	for _, replicas := range []int{128, DefaultReplicas} {
		shards := make([]string, 8)
		for i := range shards {
			shards[i] = fmt.Sprintf("shard-%d", i)
		}
		r := NewRing(replicas, shards...)
		counts := make(map[string]int, len(shards))
		keys := ringKeys(100000)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		min, max := len(keys), 0
		for _, id := range shards {
			c := counts[id]
			if c == 0 {
				t.Fatalf("replicas=%d: shard %s owns no keys", replicas, id)
			}
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if ratio := float64(max) / float64(min); ratio > 1.15 {
			t.Errorf("replicas=%d: key share imbalance max/min = %d/%d = %.3f, want <= 1.15 (counts %v)",
				replicas, max, min, ratio, counts)
		}
	}
}

// TestRingRemapOnGrowth asserts minimal disruption: adding one shard to
// k moves at most ~1/k of the keys (with slack for vnode-boundary
// variance), every move lands on the new shard, and removing it again
// restores the exact original assignment.
func TestRingRemapOnGrowth(t *testing.T) {
	keys := ringKeys(50000)
	for _, k := range []int{3, 8} {
		shards := make([]string, k)
		for i := range shards {
			shards[i] = fmt.Sprintf("s%d", i)
		}
		old := NewRing(DefaultReplicas, shards...)
		grown := old.With("s-new")
		moves := Rebalance(old, grown, keys)
		// Ideal fraction is 1/(k+1); allow 30% relative slack for the
		// vnode-boundary variance of the fixed hash.
		limit := int(float64(len(keys)) / float64(k+1) * 1.3)
		if len(moves) > limit {
			t.Errorf("k=%d: adding one shard moved %d of %d keys, want <= %d (~1/%d plus slack)",
				k, len(moves), len(keys), limit, k+1)
		}
		if len(moves) == 0 {
			t.Fatalf("k=%d: adding a shard moved no keys", k)
		}
		for _, mv := range moves {
			if mv.To != "s-new" {
				t.Fatalf("k=%d: growth moved %q from %q to %q, not onto the new shard", k, mv.Key, mv.From, mv.To)
			}
		}
		// Shrinking back is the exact inverse: no third-party churn.
		back := grown.Without("s-new")
		if mvs := Rebalance(old, back, keys); len(mvs) != 0 {
			t.Errorf("k=%d: removing the added shard did not restore the original assignment (%d stray moves)", k, len(mvs))
		}
	}
}

// TestRingEdgeCases covers the degenerate topologies the front tier can
// pass through while shards restart.
func TestRingEdgeCases(t *testing.T) {
	if got := NewRing(16).Owner("anything"); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
	one := NewRing(16, "only")
	for _, k := range ringKeys(100) {
		if one.Owner(k) != "only" {
			t.Fatalf("single-shard ring misrouted %q", k)
		}
	}
	if got := NewRing(0, "a").Replicas(); got != DefaultReplicas {
		t.Errorf("replicas <= 0 should default to %d, got %d", DefaultReplicas, got)
	}
}
