package shard

import "testing"

// TestMemRecencyMechanics exercises the Store contract on Mem: recency
// order, Get without promotion, Touch/Put promotion, Oldest and Range.
func TestMemRecencyMechanics(t *testing.T) {
	m := NewMem(4)
	if _, _, ok := m.Oldest(); ok {
		t.Fatal("empty store reports an oldest entry")
	}
	m.Put("a", 1)
	m.Put("b", 2)
	m.Put("c", 3)
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}

	// Get must not promote: a stays oldest.
	if v, ok := m.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	if k, _, _ := m.Oldest(); k != "a" {
		t.Fatalf("after Get, oldest = %q, want a (Get must not promote)", k)
	}

	// Touch promotes: a becomes newest, b oldest.
	m.Touch("a")
	if k, _, _ := m.Oldest(); k != "b" {
		t.Fatalf("after Touch(a), oldest = %q, want b", k)
	}

	// Put replaces in place and promotes.
	m.Put("b", 20)
	if v, _ := m.Get("b"); v.(int) != 20 {
		t.Fatalf("Put did not replace: %v", v)
	}
	if k, _, _ := m.Oldest(); k != "c" {
		t.Fatalf("after Put(b), oldest = %q, want c", k)
	}

	// Range walks MRU -> LRU.
	var order []string
	m.Range(func(k string, _ any) bool { order = append(order, k); return true })
	if len(order) != 3 || order[0] != "b" || order[2] != "c" {
		t.Fatalf("Range order = %v, want [b a c]", order)
	}

	// Early stop.
	n := 0
	m.Range(func(string, any) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range ignored early stop, visited %d", n)
	}

	if !m.Delete("a") || m.Delete("a") {
		t.Fatal("Delete should report existence exactly once")
	}
	if m.Len() != 2 {
		t.Fatalf("Len after delete = %d, want 2", m.Len())
	}
	m.Touch("nope") // unknown keys are a no-op
}

// TestDefaultFactory pins that every kind gets a working Mem store.
func TestDefaultFactory(t *testing.T) {
	for _, k := range []Kind{Results, Solvers, Sessions} {
		st := DefaultFactory(k, 8)
		st.Put("x", k.String())
		if v, ok := st.Get("x"); !ok || v.(string) != k.String() {
			t.Fatalf("kind %v: store round trip failed", k)
		}
	}
	if Kind(99).String() != "unknown" {
		t.Error("unexpected Kind.String for invalid kind")
	}
}
