package shard

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per shard when a Ring is
// built with replicas <= 0.  Share variance across shards shrinks like
// 1/sqrt(replicas), so the default is deliberately high: at 1024 vnodes
// the max/min key share across 8 shards is ~1.08 (the ring test pins
// <= 1.15 both here and at the 128-vnode floor), while the ring stays
// tiny — 8 shards cost 8k points (~128 KiB) and one binary search per
// lookup.
const DefaultReplicas = 1024

// Ring is an immutable consistent-hash ring with virtual nodes.  It is a
// pure function of (replicas, shard id set): any process constructing a
// ring from the same topology computes identical key ownership — the
// property the stateless schedlb front tier, the load-test driver's
// misroute checks and migration tooling all rely on.  Mutating the
// topology means deriving a new ring (With / Without / NewRing) and
// migrating per Rebalance; existing Rings are never modified and are
// safe for concurrent use.
type Ring struct {
	replicas int
	shards   []string // sorted, unique
	points   []point  // sorted by hash, ties broken by shard index
}

// point is one virtual node: the hash position and the owning shard
// (index into shards).
type point struct {
	h     uint64
	shard int32
}

// NewRing builds a ring of the given shard ids with replicas virtual
// nodes per shard (DefaultReplicas when replicas <= 0).  Duplicate ids
// collapse; order does not matter.  An empty shard set is allowed — the
// ring then owns nothing and Owner returns "".
func NewRing(replicas int, shards ...string) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	uniq := make([]string, 0, len(shards))
	seen := make(map[string]bool, len(shards))
	for _, s := range shards {
		if !seen[s] {
			seen[s] = true
			uniq = append(uniq, s)
		}
	}
	sort.Strings(uniq)
	r := &Ring{replicas: replicas, shards: uniq}
	r.points = make([]point, 0, replicas*len(uniq))
	for si, id := range uniq {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, point{h: hashKey(id + "#" + strconv.Itoa(v)), shard: int32(si)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		// A full 64-bit hash collision between vnodes is astronomically
		// unlikely; break the tie on shard index so ownership is still a
		// deterministic function of the topology if it ever happens.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Replicas returns the virtual-node count per shard.
func (r *Ring) Replicas() int { return r.replicas }

// Shards returns the shard ids in sorted order.  The slice is shared;
// callers must not modify it.
func (r *Ring) Shards() []string { return r.shards }

// Owner returns the shard owning key: the shard of the first virtual
// node at or clockwise after hash(key), wrapping at the top of the hash
// space.  An empty ring returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.shards[r.points[i].shard]
}

// With derives a new ring with shard added (same replicas).
func (r *Ring) With(shard string) *Ring {
	return NewRing(r.replicas, append(append([]string(nil), r.shards...), shard)...)
}

// Without derives a new ring with shard removed (same replicas).
func (r *Ring) Without(shard string) *Ring {
	keep := make([]string, 0, len(r.shards))
	for _, s := range r.shards {
		if s != shard {
			keep = append(keep, s)
		}
	}
	return NewRing(r.replicas, keep...)
}

// Move is one key that changes owner across a topology change.
type Move struct {
	Key  string
	From string // owner under the old ring
	To   string // owner under the new ring
}

// Rebalance enumerates the keys whose owner differs between the old and
// the new ring, in input order — the deterministic migration plan for a
// topology change.  Keys owned by the same shard on both rings are
// omitted.  Adding one shard to k yields moves only *onto* the new shard
// (roughly a 1/(k+1) fraction of keys); removing one yields moves only
// *off* the removed shard.
func Rebalance(old, new *Ring, keys []string) []Move {
	var moves []Move
	for _, k := range keys {
		from, to := old.Owner(k), new.Owner(k)
		if from != to {
			moves = append(moves, Move{Key: k, From: from, To: to})
		}
	}
	return moves
}

// String describes the topology for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d shards x %d vnodes)", len(r.shards), r.replicas)
}

// hashKey positions a key (or virtual node) on the ring: FNV-1a 64 over
// the bytes, finished with the SplitMix64 mixer.  FNV alone clusters on
// short structured inputs like "s3#17"; the finalizer's avalanche makes
// vnode positions statistically uniform, which is what the balance
// guarantee rests on.  The function is fixed forever — changing it would
// silently remap every deployment's keys.
func hashKey(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	// SplitMix64 finalizer (Steele et al.), a full-avalanche bijection.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
