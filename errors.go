package setupsched

import (
	"context"
	"errors"
	"fmt"

	"setupsched/internal/core"
)

// ErrNilInstance reports a nil *Instance argument.
var ErrNilInstance = errors.New("setupsched: nil instance")

// ErrCanceled matches (via errors.Is) any error returned because a solve
// was aborted by its context.  The returned error also unwraps to the
// context's own error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) keep working.
var ErrCanceled = errors.New("setupsched: solve canceled")

// ErrProbeLimit is returned when a search exhausts the probe budget set
// with WithProbeLimit before converging.
var ErrProbeLimit = core.ErrProbeLimit

// ValidationError wraps an instance-validation failure from NewSolver or
// one of the solve entry points.  It unwraps to the underlying cause.
type ValidationError struct {
	Err error
}

func (e *ValidationError) Error() string { return e.Err.Error() }

// Unwrap returns the underlying validation failure.
func (e *ValidationError) Unwrap() error { return e.Err }

// EpsilonRangeError reports an epsilon outside the open interval (0, 1).
type EpsilonRangeError struct {
	Epsilon float64
}

func (e *EpsilonRangeError) Error() string {
	return fmt.Sprintf("setupsched: epsilon %g out of range (need 0 < eps < 1)", e.Epsilon)
}

// canceledError ties a context error to the ErrCanceled sentinel: it
// matches ErrCanceled via Is and unwraps to the context's error.
type canceledError struct {
	cause error
}

func (e *canceledError) Error() string {
	return "setupsched: solve canceled: " + e.cause.Error()
}

func (e *canceledError) Unwrap() error { return e.cause }

func (e *canceledError) Is(target error) bool { return target == ErrCanceled }

// wrapSolveErr normalizes an error escaping a solve: context errors gain
// the ErrCanceled identity, everything else passes through.
func wrapSolveErr(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &canceledError{cause: err}
	}
	return err
}
