package setupsched

import (
	"context"
	"errors"
	"fmt"

	"setupsched/internal/core"
)

// ErrNilInstance reports a nil *Instance argument.
var ErrNilInstance = errors.New("setupsched: nil instance")

// ErrCanceled matches (via errors.Is) any error returned because a solve
// was aborted by its context.  The returned error also unwraps to the
// context's own error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) keep working.
var ErrCanceled = errors.New("setupsched: solve canceled")

// ErrProbeLimit is returned when a search exhausts the probe budget set
// with WithProbeLimit before converging.
var ErrProbeLimit = core.ErrProbeLimit

// ErrExactBudget matches (via errors.Is) any RefExact failure caused by
// the branch-and-bound node budget running out before the search
// converged.  The concrete error is an *ExactBudgetError carrying the
// certified bracket reached.
var ErrExactBudget = errors.New("setupsched: exact solve node budget exhausted")

// ErrExactUnsupported is returned when RefExact is requested for a
// variant the exact reference backend does not solve (it supports only
// NonPreemptive: the splittable and preemptive references have no
// schedule witness to return).
var ErrExactUnsupported = errors.New("setupsched: exact reference backend supports only the non-preemptive variant")

// ErrExactTooLarge is returned when RefExact is requested for an
// instance above the backend's size gate (see exact backend docs; the
// gate protects memory, not time — time is governed by the node budget).
var ErrExactTooLarge = errors.New("setupsched: instance too large for the exact reference backend")

// ExactBudgetError reports an exhausted RefExact node budget together
// with the certified bracket the search had reached: Lo <= OPT <= Hi.
// It matches ErrExactBudget via errors.Is.
type ExactBudgetError struct {
	Budget int64 // the configured node budget
	Nodes  int64 // nodes expanded when the budget ran out
	Lo, Hi int64 // certified bracket on the optimal makespan at abort
}

func (e *ExactBudgetError) Error() string {
	return fmt.Sprintf("setupsched: exact node budget %d exhausted after %d nodes (certified %d <= OPT <= %d)",
		e.Budget, e.Nodes, e.Lo, e.Hi)
}

// Is reports target == ErrExactBudget, tying the typed error to the
// sentinel.
func (e *ExactBudgetError) Is(target error) bool { return target == ErrExactBudget }

// ValidationError wraps an instance-validation failure from NewSolver or
// one of the solve entry points.  It unwraps to the underlying cause.
type ValidationError struct {
	Err error
}

func (e *ValidationError) Error() string { return e.Err.Error() }

// Unwrap returns the underlying validation failure.
func (e *ValidationError) Unwrap() error { return e.Err }

// EpsilonRangeError reports an epsilon outside the open interval (0, 1).
type EpsilonRangeError struct {
	Epsilon float64
}

func (e *EpsilonRangeError) Error() string {
	return fmt.Sprintf("setupsched: epsilon %g out of range (need 0 < eps < 1)", e.Epsilon)
}

// canceledError ties a context error to the ErrCanceled sentinel: it
// matches ErrCanceled via Is and unwraps to the context's error.
type canceledError struct {
	cause error
}

func (e *canceledError) Error() string {
	return "setupsched: solve canceled: " + e.cause.Error()
}

func (e *canceledError) Unwrap() error { return e.cause }

func (e *canceledError) Is(target error) bool { return target == ErrCanceled }

// wrapSolveErr normalizes an error escaping a solve: context errors gain
// the ErrCanceled identity, everything else passes through.
func wrapSolveErr(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &canceledError{cause: err}
	}
	return err
}
