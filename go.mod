module setupsched

go 1.24
