package serve

import (
	"container/list"
	"sync"

	"setupsched"
	"setupsched/sched"
)

// solverEntry is one prepared setupsched.Solver, keyed by the fingerprint
// of the canonical instance it was built for.  As with the result cache,
// the canonical instance is kept so a fingerprint collision is detected
// by exact comparison instead of silently solving the wrong instance.
type solverEntry struct {
	fp     string
	canon  *sched.Instance
	solver *setupsched.Solver
}

// solverCache is a mutex-guarded LRU of prepared Solvers.  Every request
// for a permutation-equivalent instance reuses the same Solver, so the
// O(n) preparation pass runs once per distinct instance instead of once
// per request — the serving layer's answer to the Solver API's "prepare
// once, solve many" contract.
type solverCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	byFP     map[string]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

func newSolverCache(capacity int) *solverCache {
	if capacity <= 0 {
		return nil
	}
	return &solverCache{
		capacity: capacity,
		ll:       list.New(),
		byFP:     make(map[string]*list.Element, capacity),
	}
}

// getOrCreate returns the cached Solver for the canonical instance,
// building and inserting one on a miss (or on a fingerprint collision,
// in which case the colliding entry is left alone and the fresh Solver
// is not cached).
func (c *solverCache) getOrCreate(fp string, canon *sched.Instance) (*setupsched.Solver, error) {
	c.mu.Lock()
	if el, ok := c.byFP[fp]; ok {
		e := el.Value.(*solverEntry)
		if e.canon.Equal(canon) {
			c.ll.MoveToFront(el)
			c.hits++
			c.mu.Unlock()
			return e.solver, nil
		}
		c.misses++
		c.mu.Unlock()
		return setupsched.NewSolver(canon)
	}
	c.misses++
	c.mu.Unlock()

	// Prepare outside the lock: preparation is O(n) and must not
	// serialize unrelated requests.
	solver, err := setupsched.NewSolver(canon)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byFP[fp]; !ok {
		c.byFP[fp] = c.ll.PushFront(&solverEntry{fp: fp, canon: canon, solver: solver})
		for c.ll.Len() > c.capacity {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.byFP, oldest.Value.(*solverEntry).fp)
			c.evictions++
		}
	}
	return solver, nil
}

// snapshot returns current counters for /v1/stats.
func (c *solverCache) snapshot() (size int, capacity int, hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.capacity, c.hits, c.misses, c.evictions
}
