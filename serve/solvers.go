package serve

import (
	"sync"

	"setupsched"
	"setupsched/obs"
	"setupsched/sched"
	"setupsched/shard"
)

// solverEntry is one prepared setupsched.Solver, keyed by the fingerprint
// of the canonical instance it was built for.  As with the result cache,
// the canonical instance is kept so a fingerprint collision is detected
// by exact comparison instead of silently solving the wrong instance.
type solverEntry struct {
	fp     string
	canon  *sched.Instance
	solver *setupsched.Solver
}

// solverCache is an LRU of prepared Solvers behind the pluggable
// shard.Store seam.  Every request for a permutation-equivalent instance
// reuses the same Solver, so the O(n) preparation pass runs once per
// distinct instance instead of once per request — the serving layer's
// answer to the Solver API's "prepare once, solve many" contract.  The
// mutex serializes store access (the Store contract); preparation runs
// outside it.
type solverCache struct {
	mu       sync.Mutex
	capacity int
	st       shard.Store

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

func newSolverCache(st shard.Store, capacity int, hits, misses, evictions *obs.Counter) *solverCache {
	if capacity <= 0 {
		return nil
	}
	return &solverCache{
		capacity: capacity, st: st,
		hits: hits, misses: misses, evictions: evictions,
	}
}

// getOrCreate returns the cached Solver for the canonical instance,
// building and inserting one on a miss (or on a fingerprint collision,
// in which case the colliding entry is left alone and the fresh Solver
// is not cached).
func (c *solverCache) getOrCreate(fp string, canon *sched.Instance) (*setupsched.Solver, error) {
	c.mu.Lock()
	if v, ok := c.st.Get(fp); ok {
		e := v.(*solverEntry)
		if e.canon.Equal(canon) {
			c.st.Touch(fp)
			c.mu.Unlock()
			c.hits.Inc()
			return e.solver, nil
		}
		c.mu.Unlock()
		c.misses.Inc()
		return setupsched.NewSolver(canon)
	}
	c.mu.Unlock()
	c.misses.Inc()

	// Prepare outside the lock: preparation is O(n) and must not
	// serialize unrelated requests.
	solver, err := setupsched.NewSolver(canon)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.st.Get(fp); !ok {
		c.st.Put(fp, &solverEntry{fp: fp, canon: canon, solver: solver})
		for c.st.Len() > c.capacity {
			if k, _, ok := c.st.Oldest(); ok {
				c.st.Delete(k)
			}
			c.evictions.Inc()
		}
	}
	return solver, nil
}

// size returns current occupancy for /v1/stats and the size gauge.
func (c *solverCache) size() (size int, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.Len(), c.capacity
}
