package serve

// Serving-layer hot-path benchmarks, in the style of the root bench_test.go:
//
//   - BenchmarkSolveCold_*   full solve with the cache bypassed
//   - BenchmarkSolveHit_*    permutation-equivalent cache hit: canonicalize,
//     fingerprint, LRU lookup, schedule remap and the Verify re-check
//   - BenchmarkFingerprint_* canonicalization + hash alone
//   - BenchmarkHTTPSolve     one cached solve through the full HTTP stack
//
// Run with:  go test -bench=. -benchmem ./serve
//
// The gap between Cold and Hit is the value of the result cache; later PRs
// tuning the serving layer should watch Hit and Fingerprint.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"setupsched/sched"
	"setupsched/schedgen"
)

func benchServeInstance(n int) *sched.Instance {
	classes := n / 8
	if classes < 1 {
		classes = 1
	}
	return schedgen.Uniform(schedgen.Params{
		M: int64(n/50 + 1), Classes: classes, JobsPer: 8,
		MaxSetup: 1000, MaxJob: 1000, Seed: int64(n),
	})
}

var benchServeSizes = []struct {
	name string
	n    int
}{
	{"n=1e2", 100},
	{"n=1e3", 1000},
	{"n=1e4", 10000},
}

func benchSolve(b *testing.B, n int, warm bool) {
	s := New(Config{})
	in := benchServeInstance(n)
	rng := rand.New(rand.NewSource(int64(n)))
	// Pre-permuted request instances so permutation cost is off the clock.
	perms := make([]*sched.Instance, 16)
	for i := range perms {
		perms[i] = permuteInstance(in, rng)
	}
	if warm {
		if r := s.Solve(context.Background(), &SolveRequest{Instance: in}); r.Error != "" {
			b.Fatal(r.Error)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := &SolveRequest{Instance: perms[i%len(perms)], NoCache: !warm}
		r := s.Solve(context.Background(), req)
		if r.Error != "" {
			b.Fatal(r.Error)
		}
		if warm && !r.Cached {
			b.Fatal("expected cache hit")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/job")
}

func BenchmarkSolveCold(b *testing.B) {
	for _, sz := range benchServeSizes {
		b.Run(sz.name, func(b *testing.B) { benchSolve(b, sz.n, false) })
	}
}

func BenchmarkSolveHit(b *testing.B) {
	for _, sz := range benchServeSizes {
		b.Run(sz.name, func(b *testing.B) { benchSolve(b, sz.n, true) })
	}
}

func BenchmarkFingerprint(b *testing.B) {
	for _, sz := range benchServeSizes {
		b.Run(sz.name, func(b *testing.B) {
			in := benchServeInstance(sz.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if fp := in.Fingerprint(); len(fp) != 64 {
					b.Fatal("bad fingerprint")
				}
			}
		})
	}
}

func BenchmarkHTTPSolve(b *testing.B) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	body, err := json.Marshal(&SolveRequest{Instance: benchServeInstance(1000)})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the cache, then measure the full stack on the hit path.
	resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatal(fmt.Errorf("status %d", resp.StatusCode))
		}
		resp.Body.Close()
	}
}
