package serve

import "container/list"

// lruIndex is the shared least-recently-used bookkeeping (recency list +
// key index, front = most recently used) behind the result cache, the
// prepared-solver cache and the session store.  It is not goroutine-safe
// and enforces no capacity itself: each owner wraps it in its own mutex
// and layers its own semantics — hit/miss counters, collision checks,
// TTL sweeping, eviction policy — on top of these mechanics.
type lruIndex[K comparable, V any] struct {
	ll    *list.List
	byKey map[K]*list.Element
}

type lruCell[K comparable, V any] struct {
	key K
	val V
}

func newLRUIndex[K comparable, V any](capacityHint int) lruIndex[K, V] {
	return lruIndex[K, V]{ll: list.New(), byKey: make(map[K]*list.Element, capacityHint)}
}

func (l *lruIndex[K, V]) len() int { return l.ll.Len() }

// lookup returns the value for k without touching recency (owners decide
// whether a lookup counts as a use — a fingerprint collision must not
// promote the colliding entry).
func (l *lruIndex[K, V]) lookup(k K) (V, bool) {
	if el, ok := l.byKey[k]; ok {
		return el.Value.(*lruCell[K, V]).val, true
	}
	var zero V
	return zero, false
}

// promote marks k as most recently used.
func (l *lruIndex[K, V]) promote(k K) {
	if el, ok := l.byKey[k]; ok {
		l.ll.MoveToFront(el)
	}
}

// put inserts or replaces the entry for k and marks it most recently
// used.
func (l *lruIndex[K, V]) put(k K, v V) {
	if el, ok := l.byKey[k]; ok {
		el.Value.(*lruCell[K, V]).val = v
		l.ll.MoveToFront(el)
		return
	}
	l.byKey[k] = l.ll.PushFront(&lruCell[K, V]{key: k, val: v})
}

// remove drops the entry for k, reporting whether it existed.
func (l *lruIndex[K, V]) remove(k K) bool {
	el, ok := l.byKey[k]
	if !ok {
		return false
	}
	l.ll.Remove(el)
	delete(l.byKey, k)
	return true
}

// oldest returns the least recently used entry without touching it.
func (l *lruIndex[K, V]) oldest() (K, V, bool) {
	if back := l.ll.Back(); back != nil {
		c := back.Value.(*lruCell[K, V])
		return c.key, c.val, true
	}
	var zeroK K
	var zeroV V
	return zeroK, zeroV, false
}

// evictOldest removes and returns the least recently used entry.
func (l *lruIndex[K, V]) evictOldest() (K, V, bool) {
	k, v, ok := l.oldest()
	if ok {
		l.remove(k)
	}
	return k, v, ok
}
