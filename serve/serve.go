// Package serve exposes the setupsched solvers as a long-running HTTP/JSON
// service with a permutation-invariant result cache.
//
// Endpoints:
//
//	POST   /v1/solve               solve one instance (JSON in, JSON out)
//	POST   /v1/solve/batch         solve an NDJSON stream of instances on a
//	                               bounded worker pool; results stream back
//	                               in arrival order (429 + Retry-After when
//	                               the pool is saturated)
//	POST   /v1/sessions            open an incremental solve session
//	GET    /v1/sessions/{id}       session shape and revision
//	POST   /v1/sessions/{id}/delta apply instance deltas (job churn, setup
//	                               drift, machine scaling)
//	POST   /v1/sessions/{id}/solve solve the session's current instance,
//	                               reusing preparation and warm-start state
//	DELETE /v1/sessions/{id}       close a session
//	GET    /healthz                liveness probe (503 while draining)
//	GET    /v1/stats               request counters, cache hit rates,
//	                               session/warm counters, latency quantiles
//	POST   /v1/admin/drain         flip into draining mode and stream a
//	                               session snapshot export (migration)
//	POST   /v1/admin/sessions/import  bulk re-create sessions from a
//	                               snapshot stream
//
// A Server can run standalone (the single-box configuration) or as one
// shard of a distributed deployment behind the schedlb front tier: set
// Config.ShardID so responses carry the X-Sched-Shard routing proof, and
// point Config.StoreFactory at an alternative shard.Store backend if the
// state tier should live outside the process.  Consistent-hash routing,
// topology and migration live in package setupsched/shard and the
// schedlb/schedload commands; the admin endpoints above are this
// server's side of the migration protocol (see admin.go).
//
// Sessions wrap stream.Session: the instance lives server-side, deltas
// patch the solver preparation instead of rebuilding it, and re-solves
// warm-start from the previous certified bracket while staying
// bit-identical to a cold solve of the current instance.  Sessions are
// evicted after SessionTTL idle time or, past SessionCapacity, least
// recently used first.  A session's solves are serialized by the session
// itself; different sessions solve concurrently.
//
// Repeated traffic is served from an LRU cache keyed by
// (instance fingerprint, variant, algorithm, epsilon).  The fingerprint is
// computed on the instance's canonical form (sched.Canonical), so any
// permutation of classes or of jobs within a class hits the same entry;
// cached schedules are stored in canonical index space and translated back
// into each request's indexing on the way out.  Every response — cached or
// freshly solved — is re-checked with setupsched.Verify before it is
// returned, so a cache can never weaken the approximation guarantee.
//
// Below the result cache, a second LRU keyed by fingerprint alone holds
// prepared setupsched.Solvers, so a result-cache miss on a known instance
// shape still reuses the instance's O(n) preparation.  Solves run under
// the request's context tightened by the server's SolveTimeout and the
// request's timeout_ms: client disconnects and deadline hits abort the
// search mid-probe (HTTP 408) and are counted in /v1/stats along with
// every dual-test probe the searches run.
//
// A request may set "parallelism" to let its solve probe speculatively on
// that many goroutines (clamped to the server's MaxParallelism).  The
// engine guarantees bit-identical results to the serial solve, so the
// caches ignore the knob; /v1/stats counts parallel solves and reports
// the process's goroutine posture.
package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"setupsched"
	"setupsched/obs"
	"setupsched/sched"
	"setupsched/shard"
)

// Config configures a Server.  The zero value is usable: every field
// falls back to the documented default.
type Config struct {
	// Workers bounds the per-request worker pool of /v1/solve/batch.
	// Default: runtime.GOMAXPROCS(0).
	Workers int
	// CacheSize is the LRU result-cache capacity in entries.
	// Default 4096; negative disables caching.
	CacheSize int
	// SolverCacheSize is the LRU capacity of prepared per-fingerprint
	// Solvers (instance preparation reuse).  Default 1024; negative
	// disables reuse and prepares per request.
	SolverCacheSize int
	// MaxParallelism caps the per-request "parallelism" knob (speculative
	// probe goroutines per solve).  Default runtime.GOMAXPROCS(0);
	// negative forces every solve serial regardless of the request.
	MaxParallelism int
	// SolveTimeout bounds each solve (per batch item on the NDJSON
	// path).  Zero means no server-side limit; requests may still set a
	// tighter timeout_ms of their own.
	SolveTimeout time.Duration
	// MaxConcurrentBatches bounds how many /v1/solve/batch requests may
	// run at once; a saturated pool answers 429 with Retry-After instead
	// of queueing unboundedly (each batch request runs its own pool of
	// Workers goroutines, so the total batch-solve goroutine bound is
	// Workers * MaxConcurrentBatches).  Default 2*Workers; negative means
	// unlimited (the pre-429 behavior).
	MaxConcurrentBatches int
	// SessionCapacity is how many live incremental solve sessions the
	// server retains; inserting past it evicts the least recently used.
	// Default 256; negative disables the session endpoints.
	SessionCapacity int
	// SessionTTL evicts sessions idle longer than this (refreshed on
	// every touch).  Default 15 minutes; negative means no TTL.
	SessionTTL time.Duration
	// MaxBodyBytes caps a /v1/solve request body.  Default 32 MiB.
	MaxBodyBytes int64
	// MaxLineBytes caps one NDJSON line of /v1/solve/batch.  Default 8 MiB.
	MaxLineBytes int
	// ShardID names this process in a distributed deployment.  When set,
	// every response carries it in the X-Sched-Shard header (the routing
	// proof the schedlb front tier and the load-test harness check),
	// /healthz and /v1/stats report it, and the metrics registry gains a
	// sched_shard_info{shard="..."} series.  Empty means single-box mode
	// with none of the above.
	ShardID string
	// StoreFactory builds the state-tier stores (result cache, prepared
	// solvers, session registry) behind the shard.Store seam.  Nil uses
	// shard.DefaultFactory, the in-process store.  Capacity knobs above
	// keep their meaning regardless of the backing store: eviction policy
	// stays with the server.
	StoreFactory shard.Factory
	// SlowSolveThreshold, when positive, makes every solve record a span
	// tree and emits one structured log line (obs.LogSlowSolve: phase
	// breakdown, trace id, fingerprint, probe count) for solves slower
	// than this.  It doubles as the flight recorder's slow-ring
	// threshold.  Zero disables slow-solve logging.
	SlowSolveThreshold time.Duration
	// Logger receives the slow-solve lines; nil means slog.Default().
	Logger *slog.Logger
	// FlightRecorderSize caps the always-on flight recorder's ring of
	// recently completed request traces, served at GET /v1/debug/traces.
	// Zero means obs.DefaultFlightCapacity; negative disables the
	// recorder and the endpoint.
	FlightRecorderSize int
	// TraceIDs overrides the span-id source for this server's wire spans
	// (seed it for deterministic tests).  Nil uses the process-global
	// crypto-seeded source.
	TraceIDs *obs.IDSource
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.SolverCacheSize == 0 {
		c.SolverCacheSize = 1024
	}
	if c.MaxParallelism == 0 {
		c.MaxParallelism = runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 8 << 20
	}
	if c.MaxConcurrentBatches == 0 {
		c.MaxConcurrentBatches = 2 * c.Workers
	}
	if c.SessionCapacity == 0 {
		c.SessionCapacity = 256
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 15 * time.Minute
	}
	return c
}

// Server is the HTTP solve service.  Create one with New; it is safe for
// concurrent use by any number of requests.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	cache    *resultCache  // nil when result caching is disabled
	solvers  *solverCache  // nil when solver reuse is disabled
	sessions *sessionStore // nil when sessions are disabled
	// batchGate bounds concurrent batch requests; nil means unlimited.
	batchGate chan struct{}
	metrics   *serverMetrics
	// probeObs is the one shared probe-counting observer attached to
	// every solve.  Boxing it into the Observer interface once here —
	// instead of per request — keeps the hot path allocation-neutral
	// (see the alloc regression test in the root package).
	probeObs setupsched.Observer
	logger   *slog.Logger
	// flight retains completed request traces for GET /v1/debug/traces;
	// nil when Config.FlightRecorderSize is negative.
	flight *obs.FlightRecorder
	// draining flips one-way when the shard is told to leave the
	// topology: health turns 503 and session creates are refused (see
	// admin.go for the migration protocol).
	draining atomic.Bool
}

// New returns a Server with the given configuration.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		mux:     http.NewServeMux(),
		metrics: newServerMetrics(),
	}
	s.probeObs = &obs.ProbeCounter{C: s.metrics.probes}
	s.logger = s.cfg.Logger
	if s.logger == nil {
		s.logger = slog.Default()
	}
	m := s.metrics
	// State tier: each store kind is built by the pluggable factory (the
	// in-process shard.Mem by default) and owned by its policy wrapper.
	factory := s.cfg.StoreFactory
	if factory == nil {
		factory = shard.DefaultFactory
	}
	if s.cfg.CacheSize > 0 {
		s.cache = newResultCache(factory(shard.Results, s.cfg.CacheSize),
			s.cfg.CacheSize, m.cacheHits, m.cacheMisses, m.cacheEvictions)
	}
	if s.cfg.SolverCacheSize > 0 {
		s.solvers = newSolverCache(factory(shard.Solvers, s.cfg.SolverCacheSize),
			s.cfg.SolverCacheSize, m.solverHits, m.solverMisses, m.solverEvictions)
	}
	if s.cfg.SessionCapacity > 0 {
		s.sessions = newSessionStore(factory(shard.Sessions, s.cfg.SessionCapacity),
			s.cfg.SessionCapacity, s.cfg.SessionTTL,
			m.sessionsCreated, m.sessionsDeleted, m.sessionsEvictedLRU, m.sessionsEvictedTTL)
	}
	m.registerDerived(s)
	if s.cfg.MaxConcurrentBatches > 0 {
		s.batchGate = make(chan struct{}, s.cfg.MaxConcurrentBatches)
	}
	if s.cfg.FlightRecorderSize >= 0 {
		s.flight = obs.NewFlightRecorder(s.cfg.FlightRecorderSize, 0, s.cfg.SlowSolveThreshold)
		s.flight.SetCounters(m.tracesRecorded, m.tracesDropped)
		s.mux.Handle("GET /v1/debug/traces", s.flight.Handler())
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.Handle("GET /metrics", s.metrics.reg.Handler())
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/solve/batch", s.handleBatch)
	if s.sessions != nil {
		s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
		s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
		s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
		s.mux.HandleFunc("POST /v1/sessions/{id}/delta", s.handleSessionDelta)
		s.mux.HandleFunc("POST /v1/sessions/{id}/solve", s.handleSessionSolve)
		s.mux.HandleFunc("POST /v1/admin/sessions/import", s.handleImport)
	}
	s.mux.HandleFunc("POST /v1/admin/drain", s.handleDrain)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.cfg.ShardID != "" {
		// The shard identity rides every response so the front tier and
		// the load-test harness can prove routing correctness end to end.
		w.Header().Set(ShardHeader, s.cfg.ShardID)
	}
	s.mux.ServeHTTP(w, r)
}

// ShardHeader is the response header carrying the answering shard's id
// (Config.ShardID) in distributed deployments.
const ShardHeader = "X-Sched-Shard"

// SolveRequest is the JSON body of POST /v1/solve and of each NDJSON line
// of POST /v1/solve/batch.
type SolveRequest struct {
	// ID is an opaque client tag echoed back in the response; batch
	// clients use it to correlate streamed results.
	ID string `json:"id,omitempty"`
	// Instance is the scheduling instance, in the same format as the
	// schedsolve CLI: {"m": 3, "classes": [{"setup": 4, "jobs": [7, 2]}]}.
	Instance *sched.Instance `json:"instance"`
	// Variant is "split", "pmtn" or "nonp" (default "nonp").
	Variant string `json:"variant,omitempty"`
	// Algorithm is "auto", "2approx", "eps" or "exact" (default "auto").
	Algorithm string `json:"algorithm,omitempty"`
	// Epsilon is the accuracy for Algorithm "eps" (default 1e-4).
	Epsilon float64 `json:"epsilon,omitempty"`
	// TimeoutMS bounds this solve in milliseconds; it can only tighten
	// the server's configured SolveTimeout, never extend it.  Zero means
	// no per-request limit.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Parallelism is the number of goroutines this solve may use for
	// speculative probe search, clamped to the server's MaxParallelism.
	// Results are bit-identical to a serial solve (only latency and the
	// probe count change), which is why cache entries are shared across
	// parallelism values.  Zero or one means serial.
	Parallelism int `json:"parallelism,omitempty"`
	// IncludeSchedule adds the full schedule to the response.
	IncludeSchedule bool `json:"include_schedule,omitempty"`
	// IncludeTrace adds the search's probe trace to the response.
	IncludeTrace bool `json:"include_trace,omitempty"`
	// IncludeSpans adds the solve's span tree to the response: phase-
	// attributed timings (prepare/search/build) with one probe span per
	// dual test.  A cache hit runs no search, so its tree holds only the
	// (near-zero) prepare span.
	IncludeSpans bool `json:"include_spans,omitempty"`
	// NoCache bypasses the result cache for this request.
	NoCache bool `json:"no_cache,omitempty"`
	// TraceParent propagates a W3C trace context into this solve.  The
	// HTTP handlers fill it from the traceparent request header; on the
	// NDJSON batch route schedlb injects it per line (headers are
	// per-request, lines fan out to different owners).  A valid sampled
	// value makes the solve record a full wire-span tree (handler/queue
	// plus prepare/search/build), stamp trace_id into the response, and
	// land in the flight recorder; anything else leaves the request
	// untraced.
	TraceParent string `json:"traceparent,omitempty"`

	// arrival is when the request hit the process (HTTP arrival, or the
	// batch line's enqueue time) — the start of the traced queue span.
	// Zero means "now" (no measurable queue wait).
	arrival time.Time
	// route labels the flight-recorder entry; empty means "solve".
	route string
}

// SolveResponse is the JSON result of one solve.  Exact rationals are
// reported as "p" or "p/q" strings alongside float approximations.
type SolveResponse struct {
	ID              string  `json:"id,omitempty"`
	Variant         string  `json:"variant,omitempty"`
	Algorithm       string  `json:"algorithm,omitempty"`
	Makespan        string  `json:"makespan,omitempty"`
	MakespanFloat   float64 `json:"makespan_float,omitempty"`
	LowerBound      string  `json:"lower_bound,omitempty"`
	LowerBoundFloat float64 `json:"lower_bound_float,omitempty"`
	Ratio           float64 `json:"ratio,omitempty"`
	Probes          int     `json:"probes,omitempty"`
	Machines        int64   `json:"machines,omitempty"`
	Setups          int64   `json:"setups,omitempty"`
	Fingerprint     string  `json:"fingerprint,omitempty"`
	Cached          bool    `json:"cached"`
	// Warm reports a session solve that reused the previous certified
	// bracket (bit-identical to a cold solve, just fewer probes); always
	// false outside the session endpoints.
	Warm bool `json:"warm,omitempty"`
	// SessionRev is the session revision the result is valid for; only
	// set by the session endpoints.
	SessionRev uint64 `json:"session_rev,omitempty"`
	// TraceID is the distributed trace id of a traced request — the join
	// key into /v1/debug/traces on every tier it crossed.
	TraceID   string        `json:"trace_id,omitempty"`
	ElapsedMS float64       `json:"elapsed_ms"`
	Schedule  *ScheduleJSON `json:"schedule,omitempty"`
	Trace     []ProbeJSON   `json:"trace,omitempty"`
	// Spans is the solve's span tree (request include_spans): phase-
	// attributed timings in microseconds since the solve began.
	Spans *obs.Span `json:"spans,omitempty"`
	Error string    `json:"error,omitempty"`

	// status is the HTTP status /v1/solve responds with; zero means OK.
	// Batch items carry errors in-band, so the field stays internal.
	status int
	// spanRoot retains the recorded tree even when the client did not ask
	// for spans, so the slow-solve log can attribute phases.
	spanRoot *obs.Span
}

// ProbeJSON is one dual-test evaluation of the search (wire form of
// setupsched.Probe): the makespan guess T and the accept/reject decision.
type ProbeJSON struct {
	T        string `json:"t"`
	Accepted bool   `json:"accepted"`
}

func traceJSON(trace []setupsched.Probe) []ProbeJSON {
	if len(trace) == 0 {
		return nil
	}
	out := make([]ProbeJSON, len(trace))
	for i, p := range trace {
		out[i] = ProbeJSON{T: p.T.String(), Accepted: p.Accepted}
	}
	return out
}

// errResponse builds an error response carrying its HTTP status.
func errResponse(status int, msg string) *SolveResponse {
	return &SolveResponse{Error: msg, status: status}
}

// ScheduleJSON is the wire form of a sched.Schedule.
type ScheduleJSON struct {
	Variant  string    `json:"variant"`
	Makespan string    `json:"makespan"`
	Runs     []RunJSON `json:"runs"`
}

// RunJSON is one machine run: Count identical machines with these slots.
type RunJSON struct {
	Count int64      `json:"count"`
	Slots []SlotJSON `json:"slots"`
}

// SlotJSON is one machine occupation; times are exact rational strings.
type SlotJSON struct {
	Kind  string `json:"kind"` // "setup" or "job"
	Class int    `json:"class"`
	Job   int    `json:"job"` // -1 for setups
	Start string `json:"start"`
	End   string `json:"end"`
}

func scheduleJSON(sc *sched.Schedule) *ScheduleJSON {
	out := &ScheduleJSON{
		Variant:  sc.Variant.Short(),
		Makespan: sc.Makespan().String(),
		Runs:     make([]RunJSON, len(sc.Runs)),
	}
	for i := range sc.Runs {
		run := RunJSON{Count: sc.Runs[i].Count, Slots: make([]SlotJSON, len(sc.Runs[i].Slots))}
		for j, sl := range sc.Runs[i].Slots {
			kind := "job"
			if sl.Kind == sched.SlotSetup {
				kind = "setup"
			}
			run.Slots[j] = SlotJSON{
				Kind: kind, Class: sl.Class, Job: sl.Job,
				Start: sl.Start.String(), End: sl.End.String(),
			}
		}
		out.Runs[i] = run
	}
	return out
}

func parseVariant(s string) (sched.Variant, error) {
	switch s {
	case "split", "splittable":
		return sched.Splittable, nil
	case "pmtn", "preemptive":
		return sched.Preemptive, nil
	case "", "nonp", "nonpreemptive":
		return sched.NonPreemptive, nil
	}
	return 0, fmt.Errorf("unknown variant %q (want split, pmtn or nonp)", s)
}

func parseAlgo(s string) (setupsched.Algorithm, error) {
	switch s {
	case "", "auto":
		return setupsched.Auto, nil
	case "2approx":
		return setupsched.TwoApprox, nil
	case "eps":
		return setupsched.EpsilonSearch, nil
	case "exact", "exact32":
		return setupsched.Exact32, nil
	case "refexact":
		return setupsched.RefExact, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (want auto, 2approx, eps, exact or refexact)", s)
}

// cacheKey builds the LRU key.  Epsilon only differentiates entries for
// the eps-search algorithm; all other algorithms normalize it to 0.
// Auto and Exact32 run the identical solver path, so they share entries.
func cacheKey(fp string, v sched.Variant, a setupsched.Algorithm, eps float64) string {
	if a == setupsched.Auto {
		a = setupsched.Exact32
	}
	if a != setupsched.EpsilonSearch {
		eps = 0
	} else if eps <= 0 {
		eps = setupsched.DefaultEpsilon
	}
	return fp + "|" + v.Short() + "|" + strconv.Itoa(int(a)) + "|" +
		strconv.FormatFloat(eps, 'g', -1, 64)
}

// solveContext derives the context one solve runs under: the request
// context (client disconnect), tightened by the server's SolveTimeout
// and the request's own timeout_ms, whichever is smaller.
func (s *Server) solveContext(ctx context.Context, req *SolveRequest) (context.Context, context.CancelFunc) {
	d := s.cfg.SolveTimeout
	if req.TimeoutMS > 0 {
		rd := time.Duration(req.TimeoutMS) * time.Millisecond
		// An absurd timeout_ms overflows to <= 0; a request may only
		// tighten the server-wide limit, never lift it.
		if rd > 0 && (d <= 0 || rd < d) {
			d = rd
		}
	}
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// Solve handles one request against the caches and the solvers.  It is
// the shared core of /v1/solve and /v1/solve/batch and is exported for
// direct embedding and benchmarks.  The context cancels the solve (client
// disconnect, per-request or server-wide timeout).  The returned response
// never aliases cache memory.  Errors are reported inside the response
// (Error field) so batch streams can carry per-item failures.
func (s *Server) Solve(ctx context.Context, req *SolveRequest) *SolveResponse {
	started := time.Now()
	wt, traced := s.startWire(req)
	rec := s.spanRecorder(req, traced)
	if traced {
		rec.Trace(s.childOf(wt.handler), wt.handler.SpanID)
	}
	resp := s.solve(ctx, req, rec)
	elapsed := time.Since(started)
	resp.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	resp.ID = req.ID
	if rec != nil {
		resp.spanRoot = rec.Root()
		if req.IncludeSpans {
			resp.Spans = resp.spanRoot
		}
	}
	if traced {
		route := req.route
		if route == "" {
			route = "solve"
		}
		s.finishWire(wt, req, route, started, elapsed, resp)
	}
	if resp.Error != "" {
		s.metrics.errors.Inc()
	} else {
		s.metrics.observe(elapsed)
		s.maybeLogSlow(elapsed, resp, "")
	}
	return resp
}

// spanRecorder returns a fresh recorder when this request needs one:
// the request is traced, the client asked for spans, or slow-solve
// logging needs the phase breakdown of every solve.  Nil otherwise —
// the hot path then carries only the shared allocation-free probe
// counter.
func (s *Server) spanRecorder(req *SolveRequest, traced bool) *obs.SpanRecorder {
	if traced || req.IncludeSpans || s.cfg.SlowSolveThreshold > 0 {
		return obs.NewSpanRecorder()
	}
	return nil
}

// maybeLogSlow emits the structured slow-solve line when the configured
// threshold is exceeded.  fallbackFP labels solves that carry no
// fingerprint in the response (session solves pass their session ID).
func (s *Server) maybeLogSlow(elapsed time.Duration, resp *SolveResponse, fallbackFP string) {
	if s.cfg.SlowSolveThreshold <= 0 || elapsed < s.cfg.SlowSolveThreshold {
		return
	}
	fp := resp.Fingerprint
	if fp == "" {
		fp = fallbackFP
	}
	// On traced requests finishWire has wrapped the solve tree in the
	// "handler" wire span; the phase breakdown lives one level down.
	root := resp.spanRoot
	if root != nil && root.Name == "handler" {
		root = root.Child("solve")
	}
	obs.LogSlowSolve(s.logger, elapsed, resp.TraceID, fp, resp.Variant, resp.Algorithm, resp.Probes, root)
}

// viewPool recycles canonical views across requests: a view's sort
// permutations, arenas and encoding buffer are reused, so fingerprinting
// a steady-state request stream allocates nothing proportional to the
// instance.  Views are borrowed for the duration of one solve only.
var viewPool = sync.Pool{New: func() any { return new(sched.CanonicalView) }}

func (s *Server) solve(ctx context.Context, req *SolveRequest, rec *obs.SpanRecorder) *SolveResponse {
	v, err := parseVariant(req.Variant)
	if err != nil {
		return errResponse(http.StatusBadRequest, err.Error())
	}
	algo, err := parseAlgo(req.Algorithm)
	if err != nil {
		return errResponse(http.StatusBadRequest, err.Error())
	}
	if req.Instance == nil {
		return errResponse(http.StatusBadRequest, "missing instance")
	}
	// Validate the explicit epsilon before the cache lookup, so a bad
	// request is rejected identically on hot and cold caches (cacheKey
	// normalizes epsilon and would otherwise serve a cached 200).
	if algo == setupsched.EpsilonSearch && req.Epsilon != 0 &&
		(req.Epsilon <= 0 || req.Epsilon >= 1) {
		return errResponse(http.StatusBadRequest,
			(&setupsched.EpsilonRangeError{Epsilon: req.Epsilon}).Error())
	}
	if req.Parallelism < 0 {
		return errResponse(http.StatusBadRequest,
			fmt.Sprintf("negative parallelism %d", req.Parallelism))
	}
	if err := req.Instance.Validate(); err != nil {
		return errResponse(http.StatusBadRequest, err.Error())
	}

	// Fingerprint through a pooled canonical view: the hot path (and in
	// particular every cache hit) never materializes the canonical deep
	// copy that Canonicalize builds — the view answers the fingerprint,
	// the collision check and the schedule remap out of reusable buffers.
	view := viewPool.Get().(*sched.CanonicalView)
	defer func() { view.Unbind(); viewPool.Put(view) }()
	view.Bind(req.Instance)
	fp := view.Fingerprint()
	key := cacheKey(fp, v, algo, req.Epsilon)
	useCache := s.cache != nil && !req.NoCache

	if useCache {
		if e := s.cache.get(key, view.MatchesCanonical); e != nil {
			res := *e.result
			res.Schedule = view.FromCanonical(e.result.Schedule)
			if err := setupsched.Verify(req.Instance, v, &res); err == nil {
				return s.respond(req, v, fp, &res, true)
			}
			// A cached result that no longer verifies is poison: drop it
			// and fall through to a cold solve.
			s.cache.remove(key)
		}
	}

	// A miss pays for the canonical deep copy after all: the solver cache
	// and the result cache both store the canonical instance beyond this
	// request's lifetime, which the borrowed view cannot provide.
	canonIn := view.CanonicalInstance()

	// Solve the canonical form on the shared per-fingerprint Solver, so
	// permutation-equivalent traffic reuses one O(n) preparation.  The
	// schedule is translated back into the request's indexing below.
	// The prepare span brackets the lookup: a solver-cache hit books a
	// near-zero prepare, a miss books the real O(n) pass.
	var stopPrepare func()
	if rec != nil {
		stopPrepare = rec.StartPhase("prepare")
	}
	solver, err := s.solverFor(fp, canonIn)
	if stopPrepare != nil {
		stopPrepare()
	}
	if err != nil {
		return errResponse(http.StatusInternalServerError, "internal error: preparing solver: "+err.Error())
	}
	opts := []setupsched.Option{
		setupsched.WithAlgorithm(algo),
		setupsched.WithObserver(s.probeObs),
	}
	if rec != nil {
		opts = append(opts, setupsched.WithObserver(rec))
	}
	// Epsilon only configures the eps-search; other algorithms ignored it
	// before the Solver API and must keep doing so.
	if algo == setupsched.EpsilonSearch && req.Epsilon != 0 {
		opts = append(opts, setupsched.WithEpsilon(req.Epsilon))
	}
	// Speculative probe search, clamped to the server-wide cap.  The
	// result is bit-identical to the serial solve, so the cache stays
	// oblivious to the knob.
	if par := s.clampParallelism(req.Parallelism); par > 1 {
		opts = append(opts, setupsched.WithParallelism(par))
		s.metrics.parallelSolves.Inc()
	}
	sctx, cancel := s.solveContext(ctx, req)
	defer cancel()
	canonRes, err := solver.Solve(sctx, v, opts...)
	if err != nil {
		return s.solveError(err)
	}
	res := *canonRes
	res.Schedule = view.FromCanonical(canonRes.Schedule)
	if err := setupsched.Verify(req.Instance, v, &res); err != nil {
		return errResponse(http.StatusInternalServerError,
			"internal error: solver produced an invalid schedule: "+err.Error())
	}
	if useCache {
		// Strip the probe trace before caching: it describes the search
		// that just ran (a cache hit runs none), and retaining dozens of
		// rationals per entry would bloat the LRU for data almost no
		// response serves.
		cached := *canonRes
		cached.Trace = nil
		s.cache.put(&cacheEntry{key: key, canon: canonIn, result: &cached})
	}
	return s.respond(req, v, fp, &res, false)
}

// clampParallelism bounds a requested speculative width by the server's
// MaxParallelism (negative cap forces serial).
func (s *Server) clampParallelism(n int) int {
	cap := s.cfg.MaxParallelism
	if cap < 1 || n < 1 {
		return 1
	}
	if n > cap {
		return cap
	}
	return n
}

// solverFor returns the shared Solver for the canonical instance, or a
// fresh unshared one when solver reuse is disabled.
func (s *Server) solverFor(fp string, canon *sched.Instance) (*setupsched.Solver, error) {
	if s.solvers != nil {
		return s.solvers.getOrCreate(fp, canon)
	}
	return setupsched.NewSolver(canon)
}

// solveError maps a Solver error to a response with the right HTTP
// status: 400 for anything wrong with the request, 408 for a timeout or
// client cancellation, 422 for an exhausted exact node budget, 500 for
// internal faults.
func (s *Server) solveError(err error) *SolveResponse {
	var vErr *setupsched.ValidationError
	var eErr *setupsched.EpsilonRangeError
	switch {
	case errors.Is(err, setupsched.ErrCanceled):
		s.metrics.timeouts.Inc()
		return errResponse(http.StatusRequestTimeout, err.Error())
	case errors.As(err, &eErr), errors.As(err, &vErr), errors.Is(err, setupsched.ErrNilInstance),
		errors.Is(err, setupsched.ErrExactUnsupported), errors.Is(err, setupsched.ErrExactTooLarge):
		return errResponse(http.StatusBadRequest, err.Error())
	case errors.Is(err, setupsched.ErrExactBudget):
		// A valid request the reference backend could not finish within its
		// node budget: the client's instance is too adversarial, not the
		// server's fault.
		return errResponse(http.StatusUnprocessableEntity, err.Error())
	default:
		return errResponse(http.StatusInternalServerError, "internal error: "+err.Error())
	}
}

func (s *Server) respond(req *SolveRequest, v sched.Variant, fp string, res *setupsched.Result, cached bool) *SolveResponse {
	resp := &SolveResponse{
		Variant:         v.Short(),
		Algorithm:       res.Algorithm,
		Makespan:        res.Makespan.String(),
		MakespanFloat:   res.Makespan.Float64(),
		LowerBound:      res.LowerBound.String(),
		LowerBoundFloat: res.LowerBound.Float64(),
		Ratio:           res.Ratio,
		Probes:          res.Probes,
		Machines:        res.Schedule.MachineCount(),
		Setups:          res.Schedule.SetupCount(),
		Fingerprint:     fp,
		Cached:          cached,
	}
	if req.IncludeSchedule {
		resp.Schedule = scheduleJSON(res.Schedule)
	}
	if req.IncludeTrace {
		resp.Trace = traceJSON(res.Trace)
	}
	return resp
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.metrics.start).Seconds(),
	}
	if s.cfg.ShardID != "" {
		body["shard_id"] = s.cfg.ShardID
	}
	status := http.StatusOK
	if s.Draining() {
		// 503 takes the shard out of front-tier health aggregation while
		// it migrates its sessions away; see admin.go.
		body["status"] = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.buildStats())
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	arrival := time.Now()
	s.metrics.solveRequests.Inc()
	var req SolveRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.metrics.errors.Inc()
		writeJSON(w, http.StatusBadRequest, &SolveResponse{Error: "decoding request: " + err.Error()})
		return
	}
	if req.TraceParent == "" {
		req.TraceParent = r.Header.Get(obs.TraceParentHeader)
	}
	req.arrival = arrival
	resp := s.Solve(r.Context(), &req)
	status := resp.status
	if status == 0 {
		status = http.StatusOK
	}
	writeJSON(w, status, resp)
}

// batchItem carries one NDJSON line through the worker pool together with
// the channel its response must be delivered on.  The line buffer is
// borrowed from lineBufPool; the worker that decodes it returns it.
type batchItem struct {
	line *[]byte
	out  chan *SolveResponse
	// enq is when the line was read off the stream; the gap until a
	// worker picks the item up is the traced queue span.
	enq time.Time
}

// lineBufPool recycles the per-line copy a batch reader must take before
// the scanner overwrites its window: steady-state batch decoding reuses
// a small set of buffers instead of allocating one per item.
var lineBufPool = sync.Pool{New: func() any { return new([]byte) }}

// handleBatch streams solves: it reads NDJSON SolveRequests, dispatches
// them to a pool of cfg.Workers goroutines, and writes NDJSON
// SolveResponses back in arrival order (each item's single-slot channel is
// enqueued on `order` before the item is handed to the pool, so the writer
// drains responses in exactly the order lines arrived, while up to
// Workers solves proceed concurrently).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.batchRequests.Inc()
	// Admission control: a saturated batch pool answers 429 immediately
	// instead of queueing unboundedly — each admitted request spawns its
	// own Workers goroutines, so without the gate a burst of batch
	// requests multiplies the pool without limit.
	if s.batchGate != nil {
		select {
		case s.batchGate <- struct{}{}:
			defer func() { <-s.batchGate }()
		default:
			s.metrics.rejected.Inc()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests,
				&SolveResponse{Error: "batch worker pool saturated; retry later"})
			return
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	// Interleaving reads of the request body with response writes needs
	// explicit opt-in on HTTP/1 (the server otherwise discards the unread
	// body at the first write).  HTTP/2 is full duplex already, so an
	// "unsupported" error here is fine to ignore.
	_ = http.NewResponseController(w).EnableFullDuplex()

	jobs := make(chan batchItem)
	order := make(chan chan *SolveResponse, 4*s.cfg.Workers)
	// A request-level traceparent header traces every line that does not
	// carry its own per-line context (schedlb injects per-line).
	hdrTrace := r.Header.Get(obs.TraceParentHeader)
	for i := 0; i < s.cfg.Workers; i++ {
		go func() {
			for it := range jobs {
				var req SolveRequest
				err := json.Unmarshal(*it.line, &req)
				lineBufPool.Put(it.line)
				if err != nil {
					s.metrics.errors.Inc()
					it.out <- &SolveResponse{Error: "decoding request: " + err.Error()}
					continue
				}
				if req.TraceParent == "" {
					req.TraceParent = hdrTrace
				}
				req.arrival = it.enq
				req.route = "batch-item"
				// The request context cancels in-flight solves when the
				// client disconnects mid-stream.
				it.out <- s.Solve(r.Context(), &req)
			}
		}()
	}

	go func() {
		defer close(jobs)
		defer close(order)
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 0, 64<<10), s.cfg.MaxLineBytes)
		for sc.Scan() {
			line := sc.Bytes()
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			s.metrics.batchItems.Inc()
			buf := lineBufPool.Get().(*[]byte)
			*buf = append((*buf)[:0], line...)
			it := batchItem{line: buf, out: make(chan *SolveResponse, 1), enq: time.Now()}
			order <- it.out
			jobs <- it
		}
		if err := sc.Err(); err != nil {
			s.metrics.errors.Inc()
			ch := make(chan *SolveResponse, 1)
			ch <- &SolveResponse{Error: "reading batch: " + err.Error()}
			order <- ch
		}
	}()

	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for ch := range order {
		resp := <-ch
		// Encoding errors (client gone) are deliberately ignored: the
		// loop must keep draining so the reader and workers can exit.
		_ = enc.Encode(resp)
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
