package serve

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"setupsched/sched"
)

// TestBatchIsolatesInvalidAndCanceledItems streams a batch where one item
// is structurally invalid and one is canceled by its own timeout_ms
// mid-solve.  Both failures must stay in-band and item-local: every
// response arrives in arrival order, the two bad items carry their own
// errors, and every other item is still solved and verifiable.
func TestBatchIsolatesInvalidAndCanceledItems(t *testing.T) {
	ts := httptest.NewServer(New(Config{Workers: 4}))
	defer ts.Close()

	const n = 12
	invalidAt, canceledAt := 3, 7
	lines := make([]string, n)
	reqs := make([]*SolveRequest, n)
	for i := 0; i < n; i++ {
		var req *SolveRequest
		switch i {
		case invalidAt:
			req = &SolveRequest{
				ID:       strconv.Itoa(i),
				Instance: &sched.Instance{M: 0}, // fails Validate
			}
		case canceledAt:
			// A solve whose first probe takes several milliseconds, given
			// a 1ms budget: the deadline reliably cancels it mid-search.
			req = &SolveRequest{
				ID:        strconv.Itoa(i),
				Instance:  heavyInstance(),
				Variant:   "pmtn",
				TimeoutMS: 1,
				NoCache:   true,
			}
		default:
			req = &SolveRequest{
				ID:              strconv.Itoa(i),
				Instance:        testInstance(int64(i)),
				Variant:         "nonp",
				IncludeSchedule: true,
				NoCache:         true,
			}
		}
		buf, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		lines[i] = string(buf)
		reqs[i] = req
	}

	resp, err := ts.Client().Post(ts.URL+"/v1/solve/batch", "application/x-ndjson",
		strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var got []*SolveResponse
	for sc.Scan() {
		var out SolveResponse
		if err := json.Unmarshal(sc.Bytes(), &out); err != nil {
			t.Fatalf("response line %d: %v", len(got), err)
		}
		got = append(got, &out)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d responses for %d items", len(got), n)
	}

	for i, out := range got {
		if out.ID != strconv.Itoa(i) {
			t.Fatalf("position %d carries id %q: arrival order not preserved", i, out.ID)
		}
		switch i {
		case invalidAt:
			if out.Error == "" || !strings.Contains(out.Error, "machine") {
				t.Fatalf("invalid item error = %q, want a validation error", out.Error)
			}
		case canceledAt:
			if out.Error == "" {
				t.Fatal("canceled item returned no error")
			}
			if !strings.Contains(out.Error, "deadline") && !strings.Contains(out.Error, "cancel") {
				t.Fatalf("canceled item error = %q, want a cancellation error", out.Error)
			}
		default:
			v, _ := parseVariant(reqs[i].Variant)
			verifyResponse(t, reqs[i].Instance, v, out)
		}
	}

	stats := getStats(t, ts)
	if stats.Search.Timeouts == 0 {
		t.Fatalf("timeout not counted in stats: %+v", stats.Search)
	}
	if stats.Requests.Errors < 2 {
		t.Fatalf("error counter %d, want >= 2", stats.Requests.Errors)
	}
}
