package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"setupsched/obs"
)

// scrapeMetrics fetches GET /metrics and returns the parsed samples,
// failing the test on transport, status, content-type or format errors.
func scrapeMetrics(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("GET /metrics: content-type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseExposition(body)
	if err != nil {
		t.Fatalf("malformed exposition: %v\n%s", err, body)
	}
	return samples
}

// TestMetricsEndpointExposition drives traffic through every subsystem
// and asserts GET /metrics is valid Prometheus text format whose numbers
// agree with the /v1/stats view over the same registry.
func TestMetricsEndpointExposition(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	in := testInstance(1)
	// Two identical solves: second one hits the result cache.
	for i := 0; i < 2; i++ {
		if _, resp := postJSON(t, ts, "/v1/solve", &SolveRequest{Instance: in}); resp.Error != "" {
			t.Fatalf("solve error: %s", resp.Error)
		}
	}
	// One session with a solve, to tick the session counters.
	var info SessionInfo
	{
		buf, _ := json.Marshal(&SessionCreateRequest{Instance: testInstance(2)})
		resp, err := ts.Client().Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if info.Error != "" {
			t.Fatalf("session create: %s", info.Error)
		}
	}
	if _, resp := postJSON(t, ts, "/v1/sessions/"+info.SessionID+"/solve", &SolveRequest{}); resp.Error != "" {
		t.Fatalf("session solve: %s", resp.Error)
	}

	samples := scrapeMetrics(t, ts)
	stats := getStats(t, ts)

	expectCounter := func(series string, want uint64) {
		t.Helper()
		got, ok := samples[series]
		if !ok {
			t.Fatalf("series %q missing from /metrics", series)
		}
		if uint64(got) != want {
			t.Errorf("%s = %v, want %d", series, got, want)
		}
	}
	expectCounter(`sched_requests_total{kind="solve"}`, stats.Requests.Solve)
	expectCounter(`sched_requests_total{kind="session"}`, stats.Requests.Session)
	expectCounter(`sched_cache_hits_total{cache="results"}`, stats.Cache.Hits)
	expectCounter(`sched_cache_misses_total{cache="results"}`, stats.Cache.Misses)
	expectCounter(`sched_cache_hits_total{cache="solvers"}`, stats.Solvers.Hits)
	expectCounter("sched_probes_total", stats.Search.Probes)
	expectCounter("sched_sessions_created_total", stats.Sessions.Created)
	expectCounter("sched_session_solves_total", stats.Sessions.Solves)
	if stats.Search.Probes == 0 {
		t.Error("probe counter never moved")
	}

	// Histogram integrity: _count matches stats, sum and gauges present.
	if got := samples["sched_solve_duration_seconds_count"]; int(got) != stats.LatencyMS.Count {
		t.Errorf("histogram count %v, want %d", got, stats.LatencyMS.Count)
	}
	for _, series := range []string{
		"sched_solve_duration_seconds_sum",
		`sched_cache_size{cache="results"}`,
		`sched_cache_size{cache="solvers"}`,
		"sched_sessions_active",
		"sched_uptime_seconds",
		"go_goroutines",
		"go_memstats_heap_alloc_bytes",
	} {
		if _, ok := samples[series]; !ok {
			t.Errorf("series %q missing from /metrics", series)
		}
	}

	// Method filtering: POST is rejected.
	resp, err := ts.Client().Post(ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics: status %d, want 405", resp.StatusCode)
	}
}

// TestStatsGoldenSchema locks the /v1/stats JSON shape: the exact key set
// must not drift now that the response is a view over the obs registry.
func TestStatsGoldenSchema(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	if _, resp := postJSON(t, ts, "/v1/solve", &SolveRequest{Instance: testInstance(3)}); resp.Error != "" {
		t.Fatalf("solve error: %s", resp.Error)
	}

	raw, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(raw.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}

	golden := map[string][]string{
		"":           {"uptime_seconds", "draining", "requests", "search", "cache", "solvers", "sessions", "latency_ms", "runtime"},
		"requests":   {"solve", "batch", "batch_items", "session", "errors", "rejected"},
		"search":     {"probes", "timeouts", "parallel_solves"},
		"cache":      {"enabled", "size", "capacity", "hits", "misses", "evictions", "hit_rate"},
		"solvers":    {"enabled", "size", "capacity", "hits", "misses", "evictions", "hit_rate"},
		"sessions":   {"enabled", "active", "capacity", "ttl_seconds", "created", "deleted", "evicted_lru", "evicted_ttl", "deltas", "solves", "cache_hits", "warm_hits", "exported", "imported"},
		"latency_ms": {"count", "p50", "p99", "max"},
		"runtime":    {"goroutines", "gomaxprocs", "max_parallelism"},
	}
	for _, key := range golden[""] {
		if _, ok := doc[key]; !ok {
			t.Errorf("top-level key %q missing", key)
		}
	}
	for section, keys := range golden {
		if section == "" {
			continue
		}
		var sub map[string]json.RawMessage
		if err := json.Unmarshal(doc[section], &sub); err != nil {
			t.Fatalf("section %q: %v", section, err)
		}
		for _, key := range keys {
			if _, ok := sub[key]; !ok {
				t.Errorf("key %q missing from section %q", key, section)
			}
		}
		if len(sub) != len(keys) {
			t.Errorf("section %q has %d keys, want %d (schema drift)", section, len(sub), len(keys))
		}
	}
}

// TestSolveIncludeSpans asserts the span tree rides the response when
// asked for, with the phases attributed and probe children matching the
// reported probe count.
func TestSolveIncludeSpans(t *testing.T) {
	s := New(Config{})
	resp := s.Solve(context.Background(), &SolveRequest{
		Instance: testInstance(4), IncludeSpans: true,
	})
	if resp.Error != "" {
		t.Fatalf("solve error: %s", resp.Error)
	}
	root := resp.Spans
	if root == nil {
		t.Fatal("include_spans set but response has no spans")
	}
	if root.Name != "solve" || root.Algorithm != resp.Algorithm {
		t.Fatalf("root span %q algorithm %q, want solve/%s", root.Name, root.Algorithm, resp.Algorithm)
	}
	search := root.Child("search")
	if root.Child("prepare") == nil || search == nil || root.Child("build") == nil {
		t.Fatalf("missing phase spans; got %d children", len(root.Children))
	}
	if search.Probes != resp.Probes || len(search.Children) != resp.Probes {
		t.Fatalf("search span probes=%d children=%d, want %d", search.Probes, len(search.Children), resp.Probes)
	}
	// The tree must round-trip through JSON (the wire format).
	buf, err := json.Marshal(resp.Spans)
	if err != nil {
		t.Fatal(err)
	}
	var back obs.Span
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "solve" || len(back.Children) != len(root.Children) {
		t.Fatal("span tree does not survive JSON round-trip")
	}

	// Without the flag the response must not carry spans.
	resp = s.Solve(context.Background(), &SolveRequest{Instance: testInstance(4)})
	if resp.Spans != nil {
		t.Fatal("spans attached without include_spans")
	}
}

// TestSessionSolveIncludeSpans covers the session path: warm and cached
// solves report spans consistent with their probe activity.
func TestSessionSolveIncludeSpans(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	buf, _ := json.Marshal(&SessionCreateRequest{Instance: testInstance(5)})
	raw, err := ts.Client().Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	var info SessionInfo
	if err := json.NewDecoder(raw.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if info.Error != "" {
		t.Fatalf("session create: %s", info.Error)
	}

	solveURL := "/v1/sessions/" + info.SessionID + "/solve"
	_, first := postJSON(t, ts, solveURL, &SolveRequest{IncludeSpans: true})
	if first.Error != "" {
		t.Fatalf("session solve: %s", first.Error)
	}
	if first.Spans == nil || first.Spans.Child("search") == nil {
		t.Fatal("cold session solve missing search span")
	}
	if got := first.Spans.Child("search").Probes; got != first.Probes {
		t.Fatalf("span probes %d, want %d", got, first.Probes)
	}

	// Unchanged instance: the session answers from cache, so the span
	// tree records no search (no probes executed).
	_, second := postJSON(t, ts, solveURL, &SolveRequest{IncludeSpans: true})
	if second.Error != "" {
		t.Fatalf("cached session solve: %s", second.Error)
	}
	if !second.Cached {
		t.Fatal("expected cached session result")
	}
	if sp := second.Spans; sp != nil {
		if search := sp.Child("search"); search != nil && len(search.Children) != 0 {
			t.Fatalf("cached solve recorded %d probe spans", len(search.Children))
		}
	}
}

// TestSlowSolveLog asserts the structured slow-solve line fires past the
// threshold and carries phase attribution from the span tree.
func TestSlowSolveLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	lg := slog.New(slog.NewJSONHandler(lockedWriter{mu: &mu, w: &buf}, nil))
	s := New(Config{SlowSolveThreshold: time.Nanosecond, Logger: lg})

	resp := s.Solve(context.Background(), &SolveRequest{Instance: testInstance(6)})
	if resp.Error != "" {
		t.Fatalf("solve error: %s", resp.Error)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if out == "" {
		t.Fatal("no slow-solve line emitted at 1ns threshold")
	}
	var line map[string]any
	if err := json.Unmarshal([]byte(out), &line); err != nil {
		t.Fatalf("slow-solve line is not JSON: %v\n%s", err, out)
	}
	if line["msg"] != "slow solve" {
		t.Fatalf("msg = %v", line["msg"])
	}
	for _, key := range []string{"fingerprint", "variant", "algorithm", "elapsed_ms", "probes", "prepare_ms", "search_ms", "build_ms"} {
		if _, ok := line[key]; !ok {
			t.Errorf("slow-solve line missing %q: %s", key, out)
		}
	}

	// Below threshold: silent.
	buf.Reset()
	s2 := New(Config{SlowSolveThreshold: time.Hour, Logger: lg})
	if resp := s2.Solve(context.Background(), &SolveRequest{Instance: testInstance(6)}); resp.Error != "" {
		t.Fatalf("solve error: %s", resp.Error)
	}
	mu.Lock()
	quiet := buf.Len() == 0
	mu.Unlock()
	if !quiet {
		t.Fatal("slow-solve line emitted below threshold")
	}
}

// TestSlowSolveLogTraced pins that the phase breakdown survives wire
// tracing: finishWire wraps the solve tree in the "handler" span, and
// the slow-solve line must still attribute prepare/search/build from
// the solve child, not read zeros off the wrapper.
func TestSlowSolveLogTraced(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	lg := slog.New(slog.NewJSONHandler(lockedWriter{mu: &mu, w: &buf}, nil))
	s := New(Config{SlowSolveThreshold: time.Nanosecond, Logger: lg})

	resp := s.Solve(context.Background(), &SolveRequest{
		Instance:     testInstance(9),
		IncludeSpans: true,
		TraceParent:  "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	})
	if resp.Error != "" {
		t.Fatalf("solve error: %s", resp.Error)
	}
	if resp.Spans == nil || resp.Spans.Name != "handler" {
		t.Fatalf("traced response root = %+v, want handler span", resp.Spans)
	}
	solve := resp.Spans.Child("solve")
	if solve == nil {
		t.Fatal("handler span has no solve child")
	}

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	var line map[string]any
	if err := json.Unmarshal([]byte(out), &line); err != nil {
		t.Fatalf("slow-solve line is not JSON: %v\n%s", err, out)
	}
	if got, want := line["trace_id"], "4bf92f3577b34da6a3ce929d0e0e4736"; got != want {
		t.Errorf("trace_id = %v, want %v", got, want)
	}
	for _, phase := range []string{"prepare", "search", "build"} {
		want := 0.0
		if sp := solve.Child(phase); sp != nil {
			want = float64(sp.DurUS) / 1e3
		}
		if got := line[phase+"_ms"]; got != want {
			t.Errorf("%s_ms = %v, want %v (from span tree)\n%s", phase, got, want, out)
		}
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// TestConcurrentSolvesAndScrapes hammers the solve path while /metrics
// and /v1/stats are scraped concurrently (run under -race), asserting
// every scrape stays well-formed and the counters end exact.
func TestConcurrentSolvesAndScrapes(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	const workers, solvesPer = 4, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < solvesPer; i++ {
				in := testInstance(int64(w*solvesPer + i))
				if resp := s.Solve(context.Background(), &SolveRequest{Instance: in}); resp.Error != "" {
					t.Errorf("solve: %s", resp.Error)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	var lastSolve uint64
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			samples := scrapeMetrics(t, ts)
			cur := uint64(samples["sched_probes_total"])
			if cur < lastSolve {
				t.Errorf("sched_probes_total went backwards: %d -> %d", lastSolve, cur)
				return
			}
			lastSolve = cur
			getStats(t, ts)
		}
	}()
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	samples := scrapeMetrics(t, ts)
	if got := samples["sched_solve_duration_seconds_count"]; got != workers*solvesPer {
		t.Fatalf("final solve count %v, want %d", got, workers*solvesPer)
	}
	stats := getStats(t, ts)
	if stats.LatencyMS.Count != workers*solvesPer {
		t.Fatalf("/v1/stats count %d, want %d", stats.LatencyMS.Count, workers*solvesPer)
	}
	if stats.LatencyMS.P99 < stats.LatencyMS.P50 {
		t.Fatalf("p99 %v < p50 %v", stats.LatencyMS.P99, stats.LatencyMS.P50)
	}
}
