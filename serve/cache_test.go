package serve

import (
	"fmt"
	"testing"

	"setupsched"
	"setupsched/obs"
	"setupsched/sched"
	"setupsched/shard"
)

func entry(key string, m int64) *cacheEntry {
	in := &sched.Instance{M: m, Classes: []sched.Class{{Setup: 1, Jobs: []int64{1}}}}
	return &cacheEntry{key: key, canon: in, result: &setupsched.Result{}}
}

// matching adapts an expected canonical instance to the collision-check
// predicate get takes (the server passes CanonicalView.MatchesCanonical).
func matching(want *sched.Instance) func(*sched.Instance) bool {
	return want.Equal
}

// testResultCache builds a cache with fresh standalone counters, as New
// does with registry-backed ones.
func testResultCache(capacity int) *resultCache {
	return newResultCache(shard.NewMem(capacity), capacity, &obs.Counter{}, &obs.Counter{}, &obs.Counter{})
}

func TestCacheLRUEviction(t *testing.T) {
	c := testResultCache(3)
	for i := 0; i < 4; i++ {
		c.put(entry(fmt.Sprintf("k%d", i), int64(i+1)))
	}
	// k0 is the oldest and must have been evicted.
	if got := c.get("k0", matching(entry("k0", 1).canon)); got != nil {
		t.Fatal("expected k0 to be evicted")
	}
	size, capacity := c.size()
	hits, misses, evictions := c.hits.Load(), c.misses.Load(), c.evictions.Load()
	if size != 3 || capacity != 3 || evictions != 1 || hits != 0 || misses != 1 {
		t.Fatalf("snapshot = size %d cap %d hits %d misses %d evictions %d",
			size, capacity, hits, misses, evictions)
	}

	// Touching k1 promotes it; the next eviction must take k2 instead.
	if got := c.get("k1", matching(entry("k1", 2).canon)); got == nil {
		t.Fatal("expected k1 hit")
	}
	c.put(entry("k4", 5))
	if got := c.get("k1", matching(entry("k1", 2).canon)); got == nil {
		t.Fatal("k1 evicted despite recent use")
	}
	if got := c.get("k2", matching(entry("k2", 3).canon)); got != nil {
		t.Fatal("expected k2 to be evicted")
	}
}

func TestCacheCollisionDefense(t *testing.T) {
	c := testResultCache(2)
	c.put(entry("k", 1))
	// Same key, different canonical instance: must miss, never return the
	// other instance's result.
	if got := c.get("k", matching(entry("k", 2).canon)); got != nil {
		t.Fatal("cache returned an entry for a mismatched canonical instance")
	}
}

func TestCacheReplaceAndRemove(t *testing.T) {
	c := testResultCache(2)
	c.put(entry("k", 1))
	c.put(entry("k", 2)) // replace in place
	if size, _ := c.size(); size != 1 {
		t.Fatalf("size after replace = %d, want 1", size)
	}
	if got := c.get("k", matching(entry("k", 2).canon)); got == nil {
		t.Fatal("expected replaced entry to match new canonical instance")
	}
	c.remove("k")
	c.remove("absent") // no-op
	if size, _ := c.size(); size != 0 {
		t.Fatal("entry still present after remove")
	}
}

func TestCacheDisabled(t *testing.T) {
	if testResultCache(0) != nil || testResultCache(-1) != nil {
		t.Fatal("non-positive capacity must disable the cache")
	}
}
