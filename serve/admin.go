package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"setupsched/sched"
)

// This file is the shard-administration surface: the drain endpoint and
// the session snapshot export/import used for migration on topology
// change and for clean shard restarts.
//
// Migration protocol (executed by an operator, the load-test harness, or
// any driver that can compute ring ownership):
//
//  1. Derive the new shard.Ring from the new topology.
//  2. POST /v1/admin/drain on every shard leaving the topology (or whose
//     key range shrinks).  The shard atomically flips into draining mode
//     — /healthz turns 503, new session creates are refused — and the
//     response streams one SessionSnapshot per live session as NDJSON.
//  3. For each snapshot, POST /v1/sessions on the new ring's owner for
//     its session id, carrying the snapshot's session_id, rev and
//     instance.  The re-created session answers solves bit-identically
//     to the original: the session contract guarantees every solve
//     equals a fresh solve of the current instance, and the instance is
//     exactly what moved.  Warm-start seeds and cached results are
//     deliberately NOT migrated — they are an optimization the new owner
//     rebuilds on first solve, never a correctness input.
//  4. Retire the drained process (it keeps answering stateless solves
//     and existing-session traffic until then, so in-flight clients
//     finish cleanly).
//
// The same snapshot stream backs schedserve's -session-snapshot flag:
// on SIGTERM the process exports to a file, on restart it imports,
// making shard restarts lossless for session state.

// SessionSnapshot is one exported session: everything migration needs to
// re-create it bit-identically on another shard.  It is the NDJSON line
// format of the drain endpoint and of ExportSessions/ImportSessions.
type SessionSnapshot struct {
	SessionID string          `json:"session_id"`
	Rev       uint64          `json:"rev"`
	Instance  *sched.Instance `json:"instance"`
}

// Draining reports whether this server has been put into draining mode.
func (s *Server) Draining() bool { return s.draining.Load() }

// StartDraining flips the server into draining mode: /healthz answers
// 503 so front tiers take the shard out, and new session creates are
// refused.  Existing sessions and stateless solves keep working so
// in-flight clients finish.  Draining is one-way for the process's
// lifetime.
func (s *Server) StartDraining() { s.draining.Store(true) }

// ExportSessions writes one SessionSnapshot NDJSON line per live session
// and returns how many were written.  Each snapshot is taken under its
// session's own lock (consistent instance+rev pair); the registry lock
// is not held while snapshotting, so one long-running solve delays only
// its own session's line.
func (s *Server) ExportSessions(ctx context.Context, w io.Writer) (int, error) {
	if s.sessions == nil {
		return 0, nil
	}
	enc := json.NewEncoder(w)
	n := 0
	for _, e := range s.sessions.entries() {
		in, rev, err := e.sess.Snapshot(ctx)
		if err != nil {
			return n, fmt.Errorf("snapshotting session %s: %w", e.id, err)
		}
		if err := enc.Encode(&SessionSnapshot{SessionID: e.id, Rev: rev, Instance: in}); err != nil {
			return n, err
		}
		n++
		s.metrics.sessionsExported.Inc()
	}
	return n, nil
}

// ImportSessions reads SessionSnapshot NDJSON lines and re-creates each
// session under its original id and revision, returning how many were
// imported.  Snapshots whose id already exists are skipped (idempotent
// re-import); invalid snapshots abort with an error naming the line.
func (s *Server) ImportSessions(ctx context.Context, r io.Reader) (int, error) {
	if s.sessions == nil {
		return 0, fmt.Errorf("sessions are disabled on this server")
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), int(s.cfg.MaxBodyBytes))
	n, line := 0, 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var snap SessionSnapshot
		if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
			return n, fmt.Errorf("snapshot line %d: %w", line, err)
		}
		if snap.Instance == nil {
			return n, fmt.Errorf("snapshot line %d: missing instance", line)
		}
		if snap.SessionID != "" && !validSessionID(snap.SessionID) {
			return n, fmt.Errorf("snapshot line %d: invalid session id %q", line, snap.SessionID)
		}
		info, status := s.createSession(ctx, &SessionCreateRequest{
			Instance: snap.Instance, SessionID: snap.SessionID, Rev: snap.Rev,
		})
		if status == http.StatusConflict {
			continue
		}
		if info.Error != "" {
			return n, fmt.Errorf("snapshot line %d (session %s): %s", line, snap.SessionID, info.Error)
		}
		n++
		s.metrics.sessionsImported.Inc()
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}

// handleDrain is POST /v1/admin/drain: flip into draining mode and
// stream the session export.  Idempotent — a second drain streams the
// remaining (not yet migrated or expired) sessions again.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.StartDraining()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Sched-Draining", "true")
	n, err := s.ExportSessions(r.Context(), w)
	if err != nil {
		// The export is NDJSON-streamed; all we can do mid-stream is log
		// the count mismatch via metrics and cut the stream short.  The
		// driver detects the short stream by re-polling /v1/stats.
		s.metrics.errors.Inc()
		return
	}
	s.logger.Info("drain: exported sessions", "shard", s.cfg.ShardID, "sessions", n)
}

// handleImport is POST /v1/admin/sessions/import: bulk re-create
// sessions from a snapshot stream (the HTTP face of ImportSessions, for
// drivers that migrate whole shards at once instead of per-session
// creates).
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	n, err := s.ImportSessions(r.Context(), body)
	if err != nil {
		s.metrics.errors.Inc()
		writeJSON(w, http.StatusBadRequest, map[string]any{"imported": n, "error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"imported": n})
}
