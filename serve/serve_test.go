package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"setupsched"
	"setupsched/sched"
	"setupsched/schedgen"
)

func testInstance(seed int64) *sched.Instance {
	return schedgen.Uniform(schedgen.Params{
		M: 4, Classes: 6, JobsPer: 4, MaxSetup: 20, MaxJob: 30, Seed: seed,
	})
}

func permuteInstance(in *sched.Instance, rng *rand.Rand) *sched.Instance {
	out := in.Clone()
	rng.Shuffle(len(out.Classes), func(i, j int) {
		out.Classes[i], out.Classes[j] = out.Classes[j], out.Classes[i]
	})
	for i := range out.Classes {
		jobs := out.Classes[i].Jobs
		rng.Shuffle(len(jobs), func(a, b int) { jobs[a], jobs[b] = jobs[b], jobs[a] })
	}
	return out
}

// parseRat parses the wire encoding "p" or "p/q" produced by Rat.String.
func parseRat(t *testing.T, s string) sched.Rat {
	t.Helper()
	num, den := s, "1"
	if i := strings.IndexByte(s, '/'); i >= 0 {
		num, den = s[:i], s[i+1:]
	}
	n, err := strconv.ParseInt(num, 10, 64)
	if err != nil {
		t.Fatalf("bad rational %q: %v", s, err)
	}
	d, err := strconv.ParseInt(den, 10, 64)
	if err != nil {
		t.Fatalf("bad rational %q: %v", s, err)
	}
	return sched.RatOf(n, d)
}

// scheduleFromJSON rebuilds a sched.Schedule from its wire form so tests
// can re-run setupsched.Verify on the client side of the API.
func scheduleFromJSON(t *testing.T, sj *ScheduleJSON, variant sched.Variant) *sched.Schedule {
	t.Helper()
	s := &sched.Schedule{Variant: variant}
	for _, run := range sj.Runs {
		slots := make([]sched.Slot, len(run.Slots))
		for i, sl := range run.Slots {
			kind := sched.SlotJob
			if sl.Kind == "setup" {
				kind = sched.SlotSetup
			}
			slots[i] = sched.Slot{
				Kind: kind, Class: sl.Class, Job: sl.Job,
				Start: parseRat(t, sl.Start), End: parseRat(t, sl.End),
			}
		}
		s.AddRun(run.Count, slots)
	}
	return s
}

// verifyResponse re-checks a SolveResponse (with schedule) against the
// instance it was requested for, across the serialization boundary.
func verifyResponse(t *testing.T, in *sched.Instance, v sched.Variant, resp *SolveResponse) {
	t.Helper()
	if resp.Error != "" {
		t.Fatalf("solve error: %s", resp.Error)
	}
	if resp.Schedule == nil {
		t.Fatal("response missing schedule (include_schedule was set)")
	}
	res := &setupsched.Result{
		Schedule:   scheduleFromJSON(t, resp.Schedule, v),
		Makespan:   parseRat(t, resp.Makespan),
		LowerBound: parseRat(t, resp.LowerBound),
	}
	if err := setupsched.Verify(in, v, res); err != nil {
		t.Fatalf("returned result fails Verify: %v", err)
	}
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, *SolveResponse) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, &out
}

func getStats(t *testing.T, ts *httptest.Server) *StatsResponse {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Status != "ok" {
		t.Fatalf("healthz body: %+v, err %v", body, err)
	}
}

func TestSolveEndpointAllVariants(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	in := testInstance(1)
	for _, variant := range []string{"split", "pmtn", "nonp"} {
		v, err := parseVariant(variant)
		if err != nil {
			t.Fatal(err)
		}
		hr, out := postJSON(t, ts, "/v1/solve", &SolveRequest{
			Instance: in, Variant: variant, IncludeSchedule: true,
		})
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d (error %q)", variant, hr.StatusCode, out.Error)
		}
		verifyResponse(t, in, v, out)
		if out.Cached {
			t.Fatalf("%s: first solve reported cached", variant)
		}
		if len(out.Fingerprint) != 64 {
			t.Fatalf("%s: bad fingerprint %q", variant, out.Fingerprint)
		}
		if out.Ratio > 1.5000001 && !strings.Contains(out.Algorithm, "fallback") {
			t.Fatalf("%s: ratio %v exceeds 3/2 bound (%s)", variant, out.Ratio, out.Algorithm)
		}
	}
}

func TestSolveEndpointErrors(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	cases := []struct {
		name   string
		body   any
		status int
	}{
		{"missing instance", &SolveRequest{}, http.StatusBadRequest},
		{"bad variant", &SolveRequest{Instance: testInstance(2), Variant: "bogus"}, http.StatusBadRequest},
		{"bad algorithm", &SolveRequest{Instance: testInstance(2), Algorithm: "bogus"}, http.StatusBadRequest},
		{"invalid instance", &SolveRequest{Instance: &sched.Instance{M: 0}}, http.StatusBadRequest},
	}
	for _, c := range cases {
		hr, out := postJSON(t, ts, "/v1/solve", c.body)
		if hr.StatusCode != c.status || out.Error == "" {
			t.Errorf("%s: status %d error %q, want status %d with error", c.name, hr.StatusCode, out.Error, c.status)
		}
	}

	// Malformed JSON is a 400.
	resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	// Wrong method is a 405 via the method-aware mux patterns.
	resp, err = ts.Client().Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/solve: status %d, want 405", resp.StatusCode)
	}
}

func TestCacheHitOnPermutedInstance(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	rng := rand.New(rand.NewSource(42))
	in := testInstance(3)

	for _, variant := range []string{"split", "pmtn", "nonp"} {
		v, _ := parseVariant(variant)
		_, first := postJSON(t, ts, "/v1/solve", &SolveRequest{Instance: in, Variant: variant})
		if first.Error != "" || first.Cached {
			t.Fatalf("%s: first solve: cached=%v err=%q", variant, first.Cached, first.Error)
		}
		for trial := 0; trial < 3; trial++ {
			p := permuteInstance(in, rng)
			_, out := postJSON(t, ts, "/v1/solve", &SolveRequest{
				Instance: p, Variant: variant, IncludeSchedule: true,
			})
			if !out.Cached {
				t.Fatalf("%s trial %d: permuted resolve was not served from cache", variant, trial)
			}
			if out.Makespan != first.Makespan {
				t.Fatalf("%s: cached makespan %s != original %s", variant, out.Makespan, first.Makespan)
			}
			if out.Fingerprint != first.Fingerprint {
				t.Fatalf("%s: fingerprint changed under permutation", variant)
			}
			// The remapped schedule must verify against the PERMUTED instance.
			verifyResponse(t, p, v, out)
		}
	}

	stats := getStats(t, ts)
	if stats.Cache.Hits == 0 || stats.Cache.HitRate <= 0 {
		t.Fatalf("expected cache hits, got %+v", stats.Cache)
	}
}

func TestCacheKeySeparatesOptions(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	in := testInstance(4)

	_, a := postJSON(t, ts, "/v1/solve", &SolveRequest{Instance: in, Variant: "nonp", Algorithm: "exact"})
	_, b := postJSON(t, ts, "/v1/solve", &SolveRequest{Instance: in, Variant: "split", Algorithm: "exact"})
	_, c := postJSON(t, ts, "/v1/solve", &SolveRequest{Instance: in, Variant: "nonp", Algorithm: "2approx"})
	_, d := postJSON(t, ts, "/v1/solve", &SolveRequest{Instance: in, Variant: "nonp", Algorithm: "eps", Epsilon: 0.25})
	_, e := postJSON(t, ts, "/v1/solve", &SolveRequest{Instance: in, Variant: "nonp", Algorithm: "eps", Epsilon: 0.01})
	for name, out := range map[string]*SolveResponse{"variant": b, "algorithm": c, "eps .25": d, "eps .01": e} {
		if out.Error != "" {
			t.Fatalf("%s: %s", name, out.Error)
		}
		if out.Cached {
			t.Errorf("%s: differing options must not share a cache entry with %+v", name, a)
		}
	}

	// "auto" resolves to the exact 3/2 algorithm, so it shares the entry
	// populated by "exact".
	_, g := postJSON(t, ts, "/v1/solve", &SolveRequest{Instance: in, Variant: "nonp", Algorithm: "auto"})
	if !g.Cached {
		t.Error("auto request did not reuse the exact-algorithm cache entry")
	}

	// NoCache must bypass both lookup and fill.
	_, f := postJSON(t, ts, "/v1/solve", &SolveRequest{Instance: in, Variant: "nonp", Algorithm: "exact", NoCache: true})
	if f.Cached {
		t.Error("no_cache request was served from cache")
	}
}

// batchLines builds an NDJSON body; returns the lines and, per line, the
// instance and variant to verify against (nil instance for error lines).
func batchLines(t *testing.T, nBase int) ([]string, []*SolveRequest) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	variants := []string{"split", "pmtn", "nonp"}
	var lines []string
	var reqs []*SolveRequest
	add := func(r *SolveRequest) {
		buf, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(buf))
		reqs = append(reqs, r)
	}
	for i := 0; i < nBase; i++ {
		in := testInstance(int64(1000 + i))
		v := variants[i%len(variants)]
		add(&SolveRequest{ID: fmt.Sprintf("i-%d", len(reqs)), Instance: in, Variant: v, IncludeSchedule: true})
		add(&SolveRequest{ID: fmt.Sprintf("i-%d", len(reqs)), Instance: permuteInstance(in, rng), Variant: v, IncludeSchedule: true})
	}
	return lines, reqs
}

func TestBatchEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Config{Workers: 8}))
	defer ts.Close()

	lines, reqs := batchLines(t, 60) // 120 items across all three variants
	// Interleave a malformed line and an invalid instance mid-stream.
	badAt, invalidAt := 41, 83
	lines[badAt] = "{this is not json"
	reqs[badAt] = nil
	lines[invalidAt] = `{"id":"i-` + strconv.Itoa(invalidAt) + `","instance":{"m":0,"classes":[]}}`
	reqs[invalidAt] = nil

	body := strings.Join(lines, "\n") + "\n\n" // trailing blank line must be ignored
	resp, err := ts.Client().Post(ts.URL+"/v1/solve/batch", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("batch content type %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var got []*SolveResponse
	for sc.Scan() {
		var out SolveResponse
		if err := json.Unmarshal(sc.Bytes(), &out); err != nil {
			t.Fatalf("line %d: %v", len(got), err)
		}
		got = append(got, &out)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(lines) {
		t.Fatalf("got %d responses for %d items", len(got), len(lines))
	}

	cached := 0
	for i, out := range got {
		if i == badAt || i == invalidAt {
			if out.Error == "" {
				t.Fatalf("item %d: expected an error response", i)
			}
			continue
		}
		req := reqs[i]
		if out.ID != req.ID {
			t.Fatalf("item %d: response id %q != request id %q (order not preserved)", i, out.ID, req.ID)
		}
		v, _ := parseVariant(req.Variant)
		verifyResponse(t, req.Instance, v, out)
		if out.Cached {
			cached++
		}
	}

	// Re-sending the whole batch must be served (near-)entirely from cache.
	resp2, err := ts.Client().Post(ts.URL+"/v1/solve/batch", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	sc2.Buffer(make([]byte, 0, 64<<10), 16<<20)
	rerunCached := 0
	n := 0
	for sc2.Scan() {
		var out SolveResponse
		if err := json.Unmarshal(sc2.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		if out.Cached {
			rerunCached++
		}
		n++
	}
	if n != len(lines) {
		t.Fatalf("rerun: got %d responses for %d items", n, len(lines))
	}
	if rerunCached < len(lines)-2-10 {
		t.Fatalf("rerun: only %d/%d items served from cache", rerunCached, len(lines)-2)
	}

	stats := getStats(t, ts)
	if stats.Requests.Batch != 2 || stats.Requests.BatchItems != uint64(2*len(lines)) {
		t.Fatalf("batch counters: %+v", stats.Requests)
	}
	if stats.Requests.Errors < 4 {
		t.Fatalf("error counter %d, want >= 4", stats.Requests.Errors)
	}
	if stats.Cache.HitRate <= 0 {
		t.Fatalf("cache hit rate not positive: %+v", stats.Cache)
	}
	if stats.LatencyMS.Count == 0 || stats.LatencyMS.P99 < stats.LatencyMS.P50 {
		t.Fatalf("latency stats: %+v", stats.LatencyMS)
	}
	_ = cached // first pass may or may not hit depending on scheduling
}

func TestBatchPreservesOrderUnderConcurrency(t *testing.T) {
	ts := httptest.NewServer(New(Config{Workers: 16, CacheSize: -1}))
	defer ts.Close()

	// Alternate heavy and trivial instances so completion order differs
	// wildly from arrival order.
	var lines []string
	for i := 0; i < 64; i++ {
		var in *sched.Instance
		if i%2 == 0 {
			in = schedgen.Uniform(schedgen.Params{M: 16, Classes: 400, JobsPer: 6, MaxSetup: 50, MaxJob: 100, Seed: int64(i)})
		} else {
			in = &sched.Instance{M: 1, Classes: []sched.Class{{Setup: 1, Jobs: []int64{1}}}}
		}
		buf, _ := json.Marshal(&SolveRequest{ID: strconv.Itoa(i), Instance: in})
		lines = append(lines, string(buf))
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/solve/batch", "application/x-ndjson",
		strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	i := 0
	for sc.Scan() {
		var out SolveResponse
		if err := json.Unmarshal(sc.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		if out.Error != "" {
			t.Fatalf("item %d: %s", i, out.Error)
		}
		if out.ID != strconv.Itoa(i) {
			t.Fatalf("position %d got id %q", i, out.ID)
		}
		i++
	}
	if i != len(lines) {
		t.Fatalf("got %d responses for %d items", i, len(lines))
	}
}

// heavyInstance is shaped so a single preemptive dual test costs several
// milliseconds (n = 5e5): a 1ms timeout has expired by the time the first
// probe finishes, so the pre-build checkpoint reliably aborts the solve.
// heavyInstance is shaped so a single dual-test probe takes milliseconds:
// the per-probe cost is Ω(classes) regardless of the eval data layout, so
// many tiny classes (rather than few large ones, which the SoA eval now
// probes in microseconds) keep the timeout paths reliably triggerable.
// The class count is capped by what fits one NDJSON batch line (8 MiB).
func heavyInstance() *sched.Instance {
	return schedgen.ExpensiveSetups(schedgen.Params{
		M: 512, Classes: 150000, JobsPer: 2, MaxSetup: 100000, MaxJob: 1000, Seed: 7,
	})
}

func TestSolveTimeoutReturns408(t *testing.T) {
	ts := httptest.NewServer(New(Config{CacheSize: -1}))
	defer ts.Close()

	hr, out := postJSON(t, ts, "/v1/solve", &SolveRequest{
		Instance: heavyInstance(), Variant: "pmtn", TimeoutMS: 1,
	})
	if hr.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status %d (error %q), want 408", hr.StatusCode, out.Error)
	}
	if out.Error == "" {
		t.Fatal("timeout response carries no error")
	}
	stats := getStats(t, ts)
	if stats.Search.Timeouts == 0 {
		t.Fatalf("timeout not counted: %+v", stats.Search)
	}

	// The server-wide SolveTimeout must cap requests that ask for more.
	ts2 := httptest.NewServer(New(Config{CacheSize: -1, SolveTimeout: time.Millisecond}))
	defer ts2.Close()
	hr2, _ := postJSON(t, ts2, "/v1/solve", &SolveRequest{
		Instance: heavyInstance(), Variant: "pmtn", TimeoutMS: 60000,
	})
	if hr2.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("server-wide timeout: status %d, want 408", hr2.StatusCode)
	}
}

func TestSolveRejectsBadEpsilon(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	// Warm the cache entry a bad request would otherwise hit (cacheKey
	// normalizes invalid epsilon to the default): rejection must not
	// depend on cache state.
	if hr, out := postJSON(t, ts, "/v1/solve", &SolveRequest{
		Instance: testInstance(5), Algorithm: "eps",
	}); hr.StatusCode != http.StatusOK {
		t.Fatalf("warmup: status %d error %q", hr.StatusCode, out.Error)
	}
	for _, eps := range []float64{-0.5, 1, 7} {
		hr, out := postJSON(t, ts, "/v1/solve", &SolveRequest{
			Instance: testInstance(5), Algorithm: "eps", Epsilon: eps,
		})
		if hr.StatusCode != http.StatusBadRequest || out.Error == "" {
			t.Errorf("eps=%v: status %d error %q, want 400 with error", eps, hr.StatusCode, out.Error)
		}
	}
	// Other algorithms always ignored epsilon; keep accepting it.
	if hr, out := postJSON(t, ts, "/v1/solve", &SolveRequest{
		Instance: testInstance(5), Algorithm: "exact", Epsilon: -3,
	}); hr.StatusCode != http.StatusOK {
		t.Errorf("exact with garbage epsilon: status %d error %q, want 200", hr.StatusCode, out.Error)
	}
}

func TestSolveContextClampsOverflow(t *testing.T) {
	s := New(Config{SolveTimeout: time.Second})
	ctx, cancel := s.solveContext(context.Background(), &SolveRequest{TimeoutMS: 1 << 62})
	defer cancel()
	d, ok := ctx.Deadline()
	if !ok || time.Until(d) > 2*time.Second {
		t.Fatalf("overflowing timeout_ms lifted the server-wide limit (deadline %v ok=%v)", d, ok)
	}
}

func TestProbeStatsAndTrace(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	in := testInstance(6)

	_, out := postJSON(t, ts, "/v1/solve", &SolveRequest{
		Instance: in, Variant: "nonp", IncludeTrace: true,
	})
	if out.Error != "" {
		t.Fatal(out.Error)
	}
	if out.Probes == 0 || len(out.Trace) != out.Probes {
		t.Fatalf("probes=%d trace len=%d, want equal and positive", out.Probes, len(out.Trace))
	}
	// The last accepted probe of the trace certifies the makespan bound.
	last := out.Trace[len(out.Trace)-1]
	if !last.Accepted {
		t.Fatalf("search ended on a rejected probe: %+v", out.Trace)
	}
	stats := getStats(t, ts)
	if stats.Search.Probes < uint64(out.Probes) {
		t.Fatalf("server probe counter %d < solve probes %d", stats.Search.Probes, out.Probes)
	}
}

func TestSolverReuseAcrossPermutedRequests(t *testing.T) {
	ts := httptest.NewServer(New(Config{CacheSize: -1})) // no result cache: every request solves
	defer ts.Close()
	rng := rand.New(rand.NewSource(11))
	in := testInstance(9)

	var first *SolveResponse
	for i := 0; i < 6; i++ {
		req := &SolveRequest{Instance: permuteInstance(in, rng), Variant: "nonp"}
		_, out := postJSON(t, ts, "/v1/solve", req)
		if out.Error != "" {
			t.Fatal(out.Error)
		}
		if first == nil {
			first = out
		} else if out.Makespan != first.Makespan || out.LowerBound != first.LowerBound {
			t.Fatalf("solve %d diverged: %s/%s vs %s/%s", i, out.Makespan, out.LowerBound, first.Makespan, first.LowerBound)
		}
	}
	stats := getStats(t, ts)
	if !stats.Solvers.Enabled || stats.Solvers.Hits < 5 {
		t.Fatalf("prepared-solver reuse not happening: %+v", stats.Solvers)
	}
	if stats.Solvers.Size != 1 {
		t.Fatalf("expected one prepared solver, have %d", stats.Solvers.Size)
	}
}
