package serve

import (
	"net/http"
	"time"

	"setupsched/obs"
)

// Distributed-tracing glue of the shard side: a request arriving with a
// sampled W3C traceparent (header on the solve/session routes, per-line
// "traceparent" JSON field on the batch route — injected by schedlb) is
// wrapped in a "handler" wire span that parents a "queue" child (time
// between arrival/enqueue and the solve starting: decode on the solve
// route, the worker-pool wait on the batch route) and the recorder's
// prepare/search/build solve tree.  The finished tree is stamped into
// the response (trace_id + spans), the slow-solve log, and the flight
// recorder behind GET /v1/debug/traces.
//
// Requests without a valid sampled traceparent take none of this path:
// no recorder, no flight record, no allocations (the alloc regression
// test in alloc_test.go pins that).

// wireTrace is the per-request trace state: the caller's wire context
// and the identity of this process's handler span.
type wireTrace struct {
	remote  obs.TraceContext
	handler obs.TraceContext
}

// startWire parses the request's propagated context.  Absent, malformed
// or unsampled contexts mean "untraced" — never an error.
func (s *Server) startWire(req *SolveRequest) (wireTrace, bool) {
	if req.TraceParent == "" {
		return wireTrace{}, false
	}
	tc, err := obs.ParseTraceParent(req.TraceParent)
	if err != nil || !tc.Sampled {
		return wireTrace{}, false
	}
	return wireTrace{remote: tc, handler: s.childOf(tc)}, true
}

// childOf mints a child context from the configured id source (tests)
// or the process-global one.
func (s *Server) childOf(tc obs.TraceContext) obs.TraceContext {
	if s.cfg.TraceIDs != nil {
		return s.cfg.TraceIDs.Child(tc)
	}
	return obs.ChildOf(tc)
}

// serviceName labels this process's flight-recorder entries.
func (s *Server) serviceName() string {
	if s.cfg.ShardID != "" {
		return s.cfg.ShardID
	}
	return "schedserve"
}

// finishWire assembles the handler wire tree around the recorded solve
// tree, stamps the trace id into the response, and books the completed
// trace into the flight recorder.
func (s *Server) finishWire(wt wireTrace, req *SolveRequest, route string, started time.Time, elapsed time.Duration, resp *SolveResponse) {
	resp.TraceID = wt.remote.TraceID.String()
	root := s.wireRoot(wt, req.arrival, started, elapsed, resp.spanRoot)
	resp.spanRoot = root
	if req.IncludeSpans {
		resp.Spans = root
	}
	if s.flight != nil {
		status := resp.status
		if status == 0 {
			status = http.StatusOK
		}
		s.flight.Record(obs.RecordedTrace{
			TraceID: root.TraceID,
			Service: s.serviceName(),
			Route:   route,
			Shard:   s.cfg.ShardID,
			Status:  status,
			DurUS:   root.DurUS,
			Root:    root,
		})
	}
}

// wireRoot builds the "handler" span: parented under the caller's wire
// span, covering queue wait plus the solve, with the solve tree rebased
// onto the handler's timebase (µs since arrival).
func (s *Server) wireRoot(wt wireTrace, arrival, started time.Time, elapsed time.Duration, solveRoot *obs.Span) *obs.Span {
	if arrival.IsZero() {
		arrival = started
	}
	queueUS := started.Sub(arrival).Microseconds()
	if queueUS < 0 {
		queueUS = 0
	}
	handler := &obs.Span{
		Name:    "handler",
		DurUS:   queueUS + elapsed.Microseconds(),
		TraceID: wt.remote.TraceID.String(),
		SpanID:  wt.handler.SpanID.String(),
		Parent:  wt.remote.SpanID.String(),
		Shard:   s.cfg.ShardID,
	}
	queue := &obs.Span{
		Name:   "queue",
		DurUS:  queueUS,
		SpanID: s.childOf(wt.handler).SpanID.String(),
		Parent: handler.SpanID,
	}
	handler.Children = append(handler.Children, queue)
	if solveRoot != nil {
		shiftSpans(solveRoot, queueUS)
		handler.Children = append(handler.Children, solveRoot)
	}
	return handler
}

// shiftSpans rebases a tree's timestamps by deltaUS.
func shiftSpans(sp *obs.Span, deltaUS int64) {
	sp.StartUS += deltaUS
	for _, c := range sp.Children {
		shiftSpans(c, deltaUS)
	}
}

// Flight exposes the server's flight recorder (nil when disabled), so
// embedders and the load harness can read retained traces directly.
func (s *Server) Flight() *obs.FlightRecorder { return s.flight }
