package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"setupsched/sched"
	"setupsched/schedgen"
)

// parallelTestInstance is setup-heavy enough that the searches genuinely
// probe, so the parallelism knob exercises speculative batches.
func parallelTestInstance() *sched.Instance {
	return schedgen.ExpensiveSetups(schedgen.Params{
		M: 32, Classes: 40, JobsPer: 3, MaxSetup: 500, MaxJob: 60, Seed: 11,
	})
}

// TestSolveParallelismKnob: a parallel request succeeds, returns the same
// makespan/bounds as the serial one, and is counted in /v1/stats.
func TestSolveParallelismKnob(t *testing.T) {
	// The cap defaults to GOMAXPROCS, which may be 1 on a small box; pin
	// it so the knob demonstrably engages.
	ts := httptest.NewServer(New(Config{CacheSize: -1, MaxParallelism: 8}))
	defer ts.Close()
	in := parallelTestInstance()

	_, serial := postJSON(t, ts, "/v1/solve", &SolveRequest{Instance: in, Variant: "nonp"})
	if serial.Error != "" {
		t.Fatalf("serial solve: %s", serial.Error)
	}
	_, par := postJSON(t, ts, "/v1/solve", &SolveRequest{Instance: in, Variant: "nonp", Parallelism: 4})
	if par.Error != "" {
		t.Fatalf("parallel solve: %s", par.Error)
	}
	if par.Makespan != serial.Makespan || par.LowerBound != serial.LowerBound {
		t.Fatalf("parallel result (%s, %s) differs from serial (%s, %s)",
			par.Makespan, par.LowerBound, serial.Makespan, serial.LowerBound)
	}

	st := getStats(t, ts)
	if st.Search.ParallelSolves != 1 {
		t.Fatalf("parallel_solves = %d, want 1", st.Search.ParallelSolves)
	}
	if st.Runtime.MaxProcs < 1 || st.Runtime.Goroutines < 1 {
		t.Fatalf("runtime stats not populated: %+v", st.Runtime)
	}
	if st.Runtime.MaxParallelism != 8 {
		t.Fatalf("max_parallelism = %d, want 8", st.Runtime.MaxParallelism)
	}
}

// TestSolveParallelismClamp: the knob is clamped to the server cap, and a
// negative cap forces serial solves (parallel_solves stays zero).
func TestSolveParallelismClamp(t *testing.T) {
	ts := httptest.NewServer(New(Config{CacheSize: -1, MaxParallelism: -1}))
	defer ts.Close()
	in := parallelTestInstance()
	resp, out := postJSON(t, ts, "/v1/solve", &SolveRequest{Instance: in, Variant: "split", Parallelism: 64})
	if resp.StatusCode != http.StatusOK || out.Error != "" {
		t.Fatalf("clamped solve failed: %d %s", resp.StatusCode, out.Error)
	}
	if st := getStats(t, ts); st.Search.ParallelSolves != 0 {
		t.Fatalf("parallel_solves = %d with a negative cap, want 0", st.Search.ParallelSolves)
	}
	if st := getStats(t, ts); st.Runtime.MaxParallelism != -1 {
		t.Fatalf("max_parallelism = %d, want -1", st.Runtime.MaxParallelism)
	}
}

// TestSolveParallelismInvalid: negative request parallelism is a 400.
func TestSolveParallelismInvalid(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	resp, out := postJSON(t, ts, "/v1/solve", &SolveRequest{Instance: parallelTestInstance(), Parallelism: -2})
	if resp.StatusCode != http.StatusBadRequest || out.Error == "" {
		t.Fatalf("negative parallelism: status %d, error %q", resp.StatusCode, out.Error)
	}
}
