package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"setupsched"
	"setupsched/obs"
	"setupsched/sched"
	"setupsched/shard"
	"setupsched/stream"
)

// sessionEntry is one live incremental solve session.
type sessionEntry struct {
	id       string
	sess     *stream.Session
	created  time.Time
	lastUsed time.Time // guarded by the store mutex
}

// sessionStore is a TTL+LRU registry of stream.Sessions behind the
// pluggable shard.Store seam.  Eviction is two-pronged: entries idle
// past the TTL are swept on every store access (the recency order keeps
// them clustered at the back), and inserting past capacity evicts the
// least recently used entry.  Each session serializes its own work
// internally (stream.Session's lock), so the store only guards the
// registry, never a solve; the mutex also serializes Store access per
// the shard.Store contract.
type sessionStore struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration
	st       shard.Store

	// Churn counters live in the server's obs registry (injected at
	// construction), shared by /metrics and /v1/stats.
	created    *obs.Counter
	deleted    *obs.Counter
	evictedLRU *obs.Counter
	evictedTTL *obs.Counter

	now func() time.Time // test hook
}

func newSessionStore(st shard.Store, capacity int, ttl time.Duration, created, deleted, evictedLRU, evictedTTL *obs.Counter) *sessionStore {
	if capacity <= 0 {
		return nil
	}
	return &sessionStore{
		capacity:   capacity,
		ttl:        ttl,
		st:         st,
		created:    created,
		deleted:    deleted,
		evictedLRU: evictedLRU,
		evictedTTL: evictedTTL,
		now:        time.Now,
	}
}

// sweepLocked evicts every entry idle past the TTL.  The recency order
// is by last use, so expired entries form a suffix.
func (st *sessionStore) sweepLocked() {
	if st.ttl <= 0 {
		return
	}
	cutoff := st.now().Add(-st.ttl)
	for {
		id, v, ok := st.st.Oldest()
		if !ok || !v.(*sessionEntry).lastUsed.Before(cutoff) {
			return
		}
		st.st.Delete(id)
		st.evictedTTL.Inc()
	}
}

// newSessionID returns a fresh random 128-bit hex id.
func newSessionID() string {
	buf := make([]byte, 16)
	if _, err := rand.Read(buf); err != nil {
		panic("serve: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(buf)
}

// errSessionExists reports a create with an already-registered id.
var errSessionExists = errors.New("session id already exists")

// create registers a session under id (a fresh random id when empty —
// the front tier and migration tooling supply explicit ids so routing
// keys stay stable across shards).
func (st *sessionStore) create(id string, sess *stream.Session) (*sessionEntry, error) {
	if id == "" {
		id = newSessionID()
	}
	e := &sessionEntry{id: id, sess: sess}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked()
	if _, ok := st.st.Get(id); ok {
		return nil, errSessionExists
	}
	e.created = st.now()
	e.lastUsed = e.created
	st.st.Put(e.id, e)
	st.created.Inc()
	for st.st.Len() > st.capacity {
		if k, _, ok := st.st.Oldest(); ok {
			st.st.Delete(k)
		}
		st.evictedLRU.Inc()
	}
	return e, nil
}

// get returns the live session for id, refreshing its TTL and LRU
// position; nil when unknown or expired.
func (st *sessionStore) get(id string) *sessionEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked()
	v, ok := st.st.Get(id)
	if !ok {
		return nil
	}
	e := v.(*sessionEntry)
	e.lastUsed = st.now()
	st.st.Touch(id)
	return e
}

// delete removes the session for id, reporting whether it existed.
func (st *sessionStore) delete(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked()
	if !st.st.Delete(id) {
		return false
	}
	st.deleted.Inc()
	return true
}

// entries snapshots the live session entries (most recently used first)
// without touching recency; the drain/export path iterates the result
// outside the store lock so a long-running solve on one session cannot
// stall the registry.
func (st *sessionStore) entries() []*sessionEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked()
	out := make([]*sessionEntry, 0, st.st.Len())
	st.st.Range(func(_ string, v any) bool {
		out = append(out, v.(*sessionEntry))
		return true
	})
	return out
}

// size returns current occupancy for /v1/stats and the sessions gauge
// (sweeping expired entries first, so the numbers reflect live state).
func (st *sessionStore) size() (active, capacity int, ttl time.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked()
	return st.st.Len(), st.capacity, st.ttl
}

// SessionCreateRequest is the JSON body of POST /v1/sessions.
type SessionCreateRequest struct {
	// Instance is the starting instance of the session.
	Instance *sched.Instance `json:"instance"`
	// SessionID, when set, pins the new session's id instead of letting
	// the shard generate one.  The schedlb front tier supplies it so the
	// id's ring owner is the shard it routes to, and migration re-creates
	// drained sessions under their original ids.  Ids are limited to 128
	// characters of [0-9a-zA-Z._-]; a duplicate id answers 409.
	SessionID string `json:"session_id,omitempty"`
	// Rev, when nonzero, fast-forwards the new session's revision —
	// migration uses it so a moved session keeps its revision history
	// monotone for clients that track session_rev across the move.
	Rev uint64 `json:"rev,omitempty"`
}

// SessionInfo describes a session; returned by the session endpoints.
type SessionInfo struct {
	SessionID   string `json:"session_id"`
	Rev         uint64 `json:"rev"`
	Machines    int64  `json:"machines"`
	Classes     int    `json:"classes"`
	Jobs        int    `json:"jobs"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Error       string `json:"error,omitempty"`
}

// SessionDeltaRequest is the JSON body of POST /v1/sessions/{id}/delta:
// a batch of deltas applied in order.  Application is not atomic — on a
// rejected delta the earlier ones stay applied and the response reports
// how many were (Applied) alongside the error.
type SessionDeltaRequest struct {
	Deltas []sched.Delta `json:"deltas"`
}

// SessionDeltaResponse is the JSON result of a delta application.
type SessionDeltaResponse struct {
	SessionID string `json:"session_id"`
	Rev       uint64 `json:"rev"`
	Applied   int    `json:"applied"`
	Machines  int64  `json:"machines"`
	Classes   int    `json:"classes"`
	Jobs      int    `json:"jobs"`
	Error     string `json:"error,omitempty"`
}

// sessionInfo builds the wire description of a session.  The request
// context bounds the wait for the session lock (a long-running solve on
// the same session would otherwise pin the handler goroutine even after
// the client disconnected).
func sessionInfo(ctx context.Context, e *sessionEntry, fingerprint bool) (*SessionInfo, error) {
	shape, err := e.sess.Describe(ctx)
	if err != nil {
		return nil, err
	}
	info := &SessionInfo{
		SessionID: e.id,
		Rev:       shape.Rev,
		Machines:  shape.Machines,
		Classes:   shape.Classes,
		Jobs:      shape.Jobs,
	}
	if fingerprint {
		if info.Fingerprint, err = e.sess.Fingerprint(ctx); err != nil {
			return nil, err
		}
	}
	return info, nil
}

// writeSessionInfo responds with the session description, mapping a lock
// wait canceled by the client to the solve-error statuses.
func (s *Server) writeSessionInfo(w http.ResponseWriter, r *http.Request, e *sessionEntry, status int, fingerprint bool) {
	info, err := sessionInfo(r.Context(), e, fingerprint)
	if err != nil {
		s.metrics.errors.Inc()
		resp := s.solveError(err)
		writeJSON(w, resp.status, &SessionInfo{SessionID: e.id, Error: resp.Error})
		return
	}
	writeJSON(w, status, info)
}

// validSessionID enforces the id alphabet for client-supplied ids so
// they stay safe in URLs, logs and metric labels.
func validSessionID(id string) bool {
	if len(id) == 0 || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	s.metrics.sessionRequests.Inc()
	if s.Draining() {
		// A draining shard is about to leave the topology; new sessions
		// must land on their post-rebalance owner instead.
		s.metrics.errors.Inc()
		writeJSON(w, http.StatusServiceUnavailable, &SessionInfo{Error: "shard is draining; create the session on its new owner"})
		return
	}
	var req SessionCreateRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.metrics.errors.Inc()
		writeJSON(w, http.StatusBadRequest, &SessionInfo{Error: "decoding request: " + err.Error()})
		return
	}
	if req.Instance == nil {
		s.metrics.errors.Inc()
		writeJSON(w, http.StatusBadRequest, &SessionInfo{Error: "missing instance"})
		return
	}
	if req.SessionID != "" && !validSessionID(req.SessionID) {
		s.metrics.errors.Inc()
		writeJSON(w, http.StatusBadRequest, &SessionInfo{Error: "invalid session_id (want 1-128 chars of [0-9a-zA-Z._-])"})
		return
	}
	info, status := s.createSession(r.Context(), &req)
	if info.Error != "" {
		s.metrics.errors.Inc()
	}
	writeJSON(w, status, info)
}

// createSession builds and registers one session; shared by the create
// endpoint and snapshot import.
func (s *Server) createSession(ctx context.Context, req *SessionCreateRequest) (*SessionInfo, int) {
	sess, err := stream.NewSession(req.Instance)
	if err != nil {
		return &SessionInfo{Error: err.Error()}, http.StatusBadRequest
	}
	if req.Rev > 0 {
		if err := sess.AdvanceTo(ctx, req.Rev); err != nil {
			return &SessionInfo{Error: err.Error()}, http.StatusBadRequest
		}
	}
	e, err := s.sessions.create(req.SessionID, sess)
	if err != nil {
		return &SessionInfo{SessionID: req.SessionID, Error: err.Error()}, http.StatusConflict
	}
	info, err := sessionInfo(ctx, e, true)
	if err != nil {
		resp := s.solveError(err)
		return &SessionInfo{SessionID: e.id, Error: resp.Error}, resp.status
	}
	return info, http.StatusCreated
}

// sessionFor resolves the {id} path value, writing the 404 itself when
// the session is unknown or expired.
func (s *Server) sessionFor(w http.ResponseWriter, r *http.Request) *sessionEntry {
	e := s.sessions.get(r.PathValue("id"))
	if e == nil {
		s.metrics.errors.Inc()
		writeJSON(w, http.StatusNotFound, &SessionInfo{Error: "unknown or expired session"})
	}
	return e
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	s.metrics.sessionRequests.Inc()
	if e := s.sessionFor(w, r); e != nil {
		s.writeSessionInfo(w, r, e, http.StatusOK, r.URL.Query().Get("fingerprint") == "true")
	}
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	s.metrics.sessionRequests.Inc()
	if !s.sessions.delete(r.PathValue("id")) {
		s.metrics.errors.Inc()
		writeJSON(w, http.StatusNotFound, &SessionInfo{Error: "unknown or expired session"})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSessionDelta(w http.ResponseWriter, r *http.Request) {
	s.metrics.sessionRequests.Inc()
	e := s.sessionFor(w, r)
	if e == nil {
		return
	}
	var req SessionDeltaRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.metrics.errors.Inc()
		writeJSON(w, http.StatusBadRequest, &SessionDeltaResponse{SessionID: e.id, Error: "decoding request: " + err.Error()})
		return
	}
	if len(req.Deltas) == 0 {
		s.metrics.errors.Inc()
		writeJSON(w, http.StatusBadRequest, &SessionDeltaResponse{SessionID: e.id, Error: "empty delta list"})
		return
	}
	applied := 0
	var applyErr error
	for i := range req.Deltas {
		if applyErr = e.sess.Apply(r.Context(), req.Deltas[i]); applyErr != nil {
			applyErr = fmt.Errorf("delta %d (%s): %w", i, req.Deltas[i], applyErr)
			break
		}
		applied++
	}
	s.metrics.sessionDeltas.Add(uint64(applied))
	shape, err := e.sess.Describe(r.Context())
	if err != nil {
		s.metrics.errors.Inc()
		resp := s.solveError(err)
		writeJSON(w, resp.status, &SessionDeltaResponse{SessionID: e.id, Applied: applied, Error: resp.Error})
		return
	}
	resp := &SessionDeltaResponse{
		SessionID: e.id, Rev: shape.Rev, Applied: applied,
		Machines: shape.Machines, Classes: shape.Classes, Jobs: shape.Jobs,
	}
	status := http.StatusOK
	if applyErr != nil {
		s.metrics.errors.Inc()
		resp.Error = applyErr.Error()
		status = http.StatusBadRequest
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleSessionSolve(w http.ResponseWriter, r *http.Request) {
	arrival := time.Now()
	s.metrics.sessionRequests.Inc()
	e := s.sessionFor(w, r)
	if e == nil {
		return
	}
	var req SolveRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.metrics.errors.Inc()
		writeJSON(w, http.StatusBadRequest, &SolveResponse{Error: "decoding request: " + err.Error()})
		return
	}
	if req.TraceParent == "" {
		req.TraceParent = r.Header.Get(obs.TraceParentHeader)
	}
	req.arrival = arrival
	resp := s.sessionSolve(r, e, &req)
	status := resp.status
	if status == 0 {
		status = http.StatusOK
	}
	writeJSON(w, status, resp)
}

// sessionSolve runs one solve against a session, mirroring Server.Solve's
// validation, timeout and verification behavior.  The session itself is
// the cache (unchanged revisions return the previous result), so the
// global result cache is not consulted.
func (s *Server) sessionSolve(r *http.Request, e *sessionEntry, req *SolveRequest) *SolveResponse {
	started := time.Now()
	wt, traced := s.startWire(req)
	rec := s.spanRecorder(req, traced)
	if traced {
		rec.Trace(s.childOf(wt.handler), wt.handler.SpanID)
	}
	resp := s.sessionSolveInner(r, e, req, rec)
	elapsed := time.Since(started)
	resp.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	resp.ID = req.ID
	if rec != nil {
		resp.spanRoot = rec.Root()
		if req.IncludeSpans {
			resp.Spans = resp.spanRoot
		}
	}
	if traced {
		s.finishWire(wt, req, "session", started, elapsed, resp)
	}
	if resp.Error != "" {
		s.metrics.errors.Inc()
	} else {
		s.metrics.observe(elapsed)
		s.maybeLogSlow(elapsed, resp, e.id)
	}
	return resp
}

func (s *Server) sessionSolveInner(r *http.Request, e *sessionEntry, req *SolveRequest, rec *obs.SpanRecorder) *SolveResponse {
	if req.Instance != nil {
		return errResponse(http.StatusBadRequest,
			"the instance is fixed by the session; mutate it via the delta endpoint")
	}
	v, err := parseVariant(req.Variant)
	if err != nil {
		return errResponse(http.StatusBadRequest, err.Error())
	}
	algo, err := parseAlgo(req.Algorithm)
	if err != nil {
		return errResponse(http.StatusBadRequest, err.Error())
	}
	if req.Epsilon != 0 && (req.Epsilon <= 0 || req.Epsilon >= 1) {
		return errResponse(http.StatusBadRequest,
			(&setupsched.EpsilonRangeError{Epsilon: req.Epsilon}).Error())
	}
	opts := []stream.SolveOption{
		stream.WithAlgorithm(algo),
		stream.WithObserver(s.probeObs),
	}
	if rec != nil {
		opts = append(opts, stream.WithObserver(rec))
	}
	if algo == setupsched.EpsilonSearch && req.Epsilon != 0 {
		opts = append(opts, stream.WithEpsilon(req.Epsilon))
	}
	if req.NoCache {
		opts = append(opts, stream.WithCold())
	}
	sctx, cancel := s.solveContext(r.Context(), req)
	defer cancel()
	res, err := e.sess.Solve(sctx, v, opts...)
	if err != nil {
		return s.solveError(err)
	}
	s.metrics.sessionSolves.Inc()
	switch {
	case res.Cached:
		s.metrics.sessionCacheHits.Inc()
	case res.Warm:
		s.metrics.sessionWarmHits.Inc()
	}
	// search.probes counts executed dual tests only: the live probe
	// observer attached above sees every executed probe, and a cache
	// return emits no observer events — matching the stateless path.
	// Fresh results are re-verified before they cross the trust boundary,
	// exactly like /v1/solve responses.  Cached results re-serve a result
	// that passed this check when it was computed; ErrStale means the
	// client raced its own deltas, in which case the result is still the
	// verified answer for the revision it reports.
	if !res.Cached {
		if err := e.sess.Verify(r.Context(), v, res); err != nil && !errors.Is(err, stream.ErrStale) {
			return errResponse(http.StatusInternalServerError,
				"internal error: session produced an invalid schedule: "+err.Error())
		}
	}
	resp := s.respond(req, v, "", res.Result, res.Cached)
	resp.Warm = res.Warm
	resp.SessionRev = res.Rev
	return resp
}
