package serve

import (
	"sync"

	"setupsched"
	"setupsched/obs"
	"setupsched/sched"
	"setupsched/shard"
)

// cacheEntry is one cached solve outcome.  The schedule inside Result is
// stored in *canonical* index space (see sched.Canonical), so a single
// entry serves every instance that is permutation-equivalent to the one
// that populated it; the canonical instance is kept to defend against
// fingerprint collisions by exact comparison on every hit.
type cacheEntry struct {
	key    string
	canon  *sched.Instance
	result *setupsched.Result // schedule in canonical index space
}

// resultCache is the result LRU keyed by
// (fingerprint, variant, algorithm, epsilon).  Since the shard rework
// the entries live behind the pluggable shard.Store seam (in-memory per
// shard today, external store tomorrow); this type owns the policy on
// top of the store's recency mechanics: capacity eviction, collision
// checks, and the hit/miss counters shared by /metrics and /v1/stats.
// The mutex serializes store access, which is the Store contract.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	st       shard.Store

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

func newResultCache(st shard.Store, capacity int, hits, misses, evictions *obs.Counter) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		capacity: capacity, st: st,
		hits: hits, misses: misses, evictions: evictions,
	}
}

// get returns the entry for key whose stored canonical instance
// satisfies matches, promoting it to most recently used.  The predicate
// is the fingerprint-collision defense: callers pass an exact
// canonical-form comparison (sched.CanonicalView.MatchesCanonical, so no
// canonical copy is materialized on the hit path); a key match that
// fails it counts as a miss and is not promoted.
func (c *resultCache) get(key string, matches func(*sched.Instance) bool) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.st.Get(key)
	if !ok {
		c.misses.Inc()
		return nil
	}
	e := v.(*cacheEntry)
	if !matches(e.canon) {
		c.misses.Inc()
		return nil
	}
	c.st.Touch(key)
	c.hits.Inc()
	return e
}

// put inserts or replaces the entry for key, evicting the least recently
// used entry when over capacity.
func (c *resultCache) put(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.st.Put(e.key, e)
	for c.st.Len() > c.capacity {
		if k, _, ok := c.st.Oldest(); ok {
			c.st.Delete(k)
		}
		c.evictions.Inc()
	}
}

// remove drops the entry for key if present (used when a cached result
// fails re-verification).
func (c *resultCache) remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.st.Delete(key)
}

// size returns current occupancy for /v1/stats and the size gauge.
func (c *resultCache) size() (size int, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.Len(), c.capacity
}
