package serve

import (
	"sync"

	"setupsched"
	"setupsched/obs"
	"setupsched/sched"
)

// cacheEntry is one cached solve outcome.  The schedule inside Result is
// stored in *canonical* index space (see sched.Canonical), so a single
// entry serves every instance that is permutation-equivalent to the one
// that populated it; the canonical instance is kept to defend against
// fingerprint collisions by exact comparison on every hit.
type cacheEntry struct {
	key    string
	canon  *sched.Instance
	result *setupsched.Result // schedule in canonical index space
}

// resultCache is a mutex-guarded LRU cache keyed by
// (fingerprint, variant, algorithm, epsilon), built on the shared
// lruIndex mechanics.  Hit/miss/eviction counters live in the server's
// obs registry (injected at construction), so /metrics and /v1/stats
// read the same numbers this cache records.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	idx      lruIndex[string, *cacheEntry]

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

func newResultCache(capacity int, hits, misses, evictions *obs.Counter) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		capacity: capacity, idx: newLRUIndex[string, *cacheEntry](capacity),
		hits: hits, misses: misses, evictions: evictions,
	}
}

// get returns the entry for key whose canonical instance equals canon,
// promoting it to most recently used.  A key match with a different
// canonical instance (a fingerprint collision) counts as a miss and is
// not promoted.
func (c *resultCache) get(key string, canon *sched.Instance) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.idx.lookup(key)
	if !ok || !e.canon.Equal(canon) {
		c.misses.Inc()
		return nil
	}
	c.idx.promote(key)
	c.hits.Inc()
	return e
}

// put inserts or replaces the entry for key, evicting the least recently
// used entry when over capacity.
func (c *resultCache) put(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.idx.put(e.key, e)
	for c.idx.len() > c.capacity {
		c.idx.evictOldest()
		c.evictions.Inc()
	}
}

// remove drops the entry for key if present (used when a cached result
// fails re-verification).
func (c *resultCache) remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.idx.remove(key)
}

// size returns current occupancy for /v1/stats and the size gauge.
func (c *resultCache) size() (size int, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.idx.len(), c.capacity
}
