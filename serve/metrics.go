package serve

import (
	"time"

	"setupsched/obs"
)

// serverMetrics is the Server's observability core: every counter the
// server records lives in one per-Server obs.Registry, which backs both
// the Prometheus exposition at GET /metrics and the /v1/stats JSON view
// (see stats.go).  Two servers in one process never collide because the
// registry is per-Server, not process-global.
//
// Metric catalog (all prefixed sched_):
//
//	sched_requests_total{kind}        solve | batch | session requests
//	sched_batch_items_total           NDJSON lines dispatched to the pool
//	sched_request_errors_total        responses carrying an error
//	sched_batch_rejected_total        429s from the saturated batch gate
//	sched_probes_total                dual-test evaluations run
//	sched_solve_timeouts_total        solves aborted by timeout/cancel
//	sched_parallel_solves_total       solves with speculative probing
//	sched_solve_duration_seconds      latency histogram (success only)
//	sched_cache_*_total{cache}        hit/miss/eviction, results | solvers
//	sched_cache_size{cache}           current LRU occupancy
//	sched_sessions_active             live incremental sessions
//	sched_sessions_created_total      session churn …
//	sched_sessions_deleted_total
//	sched_sessions_evicted_total{reason}  lru | ttl
//	sched_session_deltas_total        applied deltas
//	sched_session_solves_total        session solves answered
//	sched_session_cache_hits_total    … from the unchanged-revision cache
//	sched_session_warm_hits_total     … via a validated warm start
//	sched_sessions_exported_total     snapshots exported (drain/flush)
//	sched_sessions_imported_total     snapshots imported (migration/restore)
//	sched_shard_info{shard}           constant 1, shard identity label
//	sched_build_info{...}             constant 1, go version / gomaxprocs /
//	                                  shard labels (obs.RegisterBuildInfo)
//	sched_traces_recorded_total       request traces booked into the
//	                                  flight recorder
//	sched_traces_dropped_total        flight-recorder ring entries
//	                                  overwritten before being read
//	sched_draining                    1 while draining for migration
//	sched_uptime_seconds              process uptime of this Server
//	go_*                              runtime block (goroutines, heap, GC)
type serverMetrics struct {
	start time.Time
	reg   *obs.Registry

	solveRequests   *obs.Counter
	batchRequests   *obs.Counter
	sessionRequests *obs.Counter
	batchItems      *obs.Counter
	errors          *obs.Counter
	rejected        *obs.Counter

	probes         *obs.Counter
	timeouts       *obs.Counter
	parallelSolves *obs.Counter

	latency *obs.Histogram

	cacheHits       *obs.Counter
	cacheMisses     *obs.Counter
	cacheEvictions  *obs.Counter
	solverHits      *obs.Counter
	solverMisses    *obs.Counter
	solverEvictions *obs.Counter

	sessionsCreated    *obs.Counter
	sessionsDeleted    *obs.Counter
	sessionsEvictedLRU *obs.Counter
	sessionsEvictedTTL *obs.Counter
	sessionDeltas      *obs.Counter
	sessionSolves      *obs.Counter
	sessionCacheHits   *obs.Counter
	sessionWarmHits    *obs.Counter
	sessionsExported   *obs.Counter
	sessionsImported   *obs.Counter

	tracesRecorded *obs.Counter
	tracesDropped  *obs.Counter
}

func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		start: time.Now(),
		reg:   reg,

		solveRequests:   reg.Counter(`sched_requests_total{kind="solve"}`, "Requests by kind."),
		batchRequests:   reg.Counter(`sched_requests_total{kind="batch"}`, "Requests by kind."),
		sessionRequests: reg.Counter(`sched_requests_total{kind="session"}`, "Requests by kind."),
		batchItems:      reg.Counter("sched_batch_items_total", "NDJSON batch lines dispatched to the worker pool."),
		errors:          reg.Counter("sched_request_errors_total", "Responses that carried an error."),
		rejected:        reg.Counter("sched_batch_rejected_total", "Batch requests rejected with 429 (pool saturated)."),

		probes:         reg.Counter("sched_probes_total", "Dual-test probe evaluations run by the searches."),
		timeouts:       reg.Counter("sched_solve_timeouts_total", "Solves aborted by timeout or client cancellation."),
		parallelSolves: reg.Counter("sched_parallel_solves_total", "Solves that ran with speculative probing (parallelism > 1)."),

		latency: reg.Histogram("sched_solve_duration_seconds",
			"Wall-clock latency of successful solves (stateless and session).",
			obs.DefaultLatencyBuckets()...),

		cacheHits:       reg.Counter(`sched_cache_hits_total{cache="results"}`, "Cache hits by cache."),
		cacheMisses:     reg.Counter(`sched_cache_misses_total{cache="results"}`, "Cache misses by cache."),
		cacheEvictions:  reg.Counter(`sched_cache_evictions_total{cache="results"}`, "Cache evictions by cache."),
		solverHits:      reg.Counter(`sched_cache_hits_total{cache="solvers"}`, "Cache hits by cache."),
		solverMisses:    reg.Counter(`sched_cache_misses_total{cache="solvers"}`, "Cache misses by cache."),
		solverEvictions: reg.Counter(`sched_cache_evictions_total{cache="solvers"}`, "Cache evictions by cache."),

		sessionsCreated:    reg.Counter("sched_sessions_created_total", "Incremental sessions created."),
		sessionsDeleted:    reg.Counter("sched_sessions_deleted_total", "Incremental sessions deleted by clients."),
		sessionsEvictedLRU: reg.Counter(`sched_sessions_evicted_total{reason="lru"}`, "Sessions evicted, by reason."),
		sessionsEvictedTTL: reg.Counter(`sched_sessions_evicted_total{reason="ttl"}`, "Sessions evicted, by reason."),
		sessionDeltas:      reg.Counter("sched_session_deltas_total", "Deltas applied to sessions."),
		sessionSolves:      reg.Counter("sched_session_solves_total", "Session solves answered."),
		sessionCacheHits:   reg.Counter("sched_session_cache_hits_total", "Session solves answered from the unchanged-revision cache."),
		sessionWarmHits:    reg.Counter("sched_session_warm_hits_total", "Session solves that validated a warm-start seed."),
		sessionsExported:   reg.Counter("sched_sessions_exported_total", "Session snapshots exported by drain/shutdown flush."),
		sessionsImported:   reg.Counter("sched_sessions_imported_total", "Session snapshots imported (migration or restart restore)."),

		tracesRecorded: reg.Counter("sched_traces_recorded_total", "Request traces booked into the flight recorder."),
		tracesDropped:  reg.Counter("sched_traces_dropped_total", "Flight-recorder ring entries overwritten before being read."),
	}
	reg.GaugeFunc("sched_uptime_seconds", "Uptime of this Server.",
		func() float64 { return time.Since(m.start).Seconds() })
	reg.EnableRuntimeMetrics()
	return m
}

// registerDerived adds the gauge-func series that read live state off
// the server's subsystems; called once the caches and session store
// exist.
func (m *serverMetrics) registerDerived(s *Server) {
	if s.cache != nil {
		m.reg.GaugeFunc(`sched_cache_size{cache="results"}`, "Current LRU occupancy by cache.",
			func() float64 { size, _ := s.cache.size(); return float64(size) })
	}
	if s.solvers != nil {
		m.reg.GaugeFunc(`sched_cache_size{cache="solvers"}`, "Current LRU occupancy by cache.",
			func() float64 { size, _ := s.solvers.size(); return float64(size) })
	}
	if s.sessions != nil {
		m.reg.GaugeFunc("sched_sessions_active", "Live incremental solve sessions.",
			func() float64 { active, _, _ := s.sessions.size(); return float64(active) })
	}
	if s.cfg.ShardID != "" {
		// Constant info series: the shard's identity as a label, so fleet
		// dashboards can join per-shard scrapes without relabeling.
		m.reg.GaugeFunc(`sched_shard_info{shard="`+s.cfg.ShardID+`"}`,
			"Shard identity of this process (constant 1).",
			func() float64 { return 1 })
	}
	obs.RegisterBuildInfo(m.reg, s.cfg.ShardID)
	m.reg.GaugeFunc("sched_draining", "1 while this shard is draining for migration, else 0.",
		func() float64 {
			if s.Draining() {
				return 1
			}
			return 0
		})
}

// observe records one successful solve's latency.
func (m *serverMetrics) observe(d time.Duration) { m.latency.ObserveDuration(d) }

// Registry exposes the server's metric registry, so embedders can mount
// additional series next to the built-in catalog or scrape it directly
// without going through HTTP.
func (s *Server) Registry() *obs.Registry { return s.metrics.reg }
