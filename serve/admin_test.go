package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"setupsched"
	"setupsched/sched"
)

// drain POSTs /v1/admin/drain and returns the raw NDJSON snapshot body.
func drain(t *testing.T, ts *httptest.Server) []byte {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/admin/drain", "application/x-ndjson", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Sched-Draining") != "true" {
		t.Fatal("drain response missing X-Sched-Draining header")
	}
	var buf bytes.Buffer
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		buf.Write(sc.Bytes())
		buf.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSessionMigration exercises the full drain → import protocol across
// two shards and checks the acceptance contract: a migrated session
// keeps its id and revision, and its solves are bit-identical to a
// fresh solve of the moved instance.
func TestSessionMigration(t *testing.T) {
	a := httptest.NewServer(New(Config{ShardID: "shard-a"}))
	defer a.Close()
	b := httptest.NewServer(New(Config{ShardID: "shard-b"}))
	defer b.Close()

	// A session on shard A, mutated past its starting instance so the
	// snapshot must carry live (not just initial) state.
	var info SessionInfo
	buf, _ := json.Marshal(&SessionCreateRequest{Instance: sessionTestInstance(7)})
	resp, err := a.Client().Post(a.URL+"/v1/sessions", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get(ShardHeader); got != "shard-a" {
		t.Fatalf("shard header = %q, want shard-a", got)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Error != "" {
		t.Fatalf("session create: %s", info.Error)
	}
	var dr SessionDeltaResponse
	if code := postSessionJSON(t, a.Client(), a.URL+"/v1/sessions/"+info.SessionID+"/delta", &SessionDeltaRequest{
		Deltas: []sched.Delta{
			{Op: sched.DeltaSetMachines, M: 30},
			{Op: sched.DeltaSetSetup, Class: 0, Setup: 777},
		},
	}, &dr); code != http.StatusOK || dr.Error != "" {
		t.Fatalf("delta: status %d error %q", code, dr.Error)
	}

	// The reference answer: solve the session on shard A before moving it.
	respA, solveA := postJSONClient(t, a.Client(), a.URL+"/v1/sessions/"+info.SessionID+"/solve", &SolveRequest{})
	if solveA.Error != "" {
		t.Fatalf("solve on A: %s", solveA.Error)
	}
	if got := respA.Header.Get(ShardHeader); got != "shard-a" {
		t.Fatalf("solve shard header = %q, want shard-a", got)
	}

	// Drain shard A: snapshot stream out, health flips, creates refused.
	snap := drain(t, a)
	lines := strings.Count(string(snap), "\n")
	if lines != 1 {
		t.Fatalf("drain exported %d sessions, want 1", lines)
	}
	var ss SessionSnapshot
	if err := json.Unmarshal(snap[:len(snap)-1], &ss); err != nil {
		t.Fatal(err)
	}
	if ss.SessionID != info.SessionID || ss.Rev != dr.Rev || ss.Instance == nil {
		t.Fatalf("snapshot = {id %q rev %d instance? %v}, want {%q %d true}",
			ss.SessionID, ss.Rev, ss.Instance != nil, info.SessionID, dr.Rev)
	}
	if hresp, err := a.Client().Get(a.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		hresp.Body.Close()
		if hresp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("draining healthz = %d, want 503", hresp.StatusCode)
		}
	}
	if code := postSessionJSON(t, a.Client(), a.URL+"/v1/sessions", &SessionCreateRequest{Instance: testInstance(1)}, &SessionInfo{}); code != http.StatusServiceUnavailable {
		t.Fatalf("create on draining shard = %d, want 503", code)
	}

	// Import into shard B; re-import must be a no-op (idempotent).
	for round, wantN := range []int{1, 0} {
		resp, err := b.Client().Post(b.URL+"/v1/admin/sessions/import", "application/x-ndjson", bytes.NewReader(snap))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Imported int    `json:"imported"`
			Error    string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || out.Imported != wantN {
			t.Fatalf("import round %d: status %d imported %d (err %q), want %d",
				round, resp.StatusCode, out.Imported, out.Error, wantN)
		}
	}

	// The migrated session answers under its original id and revision.
	var infoB SessionInfo
	if resp, err := b.Client().Get(b.URL + "/v1/sessions/" + info.SessionID); err != nil {
		t.Fatal(err)
	} else {
		if err := json.NewDecoder(resp.Body).Decode(&infoB); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if infoB.SessionID != info.SessionID || infoB.Rev != dr.Rev {
		t.Fatalf("migrated session = {id %q rev %d}, want {%q %d}", infoB.SessionID, infoB.Rev, info.SessionID, dr.Rev)
	}

	// Bit-identity, both ways: the migrated solve matches the pre-move
	// session solve on A AND a fresh solve of the snapshot instance —
	// the contract internal/diff enforces for sessions.  The fresh
	// reference is an in-process NewSolver on the snapshot itself:
	// the HTTP stateless path canonicalizes (reorders classes) first,
	// and schedule makespans are order-dependent even when bounds agree.
	respB, solveB := postJSONClient(t, b.Client(), b.URL+"/v1/sessions/"+info.SessionID+"/solve", &SolveRequest{})
	if solveB.Error != "" {
		t.Fatalf("solve on B: %s", solveB.Error)
	}
	if got := respB.Header.Get(ShardHeader); got != "shard-b" {
		t.Fatalf("solve shard header = %q, want shard-b", got)
	}
	solver, err := setupsched.NewSolver(ss.Instance)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := solver.Solve(context.Background(), sched.NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	for _, cmp := range []struct {
		name      string
		got, want string
	}{
		{"makespan vs A", solveB.Makespan, solveA.Makespan},
		{"lower_bound vs A", solveB.LowerBound, solveA.LowerBound},
		{"makespan vs fresh", solveB.Makespan, fresh.Makespan.String()},
		{"lower_bound vs fresh", solveB.LowerBound, fresh.LowerBound.String()},
	} {
		if cmp.got != cmp.want {
			t.Errorf("migrated solve %s: %q != %q", cmp.name, cmp.got, cmp.want)
		}
	}
	if solveB.SessionRev != dr.Rev {
		t.Errorf("migrated solve rev = %d, want %d", solveB.SessionRev, dr.Rev)
	}

	// The session keeps evolving on its new shard: deltas apply on top of
	// the migrated revision, not from zero.
	var dr2 SessionDeltaResponse
	if code := postSessionJSON(t, b.Client(), b.URL+"/v1/sessions/"+info.SessionID+"/delta", &SessionDeltaRequest{
		Deltas: []sched.Delta{{Op: sched.DeltaSetMachines, M: 31}},
	}, &dr2); code != http.StatusOK || dr2.Error != "" {
		t.Fatalf("post-migration delta: status %d error %q", code, dr2.Error)
	}
	if dr2.Rev != dr.Rev+1 {
		t.Fatalf("post-migration rev = %d, want %d", dr2.Rev, dr.Rev+1)
	}

	// Stats reflect the move on both sides.
	statsA, statsB := getStats(t, a), getStats(t, b)
	if !statsA.Draining || statsA.ShardID != "shard-a" || statsA.Sessions.Exported != 1 {
		t.Errorf("shard A stats = {draining %v shard %q exported %d}", statsA.Draining, statsA.ShardID, statsA.Sessions.Exported)
	}
	if statsB.Draining || statsB.ShardID != "shard-b" || statsB.Sessions.Imported != 1 {
		t.Errorf("shard B stats = {draining %v shard %q imported %d}", statsB.Draining, statsB.ShardID, statsB.Sessions.Imported)
	}
}

// postJSONClient is postJSON against an absolute URL with an explicit
// client (the admin tests talk to two servers at once).
func postJSONClient(t *testing.T, client *http.Client, url string, body any) (*http.Response, *SolveResponse) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, &out
}
