package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBatchSaturationConcurrent saturates the batch gate and then slams
// it from many goroutines at once: every rejection must carry
// Retry-After, a parseable error body, and bump requests.rejected
// exactly once.  Run under -race this doubles as the data-race check on
// the admission path (gate channel + rejection counter + per-request
// response writers all touched concurrently).
func TestBatchSaturationConcurrent(t *testing.T) {
	const gateSlots = 2
	s := New(Config{Workers: 1, MaxConcurrentBatches: gateSlots, SessionCapacity: -1})
	srv := httptest.NewServer(s)
	defer srv.Close()
	client := srv.Client()

	line, _ := json.Marshal(&SolveRequest{Instance: testInstance(1), Variant: "nonp"})

	// Occupy every gate slot with a slow streaming batch whose body stays
	// open until we release it, so the fleet of goroutines below races
	// only for rejections, deterministically.
	var holders sync.WaitGroup
	var pipes []*io.PipeWriter
	for i := 0; i < gateSlots; i++ {
		pr, pw := io.Pipe()
		pipes = append(pipes, pw)
		holders.Add(1)
		go func() {
			defer holders.Done()
			req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/solve/batch", pr)
			resp, err := client.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
		pw.Write(append(line, '\n'))
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(s.batchGate) < gateSlots {
		if time.Now().After(deadline) {
			t.Fatal("holders never filled the batch gate")
		}
		time.Sleep(time.Millisecond)
	}

	// The concurrent burst: every request must be rejected because the
	// holders own all slots for the duration.
	const burst = 32
	var (
		wg          sync.WaitGroup
		rejections  atomic.Int64
		badStatus   atomic.Int64
		noRetry     atomic.Int64
		badBody     atomic.Int64
		transportEr atomic.Int64
	)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Post(srv.URL+"/v1/solve/batch", "application/x-ndjson",
				strings.NewReader(string(line)+"\n"))
			if err != nil {
				transportEr.Add(1)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusTooManyRequests {
				badStatus.Add(1)
				return
			}
			rejections.Add(1)
			if resp.Header.Get("Retry-After") == "" {
				noRetry.Add(1)
			}
			var out SolveResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.Error == "" {
				badBody.Add(1)
			}
		}()
	}
	wg.Wait()

	if n := transportEr.Load(); n != 0 {
		t.Fatalf("%d burst requests failed at the transport", n)
	}
	if n := badStatus.Load(); n != 0 {
		t.Fatalf("%d burst requests were not rejected with 429", n)
	}
	if n := noRetry.Load(); n != 0 {
		t.Errorf("%d rejections missing Retry-After", n)
	}
	if n := badBody.Load(); n != 0 {
		t.Errorf("%d rejections without a parseable error body", n)
	}
	if got, want := rejections.Load(), int64(burst); got != want {
		t.Fatalf("rejections = %d, want %d", got, want)
	}

	// Exactly once per rejection: the counter must equal the number of
	// 429s observed, no double counting under concurrency.
	if got := s.metrics.rejected.Load(); got != uint64(burst) {
		t.Fatalf("requests.rejected = %d, want %d", got, burst)
	}

	// Release the holders; their in-flight batches finish normally and
	// must NOT have been counted as rejections.
	for _, pw := range pipes {
		pw.Close()
	}
	holders.Wait()
	if got := s.metrics.rejected.Load(); got != uint64(burst) {
		t.Fatalf("requests.rejected moved to %d after drain, want %d", got, burst)
	}

	// The gate is free again: a fresh batch goes through.
	resp, err := client.Post(srv.URL+"/v1/solve/batch", "application/x-ndjson",
		strings.NewReader(string(line)+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain batch: status %d, body %s", resp.StatusCode, body)
	}
}
