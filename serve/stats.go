package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyWindow bounds the number of recent solve latencies kept for the
// p50/p99 estimates reported by /v1/stats.
const latencyWindow = 4096

// serverStats aggregates request counters and a sliding window of solve
// latencies.  Counters are atomics; the latency ring is mutex-guarded.
type serverStats struct {
	start time.Time

	solveRequests    atomic.Uint64
	batchRequests    atomic.Uint64
	batchItems       atomic.Uint64
	errors           atomic.Uint64
	rejected         atomic.Uint64
	probes           atomic.Uint64
	timeouts         atomic.Uint64
	parallelSolves   atomic.Uint64
	sessionRequests  atomic.Uint64
	sessionDeltas    atomic.Uint64
	sessionSolves    atomic.Uint64
	sessionCacheHits atomic.Uint64
	warmHits         atomic.Uint64

	mu        sync.Mutex
	latencies [latencyWindow]float64 // milliseconds, ring buffer
	next      int
	filled    int
}

func newServerStats() *serverStats {
	return &serverStats{start: time.Now()}
}

// observe records one solve latency (cache hits and cold solves alike).
func (s *serverStats) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	s.mu.Lock()
	s.latencies[s.next] = ms
	s.next = (s.next + 1) % latencyWindow
	if s.filled < latencyWindow {
		s.filled++
	}
	s.mu.Unlock()
}

// quantiles returns the count, p50, p99 and max of the retained window.
func (s *serverStats) quantiles() (count int, p50, p99, max float64) {
	s.mu.Lock()
	buf := make([]float64, s.filled)
	copy(buf, s.latencies[:s.filled])
	s.mu.Unlock()
	if len(buf) == 0 {
		return 0, 0, 0, 0
	}
	sort.Float64s(buf)
	return len(buf), quantile(buf, 0.50), quantile(buf, 0.99), buf[len(buf)-1]
}

// quantile reads the q-th quantile from an ascending-sorted slice using
// the nearest-rank method.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

// StatsResponse is the JSON body of GET /v1/stats.
type StatsResponse struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Requests      RequestStats `json:"requests"`
	Search        SearchStats  `json:"search"`
	Cache         CacheStats   `json:"cache"`
	Solvers       CacheStats   `json:"solvers"`
	Sessions      SessionStats `json:"sessions"`
	LatencyMS     LatencyStats `json:"latency_ms"`
	Runtime       RuntimeStats `json:"runtime"`
}

// RuntimeStats reports the server process's goroutine posture, for sizing
// the parallelism knobs against the actual hardware.
type RuntimeStats struct {
	// Goroutines is the live goroutine count at stats time (includes all
	// in-flight solves and their speculative probe workers).
	Goroutines int `json:"goroutines"`
	// MaxProcs is runtime.GOMAXPROCS(0), the scheduler's CPU budget.
	MaxProcs int `json:"gomaxprocs"`
	// MaxParallelism is the server's cap on the per-request knob.
	MaxParallelism int `json:"max_parallelism"`
}

// RequestStats counts requests by kind.
type RequestStats struct {
	Solve      uint64 `json:"solve"`
	Batch      uint64 `json:"batch"`
	BatchItems uint64 `json:"batch_items"`
	// Session counts requests to any /v1/sessions endpoint.
	Session uint64 `json:"session"`
	Errors  uint64 `json:"errors"`
	// Rejected counts requests turned away with 429 because the batch
	// worker pool was saturated.
	Rejected uint64 `json:"rejected"`
}

// SessionStats reports the incremental solve session subsystem: store
// occupancy, eviction pressure, and how the session engine answered its
// solves (cache return for an unchanged instance, warm-started search,
// or cold).
type SessionStats struct {
	Enabled    bool    `json:"enabled"`
	Active     int     `json:"active"`
	Capacity   int     `json:"capacity"`
	TTLSeconds float64 `json:"ttl_seconds"`
	Created    uint64  `json:"created"`
	Deleted    uint64  `json:"deleted"`
	EvictedLRU uint64  `json:"evicted_lru"`
	EvictedTTL uint64  `json:"evicted_ttl"`
	Deltas     uint64  `json:"deltas"`
	Solves     uint64  `json:"solves"`
	CacheHits  uint64  `json:"cache_hits"`
	WarmHits   uint64  `json:"warm_hits"`
}

// SearchStats reports probe-level search activity: every dual-test
// evaluation run by the searches (cache hits run none), the number of
// solves aborted by timeout or client cancellation, and how many solves
// ran with speculative probing (request parallelism > 1 after clamping).
type SearchStats struct {
	Probes         uint64 `json:"probes"`
	Timeouts       uint64 `json:"timeouts"`
	ParallelSolves uint64 `json:"parallel_solves"`
}

// CacheStats reports result-cache occupancy and effectiveness.
type CacheStats struct {
	Enabled   bool    `json:"enabled"`
	Size      int     `json:"size"`
	Capacity  int     `json:"capacity"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

// LatencyStats summarizes the sliding window of solve latencies.
type LatencyStats struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}
