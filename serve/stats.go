package serve

import (
	"runtime"
	"time"

	"setupsched/obs"
)

// This file defines the /v1/stats JSON view.  Since the obs rework the
// server keeps no separate stats bookkeeping: every number below is a
// snapshot over the serverMetrics registry (metrics.go), so /v1/stats
// and GET /metrics can never disagree.  The JSON shape predates the
// registry and is kept backward-compatible (see the golden schema test).

// StatsResponse is the JSON body of GET /v1/stats.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// ShardID is this process's identity in a distributed deployment
	// (Config.ShardID); omitted in single-box mode.
	ShardID string `json:"shard_id,omitempty"`
	// Draining reports the shard is migrating its sessions away and
	// refusing new ones (see the drain endpoint).
	Draining  bool         `json:"draining"`
	Requests  RequestStats `json:"requests"`
	Search    SearchStats  `json:"search"`
	Cache     CacheStats   `json:"cache"`
	Solvers   CacheStats   `json:"solvers"`
	Sessions  SessionStats `json:"sessions"`
	LatencyMS LatencyStats `json:"latency_ms"`
	Runtime   RuntimeStats `json:"runtime"`
}

// RuntimeStats reports the server process's goroutine posture, for sizing
// the parallelism knobs against the actual hardware.
type RuntimeStats struct {
	// Goroutines is the live goroutine count at stats time (includes all
	// in-flight solves and their speculative probe workers).
	Goroutines int `json:"goroutines"`
	// MaxProcs is runtime.GOMAXPROCS(0), the scheduler's CPU budget.
	MaxProcs int `json:"gomaxprocs"`
	// MaxParallelism is the server's cap on the per-request knob.
	MaxParallelism int `json:"max_parallelism"`
}

// RequestStats counts requests by kind.
type RequestStats struct {
	Solve      uint64 `json:"solve"`
	Batch      uint64 `json:"batch"`
	BatchItems uint64 `json:"batch_items"`
	// Session counts requests to any /v1/sessions endpoint.
	Session uint64 `json:"session"`
	Errors  uint64 `json:"errors"`
	// Rejected counts requests turned away with 429 because the batch
	// worker pool was saturated.
	Rejected uint64 `json:"rejected"`
}

// SessionStats reports the incremental solve session subsystem: store
// occupancy, eviction pressure, and how the session engine answered its
// solves (cache return for an unchanged instance, warm-started search,
// or cold).
type SessionStats struct {
	Enabled    bool    `json:"enabled"`
	Active     int     `json:"active"`
	Capacity   int     `json:"capacity"`
	TTLSeconds float64 `json:"ttl_seconds"`
	Created    uint64  `json:"created"`
	Deleted    uint64  `json:"deleted"`
	EvictedLRU uint64  `json:"evicted_lru"`
	EvictedTTL uint64  `json:"evicted_ttl"`
	Deltas     uint64  `json:"deltas"`
	Solves     uint64  `json:"solves"`
	CacheHits  uint64  `json:"cache_hits"`
	WarmHits   uint64  `json:"warm_hits"`
	// Exported/Imported count session snapshots moved by the migration
	// machinery (drain endpoint, shutdown flush, restart restore).
	Exported uint64 `json:"exported"`
	Imported uint64 `json:"imported"`
}

// SearchStats reports probe-level search activity: every dual-test
// evaluation run by the searches (cache hits run none), the number of
// solves aborted by timeout or client cancellation, and how many solves
// ran with speculative probing (request parallelism > 1 after clamping).
type SearchStats struct {
	Probes         uint64 `json:"probes"`
	Timeouts       uint64 `json:"timeouts"`
	ParallelSolves uint64 `json:"parallel_solves"`
}

// CacheStats reports result-cache occupancy and effectiveness.
type CacheStats struct {
	Enabled   bool    `json:"enabled"`
	Size      int     `json:"size"`
	Capacity  int     `json:"capacity"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

// LatencyStats summarizes solve latencies.  Quantiles are extracted from
// the sched_solve_duration_seconds histogram (fixed buckets, linear
// interpolation), converted to milliseconds.
type LatencyStats struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// buildStats assembles the /v1/stats response from the metrics registry
// and the subsystems' live occupancy.
func (s *Server) buildStats() *StatsResponse {
	m := s.metrics
	resp := &StatsResponse{
		UptimeSeconds: time.Since(m.start).Seconds(),
		ShardID:       s.cfg.ShardID,
		Draining:      s.Draining(),
		Requests: RequestStats{
			Solve:      m.solveRequests.Load(),
			Batch:      m.batchRequests.Load(),
			BatchItems: m.batchItems.Load(),
			Session:    m.sessionRequests.Load(),
			Errors:     m.errors.Load(),
			Rejected:   m.rejected.Load(),
		},
		Search: SearchStats{
			Probes:         m.probes.Load(),
			Timeouts:       m.timeouts.Load(),
			ParallelSolves: m.parallelSolves.Load(),
		},
		Runtime: RuntimeStats{
			Goroutines:     runtime.NumGoroutine(),
			MaxProcs:       runtime.GOMAXPROCS(0),
			MaxParallelism: s.cfg.MaxParallelism,
		},
	}
	if s.cache != nil {
		size, capacity := s.cache.size()
		resp.Cache = cacheStats(size, capacity, m.cacheHits, m.cacheMisses, m.cacheEvictions)
	}
	if s.solvers != nil {
		size, capacity := s.solvers.size()
		resp.Solvers = cacheStats(size, capacity, m.solverHits, m.solverMisses, m.solverEvictions)
	}
	if s.sessions != nil {
		active, capacity, ttl := s.sessions.size()
		resp.Sessions = SessionStats{
			Enabled: true, Active: active, Capacity: capacity,
			TTLSeconds: ttl.Seconds(),
			Created:    m.sessionsCreated.Load(),
			Deleted:    m.sessionsDeleted.Load(),
			EvictedLRU: m.sessionsEvictedLRU.Load(),
			EvictedTTL: m.sessionsEvictedTTL.Load(),
			Deltas:     m.sessionDeltas.Load(),
			Solves:     m.sessionSolves.Load(),
			CacheHits:  m.sessionCacheHits.Load(),
			WarmHits:   m.sessionWarmHits.Load(),
			Exported:   m.sessionsExported.Load(),
			Imported:   m.sessionsImported.Load(),
		}
	}
	p50 := m.latency.Quantile(0.50)
	p99 := m.latency.Quantile(0.99)
	resp.LatencyMS = LatencyStats{
		Count: int(m.latency.Count()),
		P50:   p50 * 1e3,
		P99:   p99 * 1e3,
		Max:   m.latency.Max() * 1e3,
	}
	return resp
}

func cacheStats(size, capacity int, hits, misses, evictions *obs.Counter) CacheStats {
	h, mi := hits.Load(), misses.Load()
	cs := CacheStats{
		Enabled: true, Size: size, Capacity: capacity,
		Hits: h, Misses: mi, Evictions: evictions.Load(),
	}
	if h+mi > 0 {
		cs.HitRate = float64(h) / float64(h+mi)
	}
	return cs
}
