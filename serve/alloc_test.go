package serve

import (
	"context"
	"testing"

	"setupsched/sched"
	"setupsched/schedgen"
)

// TestCacheHitAllocsDoNotScaleWithClasses pins the fingerprint bugfix: a
// cache hit fingerprints and collision-checks through the pooled
// canonical view instead of materializing the canonical deep copy, so
// hit-path allocations must not grow with the class count (the deep copy
// costs one Jobs clone per class — thousands of allocations on the big
// instance below).
func TestCacheHitAllocsDoNotScaleWithClasses(t *testing.T) {
	s := New(Config{})
	mk := func(classes int) *sched.Instance {
		return schedgen.Uniform(schedgen.Params{
			M: 4, Classes: classes, JobsPer: 3, MaxSetup: 20, MaxJob: 30, Seed: 5,
		})
	}
	hitAllocs := func(in *sched.Instance) float64 {
		req := &SolveRequest{Instance: in, Variant: "nonp"}
		if resp := s.solve(context.Background(), req, nil); resp.Error != "" {
			t.Fatalf("cold solve: %s", resp.Error)
		}
		var resp *SolveResponse
		n := testing.AllocsPerRun(20, func() {
			resp = s.solve(context.Background(), req, nil)
		})
		if resp == nil || resp.Error != "" || !resp.Cached {
			t.Fatalf("warm solve was not a clean cache hit: %+v", resp)
		}
		return n
	}
	small, big := hitAllocs(mk(64)), hitAllocs(mk(2048))
	if big > small+256 {
		t.Fatalf("cache-hit allocations scale with classes: %v at 64 classes, %v at 2048",
			small, big)
	}
}
