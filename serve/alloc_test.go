package serve

import (
	"context"
	"testing"

	"setupsched/sched"
	"setupsched/schedgen"
)

// TestCacheHitAllocsDoNotScaleWithClasses pins the fingerprint bugfix: a
// cache hit fingerprints and collision-checks through the pooled
// canonical view instead of materializing the canonical deep copy, so
// hit-path allocations must not grow with the class count (the deep copy
// costs one Jobs clone per class — thousands of allocations on the big
// instance below).
func TestCacheHitAllocsDoNotScaleWithClasses(t *testing.T) {
	s := New(Config{})
	mk := func(classes int) *sched.Instance {
		return schedgen.Uniform(schedgen.Params{
			M: 4, Classes: classes, JobsPer: 3, MaxSetup: 20, MaxJob: 30, Seed: 5,
		})
	}
	hitAllocs := func(in *sched.Instance) float64 {
		req := &SolveRequest{Instance: in, Variant: "nonp"}
		if resp := s.solve(context.Background(), req, nil); resp.Error != "" {
			t.Fatalf("cold solve: %s", resp.Error)
		}
		var resp *SolveResponse
		n := testing.AllocsPerRun(20, func() {
			resp = s.solve(context.Background(), req, nil)
		})
		if resp == nil || resp.Error != "" || !resp.Cached {
			t.Fatalf("warm solve was not a clean cache hit: %+v", resp)
		}
		return n
	}
	small, big := hitAllocs(mk(64)), hitAllocs(mk(2048))
	if big > small+256 {
		t.Fatalf("cache-hit allocations scale with classes: %v at 64 classes, %v at 2048",
			small, big)
	}
}

// TestUntracedSolveAllocsUnchangedByTracing pins the "tracing off the
// hot path" guarantee: with no traceparent and slow-solve logging
// disabled, the full Solve path on a server that HAS the flight
// recorder enabled allocates exactly as much as on a server with it
// disabled — the tracing feature costs nothing until a request actually
// carries a sampled context.
func TestUntracedSolveAllocsUnchangedByTracing(t *testing.T) {
	in := schedgen.Uniform(schedgen.Params{
		M: 4, Classes: 128, JobsPer: 3, MaxSetup: 20, MaxJob: 30, Seed: 7,
	})
	solveAllocs := func(s *Server) float64 {
		req := &SolveRequest{Instance: in, Variant: "nonp"}
		if resp := s.Solve(context.Background(), req); resp.Error != "" {
			t.Fatalf("cold solve: %s", resp.Error)
		}
		var resp *SolveResponse
		n := testing.AllocsPerRun(20, func() {
			resp = s.Solve(context.Background(), req)
		})
		if resp == nil || resp.Error != "" || !resp.Cached {
			t.Fatalf("warm solve was not a clean cache hit: %+v", resp)
		}
		if resp.TraceID != "" || resp.spanRoot != nil {
			t.Fatalf("untraced request grew trace state: %+v", resp)
		}
		return n
	}
	withFlight := solveAllocs(New(Config{}))                     // recorder on (default)
	noFlight := solveAllocs(New(Config{FlightRecorderSize: -1})) // recorder off
	if withFlight != noFlight {
		t.Fatalf("untraced solve allocations changed by the tracing feature: %v with flight recorder, %v without",
			withFlight, noFlight)
	}
}

// TestTracedSolveLandsInFlightRecorder is the positive control for the
// test above: the same request WITH a sampled traceparent records a
// wire tree and books a flight-recorder entry.
func TestTracedSolveLandsInFlightRecorder(t *testing.T) {
	s := New(Config{ShardID: "s0"})
	in := schedgen.Uniform(schedgen.Params{
		M: 2, Classes: 8, JobsPer: 2, MaxSetup: 9, MaxJob: 9, Seed: 3,
	})
	req := &SolveRequest{
		Instance:    in,
		Variant:     "nonp",
		TraceParent: "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	}
	resp := s.Solve(context.Background(), req)
	if resp.Error != "" {
		t.Fatalf("solve: %s", resp.Error)
	}
	if resp.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id not stamped: %q", resp.TraceID)
	}
	got := s.Flight().Snapshot(resp.TraceID, 0, 0)
	if len(got) != 1 {
		t.Fatalf("flight recorder holds %d entries for the trace, want 1", len(got))
	}
	tr := got[0]
	if tr.Shard != "s0" || tr.Service != "s0" || tr.Route != "solve" || tr.Status != 200 {
		t.Fatalf("recorded trace metadata: %+v", tr)
	}
	root := tr.Root
	if root == nil || root.Name != "handler" || root.Parent != "00f067aa0ba902b7" {
		t.Fatalf("handler span malformed: %+v", root)
	}
	if root.Child("queue") == nil || root.Child("solve") == nil {
		t.Fatalf("handler span lacks queue/solve children: %+v", root.Children)
	}
	if solve := root.Child("solve"); solve.Parent != root.SpanID {
		t.Fatalf("solve span not parented under handler: %q vs %q", solve.Parent, root.SpanID)
	}
	// An unsampled context leaves the request untraced.
	req2 := &SolveRequest{
		Instance:    in,
		Variant:     "nonp",
		TraceParent: "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00",
	}
	if resp2 := s.Solve(context.Background(), req2); resp2.TraceID != "" {
		t.Fatalf("unsampled request was traced: %q", resp2.TraceID)
	}
}
