package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"setupsched"
	"setupsched/sched"
	"setupsched/schedgen"
	"setupsched/stream"
)

// sessionTestInstance needs a real search (trivial bound rejected) so
// warm starts are observable through the API.
func sessionTestInstance(seed int64) *sched.Instance {
	return schedgen.ExpensiveSetups(schedgen.Params{
		M: 26, Classes: 31, JobsPer: 8, MaxSetup: 500, MaxJob: 60, Seed: seed,
	})
}

func postSessionJSON(t *testing.T, client *http.Client, url string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestSessionLifecycle(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()
	client := srv.Client()
	in := sessionTestInstance(1)

	// Create.
	var info SessionInfo
	if code := postSessionJSON(t, client, srv.URL+"/v1/sessions", &SessionCreateRequest{Instance: in}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d (%s)", code, info.Error)
	}
	if info.SessionID == "" || info.Fingerprint == "" || info.Rev != 0 {
		t.Fatalf("create: bad info %+v", info)
	}
	base := srv.URL + "/v1/sessions/" + info.SessionID

	// First solve: cold.
	var r1 SolveResponse
	if code := postSessionJSON(t, client, base+"/solve", &SolveRequest{Variant: "nonp"}, &r1); code != http.StatusOK {
		t.Fatalf("solve: status %d (%s)", code, r1.Error)
	}
	if r1.Cached || r1.Warm {
		t.Fatalf("first solve: cached=%v warm=%v", r1.Cached, r1.Warm)
	}

	statsProbes := func() uint64 {
		t.Helper()
		resp, err := client.Get(srv.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st.Search.Probes
	}
	probesAfterCold := statsProbes()

	// Second solve: served from the session cache.
	var r2 SolveResponse
	postSessionJSON(t, client, base+"/solve", &SolveRequest{Variant: "nonp"}, &r2)
	if !r2.Cached || r2.Makespan != r1.Makespan {
		t.Fatalf("second solve: cached=%v makespan %s (want %s)", r2.Cached, r2.Makespan, r1.Makespan)
	}
	// A cache return runs no dual tests; the executed-probe counter must
	// not move (search.probes is documented as executed probes only).
	if got := statsProbes(); got != probesAfterCold {
		t.Fatalf("cached solve moved search.probes from %d to %d", probesAfterCold, got)
	}

	// Delta, then a warm re-solve that matches a fresh stateless solve.
	var dr SessionDeltaResponse
	code := postSessionJSON(t, client, base+"/delta", &SessionDeltaRequest{Deltas: []sched.Delta{
		{Op: sched.DeltaAddJobs, Class: 0, Jobs: []int64{9, 4}},
	}}, &dr)
	if code != http.StatusOK || dr.Rev != 1 || dr.Applied != 1 {
		t.Fatalf("delta: status %d resp %+v", code, dr)
	}
	var r3 SolveResponse
	postSessionJSON(t, client, base+"/solve", &SolveRequest{Variant: "nonp"}, &r3)
	if r3.Cached {
		t.Fatal("post-delta solve served stale cache")
	}
	if !r3.Warm {
		t.Fatal("post-delta solve did not warm-start")
	}
	if r3.SessionRev != 1 {
		t.Fatalf("post-delta solve rev %d, want 1", r3.SessionRev)
	}
	// The warm session result must be bit-identical to a fresh
	// NewSolver solve of the post-delta instance.  (The stateless
	// /v1/solve endpoint is not the right reference: it solves the
	// canonical permutation for cache sharing, which may legitimately
	// land on a different — equally valid — schedule.)
	mirror := in.Clone()
	mirror.Classes[0].Jobs = append(mirror.Classes[0].Jobs, 9, 4)
	solver, err := setupsched.NewSolver(mirror)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := solver.Solve(context.Background(), sched.NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Makespan.String() != r3.Makespan || fresh.LowerBound.String() != r3.LowerBound {
		t.Fatalf("session solve (mk=%s lb=%s) != fresh solve (mk=%s lb=%s)",
			r3.Makespan, r3.LowerBound, fresh.Makespan, fresh.LowerBound)
	}

	// Info endpoint reflects the delta.
	resp, err := client.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	var got SessionInfo
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if got.Rev != 1 || got.Jobs != in.NumJobs()+2 {
		t.Fatalf("info: %+v", got)
	}

	// Stats report the session activity.
	resp, err = client.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if !stats.Sessions.Enabled || stats.Sessions.Active != 1 || stats.Sessions.Created != 1 {
		t.Fatalf("session stats: %+v", stats.Sessions)
	}
	if stats.Sessions.Solves != 3 || stats.Sessions.CacheHits != 1 || stats.Sessions.WarmHits != 1 {
		t.Fatalf("session solve stats: %+v", stats.Sessions)
	}
	if stats.Sessions.Deltas != 1 {
		t.Fatalf("session delta stats: %+v", stats.Sessions)
	}

	// Delete, then everything 404s.
	req, _ := http.NewRequest(http.MethodDelete, base, nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	var gone SolveResponse
	if code := postSessionJSON(t, client, base+"/solve", &SolveRequest{Variant: "nonp"}, &gone); code != http.StatusNotFound {
		t.Fatalf("solve after delete: status %d", code)
	}
}

func TestSessionRejectsBadRequests(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()
	client := srv.Client()

	var info SessionInfo
	if code := postSessionJSON(t, client, srv.URL+"/v1/sessions", &SessionCreateRequest{}, &info); code != http.StatusBadRequest {
		t.Fatalf("create without instance: status %d", code)
	}
	if code := postSessionJSON(t, client, srv.URL+"/v1/sessions",
		&SessionCreateRequest{Instance: &sched.Instance{M: 0}}, &info); code != http.StatusBadRequest {
		t.Fatalf("create with invalid instance: status %d", code)
	}

	postSessionJSON(t, client, srv.URL+"/v1/sessions", &SessionCreateRequest{Instance: sessionTestInstance(2)}, &info)
	base := srv.URL + "/v1/sessions/" + info.SessionID

	// A solve request carrying an instance is rejected: the session owns it.
	var sr SolveResponse
	if code := postSessionJSON(t, client, base+"/solve",
		&SolveRequest{Instance: sessionTestInstance(3), Variant: "nonp"}, &sr); code != http.StatusBadRequest {
		t.Fatalf("solve with instance: status %d", code)
	}
	if code := postSessionJSON(t, client, base+"/solve", &SolveRequest{Variant: "bogus"}, &sr); code != http.StatusBadRequest {
		t.Fatalf("solve with bad variant: status %d", code)
	}

	// A failing delta in a batch reports the applied prefix and 400.
	var dr SessionDeltaResponse
	code := postSessionJSON(t, client, base+"/delta", &SessionDeltaRequest{Deltas: []sched.Delta{
		{Op: sched.DeltaAddJobs, Class: 0, Jobs: []int64{5}},
		{Op: sched.DeltaRemoveClass, Class: 9999},
	}}, &dr)
	if code != http.StatusBadRequest || dr.Applied != 1 || dr.Rev != 1 {
		t.Fatalf("partial delta: status %d resp %+v", code, dr)
	}
	if !strings.Contains(dr.Error, "delta 1") {
		t.Fatalf("partial delta error %q does not name the failing index", dr.Error)
	}

	// Unknown session IDs 404 on every per-session route.
	bogus := srv.URL + "/v1/sessions/deadbeef"
	if code := postSessionJSON(t, client, bogus+"/delta", &SessionDeltaRequest{Deltas: []sched.Delta{{Op: sched.DeltaSetMachines, M: 1}}}, &dr); code != http.StatusNotFound {
		t.Fatalf("delta on unknown session: status %d", code)
	}
}

func TestSessionTTLAndLRUEviction(t *testing.T) {
	s := New(Config{SessionCapacity: 2, SessionTTL: time.Minute})
	now := time.Unix(1000, 0)
	s.sessions.now = func() time.Time { return now }

	mk := func(seed int64) string {
		t.Helper()
		sess, err := stream.NewSession(sessionTestInstance(seed))
		if err != nil {
			t.Fatal(err)
		}
		e, err := s.sessions.create("", sess)
		if err != nil {
			t.Fatal(err)
		}
		return e.id
	}
	a, b := mk(1), mk(2)
	if got := s.sessions.get(a); got == nil {
		t.Fatal("session a missing")
	}
	// Capacity 2: a third session evicts the LRU (b: a was touched last).
	c := mk(3)
	if s.sessions.get(b) != nil {
		t.Fatal("LRU eviction kept the least recently used session")
	}
	if s.sessions.get(a) == nil || s.sessions.get(c) == nil {
		t.Fatal("LRU eviction dropped the wrong session")
	}

	// TTL: advance past the deadline; both remaining sessions expire.
	now = now.Add(2 * time.Minute)
	if s.sessions.get(a) != nil || s.sessions.get(c) != nil {
		t.Fatal("TTL did not expire idle sessions")
	}
	created := s.metrics.sessionsCreated.Load()
	evictedLRU := s.metrics.sessionsEvictedLRU.Load()
	evictedTTL := s.metrics.sessionsEvictedTTL.Load()
	if created != 3 || evictedLRU != 1 || evictedTTL != 2 {
		t.Fatalf("eviction counters: created=%d lru=%d ttl=%d", created, evictedLRU, evictedTTL)
	}
}

func TestBatchSaturationReturns429(t *testing.T) {
	// One worker, one concurrent batch: a second concurrent batch request
	// must be rejected with 429 + Retry-After, not queued.
	s := New(Config{Workers: 1, MaxConcurrentBatches: 1, SessionCapacity: -1})
	srv := httptest.NewServer(s)
	defer srv.Close()
	client := srv.Client()

	// Occupy the single batch slot with a slow streaming request: the
	// request body stays open until we release it.
	pr, pw := io.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/solve/batch", pr)
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	line, _ := json.Marshal(&SolveRequest{Instance: testInstance(1), Variant: "nonp"})
	pw.Write(append(line, '\n'))

	// Wait until the first batch holds the gate.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(s.batchGate) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first batch request never acquired the gate")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := client.Post(srv.URL+"/v1/solve/batch", "application/x-ndjson",
		strings.NewReader(string(line)+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated batch: status %d, body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	pw.Close()
	wg.Wait()

	var stats StatsResponse
	sr, err := client.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(sr.Body).Decode(&stats)
	sr.Body.Close()
	if stats.Requests.Rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", stats.Requests.Rejected)
	}
	if stats.Sessions.Enabled {
		t.Fatal("sessions enabled despite negative capacity")
	}
}
