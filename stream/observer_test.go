package stream

import (
	"context"
	"testing"

	"setupsched"
	"setupsched/sched"
)

// countingObserver records the event stream of session solves.
type countingObserver struct {
	started, finished int
	searches          int
	lastAlgorithm     string
	lastProbes        int
}

func (c *countingObserver) ProbeStarted(sched.Rat)        { c.started++ }
func (c *countingObserver) ProbeFinished(sched.Rat, bool) { c.finished++ }
func (c *countingObserver) SearchFinished(algo string, n int) {
	c.searches++
	c.lastAlgorithm = algo
	c.lastProbes = n
}

func TestSessionObserverSeesSolvesNotCacheHits(t *testing.T) {
	ctx := context.Background()
	s, err := NewSession(testInstance(11))
	if err != nil {
		t.Fatal(err)
	}
	var obs countingObserver

	// Cold solve: the observer must see every probe plus one
	// SearchFinished carrying the result's own counts.
	r1, err := s.Solve(ctx, sched.NonPreemptive, WithObserver(&obs))
	if err != nil {
		t.Fatal(err)
	}
	if obs.finished != r1.Probes || obs.started != obs.finished {
		t.Fatalf("cold solve: started=%d finished=%d, result probes=%d",
			obs.started, obs.finished, r1.Probes)
	}
	if obs.searches != 1 || obs.lastAlgorithm != r1.Algorithm || obs.lastProbes != r1.Probes {
		t.Fatalf("SearchFinished: searches=%d algo=%q probes=%d, want 1/%q/%d",
			obs.searches, obs.lastAlgorithm, obs.lastProbes, r1.Algorithm, r1.Probes)
	}

	// Unchanged revision: answered from cache, no search, no events.
	before := obs.finished
	r2, err := s.Solve(ctx, sched.NonPreemptive, WithObserver(&obs))
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("second solve not cached")
	}
	if obs.finished != before || obs.searches != 1 {
		t.Fatal("cache hit emitted observer events")
	}

	// After a delta the solve executes (warm or cold) and the observer
	// sees exactly the probes it ran.
	if err := s.AddJobs(0, 17); err != nil {
		t.Fatal(err)
	}
	obs = countingObserver{}
	r3, err := s.Solve(ctx, sched.NonPreemptive, WithObserver(&obs))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Fatal("post-delta solve was cached")
	}
	if obs.finished == 0 || obs.searches != 1 {
		t.Fatalf("post-delta solve: finished=%d searches=%d", obs.finished, obs.searches)
	}
	if obs.lastProbes != r3.Probes {
		t.Fatalf("SearchFinished probes=%d, result probes=%d", obs.lastProbes, r3.Probes)
	}
}

func TestSessionMultipleObservers(t *testing.T) {
	ctx := context.Background()
	s, err := NewSession(testInstance(12))
	if err != nil {
		t.Fatal(err)
	}
	var a, b countingObserver
	r, err := s.Solve(ctx, sched.Splittable, WithObserver(&a), WithObserver(&b), WithObserver(nil))
	if err != nil {
		t.Fatal(err)
	}
	if a.finished != r.Probes || b.finished != r.Probes {
		t.Fatalf("fan-out mismatch: a=%d b=%d probes=%d", a.finished, b.finished, r.Probes)
	}
	if a.searches != 1 || b.searches != 1 {
		t.Fatalf("fan-out SearchFinished: a=%d b=%d", a.searches, b.searches)
	}
}

// TestSessionObserverIdentityUnchanged guards the bit-identity contract:
// attaching an observer must not change the solve's answer.
func TestSessionObserverIdentityUnchanged(t *testing.T) {
	ctx := context.Background()
	in := testInstance(13)
	s, err := NewSession(in)
	if err != nil {
		t.Fatal(err)
	}
	var obs countingObserver
	got, err := s.Solve(ctx, sched.NonPreemptive, WithObserver(&obs))
	if err != nil {
		t.Fatal(err)
	}
	want := freshResult(t, in, sched.NonPreemptive, setupsched.WithAlgorithm(setupsched.Exact32))
	assertSame(t, "observed solve", got, want)
}
