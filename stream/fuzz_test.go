package stream

import (
	"context"
	"testing"

	"setupsched"
	"setupsched/sched"
	"setupsched/schedgen"
)

// decodeDeltas turns fuzz bytes into a deterministic delta sequence
// against the evolving shape of the mirror instance.  The decoder only
// shapes proposals; validity is decided by the session and the mirror,
// which the target requires to agree.
func decodeDeltas(data []byte, mirror *sched.Instance) []sched.Delta {
	var out []sched.Delta
	for i := 0; i+3 < len(data) && len(out) < 48; i += 4 {
		op, a, b, c := data[i], int(data[i+1]), int64(data[i+2]), int(data[i+3])
		nc := len(mirror.Classes)
		var d sched.Delta
		switch op % 6 {
		case 0:
			jobs := []int64{1 + b%37}
			if c%2 == 0 {
				jobs = append(jobs, 1+int64(c%29))
			}
			d = sched.Delta{Op: sched.DeltaAddJobs, Class: a % (nc + 1), Jobs: jobs}
		case 1:
			cl := a % (nc + 1)
			j := 0
			if cl < nc && len(mirror.Classes[cl].Jobs) > 0 {
				j = c % (len(mirror.Classes[cl].Jobs) + 1)
			}
			d = sched.Delta{Op: sched.DeltaRemoveJob, Class: cl, Job: j}
		case 2:
			d = sched.Delta{Op: sched.DeltaSetSetup, Class: a % (nc + 1), Setup: b%61 - 1}
		case 3:
			d = sched.Delta{Op: sched.DeltaAddClass, Setup: b % 41, Jobs: []int64{1 + int64(c%23)}}
		case 4:
			d = sched.Delta{Op: sched.DeltaRemoveClass, Class: a % (nc + 1)}
		default:
			d = sched.Delta{Op: sched.DeltaSetMachines, M: int64(a % 10)} // 0 is invalid on purpose
		}
		out = append(out, d)
		// Keep the decoder's view in sync so later index choices track the
		// evolving shape (apply errors are fine — both replicas will agree).
		_, _ = d.Apply(mirror)
	}
	return out
}

// FuzzSessionDeltas drives a random delta sequence through a Session and
// a from-scratch replica, asserting the session subsystem's invariants:
// identical delta acceptance, identical fingerprints, a drift-free
// incremental preparation, and a final warm/cached solve that is
// bit-identical to a fresh cold solve.
func FuzzSessionDeltas(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 7, 2, 5, 0, 11, 1, 2, 3, 40, 0})
	f.Add(int64(3), []byte{20, 0, 3, 0, 1, 2, 9, 9, 4, 1, 1, 1, 3, 3, 3, 3})
	f.Add(int64(7), []byte{5, 5, 5, 5, 5, 0, 0, 0, 2, 1, 60, 1})
	f.Fuzz(func(t *testing.T, seed int64, data []byte) {
		base := schedgen.Uniform(schedgen.Params{
			M: 1 + (seed&7+7)%8, Classes: 4 + int(seed%5), JobsPer: 3,
			MaxSetup: 30, MaxJob: 40, Seed: seed,
		})
		if err := base.Validate(); err != nil {
			t.Skip("generator produced an invalid base")
		}
		sess, err := NewSession(base)
		if err != nil {
			t.Fatal(err)
		}
		mirror := base.Clone()
		deltas := decodeDeltas(data, base.Clone())

		ctx := context.Background()
		for i, d := range deltas {
			errS := sess.Apply(ctx, d)
			_, errM := d.Apply(mirror)
			if (errS == nil) != (errM == nil) {
				t.Fatalf("delta %d %s: session err %v, fresh err %v", i, d, errS, errM)
			}
			// Interleave solves so warm seeds are exercised mid-sequence,
			// not only at the end.
			if i%5 == 4 {
				if _, err := sess.Solve(ctx, sched.NonPreemptive); err != nil {
					t.Fatalf("delta %d: solve: %v", i, err)
				}
			}
		}

		if err := sess.SelfCheck(); err != nil {
			t.Fatal(err)
		}
		sessFP, err := sess.Fingerprint(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := sessFP, mirror.Fingerprint(); got != want {
			t.Fatalf("fingerprint %.16s != fresh %.16s", got, want)
		}

		solver, err := setupsched.NewSolver(mirror)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range sched.Variants {
			got, err := sess.Solve(ctx, v)
			if err != nil {
				t.Fatalf("%v: %v", v, err)
			}
			want, err := solver.Solve(ctx, v)
			if err != nil {
				t.Fatalf("%v fresh: %v", v, err)
			}
			if got.Fallback || want.Fallback {
				continue
			}
			if !got.Makespan.Equal(want.Makespan) || !got.LowerBound.Equal(want.LowerBound) ||
				!got.Guess.Equal(want.Guess) || got.Algorithm != want.Algorithm {
				t.Fatalf("%v: session (mk=%s lb=%s T=%s) != fresh (mk=%s lb=%s T=%s)", v,
					got.Makespan, got.LowerBound, got.Guess,
					want.Makespan, want.LowerBound, want.Guess)
			}
		}
	})
}
