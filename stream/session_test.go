package stream

import (
	"context"
	"errors"
	"testing"

	"setupsched"
	"setupsched/sched"
	"setupsched/schedgen"
)

// testInstance is machine-rich and setup-dominated so the trivial bound
// is rejected and the exact searches genuinely narrow a bracket — the
// regime where warm starts have something to save.
func testInstance(seed int64) *sched.Instance {
	return schedgen.ExpensiveSetups(schedgen.Params{
		M: 26, Classes: 31, JobsPer: 8, MaxSetup: 500, MaxJob: 60, Seed: seed,
	})
}

// freshResult solves the instance cold through the public Solver API.
func freshResult(t *testing.T, in *sched.Instance, v sched.Variant, opts ...setupsched.Option) *setupsched.Result {
	t.Helper()
	s, err := setupsched.NewSolver(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background(), v, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertSame(t *testing.T, tag string, got *Result, want *setupsched.Result) {
	t.Helper()
	if got.Fallback || want.Fallback {
		return
	}
	if !got.Makespan.Equal(want.Makespan) || !got.LowerBound.Equal(want.LowerBound) ||
		!got.Guess.Equal(want.Guess) || got.Algorithm != want.Algorithm {
		t.Fatalf("%s: session (mk=%s lb=%s T=%s %s) != fresh (mk=%s lb=%s T=%s %s)", tag,
			got.Makespan, got.LowerBound, got.Guess, got.Algorithm,
			want.Makespan, want.LowerBound, want.Guess, want.Algorithm)
	}
}

func TestSessionColdCachedWarm(t *testing.T) {
	ctx := context.Background()
	in := testInstance(1)
	s, err := NewSession(in)
	if err != nil {
		t.Fatal(err)
	}

	r1, err := s.Solve(ctx, sched.NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached || r1.Warm {
		t.Fatalf("first solve reported cached=%v warm=%v", r1.Cached, r1.Warm)
	}
	assertSame(t, "cold", r1, freshResult(t, in, sched.NonPreemptive))

	r2, err := s.Solve(ctx, sched.NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("unchanged-instance re-solve was not served from the cache")
	}
	if !r2.Makespan.Equal(r1.Makespan) {
		t.Fatal("cached result differs from the original")
	}

	// A small delta: the re-solve must warm-start yet stay bit-identical
	// to a fresh cold solve of the new instance.
	if err := s.AddJobs(0, 7, 3); err != nil {
		t.Fatal(err)
	}
	mirror := in.Clone()
	if _, err := (sched.Delta{Op: sched.DeltaAddJobs, Class: 0, Jobs: []int64{7, 3}}).Apply(mirror); err != nil {
		t.Fatal(err)
	}
	r3, err := s.Solve(ctx, sched.NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Fatal("post-delta solve served stale cache")
	}
	fresh := freshResult(t, mirror, sched.NonPreemptive)
	assertSame(t, "post-delta", r3, fresh)
	if !r3.Warm {
		t.Fatal("post-delta re-solve did not warm-start")
	}
	if r3.Probes >= fresh.Probes {
		t.Fatalf("warm solve probed %d times, cold %d; expected savings", r3.Probes, fresh.Probes)
	}

	st := s.Stats()
	if st.CacheHits != 1 || st.WarmHits != 1 || st.Solves != 2 || st.Deltas != 1 {
		t.Fatalf("stats = %+v, want 1 cache hit, 1 warm hit, 2 solves, 1 delta", st)
	}
}

// TestSessionIdentityAcrossAlgorithms replays a delta sequence and checks
// every paper (variant, algorithm) combination against a fresh solver
// after each edit.
func TestSessionIdentityAcrossAlgorithms(t *testing.T) {
	ctx := context.Background()
	in := testInstance(2)
	s, err := NewSession(in)
	if err != nil {
		t.Fatal(err)
	}
	mirror := in.Clone()
	deltas := []sched.Delta{
		{Op: sched.DeltaAddJobs, Class: 3, Jobs: []int64{41, 7}},
		{Op: sched.DeltaSetSetup, Class: 1, Setup: 95},
		{Op: sched.DeltaRemoveJob, Class: 3, Job: 0},
		{Op: sched.DeltaAddClass, Setup: 12, Jobs: []int64{30, 2}},
		{Op: sched.DeltaSetMachines, M: 9},
		{Op: sched.DeltaRemoveClass, Class: 2},
	}
	for _, d := range deltas {
		if err := s.Apply(ctx, d); err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if _, err := d.Apply(mirror); err != nil {
			t.Fatalf("%s (mirror): %v", d, err)
		}
		if err := s.SelfCheck(); err != nil {
			t.Fatalf("after %s: %v", d, err)
		}
		for _, run := range setupsched.PaperRuns() {
			opts := []setupsched.Option{setupsched.WithAlgorithm(run.Algorithm)}
			want := freshResult(t, mirror, run.Variant, opts...)
			got, err := s.Solve(ctx, run.Variant, WithAlgorithm(run.Algorithm))
			if err != nil {
				t.Fatalf("%s %s: %v", d, run, err)
			}
			assertSame(t, d.String()+" "+run.String(), got, want)
		}
	}
}

func TestSessionSolveAll(t *testing.T) {
	ctx := context.Background()
	s, err := NewSession(testInstance(3))
	if err != nil {
		t.Fatal(err)
	}
	rrs, err := s.SolveAll(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rrs) != 9 {
		t.Fatalf("SolveAll returned %d runs, want 9", len(rrs))
	}
	for _, rr := range rrs {
		if rr.Err != nil {
			t.Fatalf("%s: %v", rr.Run, rr.Err)
		}
	}
	// Same revision: everything must now be cached.
	rrs2, err := s.SolveAll(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range rrs2 {
		if !rr.Result.Cached {
			t.Fatalf("%s: second SolveAll not cached", rr.Run)
		}
	}
	if _, err := s.SolveAll(ctx, nil, WithAlgorithm(setupsched.Exact32)); err == nil {
		t.Fatal("SolveAll accepted WithAlgorithm")
	}
}

func TestSessionMachineScalingDropsSeeds(t *testing.T) {
	ctx := context.Background()
	in := testInstance(4)
	s, err := NewSession(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(ctx, sched.Splittable); err != nil {
		t.Fatal(err)
	}
	if err := s.SetMachines(in.M * 2); err != nil {
		t.Fatal(err)
	}
	mirror := in.Clone()
	mirror.M *= 2
	r, err := s.Solve(ctx, sched.Splittable)
	if err != nil {
		t.Fatal(err)
	}
	if r.Warm {
		t.Fatal("solve after machine scaling claimed a warm start; seeds must not survive scaling")
	}
	assertSame(t, "scaled", r, freshResult(t, mirror, sched.Splittable))
	// The next edit re-establishes seeds at the new machine count.
	if err := s.AddJobs(0, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := (sched.Delta{Op: sched.DeltaAddJobs, Class: 0, Jobs: []int64{5}}).Apply(mirror); err != nil {
		t.Fatal(err)
	}
	r2, err := s.Solve(ctx, sched.Splittable)
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, "rescaled+delta", r2, freshResult(t, mirror, sched.Splittable))
}

func TestSessionRejectsInvalid(t *testing.T) {
	if _, err := NewSession(nil); !errors.Is(err, setupsched.ErrNilInstance) {
		t.Fatalf("NewSession(nil) = %v", err)
	}
	var vErr *setupsched.ValidationError
	if _, err := NewSession(&sched.Instance{M: 0}); !errors.As(err, &vErr) {
		t.Fatalf("NewSession(invalid) = %v, want ValidationError", err)
	}

	s, err := NewSession(testInstance(5))
	if err != nil {
		t.Fatal(err)
	}
	rev := s.Rev()
	if err := s.AddJobs(999, 1); err == nil {
		t.Fatal("out-of-range delta accepted")
	}
	if s.Rev() != rev {
		t.Fatal("rejected delta bumped the revision")
	}
	if _, err := s.Solve(context.Background(), sched.NonPreemptive, WithEpsilon(2)); err == nil {
		t.Fatal("epsilon 2 accepted")
	}
	if _, err := s.Solve(context.Background(), sched.NonPreemptive, WithAlgorithm(setupsched.Algorithm(99))); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSessionCanceledContext(t *testing.T) {
	s, err := NewSession(testInstance(6))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Solve(ctx, sched.NonPreemptive); !errors.Is(err, setupsched.ErrCanceled) {
		t.Fatalf("canceled solve = %v, want ErrCanceled match", err)
	}
}

// TestSessionOwnsItsCopy pins that the session is isolated from caller
// mutations of the source instance.
func TestSessionOwnsItsCopy(t *testing.T) {
	in := testInstance(7)
	s, err := NewSession(in)
	if err != nil {
		t.Fatal(err)
	}
	want := in.Fingerprint()
	in.Classes[0].Jobs[0] = 12345 // caller mutates their copy
	got, err := s.Fingerprint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("caller mutation leaked into the session")
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestShiftSeedOverflow(t *testing.T) {
	r := sched.RatOf(1<<50, 3)
	if _, ok := shiftSeed(r, 1<<62); ok {
		t.Fatal("overflowing shift reported ok")
	}
	if got, ok := shiftSeed(r, 6); !ok || !got.Equal(sched.RatOf(1<<50+18, 3)) {
		t.Fatalf("small shift = %v, %v", got, ok)
	}
	if got, ok := shiftSeed(r, 0); !ok || !got.Equal(r) {
		t.Fatalf("zero shift = %v, %v", got, ok)
	}
}
