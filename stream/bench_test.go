package stream

import (
	"context"
	"testing"

	"setupsched"
	"setupsched/sched"
	"setupsched/schedgen"
)

// benchInstance mirrors internal/benchjson.BenchCoreInstance: machine-rich,
// setup-dominated and value-heavy, so every exact search genuinely pays
// its Theta(log T) probes.  (Duplicated here because benchjson imports
// stream — the session datapoints of BENCH_core.json — so this test
// cannot import it back.)
func benchInstance(n int) *sched.Instance {
	classes := n / 8
	if classes < 1 {
		classes = 1
	}
	return schedgen.ExpensiveSetups(schedgen.Params{
		M: int64(n/10 + 1), Classes: classes, JobsPer: 8,
		MaxSetup: 2_000_000_000, MaxJob: 200_000_000, Seed: int64(n),
	})
}

// benchDelta alternates one job arriving and departing, so the instance
// stays bounded while every re-solve sees a real change.
func benchDelta(i int, jobs0 int) sched.Delta {
	if i%2 == 0 {
		return sched.Delta{Op: sched.DeltaAddJobs, Class: 0, Jobs: []int64{17}}
	}
	return sched.Delta{Op: sched.DeltaRemoveJob, Class: 0, Job: jobs0}
}

// BenchmarkSession_WarmResolve measures the session's amortized cost per
// change: one small delta plus a warm re-solve at n=1e4.  Compare with
// BenchmarkSession_ColdResolve — the acceptance bar is warm >= 2x faster.
func BenchmarkSession_WarmResolve(b *testing.B) {
	in := benchInstance(10000)
	jobs0 := len(in.Classes[0].Jobs)
	s, err := NewSession(in)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Solve(ctx, sched.NonPreemptive); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Apply(ctx, benchDelta(i, jobs0)); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Solve(ctx, sched.NonPreemptive); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSession_ColdResolve is the stateless baseline the session
// amortizes: the same delta stream, but every change pays a fresh
// NewSolver (O(n) preparation) and a cold search.
func BenchmarkSession_ColdResolve(b *testing.B) {
	in := benchInstance(10000)
	jobs0 := len(in.Classes[0].Jobs)
	work := in.Clone()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := benchDelta(i, jobs0).Apply(work); err != nil {
			b.Fatal(err)
		}
		solver, err := setupsched.NewSolver(work)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := solver.Solve(ctx, sched.NonPreemptive); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSession_CachedResolve measures the unchanged-instance fast
// path: no deltas between solves, so every call returns the cached
// result.
func BenchmarkSession_CachedResolve(b *testing.B) {
	s, err := NewSession(benchInstance(10000))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Solve(ctx, sched.NonPreemptive); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(ctx, sched.NonPreemptive); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSession_DeltaApply isolates the incremental preparation
// maintenance: one small delta per iteration, no solves.
func BenchmarkSession_DeltaApply(b *testing.B) {
	in := benchInstance(10000)
	jobs0 := len(in.Classes[0].Jobs)
	s, err := NewSession(in)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Apply(ctx, benchDelta(i, jobs0)); err != nil {
			b.Fatal(err)
		}
	}
}
