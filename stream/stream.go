// Package stream provides incremental solve sessions: a Session wraps a
// mutable scheduling instance, maintains the solver preparation under
// delta edits, and warm-starts re-solves from previously certified
// bounds, so a stream of small changes pays for the *delta*, not the
// instance — the online workload of Kawase et al. (arXiv:2507.11311) and
// Mäcker et al. (arXiv:1504.07066) served with the guarantees of Deppert
// & Jansen (SPAA 2019).
//
// A Session owns a private copy of its instance.  Deltas (sched.Delta:
// job churn, setup drift, class add/remove, machine scaling) are applied
// through the session, which patches the per-instance preparation
// (internal/core's incremental Prep maintenance) instead of re-running
// the O(n) cold pass.  Solve and SolveAll then reuse two levels of state:
//
//   - unchanged instance: the previous Result is returned outright
//     (Result.Cached);
//   - changed instance: the exact searches are warm-started from the last
//     certified [reject, accept] bracket shifted by the delta's load
//     bounds, re-certifying an unchanged-or-slightly-moved threshold in
//     O(1) probes instead of a full O(log) cold search (Result.Warm).
//
// # Bit-identity contract
//
// A session solve returns exactly what a cold solve of the current
// instance returns: Makespan, Guess, LowerBound, Algorithm, Fallback and
// the Schedule are bit-identical to NewSolver(instance).Solve(...) at
// every revision.  Three mechanisms enforce this:
//
//   - the patched preparation is field-for-field identical to a fresh one
//     (exact integer patches; see core.Inc and Session.SelfCheck);
//   - warm seeds are validated by real probes and only narrow the search
//     bracket, and the exact searches converge to the unique threshold of
//     the monotone dual test from any correctly narrowed bracket;
//   - a warm solve that lands on a documented bounded-round fallback path
//     (whose certified bound is trajectory-dependent) is discarded and
//     re-run cold.
//
// Probe counts and traces are NOT part of the contract — a warm solve
// runs fewer probes; that is the point.  The eps-search's certified pair
// is a function of its full bisection trajectory, so it never warm-starts
// (only the unchanged-instance cache applies); the 2-approximations run
// no search and are simply recomputed.  internal/diff enforces the
// contract differentially over the schedgen catalog and drift traces, the
// same way PR 4 enforced serial/parallel identity.
//
// A Session serializes all access internally (delta application, solves
// and stats are mutually exclusive); any number of goroutines may share
// one.  For concurrent *solving* of one instance use setupsched.Solver,
// which is immutable and fully parallel — a Session's job is to absorb
// mutation.
package stream

import (
	"context"
	"errors"
	"fmt"
	"math"

	"setupsched"
	"setupsched/internal/core"
	"setupsched/sched"
)

// Result is a session solve outcome: the solver Result plus the session
// bookkeeping of how it was obtained.
type Result struct {
	*setupsched.Result
	// Cached reports the result was returned from the session cache
	// because no delta arrived since it was computed.
	Cached bool
	// Warm reports the search reused the previous certified bracket (a
	// validated warm start).  False for cached, cold and non-search runs.
	Warm bool
	// Rev is the session revision the result is valid for.
	Rev uint64
}

// Stats are cumulative session counters.
type Stats struct {
	// Deltas is the number of applied (accepted) deltas.
	Deltas uint64
	// Solves counts solver runs actually executed (cache returns excluded).
	Solves uint64
	// CacheHits counts solves answered from the unchanged-revision cache.
	CacheHits uint64
	// WarmHits counts executed solves whose warm seed was validated.
	WarmHits uint64
	// Rebuilds counts staleness-triggered full preparation rebuilds.
	Rebuilds uint64
	// Rev is the current session revision (one per applied delta).
	Rev uint64
}

// solveKey identifies one cached (variant, algorithm, epsilon) result.
// Auto normalizes to Exact32 (identical solver path).
type solveKey struct {
	v    sched.Variant
	algo setupsched.Algorithm
	eps  float64 // nonzero only for EpsilonSearch
}

// entry is the per-key cache: the last result plus everything needed to
// seed the next warm start.
type entry struct {
	rev        uint64 // session revision the result was computed at
	epoch      uint64 // machine-count epoch (seeds do not survive scaling)
	cumAdded   int64  // session load counters at compute time
	cumRemoved int64
	res        *setupsched.Result
	seedLo     sched.Rat
	hasSeedLo  bool
}

// Session is a mutable scheduling instance with delta-maintained solver
// state.  Create one with NewSession; all methods are safe for concurrent
// use (serialized internally).
type Session struct {
	mu      chanMutex
	in      *sched.Instance // owned private copy
	inc     *core.Inc
	scratch core.BuildScratch   // reusable builder memory (guarded by mu)
	fpView  sched.CanonicalView // reusable fingerprint view (guarded by mu)

	rev        uint64
	machEpoch  uint64
	cumAdded   int64 // total load added by deltas since session start
	cumRemoved int64 // total load removed by deltas since session start

	entries map[solveKey]*entry

	deltas, solves, cacheHits, warmHits uint64
}

// chanMutex is a context-aware mutex: Solve honors ctx cancellation while
// waiting for its turn behind a long-running solve on the same session.
type chanMutex chan struct{}

func (m chanMutex) lock()   { m <- struct{}{} }
func (m chanMutex) unlock() { <-m }
func (m chanMutex) lockCtx(ctx context.Context) error {
	if ctx == nil {
		m.lock()
		return nil
	}
	select {
	case m <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("%w: %w", setupsched.ErrCanceled, ctx.Err())
	}
}

// NewSession validates the instance and builds a session around a private
// deep copy; later mutations of the caller's instance do not affect it.
func NewSession(in *sched.Instance) (*Session, error) {
	if in == nil {
		return nil, setupsched.ErrNilInstance
	}
	if err := in.Validate(); err != nil {
		return nil, &setupsched.ValidationError{Err: err}
	}
	own := in.Clone()
	return &Session{
		mu:      make(chanMutex, 1),
		in:      own,
		inc:     core.NewInc(own),
		entries: make(map[solveKey]*entry),
	}, nil
}

// Instance returns a deep copy of the session's current instance.
func (s *Session) Instance() *sched.Instance {
	s.mu.lock()
	defer s.mu.unlock()
	return s.in.Clone()
}

// Fingerprint returns the canonical-form fingerprint of the current
// instance (an O(n log n) pass through the session's reusable canonical
// view, so repeated calls allocate nothing beyond the hex digest).  The
// context cancels the wait for the session lock behind a long-running
// solve.
func (s *Session) Fingerprint(ctx context.Context) (string, error) {
	if err := s.mu.lockCtx(ctx); err != nil {
		return "", err
	}
	defer s.mu.unlock()
	s.fpView.Bind(s.in)
	fp := s.fpView.Fingerprint()
	s.fpView.Unbind()
	return fp, nil
}

// Rev returns the session revision: the number of applied deltas.
func (s *Session) Rev() uint64 {
	s.mu.lock()
	defer s.mu.unlock()
	return s.rev
}

// Snapshot returns a deep copy of the current instance together with the
// revision it is at, taken under one lock so the pair is consistent.
// The snapshot is everything another process needs to re-create a
// bit-identical session (see AdvanceTo): warm seeds and cached results
// are optimizations a new session rebuilds, never correctness inputs.
// The context cancels the wait for the session lock behind a
// long-running solve.
func (s *Session) Snapshot(ctx context.Context) (*sched.Instance, uint64, error) {
	if err := s.mu.lockCtx(ctx); err != nil {
		return nil, 0, err
	}
	defer s.mu.unlock()
	return s.in.Clone(), s.rev, nil
}

// AdvanceTo fast-forwards the session revision to rev without applying
// deltas.  It exists for migration: a session re-created from a
// Snapshot's instance starts at rev 0, and AdvanceTo restores the
// original revision so clients holding Result.Rev or If-Match-style
// revision checks keep working across the move.  Revisions at or below
// the current one are a no-op (idempotent re-import).  The context
// cancels the wait for the session lock.
func (s *Session) AdvanceTo(ctx context.Context, rev uint64) error {
	if err := s.mu.lockCtx(ctx); err != nil {
		return err
	}
	defer s.mu.unlock()
	if rev > s.rev {
		s.rev = rev
	}
	return nil
}

// Shape describes the session's current instance.
type Shape struct {
	// Rev is the session revision the shape was read at.
	Rev uint64
	// Machines, Classes and Jobs are the instance's current counts.
	Machines int64
	Classes  int
	Jobs     int
}

// Describe returns the current shape and revision.  The context cancels
// the wait for the session lock behind a long-running solve.
func (s *Session) Describe(ctx context.Context) (Shape, error) {
	if err := s.mu.lockCtx(ctx); err != nil {
		return Shape{}, err
	}
	defer s.mu.unlock()
	p := s.inc.Prep()
	return Shape{Rev: s.rev, Machines: p.M, Classes: p.C, Jobs: p.NJob}, nil
}

// Stats returns a snapshot of the session counters.
func (s *Session) Stats() Stats {
	s.mu.lock()
	defer s.mu.unlock()
	return Stats{
		Deltas:    s.deltas,
		Solves:    s.solves,
		CacheHits: s.cacheHits,
		WarmHits:  s.warmHits,
		Rebuilds:  uint64(s.inc.Rebuilds()),
		Rev:       s.rev,
	}
}

// ErrStale reports that a Result's revision no longer matches the
// session's: deltas arrived after the solve that produced it.
var ErrStale = errors.New("stream: result revision is stale")

// Verify re-checks a session result against the session's current
// instance (setupsched.Verify: feasible schedule, matching makespan,
// sound bound).  If deltas arrived since the result was computed it
// returns ErrStale without checking — a result only describes the
// revision it was solved at.  The context cancels the wait for the
// session lock behind a long-running solve.
func (s *Session) Verify(ctx context.Context, v sched.Variant, r *Result) error {
	if r == nil || r.Result == nil {
		return errors.New("stream: Verify needs a result")
	}
	if err := s.mu.lockCtx(ctx); err != nil {
		return err
	}
	defer s.mu.unlock()
	if r.Rev != s.rev {
		return ErrStale
	}
	return setupsched.Verify(s.in, v, r.Result)
}

// SelfCheck verifies the delta-maintained preparation against a fresh
// cold preparation of the current instance and re-validates the instance.
// It is O(n); tests, fuzzing and the diff harness call it, production
// code does not need to.
func (s *Session) SelfCheck() error {
	s.mu.lock()
	defer s.mu.unlock()
	if err := s.in.Validate(); err != nil {
		return fmt.Errorf("stream: session instance invalid: %w", err)
	}
	return s.inc.Check()
}

// Apply applies the deltas in order, stopping at the first invalid one
// (already-applied deltas stay applied; the error names the failing
// index).  Each accepted delta bumps the session revision.  The context
// cancels the wait for the session lock behind a long-running solve;
// once the lock is held the (microsecond-scale) application runs to
// completion.
func (s *Session) Apply(ctx context.Context, ds ...sched.Delta) error {
	if err := s.mu.lockCtx(ctx); err != nil {
		return err
	}
	defer s.mu.unlock()
	for i, d := range ds {
		if err := s.applyLocked(d); err != nil {
			if len(ds) > 1 {
				return fmt.Errorf("stream: delta %d of %d (%s): %w", i, len(ds), d, err)
			}
			return err
		}
	}
	return nil
}

func (s *Session) applyLocked(d sched.Delta) error {
	added, removed := d.LoadShift(s.in)
	machines := d.Op == sched.DeltaSetMachines
	if err := s.inc.Apply(d); err != nil {
		return err
	}
	s.rev++
	s.deltas++
	s.cumAdded += added
	s.cumRemoved += removed
	if machines {
		s.machEpoch++
	}
	return nil
}

// The convenience delta methods below apply one delta each; they block
// until the session lock is free (use Apply with a context to bound the
// wait behind a long-running solve).

// AddJobs appends jobs to class (delta op "add_jobs").
func (s *Session) AddJobs(class int, jobs ...int64) error {
	return s.Apply(context.Background(), sched.Delta{Op: sched.DeltaAddJobs, Class: class, Jobs: jobs})
}

// RemoveJob removes job index job from class (delta op "remove_job").
func (s *Session) RemoveJob(class, job int) error {
	return s.Apply(context.Background(), sched.Delta{Op: sched.DeltaRemoveJob, Class: class, Job: job})
}

// SetSetup replaces class's setup time (delta op "set_setup").
func (s *Session) SetSetup(class int, setup int64) error {
	return s.Apply(context.Background(), sched.Delta{Op: sched.DeltaSetSetup, Class: class, Setup: setup})
}

// AddClass appends a new class (delta op "add_class").
func (s *Session) AddClass(setup int64, jobs ...int64) error {
	return s.Apply(context.Background(), sched.Delta{Op: sched.DeltaAddClass, Setup: setup, Jobs: jobs})
}

// RemoveClass removes class index class (delta op "remove_class"); later
// class indices shift down by one.
func (s *Session) RemoveClass(class int) error {
	return s.Apply(context.Background(), sched.Delta{Op: sched.DeltaRemoveClass, Class: class})
}

// SetMachines replaces the machine count (delta op "set_machines").
// Machine scaling invalidates warm seeds (the makespan scale changes);
// the next solve per key runs cold and re-establishes them.
func (s *Session) SetMachines(m int64) error {
	return s.Apply(context.Background(), sched.Delta{Op: sched.DeltaSetMachines, M: m})
}

// SolveOption configures one Session.Solve or SolveAll call.
type SolveOption func(*solveCfg) error

type solveCfg struct {
	algorithm setupsched.Algorithm
	epsilon   float64
	cold      bool
	observers []setupsched.Observer
}

// WithAlgorithm selects the approximation algorithm (default Auto, the
// exact 3/2-approximation).  Applies to Solve only; SolveAll takes the
// algorithm from each run.
func WithAlgorithm(a setupsched.Algorithm) SolveOption {
	return func(c *solveCfg) error {
		switch a {
		case setupsched.Auto, setupsched.TwoApprox, setupsched.EpsilonSearch, setupsched.Exact32:
			c.algorithm = a
			return nil
		}
		return fmt.Errorf("stream: unknown algorithm %v", a)
	}
}

// WithEpsilon sets the accuracy of EpsilonSearch runs; the value must lie
// in (0, 1) (see setupsched.WithEpsilon).
func WithEpsilon(eps float64) SolveOption {
	return func(c *solveCfg) error {
		if eps <= 0 || eps >= 1 {
			return &setupsched.EpsilonRangeError{Epsilon: eps}
		}
		c.epsilon = eps
		return nil
	}
}

// WithObserver attaches a probe-level Observer to this call: it sees
// every dual-test evaluation of the executed search exactly as a
// Solver-attached observer would (see setupsched.Observer), followed by
// one SearchFinished with the final algorithm name and probe count.  A
// solve answered from the session's unchanged-revision cache executes no
// search and emits no events.  Warm-started solves emit only the probes
// they actually run — fewer than a cold search; that is the point.
// Multiple observers may be attached; nil observers are ignored.  This
// is the hook obs.SpanRecorder plugs into for session solve traces.
func WithObserver(o setupsched.Observer) SolveOption {
	return func(c *solveCfg) error {
		if o != nil {
			c.observers = append(c.observers, o)
		}
		return nil
	}
}

// WithCold disables the session cache and warm seeding for this call: the
// solve runs exactly like a fresh Solver.  Diff harnesses and benchmarks
// use it; the result still refreshes the session cache and seeds.
func WithCold() SolveOption {
	return func(c *solveCfg) error {
		c.cold = true
		return nil
	}
}

func resolveOpts(opts []SolveOption) (*solveCfg, error) {
	cfg := &solveCfg{algorithm: setupsched.Auto, epsilon: setupsched.DefaultEpsilon}
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(cfg); err != nil {
			return nil, err
		}
	}
	return cfg, nil
}

// Solve computes an approximate schedule for the session's current
// instance under the given variant, reusing session state across calls:
// an unchanged instance returns the cached previous result, a changed one
// warm-starts from the previous certified bracket where the algorithm
// allows it (see the package comment for the bit-identity contract).  The
// context cancels both the wait for the session lock and the search.
func (s *Session) Solve(ctx context.Context, v sched.Variant, opts ...SolveOption) (*Result, error) {
	cfg, err := resolveOpts(opts)
	if err != nil {
		return nil, err
	}
	if err := s.mu.lockCtx(ctx); err != nil {
		return nil, err
	}
	defer s.mu.unlock()
	return s.solveLocked(ctx, v, cfg.algorithm, cfg.epsilon, cfg.cold, cfg.observer())
}

// RunResult is the outcome of one run of SolveAll; exactly one of Result
// and Err is non-nil.
type RunResult struct {
	Run    setupsched.Run
	Result *Result
	Err    error
}

// SolveAll solves the given (variant, algorithm) runs — nil means the
// nine paper combinations (setupsched.PaperRuns) — sequentially off the
// session's shared state, each reusing its own cache and warm seeds.  The
// returned slice has one entry per run in order; per-run failures land in
// RunResult.Err, and a canceled context marks every remaining run.
func (s *Session) SolveAll(ctx context.Context, runs []setupsched.Run, opts ...SolveOption) ([]RunResult, error) {
	cfg, err := resolveOpts(opts)
	if err != nil {
		return nil, err
	}
	if cfg.algorithm != setupsched.Auto {
		return nil, fmt.Errorf("stream: WithAlgorithm does not apply to SolveAll; the algorithm is part of each run")
	}
	if runs == nil {
		runs = setupsched.PaperRuns()
	}
	if err := s.mu.lockCtx(ctx); err != nil {
		return nil, err
	}
	defer s.mu.unlock()
	obs := cfg.observer()
	out := make([]RunResult, len(runs))
	for i, r := range runs {
		res, err := s.solveLocked(ctx, r.Variant, r.Algorithm, cfg.epsilon, cfg.cold, obs)
		out[i] = RunResult{Run: r, Result: res, Err: err}
	}
	return out, nil
}

// observer collapses the attached observers into one core.Observer (nil
// when none).  setupsched.Observer and core.Observer have identical
// method sets (Rat is an alias), so a single observer passes through
// without wrapping.
func (c *solveCfg) observer() core.Observer {
	switch len(c.observers) {
	case 0:
		return nil
	case 1:
		return c.observers[0]
	default:
		return fanObserver(c.observers)
	}
}

// fanObserver fans events out to several observers in order.
type fanObserver []setupsched.Observer

func (f fanObserver) ProbeStarted(T sched.Rat) {
	for _, o := range f {
		o.ProbeStarted(T)
	}
}

func (f fanObserver) ProbeFinished(T sched.Rat, accepted bool) {
	for _, o := range f {
		o.ProbeFinished(T, accepted)
	}
}

func (f fanObserver) SearchFinished(algorithm string, probes int) {
	for _, o := range f {
		o.SearchFinished(algorithm, probes)
	}
}

// warmable reports whether the algorithm's exact search supports bracket
// seeding (see the package comment for why the eps-search does not).
func warmable(a setupsched.Algorithm) bool {
	return a == setupsched.Exact32
}

func normKey(v sched.Variant, a setupsched.Algorithm, eps float64) solveKey {
	if a == setupsched.Auto {
		a = setupsched.Exact32
	}
	k := solveKey{v: v, algo: a}
	if a == setupsched.EpsilonSearch {
		k.eps = eps
	}
	return k
}

func (s *Session) solveLocked(ctx context.Context, v sched.Variant, algo setupsched.Algorithm, eps float64, cold bool, obs core.Observer) (*Result, error) {
	key := normKey(v, algo, eps)
	ent := s.entries[key]
	if ent != nil && ent.rev == s.rev && !cold {
		s.cacheHits++
		return &Result{Result: ent.res, Cached: true, Rev: s.rev}, nil
	}

	var seed *core.BracketSeed
	if !cold && warmable(key.algo) && ent != nil && ent.epoch == s.machEpoch {
		// Optimism-ordered candidate ladders.  First the previous
		// certified pair unshifted — small deltas usually leave the
		// threshold in place, so re-confirming costs two probes — then the
		// pair shifted by the delta's load bounds (the threshold provably
		// moves up by at most the added load and down by at most the
		// removed load), which catches a moved threshold in a bracket of
		// width |delta| instead of the full cold range.
		seed = &core.BracketSeed{His: []sched.Rat{ent.res.Guess}}
		if add := s.cumAdded - ent.cumAdded; add != 0 {
			if hi, ok := shiftSeed(ent.res.Guess, add); ok {
				seed.His = append(seed.His, hi)
			}
		}
		if ent.hasSeedLo {
			seed.Los = append(seed.Los, ent.seedLo)
			if rem := s.cumRemoved - ent.cumRemoved; rem != 0 {
				if lo, ok := shiftSeed(ent.seedLo, -rem); ok {
					seed.Los = append(seed.Los, lo)
				}
			}
		}
	}

	r, err := s.runCore(ctx, v, key.algo, eps, seed, obs)
	if err != nil {
		return nil, wrapErr(err)
	}
	if r.Fallback && seed != nil {
		// The bounded-round fallback's certified bound depends on the
		// search trajectory, which a warm bracket changes; discard and
		// re-run cold so the session answer matches a fresh solve exactly.
		// The observer sees both searches' probes — they all ran.
		if r, err = s.runCore(ctx, v, key.algo, eps, nil, obs); err != nil {
			return nil, wrapErr(err)
		}
	}
	s.solves++
	if r.SeedUsed {
		s.warmHits++
	}
	if obs != nil {
		obs.SearchFinished(r.Algorithm, r.Probes)
	}

	res := &setupsched.Result{
		Schedule:   r.Schedule,
		Makespan:   r.Schedule.Makespan(),
		Guess:      r.T,
		LowerBound: r.LowerBound,
		Ratio:      r.RatioUpperBound(),
		Algorithm:  r.Algorithm,
		Probes:     r.Probes,
		Fallback:   r.Fallback,
	}
	s.entries[key] = &entry{
		rev:        s.rev,
		epoch:      s.machEpoch,
		cumAdded:   s.cumAdded,
		cumRemoved: s.cumRemoved,
		res:        res,
		seedLo:     r.SeedLo,
		hasSeedLo:  r.HasSeedLo,
	}
	return &Result{Result: res, Warm: r.SeedUsed, Rev: s.rev}, nil
}

// runCore dispatches one algorithm run against the maintained Prep.  The
// session's build scratch is lent to every run — the session lock
// serializes them, which is exactly the soundness condition Ctl.Scratch
// demands — so steady-state re-solves stop paying the schedule builder's
// allocations.
func (s *Session) runCore(ctx context.Context, v sched.Variant, algo setupsched.Algorithm, eps float64, seed *core.BracketSeed, obs core.Observer) (*core.Result, error) {
	ctl := core.Ctl{Ctx: ctx, Obs: obs, Seed: seed, Scratch: &s.scratch}
	p := s.inc.Prep()
	switch algo {
	case setupsched.TwoApprox:
		if v == sched.Splittable {
			return p.SolveSplit2(ctl)
		}
		return p.SolveNonp2(ctl, v)
	case setupsched.EpsilonSearch:
		return p.SolveEps(ctl, v, eps)
	default: // Auto, Exact32
		switch v {
		case sched.Splittable:
			return p.SolveSplitJump(ctl)
		case sched.Preemptive:
			return p.SolvePmtnJump(ctl)
		default:
			return p.SolveNonpSearch(ctl)
		}
	}
}

// wrapErr gives context errors escaping a solve the
// setupsched.ErrCanceled identity, mirroring the Solver API's contract.
func wrapErr(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", setupsched.ErrCanceled, err)
	}
	return err
}

// shiftSeed shifts a certified guess by a signed load delta, reporting
// false when the exact arithmetic would overflow (the seed is then simply
// not used — warm starts are an optimization, never a requirement).
func shiftSeed(r sched.Rat, by int64) (sched.Rat, bool) {
	if by == 0 {
		return r, true
	}
	d := r.Den()
	a := by
	if a < 0 {
		if a == math.MinInt64 {
			return sched.Rat{}, false
		}
		a = -a
	}
	n := r.Num()
	if n < 0 {
		n = -n
	}
	if a > (math.MaxInt64-n)/d {
		return sched.Rat{}, false
	}
	return r.AddInt(by), true
}
