package setupsched

import (
	"context"
	"errors"
	"testing"

	"setupsched/schedgen"
)

// multiProbeInstance needs a genuine search (its trivial bound is
// rejected), so solves run several probes and give cancellation and
// probe-limit machinery something to interrupt.
func multiProbeInstance() *Instance {
	return &Instance{
		M: 2,
		Classes: []Class{
			{Setup: 3, Jobs: []int64{4, 5, 6}},
			{Setup: 7, Jobs: []int64{2, 2, 9}},
		},
	}
}

func TestNewSolverValidation(t *testing.T) {
	if _, err := NewSolver(nil); !errors.Is(err, ErrNilInstance) {
		t.Errorf("nil instance: got %v, want ErrNilInstance", err)
	}
	_, err := NewSolver(&Instance{M: 0})
	var vErr *ValidationError
	if !errors.As(err, &vErr) {
		t.Fatalf("invalid instance: got %T (%v), want *ValidationError", err, err)
	}
	if vErr.Unwrap() == nil || vErr.Error() != vErr.Unwrap().Error() {
		t.Errorf("ValidationError must mirror its cause, got %q", vErr.Error())
	}
}

// TestSolverReuseMatchesOneShot solves every variant under every
// algorithm twice on one shared Solver and compares against fresh
// one-shot Solve calls: preparation reuse must not change any result or
// leak state between solves.
func TestSolverReuseMatchesOneShot(t *testing.T) {
	rng := []int64{3, 17}
	for _, seed := range rng {
		in := schedgen.Uniform(schedgen.Params{
			M: 3, Classes: 6, JobsPer: 5, MaxSetup: 30, MaxJob: 40, Seed: seed,
		})
		solver, err := NewSolver(in)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for _, v := range []Variant{Splittable, Preemptive, NonPreemptive} {
			for _, algo := range []Algorithm{Auto, TwoApprox, EpsilonSearch, Exact32} {
				want, err := Solve(in, v, &Options{Algorithm: algo})
				if err != nil {
					t.Fatalf("%v/%v one-shot: %v", v, algo, err)
				}
				for round := 0; round < 2; round++ {
					got, err := solver.Solve(ctx, v, WithAlgorithm(algo))
					if err != nil {
						t.Fatalf("%v/%v round %d: %v", v, algo, round, err)
					}
					if !got.Makespan.Equal(want.Makespan) ||
						!got.LowerBound.Equal(want.LowerBound) ||
						!got.Guess.Equal(want.Guess) ||
						got.Algorithm != want.Algorithm ||
						got.Probes != want.Probes {
						t.Fatalf("%v/%v round %d: solver result (mk=%s lb=%s T=%s %s p=%d) != one-shot (mk=%s lb=%s T=%s %s p=%d)",
							v, algo, round,
							got.Makespan, got.LowerBound, got.Guess, got.Algorithm, got.Probes,
							want.Makespan, want.LowerBound, want.Guess, want.Algorithm, want.Probes)
					}
					if err := Verify(in, v, got); err != nil {
						t.Fatalf("%v/%v round %d: %v", v, algo, round, err)
					}
				}
			}
		}
	}
}

// cancelOnProbe cancels a context when the n-th probe starts.
type cancelOnProbe struct {
	cancel context.CancelFunc
	after  int
	seen   int
}

func (c *cancelOnProbe) ProbeStarted(Rat) {
	c.seen++
	if c.seen == c.after {
		c.cancel()
	}
}
func (c *cancelOnProbe) ProbeFinished(Rat, bool)    {}
func (c *cancelOnProbe) SearchFinished(string, int) {}

func TestCancellationMidSearch(t *testing.T) {
	in := multiProbeInstance()
	solver, err := NewSolver(in)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the search really needs several probes.
	res, err := solver.Solve(context.Background(), NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes < 3 {
		t.Fatalf("test instance too easy: %d probes", res.Probes)
	}

	for _, algo := range []Algorithm{Exact32, EpsilonSearch} {
		ctx, cancel := context.WithCancel(context.Background())
		obs := &cancelOnProbe{cancel: cancel, after: 2}
		got, err := solver.Solve(ctx, NonPreemptive, WithAlgorithm(algo), WithObserver(obs))
		cancel()
		if got != nil {
			t.Fatalf("%v: canceled solve returned a partial result", algo)
		}
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%v: error %v does not match ErrCanceled", algo, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: error %v does not unwrap to ctx.Err()", algo, err)
		}
		// The search must stop within one probe of the cancellation.
		if obs.seen > obs.after+1 {
			t.Fatalf("%v: %d probes started after cancellation at probe %d", algo, obs.seen-obs.after, obs.after)
		}
	}

	// A context that is already done never starts a probe.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := solver.Solve(ctx, Splittable); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled ctx: %v", err)
	}
	if _, _, err := solver.DualTest(ctx, Splittable, Rat{}.AddInt(10)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled DualTest: %v", err)
	}
	// The solver must remain usable after a canceled solve.
	if _, err := solver.Solve(context.Background(), NonPreemptive); err != nil {
		t.Fatalf("solver unusable after cancellation: %v", err)
	}
}

func TestEpsilonValidation(t *testing.T) {
	in := multiProbeInstance()
	solver, err := NewSolver(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0, -1, 1, 2.5} {
		_, err := solver.Solve(context.Background(), NonPreemptive,
			WithAlgorithm(EpsilonSearch), WithEpsilon(eps))
		var eErr *EpsilonRangeError
		if !errors.As(err, &eErr) || eErr.Epsilon != eps {
			t.Errorf("eps=%v: got %v, want *EpsilonRangeError", eps, err)
		}
	}
	// The legacy shim treats a zero epsilon as "use the default" but
	// rejects explicit garbage.
	if _, err := Solve(in, NonPreemptive, &Options{Algorithm: EpsilonSearch}); err != nil {
		t.Errorf("legacy zero epsilon: %v", err)
	}
	if _, err := Solve(in, NonPreemptive, &Options{Algorithm: EpsilonSearch, Epsilon: -3}); err == nil {
		t.Error("legacy negative epsilon accepted")
	}
	// In-range epsilon still works.
	if _, err := solver.Solve(context.Background(), NonPreemptive,
		WithAlgorithm(EpsilonSearch), WithEpsilon(0.25)); err != nil {
		t.Errorf("eps=0.25: %v", err)
	}
	// The legacy shim always ignored Epsilon for other algorithms; a
	// garbage value there must not start failing.
	if _, err := Solve(in, NonPreemptive, &Options{Algorithm: TwoApprox, Epsilon: 5}); err != nil {
		t.Errorf("legacy non-eps algorithm with garbage epsilon: %v", err)
	}
}

func TestProbeLimit(t *testing.T) {
	solver, err := NewSolver(multiProbeInstance())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := solver.Solve(ctx, NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solver.Solve(ctx, NonPreemptive, WithProbeLimit(1)); !errors.Is(err, ErrProbeLimit) {
		t.Fatalf("probe limit 1: got %v, want ErrProbeLimit", err)
	}
	if _, err := solver.Solve(ctx, NonPreemptive, WithProbeLimit(res.Probes)); err != nil {
		t.Fatalf("probe limit == probes needed (%d): %v", res.Probes, err)
	}
	if _, err := solver.Solve(ctx, NonPreemptive, WithProbeLimit(-1)); err == nil {
		t.Fatal("negative probe limit accepted")
	}
	// Search-only options are rejected by the single-probe DualTest.
	if _, _, err := solver.DualTest(ctx, NonPreemptive, Rat{}.AddInt(10), WithProbeLimit(3)); err == nil {
		t.Fatal("DualTest accepted WithProbeLimit")
	}
	if _, _, err := solver.DualTest(ctx, NonPreemptive, Rat{}.AddInt(10), WithAlgorithm(TwoApprox)); err == nil {
		t.Fatal("DualTest accepted WithAlgorithm")
	}
}

// recordingObserver captures the full event stream.
type recordingObserver struct {
	probes   []Probe
	finished []string
	reported int
}

func (r *recordingObserver) ProbeStarted(Rat) {}
func (r *recordingObserver) ProbeFinished(T Rat, accepted bool) {
	r.probes = append(r.probes, Probe{T: T, Accepted: accepted})
}
func (r *recordingObserver) SearchFinished(algorithm string, probes int) {
	r.finished = append(r.finished, algorithm)
	r.reported = probes
}

func TestTraceAndObserver(t *testing.T) {
	solver, err := NewSolver(multiProbeInstance())
	if err != nil {
		t.Fatal(err)
	}
	obs := &recordingObserver{}
	res, err := solver.Solve(context.Background(), NonPreemptive, WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != res.Probes {
		t.Fatalf("trace has %d entries for %d probes", len(res.Trace), res.Probes)
	}
	if len(obs.probes) != len(res.Trace) {
		t.Fatalf("observer saw %d probes, trace has %d", len(obs.probes), len(res.Trace))
	}
	for i := range res.Trace {
		if !obs.probes[i].T.Equal(res.Trace[i].T) || obs.probes[i].Accepted != res.Trace[i].Accepted {
			t.Fatalf("probe %d: observer %+v != trace %+v", i, obs.probes[i], res.Trace[i])
		}
	}
	// The accepted guess the schedule was built for appears in the trace
	// as an accepted probe.
	found := false
	for _, p := range res.Trace {
		if p.Accepted && p.T.Equal(res.Guess) {
			found = true
		}
	}
	if !found {
		t.Fatalf("accepted guess %s not in trace %+v", res.Guess, res.Trace)
	}
	if len(obs.finished) != 1 || obs.finished[0] != res.Algorithm || obs.reported != res.Probes {
		t.Fatalf("SearchFinished: %v/%d, want [%s]/%d", obs.finished, obs.reported, res.Algorithm, res.Probes)
	}

	// DualTest feeds the same observer hooks.
	obs2 := &recordingObserver{}
	acc, _, err := solver.DualTest(context.Background(), NonPreemptive, Rat{}.AddInt(1), WithObserver(obs2))
	if err != nil || acc {
		t.Fatalf("DualTest(1) = %v, %v", acc, err)
	}
	if len(obs2.probes) != 1 || obs2.probes[0].Accepted {
		t.Fatalf("DualTest observer events: %+v", obs2.probes)
	}
}

// TestSolverDualTestMatchesLegacy pins the shim equivalence.
func TestSolverDualTestMatchesLegacy(t *testing.T) {
	in := multiProbeInstance()
	solver, err := NewSolver(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{Splittable, Preemptive, NonPreemptive} {
		for _, T := range []int64{1, 10, 20, 40} {
			guess := Rat{}.AddInt(T)
			accNew, sNew, errNew := solver.DualTest(context.Background(), v, guess)
			accOld, sOld, errOld := DualTest(in, v, guess)
			if accNew != accOld || (errNew == nil) != (errOld == nil) {
				t.Fatalf("%v T=%d: solver (%v,%v) != legacy (%v,%v)", v, T, accNew, errNew, accOld, errOld)
			}
			if accNew && !sNew.Makespan().Equal(sOld.Makespan()) {
				t.Fatalf("%v T=%d: schedule makespans differ: %s vs %s", v, T, sNew.Makespan(), sOld.Makespan())
			}
		}
	}
}

func TestLowerBoundMethodMatchesLegacy(t *testing.T) {
	in := multiProbeInstance()
	solver, err := NewSolver(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{Splittable, Preemptive, NonPreemptive} {
		want, err := LowerBound(in, v)
		if err != nil {
			t.Fatal(err)
		}
		if got := solver.LowerBound(v); !got.Equal(want) {
			t.Errorf("%v: Solver.LowerBound %s != LowerBound %s", v, got, want)
		}
	}
}

// TestLegacyShimCompat pins behaviors the deprecated shims must keep
// from the pre-Solver implementation.
func TestLegacyShimCompat(t *testing.T) {
	in := multiProbeInstance()
	// Out-of-enum Algorithm values ran the default exact-3/2 path.
	res, err := Solve(in, NonPreemptive, &Options{Algorithm: Algorithm(7)})
	if err != nil {
		t.Fatalf("legacy out-of-enum algorithm: %v", err)
	}
	if res.Algorithm != "nonp/binsearch" {
		t.Errorf("legacy out-of-enum algorithm ran %q, want the exact path", res.Algorithm)
	}
}
