package setupsched

import (
	"context"
	"errors"
	"testing"

	"setupsched/internal/exact"
	"setupsched/schedgen"
)

// TestRefExactSolve pins the RefExact public surface: the reference
// backend returns the true optimum, so Makespan, Guess and LowerBound
// collapse to one value, the ratio is exactly 1, and the witness passes
// Verify.
func TestRefExactSolve(t *testing.T) {
	in := multiProbeInstance()
	s, err := NewSolver(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background(), NonPreemptive, WithAlgorithm(RefExact))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "exact" {
		t.Errorf("algorithm name %q, want %q", res.Algorithm, "exact")
	}
	if res.Ratio != 1 {
		t.Errorf("ratio %g, want exactly 1", res.Ratio)
	}
	if !res.Makespan.Equal(res.LowerBound) || !res.Makespan.Equal(res.Guess) {
		t.Errorf("exact result must collapse makespan=%s guess=%s lb=%s", res.Makespan, res.Guess, res.LowerBound)
	}
	if res.Fallback || res.Trace != nil {
		t.Errorf("exact result must not carry fallback/trace: %+v", res)
	}
	if err := Verify(in, NonPreemptive, res); err != nil {
		t.Errorf("Verify rejected the exact result: %v", err)
	}
	// The optimum must agree with the independent exhaustive search.
	want, err := exact.NonPreemptive(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan.CmpInt(want) != 0 {
		t.Errorf("RefExact optimum %s != exhaustive %d", res.Makespan, want)
	}
	// And it must lower-bound every approximation's makespan.
	approx, err := s.Solve(context.Background(), NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	if approx.Makespan.Less(res.Makespan) {
		t.Errorf("3/2-approximation makespan %s below exact optimum %s", approx.Makespan, res.Makespan)
	}
}

// TestRefExactUnsupportedVariants pins that the reference backend only
// solves the non-preemptive variant.
func TestRefExactUnsupportedVariants(t *testing.T) {
	s, err := NewSolver(multiProbeInstance())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{Splittable, Preemptive} {
		if _, err := s.Solve(context.Background(), v, WithAlgorithm(RefExact)); !errors.Is(err, ErrExactUnsupported) {
			t.Errorf("%v: got %v, want ErrExactUnsupported", v, err)
		}
	}
}

// TestRefExactBudgetError pins the typed budget error on the public
// surface: a one-node budget must surface an *ExactBudgetError matching
// ErrExactBudget with a sane certified bracket.
func TestRefExactBudgetError(t *testing.T) {
	in := schedgen.BigJobs(schedgen.Params{M: 4, Classes: 8, JobsPer: 4, MaxSetup: 50, MaxJob: 80, Seed: 3})
	s, err := NewSolver(in)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Solve(context.Background(), NonPreemptive, WithAlgorithm(RefExact), WithNodeBudget(1))
	if err == nil {
		t.Skip("instance solved greedily; budget never consulted")
	}
	if !errors.Is(err, ErrExactBudget) {
		t.Fatalf("error %v does not match ErrExactBudget", err)
	}
	var be *ExactBudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not an *ExactBudgetError", err)
	}
	if be.Budget != 1 || be.Nodes < 1 || be.Lo < 1 || be.Lo > be.Hi {
		t.Errorf("implausible budget error %+v", be)
	}
}

// TestRefExactOptionValidation pins WithNodeBudget's input checking and
// that other algorithms ignore the option.
func TestRefExactOptionValidation(t *testing.T) {
	s, err := NewSolver(multiProbeInstance())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(context.Background(), NonPreemptive, WithNodeBudget(-1)); err == nil {
		t.Error("negative node budget accepted")
	}
	// A tiny budget must not perturb the approximation algorithms.
	res, err := s.Solve(context.Background(), NonPreemptive, WithNodeBudget(1))
	if err != nil {
		t.Errorf("approximation with node budget failed: %v", err)
	} else if res.Schedule == nil {
		t.Error("approximation with node budget returned no schedule")
	}
}

// TestRefExactTooLarge pins the size gate's public sentinel.
func TestRefExactTooLarge(t *testing.T) {
	in := &Instance{M: 2, Classes: []Class{{Setup: 1}}}
	for j := 0; j <= exact.MaxBranchBoundJobs; j++ {
		in.Classes[0].Jobs = append(in.Classes[0].Jobs, 1)
	}
	s, err := NewSolver(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(context.Background(), NonPreemptive, WithAlgorithm(RefExact)); !errors.Is(err, ErrExactTooLarge) {
		t.Errorf("oversized instance: got %v, want ErrExactTooLarge", err)
	}
}

// TestRefExactCancel pins that cancellation surfaces with the ErrCanceled
// identity like every other solve.
func TestRefExactCancel(t *testing.T) {
	in := schedgen.Uniform(schedgen.Params{M: 8, Classes: 40, JobsPer: 5, MaxSetup: 100, MaxJob: 200, Seed: 1})
	s, err := NewSolver(in)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Solve(ctx, NonPreemptive, WithAlgorithm(RefExact)); !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled exact solve returned %v, want ErrCanceled", err)
	}
}

// TestRefExactSolveAll pins RefExact as one more SolveAll run alongside
// the paper algorithms, including the observer's SearchFinished event.
func TestRefExactSolveAll(t *testing.T) {
	s, err := NewSolver(multiProbeInstance())
	if err != nil {
		t.Fatal(err)
	}
	obs := &countingObserver{}
	runs := []Run{
		{Variant: NonPreemptive, Algorithm: Exact32},
		{Variant: NonPreemptive, Algorithm: RefExact},
		{Variant: NonPreemptive, Algorithm: RefExact}, // also reject non-nonp below
	}
	out, err := s.SolveAll(context.Background(), WithRuns(runs...), WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(runs) {
		t.Fatalf("got %d results for %d runs", len(out), len(runs))
	}
	for i, rr := range out {
		if rr.Err != nil {
			t.Fatalf("run %d (%s): %v", i, rr.Run, rr.Err)
		}
	}
	approx, ref := out[0].Result, out[1].Result
	if approx.Makespan.Less(ref.Makespan) {
		t.Errorf("approximation %s below exact optimum %s", approx.Makespan, ref.Makespan)
	}
	if !ref.Makespan.Equal(out[2].Result.Makespan) {
		t.Errorf("repeated RefExact runs disagree: %s vs %s", ref.Makespan, out[2].Result.Makespan)
	}
	if obs.finished != len(runs) {
		t.Errorf("observer saw %d SearchFinished events, want %d", obs.finished, len(runs))
	}
	// A RefExact run for an unsupported variant fails per-run, not whole-call.
	out, err = s.SolveAll(context.Background(), WithRuns(Run{Variant: Splittable, Algorithm: RefExact}))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(out[0].Err, ErrExactUnsupported) {
		t.Errorf("splittable RefExact run: got %v, want ErrExactUnsupported", out[0].Err)
	}
}

// countingObserver counts SearchFinished events; safe for SolveAll's
// serial default.
type countingObserver struct{ finished int }

func (c *countingObserver) ProbeStarted(Rat)           {}
func (c *countingObserver) ProbeFinished(Rat, bool)    {}
func (c *countingObserver) SearchFinished(string, int) { c.finished++ }
