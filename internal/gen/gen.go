// Package gen produces deterministic synthetic instance families for tests
// and benchmarks.
//
// The paper has no empirical section, so these families are designed to
// exercise the structural regimes its analysis distinguishes: cheap vs
// expensive setups, small batches (s_i + P(C_i) << OPT), single-job
// classes (the Schuurman-Woeginger regime), big jobs near T/2, and
// many-machine splittable instances.
package gen

import (
	"fmt"
	"math/rand"

	"setupsched/sched"
)

// Params control the random instance generator.
type Params struct {
	M        int64 // machines
	Classes  int   // number of classes c
	JobsPer  int   // expected jobs per class (>= 1)
	MaxSetup int64 // setups drawn from [0, MaxSetup]
	MaxJob   int64 // processing times drawn from [1, MaxJob]
	Seed     int64
}

// Uniform draws setups and job lengths uniformly.
func Uniform(p Params) *sched.Instance {
	rng := rand.New(rand.NewSource(p.Seed))
	in := &sched.Instance{M: p.M}
	for c := 0; c < p.Classes; c++ {
		nj := 1
		if p.JobsPer > 1 {
			nj = 1 + rng.Intn(2*p.JobsPer-1)
		}
		cl := sched.Class{Setup: rng.Int63n(p.MaxSetup + 1)}
		for j := 0; j < nj; j++ {
			cl.Jobs = append(cl.Jobs, 1+rng.Int63n(p.MaxJob))
		}
		in.Classes = append(in.Classes, cl)
	}
	return in
}

// ExpensiveSetups makes setups dominate processing times, so most classes
// are expensive at the interesting makespan guesses.
func ExpensiveSetups(p Params) *sched.Instance {
	rng := rand.New(rand.NewSource(p.Seed))
	in := &sched.Instance{M: p.M}
	for c := 0; c < p.Classes; c++ {
		cl := sched.Class{Setup: p.MaxSetup/2 + rng.Int63n(p.MaxSetup/2+1)}
		nj := 1 + rng.Intn(maxInt(p.JobsPer, 1))
		for j := 0; j < nj; j++ {
			cl.Jobs = append(cl.Jobs, 1+rng.Int63n(maxInt64(p.MaxJob/4, 1)))
		}
		in.Classes = append(in.Classes, cl)
	}
	return in
}

// SmallBatches produces many light classes (the Monma-Potts/Chen regime
// where s_i + P(C_i) is far below OPT).
func SmallBatches(p Params) *sched.Instance {
	rng := rand.New(rand.NewSource(p.Seed))
	in := &sched.Instance{M: p.M}
	for c := 0; c < p.Classes; c++ {
		cl := sched.Class{Setup: rng.Int63n(maxInt64(p.MaxSetup/8, 1) + 1)}
		nj := 1 + rng.Intn(maxInt(p.JobsPer, 1))
		for j := 0; j < nj; j++ {
			cl.Jobs = append(cl.Jobs, 1+rng.Int63n(maxInt64(p.MaxJob/8, 1)))
		}
		in.Classes = append(in.Classes, cl)
	}
	return in
}

// SingleJobClasses produces |C_i| = 1 instances (the Schuurman-Woeginger
// preemptive regime).
func SingleJobClasses(p Params) *sched.Instance {
	rng := rand.New(rand.NewSource(p.Seed))
	in := &sched.Instance{M: p.M}
	for c := 0; c < p.Classes; c++ {
		in.Classes = append(in.Classes, sched.Class{
			Setup: rng.Int63n(p.MaxSetup + 1),
			Jobs:  []int64{1 + rng.Int63n(p.MaxJob)},
		})
	}
	return in
}

// BigJobs places many jobs just above and below T/2-style thresholds,
// stressing the J+/K/C* partitions.
func BigJobs(p Params) *sched.Instance {
	rng := rand.New(rand.NewSource(p.Seed))
	in := &sched.Instance{M: p.M}
	base := maxInt64(p.MaxJob, 8)
	for c := 0; c < p.Classes; c++ {
		cl := sched.Class{Setup: rng.Int63n(base/4 + 1)}
		nj := 1 + rng.Intn(maxInt(p.JobsPer, 1))
		for j := 0; j < nj; j++ {
			switch rng.Intn(3) {
			case 0: // big
				cl.Jobs = append(cl.Jobs, base/2+rng.Int63n(base/2+1))
			case 1: // near the boundary
				cl.Jobs = append(cl.Jobs, base/2-rng.Int63n(base/8+1))
			default: // small
				cl.Jobs = append(cl.Jobs, 1+rng.Int63n(base/4))
			}
		}
		in.Classes = append(in.Classes, cl)
	}
	return in
}

// Zipf draws class sizes and job lengths from a heavy-tailed distribution,
// producing a few dominant classes.
func Zipf(p Params) *sched.Instance {
	rng := rand.New(rand.NewSource(p.Seed))
	zipf := rand.NewZipf(rng, 1.5, 1, uint64(maxInt64(p.MaxJob-1, 1)))
	zipfS := rand.NewZipf(rng, 1.3, 1, uint64(maxInt64(p.MaxSetup, 1)))
	in := &sched.Instance{M: p.M}
	for c := 0; c < p.Classes; c++ {
		cl := sched.Class{Setup: int64(zipfS.Uint64())}
		nj := 1 + rng.Intn(maxInt(p.JobsPer, 1))
		for j := 0; j < nj; j++ {
			cl.Jobs = append(cl.Jobs, 1+int64(zipf.Uint64()))
		}
		in.Classes = append(in.Classes, cl)
	}
	return in
}

// Family is a named generator.
type Family struct {
	Name string
	Make func(Params) *sched.Instance
}

// Families lists all generator families.
var Families = []Family{
	{"uniform", Uniform},
	{"expensive", ExpensiveSetups},
	{"smallbatch", SmallBatches},
	{"singlejob", SingleJobClasses},
	{"bigjobs", BigJobs},
	{"zipf", Zipf},
}

// ByName returns the named family.
func ByName(name string) (Family, error) {
	for _, f := range Families {
		if f.Name == name {
			return f, nil
		}
	}
	return Family{}, fmt.Errorf("gen: unknown family %q", name)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
