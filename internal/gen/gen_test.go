package gen

import (
	"testing"

	"setupsched/sched"
)

func TestAllFamiliesProduceValidInstances(t *testing.T) {
	for _, fam := range Families {
		for seed := int64(0); seed < 20; seed++ {
			in := fam.Make(Params{
				M: 1 + seed%7, Classes: 1 + int(seed)%9, JobsPer: 1 + int(seed)%5,
				MaxSetup: 1 + seed*3, MaxJob: 1 + seed*7, Seed: seed,
			})
			if err := in.Validate(); err != nil {
				t.Fatalf("%s seed %d: %v", fam.Name, seed, err)
			}
			if in.NumClasses() == 0 || in.NumJobs() == 0 {
				t.Fatalf("%s seed %d: empty instance", fam.Name, seed)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	p := Params{M: 4, Classes: 6, JobsPer: 3, MaxSetup: 20, MaxJob: 30, Seed: 99}
	for _, fam := range Families {
		a, b := fam.Make(p), fam.Make(p)
		if a.NumJobs() != b.NumJobs() || a.N() != b.N() {
			t.Errorf("%s: generator not deterministic", fam.Name)
		}
	}
}

func TestFamilyShapes(t *testing.T) {
	p := Params{M: 4, Classes: 40, JobsPer: 4, MaxSetup: 100, MaxJob: 100, Seed: 3}

	// expensive: setups at least half the configured maximum.
	exp := ExpensiveSetups(p)
	for i := range exp.Classes {
		if exp.Classes[i].Setup < p.MaxSetup/2 {
			t.Fatalf("expensive family made cheap setup %d", exp.Classes[i].Setup)
		}
	}
	// smallbatch: batch weights well below max setup + jobs.
	small := SmallBatches(p)
	for i := range small.Classes {
		if small.Classes[i].Setup > p.MaxSetup/8 {
			t.Fatalf("smallbatch family made setup %d", small.Classes[i].Setup)
		}
	}
	// singlejob: every class has exactly one job.
	single := SingleJobClasses(p)
	for i := range single.Classes {
		if len(single.Classes[i].Jobs) != 1 {
			t.Fatalf("singlejob family made %d jobs", len(single.Classes[i].Jobs))
		}
	}
	// zipf produces valid instances with heavy tails (sanity only).
	z := Zipf(p)
	if err := z.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	f, err := ByName("uniform")
	if err != nil || f.Name != "uniform" {
		t.Errorf("ByName(uniform) = %v, %v", f.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestBigJobsHitThresholds(t *testing.T) {
	in := BigJobs(Params{M: 3, Classes: 30, JobsPer: 5, MaxJob: 64, MaxSetup: 10, Seed: 1})
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// The family must actually produce jobs above half the base size.
	big := 0
	for i := range in.Classes {
		for _, tj := range in.Classes[i].Jobs {
			if tj > 32 {
				big++
			}
		}
	}
	if big == 0 {
		t.Error("bigjobs family produced no big jobs")
	}
	_ = sched.Splittable
}
