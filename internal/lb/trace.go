package lb

import (
	"net/http"
	"sync"
	"time"

	"setupsched/obs"
)

// Distributed tracing at the front tier.  The proxy opens one root span
// per proxied request: a "route" child brackets body parsing and the
// ring decision, and one "upstream" child per backend hop measures the
// proxied call (on the batch route, one upstream span per owning shard
// with one "item" child per NDJSON line).  The context rides to the
// shard as a W3C traceparent — the request header on solve/session
// routes, a per-line "traceparent" JSON field on the batch route — so
// the shard's handler/queue/prepare/search/build tree hangs under the
// matching upstream (or item) span and the whole request shares one
// trace id.  Completed roots land in the proxy's flight recorder
// (GET /v1/debug/traces), keyed by that id: `schedload -trace-report`
// joins them against the shard-side recorders for end-to-end latency
// attribution.
//
// A request arriving with its own valid sampled traceparent keeps the
// caller's trace id (the lb root becomes a child of the caller's span);
// anything else gets a fresh sampled root.

// lbTrace accumulates one request's span tree.  The batch route appends
// upstream spans from per-shard goroutines, hence the mutex.
type lbTrace struct {
	p     *Proxy
	ctx   obs.TraceContext // the root span's identity
	start time.Time
	route string

	mu        sync.Mutex
	root      *obs.Span
	routeSpan *obs.Span
}

// beginTrace opens the root span for one proxied request.
func (p *Proxy) beginTrace(r *http.Request, route string) *lbTrace {
	start := time.Now()
	var tc obs.TraceContext
	var parent string
	if in, ok := obs.TraceFromHeader(r.Header); ok && in.Sampled {
		// The caller already traces this request: keep its trace id and
		// hang the lb root under the caller's span.
		tc = p.childOf(in)
		parent = in.SpanID.String()
	} else if p.cfg.TraceIDs != nil {
		tc = p.cfg.TraceIDs.NewTrace()
	} else {
		tc = obs.NewTrace()
	}
	root := &obs.Span{
		Name:    route,
		TraceID: tc.TraceID.String(),
		SpanID:  tc.SpanID.String(),
		Parent:  parent,
	}
	t := &lbTrace{p: p, ctx: tc, start: start, route: route, root: root}
	rc := p.childOf(tc)
	t.routeSpan = &obs.Span{Name: "route", SpanID: rc.SpanID.String(), Parent: root.SpanID}
	root.Children = append(root.Children, t.routeSpan)
	return t
}

// TraceID returns the request's trace id (hex).
func (t *lbTrace) TraceID() string { return t.ctx.TraceID.String() }

// routed closes the route phase and records the ring decision.
func (t *lbTrace) routed(shardID string) {
	t.mu.Lock()
	t.routeSpan.DurUS = time.Since(t.start).Microseconds()
	t.root.Shard = shardID
	t.mu.Unlock()
}

// upstream opens the hop span for one backend call and mints the
// context the hop propagates: the span under which the shard's handler
// tree will hang.  close() ends the span.
func (t *lbTrace) upstream(shardID string) (tc obs.TraceContext, close func()) {
	tc = t.p.childOf(t.ctx)
	sp := &obs.Span{
		Name:    "upstream",
		StartUS: time.Since(t.start).Microseconds(),
		SpanID:  tc.SpanID.String(),
		Parent:  t.root.SpanID,
		Shard:   shardID,
	}
	t.mu.Lock()
	t.root.Children = append(t.root.Children, sp)
	t.mu.Unlock()
	return tc, func() {
		t.mu.Lock()
		sp.DurUS = time.Since(t.start).Microseconds() - sp.StartUS
		t.mu.Unlock()
	}
}

// item books one batch line under an upstream hop and mints the
// per-line context injected into that line's JSON.  The item span
// inherits the hop's window when it closes (per-item timing is not
// observable at the proxy; the shard-side handler span refines it).
func (t *lbTrace) item(hopCtx obs.TraceContext, shardID string, index int) obs.TraceContext {
	tc := t.p.childOf(hopCtx)
	sp := &obs.Span{
		Name:   "item",
		SpanID: tc.SpanID.String(),
		Parent: hopCtx.SpanID.String(),
		Shard:  shardID,
	}
	t.mu.Lock()
	for _, c := range t.root.Children {
		if c.SpanID == sp.Parent {
			sp.StartUS = c.StartUS
			c.Children = append(c.Children, sp)
			break
		}
	}
	t.mu.Unlock()
	return tc
}

// finish closes the root span and books the trace into the proxy's
// flight recorder.
func (t *lbTrace) finish(status int) {
	t.mu.Lock()
	t.root.DurUS = time.Since(t.start).Microseconds()
	// Item spans adopt their hop's duration (see item).
	for _, hop := range t.root.Children {
		if hop.Name != "upstream" {
			continue
		}
		for _, it := range hop.Children {
			if it.Name == "item" && it.DurUS == 0 {
				it.DurUS = hop.DurUS
			}
		}
	}
	root := t.root
	shard := root.Shard
	t.mu.Unlock()
	if t.p.flight != nil {
		t.p.flight.Record(obs.RecordedTrace{
			TraceID: root.TraceID,
			Service: "schedlb",
			Route:   t.route,
			Shard:   shard,
			Status:  status,
			DurUS:   root.DurUS,
			Root:    root,
		})
	}
}

// childOf mints a child context from the configured id source (tests)
// or the process-global one.
func (p *Proxy) childOf(tc obs.TraceContext) obs.TraceContext {
	if p.cfg.TraceIDs != nil {
		return p.cfg.TraceIDs.Child(tc)
	}
	return obs.ChildOf(tc)
}

// Flight exposes the proxy's flight recorder (nil when disabled).
func (p *Proxy) Flight() *obs.FlightRecorder { return p.flight }
