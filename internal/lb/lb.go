// Package lb is the stateless front tier of a sharded schedserve
// deployment: a consistent-hash router that spreads solve and session
// traffic over a fixed set of schedserve shards.
//
// The proxy holds no scheduling state of its own — any number of lb
// processes can front the same shard set and route identically, because
// the shard.Ring is a pure function of the (shard id, vnode count)
// topology.  Two routing keys cover the whole API surface:
//
//   - /v1/solve and /v1/solve/batch items route by the instance's
//     canonical fingerprint (sched.Instance.Fingerprint), so
//     permutations of one instance land on the same shard and its
//     result cache;
//   - /v1/sessions/* routes by session id.  The proxy generates the id
//     at create time (the create body is rewritten to pin it), which
//     breaks the chicken-and-egg between "shard assigns ids" and
//     "routing needs the id before a shard is chosen".
//
// Batch requests are fanned out: the NDJSON stream is split per owning
// shard, each shard solves its sub-batch concurrently, and the response
// lines are merged back in the order the items arrived.  Requests that
// are idempotent (solves, reads) are retried once on transport failure;
// mutating session requests never are.
//
// Every proxied response carries the owning shard's X-Sched-Shard echo.
// The proxy compares the echo against its own prediction and counts
// mismatches in schedlb_misroutes_total — the load-test harness asserts
// this series stays at zero, which is the end-to-end proof that ring
// routing and shard identity agree.
package lb

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"setupsched/obs"
	"setupsched/sched"
	"setupsched/shard"
)

// Shard names one schedserve backend: its ring identity and base URL.
// The ID must equal the backend's -shard-id so the X-Sched-Shard echo
// verifies routing.
type Shard struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Config configures a Proxy.
type Config struct {
	// Shards is the backend topology.  At least one is required.
	Shards []Shard
	// Replicas is the ring's virtual-node count per shard; 0 means
	// shard.DefaultReplicas.  All lb processes fronting one shard set
	// must agree on it.
	Replicas int
	// Client issues backend requests; nil gets a default with a 60 s
	// timeout.
	Client *http.Client
	// MaxBodyBytes caps a request body read for routing.  Default 32 MiB
	// (matching serve.Config).
	MaxBodyBytes int64
	// Logger receives routing diagnostics; nil means slog.Default().
	Logger *slog.Logger
	// FlightRecorderSize caps the flight recorder's ring of recently
	// completed request traces, served at GET /v1/debug/traces.  Zero
	// means obs.DefaultFlightCapacity; negative disables both.
	FlightRecorderSize int
	// SlowTraceThreshold additionally retains every trace slower than
	// this in the recorder's slow ring; zero disables the slow ring.
	SlowTraceThreshold time.Duration
	// TraceIDs overrides the trace/span id source (seed it for
	// deterministic tests).  Nil uses the process-global crypto-seeded
	// source.
	TraceIDs *obs.IDSource
}

// Proxy is the routing handler.  Build one with New; it serves the same
// /v1 surface as a single schedserve plus its own /healthz and
// /metrics.
type Proxy struct {
	cfg    Config
	ring   *shard.Ring
	shards map[string]Shard
	mux    *http.ServeMux
	client *http.Client
	logger *slog.Logger

	metrics *lbMetrics
	// flight retains completed request traces for GET /v1/debug/traces;
	// nil when Config.FlightRecorderSize is negative.
	flight *obs.FlightRecorder
}

// lbMetrics is the proxy's own observability: all series are prefixed
// schedlb_ so a fleet scrape distinguishes front tier from shards.
type lbMetrics struct {
	reg *obs.Registry

	solves    *obs.Counter
	batches   *obs.Counter
	items     *obs.Counter
	sessions  *obs.Counter
	errors    *obs.Counter
	retries   *obs.Counter
	misroutes *obs.Counter
	up        map[string]*obs.Gauge
	// misroutesBy counts echo mismatches per ring-predicted shard, so a
	// fleet dashboard can see WHICH shard's identity disagrees with the
	// topology (the aggregate counter above keeps its meaning).
	misroutesBy map[string]*obs.Counter

	tracesRecorded *obs.Counter
	tracesDropped  *obs.Counter
}

func newLBMetrics(shards []Shard) *lbMetrics {
	reg := obs.NewRegistry()
	m := &lbMetrics{
		reg:       reg,
		solves:    reg.Counter(`schedlb_requests_total{route="solve"}`, "Proxied requests by route."),
		batches:   reg.Counter(`schedlb_requests_total{route="batch"}`, "Proxied requests by route."),
		sessions:  reg.Counter(`schedlb_requests_total{route="session"}`, "Proxied requests by route."),
		items:     reg.Counter("schedlb_batch_items_total", "Batch NDJSON items fanned out to shards."),
		errors:    reg.Counter("schedlb_request_errors_total", "Requests that failed at the proxy or the shard."),
		retries:   reg.Counter("schedlb_retries_total", "Idempotent requests retried after a transport failure."),
		misroutes: reg.Counter("schedlb_misroutes_total", "Responses whose X-Sched-Shard echo contradicted the ring."),
		up:        make(map[string]*obs.Gauge, len(shards)),

		misroutesBy: make(map[string]*obs.Counter, len(shards)),

		tracesRecorded: reg.Counter("schedlb_traces_recorded_total", "Request traces booked into the flight recorder."),
		tracesDropped:  reg.Counter("schedlb_traces_dropped_total", "Flight-recorder ring entries overwritten before being read."),
	}
	for _, s := range shards {
		m.up[s.ID] = reg.Gauge(`schedlb_shard_up{shard="`+s.ID+`"}`,
			"1 if the shard's last health probe succeeded, else 0.")
		m.misroutesBy[s.ID] = reg.Counter(`schedlb_shard_misroutes_total{shard="`+s.ID+`"}`,
			"Echo mismatches by the ring-predicted owner shard.")
	}
	reg.GaugeFunc("schedlb_shards", "Number of shards in the routing topology.",
		func() float64 { return float64(len(shards)) })
	obs.RegisterBuildInfo(reg, "")
	reg.EnableRuntimeMetrics()
	return m
}

// New builds a Proxy over the given topology.
func New(cfg Config) (*Proxy, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("lb: no shards configured")
	}
	ids := make([]string, len(cfg.Shards))
	byID := make(map[string]Shard, len(cfg.Shards))
	for i, s := range cfg.Shards {
		if s.ID == "" || s.URL == "" {
			return nil, fmt.Errorf("lb: shard %d needs both id and url", i)
		}
		if _, dup := byID[s.ID]; dup {
			return nil, fmt.Errorf("lb: duplicate shard id %q", s.ID)
		}
		ids[i] = s.ID
		byID[s.ID] = s
	}
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = shard.DefaultReplicas
	}
	ring := shard.NewRing(replicas, ids...)
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	p := &Proxy{
		cfg:     cfg,
		ring:    ring,
		shards:  byID,
		mux:     http.NewServeMux(),
		client:  client,
		logger:  logger,
		metrics: newLBMetrics(cfg.Shards),
	}
	if cfg.FlightRecorderSize >= 0 {
		p.flight = obs.NewFlightRecorder(cfg.FlightRecorderSize, 0, cfg.SlowTraceThreshold)
		p.flight.SetCounters(p.metrics.tracesRecorded, p.metrics.tracesDropped)
		p.mux.Handle("GET /v1/debug/traces", p.flight.Handler())
	}
	p.mux.HandleFunc("GET /healthz", p.handleHealthz)
	p.mux.Handle("GET /metrics", p.metrics.reg.Handler())
	p.mux.HandleFunc("POST /v1/solve", p.handleSolve)
	p.mux.HandleFunc("POST /v1/solve/batch", p.handleBatch)
	p.mux.HandleFunc("POST /v1/sessions", p.handleSessionCreate)
	p.mux.HandleFunc("GET /v1/sessions/{id}", p.handleSession)
	p.mux.HandleFunc("DELETE /v1/sessions/{id}", p.handleSession)
	p.mux.HandleFunc("POST /v1/sessions/{id}/delta", p.handleSession)
	p.mux.HandleFunc("POST /v1/sessions/{id}/solve", p.handleSession)
	return p, nil
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) { p.mux.ServeHTTP(w, r) }

// Registry exposes the proxy's metric registry for embedding tests.
func (p *Proxy) Registry() *obs.Registry { return p.metrics.reg }

// Owner returns the shard that owns a routing key — exported so the
// load-test harness predicts placements with the proxy's own ring.
func (p *Proxy) Owner(key string) Shard { return p.shards[p.ring.Owner(key)] }

// routeInstance extracts the routing fingerprint from a solve body.
func routeInstance(body []byte) (string, error) {
	var req struct {
		Instance *sched.Instance `json:"instance"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return "", fmt.Errorf("parsing request body: %w", err)
	}
	if req.Instance == nil {
		return "", fmt.Errorf("missing instance")
	}
	return req.Instance.Fingerprint(), nil
}

// forward proxies one buffered request to the key's owning shard and
// copies the response through.  Idempotent requests are retried once on
// transport failure (the shard never saw them, or saw them and the
// answer is re-derivable).  The trace's route phase is closed here (the
// ring decision just happened) and the hop rides under a fresh upstream
// span whose context propagates to the shard.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, key, path string, body []byte, idempotent bool, t *lbTrace) {
	owner := p.Owner(key)
	t.routed(owner.ID)
	hopCtx, hopDone := t.upstream(owner.ID)
	resp, err := p.send(r.Context(), owner, r.Method, path, r.Header.Get("Content-Type"), body, idempotent, hopCtx)
	hopDone()
	if err != nil {
		p.metrics.errors.Inc()
		writeError(w, http.StatusBadGateway, fmt.Sprintf("shard %s: %v", owner.ID, err))
		t.finish(http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	p.checkEcho(owner, resp)
	copyResponse(w, resp)
	t.finish(resp.StatusCode)
}

// send issues one backend request, retrying once on transport error if
// allowed.  A valid tc rides along as the traceparent header.
func (p *Proxy) send(ctx context.Context, owner Shard, method, path, contentType string, body []byte, idempotent bool, tc obs.TraceContext) (*http.Response, error) {
	attempt := func() (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, method, owner.URL+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		obs.InjectTrace(req.Header, tc)
		return p.client.Do(req)
	}
	resp, err := attempt()
	if err != nil && idempotent && ctx.Err() == nil {
		p.metrics.retries.Inc()
		p.logger.Warn("retrying after transport failure", "shard", owner.ID, "path", path, "err", err)
		resp, err = attempt()
	}
	return resp, err
}

// checkEcho verifies the shard's identity echo against the routing
// decision.  A mismatch means the topology the proxy routes with is not
// the topology that is actually deployed.
func (p *Proxy) checkEcho(owner Shard, resp *http.Response) {
	if echo := resp.Header.Get("X-Sched-Shard"); echo != "" && echo != owner.ID {
		p.metrics.misroutes.Inc()
		if c := p.metrics.misroutesBy[owner.ID]; c != nil {
			c.Inc()
		}
		p.logger.Error("misroute: shard echo contradicts ring", "want", owner.ID, "got", echo)
	}
}

func copyResponse(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{"Content-Type", "X-Sched-Shard", "Retry-After", "X-Sched-Draining"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func (p *Proxy) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, p.cfg.MaxBodyBytes))
	if err != nil {
		p.metrics.errors.Inc()
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
		return nil, false
	}
	return body, true
}

func (p *Proxy) handleSolve(w http.ResponseWriter, r *http.Request) {
	p.metrics.solves.Inc()
	t := p.beginTrace(r, "solve")
	body, ok := p.readBody(w, r)
	if !ok {
		t.finish(http.StatusBadRequest)
		return
	}
	key, err := routeInstance(body)
	if err != nil {
		p.metrics.errors.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		t.finish(http.StatusBadRequest)
		return
	}
	p.forward(w, r, key, "/v1/solve", body, true, t)
}

// handleSessionCreate rewrites the create body to pin a session id (when
// the client did not pick one) and routes by it.  Creates retry on
// transport failure: re-creating the same id answers 409, which the
// retry maps back to success semantics on the shard side.
func (p *Proxy) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	p.metrics.sessions.Inc()
	t := p.beginTrace(r, "session")
	body, ok := p.readBody(w, r)
	if !ok {
		t.finish(http.StatusBadRequest)
		return
	}
	var req map[string]json.RawMessage
	if err := json.Unmarshal(body, &req); err != nil {
		p.metrics.errors.Inc()
		writeError(w, http.StatusBadRequest, fmt.Sprintf("parsing request body: %v", err))
		t.finish(http.StatusBadRequest)
		return
	}
	var id string
	if raw, ok := req["session_id"]; ok {
		if err := json.Unmarshal(raw, &id); err != nil {
			p.metrics.errors.Inc()
			writeError(w, http.StatusBadRequest, "session_id must be a string")
			t.finish(http.StatusBadRequest)
			return
		}
	}
	if id == "" {
		id = newSessionID()
		req["session_id"], _ = json.Marshal(id)
		if body, ok = marshalBody(w, req); !ok {
			p.metrics.errors.Inc()
			t.finish(http.StatusInternalServerError)
			return
		}
	}
	p.forward(w, r, id, "/v1/sessions", body, true, t)
}

func marshalBody(w http.ResponseWriter, req map[string]json.RawMessage) ([]byte, bool) {
	body, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return nil, false
	}
	return body, true
}

// handleSession routes every per-session endpoint by the id path
// segment.  Only reads are idempotent: a delta applied twice is a
// different instance, and a session solve can mutate warm state.
func (p *Proxy) handleSession(w http.ResponseWriter, r *http.Request) {
	p.metrics.sessions.Inc()
	t := p.beginTrace(r, "session")
	id := r.PathValue("id")
	body, ok := p.readBody(w, r)
	if !ok {
		t.finish(http.StatusBadRequest)
		return
	}
	p.forward(w, r, id, r.URL.Path, body, r.Method == http.MethodGet, t)
}

// newSessionID mirrors serve's id generator: 128 random bits, hex.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("lb: reading random session id: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// shardHealth is one backend's slice of the aggregated health report.
type shardHealth struct {
	Status string `json:"status"`
	Code   int    `json:"code,omitempty"`
	Error  string `json:"error,omitempty"`
}

// handleHealthz probes every shard concurrently and aggregates: 200 iff
// every shard answered 200.  Draining shards (503) mark the fleet
// degraded, which is exactly what a rolling migration wants front tiers
// to see.
func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type probe struct {
		id string
		h  shardHealth
	}
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	results := make(chan probe, len(p.shards))
	var wg sync.WaitGroup
	for id, sh := range p.shards {
		wg.Add(1)
		go func(id string, sh Shard) {
			defer wg.Done()
			results <- probe{id, p.probeShard(ctx, sh)}
		}(id, sh)
	}
	wg.Wait()
	close(results)

	shards := make(map[string]shardHealth, len(p.shards))
	var failed []string
	for pr := range results {
		shards[pr.id] = pr.h
		if pr.h.Status == "ok" {
			p.metrics.up[pr.id].Set(1)
		} else {
			p.metrics.up[pr.id].Set(0)
			failed = append(failed, pr.id)
		}
	}
	sort.Strings(failed)
	healthy := len(p.shards) - len(failed)
	status, code := "ok", http.StatusOK
	if len(failed) > 0 {
		status, code = "degraded", http.StatusServiceUnavailable
	}
	body := map[string]any{
		"status": status, "healthy": healthy, "shards": shards,
	}
	if len(failed) > 0 {
		// Name the failing shards up front so an operator (or pager) does
		// not have to diff the per-shard map against the topology.
		body["failed"] = failed
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body)
}

func (p *Proxy) probeShard(ctx context.Context, sh Shard) shardHealth {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.URL+"/healthz", nil)
	if err != nil {
		return shardHealth{Status: "error", Error: err.Error()}
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return shardHealth{Status: "unreachable", Error: err.Error()}
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	switch resp.StatusCode {
	case http.StatusOK:
		return shardHealth{Status: "ok", Code: resp.StatusCode}
	case http.StatusServiceUnavailable:
		return shardHealth{Status: "draining", Code: resp.StatusCode}
	default:
		return shardHealth{Status: "error", Code: resp.StatusCode}
	}
}
