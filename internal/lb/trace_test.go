package lb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"setupsched/obs"
	"setupsched/serve"
)

// TestTracedSolveThroughProxy is the cross-process stitching proof: one
// solve through the proxy books a trace in BOTH flight recorders under
// one trace id, and the shard's handler span hangs under the lb's
// upstream span (parent id match across the process boundary).
func TestTracedSolveThroughProxy(t *testing.T) {
	p, _, servers := newCluster(t, 3)
	in := lbInstance(11)
	rec, out := doJSON(t, p, http.MethodPost, "/v1/solve", &serve.SolveRequest{Instance: in})
	if rec.Code != http.StatusOK {
		t.Fatalf("solve: status %d body %s", rec.Code, rec.Body.String())
	}
	traceID, _ := out["trace_id"].(string)
	if len(traceID) != 32 {
		t.Fatalf("solve response trace_id = %q, want 32 hex chars", traceID)
	}

	lbTraces := p.Flight().Snapshot(traceID, 0, 0)
	if len(lbTraces) != 1 {
		t.Fatalf("lb flight recorder holds %d entries for trace %s, want 1", len(lbTraces), traceID)
	}
	lt := lbTraces[0]
	owner := p.Owner(in.Fingerprint())
	if lt.Service != "schedlb" || lt.Route != "solve" || lt.Shard != owner.ID || lt.Status != 200 {
		t.Fatalf("lb recorded trace metadata: %+v", lt)
	}
	route := lt.Root.Child("route")
	hop := lt.Root.Child("upstream")
	if route == nil || hop == nil {
		t.Fatalf("lb root lacks route/upstream children: %+v", lt.Root.Children)
	}
	if hop.Shard != owner.ID {
		t.Errorf("upstream span shard = %q, want %q", hop.Shard, owner.ID)
	}
	if hop.DurUS > lt.Root.DurUS {
		t.Errorf("upstream span (%d µs) longer than root (%d µs)", hop.DurUS, lt.Root.DurUS)
	}

	// The trace landed on exactly the ring-predicted shard, nowhere else.
	var shardTrace *obs.RecordedTrace
	for i, sv := range servers {
		got := sv.Flight().Snapshot(traceID, 0, 0)
		if id := fmt.Sprintf("s%d", i); id == owner.ID {
			if len(got) != 1 {
				t.Fatalf("owner shard %s holds %d entries for the trace, want 1", id, len(got))
			}
			shardTrace = &got[0]
		} else if len(got) != 0 {
			t.Fatalf("non-owner shard %s holds %d entries for the trace", id, len(got))
		}
	}
	if shardTrace.Service != owner.ID || shardTrace.Route != "solve" {
		t.Fatalf("shard recorded trace metadata: %+v", shardTrace)
	}
	handler := shardTrace.Root
	if handler.Name != "handler" || handler.Parent != hop.SpanID {
		t.Fatalf("handler span parent = %q, want lb upstream span %q", handler.Parent, hop.SpanID)
	}
	if handler.TraceID != traceID || lt.Root.TraceID != traceID {
		t.Fatalf("trace ids disagree: lb %q shard %q response %q",
			lt.Root.TraceID, handler.TraceID, traceID)
	}
	if handler.Child("queue") == nil || handler.Child("solve") == nil {
		t.Fatalf("handler span lacks queue/solve children: %+v", handler.Children)
	}
}

// TestIncomingTraceparentPreserved: a caller-supplied sampled context
// keeps its trace id end to end, and the lb root becomes the caller
// span's child.  An unsampled context is ignored (fresh trace).
func TestIncomingTraceparentPreserved(t *testing.T) {
	p, _, _ := newCluster(t, 2)
	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const callerSpan = "00f067aa0ba902b7"
	buf, _ := json.Marshal(&serve.SolveRequest{Instance: lbInstance(7)})
	req := httptest.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader(buf))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceParentHeader, "00-"+callerTrace+"-"+callerSpan+"-01")
	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("solve: status %d body %s", rec.Code, rec.Body.String())
	}
	got := p.Flight().Snapshot(callerTrace, 0, 0)
	if len(got) != 1 {
		t.Fatalf("lb recorder holds %d entries under the caller's trace id, want 1", len(got))
	}
	if got[0].Root.Parent != callerSpan {
		t.Errorf("lb root parent = %q, want caller span %q", got[0].Root.Parent, callerSpan)
	}

	req2 := httptest.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader(buf))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set(obs.TraceParentHeader, "00-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa-bbbbbbbbbbbbbbbb-00")
	rec2 := httptest.NewRecorder()
	p.ServeHTTP(rec2, req2)
	if n := len(p.Flight().Snapshot("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", 0, 0)); n != 0 {
		t.Errorf("unsampled caller context adopted anyway (%d entries)", n)
	}
}

// TestBatchTracePropagation: a batch gets one lb trace with an upstream
// span per owning shard and an item child per routed line, and every
// owning shard's recorder sees batch-item traces under the same id.
func TestBatchTracePropagation(t *testing.T) {
	p, _, servers := newCluster(t, 3)
	var body bytes.Buffer
	const n = 9
	owners := map[string]int{}
	for i := 0; i < n; i++ {
		in := lbInstance(int64(100 + i))
		owners[p.Owner(in.Fingerprint()).ID]++
		line, _ := json.Marshal(&serve.SolveRequest{ID: fmt.Sprintf("b-%d", i), Instance: in})
		body.Write(line)
		body.WriteByte('\n')
	}
	if len(owners) < 2 {
		t.Fatalf("batch items all owned by one shard; widen the item set")
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/solve/batch", &body)
	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: status %d", rec.Code)
	}
	for i, line := range strings.Split(strings.TrimSpace(rec.Body.String()), "\n") {
		var out struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(line), &out); err != nil || out.Error != "" {
			t.Fatalf("line %d: err=%v body=%s", i, err, line)
		}
	}

	batches := p.Flight().Snapshot("", 0, 0)
	var bt *obs.RecordedTrace
	for i := range batches {
		if batches[i].Route == "batch" {
			bt = &batches[i]
		}
	}
	if bt == nil {
		t.Fatalf("lb recorder holds no batch trace: %+v", batches)
	}
	hops, items := 0, 0
	for _, c := range bt.Root.Children {
		if c.Name != "upstream" {
			continue
		}
		hops++
		if owners[c.Shard] == 0 {
			t.Errorf("upstream span for %q, which owns no items", c.Shard)
		}
		for _, it := range c.Children {
			if it.Name != "item" {
				continue
			}
			items++
			if it.DurUS == 0 {
				t.Errorf("item span under %q kept zero duration", c.Shard)
			}
		}
	}
	if hops != len(owners) || items != n {
		t.Fatalf("batch trace has %d hops / %d items, want %d / %d", hops, items, len(owners), n)
	}

	// Every owning shard booked at least one batch-item trace under the
	// batch's trace id (exact counts can dedup on timestamp collisions).
	for i, sv := range servers {
		id := fmt.Sprintf("s%d", i)
		got := sv.Flight().Snapshot(bt.TraceID, 0, 0)
		if owners[id] == 0 {
			if len(got) != 0 {
				t.Errorf("non-owner shard %s holds %d entries for the batch trace", id, len(got))
			}
			continue
		}
		if len(got) == 0 {
			t.Errorf("owner shard %s holds no entries for the batch trace", id)
			continue
		}
		for _, tr := range got {
			if tr.Route != "batch-item" {
				t.Errorf("shard %s recorded route %q, want batch-item", id, tr.Route)
			}
		}
	}
}

// TestDebugTracesEndpoint: the proxy serves its recorder at
// GET /v1/debug/traces with trace_id filtering.
func TestDebugTracesEndpoint(t *testing.T) {
	p, _, _ := newCluster(t, 2)
	_, out := doJSON(t, p, http.MethodPost, "/v1/solve", &serve.SolveRequest{Instance: lbInstance(5)})
	traceID, _ := out["trace_id"].(string)
	if traceID == "" {
		t.Fatalf("no trace id in solve response: %v", out)
	}
	rec, body := doJSON(t, p, http.MethodGet, "/v1/debug/traces?trace_id="+traceID, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("debug/traces: status %d", rec.Code)
	}
	if count, _ := body["count"].(float64); count != 1 {
		t.Fatalf("debug/traces count = %v, want 1 (body %v)", body["count"], body)
	}
}
