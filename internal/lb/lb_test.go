package lb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"setupsched/sched"
	"setupsched/schedgen"
	"setupsched/serve"
)

func lbInstance(seed int64) *sched.Instance {
	return schedgen.Uniform(schedgen.Params{
		M: 3, Classes: 4, JobsPer: 3, MaxSetup: 15, MaxJob: 25, Seed: seed,
	})
}

// newCluster spins n in-process schedserve shards and a Proxy fronting
// them.
func newCluster(t *testing.T, n int) (*Proxy, []*httptest.Server, []*serve.Server) {
	t.Helper()
	shards := make([]Shard, n)
	backends := make([]*httptest.Server, n)
	servers := make([]*serve.Server, n)
	for i := range shards {
		id := fmt.Sprintf("s%d", i)
		servers[i] = serve.New(serve.Config{ShardID: id})
		backends[i] = httptest.NewServer(servers[i])
		t.Cleanup(backends[i].Close)
		shards[i] = Shard{ID: id, URL: backends[i].URL}
	}
	p, err := New(Config{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return p, backends, servers
}

func doJSON(t *testing.T, h http.Handler, method, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if raw, ok := body.([]byte); ok {
		rd = bytes.NewReader(raw)
	} else {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req := httptest.NewRequest(method, path, rd)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	out := map[string]any{}
	if rec.Body.Len() > 0 && strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("decoding %s %s response: %v", method, path, err)
		}
	}
	return rec, out
}

// TestSolveRouting proves the end-to-end routing contract: the shard
// that answers is always the ring owner of the instance fingerprint
// (shard echo == prediction, misroutes == 0), permutations of an
// instance land on the same shard, and the spread covers every shard.
func TestSolveRouting(t *testing.T) {
	p, _, _ := newCluster(t, 3)
	hit := map[string]int{}
	for i := int64(0); i < 24; i++ {
		in := lbInstance(i)
		rec, out := doJSON(t, p, http.MethodPost, "/v1/solve", &serve.SolveRequest{Instance: in})
		if rec.Code != http.StatusOK {
			t.Fatalf("solve %d: status %d body %s", i, rec.Code, rec.Body.String())
		}
		if errMsg, _ := out["error"].(string); errMsg != "" {
			t.Fatalf("solve %d: %s", i, errMsg)
		}
		want := p.Owner(in.Fingerprint()).ID
		got := rec.Header().Get("X-Sched-Shard")
		if got != want {
			t.Fatalf("solve %d answered by %q, ring owner is %q", i, got, want)
		}
		hit[got]++
	}
	if len(hit) != 3 {
		t.Errorf("24 distinct instances hit only %d/3 shards: %v", len(hit), hit)
	}
	if n := p.metrics.misroutes.Load(); n != 0 {
		t.Errorf("misroutes = %d, want 0", n)
	}

	// Permutation invariance: a shuffled clone routes identically, so
	// shard result caches stay fingerprint-affine.
	in := lbInstance(3)
	perm := in.Clone()
	perm.Classes[0], perm.Classes[len(perm.Classes)-1] = perm.Classes[len(perm.Classes)-1], perm.Classes[0]
	rec1, _ := doJSON(t, p, http.MethodPost, "/v1/solve", &serve.SolveRequest{Instance: in})
	rec2, _ := doJSON(t, p, http.MethodPost, "/v1/solve", &serve.SolveRequest{Instance: perm})
	if a, b := rec1.Header().Get("X-Sched-Shard"), rec2.Header().Get("X-Sched-Shard"); a != b {
		t.Errorf("permuted instance routed to %q, original to %q", b, a)
	}
}

// TestSessionRouting drives a session lifecycle through the proxy: the
// create is pinned to an lb-generated id, and every follow-up lands on
// the id's owner.
func TestSessionRouting(t *testing.T) {
	p, _, _ := newCluster(t, 3)
	rec, out := doJSON(t, p, http.MethodPost, "/v1/sessions",
		&serve.SessionCreateRequest{Instance: lbInstance(1)})
	if rec.Code != http.StatusOK && rec.Code != http.StatusCreated {
		t.Fatalf("create: status %d body %s", rec.Code, rec.Body.String())
	}
	id, _ := out["session_id"].(string)
	if id == "" {
		t.Fatalf("create response carries no session_id: %v", out)
	}
	owner := p.Owner(id).ID
	if got := rec.Header().Get("X-Sched-Shard"); got != owner {
		t.Fatalf("create answered by %q, id owner is %q", got, owner)
	}

	for _, step := range []struct {
		method, path string
		body         any
	}{
		{http.MethodPost, "/v1/sessions/" + id + "/delta",
			&serve.SessionDeltaRequest{Deltas: []sched.Delta{{Op: sched.DeltaSetMachines, M: 5}}}},
		{http.MethodPost, "/v1/sessions/" + id + "/solve", &serve.SolveRequest{}},
		{http.MethodGet, "/v1/sessions/" + id, nil},
		{http.MethodDelete, "/v1/sessions/" + id, nil},
	} {
		rec, out := doJSON(t, p, step.method, step.path, step.body)
		if rec.Code/100 != 2 {
			t.Fatalf("%s %s: status %d body %s", step.method, step.path, rec.Code, rec.Body.String())
		}
		if errMsg, _ := out["error"].(string); errMsg != "" {
			t.Fatalf("%s %s: %s", step.method, step.path, errMsg)
		}
		if got := rec.Header().Get("X-Sched-Shard"); got != owner {
			t.Fatalf("%s %s answered by %q, want %q", step.method, step.path, got, owner)
		}
	}
	// Client-pinned ids route by the client's id, too.
	rec, _ = doJSON(t, p, http.MethodPost, "/v1/sessions",
		&serve.SessionCreateRequest{Instance: lbInstance(2), SessionID: "pinned-id-1"})
	if rec.Code != http.StatusOK && rec.Code != http.StatusCreated {
		t.Fatalf("pinned create: status %d", rec.Code)
	}
	if got, want := rec.Header().Get("X-Sched-Shard"), p.Owner("pinned-id-1").ID; got != want {
		t.Fatalf("pinned create answered by %q, want %q", got, want)
	}
	if n := p.metrics.misroutes.Load(); n != 0 {
		t.Errorf("misroutes = %d, want 0", n)
	}
}

// TestBatchFanOut checks the merge contract: response lines come back
// in input order with ids intact even though items fan out to different
// shards, and an unroutable line yields an error line in its position.
func TestBatchFanOut(t *testing.T) {
	p, _, _ := newCluster(t, 3)
	var body bytes.Buffer
	const n = 12
	bad := 5 // line index that cannot be routed
	for i := 0; i < n; i++ {
		if i == bad {
			body.WriteString("{\"instance\": null}\n")
			continue
		}
		line, _ := json.Marshal(&serve.SolveRequest{
			ID: fmt.Sprintf("item-%d", i), Instance: lbInstance(int64(i)),
		})
		body.Write(line)
		body.WriteByte('\n')
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/solve/batch", &body)
	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: status %d", rec.Code)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != n {
		t.Fatalf("batch returned %d lines, want %d", len(lines), n)
	}
	shardsSeen := map[string]bool{}
	for i, line := range lines {
		var out struct {
			ID       string `json:"id"`
			Makespan string `json:"makespan"`
			Error    string `json:"error"`
		}
		if err := json.Unmarshal([]byte(line), &out); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if i == bad {
			if out.Error == "" {
				t.Errorf("line %d: want a routing error, got %q", i, line)
			}
			continue
		}
		if out.Error != "" {
			t.Errorf("line %d: %s", i, out.Error)
		}
		if want := fmt.Sprintf("item-%d", i); out.ID != want {
			t.Errorf("line %d: id %q, want %q (order not preserved)", i, out.ID, want)
		}
		in := lbInstance(int64(i))
		shardsSeen[p.Owner(in.Fingerprint()).ID] = true
	}
	if len(shardsSeen) < 2 {
		t.Errorf("batch items all owned by one shard; widen the item set")
	}
	if n := p.metrics.misroutes.Load(); n != 0 {
		t.Errorf("misroutes = %d, want 0", n)
	}
	if got := p.metrics.items.Load(); got != n {
		t.Errorf("batch items counter = %d, want %d", got, n)
	}
}

// TestRetryOnTransportFailure fronts a shard with a TCP proxy that
// kills the first connection mid-request: the proxy must retry the
// idempotent solve once and succeed.
func TestRetryOnTransportFailure(t *testing.T) {
	backend := httptest.NewServer(serve.New(serve.Config{ShardID: "s0"}))
	defer backend.Close()

	// flaky listener: closes the first accepted connection immediately,
	// forwards the rest to the backend.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var once sync.Once
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			killed := false
			once.Do(func() { conn.Close(); killed = true })
			if killed {
				continue
			}
			up, err := net.Dial("tcp", strings.TrimPrefix(backend.URL, "http://"))
			if err != nil {
				conn.Close()
				continue
			}
			go func() { defer up.Close(); io.Copy(up, conn) }()
			go func() { defer conn.Close(); io.Copy(conn, up) }()
		}
	}()

	p, err := New(Config{Shards: []Shard{{ID: "s0", URL: "http://" + ln.Addr().String()}}})
	if err != nil {
		t.Fatal(err)
	}
	rec, out := doJSON(t, p, http.MethodPost, "/v1/solve", &serve.SolveRequest{Instance: lbInstance(9)})
	if rec.Code != http.StatusOK {
		t.Fatalf("solve through flaky conn: status %d body %s", rec.Code, rec.Body.String())
	}
	if errMsg, _ := out["error"].(string); errMsg != "" {
		t.Fatalf("solve through flaky conn: %s", errMsg)
	}
	if got := p.metrics.retries.Load(); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
}

// TestHealthAggregation: all-up is 200; one draining shard degrades the
// fleet to 503 and flips its up gauge.
func TestHealthAggregation(t *testing.T) {
	p, _, servers := newCluster(t, 3)
	rec, out := doJSON(t, p, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz with all shards up: status %d", rec.Code)
	}
	if status, _ := out["status"].(string); status != "ok" {
		t.Fatalf("healthz status = %q, want ok", status)
	}
	if _, ok := out["failed"]; ok {
		t.Errorf("healthy fleet reports a failed list: %v", out["failed"])
	}

	servers[1].StartDraining()
	rec, out = doJSON(t, p, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with a draining shard: status %d, want 503", rec.Code)
	}
	shards, _ := out["shards"].(map[string]any)
	s1, _ := shards["s1"].(map[string]any)
	if st, _ := s1["status"].(string); st != "draining" {
		t.Errorf("shard s1 health = %q, want draining (full: %v)", st, out)
	}
	if up := p.metrics.up["s1"].Load(); up != 0 {
		t.Errorf("s1 up gauge = %v, want 0", up)
	}
	if up := p.metrics.up["s0"].Load(); up != 1 {
		t.Errorf("s0 up gauge = %v, want 1", up)
	}
	failed, _ := out["failed"].([]any)
	if len(failed) != 1 || failed[0] != "s1" {
		t.Errorf("healthz failed list = %v, want [s1]", out["failed"])
	}
}

// TestMisrouteDetection misconfigures the topology on purpose (ids
// swapped between backends) and asserts the echo check catches it.
func TestMisrouteDetection(t *testing.T) {
	a := httptest.NewServer(serve.New(serve.Config{ShardID: "real-a"}))
	defer a.Close()
	p, err := New(Config{Shards: []Shard{{ID: "wrong-id", URL: a.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := doJSON(t, p, http.MethodPost, "/v1/solve", &serve.SolveRequest{Instance: lbInstance(4)})
	if rec.Code != http.StatusOK {
		t.Fatalf("solve: status %d", rec.Code)
	}
	if got := p.metrics.misroutes.Load(); got != 1 {
		t.Errorf("misroutes = %d, want 1", got)
	}
	if got := p.metrics.misroutesBy["wrong-id"].Load(); got != 1 {
		t.Errorf("per-shard misroute counter = %d, want 1", got)
	}
}
