package lb

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"setupsched/obs"
)

// Batch fan-out.  A /v1/solve/batch NDJSON stream is split by routing
// key: each shard receives one sub-batch request carrying only the
// items it owns, all sub-batches run concurrently, and the response
// lines are merged back in the order the items arrived.
//
// The merge uses one single-slot channel per input item.  Each shard
// goroutine walks its items in sub-batch order — schedserve's batch
// endpoint guarantees response order matches request order — and
// deposits each response line into the item's slot; the writer drains
// the slots in input order.  Items the proxy cannot route (malformed
// JSON, missing instance) short-circuit with a local error line in the
// same position, matching schedserve's per-line error convention.
//
// Tracing: the request gets one root span, one "upstream" hop span per
// owning shard, and one "item" child per routed line.  HTTP headers are
// per-request, so the per-item context travels in-band as a
// "traceparent" field injected into each line's JSON (see injectLine);
// the shard's batch workers pick it up per item.

// batchItem is one routed NDJSON line.
type batchItem struct {
	line []byte // raw request line
	slot chan []byte
}

func (p *Proxy) handleBatch(w http.ResponseWriter, r *http.Request) {
	p.metrics.batches.Inc()
	t := p.beginTrace(r, "batch")
	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, p.cfg.MaxBodyBytes))
	sc.Buffer(make([]byte, 0, 64<<10), int(p.cfg.MaxBodyBytes))

	var items []*batchItem
	perShard := make(map[string][]*batchItem)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		it := &batchItem{line: append([]byte(nil), raw...), slot: make(chan []byte, 1)}
		items = append(items, it)
		p.metrics.items.Inc()
		key, err := routeInstance(it.line)
		if err != nil {
			it.slot <- errorLine(fmt.Sprintf("item %d: %v", len(items)-1, err))
			continue
		}
		owner := p.Owner(key)
		perShard[owner.ID] = append(perShard[owner.ID], it)
	}
	if err := sc.Err(); err != nil {
		p.metrics.errors.Inc()
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading batch body: %v", err))
		t.finish(http.StatusBadRequest)
		return
	}
	t.routed("") // a batch fans out; per-shard attribution lives on the hop spans

	var wg sync.WaitGroup
	for id, batch := range perShard {
		hopCtx, hopDone := t.upstream(id)
		for i, it := range batch {
			it.line = injectLine(it.line, t.item(hopCtx, id, i))
		}
		wg.Add(1)
		go func(owner Shard, batch []*batchItem) {
			defer wg.Done()
			defer hopDone()
			p.runSubBatch(r, owner, batch, hopCtx)
		}(p.shards[id], batch)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for _, it := range items {
		select {
		case line := <-it.slot:
			w.Write(line)
			w.Write([]byte("\n"))
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return // client gone; the trace is abandoned unrecorded
		}
	}
	wg.Wait()
	t.finish(http.StatusOK)
}

// injectLine stamps one routed line's trace context into its JSON as a
// "traceparent" field.  A line that fails to re-marshal is forwarded
// untouched — tracing never breaks the data path.
func injectLine(line []byte, tc obs.TraceContext) []byte {
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(line, &obj); err != nil {
		return line
	}
	obj["traceparent"], _ = json.Marshal(tc.TraceParent())
	out, err := json.Marshal(obj)
	if err != nil {
		return line
	}
	return out
}

// runSubBatch sends one shard its items and distributes the response
// lines back to their slots.  Any failure — transport error, non-200
// status (e.g. a saturated pool's 429), or a short response stream —
// resolves every still-pending slot with an error line, so the merge
// loop never deadlocks on a broken shard.
func (p *Proxy) runSubBatch(r *http.Request, owner Shard, batch []*batchItem, tc obs.TraceContext) {
	var body bytes.Buffer
	for _, it := range batch {
		body.Write(it.line)
		body.WriteByte('\n')
	}
	next := 0
	fail := func(msg string) {
		p.metrics.errors.Inc()
		for ; next < len(batch); next++ {
			batch[next].slot <- errorLine(fmt.Sprintf("shard %s: %s", owner.ID, msg))
		}
	}
	resp, err := p.send(r.Context(), owner, http.MethodPost, "/v1/solve/batch",
		"application/x-ndjson", body.Bytes(), true, tc)
	if err != nil {
		fail(err.Error())
		return
	}
	defer resp.Body.Close()
	p.checkEcho(owner, resp)
	if resp.StatusCode != http.StatusOK {
		fail(fmt.Sprintf("status %d", resp.StatusCode))
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), int(p.cfg.MaxBodyBytes))
	for next < len(batch) && sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		batch[next].slot <- append([]byte(nil), sc.Bytes()...)
		next++
	}
	if err := sc.Err(); err != nil {
		fail(err.Error())
		return
	}
	if next < len(batch) {
		fail("response stream ended early")
	}
}

func errorLine(msg string) []byte {
	line, _ := json.Marshal(map[string]string{"error": msg})
	return line
}
