// Package diff is the differential guarantee-checking harness: it runs
// every paper algorithm on generated instances through the public Solver
// API and cross-checks the results against each other, against exact
// references (the exhaustive search on tiny instances and, with a node
// budget configured, the branch-and-bound backend — which contributes a
// true optimum when it converges and a certified OPT bracket when it
// does not), and against the classical baselines (internal/baseline).
//
// For every instance it asserts, per algorithm:
//
//   - setupsched.Verify accepts the result (feasible schedule, stated
//     makespan matches, certified bound sound against the trivial bound);
//   - makespan / certified lower bound never exceeds the paper guarantee
//     (2 for the 2-approximations, 3/2 for the exact searches,
//     (3/2)(1+eps) for the eps-searches), except for the documented
//     bounded-round fallbacks, which are counted instead;
//   - where internal/exact can solve the instance: the certified lower
//     bound never exceeds OPT, no schedule beats OPT, and the makespan
//     stays within guarantee*OPT (using the sandwich
//     OPT_split <= OPT_pmtn <= OPT_nonp for the preemptive variant);
//
// and, per instance:
//
//   - the exact optima respect OPT_split <= OPT_nonp;
//   - every preemptive/non-preemptive makespan is at least every certified
//     splittable lower bound (and non-preemptive at least preemptive),
//     the relaxation chain of the three variants;
//   - the baseline schedules validate, and their makespans are upper
//     bounds: at least the exact non-preemptive optimum and at least every
//     certified non-preemptive lower bound.
//
// Any broken invariant becomes a Violation carrying the family, seed and
// size profile that produced it, so one (family, Params) pair reproduces
// the failure exactly.  cmd/schedstress drives this package as a soak CLI;
// diff_test.go drives it as tier-1 table tests.
package diff

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"setupsched"
	"setupsched/internal/baseline"
	"setupsched/internal/core"
	"setupsched/internal/exact"
	"setupsched/sched"
	"setupsched/schedgen"
)

// DefaultEpsilon is the eps-search accuracy used when Config.Epsilon is 0.
const DefaultEpsilon = 1e-3

// Spec is one algorithm under differential test.
type Spec struct {
	// Name labels the spec in reports ("pmtn/eps", ...).
	Name      string
	Variant   sched.Variant
	Algorithm setupsched.Algorithm
	// Epsilon is the accuracy passed to the eps-search (0 otherwise).
	Epsilon float64
	// GuarNum/GuarDen is the paper guarantee as an exact rational (2/1 or
	// 3/2).  For EpsilonSearch the effective bound is
	// (GuarNum/GuarDen)*(1+core.EpsRat(Epsilon)); every guarantee check
	// compares exact rationals, never floats.
	GuarNum, GuarDen int64
}

// Guarantee returns the spec's ratio bound as a float (eps included).
func (s Spec) Guarantee() float64 {
	g := float64(s.GuarNum) / float64(s.GuarDen)
	if s.Algorithm == setupsched.EpsilonSearch {
		g *= 1 + s.Epsilon
	}
	return g
}

// Specs returns the nine paper algorithms (the rows of Table 1) routed
// through the public Solver API, with eps as the eps-search accuracy.
func Specs(eps float64) []Spec {
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	var out []Spec
	for _, v := range sched.Variants {
		var short string
		switch v {
		case sched.Splittable:
			short = "split"
		case sched.Preemptive:
			short = "pmtn"
		default:
			short = "nonp"
		}
		out = append(out,
			Spec{short + "/2approx", v, setupsched.TwoApprox, 0, 2, 1},
			Spec{short + "/eps", v, setupsched.EpsilonSearch, eps, 3, 2},
			Spec{short + "/exact32", v, setupsched.Exact32, 0, 3, 2},
		)
	}
	return out
}

// specRuns converts the spec list into SolveAll runs plus the shared
// eps-search accuracy, scanned (not index-assumed) from the specs so a
// catalog reorder cannot silently break the SolveAll option set.
func specRuns(specs []Spec) (runs []setupsched.Run, eps float64) {
	runs = make([]setupsched.Run, len(specs))
	for i, spec := range specs {
		runs[i] = setupsched.Run{Variant: spec.Variant, Algorithm: spec.Algorithm}
		if spec.Algorithm == setupsched.EpsilonSearch && eps == 0 {
			eps = spec.Epsilon
		}
	}
	if eps == 0 {
		eps = DefaultEpsilon
	}
	return runs, eps
}

// AlgoRun is the outcome of one spec on one instance.
type AlgoRun struct {
	Spec      Spec
	Algorithm string // algorithm name reported by the solver
	Makespan  sched.Rat
	Lower     sched.Rat
	Probes    int
	// RatioVsLB is Makespan/Lower, the measured ratio the guarantee caps.
	RatioVsLB float64
	// Fallback reports the documented bounded-round fallback path, whose
	// certified bound is conservative (guarantee-vs-LB not asserted).
	Fallback bool
}

// Report is the outcome of checking one instance.
type Report struct {
	Fingerprint string
	Jobs        int
	Classes     int
	Machines    int64
	// OptNonp is the exact non-preemptive optimum — from the exhaustive
	// search on tiny instances, from the branch-and-bound reference when a
	// node budget is configured and it converges — or -1 when neither
	// applies.
	OptNonp int64
	// NonpLo/NonpHi is the certified bracket NonpLo <= OPT_nonp <= NonpHi
	// the branch-and-bound reference reached (equal to OptNonp when it
	// converged, a strict bracket when its node budget ran out, 0 when the
	// reference did not run).  The bracket powers the same soundness
	// checks as an exact optimum, just one-sided: lower bounds must not
	// exceed NonpHi, makespans must not undercut NonpLo.
	NonpLo, NonpHi int64
	// OptSplit is the exhaustive splittable optimum when HasOptSplit.
	OptSplit    sched.Rat
	HasOptSplit bool
	Runs        []AlgoRun
	Fallbacks   int
	// Violations lists every broken invariant, human-readable.
	Violations []string
}

func (r *Report) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// exact-search gates tighter than internal/exact's own, keeping the
// per-instance exhaustive budget small enough for soak throughput.
func wantExactNonp(in *sched.Instance) bool {
	return in.NumJobs() <= 12 && in.M <= 4 && len(in.Classes) <= 12
}

func wantExactSplit(in *sched.Instance) bool {
	return in.M <= 4 && len(in.Classes) <= 4
}

// wantExactBB gates the branch-and-bound reference during a sweep: the
// backend's own gate is memory-only, so a job cap keeps the per-instance
// soak cost bounded (an exhausted node budget still yields a usable
// certified bracket, it just burns the whole budget first).
func wantExactBB(in *sched.Instance) bool {
	return in.NumJobs() <= 512
}

// CheckInstance runs every spec on the instance and cross-checks the
// results.  Violations are reported in the Report, not as an error; the
// error return is reserved for infrastructure failures (context
// cancellation, a nil or invalid instance).
func CheckInstance(ctx context.Context, in *sched.Instance, eps float64) (*Report, error) {
	return CheckInstanceParallel(ctx, in, eps, 1)
}

// CheckInstanceParallel is CheckInstance with the nine algorithm runs
// fanned out concurrently through Solver.SolveAll at the given width
// (<= 1 is fully serial).  The fan-out path returns bit-identical results
// to the serial loop, so the checks are width-independent.
func CheckInstanceParallel(ctx context.Context, in *sched.Instance, eps float64, parallelism int) (*Report, error) {
	return CheckInstanceBudget(ctx, in, eps, parallelism, 0)
}

// CheckInstanceBudget is CheckInstanceParallel with a branch-and-bound
// node budget: when nodeBudget > 0, instances beyond the exhaustive gate
// (up to the wantExactBB job cap) also get an exact reference from the
// RefExact backend.  When it converges, its optimum feeds the same
// differential checks as the exhaustive one — and is pinned against the
// exhaustive optimum where both apply; when the budget runs out, the
// certified bracket it returns still bounds every certified lower bound
// from above and every schedule makespan from below.
func CheckInstanceBudget(ctx context.Context, in *sched.Instance, eps float64, parallelism int, nodeBudget int64) (*Report, error) {
	solver, err := setupsched.NewSolver(in)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Fingerprint: in.Fingerprint(),
		Jobs:        in.NumJobs(),
		Classes:     in.NumClasses(),
		Machines:    in.M,
		OptNonp:     -1,
	}

	// Exhaustive references, where affordable.
	if wantExactNonp(in) {
		switch opt, err := exact.NonPreemptive(in); {
		case err == nil:
			rep.OptNonp = opt
		case !errors.Is(err, exact.ErrTooLarge):
			return nil, err
		}
	}
	if wantExactSplit(in) {
		switch opt, err := exact.Splittable(in); {
		case err == nil:
			rep.OptSplit, rep.HasOptSplit = opt, true
		case !errors.Is(err, exact.ErrTooLarge):
			return nil, err
		}
	}
	// Branch-and-bound reference, when a node budget allows it.
	if nodeBudget > 0 && wantExactBB(in) {
		switch res, err := exact.BranchBound(ctx, in, nodeBudget); {
		case err == nil:
			if rep.OptNonp >= 0 && rep.OptNonp != res.Opt {
				rep.violate("branch-and-bound optimum %d disagrees with exhaustive optimum %d", res.Opt, rep.OptNonp)
			}
			rep.OptNonp = res.Opt
			rep.NonpLo, rep.NonpHi = res.Opt, res.Opt
		case errors.Is(err, exact.ErrBudget):
			var be *exact.BudgetError
			if errors.As(err, &be) {
				rep.NonpLo, rep.NonpHi = be.Lo, be.Hi
			}
		case errors.Is(err, exact.ErrTooLarge):
			// Beyond the backend's memory gate: no reference for this one.
		default:
			return nil, err
		}
	}
	if rep.OptNonp >= 0 && rep.HasOptSplit && sched.R(rep.OptNonp).Less(rep.OptSplit) {
		rep.violate("exact optima inverted: OPT_split %s > OPT_nonp %d", rep.OptSplit, rep.OptNonp)
	}

	// All nine specs go through Solver.SolveAll off the one shared
	// preparation; with parallelism > 1 they solve concurrently, in
	// deterministic report order either way.
	specs := Specs(eps)
	runs, specEps := specRuns(specs)
	opts := []setupsched.Option{
		setupsched.WithRuns(runs...),
		setupsched.WithEpsilon(specEps),
	}
	if parallelism > 1 {
		opts = append(opts, setupsched.WithParallelism(parallelism))
	}
	results, err := solver.SolveAll(ctx, opts...)
	if err != nil {
		return nil, err
	}
	for i, rr := range results {
		spec := specs[i]
		if rr.Err != nil {
			if errors.Is(rr.Err, setupsched.ErrCanceled) {
				return rep, rr.Err
			}
			rep.violate("%s: solve failed: %v", spec.Name, rr.Err)
			continue
		}
		res := rr.Result
		run := AlgoRun{
			Spec:      spec,
			Algorithm: res.Algorithm,
			Makespan:  res.Makespan,
			Lower:     res.LowerBound,
			Probes:    res.Probes,
			RatioVsLB: res.Ratio,
			Fallback:  res.Fallback,
		}
		rep.Runs = append(rep.Runs, run)
		if run.Fallback {
			rep.Fallbacks++
		}
		checkRun(rep, in, run, res)
	}
	checkRelaxationChain(rep)
	checkBaselines(rep, in)
	return rep, nil
}

// checkRun asserts the per-algorithm invariants for one result.
func checkRun(rep *Report, in *sched.Instance, run AlgoRun, res *setupsched.Result) {
	spec := run.Spec
	if err := setupsched.Verify(in, spec.Variant, res); err != nil {
		rep.violate("%s: Verify rejected the solver's own result: %v", spec.Name, err)
		return
	}

	// Guarantee against the certified lower bound (skipped for the
	// documented conservative fallbacks, which are counted instead).
	if !run.Fallback && !withinGuarantee(spec, run.Makespan, run.Lower) {
		rep.violate("%s: makespan %s exceeds guarantee %.6f x certified bound %s (ratio %.6f)",
			spec.Name, run.Makespan, spec.Guarantee(), run.Lower, run.RatioVsLB)
	}

	// Differential checks against the exhaustive optima.  The preemptive
	// optimum is sandwiched: OPT_split <= OPT_pmtn <= OPT_nonp.
	var optLo, optHi sched.Rat // OPT in [optLo, optHi] for this variant
	var haveLo, haveHi bool
	switch spec.Variant {
	case sched.Splittable:
		if rep.HasOptSplit {
			optLo, optHi, haveLo, haveHi = rep.OptSplit, rep.OptSplit, true, true
		}
	case sched.NonPreemptive:
		if rep.OptNonp >= 0 {
			o := sched.R(rep.OptNonp)
			optLo, optHi, haveLo, haveHi = o, o, true, true
		} else if rep.NonpLo >= 1 {
			// The branch-and-bound bracket is one-sided but sound in both
			// directions: Lo <= OPT (for the beats-optimum check) and
			// OPT <= Hi (for the unsound-certificate check).
			optLo, optHi, haveLo, haveHi = sched.R(rep.NonpLo), sched.R(rep.NonpHi), true, true
		}
	case sched.Preemptive:
		if rep.HasOptSplit {
			optLo, haveLo = rep.OptSplit, true
		}
		if rep.OptNonp >= 0 {
			optHi, haveHi = sched.R(rep.OptNonp), true
		} else if rep.NonpHi >= 1 {
			optHi, haveHi = sched.R(rep.NonpHi), true
		}
	}
	if haveHi && optHi.Less(run.Lower) {
		rep.violate("%s: certified lower bound %s exceeds exact optimum %s (unsound certificate)",
			spec.Name, run.Lower, optHi)
	}
	if haveLo && run.Makespan.Less(optLo) {
		rep.violate("%s: schedule makespan %s beats the exact optimum %s (infeasible schedule or broken exact search)",
			spec.Name, run.Makespan, optLo)
	}
	if haveHi && !run.Fallback && !withinGuarantee(spec, run.Makespan, optHi) {
		rep.violate("%s: makespan %s exceeds guarantee %.6f x exact optimum %s",
			spec.Name, run.Makespan, spec.Guarantee(), optHi)
	}
}

// withinGuarantee reports mk <= guarantee * ref with an exact rational
// comparison for every algorithm.  The eps-inflated bound multiplies in
// (1 + core.EpsRat(eps)) — the rational tolerance the eps-search really
// certifies — instead of comparing floats with slack, so a true ratio
// regression a hair above the guarantee can no longer hide inside float
// rounding.
func withinGuarantee(spec Spec, mk, ref sched.Rat) bool {
	bound := ref.MulInt(spec.GuarNum).DivInt(spec.GuarDen)
	if spec.Algorithm == setupsched.EpsilonSearch {
		bound = bound.Mul(core.EpsRat(spec.Epsilon).AddInt(1))
	}
	return mk.Leq(bound)
}

// checkRelaxationChain asserts OPT_split <= OPT_pmtn <= OPT_nonp through
// the runs: a feasible schedule of a stricter variant can never undercut a
// certified lower bound of a more relaxed one.
func checkRelaxationChain(rep *Report) {
	rank := func(v sched.Variant) int {
		switch v {
		case sched.Splittable:
			return 0
		case sched.Preemptive:
			return 1
		default:
			return 2
		}
	}
	for _, lower := range rep.Runs {
		for _, upper := range rep.Runs {
			if rank(lower.Spec.Variant) < rank(upper.Spec.Variant) &&
				upper.Makespan.Less(lower.Lower) {
				rep.violate("relaxation chain broken: %s makespan %s below %s certified bound %s",
					upper.Spec.Name, upper.Makespan, lower.Spec.Name, lower.Lower)
			}
		}
	}
}

// checkBaselines validates the classical baselines and uses them as upper
// bounds: every baseline schedules the instance non-preemptively, so its
// makespan is at least OPT_nonp and at least every certified
// non-preemptive lower bound.
func checkBaselines(rep *Report, in *sched.Instance) {
	for _, b := range []struct {
		name string
		make func(*sched.Instance) *sched.Schedule
	}{
		{"baseline/lpt", baseline.LPTBatches},
		{"baseline/nextfit", baseline.NextFitBatches},
		{"baseline/monmapotts", baseline.MonmaPottsSplit},
	} {
		s := b.make(in)
		if err := s.Validate(in); err != nil {
			rep.violate("%s: invalid schedule: %v", b.name, err)
			continue
		}
		mk := s.Makespan()
		if rep.OptNonp >= 0 && mk.Less(sched.R(rep.OptNonp)) {
			rep.violate("%s: makespan %s beats the exact non-preemptive optimum %d", b.name, mk, rep.OptNonp)
		} else if rep.NonpLo >= 1 && mk.Less(sched.R(rep.NonpLo)) {
			rep.violate("%s: makespan %s beats the certified optimum bracket lower end %d", b.name, mk, rep.NonpLo)
		}
		for _, run := range rep.Runs {
			if run.Spec.Variant == sched.NonPreemptive && mk.Less(run.Lower) {
				rep.violate("%s: makespan %s below %s certified bound %s", b.name, mk, run.Spec.Name, run.Lower)
			}
		}
	}
}

// Profile is a named instance-size profile.
type Profile struct {
	Name string
	// Params sizes the generated instances; Seed is overwritten per run.
	Params schedgen.Params
}

// DefaultProfiles returns the standard soak ladder: "tiny" is sized so
// internal/exact can compute true optima, "small" and "medium" are checked
// against certified bounds, baselines and the relaxation chain only.
func DefaultProfiles() []Profile {
	return []Profile{
		{"tiny", schedgen.Params{M: 3, Classes: 3, JobsPer: 2, MaxSetup: 12, MaxJob: 16}},
		{"small", schedgen.Params{M: 4, Classes: 10, JobsPer: 3, MaxSetup: 40, MaxJob: 60}},
		{"medium", schedgen.Params{M: 16, Classes: 80, JobsPer: 5, MaxSetup: 200, MaxJob: 300}},
	}
}

// ProfilesByNames resolves a comma-separated profile list against
// DefaultProfiles; "all" (or "") selects every profile.
func ProfilesByNames(spec string) ([]Profile, error) {
	all := DefaultProfiles()
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "all" {
		return all, nil
	}
	known := make([]string, len(all))
	for i, p := range all {
		known[i] = p.Name
	}
	var out []Profile
	seen := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" || seen[name] {
			continue
		}
		found := false
		for _, p := range all {
			if p.Name == name {
				out = append(out, p)
				seen[name] = true
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("diff: unknown profile %q (known: %s)", name, strings.Join(known, ", "))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("diff: empty profile selection %q", spec)
	}
	return out, nil
}

// Violation is one broken invariant with everything needed to reproduce
// it: the family, size profile and seed regenerate the instance exactly.
type Violation struct {
	Family      string
	Profile     string
	Seed        int64
	Fingerprint string
	Msg         string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s/%s seed=%d fp=%.12s] %s", v.Family, v.Profile, v.Seed, v.Fingerprint, v.Msg)
}

// Config drives one Run sweep.
type Config struct {
	// Families to generate; empty means the full schedgen catalog.
	Families []schedgen.Family
	// Profiles to size instances with; empty means DefaultProfiles.
	Profiles []Profile
	// Seeds runs seeds SeedBase .. SeedBase+Seeds-1 per (family, profile).
	Seeds    int64
	SeedBase int64
	// Epsilon is the eps-search accuracy (default DefaultEpsilon).
	Epsilon float64
	// ExactNodeBudget > 0 runs the branch-and-bound exact reference on
	// every instance within the wantExactBB gate, spending at most this
	// many search nodes per instance: converged instances gain true-ratio
	// differential checks, budget-exhausted ones a certified OPT bracket.
	// Zero keeps the sweep to the tiny exhaustive references only.
	ExactNodeBudget int64
	// Workers bounds check parallelism; <= 0 means 1.
	Workers int
	// Parallelism fans each instance's nine algorithm runs out through
	// Solver.SolveAll at this width; <= 1 keeps the serial loop.  It
	// multiplies with Workers, so the effective goroutine bound is
	// Workers * Parallelism.
	Parallelism int
	// CrossCheckParallel > 1 additionally verifies, per instance, that the
	// parallel engine (SolveAll fan-out and speculative probing at this
	// width) returns bit-identical makespans, bounds and guesses to the
	// serial path; mismatches become Violations.
	CrossCheckParallel int
	// MaxViolations stops early once this many violations are collected
	// (0 = unlimited).
	MaxViolations int
	// Observe, when non-nil, receives the wall-clock duration of every
	// completed per-instance check (all of the instance's solves).  It is
	// called concurrently from the worker goroutines, so the sink must be
	// safe for concurrent use — an obs.Histogram is the intended consumer.
	Observe func(d time.Duration)
	// Progress, when non-nil, is called after every checked instance with
	// the sweep's running totals.  It runs under the summary lock: keep it
	// cheap (bump shared counters for a reporter goroutine to read).
	Progress func(instances, solves int64, violations int)
}

// Summary aggregates a Run sweep.
type Summary struct {
	Instances  int64
	Solves     int64
	ExactNonp  int64 // instances with an exact non-preemptive optimum (exhaustive or B&B)
	ExactSplit int64 // instances with an exhaustive splittable optimum
	BBBrackets int64 // instances where the B&B reference certified only a bracket
	Fallbacks  int64
	// MaxRatioVsLB is the worst measured makespan/certified-bound ratio
	// per spec name, over non-fallback runs.
	MaxRatioVsLB map[string]float64
	Violations   []Violation
}

// Run sweeps families x profiles x seeds, checking every instance on a
// bounded worker pool.  It stops early when ctx is done (returning what
// was checked so far with the context's error) or when MaxViolations is
// reached (nil error).
func Run(ctx context.Context, cfg Config) (*Summary, error) {
	families := cfg.Families
	if len(families) == 0 {
		families = schedgen.Families
	}
	profiles := cfg.Profiles
	if len(profiles) == 0 {
		profiles = DefaultProfiles()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}

	type item struct {
		fam     schedgen.Family
		profile Profile
		seed    int64
	}
	jobs := make(chan item)
	sum := &Summary{MaxRatioVsLB: map[string]float64{}}
	var mu sync.Mutex
	var firstErr error
	stop := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil ||
			(cfg.MaxViolations > 0 && len(sum.Violations) >= cfg.MaxViolations)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range jobs {
				p := it.profile.Params
				p.Seed = it.seed
				in := it.fam.Make(p)
				t0 := time.Now()
				rep, err := CheckInstanceBudget(ctx, in, cfg.Epsilon, cfg.Parallelism, cfg.ExactNodeBudget)
				if err == nil && cfg.CrossCheckParallel > 1 {
					var msgs []string
					msgs, err = CheckEngineParallel(ctx, in, cfg.Epsilon, cfg.CrossCheckParallel)
					rep.Violations = append(rep.Violations, msgs...)
				}
				if cfg.Observe != nil {
					cfg.Observe(time.Since(t0))
				}
				mu.Lock()
				record := func() {
					for _, msg := range rep.Violations {
						sum.Violations = append(sum.Violations, Violation{
							Family: it.fam.Name, Profile: it.profile.Name, Seed: it.seed,
							Fingerprint: rep.Fingerprint, Msg: msg,
						})
					}
				}
				if err != nil {
					if firstErr == nil && !errors.Is(err, setupsched.ErrCanceled) {
						firstErr = fmt.Errorf("%s/%s seed %d: %w", it.fam.Name, it.profile.Name, it.seed, err)
					}
					if firstErr == nil && ctx.Err() != nil {
						firstErr = ctx.Err()
					}
					// A cancellation mid-instance must not discard evidence
					// the completed specs already produced.
					if rep != nil {
						record()
					}
					mu.Unlock()
					continue
				}
				sum.Instances++
				sum.Solves += int64(len(rep.Runs))
				sum.Fallbacks += int64(rep.Fallbacks)
				if rep.OptNonp >= 0 {
					sum.ExactNonp++
				}
				if rep.HasOptSplit {
					sum.ExactSplit++
				}
				if rep.OptNonp < 0 && rep.NonpLo >= 1 {
					sum.BBBrackets++
				}
				for _, run := range rep.Runs {
					if !run.Fallback && run.RatioVsLB > sum.MaxRatioVsLB[run.Spec.Name] {
						sum.MaxRatioVsLB[run.Spec.Name] = run.RatioVsLB
					}
				}
				record()
				if cfg.Progress != nil {
					cfg.Progress(sum.Instances, sum.Solves, len(sum.Violations))
				}
				mu.Unlock()
			}
		}()
	}

feed:
	for _, fam := range families {
		for _, profile := range profiles {
			for s := int64(0); s < cfg.Seeds; s++ {
				if ctx.Err() != nil || stop() {
					break feed
				}
				jobs <- item{fam, profile, cfg.SeedBase + s}
			}
		}
	}
	close(jobs)
	wg.Wait()

	if firstErr != nil {
		return sum, firstErr
	}
	if err := ctx.Err(); err != nil {
		return sum, err
	}
	return sum, nil
}
