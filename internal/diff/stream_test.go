package diff

import (
	"context"
	"testing"

	"setupsched/sched"
	"setupsched/schedgen"
)

// TestDriftRegimesSessionIdentity is the tier-1 incremental-vs-fresh
// bit-identity gate over generated drift traces: every regime, two size
// profiles, several seeds, every paper spec at every solve point.
func TestDriftRegimesSessionIdentity(t *testing.T) {
	profiles, err := ProfilesByNames("tiny,small")
	if err != nil {
		t.Fatal(err)
	}
	for _, regime := range schedgen.DriftRegimes {
		for _, profile := range profiles {
			t.Run(regime.Name+"/"+profile.Name, func(t *testing.T) {
				for seed := int64(0); seed < 3; seed++ {
					p := profile.Params
					p.Seed = seed
					events := regime.Make(p, 20)
					msgs, stats, err := CheckSessionTrace(context.Background(), events, 0)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					for _, m := range msgs {
						t.Errorf("seed %d: %s", seed, m)
					}
					if stats.Solves == 0 {
						t.Fatalf("seed %d: trace ran no solves", seed)
					}
				}
			})
		}
	}
}

// TestCatalogSessionIdentity runs the identity gate over the full
// adversarial family catalog: each family's instance becomes a session
// base, a canned delta burst is applied, and every spec is compared
// against a fresh solver before and after.
func TestCatalogSessionIdentity(t *testing.T) {
	canned := []sched.Delta{
		{Op: sched.DeltaAddJobs, Class: 0, Jobs: []int64{5, 1}},
		{Op: sched.DeltaSetSetup, Class: 0, Setup: 17},
		{Op: sched.DeltaAddClass, Setup: 6, Jobs: []int64{9, 2, 2}},
		{Op: sched.DeltaRemoveJob, Class: 0, Job: 0},
		{Op: sched.DeltaSetMachines, M: 5},
		{Op: sched.DeltaAddJobs, Class: 0, Jobs: []int64{3}},
	}
	for _, fam := range schedgen.Families {
		t.Run(fam.Name, func(t *testing.T) {
			for seed := int64(0); seed < 2; seed++ {
				in := fam.Make(schedgen.Params{
					M: 4, Classes: 10, JobsPer: 3, MaxSetup: 40, MaxJob: 60, Seed: seed,
				})
				events := []schedgen.TraceEvent{{Base: in}, {Solve: true}}
				for i := range canned {
					d := canned[i]
					events = append(events, schedgen.TraceEvent{Delta: &d}, schedgen.TraceEvent{Solve: true})
				}
				msgs, _, err := CheckSessionTrace(context.Background(), events, 0)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for _, m := range msgs {
					t.Errorf("seed %d: %s", seed, m)
				}
			}
		})
	}
}

// TestRunDriftSweep smokes the sweep driver the schedstress -drift soak
// uses.
func TestRunDriftSweep(t *testing.T) {
	profiles, err := ProfilesByNames("tiny")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := RunDrift(context.Background(), DriftConfig{
		Profiles: profiles, Seeds: 2, Steps: 12, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Traces != int64(len(schedgen.DriftRegimes))*2 {
		t.Fatalf("swept %d traces, want %d", sum.Traces, len(schedgen.DriftRegimes)*2)
	}
	if sum.Deltas == 0 || sum.Solves == 0 {
		t.Fatalf("empty sweep: %+v", sum)
	}
	for _, v := range sum.Violations {
		t.Error(v)
	}
}
