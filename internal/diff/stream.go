package diff

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"setupsched"
	"setupsched/sched"
	"setupsched/schedgen"
	"setupsched/stream"
)

// defaultDriftSteps is the delta count per generated drift trace.
const defaultDriftSteps = 24

// CheckSessionTrace replays a delta trace through a stream.Session and a
// plain mirror instance, enforcing the session subsystem's contracts at
// every step:
//
//   - delta acceptance is identical on both sides (a delta the session
//     rejects must also be rejected by sched.Delta.Apply, and vice
//     versa), so replicas replaying one trace cannot diverge;
//   - at every solve point the session instance equals the mirror
//     (sched.Instance.Equal and fingerprints) and the delta-maintained
//     preparation passes Session.SelfCheck;
//   - every paper spec solved through the session — warm, cached or cold
//     — is bit-identical to a fresh NewSolver solve of the mirror:
//     makespan, certified lower bound, accepted guess, algorithm name and
//     fallback flag all match.  Probe counts are exempt (warm solves run
//     fewer; that is the feature).  When either side lands on a
//     documented bounded-round fallback the certified bound is
//     trajectory-dependent, so the comparison relaxes to both-sides
//     soundness (setupsched.Verify) — the same carve-out the guarantee
//     checks apply.
//
// Mismatches come back as human-readable violations plus the session's
// final stats; the error return is reserved for infrastructure failures.
func CheckSessionTrace(ctx context.Context, events []schedgen.TraceEvent, eps float64) ([]string, stream.Stats, error) {
	if len(events) == 0 || events[0].Base == nil {
		return nil, stream.Stats{}, errors.New("diff: trace must start with a base instance")
	}
	sess, err := stream.NewSession(events[0].Base)
	if err != nil {
		return nil, stream.Stats{}, err
	}
	mirror := events[0].Base.Clone()
	specs := Specs(eps)

	var violations []string
	solvePoints := 0
	for i, ev := range events[1:] {
		switch {
		case ev.Delta != nil:
			errS := sess.Apply(ctx, *ev.Delta)
			_, errM := ev.Delta.Apply(mirror)
			if (errS == nil) != (errM == nil) {
				violations = append(violations, fmt.Sprintf(
					"event %d %s: session and fresh apply disagree (session err %v, fresh err %v)",
					i+1, ev.Delta, errS, errM))
			}
		case ev.Solve:
			solvePoints++
			msgs, err := checkSolvePoint(ctx, sess, mirror, specs, solvePoints)
			violations = append(violations, msgs...)
			if err != nil {
				return violations, sess.Stats(), err
			}
		}
	}
	return violations, sess.Stats(), nil
}

// checkSolvePoint cross-checks one solve point of a trace replay.
func checkSolvePoint(ctx context.Context, sess *stream.Session, mirror *sched.Instance, specs []Spec, point int) ([]string, error) {
	var violations []string
	if !sess.Instance().Equal(mirror) {
		violations = append(violations, fmt.Sprintf(
			"solve point %d: session instance diverged from fresh replay", point))
		return violations, nil
	}
	sessFP, err := sess.Fingerprint(ctx)
	if err != nil {
		return violations, err
	}
	if got, want := sessFP, mirror.Fingerprint(); got != want {
		violations = append(violations, fmt.Sprintf(
			"solve point %d: session fingerprint %.12s != fresh %.12s", point, got, want))
	}
	if err := sess.SelfCheck(); err != nil {
		violations = append(violations, fmt.Sprintf(
			"solve point %d: incremental preparation drifted: %v", point, err))
	}
	// The SoA eval layout must track the reference walk on the drifted
	// instance too — delta maintenance rebuilds the sorted/prefix arrays
	// per touched class, and this is where a stale rebuild would surface.
	for _, msg := range CheckEvalLayout(mirror, int64(point)) {
		violations = append(violations, fmt.Sprintf("solve point %d: %s", point, msg))
	}
	fresh, err := setupsched.NewSolver(mirror)
	if err != nil {
		return violations, err
	}
	for _, spec := range specs {
		fOpts := []setupsched.Option{setupsched.WithAlgorithm(spec.Algorithm)}
		sOpts := []stream.SolveOption{stream.WithAlgorithm(spec.Algorithm)}
		if spec.Algorithm == setupsched.EpsilonSearch {
			fOpts = append(fOpts, setupsched.WithEpsilon(spec.Epsilon))
			sOpts = append(sOpts, stream.WithEpsilon(spec.Epsilon))
		}
		fr, err := fresh.Solve(ctx, spec.Variant, fOpts...)
		if err != nil {
			return violations, err
		}
		sr, err := sess.Solve(ctx, spec.Variant, sOpts...)
		if err != nil {
			return violations, err
		}
		violations = append(violations, compareSessionRun(mirror, spec, point, sr, fr)...)
	}
	return violations, nil
}

// compareSessionRun asserts one session result against the fresh
// reference.
func compareSessionRun(in *sched.Instance, spec Spec, point int, sr *stream.Result, fr *setupsched.Result) []string {
	tag := func(msg string, args ...any) string {
		return fmt.Sprintf("solve point %d %s (%s): %s", point, spec.Name, sessionMode(sr), fmt.Sprintf(msg, args...))
	}
	if sr.Fallback || fr.Fallback {
		// Trajectory-dependent conservative path: identity is not defined,
		// soundness still is.
		var out []string
		if err := setupsched.Verify(in, spec.Variant, sr.Result); err != nil {
			out = append(out, tag("fallback result failed Verify: %v", err))
		}
		return out
	}
	var out []string
	if !sr.Makespan.Equal(fr.Makespan) {
		out = append(out, tag("makespan %s != fresh %s", sr.Makespan, fr.Makespan))
	}
	if !sr.LowerBound.Equal(fr.LowerBound) {
		out = append(out, tag("lower bound %s != fresh %s", sr.LowerBound, fr.LowerBound))
	}
	if !sr.Guess.Equal(fr.Guess) {
		out = append(out, tag("accepted guess %s != fresh %s", sr.Guess, fr.Guess))
	}
	if sr.Algorithm != fr.Algorithm {
		out = append(out, tag("algorithm %q != fresh %q", sr.Algorithm, fr.Algorithm))
	}
	if err := setupsched.Verify(in, spec.Variant, sr.Result); err != nil {
		out = append(out, tag("failed Verify: %v", err))
	}
	return out
}

func sessionMode(r *stream.Result) string {
	switch {
	case r.Cached:
		return "cached"
	case r.Warm:
		return "warm"
	}
	return "cold"
}

// DriftConfig drives one RunDrift sweep.
type DriftConfig struct {
	// Regimes to generate; empty means the full drift catalog.
	Regimes []schedgen.DriftRegime
	// Profiles size the base instances; empty means DefaultProfiles.
	Profiles []Profile
	// Steps is the delta count per trace (default 24).
	Steps int
	// Seeds runs seeds SeedBase .. SeedBase+Seeds-1 per (regime, profile).
	Seeds    int64
	SeedBase int64
	// Epsilon is the eps-search accuracy (default DefaultEpsilon).
	Epsilon float64
	// Workers bounds trace-replay parallelism; <= 0 means 1.
	Workers int
	// MaxViolations stops early once this many violations are collected
	// (0 = unlimited).
	MaxViolations int
}

// DriftSummary aggregates a RunDrift sweep.
type DriftSummary struct {
	Traces     int64
	Deltas     uint64
	Solves     uint64
	WarmHits   uint64
	CacheHits  uint64
	Rebuilds   uint64
	Violations []Violation
}

// RunDrift sweeps drift regimes x profiles x seeds, replaying every
// generated trace through CheckSessionTrace on a bounded worker pool.  It
// stops early when ctx is done (returning what was checked so far with
// the context's error) or when MaxViolations is reached (nil error).
func RunDrift(ctx context.Context, cfg DriftConfig) (*DriftSummary, error) {
	regimes := cfg.Regimes
	if len(regimes) == 0 {
		regimes = schedgen.DriftRegimes
	}
	profiles := cfg.Profiles
	if len(profiles) == 0 {
		profiles = DefaultProfiles()
	}
	steps := cfg.Steps
	if steps <= 0 {
		steps = defaultDriftSteps
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}

	type item struct {
		regime  schedgen.DriftRegime
		profile Profile
		seed    int64
	}
	jobs := make(chan item)
	sum := &DriftSummary{}
	var mu sync.Mutex
	var firstErr error
	stop := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil ||
			(cfg.MaxViolations > 0 && len(sum.Violations) >= cfg.MaxViolations)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range jobs {
				p := it.profile.Params
				p.Seed = it.seed
				events := it.regime.Make(p, steps)
				msgs, stats, err := CheckSessionTrace(ctx, events, cfg.Epsilon)
				mu.Lock()
				for _, msg := range msgs {
					sum.Violations = append(sum.Violations, Violation{
						Family: "drift/" + it.regime.Name, Profile: it.profile.Name, Seed: it.seed,
						Msg: msg,
					})
				}
				if err != nil {
					if firstErr == nil && !errors.Is(err, setupsched.ErrCanceled) {
						firstErr = fmt.Errorf("drift/%s/%s seed %d: %w", it.regime.Name, it.profile.Name, it.seed, err)
					}
					if firstErr == nil && ctx.Err() != nil {
						firstErr = ctx.Err()
					}
					mu.Unlock()
					continue
				}
				sum.Traces++
				sum.Deltas += stats.Deltas
				sum.Solves += stats.Solves
				sum.WarmHits += stats.WarmHits
				sum.CacheHits += stats.CacheHits
				sum.Rebuilds += stats.Rebuilds
				mu.Unlock()
			}
		}()
	}

feed:
	for _, regime := range regimes {
		for _, profile := range profiles {
			for s := int64(0); s < cfg.Seeds; s++ {
				if ctx.Err() != nil || stop() {
					break feed
				}
				jobs <- item{regime, profile, cfg.SeedBase + s}
			}
		}
	}
	close(jobs)
	wg.Wait()

	if firstErr != nil {
		return sum, firstErr
	}
	if err := ctx.Err(); err != nil {
		return sum, err
	}
	return sum, nil
}
