package diff

import (
	"fmt"
	"math/rand"
	"slices"

	"setupsched/internal/core"
	"setupsched/sched"
)

// evalLayoutLadder returns makespan guesses spanning every decision
// region of the non-preemptive dual test: below SPT, around the trivial
// bounds, interior points and non-integral rationals (the floor path).
// Deterministic in the seed so a reported violation reproduces.
func evalLayoutLadder(p *core.Prep, seed int64) []sched.Rat {
	tmin := p.TMin(sched.NonPreemptive)
	ladder := []sched.Rat{
		sched.R(1),
		sched.R(p.SPT - 1), sched.R(p.SPT), sched.R(p.SPT + 1),
		tmin, tmin.MulInt(2), sched.R(p.N),
		sched.RatOf(2*p.N+1, 3),
	}
	if tmin.Less(sched.R(p.N)) {
		ladder = append(ladder, sched.Mid(tmin, sched.R(p.N)))
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 16; i++ {
		ladder = append(ladder, sched.RatOf(1+rng.Int63n(2*p.N), 1+rng.Int63n(4)))
	}
	return ladder
}

// CheckEvalLayout cross-checks the SoA fast paths of the non-preemptive
// dual test — the binary-search eval over sorted jobs and prefix sums,
// its zero-allocation scratch variant and the batched speculative
// sweep — against the reference per-job walk, field for field, over an
// evalLayoutLadder of guesses.  The contract is bit-identity: the SoA
// rewrite is a data-layout change, so every accept/reject decision,
// machine count, load bound and expensive-class set must match the walk
// exactly.  Returned strings are violations; empty means identical.
func CheckEvalLayout(in *sched.Instance, seed int64) []string {
	p := core.Prepare(in)
	ladder := evalLayoutLadder(p, seed)
	var out []string
	var sc core.NonpEvalScratch
	var bsc core.NonpBatchScratch
	oks := p.EvalNonpBatch(ladder, &bsc)
	for li, T := range ladder {
		want := p.EvalNonpRef(T)
		if msg := diffNonpEval("EvalNonp", T, p.EvalNonp(T), want); msg != "" {
			out = append(out, msg)
		}
		if msg := diffNonpEval("EvalNonpScratch", T, p.EvalNonpScratch(T, &sc), want); msg != "" {
			out = append(out, msg)
		}
		if oks[li] != want.OK {
			out = append(out, fmt.Sprintf(
				"EvalNonpBatch at T=%s: ok=%v, reference walk says %v", T, oks[li], want.OK))
		}
	}
	return out
}

func diffNonpEval(tag string, T sched.Rat, got, want *core.NonpEval) string {
	switch {
	case got.T != want.T || got.OK != want.OK || got.Reason != want.Reason ||
		got.MPrime != want.MPrime || got.L != want.L:
		return fmt.Sprintf("%s at T=%s: header %+v != walk %+v", tag, T, got, want)
	case !slices.Equal(got.Exp, want.Exp):
		return fmt.Sprintf("%s at T=%s: Exp %v != walk %v", tag, T, got.Exp, want.Exp)
	case !slices.Equal(got.Mi, want.Mi):
		return fmt.Sprintf("%s at T=%s: Mi %v != walk %v", tag, T, got.Mi, want.Mi)
	case !slices.Equal(got.XiPos, want.XiPos):
		return fmt.Sprintf("%s at T=%s: XiPos %v != walk %v", tag, T, got.XiPos, want.XiPos)
	}
	return ""
}
