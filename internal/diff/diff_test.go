package diff

import (
	"context"
	"errors"
	"strings"
	"testing"

	"setupsched"
	"setupsched/sched"
	"setupsched/schedgen"
)

// TestEveryFamilyEveryProfileHoldsGuarantees is the tier-1 face of the
// harness: a table over the full schedgen catalog and the standard size
// ladder, a few seeds each, asserting zero violations.
func TestEveryFamilyEveryProfileHoldsGuarantees(t *testing.T) {
	seeds := int64(4)
	if testing.Short() {
		seeds = 2
	}
	for _, fam := range schedgen.Families {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			t.Parallel()
			for _, profile := range DefaultProfiles() {
				for seed := int64(0); seed < seeds; seed++ {
					p := profile.Params
					p.Seed = seed
					in := fam.Make(p)
					rep, err := CheckInstance(context.Background(), in, 0)
					if err != nil {
						t.Fatalf("%s seed %d: %v", profile.Name, seed, err)
					}
					for _, v := range rep.Violations {
						t.Errorf("%s seed %d (fp %.12s): %s", profile.Name, seed, rep.Fingerprint, v)
					}
					if len(rep.Runs) != len(Specs(0)) {
						t.Fatalf("%s seed %d: %d runs for %d specs", profile.Name, seed, len(rep.Runs), len(Specs(0)))
					}
				}
			}
		})
	}
}

// TestTinyProfileHasExactReferences pins that the "tiny" profile really
// exercises the exhaustive cross-check, not just certified bounds.
func TestTinyProfileHasExactReferences(t *testing.T) {
	tiny := DefaultProfiles()[0]
	if tiny.Name != "tiny" {
		t.Fatalf("first profile is %q, want tiny", tiny.Name)
	}
	exactNonp, exactSplit := 0, 0
	for seed := int64(0); seed < 10; seed++ {
		p := tiny.Params
		p.Seed = seed
		rep, err := CheckInstance(context.Background(), schedgen.Uniform(p), 0)
		if err != nil {
			t.Fatal(err)
		}
		if rep.OptNonp >= 0 {
			exactNonp++
		}
		if rep.HasOptSplit {
			exactSplit++
		}
	}
	if exactNonp < 8 || exactSplit < 8 {
		t.Fatalf("tiny profile produced only %d/10 exact nonp and %d/10 exact split references",
			exactNonp, exactSplit)
	}
}

// TestBudgetedExactReferences pins the branch-and-bound reference path:
// with a node budget configured, instances beyond the exhaustive gate
// gain either a true optimum or a certified bracket, the resulting extra
// checks hold, and on tiny instances the B&B optimum is cross-pinned
// against the exhaustive one inside the harness itself.
func TestBudgetedExactReferences(t *testing.T) {
	t.Parallel()
	const budget = 400_000
	// Tiny: both references compute; the harness pins them equal.
	tiny := DefaultProfiles()[0].Params
	tiny.Seed = 2
	rep, err := CheckInstanceBudget(context.Background(), schedgen.Uniform(tiny), 0, 1, budget)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OptNonp < 0 {
		t.Fatal("tiny instance got no exact reference")
	}
	if rep.NonpLo != rep.OptNonp || rep.NonpHi != rep.OptNonp {
		t.Errorf("converged B&B bracket [%d, %d] != optimum %d", rep.NonpLo, rep.NonpHi, rep.OptNonp)
	}
	for _, v := range rep.Violations {
		t.Errorf("tiny: %s", v)
	}

	// Small profile: beyond the exhaustive gate, so any exact reference can
	// only come from the branch-and-bound backend.
	small := DefaultProfiles()[1].Params
	refs, brackets := 0, 0
	for seed := int64(0); seed < 6; seed++ {
		p := small
		p.Seed = seed
		in := schedgen.Uniform(p)
		rep, err := CheckInstanceBudget(context.Background(), in, 0, 1, budget)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range rep.Violations {
			t.Errorf("seed %d (fp %.12s): %s", seed, rep.Fingerprint, v)
		}
		switch {
		case rep.OptNonp >= 0:
			refs++
		case rep.NonpLo >= 1:
			brackets++
			if rep.NonpLo > rep.NonpHi {
				t.Errorf("seed %d: inverted bracket [%d, %d]", seed, rep.NonpLo, rep.NonpHi)
			}
		}
	}
	if refs+brackets < 4 {
		t.Fatalf("only %d/6 small instances got a B&B reference or bracket", refs+brackets)
	}
	if refs == 0 {
		t.Error("no small instance converged to a true optimum within the budget")
	}
}

// TestHarnessDetectsGuaranteeViolation feeds checkRun an impossible
// guarantee to prove the harness can actually fail (it is not vacuously
// green).
func TestHarnessDetectsGuaranteeViolation(t *testing.T) {
	in := schedgen.Uniform(schedgen.Params{M: 3, Classes: 4, JobsPer: 2, MaxSetup: 12, MaxJob: 16, Seed: 1})
	solver, err := setupsched.NewSolver(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), sched.NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	if !res.LowerBound.Less(res.Makespan) {
		t.Skipf("instance solved to optimality (ratio 1), pick another seed")
	}
	spec := Spec{Name: "nonp/impossible", Variant: sched.NonPreemptive,
		Algorithm: setupsched.Exact32, GuarNum: 1, GuarDen: 1}
	rep := &Report{OptNonp: -1}
	checkRun(rep, in, AlgoRun{Spec: spec, Makespan: res.Makespan, Lower: res.LowerBound,
		RatioVsLB: res.Ratio}, res)
	if len(rep.Violations) == 0 {
		t.Fatal("guarantee 1.0 not flagged on a ratio > 1 result")
	}
	if !strings.Contains(rep.Violations[0], "exceeds guarantee") {
		t.Fatalf("unexpected violation: %s", rep.Violations[0])
	}
}

// TestHarnessDetectsCorruptResult proves Verify failures and unsound
// exact references surface as violations.
func TestHarnessDetectsCorruptResult(t *testing.T) {
	in := schedgen.Uniform(schedgen.Params{M: 3, Classes: 4, JobsPer: 2, MaxSetup: 12, MaxJob: 16, Seed: 2})
	solver, err := setupsched.NewSolver(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), sched.NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	spec := Specs(0)[8] // nonp/exact32
	if spec.Name != "nonp/exact32" {
		t.Fatalf("spec table order changed: %s", spec.Name)
	}
	run := AlgoRun{Spec: spec, Makespan: res.Makespan, Lower: res.LowerBound, RatioVsLB: res.Ratio}

	// A lied-about makespan must be caught by the Verify re-check.
	corrupt := *res
	corrupt.Makespan = corrupt.Makespan.AddInt(1)
	rep := &Report{OptNonp: -1}
	checkRun(rep, in, run, &corrupt)
	if len(rep.Violations) == 0 || !strings.Contains(rep.Violations[0], "Verify rejected") {
		t.Fatalf("corrupt makespan not flagged: %v", rep.Violations)
	}

	// An exact optimum below the certified bound means an unsound
	// certificate (here the "exact optimum" is the planted lie).
	rep = &Report{OptNonp: res.LowerBound.Ceil() - 1}
	checkRun(rep, in, run, res)
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "unsound certificate") {
			found = true
		}
	}
	if !found {
		t.Fatalf("unsound certificate not flagged: %v", rep.Violations)
	}
}

// TestRelaxationChainDetection plants a preemptive makespan below a
// splittable certified bound and expects the chain check to fire.
func TestRelaxationChainDetection(t *testing.T) {
	rep := &Report{
		Runs: []AlgoRun{
			{Spec: Spec{Name: "split/exact32", Variant: sched.Splittable}, Lower: sched.R(10), Makespan: sched.R(12)},
			{Spec: Spec{Name: "pmtn/exact32", Variant: sched.Preemptive}, Lower: sched.R(5), Makespan: sched.R(9)},
		},
	}
	checkRelaxationChain(rep)
	if len(rep.Violations) != 1 || !strings.Contains(rep.Violations[0], "relaxation chain broken") {
		t.Fatalf("chain violation not flagged: %v", rep.Violations)
	}
}

func TestRunSweepAggregates(t *testing.T) {
	fams, err := schedgen.Select("uniform,nearhalf,ratstress")
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := ProfilesByNames("tiny,small")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(context.Background(), Config{
		Families: fams, Profiles: profiles, Seeds: 3, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantInstances := int64(len(fams) * len(profiles) * 3)
	if sum.Instances != wantInstances {
		t.Fatalf("swept %d instances, want %d", sum.Instances, wantInstances)
	}
	if sum.Solves != wantInstances*int64(len(Specs(0))) {
		t.Fatalf("%d solves for %d instances", sum.Solves, sum.Instances)
	}
	if len(sum.Violations) != 0 {
		t.Fatalf("violations: %v", sum.Violations)
	}
	if sum.ExactNonp == 0 || sum.ExactSplit == 0 {
		t.Fatal("sweep never reached an exact reference")
	}
	for _, spec := range Specs(0) {
		r := sum.MaxRatioVsLB[spec.Name]
		if r < 1 || r > spec.Guarantee()+1e-9 {
			t.Fatalf("%s: worst ratio %f outside [1, %f]", spec.Name, r, spec.Guarantee())
		}
	}
}

func TestRunRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sum, err := Run(ctx, Config{Seeds: 1000, Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sweep returned %v", err)
	}
	if sum.Instances > 64 {
		t.Fatalf("canceled sweep still checked %d instances", sum.Instances)
	}
}

func TestProfilesByNames(t *testing.T) {
	if _, err := ProfilesByNames("bogus"); err == nil {
		t.Error("unknown profile accepted")
	}
	got, err := ProfilesByNames("medium,tiny")
	if err != nil || len(got) != 2 || got[0].Name != "medium" || got[1].Name != "tiny" {
		t.Errorf("ProfilesByNames(medium,tiny) = %v, %v", got, err)
	}
	all, err := ProfilesByNames("all")
	if err != nil || len(all) != len(DefaultProfiles()) {
		t.Errorf("ProfilesByNames(all) = %d profiles, %v", len(all), err)
	}
}

func TestViolationStringCarriesReproduction(t *testing.T) {
	v := Violation{Family: "zipf", Profile: "small", Seed: 42,
		Fingerprint: "abcdef0123456789", Msg: "boom"}
	s := v.String()
	for _, want := range []string{"zipf", "small", "seed=42", "abcdef012345", "boom"} {
		if !strings.Contains(s, want) {
			t.Fatalf("violation string %q missing %q", s, want)
		}
	}
}
