package diff

import (
	"context"
	"testing"

	"setupsched/schedgen"
)

// TestEngineParallelBitIdentical is the acceptance cross-check of the
// parallel solve engine: over the full schedgen catalog, SolveAll fan-out
// and speculative probing must return bit-identical makespans, certified
// bounds and accepted guesses to the serial path, for every spec.
func TestEngineParallelBitIdentical(t *testing.T) {
	profiles := []Profile{
		{"tiny", schedgen.Params{M: 3, Classes: 3, JobsPer: 2, MaxSetup: 12, MaxJob: 16}},
		// Setup-heavy sizing whose searches genuinely probe (the tiny
		// profile mostly accepts the trivial bound on the first guess).
		{"searchy", schedgen.Params{M: 32, Classes: 40, JobsPer: 3, MaxSetup: 500, MaxJob: 60}},
	}
	for _, fam := range schedgen.Families {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			t.Parallel()
			for _, prof := range profiles {
				for seed := int64(0); seed < 3; seed++ {
					p := prof.Params
					p.Seed = seed
					in := fam.Make(p)
					msgs, err := CheckEngineParallel(context.Background(), in, 0, 4)
					if err != nil {
						t.Fatalf("%s seed %d: %v", prof.Name, seed, err)
					}
					for _, msg := range msgs {
						t.Errorf("%s seed %d: %s", prof.Name, seed, msg)
					}
				}
			}
		})
	}
}

// TestCheckInstanceParallelMatchesSerial asserts the fan-out check path
// produces the same report as the serial one.
func TestCheckInstanceParallelMatchesSerial(t *testing.T) {
	in := schedgen.ExpensiveSetups(schedgen.Params{M: 32, Classes: 40, JobsPer: 3, MaxSetup: 500, MaxJob: 60, Seed: 1})
	serial, err := CheckInstance(context.Background(), in, 0)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CheckInstanceParallel(context.Background(), in, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Violations) != 0 || len(par.Violations) != 0 {
		t.Fatalf("violations: serial %v, parallel %v", serial.Violations, par.Violations)
	}
	if len(serial.Runs) != len(par.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(serial.Runs), len(par.Runs))
	}
	for i := range serial.Runs {
		s, p := serial.Runs[i], par.Runs[i]
		if s.Spec.Name != p.Spec.Name {
			t.Fatalf("run %d ordering differs: %s vs %s", i, s.Spec.Name, p.Spec.Name)
		}
		if !s.Makespan.Equal(p.Makespan) || !s.Lower.Equal(p.Lower) {
			t.Errorf("%s: serial (%s, %s) != parallel (%s, %s)",
				s.Spec.Name, s.Makespan, s.Lower, p.Makespan, p.Lower)
		}
	}
}
