package diff

import (
	"context"
	"fmt"

	"setupsched"
	"setupsched/sched"
)

// CheckEngineParallel cross-checks the parallel solve engine against the
// serial path on one instance.  Every paper spec is solved three ways off
// one shared preparation:
//
//   - serially (Solver.Solve, the reference);
//   - through Solver.SolveAll with the given fan-out width;
//   - with speculative probing (Solver.Solve + WithParallelism).
//
// All three must return bit-identical makespans, certified lower bounds
// and accepted guesses — the engine's core contract.  The probe count may
// legitimately differ (speculation evaluates guesses a serial search
// skips), so it is not compared.  Mismatches come back as human-readable
// violations; the error return is reserved for infrastructure failures.
func CheckEngineParallel(ctx context.Context, in *sched.Instance, eps float64, parallelism int) ([]string, error) {
	if parallelism < 2 {
		parallelism = 2
	}
	solver, err := setupsched.NewSolver(in)
	if err != nil {
		return nil, err
	}
	specs := Specs(eps)
	runs, specEps := specRuns(specs)
	fanned, err := solver.SolveAll(ctx,
		setupsched.WithRuns(runs...),
		setupsched.WithEpsilon(specEps),
		setupsched.WithParallelism(parallelism))
	if err != nil {
		return nil, err
	}

	var violations []string
	for i, spec := range specs {
		opts := []setupsched.Option{setupsched.WithAlgorithm(spec.Algorithm)}
		if spec.Algorithm == setupsched.EpsilonSearch {
			opts = append(opts, setupsched.WithEpsilon(spec.Epsilon))
		}
		serial, err := solver.Solve(ctx, spec.Variant, opts...)
		if err != nil {
			return violations, err
		}
		spec32 := append(append([]setupsched.Option(nil), opts...), setupsched.WithParallelism(parallelism))
		speculative, err := solver.Solve(ctx, spec.Variant, spec32...)
		if err != nil {
			return violations, err
		}
		if fanned[i].Err != nil {
			return violations, fanned[i].Err
		}
		for _, cmp := range []struct {
			engine string
			res    *setupsched.Result
		}{
			{"SolveAll fan-out", fanned[i].Result},
			{"speculative search", speculative},
		} {
			if !cmp.res.Makespan.Equal(serial.Makespan) {
				violations = append(violations, fmt.Sprintf(
					"%s: %s makespan %s != serial %s", spec.Name, cmp.engine, cmp.res.Makespan, serial.Makespan))
			}
			if !cmp.res.LowerBound.Equal(serial.LowerBound) {
				violations = append(violations, fmt.Sprintf(
					"%s: %s lower bound %s != serial %s", spec.Name, cmp.engine, cmp.res.LowerBound, serial.LowerBound))
			}
			if !cmp.res.Guess.Equal(serial.Guess) {
				violations = append(violations, fmt.Sprintf(
					"%s: %s accepted guess %s != serial %s", spec.Name, cmp.engine, cmp.res.Guess, serial.Guess))
			}
			if cmp.res.Algorithm != serial.Algorithm {
				violations = append(violations, fmt.Sprintf(
					"%s: %s algorithm %q != serial %q", spec.Name, cmp.engine, cmp.res.Algorithm, serial.Algorithm))
			}
		}
	}
	return violations, nil
}
