package diff

import (
	"testing"

	"setupsched/schedgen"
)

// TestCatalogEvalLayoutIdentity runs the serial-walk-vs-SoA bit-identity
// check over the full adversarial family catalog at several sizes.  The
// drift regimes are covered by TestDriftRegimesSessionIdentity, which
// runs CheckEvalLayout at every solve point of every replayed trace.
func TestCatalogEvalLayoutIdentity(t *testing.T) {
	shapes := []schedgen.Params{
		{M: 1, Classes: 1, JobsPer: 1, MaxSetup: 5, MaxJob: 9},
		{M: 3, Classes: 9, JobsPer: 4, MaxSetup: 30, MaxJob: 50},
		{M: 16, Classes: 40, JobsPer: 7, MaxSetup: 500, MaxJob: 200},
	}
	for _, fam := range schedgen.Families {
		t.Run(fam.Name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				for _, shape := range shapes {
					shape.Seed = seed
					in := fam.Make(shape)
					for _, msg := range CheckEvalLayout(in, seed) {
						t.Errorf("seed %d shape %+v: %s", seed, shape, msg)
					}
				}
			}
		})
	}
}
