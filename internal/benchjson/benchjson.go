// Package benchjson measures the parallel solve engine against the
// serial path through the public Solver API and emits/validates the
// machine-readable BENCH_core.json performance-trajectory report.  It
// lives outside internal/expt so the root package's benchmarks can keep
// importing expt without an import cycle.
package benchjson

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"setupsched"
	"setupsched/schedgen"
)

// BenchCoreSchema versions the BENCH_core.json wire format.
const BenchCoreSchema = "setupsched/bench_core/v1"

// BenchResult is one datapoint of the machine-readable benchmark report:
// one algorithm (or the whole-paper fan-out) at one instance size, in one
// engine mode.
type BenchResult struct {
	// Name is the measured path: "split/exact32", "nonp/eps", ... or
	// "solveall/paper" for the nine-run fan-out.
	Name string `json:"name"`
	// N is the instance's job count.
	N int `json:"n"`
	// Mode is "serial" or "parallel" (speculative probing resp. SolveAll
	// fan-out at Parallelism goroutines).
	Mode string `json:"mode"`
	// Parallelism is the goroutine width of the parallel mode (1 for
	// serial datapoints).
	Parallelism int `json:"parallelism"`
	// NsPerOp is the mean wall-clock time per solve in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// Probes is the dual-test count of one solve (0 where not applicable).
	Probes int `json:"probes"`
}

// BenchReport is the schema of BENCH_core.json, the repo's performance
// trajectory baseline: successive PRs append comparable runs, keyed by
// the environment fields.  Parallel datapoints only demonstrate a
// wall-clock win when GoMaxProcs > 1; the file records the environment so
// a single-core CI run is never misread as a speedup regression.
type BenchReport struct {
	Schema        string        `json:"schema"`
	GoVersion     string        `json:"go_version"`
	GOOS          string        `json:"goos"`
	GOARCH        string        `json:"goarch"`
	GoMaxProcs    int           `json:"gomaxprocs"`
	GeneratedUnix int64         `json:"generated_unix"`
	Sizes         []int         `json:"sizes"`
	Reps          int           `json:"reps"`
	Results       []BenchResult `json:"results"`
}

// benchSpec is one measured solve path.
type benchSpec struct {
	name string
	run  func(s *setupsched.Solver, parallelism int) (probes int, err error)
}

func benchSpecs() []benchSpec {
	var out []benchSpec
	for _, r := range setupsched.PaperRuns() {
		if r.Algorithm == setupsched.TwoApprox {
			continue // no search to speculate on
		}
		r := r
		var name string
		switch r.Variant {
		case setupsched.Splittable:
			name = "split/"
		case setupsched.Preemptive:
			name = "pmtn/"
		default:
			name = "nonp/"
		}
		if r.Algorithm == setupsched.EpsilonSearch {
			name += "eps"
		} else {
			name += "exact32"
		}
		out = append(out, benchSpec{name: name, run: func(s *setupsched.Solver, parallelism int) (int, error) {
			opts := []setupsched.Option{setupsched.WithAlgorithm(r.Algorithm)}
			if parallelism > 1 {
				opts = append(opts, setupsched.WithParallelism(parallelism))
			}
			res, err := s.Solve(context.Background(), r.Variant, opts...)
			if err != nil {
				return 0, err
			}
			return res.Probes, nil
		}})
	}
	out = append(out, benchSpec{name: "solveall/paper", run: func(s *setupsched.Solver, parallelism int) (int, error) {
		var opts []setupsched.Option
		if parallelism > 1 {
			opts = append(opts, setupsched.WithParallelism(parallelism))
		}
		rrs, err := s.SolveAll(context.Background(), opts...)
		if err != nil {
			return 0, err
		}
		var probes int
		for _, rr := range rrs {
			if rr.Err != nil {
				return 0, rr.Err
			}
			probes += rr.Result.Probes
		}
		return probes, nil
	}})
	return out
}

// benchCoreInstance builds the setup-heavy instance shape used for the
// trajectory datapoints.  Unlike the uniform shape, its dual searches
// genuinely probe (~10 dual tests per exact search), so both the
// speculative and the fan-out paths are exercised.
func benchCoreInstance(n int) *setupsched.Instance {
	classes := n / 8
	if classes < 1 {
		classes = 1
	}
	// Machine-rich and setup-dominated (the cfg of the engine tests): the
	// trivial bound is rejected and every exact search runs its full
	// breakpoint/jump narrowing.
	// Slightly fewer machines than classes keeps the expensive classes'
	// machine demand above m at the trivial bound.
	return schedgen.ExpensiveSetups(schedgen.Params{
		M: int64(n/10 + 1), Classes: classes, JobsPer: 8,
		MaxSetup: 500, MaxJob: 60, Seed: int64(n),
	})
}

// BenchCore measures the parallel solve engine against the serial path
// across instance sizes and returns the machine-readable report.
// parallelism <= 1 defaults to runtime.GOMAXPROCS(0).
func BenchCore(sizes []int, reps, parallelism int) (*BenchReport, error) {
	if len(sizes) == 0 {
		return nil, errors.New("benchjson: BenchCore needs at least one size")
	}
	if reps < 1 {
		reps = 1
	}
	if parallelism <= 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism < 2 {
		// Never emit "parallel" rows that secretly ran serial (width 1
		// disables the engine entirely): on a single-CPU box the parallel
		// datapoints then measure goroutine overhead at width 2, which is
		// honest — the recorded gomaxprocs tells the reader why.
		parallelism = 2
	}
	rep := &BenchReport{
		Schema:        BenchCoreSchema,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		GeneratedUnix: time.Now().Unix(),
		Sizes:         sizes,
		Reps:          reps,
	}
	for _, n := range sizes {
		in := benchCoreInstance(n)
		solver, err := setupsched.NewSolver(in)
		if err != nil {
			return nil, err
		}
		nj := in.NumJobs()
		for _, spec := range benchSpecs() {
			for _, mode := range []struct {
				name string
				par  int
			}{{"serial", 1}, {"parallel", parallelism}} {
				var probes int
				// One warm-up solve keeps one-time costs out of the mean.
				if probes, err = spec.run(solver, mode.par); err != nil {
					return nil, fmt.Errorf("%s n=%d %s: %w", spec.name, n, mode.name, err)
				}
				start := time.Now()
				for r := 0; r < reps; r++ {
					if _, err := spec.run(solver, mode.par); err != nil {
						return nil, fmt.Errorf("%s n=%d %s: %w", spec.name, n, mode.name, err)
					}
				}
				el := time.Since(start)
				rep.Results = append(rep.Results, BenchResult{
					Name: spec.name, N: nj, Mode: mode.name, Parallelism: mode.par,
					NsPerOp: float64(el.Nanoseconds()) / float64(reps),
					Probes:  probes,
				})
			}
		}
	}
	return rep, nil
}

// ValidateBenchReport checks the structural invariants of a BENCH_core
// report: schema tag, environment fields, and positive measurements with
// serial/parallel pairs for every (name, n).
func ValidateBenchReport(rep *BenchReport) error {
	if rep == nil {
		return errors.New("benchjson: nil bench report")
	}
	if rep.Schema != BenchCoreSchema {
		return fmt.Errorf("benchjson: schema %q, want %q", rep.Schema, BenchCoreSchema)
	}
	if rep.GoVersion == "" || rep.GOOS == "" || rep.GOARCH == "" || rep.GoMaxProcs < 1 {
		return errors.New("benchjson: bench report missing environment fields")
	}
	if rep.GeneratedUnix <= 0 || rep.Reps < 1 || len(rep.Sizes) == 0 {
		return errors.New("benchjson: bench report missing run parameters")
	}
	if len(rep.Results) == 0 {
		return errors.New("benchjson: bench report has no results")
	}
	type key struct {
		name string
		n    int
		mode string
	}
	seen := map[key]bool{}
	for _, r := range rep.Results {
		if r.Name == "" || r.N < 1 || r.NsPerOp <= 0 || r.Parallelism < 1 {
			return fmt.Errorf("benchjson: malformed result %+v", r)
		}
		if r.Mode != "serial" && r.Mode != "parallel" {
			return fmt.Errorf("benchjson: result %q has unknown mode %q", r.Name, r.Mode)
		}
		seen[key{r.Name, r.N, r.Mode}] = true
	}
	for k := range seen {
		other := "serial"
		if k.mode == "serial" {
			other = "parallel"
		}
		if !seen[key{k.name, k.n, other}] {
			return fmt.Errorf("benchjson: result %s n=%d has no %s counterpart", k.name, k.n, other)
		}
	}
	return nil
}
