// Package benchjson measures the solve engines against their baselines
// through the public APIs and emits/validates the machine-readable
// BENCH_core.json performance-trajectory report: the parallel engine vs
// the serial path, and the incremental session engine (warm re-solve
// after a delta) vs a cold NewSolver+Solve.  It lives outside
// internal/expt so the root package's benchmarks can keep importing expt
// without an import cycle.
package benchjson

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"setupsched"
	"setupsched/obs"
	"setupsched/sched"
	"setupsched/schedgen"
	"setupsched/stream"
)

// BenchCoreSchema versions the BENCH_core.json wire format.  v2 holds a
// list of runs keyed by environment, so single-core and multi-core
// measurements coexist in one file and comparisons are only ever made
// within one environment (a gomaxprocs=1 run must never be read as a
// parallel-speedup regression).
const BenchCoreSchema = "setupsched/bench_core/v2"

// BenchResult is one datapoint: one measured path at one instance size in
// one engine mode.
type BenchResult struct {
	// Name is the measured path: "split/exact32", "nonp/eps", ...,
	// "solveall/paper" for the nine-run fan-out, or "session/<variant>"
	// for the incremental session engine.
	Name string `json:"name"`
	// N is the instance's job count.
	N int `json:"n"`
	// Mode pairs up baselines and contenders: "serial" vs "parallel"
	// (speculative probing resp. SolveAll fan-out), and "cold" vs "warm"
	// (fresh NewSolver+Solve per change vs session delta + warm re-solve).
	Mode string `json:"mode"`
	// Parallelism is the goroutine width of the parallel mode (1
	// otherwise).
	Parallelism int `json:"parallelism"`
	// NsPerOp is the mean wall-clock time per operation in nanoseconds.
	// For the session pairs one operation is one delta plus one re-solve.
	NsPerOp float64 `json:"ns_per_op"`
	// Probes is the dual-test count of one solve (0 where not applicable).
	Probes int `json:"probes"`
	// PrepareNs/SearchNs/BuildNs attribute the row to the paper's
	// algorithm phases — the O(n) preprocessing, the dual-approximation
	// threshold search, and the schedule build — measured by one
	// span-instrumented solve of the same path (serial single-solve rows
	// only; omitted on fan-out, parallel and session rows).  PrepareNs is
	// the instance's one-time NewSolver cost, shared by the size's rows.
	PrepareNs float64 `json:"prepare_ns,omitempty"`
	SearchNs  float64 `json:"search_ns,omitempty"`
	BuildNs   float64 `json:"build_ns,omitempty"`
}

// modePeer maps each mode to the counterpart it is compared against.
var modePeer = map[string]string{
	"serial": "parallel", "parallel": "serial",
	"cold": "warm", "warm": "cold",
}

// BenchRun is one environment's worth of datapoints.
type BenchRun struct {
	GoVersion     string        `json:"go_version"`
	GOOS          string        `json:"goos"`
	GOARCH        string        `json:"goarch"`
	GoMaxProcs    int           `json:"gomaxprocs"`
	NumCPU        int           `json:"num_cpu"`
	GeneratedUnix int64         `json:"generated_unix"`
	Sizes         []int         `json:"sizes"`
	Reps          int           `json:"reps"`
	Results       []BenchResult `json:"results"`
}

// EnvKey identifies the environment a run was measured in; successive
// regenerations replace the run with the matching key instead of mixing
// measurements across environments.
func (r *BenchRun) EnvKey() string {
	return fmt.Sprintf("%s/%s/%s/gomaxprocs=%d", r.GoVersion, r.GOOS, r.GOARCH, r.GoMaxProcs)
}

// BenchReport is the schema of BENCH_core.json: environment-keyed runs.
type BenchReport struct {
	Schema string     `json:"schema"`
	Runs   []BenchRun `json:"runs"`
}

// MergeRun inserts the run into the report, replacing an existing run
// with the same environment key.
func MergeRun(rep *BenchReport, run BenchRun) {
	rep.Schema = BenchCoreSchema
	for i := range rep.Runs {
		if rep.Runs[i].EnvKey() == run.EnvKey() {
			rep.Runs[i] = run
			return
		}
	}
	rep.Runs = append(rep.Runs, run)
}

// benchSpec is one measured solve path.
type benchSpec struct {
	name string
	// single marks paths that are one Solver.Solve call, which a span
	// recorder can attribute to phases (the fan-out interleaves nine
	// searches' probe events, so its spans would misattribute).
	single bool
	run    func(s *setupsched.Solver, parallelism int, extra ...setupsched.Option) (probes int, err error)
}

func benchSpecs() []benchSpec {
	var out []benchSpec
	for _, r := range setupsched.PaperRuns() {
		if r.Algorithm == setupsched.TwoApprox {
			continue // no search to speculate on
		}
		r := r
		var name string
		switch r.Variant {
		case setupsched.Splittable:
			name = "split/"
		case setupsched.Preemptive:
			name = "pmtn/"
		default:
			name = "nonp/"
		}
		if r.Algorithm == setupsched.EpsilonSearch {
			name += "eps"
		} else {
			name += "exact32"
		}
		out = append(out, benchSpec{name: name, single: true, run: func(s *setupsched.Solver, parallelism int, extra ...setupsched.Option) (int, error) {
			opts := []setupsched.Option{setupsched.WithAlgorithm(r.Algorithm)}
			if parallelism > 1 {
				opts = append(opts, setupsched.WithParallelism(parallelism))
			}
			opts = append(opts, extra...)
			res, err := s.Solve(context.Background(), r.Variant, opts...)
			if err != nil {
				return 0, err
			}
			return res.Probes, nil
		}})
	}
	out = append(out, benchSpec{name: "solveall/paper", run: func(s *setupsched.Solver, parallelism int, _ ...setupsched.Option) (int, error) {
		var opts []setupsched.Option
		if parallelism > 1 {
			opts = append(opts, setupsched.WithParallelism(parallelism))
		}
		rrs, err := s.SolveAll(context.Background(), opts...)
		if err != nil {
			return 0, err
		}
		var probes int
		for _, rr := range rrs {
			if rr.Err != nil {
				return 0, rr.Err
			}
			probes += rr.Result.Probes
		}
		return probes, nil
	}})
	return out
}

// BenchCoreInstance builds the setup-heavy instance shape used for the
// trajectory datapoints.  Unlike the uniform shape, its dual searches
// genuinely probe, so the speculative, fan-out and warm-start paths are
// all exercised.  Setup and job magnitudes are large (~2e9 resp. ~2e8):
// the searches' probe counts scale with log T — the paper's
// O(n log(n + Delta)) — so value-heavy instances are where search cost,
// and therefore speculation and warm starts, genuinely matter; tiny
// magnitudes would hide the search behind the O(n) schedule emission.
// (v1 reports used MaxSetup 500; v2 datapoints are not comparable.)
func BenchCoreInstance(n int) *sched.Instance {
	classes := n / 8
	if classes < 1 {
		classes = 1
	}
	// Magnitudes are capped so m*N stays safely inside the instance
	// limits at every size: N <= ~0.225*n*maxSetup for this shape and
	// m ~ n/10, so maxSetup <= ~1.6e18/n^2 keeps m*N below half of
	// sched.MaxMachineLoadProduct.
	maxSetup := int64(2_000_000_000)
	if cap := int64(1.6e18) / int64(n) / int64(n); cap < maxSetup {
		maxSetup = cap
	}
	if maxSetup < 500 {
		maxSetup = 500
	}
	maxJob := maxSetup / 10
	if maxJob < 60 {
		maxJob = 60
	}
	// Machine-rich and setup-dominated (the cfg of the engine tests): the
	// trivial bound is rejected and every exact search runs its full
	// breakpoint/jump narrowing.
	// Slightly fewer machines than classes keeps the expensive classes'
	// machine demand above m at the trivial bound.
	return schedgen.ExpensiveSetups(schedgen.Params{
		M: int64(n/10 + 1), Classes: classes, JobsPer: 8,
		MaxSetup: maxSetup, MaxJob: maxJob, Seed: int64(n),
	})
}

// sessionDelta returns the alternating small edit the session pairs
// replay: one job arrives, then departs, so the instance stays bounded
// over any number of reps while every re-solve sees a real change.
func sessionDelta(i int, jobs0 int) sched.Delta {
	if i%2 == 0 {
		return sched.Delta{Op: sched.DeltaAddJobs, Class: 0, Jobs: []int64{17}}
	}
	return sched.Delta{Op: sched.DeltaRemoveJob, Class: 0, Job: jobs0}
}

// benchSession measures the session engine on one instance: "warm" is
// one delta applied to a live Session followed by a warm re-solve;
// "cold" is the same delta applied to a plain instance followed by a
// fresh NewSolver+Solve — the stateless cost the session amortizes.
func benchSession(in *sched.Instance, v sched.Variant, reps int) (cold, warm BenchResult, err error) {
	name := "session/" + v.Short()
	nj := in.NumJobs()
	jobs0 := len(in.Classes[0].Jobs)

	// Cold: rebuild everything per change.
	coldIn := in.Clone()
	ctx := context.Background()
	var coldProbes int
	coldOnce := func(i int) error {
		if _, err := sessionDelta(i, jobs0).Apply(coldIn); err != nil {
			return err
		}
		solver, err := setupsched.NewSolver(coldIn)
		if err != nil {
			return err
		}
		res, err := solver.Solve(ctx, v)
		if err != nil {
			return err
		}
		coldProbes = res.Probes
		return nil
	}
	if err := coldOnce(0); err != nil { // warm-up (also de-aligns the alternation)
		return cold, warm, fmt.Errorf("%s cold: %w", name, err)
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := coldOnce(i + 1); err != nil {
			return cold, warm, fmt.Errorf("%s cold: %w", name, err)
		}
	}
	coldNs := float64(time.Since(start).Nanoseconds()) / float64(reps)

	// Warm: the session absorbs the same stream of changes.
	sess, err := stream.NewSession(in)
	if err != nil {
		return cold, warm, err
	}
	var warmProbes int
	warmOnce := func(i int) error {
		if err := sess.Apply(ctx, sessionDelta(i, jobs0)); err != nil {
			return err
		}
		res, err := sess.Solve(ctx, v)
		if err != nil {
			return err
		}
		warmProbes = res.Probes
		return nil
	}
	if err := warmOnce(0); err != nil {
		return cold, warm, fmt.Errorf("%s warm: %w", name, err)
	}
	start = time.Now()
	for i := 0; i < reps; i++ {
		if err := warmOnce(i + 1); err != nil {
			return cold, warm, fmt.Errorf("%s warm: %w", name, err)
		}
	}
	warmNs := float64(time.Since(start).Nanoseconds()) / float64(reps)

	cold = BenchResult{Name: name, N: nj, Mode: "cold", Parallelism: 1, NsPerOp: coldNs, Probes: coldProbes}
	warm = BenchResult{Name: name, N: nj, Mode: "warm", Parallelism: 1, NsPerOp: warmNs, Probes: warmProbes}
	return cold, warm, nil
}

// BenchCore measures the parallel solve engine against the serial path
// and the session engine against stateless re-solving, across instance
// sizes, returning one environment-keyed run.  parallelism <= 1 defaults
// to runtime.GOMAXPROCS(0).
func BenchCore(sizes []int, reps, parallelism int) (*BenchRun, error) {
	if len(sizes) == 0 {
		return nil, errors.New("benchjson: BenchCore needs at least one size")
	}
	if reps < 1 {
		reps = 1
	}
	if parallelism <= 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism < 2 {
		// Never emit "parallel" rows that secretly ran serial (width 1
		// disables the engine entirely): on a single-CPU box the parallel
		// datapoints then measure goroutine overhead at width 2, which is
		// honest — the recorded gomaxprocs/num_cpu tell the reader why.
		parallelism = 2
	}
	run := &BenchRun{
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		GeneratedUnix: time.Now().Unix(),
		Sizes:         sizes,
		Reps:          reps,
	}
	for _, n := range sizes {
		in := BenchCoreInstance(n)
		prepStart := time.Now()
		solver, err := setupsched.NewSolver(in)
		prepareNs := float64(time.Since(prepStart).Nanoseconds())
		if err != nil {
			return nil, err
		}
		nj := in.NumJobs()
		for _, spec := range benchSpecs() {
			for _, mode := range []struct {
				name string
				par  int
			}{{"serial", 1}, {"parallel", parallelism}} {
				var probes int
				// One warm-up solve keeps one-time costs out of the mean.
				if probes, err = spec.run(solver, mode.par); err != nil {
					return nil, fmt.Errorf("%s n=%d %s: %w", spec.name, n, mode.name, err)
				}
				start := time.Now()
				for r := 0; r < reps; r++ {
					if _, err := spec.run(solver, mode.par); err != nil {
						return nil, fmt.Errorf("%s n=%d %s: %w", spec.name, n, mode.name, err)
					}
				}
				el := time.Since(start)
				result := BenchResult{
					Name: spec.name, N: nj, Mode: mode.name, Parallelism: mode.par,
					NsPerOp: float64(el.Nanoseconds()) / float64(reps),
					Probes:  probes,
				}
				// One extra instrumented solve attributes the serial row
				// to the paper's phases (search vs. build; prepare is the
				// instance's one-time NewSolver cost).
				if mode.name == "serial" && spec.single {
					rec := obs.NewSpanRecorder()
					if _, err := spec.run(solver, 1, setupsched.WithObserver(rec)); err != nil {
						return nil, fmt.Errorf("%s n=%d spans: %w", spec.name, n, err)
					}
					phases := obs.PhaseDurations(rec.Root())
					result.PrepareNs = prepareNs
					result.SearchNs = float64(phases["search"].Nanoseconds())
					result.BuildNs = float64(phases["build"].Nanoseconds())
				}
				run.Results = append(run.Results, result)
			}
		}
		for _, v := range sched.Variants {
			cold, warm, err := benchSession(in, v, reps)
			if err != nil {
				return nil, err
			}
			run.Results = append(run.Results, cold, warm)
		}
	}
	return run, nil
}

// ValidateBenchReport checks the structural invariants of a BENCH_core
// report: schema tag, at least one run, environment fields, unique
// environment keys, and positive measurements with a mode counterpart
// (serial/parallel resp. cold/warm) for every (name, n) within each run.
func ValidateBenchReport(rep *BenchReport) error {
	if rep == nil {
		return errors.New("benchjson: nil bench report")
	}
	if rep.Schema != BenchCoreSchema {
		return fmt.Errorf("benchjson: schema %q, want %q (regenerate with schedbench -json)", rep.Schema, BenchCoreSchema)
	}
	if len(rep.Runs) == 0 {
		return errors.New("benchjson: bench report has no runs")
	}
	envs := map[string]bool{}
	for i := range rep.Runs {
		run := &rep.Runs[i]
		if err := validateRun(run); err != nil {
			return fmt.Errorf("benchjson: run %s: %w", run.EnvKey(), err)
		}
		if envs[run.EnvKey()] {
			return fmt.Errorf("benchjson: duplicate environment %s (runs must be merged per environment)", run.EnvKey())
		}
		envs[run.EnvKey()] = true
	}
	return nil
}

func validateRun(run *BenchRun) error {
	if run.GoVersion == "" || run.GOOS == "" || run.GOARCH == "" || run.GoMaxProcs < 1 || run.NumCPU < 1 {
		return errors.New("missing environment fields")
	}
	if run.GeneratedUnix <= 0 || run.Reps < 1 || len(run.Sizes) == 0 {
		return errors.New("missing run parameters")
	}
	if len(run.Results) == 0 {
		return errors.New("no results")
	}
	type key struct {
		name string
		n    int
		mode string
	}
	seen := map[key]bool{}
	for _, r := range run.Results {
		if r.Name == "" || r.N < 1 || r.NsPerOp <= 0 || r.Parallelism < 1 {
			return fmt.Errorf("malformed result %+v", r)
		}
		if modePeer[r.Mode] == "" {
			return fmt.Errorf("result %q has unknown mode %q", r.Name, r.Mode)
		}
		seen[key{r.Name, r.N, r.Mode}] = true
	}
	for k := range seen {
		if !seen[key{k.name, k.n, modePeer[k.mode]}] {
			return fmt.Errorf("result %s n=%d has no %s counterpart", k.name, k.n, modePeer[k.mode])
		}
	}
	return nil
}
