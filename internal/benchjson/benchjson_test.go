package benchjson

import (
	"encoding/json"
	"testing"
)

// TestBenchCoreShape runs a tiny measurement and checks the run carries
// every expected datapoint pair, validates, and survives a JSON
// round trip — the same path CI's bench-json smoke exercises.
func TestBenchCoreShape(t *testing.T) {
	run, err := BenchCore([]int{400}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep := &BenchReport{}
	MergeRun(rep, *run)
	if err := ValidateBenchReport(rep); err != nil {
		t.Fatal(err)
	}

	names := map[string]bool{}
	for _, r := range run.Results {
		names[r.Name+"/"+r.Mode] = true
		// Every measured path must genuinely probe on the bench instance
		// shape, otherwise the datapoints measure nothing.
		if r.Probes < 2 {
			t.Errorf("%s n=%d %s: only %d probes; bench instance no longer exercises the search", r.Name, r.N, r.Mode, r.Probes)
		}
	}
	for _, want := range []string{
		"split/exact32/serial", "split/exact32/parallel",
		"solveall/paper/serial", "solveall/paper/parallel",
		"session/splittable/cold", "session/splittable/warm",
		"session/preemptive/cold", "session/preemptive/warm",
		"session/nonpreemptive/cold", "session/nonpreemptive/warm",
	} {
		if !names[want] {
			t.Errorf("missing datapoint %s", want)
		}
	}

	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchReport(&back); err != nil {
		t.Fatalf("round-tripped report invalid: %v", err)
	}
}

// TestMergeRunKeysByEnvironment pins the env-keyed comparison contract: a
// run regenerated in the same environment replaces its predecessor, a run
// from a different environment is appended.
func TestMergeRunKeysByEnvironment(t *testing.T) {
	run, err := BenchCore([]int{200}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep := &BenchReport{}
	MergeRun(rep, *run)
	MergeRun(rep, *run)
	if len(rep.Runs) != 1 {
		t.Fatalf("same-environment merge kept %d runs, want 1", len(rep.Runs))
	}
	other := *run
	other.GoMaxProcs = run.GoMaxProcs + 3
	MergeRun(rep, other)
	if len(rep.Runs) != 2 {
		t.Fatalf("different-environment merge kept %d runs, want 2", len(rep.Runs))
	}
	if err := ValidateBenchReport(rep); err != nil {
		t.Fatal(err)
	}
}

// TestValidateBenchReportRejects covers the validator's failure modes.
func TestValidateBenchReportRejects(t *testing.T) {
	good, err := BenchCore([]int{200}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*BenchReport)
	}{
		{"nil", nil},
		{"schema", func(r *BenchReport) { r.Schema = "bogus" }},
		{"no runs", func(r *BenchReport) { r.Runs = nil }},
		{"environment", func(r *BenchReport) { r.Runs[0].GoMaxProcs = 0 }},
		{"no results", func(r *BenchReport) { r.Runs[0].Results = nil }},
		{"bad mode", func(r *BenchReport) { r.Runs[0].Results[0].Mode = "warp" }},
		{"unpaired", func(r *BenchReport) { r.Runs[0].Results = r.Runs[0].Results[:1] }},
		{"duplicate env", func(r *BenchReport) { r.Runs = append(r.Runs, r.Runs[0]) }},
	}
	for _, tc := range cases {
		var rep *BenchReport
		if tc.mutate != nil {
			rep = &BenchReport{}
			MergeRun(rep, *good)
			rep.Runs[0].Results = append([]BenchResult(nil), good.Results...)
			tc.mutate(rep)
		}
		if err := ValidateBenchReport(rep); err == nil {
			t.Errorf("%s: validator accepted a broken report", tc.name)
		}
	}
}
