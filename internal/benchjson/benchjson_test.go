package benchjson

import (
	"encoding/json"
	"testing"
)

// TestBenchCoreRoundTrip runs a tiny measurement, validates it, and
// checks the JSON encoding survives a decode/validate round trip — the
// same path CI's bench-json smoke exercises.
func TestBenchCoreRoundTrip(t *testing.T) {
	rep, err := BenchCore([]int{400}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchReport(rep); err != nil {
		t.Fatal(err)
	}
	// Every search path must genuinely probe on the bench instance shape,
	// otherwise the datapoints measure nothing.
	for _, r := range rep.Results {
		if r.Probes < 2 {
			t.Errorf("%s n=%d %s: only %d probes; bench instance no longer exercises the search", r.Name, r.N, r.Mode, r.Probes)
		}
	}
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchReport(&back); err != nil {
		t.Fatalf("round-tripped report invalid: %v", err)
	}
}

// TestValidateBenchReportRejects covers the validator's failure modes.
func TestValidateBenchReportRejects(t *testing.T) {
	good, err := BenchCore([]int{200}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*BenchReport)
	}{
		{"nil", nil},
		{"schema", func(r *BenchReport) { r.Schema = "bogus" }},
		{"environment", func(r *BenchReport) { r.GoMaxProcs = 0 }},
		{"no results", func(r *BenchReport) { r.Results = nil }},
		{"bad mode", func(r *BenchReport) { r.Results[0].Mode = "warp" }},
		{"unpaired", func(r *BenchReport) { r.Results = r.Results[:1] }},
	}
	for _, tc := range cases {
		var rep *BenchReport
		if tc.mutate != nil {
			cp := *good
			cp.Results = append([]BenchResult(nil), good.Results...)
			tc.mutate(&cp)
			rep = &cp
		}
		if err := ValidateBenchReport(rep); err == nil {
			t.Errorf("%s: validator accepted a malformed report", tc.name)
		}
	}
}
