package exact_test

import (
	"context"
	"testing"

	"setupsched"
	"setupsched/internal/exact"
	"setupsched/sched"
)

// fuzzTinyInstance decodes any byte stream into a valid instance small
// enough for every exhaustive reference (n <= 12, m <= 4, c <= 4), so
// the fuzzer explores structure rather than gate rejections.
func fuzzTinyInstance(m int64, data []byte) *sched.Instance {
	next := func() int64 {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return int64(b)
	}
	abs := m
	if abs < 0 {
		abs = -abs
	}
	if abs < 0 { // math.MinInt64
		abs = 0
	}
	in := &sched.Instance{M: 1 + abs%4}
	classes := 1 + int(next())%4
	for c := 0; c < classes; c++ {
		cl := sched.Class{Setup: next() % 24}
		jobs := 1 + int(next())%3
		for j := 0; j < jobs; j++ {
			cl.Jobs = append(cl.Jobs, 1+next()%32)
		}
		in.Classes = append(in.Classes, cl)
	}
	return in
}

// FuzzExactSandwich asserts the relaxation sandwich
// OPT_split <= OPT_pmtn <= OPT_nonp and the solver bracket
// lower-bound <= exact optimum <= heuristic makespan on arbitrary tiny
// instances.  The preemptive optimum has no exhaustive reference, so it
// enters through its certified bracket: the pmtn solve's lower bound and
// makespan sandwich OPT_pmtn, which chains both inequalities through it.
func FuzzExactSandwich(f *testing.F) {
	f.Add(int64(2), []byte{2, 3, 2, 7, 9})
	f.Add(int64(3), []byte{1, 0, 1, 16})
	f.Add(int64(1), []byte{4, 4, 2, 2, 2, 8, 1, 1})
	f.Add(int64(4), []byte{3, 23, 1, 31, 0, 2, 30, 30, 12, 1, 5})
	f.Fuzz(func(t *testing.T, m int64, data []byte) {
		in := fuzzTinyInstance(m, data)
		if err := in.Validate(); err != nil {
			t.Fatalf("decoder produced invalid instance: %v", err)
		}
		ctx := context.Background()

		optSplit, err := exact.Splittable(in)
		if err != nil {
			t.Fatalf("exhaustive splittable: %v", err)
		}
		optNonp, err := exact.NonPreemptive(in)
		if err != nil {
			t.Fatalf("exhaustive non-preemptive: %v", err)
		}
		bb, err := exact.BranchBound(ctx, in, 0)
		if err != nil {
			t.Fatalf("branch-and-bound: %v", err)
		}
		if bb.Opt != optNonp {
			t.Fatalf("branch-and-bound optimum %d != exhaustive %d", bb.Opt, optNonp)
		}

		// OPT_split <= OPT_nonp, the outer sandwich directly.
		if sched.R(optNonp).Less(optSplit) {
			t.Fatalf("sandwich inverted: OPT_split %s > OPT_nonp %d", optSplit, optNonp)
		}

		solver, err := setupsched.NewSolver(in)
		if err != nil {
			t.Fatal(err)
		}
		// OPT_pmtn enters via its certified bracket lbPmtn <= OPT_pmtn <= mkPmtn.
		pmtn, err := solver.Solve(ctx, setupsched.Preemptive)
		if err != nil {
			t.Fatalf("pmtn solve: %v", err)
		}
		if pmtn.Makespan.Less(optSplit) {
			t.Fatalf("OPT_split %s > pmtn makespan %s (so OPT_split > OPT_pmtn)", optSplit, pmtn.Makespan)
		}
		if sched.R(optNonp).Less(pmtn.LowerBound) {
			t.Fatalf("pmtn certified bound %s > OPT_nonp %d (so OPT_pmtn > OPT_nonp)", pmtn.LowerBound, optNonp)
		}

		// lower-bound <= exact <= heuristic, for both the trivial bound and
		// the 3/2-search's certified bracket.
		if in.LowerBound(sched.NonPreemptive).CmpInt(optNonp) > 0 {
			t.Fatalf("trivial bound %s exceeds exact optimum %d", in.LowerBound(sched.NonPreemptive), optNonp)
		}
		heur, err := solver.Solve(ctx, setupsched.NonPreemptive)
		if err != nil {
			t.Fatalf("nonp solve: %v", err)
		}
		if sched.R(optNonp).Less(heur.LowerBound) {
			t.Fatalf("heuristic certified bound %s exceeds exact optimum %d", heur.LowerBound, optNonp)
		}
		if heur.Makespan.CmpInt(optNonp) < 0 {
			t.Fatalf("heuristic makespan %s beats exact optimum %d", heur.Makespan, optNonp)
		}

		// The splittable exhaustive optimum must dominate its own solver's
		// certified bound too.
		split, err := solver.Solve(ctx, setupsched.Splittable)
		if err != nil {
			t.Fatalf("split solve: %v", err)
		}
		if optSplit.Less(split.LowerBound) {
			t.Fatalf("split certified bound %s exceeds exact OPT_split %s", split.LowerBound, optSplit)
		}
		if split.Makespan.Less(optSplit) {
			t.Fatalf("split makespan %s beats exact OPT_split %s", split.Makespan, optSplit)
		}
	})
}
