package exact

import (
	"context"
	"errors"
	"testing"

	"setupsched/sched"
	"setupsched/schedgen"
)

// TestBranchBoundMatchesExhaustive pins the branch-and-bound backend
// bit-identical (same optimum value) to the exhaustive NonPreemptive
// search on every catalog instance small enough for both.
func TestBranchBoundMatchesExhaustive(t *testing.T) {
	t.Parallel()
	checked := 0
	for _, fam := range schedgen.Families {
		for seed := int64(0); seed < 6; seed++ {
			in := fam.Make(schedgen.Params{
				M: 3, Classes: 3, JobsPer: 2, MaxSetup: 12, MaxJob: 16, Seed: seed,
			})
			want, err := NonPreemptive(in)
			if errors.Is(err, ErrTooLarge) {
				continue
			}
			if err != nil {
				t.Fatalf("%s seed %d: exhaustive: %v", fam.Name, seed, err)
			}
			got, err := BranchBound(context.Background(), in, 0)
			if err != nil {
				t.Fatalf("%s seed %d: branch-and-bound: %v", fam.Name, seed, err)
			}
			if got.Opt != want {
				t.Errorf("%s seed %d: branch-and-bound optimum %d != exhaustive %d",
					fam.Name, seed, got.Opt, want)
			}
			if err := got.Schedule.Validate(in); err != nil {
				t.Errorf("%s seed %d: witness schedule invalid: %v", fam.Name, seed, err)
			}
			if mk := got.Schedule.Makespan(); mk.CmpInt(got.Opt) != 0 {
				t.Errorf("%s seed %d: witness makespan %s != optimum %d", fam.Name, seed, mk, got.Opt)
			}
			checked++
		}
	}
	if checked < 50 {
		t.Fatalf("only %d instances were small enough for both backends; the pin lost its teeth", checked)
	}
}

// TestBranchBoundHundredsOfJobs is the acceptance gate for the reference
// backend on catalog instances with n in the hundreds: a meaningful
// subset must converge to the exact optimum within the default node
// budget (including instances with n >= 300), and every instance that
// exhausts the budget must still certify a tight OPT bracket — that
// bracket is what the quality harness uses for ratio bounds when the
// backend does not converge.
func TestBranchBoundHundredsOfJobs(t *testing.T) {
	t.Parallel()
	solved, jobsMax := 0, 0
	for _, fam := range schedgen.Families {
		for seed := int64(0); seed < 2; seed++ {
			in := fam.Make(schedgen.Params{
				M: 16, Classes: 80, JobsPer: 5, MaxSetup: 200, MaxJob: 300, Seed: seed,
			})
			n := in.NumJobs()
			res, err := BranchBound(context.Background(), in, 0)
			if errors.Is(err, ErrBudget) {
				var be *BudgetError
				if !errors.As(err, &be) {
					t.Fatalf("%s seed %d: budget error lacks the typed bracket: %v", fam.Name, seed, err)
				}
				// Certified bracket must be sane and tight: within 5% even
				// on the families whose relaxations are weakest.
				if be.Lo < 1 || be.Lo > be.Hi {
					t.Errorf("%s seed %d: insane bracket [%d, %d]", fam.Name, seed, be.Lo, be.Hi)
				}
				if be.Hi*100 > be.Lo*105 {
					t.Errorf("%s seed %d: bracket [%d, %d] wider than 5%%", fam.Name, seed, be.Lo, be.Hi)
				}
				t.Logf("%s seed %d (n=%d): budget exhausted: %v", fam.Name, seed, n, err)
				continue
			}
			if err != nil {
				t.Fatalf("%s seed %d (n=%d): %v", fam.Name, seed, n, err)
			}
			lb := in.LowerBound(sched.NonPreemptive)
			if lb.CmpInt(res.Opt) > 0 {
				t.Errorf("%s seed %d: optimum %d below trivial bound %s", fam.Name, seed, res.Opt, lb)
			}
			if err := res.Schedule.Validate(in); err != nil {
				t.Errorf("%s seed %d: witness invalid: %v", fam.Name, seed, err)
			}
			solved++
			if n > jobsMax {
				jobsMax = n
			}
		}
	}
	if solved < 8 {
		t.Fatalf("only %d medium catalog instances solved within the default budget", solved)
	}
	if jobsMax < 300 {
		t.Fatalf("largest solved instance has only %d jobs; want hundreds", jobsMax)
	}
	t.Logf("solved %d medium instances, largest n=%d", solved, jobsMax)
}

// TestBranchBoundBudget pins the typed budget error: a one-node budget
// must fail with a *BudgetError matching ErrBudget and a sane bracket.
func TestBranchBoundBudget(t *testing.T) {
	t.Parallel()
	// An instance whose optimum sits strictly above the trivial bound, so
	// at least one infeasible probe needs real search.
	in := schedgen.BigJobs(schedgen.Params{M: 4, Classes: 8, JobsPer: 4, MaxSetup: 50, MaxJob: 80, Seed: 3})
	_, err := BranchBound(context.Background(), in, 1)
	if err == nil {
		t.Skip("instance solved greedily at every probe; budget never consulted")
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("error %v does not match ErrBudget", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not a *BudgetError", err)
	}
	if be.Budget != 1 || be.Nodes < be.Budget {
		t.Errorf("budget error %+v: want Budget=1 and Nodes >= Budget", be)
	}
	if be.Lo > be.Hi || be.Lo < 1 {
		t.Errorf("budget error bracket [%d, %d] is not a sane OPT bracket", be.Lo, be.Hi)
	}
}

// TestBranchBoundCancel pins prompt context cancellation.
func TestBranchBoundCancel(t *testing.T) {
	t.Parallel()
	in := schedgen.Uniform(schedgen.Params{M: 8, Classes: 40, JobsPer: 5, MaxSetup: 100, MaxJob: 200, Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BranchBound(ctx, in, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled solve returned %v, want context.Canceled", err)
	}
}

// TestBranchBoundDeterministic pins that repeated solves expand identical
// trees: same optimum, same node and probe counts.
func TestBranchBoundDeterministic(t *testing.T) {
	t.Parallel()
	in := schedgen.Zipf(schedgen.Params{M: 6, Classes: 20, JobsPer: 4, MaxSetup: 60, MaxJob: 90, Seed: 7})
	a, err := BranchBound(context.Background(), in, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BranchBound(context.Background(), in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Opt != b.Opt || a.Nodes != b.Nodes || a.Probes != b.Probes {
		t.Fatalf("non-deterministic search: %+v vs %+v", a, b)
	}
}

// TestBranchBoundTooLarge pins the memory gate.
func TestBranchBoundTooLarge(t *testing.T) {
	t.Parallel()
	in := &sched.Instance{M: 2, Classes: []sched.Class{{Setup: 1}}}
	for j := 0; j <= MaxBranchBoundJobs; j++ {
		in.Classes[0].Jobs = append(in.Classes[0].Jobs, 1)
	}
	if _, err := BranchBound(context.Background(), in, 0); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized instance returned %v, want ErrTooLarge", err)
	}
}
