package exact

import (
	"errors"
	"math/rand"
	"testing"

	"setupsched/sched"
)

func TestNonPreemptiveKnownOptima(t *testing.T) {
	cases := []struct {
		in   sched.Instance
		want int64
	}{
		// One machine: N.
		{sched.Instance{M: 1, Classes: []sched.Class{
			{Setup: 3, Jobs: []int64{4, 5}}, {Setup: 2, Jobs: []int64{1}},
		}}, 15},
		// Two machines, one class each.
		{sched.Instance{M: 2, Classes: []sched.Class{
			{Setup: 1, Jobs: []int64{10}}, {Setup: 1, Jobs: []int64{10}},
		}}, 11},
		// Splitting a class across machines pays a second setup.
		{sched.Instance{M: 2, Classes: []sched.Class{
			{Setup: 5, Jobs: []int64{6, 6}},
		}}, 11},
		// Cheap setup: splitting wins.
		{sched.Instance{M: 2, Classes: []sched.Class{
			{Setup: 1, Jobs: []int64{6, 6}},
		}}, 7},
		// m >= n: one job per machine.
		{sched.Instance{M: 5, Classes: []sched.Class{
			{Setup: 2, Jobs: []int64{3, 4}},
		}}, 6},
	}
	for ci, c := range cases {
		got, err := NonPreemptive(&c.in)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if got != c.want {
			t.Errorf("case %d: OPT = %d, want %d", ci, got, c.want)
		}
	}
}

func TestSplittableKnownOptima(t *testing.T) {
	cases := []struct {
		in   sched.Instance
		want sched.Rat
	}{
		// Single class, two machines, cheap setup: split evenly.
		// Each machine: 1 + 6 = 7.
		{sched.Instance{M: 2, Classes: []sched.Class{
			{Setup: 1, Jobs: []int64{12}},
		}}, sched.R(7)},
		// Setup too expensive to duplicate: 5 + 12 = 17 on one machine
		// versus (2*5+12)/2 = 11 split; splitting still wins.
		{sched.Instance{M: 2, Classes: []sched.Class{
			{Setup: 5, Jobs: []int64{12}},
		}}, sched.R(11)},
		// Here duplicating the setup loses: (2*9+4)/2 = 11 vs 9+4 = 13;
		// split gives 11, single machine 13.
		{sched.Instance{M: 2, Classes: []sched.Class{
			{Setup: 9, Jobs: []int64{4}},
		}}, sched.R(11)},
		// Setup so dominant that one machine is best: 20+2 = 22 vs
		// (40+2)/2 = 21: split still (barely) wins.
		{sched.Instance{M: 2, Classes: []sched.Class{
			{Setup: 20, Jobs: []int64{2}},
		}}, sched.R(21)},
		// Rational optimum: m = 2, two classes.
		// All on separate machines: max(1+5, 2+7) = 9.
		{sched.Instance{M: 2, Classes: []sched.Class{
			{Setup: 1, Jobs: []int64{5}}, {Setup: 2, Jobs: []int64{7}},
		}}, sched.RatOf(17, 2)},
	}
	for ci, c := range cases {
		got, err := Splittable(&c.in)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if !got.Equal(c.want) {
			t.Errorf("case %d: OPT = %s, want %s", ci, got, c.want)
		}
	}
}

func TestOrderingSplitVsNonp(t *testing.T) {
	// OPT_split <= OPT_nonp always.
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 300; iter++ {
		in := &sched.Instance{M: int64(1 + rng.Intn(3))}
		c := 1 + rng.Intn(3)
		for i := 0; i < c; i++ {
			cl := sched.Class{Setup: rng.Int63n(10)}
			for j := 0; j <= rng.Intn(3); j++ {
				cl.Jobs = append(cl.Jobs, 1+rng.Int63n(12))
			}
			in.Classes = append(in.Classes, cl)
		}
		optN, errN := NonPreemptive(in)
		optS, errS := Splittable(in)
		if errN != nil || errS != nil {
			continue
		}
		if optS.CmpInt(optN) > 0 {
			t.Fatalf("iter %d: OPT_split %s > OPT_nonp %d\n%+v", iter, optS, optN, in)
		}
		// Both respect the trivial lower bounds.
		if optS.Less(in.LowerBound(sched.Splittable)) {
			t.Fatalf("iter %d: OPT_split below trivial bound", iter)
		}
		if sched.R(optN).Less(in.LowerBound(sched.NonPreemptive)) {
			t.Fatalf("iter %d: OPT_nonp below trivial bound", iter)
		}
	}
}

func TestBudgetErrors(t *testing.T) {
	big := &sched.Instance{M: 8}
	for i := 0; i < 20; i++ {
		big.Classes = append(big.Classes, sched.Class{Setup: 1, Jobs: []int64{1}})
	}
	if _, err := NonPreemptive(big); !errors.Is(err, ErrTooLarge) {
		t.Errorf("NonPreemptive on big instance: %v", err)
	}
	if _, err := Splittable(big); !errors.Is(err, ErrTooLarge) {
		t.Errorf("Splittable on big instance: %v", err)
	}
}
