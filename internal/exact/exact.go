// Package exact computes optimal makespans for small instances by
// exhaustive search.  It exists to measure the true approximation ratios
// of the near-linear algorithms in tests and experiments:
//
//   - NonPreemptive: branch-and-bound over job-to-machine assignments
//     (within a machine, grouping jobs by class is always optimal, so an
//     assignment determines the makespan).
//   - Splittable: for a fixed choice of which machines carry a setup of
//     each class, divisible load routing is a transportation problem; by
//     Hall's condition the optimal makespan is
//     max_S (setups(S) + work{classes servable only in S}) / |S| over
//     machine subsets S, minimized over all setup placements.
//
// The preemptive optimum lies between the two (OPT_split <= OPT_pmtn <=
// OPT_nonp), which the tests exploit as a sandwich.
package exact

import (
	"errors"
	"math"

	"setupsched/sched"
)

// ErrTooLarge reports an instance beyond the exhaustive-search budget.
var ErrTooLarge = errors.New("exact: instance too large for exhaustive search")

// NonPreemptive returns the optimal non-preemptive makespan.
// The search budget is roughly m^n; keep n <= 12 and m <= 4.
func NonPreemptive(in *sched.Instance) (int64, error) {
	n := in.NumJobs()
	if n > 14 || in.M > 6 || len(in.Classes) > 14 {
		return 0, ErrTooLarge
	}
	m := int(in.M)
	type flatJob struct {
		class int
		t     int64
	}
	jobs := make([]flatJob, 0, n)
	for c := range in.Classes {
		for _, t := range in.Classes[c].Jobs {
			jobs = append(jobs, flatJob{c, t})
		}
	}
	// Sort jobs descending for better pruning.
	for i := 1; i < len(jobs); i++ {
		for j := i; j > 0 && jobs[j].t > jobs[j-1].t; j-- {
			jobs[j], jobs[j-1] = jobs[j-1], jobs[j]
		}
	}
	load := make([]int64, m)
	classOn := make([]uint32, m) // bitmask of classes present per machine
	best := in.N() + 1
	lower := in.LowerBound(sched.NonPreemptive).Num()

	var rec func(j int)
	rec = func(j int) {
		if best == lower {
			return
		}
		if j == len(jobs) {
			var mk int64
			for u := 0; u < m; u++ {
				if load[u] > mk {
					mk = load[u]
				}
			}
			if mk < best {
				best = mk
			}
			return
		}
		jb := jobs[j]
		bit := uint32(1) << jb.class
		seenEmpty := false
		for u := 0; u < m; u++ {
			if load[u] == 0 {
				if seenEmpty {
					continue // symmetry: identical empty machines
				}
				seenEmpty = true
			}
			add := jb.t
			if classOn[u]&bit == 0 {
				add += in.Classes[jb.class].Setup
			}
			if load[u]+add >= best {
				continue
			}
			old := classOn[u]
			load[u] += add
			classOn[u] |= bit
			rec(j + 1)
			load[u] -= add
			classOn[u] = old
		}
	}
	rec(0)
	return best, nil
}

// Splittable returns the optimal splittable makespan as an exact rational.
// The search budget is (2^m - 1)^c * 2^m; keep m <= 4 and c <= 4.
func Splittable(in *sched.Instance) (sched.Rat, error) {
	m := int(in.M)
	c := len(in.Classes)
	if m > 4 || c > 5 {
		return sched.Rat{}, ErrTooLarge
	}
	full := (1 << m) - 1
	// For every class choose a nonempty machine subset carrying its setup.
	assign := make([]int, c)
	work := make([]int64, c)
	for i := range in.Classes {
		work[i] = in.Classes[i].Work()
	}
	best := sched.R(math.MaxInt64)

	evaluate := func() {
		// Setups per machine.
		var setups [4]int64
		for i := 0; i < c; i++ {
			for u := 0; u < m; u++ {
				if assign[i]&(1<<u) != 0 {
					setups[u] += in.Classes[i].Setup
				}
			}
		}
		// Hall bound over machine subsets.
		worst := sched.Rat{}
		for s := 1; s <= full; s++ {
			var total int64
			bits := 0
			for u := 0; u < m; u++ {
				if s&(1<<u) != 0 {
					total += setups[u]
					bits++
				}
			}
			for i := 0; i < c; i++ {
				if assign[i]&^s == 0 { // servable only inside S
					total += work[i]
				}
			}
			v := sched.RatOf(total, int64(bits))
			if worst.Less(v) {
				worst = v
			}
		}
		if worst.Less(best) {
			best = worst
		}
	}

	var rec func(i int)
	rec = func(i int) {
		if i == c {
			evaluate()
			return
		}
		for sub := 1; sub <= full; sub++ {
			assign[i] = sub
			rec(i + 1)
		}
	}
	rec(0)
	return best, nil
}
