package exact

// Branch-and-bound reference backend for the non-preemptive variant.
//
// The tiny-n exhaustive search in exact.go branches on raw job-to-machine
// assignments and dies around n = 14.  This file replaces it as the
// reference optimum for realistic sizes by exploiting the same threshold
// structure the paper's dual tests use (Lemma 12 / Theorem 9 accounting):
//
//   - OPT is an integer (all setups and processing times are integers and
//     every machine's completion time is a plain sum), so the outer loop
//     is an integral binary search for the threshold of the monotone
//     predicate feasible(T) = "a schedule with makespan <= T exists";
//
//   - the search bracket comes from certified bounds we already compute:
//     the lower end is the trivial bound and the certified lower bound of
//     the near-linear 3/2-search, the upper end is that search's feasible
//     schedule, so the bracket spans at most a factor 3/2;
//
//   - feasible(T) is a depth-first branch-and-bound over batch
//     compositions: jobs are placed class by class (descending
//     s_i + t_max^(i), descending t_j within a class), a machine pays the
//     setup s_i exactly when it receives its first job of class i, and
//     every node is pruned with the splittable relaxation at T — class i
//     occupies at least max(ceil(P_i/(T-s_i)), |{j : 2 t_j > T-s_i}|)
//     machines (a machine running class i holds at most T - s_i of its
//     work, and two jobs above half that capacity cannot share one), so
//     the remaining work plus the implied unpaid setups must fit in the
//     remaining machine capacity m*T - sum(load);
//
//   - symmetry is broken deterministically: empty machines are
//     interchangeable (only the first is tried), equal jobs of one class
//     are interchangeable (machine indices must be non-decreasing), and
//     branches landing a job on machines in indistinguishable states
//     (equal load, same setup status for the job's class) are deduped.
//
// The solve runs in three phases.  Phase 1 raises the lower end of the
// bracket to the threshold of the splittable relaxation (for singleton
// classes additionally the Martello-Toth pairing bound on the induced
// bin-packing instance) — pure arithmetic, no search.  Phase 2 pulls the
// upper end down with a deterministic constructive portfolio: four
// greedy machine-choice rules plus a local-search repair that places
// with overflow and descends on total excess via moves and one-for-two /
// two-for-one exchanges.  Phase 3 resolves the residual bracket with the
// branch-and-bound decision procedure, each probe capped at half the
// remaining node budget so a single adversarial threshold cannot starve
// the rest.
//
// The whole solve shares one node budget across all decision probes;
// exhausting it returns a *BudgetError (matching ErrBudget via errors.Is)
// carrying the certified bracket reached so far — callers that cannot
// get a full solve still get a sound OPT interval.  The search is
// deterministic: identical instances and budgets always expand identical
// trees.

import (
	"context"
	"errors"
	"fmt"

	"setupsched/internal/core"
	"setupsched/sched"
)

// DefaultNodeBudget is the branch-and-bound node budget used when the
// caller passes budget <= 0.  It is shared across all decision probes of
// one solve; catalog instances with hundreds of jobs typically need a few
// thousand nodes, so the default leaves generous headroom while bounding
// adversarial instances to well under a second.
const DefaultNodeBudget int64 = 2_000_000

// MaxBranchBoundJobs bounds the instance size BranchBound accepts.  The
// limit protects memory (per-machine class bitsets), not time — time is
// governed by the node budget.
const MaxBranchBoundJobs = 4096

// ErrBudget matches (via errors.Is) any budget-exhaustion failure of the
// branch-and-bound backend.
var ErrBudget = errors.New("exact: branch-and-bound node budget exhausted")

// BudgetError reports an exhausted node budget together with the
// certified bracket the binary search had reached: Lo <= OPT <= Hi.
type BudgetError struct {
	Budget int64 // the configured node budget
	Nodes  int64 // nodes expanded when the budget ran out
	Lo, Hi int64 // certified bracket on OPT at abort
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("exact: node budget %d exhausted after %d nodes (certified %d <= OPT <= %d)",
		e.Budget, e.Nodes, e.Lo, e.Hi)
}

// Is reports target == ErrBudget, tying the typed error to the sentinel.
func (e *BudgetError) Is(target error) bool { return target == ErrBudget }

// BBResult is the outcome of a successful BranchBound solve.
type BBResult struct {
	// Opt is the optimal non-preemptive makespan.
	Opt int64
	// Schedule is an optimal schedule witnessing Opt (variant
	// NonPreemptive, makespan exactly Opt).
	Schedule *sched.Schedule
	// Nodes is the total number of branch-and-bound nodes expanded.
	Nodes int64
	// Probes is the number of feasibility decisions evaluated by the
	// outer binary search.
	Probes int
}

// BranchBound computes the exact optimal non-preemptive makespan by
// branch-and-bound (see the file comment for the search structure).  The
// context cancels the search between node batches; budget <= 0 selects
// DefaultNodeBudget.  On budget exhaustion the returned error is a
// *BudgetError matching ErrBudget and carrying the certified bracket.
func BranchBound(ctx context.Context, in *sched.Instance, budget int64) (*BBResult, error) {
	if in == nil {
		return nil, errors.New("exact: nil instance")
	}
	if in.NumJobs() > MaxBranchBoundJobs {
		return nil, ErrTooLarge
	}
	if budget <= 0 {
		budget = DefaultNodeBudget
	}

	// Certified bracket from the near-linear machinery: lo from the
	// trivial bound and the 3/2-search's certified lower bound, hi from
	// its feasible schedule.  Both sides stay sound even on the search's
	// documented fallback path (the bound is conservative, never unsound).
	prep := core.Prepare(in)
	hr, err := prep.SolveNonpSearch(core.Ctl{Ctx: ctx})
	if err != nil {
		return nil, err
	}
	lo := prep.TMin(sched.NonPreemptive).Ceil()
	if c := hr.LowerBound.Ceil(); c > lo {
		lo = c
	}
	heurMk := hr.Schedule.Makespan()
	hi := heurMk.Ceil()
	if hi < lo {
		// Cannot happen for sound bounds; fail loudly instead of looping.
		return nil, fmt.Errorf("exact: inverted bracket [%d, %d]", lo, hi)
	}

	st := newBBState(in)
	res := &BBResult{}

	// Phase 1 — splittable relaxation: raise lo to the threshold of the
	// fractional bound sum_i (P_i + minBatch_i(T) s_i) <= m*T.  This is
	// exact arithmetic on a monotone predicate, so it certifies every
	// T below the threshold as infeasible without expanding a single
	// node; on volume-driven instances the new lo already equals OPT and
	// the whole solve reduces to finding one witness.
	lo = st.relaxThreshold(lo, hi)

	// Phase 2 — greedy descent: pull hi down with the deterministic
	// constructive portfolio only (O(n*m) per probe, no tree search).
	// Rejections certify nothing here, so the dedicated glo cursor never
	// feeds back into the certified lo.
	var witness []int32 // assignment for the best accepted T
	witnessT := int64(-1)
	accept := func(T int64) {
		hi = T
		witness = append(witness[:0], st.assign...)
		witnessT = T
	}
	for glo := lo; glo < hi; {
		mid := glo + (hi-glo)/2
		if st.prepare(mid) && st.greedy() {
			accept(mid)
		} else {
			glo = mid + 1
		}
	}

	// Phase 3 — exact binary search on the residual bracket.  Each probe
	// gets half of the remaining node budget: a single adversarial probe
	// can no longer starve the rest of the search, and the geometric
	// split still admits ~log2(budget) probes.  A probe that runs dry
	// under its cap leaves the bracket intact; since witnesses get easier
	// with slack, the target then escalates toward hi (any decision there
	// still narrows the bracket) until no fresh target or budget remains.
	for lo < hi {
		target := lo + (hi-lo)/2
		for lo < hi {
			probeCap := (budget - st.nodesUsed) / 2
			if probeCap < 1 {
				probeCap = 1
			}
			res.Probes++
			ok, err := st.feasible(ctx, target, st.nodesUsed+probeCap)
			if err != nil {
				var be *BudgetError
				if !errors.As(err, &be) {
					res.Nodes = st.nodesUsed
					return nil, err
				}
				next := target + (hi-target+1)/2
				if st.nodesUsed >= budget || next >= hi || next == target {
					be.Budget, be.Nodes = budget, st.nodesUsed
					be.Lo, be.Hi = lo, hi
					res.Nodes = st.nodesUsed
					return nil, be
				}
				target = next
				continue
			}
			if ok {
				accept(target)
			} else {
				lo = target + 1
			}
			break
		}
	}
	res.Opt = lo
	res.Nodes = st.nodesUsed

	if witnessT == res.Opt && witness != nil {
		res.Schedule = st.buildSchedule(witness, res.Opt)
	} else {
		// No accepted probe at Opt: the search converged onto the initial
		// hi purely by rejections, which certifies OPT = hi.  The
		// heuristic schedule is then itself optimal (its makespan mk
		// satisfies Opt <= mk <= ceil(mk) = hi = Opt).
		res.Schedule = hr.Schedule
	}
	// Belt and braces: the witness must state exactly Opt.
	if got := res.Schedule.Makespan(); got.CmpInt(res.Opt) != 0 {
		return nil, fmt.Errorf("exact: internal error: witness makespan %s != computed optimum %d", got, res.Opt)
	}
	return res, nil
}

// bbJob is one job in the flattened class-major branching order.
type bbJob struct {
	cls     int32 // index into bbState.cls (the reordered classes)
	origJob int32 // job index within the original class
	t       int64
	eqPrev  bool // same class and length as the previous flat job
}

// bbClass is one class in branching order.
type bbClass struct {
	orig  int32 // index into Instance.Classes
	setup int64
	work  int64
}

// bbState carries the reusable search state shared by all decision
// probes of one BranchBound call.
type bbState struct {
	in    *sched.Instance
	m     int // effective machine count, min(M, n)
	cls   []bbClass
	jobs  []bbJob
	words int // bitset words per machine

	nodeLimit int64 // per-probe node ceiling (cumulative, set by feasible)
	nodesUsed int64

	// Per-probe state (reset by feasible).
	load      []int64  // per machine
	classOn   []uint64 // m * words bitset: machine u has class i open
	openCount []int64  // per class: machines with the class open
	remWork   []int64  // per class: unplaced work
	assign    []int32  // per flat job: machine index
	totalLoad int64
	T         int64
	cap       []int64 // per class: T - setup
	minBatch  []int64 // per class: machines the whole class needs at T
	sufNeed   []int64 // suffix sums of work + minBatch*setup over classes
	bigRem    []int64 // per flat job: remaining same-class jobs with 2t > cap

	minTSuf []int64 // per flat job: smallest job length in the suffix
	// Per-depth candidate buffers for ordered branching (slices of stride
	// m into one backing array; nil when n*m would be too large, in which
	// case dfs falls back to per-node allocation).
	cand    []int32
	candKey []int64
	// cnt[u*len(cls)+ci] is the number of class-ci jobs on machine u during
	// the local-search repair accept path (nil when m*c is too large, which
	// simply disables that path).
	cnt []int32
	// ordDesc is an alternative placement order for the repair path: flat
	// job indices by descending setup-inclusive size.
	ordDesc []int32
	// machine job lists rebuilt per deep-repair step (backing array,
	// offsets, fill cursors).
	mjobs []int32
	moff  []int32
	mcur  []int32
	// Pure bin-packing view when every class holds exactly one job: item
	// weights setup+t sorted ascending, with prefix sums.  Enables the
	// Martello-Toth pairing bound as an extra root rejection.
	bpW   []int64
	bpPre []int64
}

// newBBState flattens and orders the instance once; all per-probe arrays
// are allocated here and reused across probes.
func newBBState(in *sched.Instance) *bbState {
	c := len(in.Classes)
	n := in.NumJobs()
	st := &bbState{in: in}
	st.m = n
	if int64(st.m) > in.M {
		st.m = int(in.M)
	}
	if st.m < 1 {
		st.m = 1
	}

	// Classes ordered by descending s_i + t_max^(i): the hardest batches
	// are committed first, so pruning bites near the root.
	st.cls = make([]bbClass, c)
	order := make([]int, c)
	for i := range order {
		order[i] = i
	}
	key := func(i int) int64 { return in.Classes[i].Setup + in.Classes[i].MaxJob() }
	// Deterministic insertion sort (c is small compared to n).
	for i := 1; i < c; i++ {
		for j := i; j > 0 && (key(order[j]) > key(order[j-1]) ||
			(key(order[j]) == key(order[j-1]) && order[j] < order[j-1])); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	st.jobs = make([]bbJob, 0, n)
	for ci, oi := range order {
		cl := &in.Classes[oi]
		st.cls[ci] = bbClass{orig: int32(oi), setup: cl.Setup, work: cl.Work()}
		start := len(st.jobs)
		for j, t := range cl.Jobs {
			st.jobs = append(st.jobs, bbJob{cls: int32(ci), origJob: int32(j), t: t})
		}
		// Descending job lengths within the class, stable on origJob.
		seg := st.jobs[start:]
		for i := 1; i < len(seg); i++ {
			for j := i; j > 0 && (seg[j].t > seg[j-1].t ||
				(seg[j].t == seg[j-1].t && seg[j].origJob < seg[j-1].origJob)); j-- {
				seg[j], seg[j-1] = seg[j-1], seg[j]
			}
		}
		for i := 1; i < len(seg); i++ {
			seg[i].eqPrev = seg[i].t == seg[i-1].t
		}
	}

	// Smallest job length over each flat suffix: a machine whose residual
	// capacity drops below minTSuf[j] can never receive another job (even
	// an already-open class costs at least the bare job length), so its
	// slack is certified dead in every extension of the node.
	st.minTSuf = make([]int64, n+1)
	st.minTSuf[n] = 1 << 62
	for j := n - 1; j >= 0; j-- {
		st.minTSuf[j] = st.minTSuf[j+1]
		if st.jobs[j].t < st.minTSuf[j] {
			st.minTSuf[j] = st.jobs[j].t
		}
	}

	st.words = (c + 63) / 64
	st.load = make([]int64, st.m)
	st.classOn = make([]uint64, st.m*st.words)
	st.openCount = make([]int64, c)
	st.remWork = make([]int64, c)
	st.assign = make([]int32, n)
	st.cap = make([]int64, c)
	st.minBatch = make([]int64, c)
	st.sufNeed = make([]int64, c+1)
	st.bigRem = make([]int64, n+1)
	if n*st.m <= 1<<22 {
		st.cand = make([]int32, n*st.m)
		st.candKey = make([]int64, n*st.m)
	}
	if c > 0 && st.m*c <= 1<<22 {
		st.cnt = make([]int32, st.m*c)
		st.ordDesc = make([]int32, n)
		for j := range st.ordDesc {
			st.ordDesc[j] = int32(j)
		}
		size := func(j int32) int64 {
			jb := &st.jobs[j]
			return jb.t + st.cls[jb.cls].setup
		}
		ord := st.ordDesc
		for i := 1; i < len(ord); i++ {
			for j := i; j > 0 && (size(ord[j]) > size(ord[j-1]) ||
				(size(ord[j]) == size(ord[j-1]) && ord[j] < ord[j-1])); j-- {
				ord[j], ord[j-1] = ord[j-1], ord[j]
			}
		}
		st.mjobs = make([]int32, n)
		st.moff = make([]int32, st.m+1)
		st.mcur = make([]int32, st.m)
	}

	singleton := c > 0
	for i := range in.Classes {
		if len(in.Classes[i].Jobs) != 1 {
			singleton = false
			break
		}
	}
	if singleton {
		st.bpW = make([]int64, c)
		for i := range in.Classes {
			st.bpW[i] = in.Classes[i].Setup + in.Classes[i].Jobs[0]
		}
		w := st.bpW
		for i := 1; i < len(w); i++ {
			for j := i; j > 0 && w[j] < w[j-1]; j-- {
				w[j], w[j-1] = w[j-1], w[j]
			}
		}
		st.bpPre = make([]int64, c+1)
		for i, x := range w {
			st.bpPre[i+1] = st.bpPre[i] + x
		}
	}
	return st
}

// l2Reject applies the Martello-Toth pairing bound for the pure
// bin-packing view of an all-singleton instance: for every threshold
// lambda, items above T-lambda monopolize their machines against all
// items >= lambda, so the remaining volume must fit in the machines left
// over.  Each rejection independently certifies its T (the bound is a
// valid relaxation at that T), which keeps the outer binary search sound
// without needing monotonicity of this test.
func (st *bbState) l2Reject(T int64) bool {
	w, pre := st.bpW, st.bpPre
	n := len(w)
	// upper(x): first index with w > x.
	upper := func(x int64) int {
		a, b := 0, n
		for a < b {
			mid := (a + b) / 2
			if w[mid] <= x {
				a = mid + 1
			} else {
				b = mid
			}
		}
		return a
	}
	idxHalf := upper(T / 2)
	for i := 0; i < idxHalf; i++ {
		if i > 0 && w[i] == w[i-1] {
			continue
		}
		lam := w[i]
		idx1 := upper(T - lam)      // items > T-lam
		n1 := int64(n - idx1)       //
		n2 := int64(idx1 - idxHalf) // T-lam >= w > T/2
		s2 := pre[idx1] - pre[idxHalf]
		s3 := pre[idxHalf] - pre[i] // T/2 >= w >= lam
		l := n1 + n2
		if rest := s2 + s3 - n2*T; rest > 0 {
			l += ceilDiv(rest, T)
		}
		if l > int64(st.m) {
			return true
		}
	}
	return false
}

func (st *bbState) open(u int, cls int32) bool {
	return st.classOn[u*st.words+int(cls)/64]&(1<<(uint(cls)%64)) != 0
}

func (st *bbState) setOpen(u int, cls int32) {
	st.classOn[u*st.words+int(cls)/64] |= 1 << (uint(cls) % 64)
}

func (st *bbState) clearOpen(u int, cls int32) {
	st.classOn[u*st.words+int(cls)/64] &^= 1 << (uint(cls) % 64)
}

// ceilDiv returns ceil(a/b) for a >= 0, b > 0.
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// relaxThreshold returns the smallest T in [lo, hi] passing the root
// splittable relaxation (prepare).  The predicate is monotone in T: every
// class capacity grows, the minimum batch counts shrink and the free
// volume m*T grows, so a rejection at T rejects every smaller T too.  A
// feasible schedule exists at hi, so prepare(hi) always holds.
func (st *bbState) relaxThreshold(lo, hi int64) int64 {
	a, b := lo, hi
	for a < b {
		mid := a + (b-a)/2
		if st.prepare(mid) {
			b = mid
		} else {
			a = mid + 1
		}
	}
	return a
}

// prepare sets up the threshold structure at T and applies the root
// relaxation prunes, returning false when T is certified infeasible.  It
// leaves the placement state reset, ready for greedy or dfs.
func (st *bbState) prepare(T int64) bool {
	st.T = T
	// A class whose setup-plus-longest-job exceeds T is unschedulable;
	// the caller's bracket starts above the s_i + t_max bound, so this
	// only fires from relaxThreshold's own probing.
	for ci := range st.cls {
		cl := &st.cls[ci]
		cap := T - cl.setup
		st.cap[ci] = cap
		if cap < 1 {
			return false
		}
		mb := ceilDiv(cl.work, cap)
		st.remWork[ci] = cl.work
		st.openCount[ci] = 0
		st.minBatch[ci] = mb
	}
	// Per-flat-job tail counts of jobs above half the class capacity (two
	// such jobs cannot share a machine), sharpening minBatch and the
	// in-node bound for the class currently being placed.  Flat order is
	// class-major, so the count at a class's first flat job covers the
	// whole class.
	st.bigRem[len(st.jobs)] = 0
	for j := len(st.jobs) - 1; j >= 0; j-- {
		jb := &st.jobs[j]
		tail := int64(0)
		if j+1 < len(st.jobs) && st.jobs[j+1].cls == jb.cls {
			tail = st.bigRem[j+1]
		}
		if 2*jb.t > st.cap[jb.cls] {
			tail++
		}
		if jb.t > st.cap[jb.cls] {
			return false // job cannot fit any machine at T
		}
		st.bigRem[j] = tail
		if j == 0 || st.jobs[j-1].cls != jb.cls {
			if tail > st.minBatch[jb.cls] {
				st.minBatch[jb.cls] = tail
			}
		}
	}
	for ci := range st.cls {
		if st.minBatch[ci] > int64(st.m) {
			return false // one class alone demands more machines than exist
		}
	}
	// Splittable relaxation at T (root prune): all work plus the minimal
	// setup load must fit into m*T.
	st.sufNeed[len(st.cls)] = 0
	for ci := len(st.cls) - 1; ci >= 0; ci-- {
		st.sufNeed[ci] = st.sufNeed[ci+1] + st.cls[ci].work + st.minBatch[ci]*st.cls[ci].setup
	}
	if st.sufNeed[0] > int64(st.m)*T {
		return false
	}
	if st.bpW != nil && st.l2Reject(T) {
		return false
	}
	st.resetPlacement()
	return true
}

// feasible decides whether a schedule with makespan <= T exists,
// recording a witness assignment in st.assign on acceptance.  The search
// aborts with a bare *BudgetError (bracket patched by the caller) once
// st.nodesUsed exceeds nodeLimit.
func (st *bbState) feasible(ctx context.Context, T, nodeLimit int64) (bool, error) {
	if !st.prepare(T) {
		return false, nil
	}
	// Greedy fast path: the constructive portfolio in branching order.
	// Most catalog instances accept their threshold here, leaving the
	// exponential search for genuinely tight probes.
	if st.greedy() {
		return true, nil
	}
	st.resetPlacement()
	st.nodeLimit = nodeLimit
	return st.dfs(ctx, 0)
}

func (st *bbState) resetPlacement() {
	for u := range st.load {
		st.load[u] = 0
	}
	for i := range st.classOn {
		st.classOn[i] = 0
	}
	for ci := range st.cls {
		st.openCount[ci] = 0
		st.remWork[ci] = st.cls[ci].work
	}
	st.totalLoad = 0
}

// place commits flat job j to machine u, returning the load delta.
func (st *bbState) place(j int, u int) int64 {
	jb := &st.jobs[j]
	add := jb.t
	if !st.open(u, jb.cls) {
		add += st.cls[jb.cls].setup
		st.setOpen(u, jb.cls)
		st.openCount[jb.cls]++
	}
	st.load[u] += add
	st.totalLoad += add
	st.remWork[jb.cls] -= jb.t
	st.assign[j] = int32(u)
	return add
}

// unplace reverts place; paidSetup reports whether the move opened the
// class on u.
func (st *bbState) unplace(j int, u int, add int64) {
	jb := &st.jobs[j]
	if add != jb.t { // the move paid the setup
		st.clearOpen(u, jb.cls)
		st.openCount[jb.cls]--
	}
	st.load[u] -= add
	st.totalLoad -= add
	st.remWork[jb.cls] += jb.t
}

// Greedy portfolio modes: different deterministic machine-choice rules
// for the same class-major decreasing job order.  Each witnesses a
// different packing style, so running all of them accepts far more probe
// values cheaply than any single rule.
const (
	greedyBestFitOpen  = iota // min slack among open-class machines first
	greedyFirstFitOpen        // lowest index, open-class machines first
	greedyWorstFitOpen        // max slack among open-class machines first
	greedyBestFitPure         // min setup-inclusive slack, no open preference
	greedyModes
)

// greedy attempts the deterministic constructive portfolio; on success
// st.assign holds a witness.  The placement state is left dirty on
// failure — callers reset before any subsequent dfs.
func (st *bbState) greedy() bool {
	for mode := 0; mode < greedyModes; mode++ {
		st.resetPlacement()
		if st.greedyVariant(mode) {
			return true
		}
	}
	if st.cnt != nil {
		for mode := 0; mode < repairModes; mode++ {
			if st.repair(mode) {
				return true
			}
		}
	}
	return false
}

// greedyVariant runs one pass of the portfolio: each job goes to the
// feasible machine preferred by the mode's rule.
func (st *bbState) greedyVariant(mode int) bool {
	for j := range st.jobs {
		jb := &st.jobs[j]
		bestU, bestSlack, bestOpen := -1, int64(-1), false
		seenEmpty := false
		for u := 0; u < st.m; u++ {
			if st.load[u] == 0 {
				if seenEmpty {
					break // all further empty machines are identical
				}
				seenEmpty = true
			}
			need := jb.t
			open := st.open(u, jb.cls)
			if !open {
				need += st.cls[jb.cls].setup
			}
			slack := st.T - st.load[u] - need
			if slack < 0 {
				continue
			}
			better := bestU < 0
			if !better {
				switch mode {
				case greedyBestFitOpen:
					better = (open && !bestOpen) || (open == bestOpen && slack < bestSlack)
				case greedyFirstFitOpen:
					better = open && !bestOpen
				case greedyWorstFitOpen:
					better = (open && !bestOpen) || (open == bestOpen && slack > bestSlack)
				case greedyBestFitPure:
					better = slack < bestSlack
				}
			}
			if better {
				bestU, bestSlack, bestOpen = u, slack, open
			}
		}
		if bestU < 0 {
			return false
		}
		st.place(j, bestU)
	}
	return true
}

// Repair accept modes combine an initial placement rule (low bit) with a
// placement order (high bit): class-major flat order or globally
// descending setup-inclusive size.
const (
	repairBalance     = iota // min resulting load (LPT-style), overflow allowed
	repairBestFitOver        // best fit at T, overflow to min resulting load
	repairInitRules
	repairModes = 2 * repairInitRules
)

// repair is the portfolio's last accept path: place every job allowing
// machines to overflow T, then run a deterministic move/swap descent on
// the total excess.  Every accepted change strictly reduces the integral
// excess while keeping its counterpart machine within T, so the descent
// terminates; zero excess makes st.assign a witness.  This is purely an
// accept heuristic — failure certifies nothing — but it is what cracks
// volume-tight thresholds where plain greedy strands a few units of
// slack.  It bypasses place/unplace and maintains only load/cnt/assign;
// callers reset the placement state before any subsequent dfs.
func (st *bbState) repair(mode int) bool {
	c := len(st.cls)
	for u := 0; u < st.m; u++ {
		st.load[u] = 0
	}
	for i := range st.cnt {
		st.cnt[i] = 0
	}
	init := mode % repairInitRules
	for jj := range st.jobs {
		j := jj
		if mode >= repairInitRules {
			j = int(st.ordDesc[jj])
		}
		jb := &st.jobs[j]
		ci := int(jb.cls)
		bestU, bestKey := -1, int64(0)
		seenEmpty := false
		for u := 0; u < st.m; u++ {
			if st.load[u] == 0 {
				if seenEmpty {
					break // identical empty machines
				}
				seenEmpty = true
			}
			cost := jb.t
			if st.cnt[u*c+ci] == 0 {
				cost += st.cls[ci].setup
			}
			var k int64
			switch init {
			case repairBalance:
				k = st.load[u] + cost
			case repairBestFitOver:
				if st.load[u]+cost <= st.T {
					k = st.T - st.load[u] - cost
				} else {
					k = 1<<60 + st.load[u] + cost
				}
			}
			if bestU < 0 || k < bestKey {
				bestU, bestKey = u, k
			}
		}
		cost := jb.t
		if st.cnt[bestU*c+ci] == 0 {
			cost += st.cls[ci].setup
		}
		st.load[bestU] += cost
		st.cnt[bestU*c+ci]++
		st.assign[j] = int32(bestU)
	}

	steps := 8 * len(st.jobs) // hard cap; the excess descent is monotone anyway
	for changed := true; changed; {
		changed = false
		for u := 0; u < st.m; u++ {
			for st.load[u] > st.T && steps > 0 {
				if !st.repairStep(u) {
					break
				}
				steps--
				changed = true
			}
		}
	}
	for u := 0; u < st.m; u++ {
		if st.load[u] > st.T {
			return false
		}
	}
	return true
}

// repairStep applies one excess-reducing change for overloaded machine u:
// the best-fit move of one of u's jobs to a machine that stays within T,
// else the first job swap with a within-T machine that strictly lowers u.
func (st *bbState) repairStep(u int) bool {
	c := len(st.cls)
	bestJ, bestV, bestKey := -1, -1, int64(0)
	for j := range st.jobs {
		if int(st.assign[j]) != u {
			continue
		}
		jb := &st.jobs[j]
		ci := int(jb.cls)
		for v := 0; v < st.m; v++ {
			if v == u {
				continue
			}
			cost := jb.t
			if st.cnt[v*c+ci] == 0 {
				cost += st.cls[ci].setup
			}
			if st.load[v]+cost > st.T {
				continue
			}
			k := st.T - st.load[v] - cost
			if bestJ < 0 || k < bestKey {
				bestJ, bestV, bestKey = j, v, k
			}
		}
	}
	if bestJ >= 0 {
		st.repairMove(bestJ, bestV)
		return true
	}
	for j := range st.jobs {
		if int(st.assign[j]) != u {
			continue
		}
		jb := &st.jobs[j]
		cj := int(jb.cls)
		rmJ := jb.t
		if st.cnt[u*c+cj] == 1 {
			rmJ += st.cls[cj].setup
		}
		for k := range st.jobs {
			v := int(st.assign[k])
			if v == u || st.load[v] > st.T {
				continue
			}
			kb := &st.jobs[k]
			ck := int(kb.cls)
			// Load delta on u from j leaving and k arriving; when the two
			// share a class, j's departure is accounted before k's arrival.
			cntUk := st.cnt[u*c+ck]
			if ck == cj {
				cntUk--
			}
			addKU := kb.t
			if cntUk == 0 {
				addKU += st.cls[ck].setup
			}
			if addKU-rmJ >= 0 {
				continue
			}
			rmK := kb.t
			if st.cnt[v*c+ck] == 1 {
				rmK += st.cls[ck].setup
			}
			cntVj := st.cnt[v*c+cj]
			if cj == ck {
				cntVj--
			}
			addJV := jb.t
			if cntVj == 0 {
				addJV += st.cls[cj].setup
			}
			if st.load[v]-rmK+addJV > st.T {
				continue
			}
			st.repairMove(j, v)
			st.repairMove(k, u)
			return true
		}
	}
	return st.repairDeep(u)
}

// buildMachineJobs fills mjobs/moff with per-machine flat-job lists.
func (st *bbState) buildMachineJobs() {
	for u := 0; u <= st.m; u++ {
		st.moff[u] = 0
	}
	for j := range st.jobs {
		st.moff[int(st.assign[j])+1]++
	}
	for u := 0; u < st.m; u++ {
		st.moff[u+1] += st.moff[u]
	}
	copy(st.mcur, st.moff[:st.m])
	for j := range st.jobs {
		u := int(st.assign[j])
		st.mjobs[st.mcur[u]] = int32(j)
		st.mcur[u]++
	}
}

// simDelta returns the load change on machine x from removing the flat
// jobs in rms (currently on x) and adding those in ads.  A machine's load
// is a pure function of its final job set, so the simulation order is
// irrelevant; up to four touched classes are tracked locally.
func (st *bbState) simDelta(x int, rms, ads []int) int64 {
	c := len(st.cls)
	var tc [4]int32
	var ta [4]int32
	ntc := 0
	cntOf := func(ci int32) int32 {
		v := st.cnt[x*c+int(ci)]
		for i := 0; i < ntc; i++ {
			if tc[i] == ci {
				v += ta[i]
			}
		}
		return v
	}
	bump := func(ci int32, d int32) {
		for i := 0; i < ntc; i++ {
			if tc[i] == ci {
				ta[i] += d
				return
			}
		}
		tc[ntc], ta[ntc] = ci, d
		ntc++
	}
	delta := int64(0)
	for _, j := range rms {
		jb := &st.jobs[j]
		delta -= jb.t
		if cntOf(jb.cls) == 1 {
			delta -= st.cls[jb.cls].setup
		}
		bump(jb.cls, -1)
	}
	for _, j := range ads {
		jb := &st.jobs[j]
		delta += jb.t
		if cntOf(jb.cls) == 0 {
			delta += st.cls[jb.cls].setup
		}
		bump(jb.cls, 1)
	}
	return delta
}

// repairDeep tries the heavier exchanges near a stall: one job from u
// against a pair on another machine, then a pair from u against one job
// elsewhere.  The first strictly-improving exchange (deterministic scan
// order) is applied.
func (st *bbState) repairDeep(u int) bool {
	st.buildMachineJobs()
	uj := st.mjobs[st.moff[u]:st.moff[u+1]]
	for _, j32 := range uj {
		j := int(j32)
		for v := 0; v < st.m; v++ {
			if v == u || st.load[v] > st.T {
				continue
			}
			vj := st.mjobs[st.moff[v]:st.moff[v+1]]
			for a := 0; a < len(vj); a++ {
				for b := a + 1; b < len(vj); b++ {
					k1, k2 := int(vj[a]), int(vj[b])
					if st.simDelta(u, []int{j}, []int{k1, k2}) >= 0 {
						continue
					}
					dV := st.simDelta(v, []int{k1, k2}, []int{j})
					if st.load[v]+dV > st.T {
						continue
					}
					st.repairMove(j, v)
					st.repairMove(k1, u)
					st.repairMove(k2, u)
					return true
				}
			}
		}
	}
	for a := 0; a < len(uj); a++ {
		for b := a + 1; b < len(uj); b++ {
			j1, j2 := int(uj[a]), int(uj[b])
			for k := range st.jobs {
				v := int(st.assign[k])
				if v == u || st.load[v] > st.T {
					continue
				}
				if st.simDelta(u, []int{j1, j2}, []int{k}) >= 0 {
					continue
				}
				dV := st.simDelta(v, []int{k}, []int{j1, j2})
				if st.load[v]+dV > st.T {
					continue
				}
				st.repairMove(j1, v)
				st.repairMove(j2, v)
				st.repairMove(k, u)
				return true
			}
		}
	}
	return false
}

// repairMove reassigns flat job j to machine v, maintaining load and cnt.
func (st *bbState) repairMove(j, v int) {
	jb := &st.jobs[j]
	ci := int(jb.cls)
	c := len(st.cls)
	u := int(st.assign[j])
	rm := jb.t
	if st.cnt[u*c+ci] == 1 {
		rm += st.cls[ci].setup
	}
	st.load[u] -= rm
	st.cnt[u*c+ci]--
	add := jb.t
	if st.cnt[v*c+ci] == 0 {
		add += st.cls[ci].setup
	}
	st.load[v] += add
	st.cnt[v*c+ci]++
	st.assign[j] = int32(v)
}

// dfs is the branch-and-bound core: place flat job j on every
// distinguishable machine, bounded by the splittable relaxation on the
// remaining load.
func (st *bbState) dfs(ctx context.Context, j int) (bool, error) {
	st.nodesUsed++
	if st.nodesUsed > st.nodeLimit {
		return false, &BudgetError{}
	}
	if st.nodesUsed%4096 == 0 && ctx != nil {
		if err := ctx.Err(); err != nil {
			return false, err
		}
	}
	if j == len(st.jobs) {
		return true, nil
	}
	jb := &st.jobs[j]
	cls := jb.cls

	// Lower bound on the load still to be scheduled: remaining work of
	// the current class plus setups for machines it still must open, plus
	// the precomputed demand of every untouched class (classes are placed
	// in order, so classes before cls are complete and classes after it
	// are untouched).
	free := int64(st.m)*st.T - st.totalLoad
	needMach := ceilDiv(st.remWork[cls], st.cap[cls])
	if st.bigRem[j] > needMach {
		needMach = st.bigRem[j]
	}
	extra := needMach - st.openCount[cls]
	if extra < 0 {
		extra = 0
	}
	remNeed := st.remWork[cls] + extra*st.cls[cls].setup + st.sufNeed[cls+1]
	if remNeed > free {
		return false, nil
	}

	startU := 0
	if jb.eqPrev {
		// Equal jobs of one class are interchangeable: force
		// non-decreasing machine indices.
		startU = int(st.assign[j-1])
	}

	// Candidate collection: one pass over the machines accounting dead
	// slack (residual below the smallest remaining job — unusable in any
	// extension) and gathering distinguishable feasible targets.  Machines
	// in identical states for this job (same load, same setup status) root
	// isomorphic subtrees, so only the first of each group is kept.
	var cand []int32
	var key []int64
	if st.cand != nil {
		base := j * st.m
		cand = st.cand[base : base : base+st.m]
		key = st.candKey[base : base : base+st.m]
	} else {
		cand = make([]int32, 0, st.m)
		key = make([]int64, 0, st.m)
	}
	dead := int64(0)
	seenEmpty := false
	for u := 0; u < st.m; u++ {
		if st.load[u] == 0 {
			if seenEmpty {
				break // identical empty machines form a suffix
			}
			seenEmpty = true
		}
		res := st.T - st.load[u]
		if res < st.minTSuf[j] {
			dead += res
			continue // cannot host any remaining job
		}
		if u < startU {
			continue
		}
		need := jb.t
		open := st.open(u, cls)
		if !open {
			need += st.cls[cls].setup
		}
		if need > res {
			continue
		}
		dup := false
		for _, v := range cand {
			if st.load[v] == st.load[u] && st.open(int(v), cls) == open {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		// Branch order key: open-class machines first, then minimal slack
		// (best fit), ties on index.  The leftmost descent then behaves
		// like best-fit-decreasing with full backtracking behind it.
		k := res - need
		if !open {
			k += 1 << 60
		}
		cand = append(cand, int32(u))
		key = append(key, k)
	}
	// The volume bound again, now charging certified-dead slack against
	// the free capacity.  On tight probes nearly every misplacement
	// strands residual below the smallest job, so this prune carries the
	// endgame.
	if remNeed > free-dead {
		return false, nil
	}
	// Deterministic insertion sort; candidate lists are at most m long.
	for a := 1; a < len(cand); a++ {
		for b := a; b > 0 && key[b] < key[b-1]; b-- {
			key[b], key[b-1] = key[b-1], key[b]
			cand[b], cand[b-1] = cand[b-1], cand[b]
		}
	}
	for _, cu := range cand {
		u := int(cu)
		add := st.place(j, u)
		ok, err := st.dfs(ctx, j+1)
		if ok || err != nil {
			return ok, err
		}
		st.unplace(j, u, add)
	}
	return false, nil
}

// buildSchedule materializes the witness assignment as a non-preemptive
// schedule: per machine, batches in class-major order, each batch a setup
// slot followed by its jobs, packed from time zero.
func (st *bbState) buildSchedule(assign []int32, opt int64) *sched.Schedule {
	out := &sched.Schedule{Variant: sched.NonPreemptive, T: sched.R(opt)}
	for u := 0; u < st.m; u++ {
		b := sched.NewMachineBuilder()
		lastCls := int32(-1)
		for j := range st.jobs {
			if assign[j] != int32(u) {
				continue
			}
			jb := &st.jobs[j]
			cl := &st.cls[jb.cls]
			if jb.cls != lastCls {
				b.Place(sched.SlotSetup, int(cl.orig), -1, sched.R(cl.setup))
				lastCls = jb.cls
			}
			b.Place(sched.SlotJob, int(cl.orig), int(jb.origJob), sched.R(jb.t))
		}
		if len(b.Slots()) > 0 {
			out.AddMachine(b.Slots())
		}
	}
	return out
}
