package loadtest

import (
	"context"
	"os"
	"testing"
	"time"
)

// TestMain installs the child-mode hook: when StartCluster re-execs
// this test binary with SCHEDLOAD_CHILD set, the process becomes a
// shard or lb instead of running the tests.
func TestMain(m *testing.M) {
	MaybeRunChild()
	os.Exit(m.Run())
}

// TestClusterWorkload is the end-to-end smoke: a real 2-shard fleet
// plus lb as separate OS processes, a short mixed workload, and the
// zero-misroute contract.
func TestClusterWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a multi-process cluster")
	}
	cluster, err := StartCluster(context.Background(), ClusterConfig{Shards: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	res, err := RunWorkload(context.Background(), cluster.LBURL, cluster.Shards, WorkloadConfig{
		Duration: 1500 * time.Millisecond, RPS: 40, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RoutingErrors != 0 {
		t.Fatalf("routing errors = %d, want 0", res.RoutingErrors)
	}
	total := res.Solve.Requests + res.Session.Requests
	if total < 20 {
		t.Fatalf("workload completed only %d requests", total)
	}
	if res.Solve.Errors != 0 || res.Session.Errors != 0 {
		t.Fatalf("request errors: solve=%d session=%d", res.Solve.Errors, res.Session.Errors)
	}
	if len(res.ShardHits) != 2 {
		t.Errorf("traffic hit %d/2 shards: %v", len(res.ShardHits), res.ShardHits)
	}
	if res.Solve.P50Ms <= 0 || res.Solve.P99Ms < res.Solve.P50Ms {
		t.Errorf("implausible solve latencies: %+v", res.Solve)
	}

	// The outcome must survive the report's own validator when paired
	// with a second topology row (here: synthesize by re-using the same
	// drive at a fake second count — the validator checks structure, the
	// real pairing is exercised by cmd/schedload and CI).
	run := NewServeRun(time.Second, 4)
	run.AppendWorkload(res)
	res.Shards = 1
	run.AppendWorkload(res)
	rep := &ServeReport{}
	MergeServeRun(rep, run)
	if err := ValidateServeReport(rep); err != nil {
		t.Fatalf("report validation: %v", err)
	}
}

// TestTraceReport drives traced solves through a real 2-shard fleet and
// asserts the joined attribution's invariants: every minted trace id
// appears in the flight recorder of exactly the ring-predicted shard,
// and the per-segment attribution sums to within 5% of each request's
// end-to-end latency.
func TestTraceReport(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a multi-process cluster")
	}
	cluster, err := StartCluster(context.Background(), ClusterConfig{Shards: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	rep, err := RunTraceReport(context.Background(), cluster.LBURL, cluster.Shards, TraceReportConfig{
		Requests: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	if rep.E2E.P50Ms <= 0 || rep.E2E.P99Ms < rep.E2E.P50Ms {
		t.Errorf("implausible e2e stats: %+v", rep.E2E)
	}
	if len(rep.Segments) != len(TraceSegments) {
		t.Fatalf("report has %d segments, want %d", len(rep.Segments), len(TraceSegments))
	}
	var sumP50 float64
	for _, seg := range rep.Segments {
		sumP50 += seg.P50Ms
	}
	// Percentiles don't add exactly, but the segment medians should land
	// in the same order of magnitude as the e2e median.
	if sumP50 <= 0 {
		t.Errorf("segment medians sum to zero; attribution empty: %+v", rep.Segments)
	}
	t.Logf("trace report: joined=%d/%d maxSumErr=%.2f%% e2e p50=%.2fms",
		rep.Joined, rep.Requests, rep.MaxSumErrPct, rep.E2E.P50Ms)
}

// TestValidateServeReport exercises the validator's rejections.
func TestValidateServeReport(t *testing.T) {
	mk := func() *ServeReport {
		run := NewServeRun(time.Second, 4)
		for _, shards := range []int{1, 3} {
			for _, name := range []string{"solve", "session"} {
				run.Results = append(run.Results, ServeResult{
					Name: name, Shards: shards, TargetRPS: 50, AchievedRPS: 48,
					Requests: 100, P50Ms: 1, P99Ms: 2, MaxMs: 3,
				})
			}
		}
		rep := &ServeReport{}
		MergeServeRun(rep, run)
		return rep
	}
	if err := ValidateServeReport(mk()); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}

	rep := mk()
	rep.Schema = "nope"
	if err := ValidateServeReport(rep); err == nil {
		t.Error("wrong schema accepted")
	}

	rep = mk()
	rep.Runs[0].Results[0].RoutingErrors = 1
	if err := ValidateServeReport(rep); err == nil {
		t.Error("routing errors accepted")
	}

	rep = mk()
	rep.Runs[0].Results = rep.Runs[0].Results[:2] // only the 1-shard rows
	if err := ValidateServeReport(rep); err == nil {
		t.Error("single-topology report accepted")
	}

	rep = mk()
	rep.Runs = append(rep.Runs, rep.Runs[0])
	if err := ValidateServeReport(rep); err == nil {
		t.Error("duplicate environment accepted")
	}

	rep = mk()
	rep.Runs[0].Results[0].P99Ms = 0.5 // below p50
	if err := ValidateServeReport(rep); err == nil {
		t.Error("inconsistent latencies accepted")
	}
}
