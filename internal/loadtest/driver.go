package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"setupsched/internal/lb"
	"setupsched/sched"
	"setupsched/schedgen"
	"setupsched/shard"
)

// WorkloadConfig shapes the driven traffic.
type WorkloadConfig struct {
	// Duration bounds the drive (default 5s).
	Duration time.Duration
	// RPS is the target operation rate; the ticker paces operation
	// starts (default 50).  A stateless solve is one request; a session
	// operation is a four-request lifecycle (create, delta, solve,
	// delete), so the achieved request rate runs above the operation
	// target in proportion to SessionFraction.
	RPS int
	// Workers is the number of concurrent request loops (default 8).
	Workers int
	// SessionFraction is the share of operations that exercise the
	// session lifecycle instead of a stateless solve (default 0.25).
	SessionFraction float64
	// Instances is the instance pool size; a pool much smaller than the
	// request count makes shard result caches matter (default 64).
	Instances int
	// Seed makes the op sequence reproducible (default 1).
	Seed int64
	// Replicas must match the lb's ring vnode count for owner
	// prediction (0 = library default).
	Replicas int
}

func (c *WorkloadConfig) withDefaults() WorkloadConfig {
	out := *c
	if out.Duration <= 0 {
		out.Duration = 5 * time.Second
	}
	if out.RPS <= 0 {
		out.RPS = 50
	}
	if out.Workers <= 0 {
		out.Workers = 8
	}
	if out.SessionFraction < 0 || out.SessionFraction > 1 {
		out.SessionFraction = 0.25
	} else if out.SessionFraction == 0 {
		out.SessionFraction = 0.25
	}
	if out.Instances <= 0 {
		out.Instances = 64
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// OpStats aggregates one operation class.
type OpStats struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// WorkloadResult is one drive's outcome.
type WorkloadResult struct {
	Shards        int            `json:"shards"`
	TargetRPS     int            `json:"target_rps"`
	AchievedRPS   float64        `json:"achieved_rps"`
	Elapsed       time.Duration  `json:"-"`
	Solve         OpStats        `json:"solve"`
	Session       OpStats        `json:"session"`
	RoutingErrors int            `json:"routing_errors"`
	ShardHits     map[string]int `json:"shard_hits"`
}

// collector gathers per-request observations behind one lock.
type collector struct {
	mu            sync.Mutex
	solveMs       []float64
	sessionMs     []float64
	solveErrs     int
	sessionErrs   int
	routingErrors []string
	shardHits     map[string]int
}

func (c *collector) observe(session bool, ms float64, errored bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if session {
		c.sessionMs = append(c.sessionMs, ms)
		if errored {
			c.sessionErrs++
		}
	} else {
		c.solveMs = append(c.solveMs, ms)
		if errored {
			c.solveErrs++
		}
	}
}

func (c *collector) misroute(desc string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.routingErrors = append(c.routingErrors, desc)
}

func (c *collector) hit(shardID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.shardHits == nil {
		c.shardHits = make(map[string]int)
	}
	c.shardHits[shardID]++
}

// percentile returns the exact q-quantile of the sorted sample (nearest
// rank); harness sample counts are small enough to keep every point.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func opStats(ms []float64, errs int) OpStats {
	sort.Float64s(ms)
	st := OpStats{Requests: len(ms), Errors: errs}
	if len(ms) > 0 {
		st.P50Ms = percentile(ms, 0.50)
		st.P99Ms = percentile(ms, 0.99)
		st.MaxMs = ms[len(ms)-1]
	}
	return st
}

// workloadInstance builds the i-th pool instance: small enough that a
// solve is a few hundred microseconds, varied enough that fingerprints
// spread over the ring.
func workloadInstance(i int) *sched.Instance {
	return schedgen.Uniform(schedgen.Params{
		M: int64(2 + i%5), Classes: 3 + i%4, JobsPer: 3 + i%3,
		MaxSetup: 40, MaxJob: 60, Seed: int64(1000 + i),
	})
}

// RunWorkload drives the mixed workload against baseURL (normally the
// lb) and verifies every response's X-Sched-Shard echo against the
// harness's own ring over the shard ids — the zero-misroute proof the
// acceptance criteria ask for.  Shards lists the deployed topology;
// pass the cluster's.
func RunWorkload(ctx context.Context, baseURL string, shards []lb.Shard, cfg WorkloadConfig) (*WorkloadResult, error) {
	cfg = cfg.withDefaults()
	ids := make([]string, len(shards))
	for i, s := range shards {
		ids[i] = s.ID
	}
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = shard.DefaultReplicas
	}
	ring := shard.NewRing(replicas, ids...)

	instances := make([]*sched.Instance, cfg.Instances)
	bodies := make([][]byte, cfg.Instances)
	owners := make([]string, cfg.Instances)
	for i := range instances {
		instances[i] = workloadInstance(i)
		body, err := json.Marshal(map[string]any{"instance": instances[i]})
		if err != nil {
			return nil, err
		}
		bodies[i] = body
		owners[i] = ring.Owner(instances[i].Fingerprint())
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	client := &http.Client{Timeout: 30 * time.Second}
	col := &collector{}

	// The ticker paces request starts; a slow fleet makes workers fall
	// behind rather than the harness over-issuing (closed-loop with a
	// target rate, the usual load-test compromise on one box).
	interval := time.Second / time.Duration(cfg.RPS)
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
				}
				if rng.Float64() < cfg.SessionFraction {
					driveSession(ctx, client, baseURL, ring, rng, instances, col)
				} else {
					i := rng.Intn(len(bodies))
					driveSolve(ctx, client, baseURL, owners[i], bodies[i], col)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &WorkloadResult{
		Shards:        len(shards),
		TargetRPS:     cfg.RPS,
		Elapsed:       elapsed,
		Solve:         opStats(col.solveMs, col.solveErrs),
		Session:       opStats(col.sessionMs, col.sessionErrs),
		RoutingErrors: len(col.routingErrors),
		ShardHits:     col.shardHits,
	}
	total := res.Solve.Requests + res.Session.Requests
	if sec := elapsed.Seconds(); sec > 0 {
		res.AchievedRPS = float64(total) / sec
	}
	if total == 0 {
		return res, fmt.Errorf("loadtest: workload issued no requests")
	}
	for _, desc := range col.routingErrors[:min(3, len(col.routingErrors))] {
		fmt.Printf("loadtest: routing error: %s\n", desc)
	}
	return res, nil
}

// checkEcho verifies a response's shard echo against the predicted
// owner and records the hit.
func checkEcho(col *collector, resp *http.Response, want, what string) {
	got := resp.Header.Get("X-Sched-Shard")
	if got != "" {
		col.hit(got)
	}
	if got != want {
		col.misroute(fmt.Sprintf("%s answered by %q, ring owner is %q", what, got, want))
	}
}

func driveSolve(ctx context.Context, client *http.Client, baseURL, owner string, body []byte, col *collector) {
	start := time.Now()
	resp, err := postCtx(ctx, client, baseURL+"/v1/solve", body)
	ms := float64(time.Since(start).Microseconds()) / 1e3
	if err != nil {
		if ctx.Err() == nil {
			col.observe(false, ms, true)
		}
		return
	}
	defer resp.Body.Close()
	var out struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	col.observe(false, ms, resp.StatusCode != http.StatusOK || out.Error != "")
	checkEcho(col, resp, owner, "solve")
}

// driveSession runs one full session lifecycle — create, delta, warm
// solve, delete — through the proxy, each leg latency-tracked and each
// leg's echo verified against the id's ring owner.
func driveSession(ctx context.Context, client *http.Client, baseURL string, ring *shard.Ring, rng *rand.Rand, instances []*sched.Instance, col *collector) {
	in := instances[rng.Intn(len(instances))]
	body, _ := json.Marshal(map[string]any{"instance": in})

	start := time.Now()
	resp, err := postCtx(ctx, client, baseURL+"/v1/sessions", body)
	ms := float64(time.Since(start).Microseconds()) / 1e3
	if err != nil {
		if ctx.Err() == nil {
			col.observe(true, ms, true)
		}
		return
	}
	var info struct {
		SessionID string `json:"session_id"`
		Error     string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	created := resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated
	col.observe(true, ms, !created || info.Error != "" || info.SessionID == "")
	if !created || info.SessionID == "" {
		return
	}
	owner := ring.Owner(info.SessionID)
	checkEcho(col, resp, owner, "session create")

	steps := []struct {
		method, path string
		body         []byte
	}{
		{http.MethodPost, "/v1/sessions/" + info.SessionID + "/delta",
			mustJSON(map[string]any{"deltas": []map[string]any{{"op": "set_machines", "m": 2 + rng.Intn(6)}}})},
		{http.MethodPost, "/v1/sessions/" + info.SessionID + "/solve", []byte("{}")},
		{http.MethodDelete, "/v1/sessions/" + info.SessionID, nil},
	}
	for _, st := range steps {
		start := time.Now()
		req, err := http.NewRequestWithContext(ctx, st.method, baseURL+st.path, bytes.NewReader(st.body))
		if err != nil {
			col.observe(true, 0, true)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		ms := float64(time.Since(start).Microseconds()) / 1e3
		if err != nil {
			if ctx.Err() == nil {
				col.observe(true, ms, true)
			}
			return
		}
		var out struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		col.observe(true, ms, resp.StatusCode/100 != 2 || out.Error != "")
		checkEcho(col, resp, owner, st.method+" "+st.path)
	}
}

func postCtx(ctx context.Context, client *http.Client, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return client.Do(req)
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
