package loadtest

import (
	"errors"
	"fmt"
	"runtime"
	"time"
)

// BenchServeSchema versions the BENCH_serve.json wire format.  Like
// BENCH_core's v2 (internal/benchjson), the file holds runs keyed by
// environment so measurements from different boxes never get compared;
// within one run, results pair up by shard count — the point of the
// file is the 1-shard vs k-shard serving trajectory.
const BenchServeSchema = "setupsched/bench_serve/v1"

// ServeResult is one datapoint: one operation class driven against one
// topology.
type ServeResult struct {
	// Name is the operation class: "solve" (stateless, routed by
	// fingerprint) or "session" (lifecycle legs, routed by session id).
	Name string `json:"name"`
	// Shards is the topology size the workload ran against.
	Shards int `json:"shards"`
	// TargetRPS and AchievedRPS describe the drive's pacing: the target
	// paces mixed-workload operations, achieved counts completed
	// requests per second (shared by the run's result rows; a session
	// operation is a four-request lifecycle, so achieved legitimately
	// exceeds the target when sessions are in the mix).
	TargetRPS   int     `json:"target_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	// Requests/Errors count this class's operations.
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	// RoutingErrors counts responses whose shard echo contradicted the
	// ring.  The acceptance contract is zero; Validate enforces it.
	RoutingErrors int `json:"routing_errors"`
	// Exact latency percentiles in milliseconds (nearest rank over every
	// request, no sketching).
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// ServeRun is one environment's worth of datapoints.
type ServeRun struct {
	GoVersion     string        `json:"go_version"`
	GOOS          string        `json:"goos"`
	GOARCH        string        `json:"goarch"`
	GoMaxProcs    int           `json:"gomaxprocs"`
	NumCPU        int           `json:"num_cpu"`
	GeneratedUnix int64         `json:"generated_unix"`
	DurationSec   float64       `json:"duration_sec"`
	Workers       int           `json:"workers"`
	Results       []ServeResult `json:"results"`
}

// EnvKey identifies the measuring environment; regenerations replace
// the matching run rather than mixing boxes.
func (r *ServeRun) EnvKey() string {
	return fmt.Sprintf("%s/%s/%s/gomaxprocs=%d", r.GoVersion, r.GOOS, r.GOARCH, r.GoMaxProcs)
}

// ServeReport is the schema of BENCH_serve.json.
type ServeReport struct {
	Schema string     `json:"schema"`
	Runs   []ServeRun `json:"runs"`
}

// NewServeRun stamps the current environment.
func NewServeRun(duration time.Duration, workers int) ServeRun {
	return ServeRun{
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		GeneratedUnix: time.Now().Unix(),
		DurationSec:   duration.Seconds(),
		Workers:       workers,
	}
}

// AppendWorkload converts one drive's outcome into the run's result
// rows.
func (r *ServeRun) AppendWorkload(w *WorkloadResult) {
	for _, row := range []struct {
		name string
		st   OpStats
	}{{"solve", w.Solve}, {"session", w.Session}} {
		r.Results = append(r.Results, ServeResult{
			Name: row.name, Shards: w.Shards,
			TargetRPS: w.TargetRPS, AchievedRPS: w.AchievedRPS,
			Requests: row.st.Requests, Errors: row.st.Errors,
			RoutingErrors: w.RoutingErrors,
			P50Ms:         row.st.P50Ms, P99Ms: row.st.P99Ms, MaxMs: row.st.MaxMs,
		})
	}
}

// MergeServeRun inserts the run into the report, replacing an existing
// run with the same environment key.
func MergeServeRun(rep *ServeReport, run ServeRun) {
	rep.Schema = BenchServeSchema
	for i := range rep.Runs {
		if rep.Runs[i].EnvKey() == run.EnvKey() {
			rep.Runs[i] = run
			return
		}
	}
	rep.Runs = append(rep.Runs, run)
}

// ValidateServeReport checks the structural invariants of a BENCH_serve
// report: schema tag, environment fields, unique environment keys,
// well-formed results, zero routing errors everywhere, and — the
// trajectory discipline — at least two distinct shard counts per
// operation class in every run, so the file always answers "what did
// scaling out change".
func ValidateServeReport(rep *ServeReport) error {
	if rep == nil {
		return errors.New("loadtest: nil serve report")
	}
	if rep.Schema != BenchServeSchema {
		return fmt.Errorf("loadtest: schema %q, want %q (regenerate with schedload)", rep.Schema, BenchServeSchema)
	}
	if len(rep.Runs) == 0 {
		return errors.New("loadtest: serve report has no runs")
	}
	envs := map[string]bool{}
	for i := range rep.Runs {
		run := &rep.Runs[i]
		if err := validateServeRun(run); err != nil {
			return fmt.Errorf("loadtest: run %s: %w", run.EnvKey(), err)
		}
		if envs[run.EnvKey()] {
			return fmt.Errorf("loadtest: duplicate environment %s", run.EnvKey())
		}
		envs[run.EnvKey()] = true
	}
	return nil
}

func validateServeRun(run *ServeRun) error {
	if run.GoVersion == "" || run.GOOS == "" || run.GOARCH == "" || run.GoMaxProcs < 1 || run.NumCPU < 1 {
		return errors.New("missing environment fields")
	}
	if run.GeneratedUnix <= 0 || run.DurationSec <= 0 || run.Workers < 1 {
		return errors.New("missing run parameters")
	}
	if len(run.Results) == 0 {
		return errors.New("no results")
	}
	shardCounts := map[string]map[int]bool{}
	for _, r := range run.Results {
		if r.Name != "solve" && r.Name != "session" {
			return fmt.Errorf("result has unknown name %q", r.Name)
		}
		if r.Shards < 1 || r.TargetRPS < 1 || r.Requests < 1 {
			return fmt.Errorf("malformed result %+v", r)
		}
		if r.P50Ms <= 0 || r.P99Ms < r.P50Ms || r.MaxMs < r.P99Ms {
			return fmt.Errorf("result %s shards=%d has inconsistent latencies %+v", r.Name, r.Shards, r)
		}
		if r.RoutingErrors != 0 {
			return fmt.Errorf("result %s shards=%d recorded %d routing errors (contract is zero)", r.Name, r.Shards, r.RoutingErrors)
		}
		if shardCounts[r.Name] == nil {
			shardCounts[r.Name] = map[int]bool{}
		}
		if shardCounts[r.Name][r.Shards] {
			return fmt.Errorf("duplicate result %s shards=%d within one run", r.Name, r.Shards)
		}
		shardCounts[r.Name][r.Shards] = true
	}
	for name, counts := range shardCounts {
		if len(counts) < 2 {
			return fmt.Errorf("result %s was measured at only one shard count; the report must compare topologies", name)
		}
	}
	return nil
}
