package loadtest

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"setupsched/internal/lb"
	"setupsched/serve"
)

// MaybeRunChild is the harness's child-mode entry point.  When the
// SCHEDLOAD_CHILD environment variable is set the process is a cluster
// child spawned by StartCluster: it runs the designated role (a
// schedserve shard or the schedlb front tier) until SIGTERM/SIGINT and
// never returns.  Call it first thing in main (and in TestMain of any
// test binary that uses StartCluster without real binaries), before any
// flag parsing.
func MaybeRunChild() {
	role := os.Getenv("SCHEDLOAD_CHILD")
	if role == "" {
		return
	}
	addr := os.Getenv("SCHEDLOAD_ADDR")
	var handler http.Handler
	var err error
	switch role {
	case "shard":
		handler = serve.New(serve.Config{ShardID: os.Getenv("SCHEDLOAD_SHARD_ID")})
	case "lb":
		handler, err = newChildLB()
	default:
		err = fmt.Errorf("unknown SCHEDLOAD_CHILD role %q", role)
	}
	if err != nil {
		log.Fatalf("loadtest child: %v", err)
	}
	runChild(addr, handler)
	os.Exit(0)
}

func newChildLB() (http.Handler, error) {
	var shards []lb.Shard
	for _, spec := range strings.Split(os.Getenv("SCHEDLOAD_LB_SHARDS"), ",") {
		id, url, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("bad shard spec %q", spec)
		}
		shards = append(shards, lb.Shard{ID: id, URL: url})
	}
	replicas, _ := strconv.Atoi(os.Getenv("SCHEDLOAD_REPLICAS"))
	return lb.New(lb.Config{Shards: shards, Replicas: replicas})
}

func runChild(addr string, handler http.Handler) {
	srv := &http.Server{Addr: addr, Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("loadtest child: %v", err)
		}
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}
}
