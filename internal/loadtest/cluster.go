// Package loadtest is the multi-process load-test harness for the
// sharded schedserve deployment: it spawns k schedserve shards plus one
// schedlb front tier on the local box, drives a mixed solve/session
// workload through the proxy at a target request rate, verifies every
// response against the consistent-hash ring's prediction (the
// X-Sched-Shard echo), and reports exact latency percentiles in the
// committed BENCH_serve.json trajectory format (see bench.go).
//
// The harness runs real OS processes, not in-process handlers, so the
// measurement includes everything a deployment pays for: TCP, JSON
// (de)serialization, per-process schedulers and GCs.  Children are
// either the real schedserve/schedlb binaries (CI builds them first) or
// re-execs of the calling binary in a child mode, selected by the
// SCHEDLOAD_CHILD environment variable and entered via MaybeRunChild —
// cmd/schedload and this package's tests both install the hook, so
// `go run ./cmd/schedload` and `go test` work with nothing prebuilt.
package loadtest

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"time"

	"setupsched/internal/lb"
)

// ClusterConfig describes the topology to spawn.
type ClusterConfig struct {
	// Shards is the number of schedserve processes (>= 1).
	Shards int
	// ServeBin and LBBin are paths to real schedserve/schedlb binaries.
	// Empty means re-exec the current executable with the -child-shard /
	// -child-lb flags that cmd/schedload implements.
	ServeBin string
	LBBin    string
	// Replicas is the ring vnode count handed to the lb (0 = default).
	// The workload driver must predict owners with the same value.
	Replicas int
	// Logf receives child lifecycle messages; nil silences them.
	Logf func(format string, args ...any)
}

// Cluster is a running shard fleet plus its front tier.
type Cluster struct {
	// Shards lists the backend topology (ids s0..s{k-1} and base URLs).
	Shards []lb.Shard
	// LBURL is the front tier's base URL; all workload traffic goes here.
	LBURL string

	procs []*exec.Cmd
	logf  func(format string, args ...any)
}

// FreePort reserves an ephemeral localhost port and releases it for a
// child to bind.  The tiny bind race is the standard cost of spawning
// real processes; readiness polling below absorbs the rare loser.
func FreePort() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port, nil
}

// StartCluster spawns the shards and the lb and waits until every
// process answers /healthz.  Call Stop (typically deferred) to tear the
// fleet down; on error the partial fleet is already stopped.
func StartCluster(ctx context.Context, cfg ClusterConfig) (*Cluster, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("loadtest: need at least one shard, got %d", cfg.Shards)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("loadtest: resolving self executable: %w", err)
	}
	c := &Cluster{logf: logf}
	fail := func(err error) (*Cluster, error) {
		c.Stop()
		return nil, err
	}

	for i := 0; i < cfg.Shards; i++ {
		port, err := FreePort()
		if err != nil {
			return fail(err)
		}
		id := fmt.Sprintf("s%d", i)
		addr := fmt.Sprintf("127.0.0.1:%d", port)
		var cmd *exec.Cmd
		if cfg.ServeBin != "" {
			cmd = exec.Command(cfg.ServeBin, "-addr", addr, "-shard-id", id)
		} else {
			cmd = exec.Command(self)
			cmd.Env = append(os.Environ(),
				"SCHEDLOAD_CHILD=shard",
				"SCHEDLOAD_ADDR="+addr,
				"SCHEDLOAD_SHARD_ID="+id)
		}
		if err := c.startProc(cmd, id); err != nil {
			return fail(err)
		}
		c.Shards = append(c.Shards, lb.Shard{ID: id, URL: "http://" + addr})
	}

	port, err := FreePort()
	if err != nil {
		return fail(err)
	}
	lbAddr := fmt.Sprintf("127.0.0.1:%d", port)
	specs := make([]string, len(c.Shards))
	for i, s := range c.Shards {
		specs[i] = s.ID + "=" + s.URL
	}
	var cmd *exec.Cmd
	if cfg.LBBin != "" {
		args := []string{"-addr", lbAddr}
		if cfg.Replicas > 0 {
			args = append(args, "-replicas", fmt.Sprint(cfg.Replicas))
		}
		for _, s := range c.Shards {
			args = append(args, "-shard", s.ID+"="+s.URL)
		}
		cmd = exec.Command(cfg.LBBin, args...)
	} else {
		cmd = exec.Command(self)
		cmd.Env = append(os.Environ(),
			"SCHEDLOAD_CHILD=lb",
			"SCHEDLOAD_ADDR="+lbAddr,
			"SCHEDLOAD_LB_SHARDS="+strings.Join(specs, ","),
			fmt.Sprintf("SCHEDLOAD_REPLICAS=%d", cfg.Replicas))
	}
	if err := c.startProc(cmd, "lb"); err != nil {
		return fail(err)
	}
	c.LBURL = "http://" + lbAddr

	// Readiness: every shard first (the lb's aggregated health needs
	// them), then the lb itself reporting the whole fleet healthy.
	for _, s := range c.Shards {
		if err := waitReady(ctx, s.URL+"/healthz"); err != nil {
			return fail(fmt.Errorf("loadtest: shard %s not ready: %w", s.ID, err))
		}
	}
	if err := waitReady(ctx, c.LBURL+"/healthz"); err != nil {
		return fail(fmt.Errorf("loadtest: lb not ready: %w", err))
	}
	logf("cluster up: %d shards behind %s", len(c.Shards), c.LBURL)
	return c, nil
}

func (c *Cluster) startProc(cmd *exec.Cmd, name string) error {
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("loadtest: starting %s: %w", name, err)
	}
	c.logf("started %s (pid %d)", name, cmd.Process.Pid)
	c.procs = append(c.procs, cmd)
	return nil
}

// Stop terminates the fleet: SIGTERM first so shards run their graceful
// shutdown (session snapshot flush included), SIGKILL after a grace
// period.
func (c *Cluster) Stop() {
	for _, p := range c.procs {
		if p.Process != nil {
			p.Process.Signal(os.Interrupt)
		}
	}
	deadline := time.After(5 * time.Second)
	done := make(chan struct{})
	go func() {
		for _, p := range c.procs {
			p.Wait()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-deadline:
		for _, p := range c.procs {
			if p.Process != nil {
				p.Process.Kill()
			}
		}
		<-done
	}
	c.procs = nil
}

// waitReady polls a health endpoint until it answers 200.
func waitReady(ctx context.Context, url string) error {
	ctx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	client := &http.Client{Timeout: time.Second}
	var last error
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Errorf("status %d", resp.StatusCode)
		} else {
			last = err
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("%w (last probe: %v)", ctx.Err(), last)
		case <-time.After(50 * time.Millisecond):
		}
	}
}
