package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"setupsched/internal/lb"
	"setupsched/obs"
	"setupsched/shard"
)

// Trace report: the harness mints one sampled W3C trace context per
// solve, drives the requests through the lb, then pulls BOTH flight
// recorders — the proxy's and every shard's — and joins them by trace
// id into an end-to-end latency attribution.  Because only durations
// cross the process boundary (never timestamps), the segment algebra is
// clock-skew free:
//
//	e2e        = lb root span
//	lb_routing = root − upstream hop
//	network    = upstream hop − shard handler
//	queue      = shard handler's queue child (arrival → solve start)
//	prepare / search / build = the solve tree's phases
//	solve_other = handler − queue − (prepare + search + build)
//
// which sums back to the lb root exactly, so the per-request sum check
// guards the join logic itself.  The placement check — every minted
// trace id appears in the recorder of exactly the ring-predicted shard
// — is the tracing-tier version of the X-Sched-Shard echo proof.

// TraceReportConfig shapes the traced drive.
type TraceReportConfig struct {
	// Requests is the number of traced solves (default 120 — deliberately
	// below obs.DefaultFlightCapacity so no trace rotates out of a
	// recorder before the harness reads it back).
	Requests int
	// Instances is the instance pool size (default 32).
	Instances int
	// Replicas must match the lb's ring vnode count (0 = library default).
	Replicas int
	// Seed seeds the trace-id source (default 1).
	Seed uint64
}

func (c *TraceReportConfig) withDefaults() TraceReportConfig {
	out := *c
	if out.Requests <= 0 {
		out.Requests = 120
	}
	if out.Requests > obs.DefaultFlightCapacity {
		out.Requests = obs.DefaultFlightCapacity
	}
	if out.Instances <= 0 {
		out.Instances = 32
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// SegmentStats summarizes one attribution segment over all joined
// requests (nearest-rank percentiles, milliseconds).
type SegmentStats struct {
	Name  string  `json:"name"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// TraceSegments is the report's fixed segment order.
var TraceSegments = []string{
	"lb_routing", "network", "queue", "prepare", "search", "build", "solve_other",
}

// TraceReport is the joined attribution outcome.
type TraceReport struct {
	Shards          int            `json:"shards"`
	Requests        int            `json:"requests"`
	Joined          int            `json:"joined"`
	PlacementErrors []string       `json:"placement_errors,omitempty"`
	MaxSumErrPct    float64        `json:"max_sum_err_pct"`
	E2E             SegmentStats   `json:"e2e"`
	Segments        []SegmentStats `json:"segments"`
}

// Check asserts the report's invariants: every minted trace joined,
// landed on exactly the predicted shard, and its segments sum to within
// 5% of the measured end-to-end latency.
func (r *TraceReport) Check() error {
	if r.Joined != r.Requests {
		return fmt.Errorf("trace report: joined %d/%d traces across both recorders", r.Joined, r.Requests)
	}
	if len(r.PlacementErrors) > 0 {
		return fmt.Errorf("trace report: %d placement errors (first: %s)",
			len(r.PlacementErrors), r.PlacementErrors[0])
	}
	if r.MaxSumErrPct > 5 {
		return fmt.Errorf("trace report: segment sum off by %.2f%% from e2e (want ≤ 5%%)", r.MaxSumErrPct)
	}
	return nil
}

// RunTraceReport drives cfg.Requests traced solves through the lb and
// joins the lb-side and shard-side flight recorders into a TraceReport.
func RunTraceReport(ctx context.Context, lbURL string, shards []lb.Shard, cfg TraceReportConfig) (*TraceReport, error) {
	cfg = cfg.withDefaults()
	ids := make([]string, len(shards))
	for i, s := range shards {
		ids[i] = s.ID
	}
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = shard.DefaultReplicas
	}
	ring := shard.NewRing(replicas, ids...)
	src := obs.NewIDSource(cfg.Seed)
	client := &http.Client{Timeout: 30 * time.Second}

	type issued struct {
		traceID string
		owner   string
	}
	reqs := make([]issued, 0, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		in := workloadInstance(i % cfg.Instances)
		body, err := json.Marshal(map[string]any{"instance": in})
		if err != nil {
			return nil, err
		}
		tc := src.NewTrace()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, lbURL+"/v1/solve", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		obs.InjectTrace(req.Header, tc)
		resp, err := client.Do(req)
		if err != nil {
			return nil, fmt.Errorf("traced solve %d: %w", i, err)
		}
		var out struct {
			Error   string `json:"error"`
			TraceID string `json:"trace_id"`
		}
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || out.Error != "" {
			return nil, fmt.Errorf("traced solve %d: status %d error %q", i, resp.StatusCode, out.Error)
		}
		if out.TraceID != tc.TraceID.String() {
			return nil, fmt.Errorf("traced solve %d: response trace id %q, minted %q", i, out.TraceID, tc.TraceID)
		}
		reqs = append(reqs, issued{traceID: out.TraceID, owner: ring.Owner(in.Fingerprint())})
	}

	lbTraces, err := fetchTraces(ctx, client, lbURL, 2*cfg.Requests)
	if err != nil {
		return nil, fmt.Errorf("fetching lb recorder: %w", err)
	}
	lbByID := make(map[string]*obs.RecordedTrace, len(lbTraces))
	for i := range lbTraces {
		lbByID[lbTraces[i].TraceID] = &lbTraces[i]
	}
	shardByID := make(map[string]map[string]*obs.RecordedTrace, len(shards))
	for _, s := range shards {
		traces, err := fetchTraces(ctx, client, s.URL, 2*cfg.Requests)
		if err != nil {
			return nil, fmt.Errorf("fetching shard %s recorder: %w", s.ID, err)
		}
		m := make(map[string]*obs.RecordedTrace, len(traces))
		for i := range traces {
			m[traces[i].TraceID] = &traces[i]
		}
		shardByID[s.ID] = m
	}

	rep := &TraceReport{Shards: len(shards), Requests: len(reqs)}
	samples := map[string][]float64{}
	var e2e []float64
	for _, rq := range reqs {
		for id, m := range shardByID {
			if _, ok := m[rq.traceID]; ok && id != rq.owner {
				rep.PlacementErrors = append(rep.PlacementErrors,
					fmt.Sprintf("trace %s found on shard %s, ring owner is %s", rq.traceID, id, rq.owner))
			}
		}
		lt, okLB := lbByID[rq.traceID]
		st, okShard := shardByID[rq.owner][rq.traceID]
		if !okLB || !okShard {
			rep.PlacementErrors = append(rep.PlacementErrors,
				fmt.Sprintf("trace %s missing from %s recorder", rq.traceID, missingSide(okLB, okShard, rq.owner)))
			continue
		}
		seg, total, ok := attribute(lt, st)
		if !ok {
			rep.PlacementErrors = append(rep.PlacementErrors,
				fmt.Sprintf("trace %s has a malformed span tree", rq.traceID))
			continue
		}
		rep.Joined++
		e2eUS := lt.Root.DurUS
		e2e = append(e2e, float64(e2eUS)/1e3)
		for name, us := range seg {
			samples[name] = append(samples[name], float64(us)/1e3)
		}
		if e2eUS > 0 {
			if pct := 100 * absF(float64(total-e2eUS)) / float64(e2eUS); pct > rep.MaxSumErrPct {
				rep.MaxSumErrPct = pct
			}
		}
	}
	rep.E2E = segStats("e2e", e2e)
	for _, name := range TraceSegments {
		rep.Segments = append(rep.Segments, segStats(name, samples[name]))
	}
	return rep, nil
}

// attribute splits one joined trace into the report's segments
// (microseconds) and returns their sum for the e2e cross-check.
func attribute(lt, st *obs.RecordedTrace) (map[string]int64, int64, bool) {
	hop := lt.Root.Child("upstream")
	handler := st.Root
	if hop == nil || handler == nil || handler.Name != "handler" {
		return nil, 0, false
	}
	queue := handler.Child("queue")
	solve := handler.Child("solve")
	if queue == nil || solve == nil {
		return nil, 0, false
	}
	phase := func(name string) int64 {
		if c := solve.Child(name); c != nil {
			return c.DurUS
		}
		return 0
	}
	seg := map[string]int64{
		"lb_routing": clampUS(lt.Root.DurUS - hop.DurUS),
		"network":    clampUS(hop.DurUS - handler.DurUS),
		"queue":      queue.DurUS,
		"prepare":    phase("prepare"),
		"search":     phase("search"),
		"build":      phase("build"),
	}
	seg["solve_other"] = clampUS(handler.DurUS - queue.DurUS - seg["prepare"] - seg["search"] - seg["build"])
	var total int64
	for _, us := range seg {
		total += us
	}
	return seg, total, true
}

func clampUS(us int64) int64 {
	if us < 0 {
		return 0
	}
	return us
}

func absF(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func missingSide(okLB, okShard bool, owner string) string {
	switch {
	case !okLB && !okShard:
		return "both the lb and shard " + owner
	case !okLB:
		return "the lb"
	default:
		return "shard " + owner
	}
}

func segStats(name string, ms []float64) SegmentStats {
	sort.Float64s(ms)
	st := SegmentStats{Name: name}
	if len(ms) > 0 {
		st.P50Ms = percentile(ms, 0.50)
		st.P99Ms = percentile(ms, 0.99)
		st.MaxMs = ms[len(ms)-1]
	}
	return st
}

// fetchTraces pulls one process's flight recorder.
func fetchTraces(ctx context.Context, client *http.Client, baseURL string, limit int) ([]obs.RecordedTrace, error) {
	url := fmt.Sprintf("%s/v1/debug/traces?limit=%d", baseURL, limit)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	var out obs.TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Traces, nil
}
