// Package num128 provides exact 128-bit integer helpers used by the
// scheduling algorithms to compare and divide products of 64-bit
// quantities without overflow.
//
// The approximation guarantees of the algorithms in this module depend on
// exact accept/reject decisions for rational makespan guesses T = p/q.
// Every such decision reduces to comparing or dividing products of two
// int64 values, which fit in 128 bits.  This package wraps math/bits to
// perform those operations exactly.
package num128

import (
	"math"
	"math/bits"
)

// prod is a signed 128-bit value represented as a magnitude and a sign.
type prod struct {
	hi, lo uint64
	neg    bool
}

// mag returns the magnitude of x as a uint64.  It is correct for
// math.MinInt64 as well.
func mag(x int64) uint64 {
	if x >= 0 {
		return uint64(x)
	}
	return ^uint64(x) + 1
}

// mul computes the exact signed 128-bit product a*b.
func mul(a, b int64) prod {
	hi, lo := bits.Mul64(mag(a), mag(b))
	neg := (a < 0) != (b < 0)
	if hi == 0 && lo == 0 {
		neg = false
	}
	return prod{hi, lo, neg}
}

// cmpMag compares the magnitudes of two 128-bit products.
func cmpMag(p, q prod) int {
	switch {
	case p.hi != q.hi:
		if p.hi < q.hi {
			return -1
		}
		return 1
	case p.lo != q.lo:
		if p.lo < q.lo {
			return -1
		}
		return 1
	}
	return 0
}

// CmpProd returns the sign of a*b - c*d, computed exactly.
func CmpProd(a, b, c, d int64) int {
	p, q := mul(a, b), mul(c, d)
	if p.neg != q.neg {
		if p.neg {
			return -1
		}
		return 1
	}
	cm := cmpMag(p, q)
	if p.neg {
		return -cm
	}
	return cm
}

// CeilDiv returns ceil(a*b/q) for a, b >= 0 and q > 0.
// The boolean result is false if the quotient does not fit in an int64.
func CeilDiv(a, b, q int64) (int64, bool) {
	if a < 0 || b < 0 || q <= 0 {
		return 0, false
	}
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	qq := uint64(q)
	if hi >= qq {
		return 0, false // quotient >= 2^64
	}
	quo, rem := bits.Div64(hi, lo, qq)
	if rem > 0 {
		if quo == math.MaxUint64 {
			return 0, false
		}
		quo++
	}
	if quo > math.MaxInt64 {
		return 0, false
	}
	return int64(quo), true
}

// FloorDiv returns floor(a*b/q) for a, b >= 0 and q > 0.
// The boolean result is false if the quotient does not fit in an int64.
func FloorDiv(a, b, q int64) (int64, bool) {
	if a < 0 || b < 0 || q <= 0 {
		return 0, false
	}
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	qq := uint64(q)
	if hi >= qq {
		return 0, false
	}
	quo, _ := bits.Div64(hi, lo, qq)
	if quo > math.MaxInt64 {
		return 0, false
	}
	return int64(quo), true
}

// Acc is an unsigned 128-bit accumulator.  The zero value is ready to use.
// It saturates at 2^128-1; Saturated reports whether saturation occurred.
type Acc struct {
	hi, lo    uint64
	saturated bool
}

// AddInt adds a non-negative int64 to the accumulator.
func (a *Acc) AddInt(x int64) {
	if x < 0 {
		panic("num128: Acc.AddInt of negative value")
	}
	var carry uint64
	a.lo, carry = bits.Add64(a.lo, uint64(x), 0)
	a.hi, carry = bits.Add64(a.hi, 0, carry)
	if carry != 0 {
		a.saturate()
	}
}

// AddProd adds x*y for non-negative x, y to the accumulator.
func (a *Acc) AddProd(x, y int64) {
	if x < 0 || y < 0 {
		panic("num128: Acc.AddProd of negative value")
	}
	hi, lo := bits.Mul64(uint64(x), uint64(y))
	var carry uint64
	a.lo, carry = bits.Add64(a.lo, lo, 0)
	a.hi, carry = bits.Add64(a.hi, hi, carry)
	if carry != 0 {
		a.saturate()
	}
}

func (a *Acc) saturate() {
	a.hi, a.lo = math.MaxUint64, math.MaxUint64
	a.saturated = true
}

// Saturated reports whether the accumulator overflowed 128 bits.
func (a *Acc) Saturated() bool { return a.saturated }

// CmpProd returns the sign of acc - x*y for non-negative x, y.
func (a *Acc) CmpProd(x, y int64) int {
	if x < 0 || y < 0 {
		panic("num128: Acc.CmpProd of negative value")
	}
	hi, lo := bits.Mul64(uint64(x), uint64(y))
	return cmpMag(prod{a.hi, a.lo, false}, prod{hi, lo, false})
}

// Int64 returns the accumulator value if it fits in an int64.
func (a *Acc) Int64() (int64, bool) {
	if a.hi != 0 || a.lo > math.MaxInt64 {
		return 0, false
	}
	return int64(a.lo), true
}

// AddAcc adds another accumulator's value.
func (a *Acc) AddAcc(b *Acc) {
	var carry uint64
	a.lo, carry = bits.Add64(a.lo, b.lo, 0)
	a.hi, carry = bits.Add64(a.hi, b.hi, carry)
	if carry != 0 || b.saturated {
		a.saturate()
	}
}

// Cmp compares two accumulators, returning -1, 0 or 1.
func (a *Acc) Cmp(b *Acc) int {
	return cmpMag(prod{a.hi, a.lo, false}, prod{b.hi, b.lo, false})
}

// Minus returns a - b as an int64; the boolean result is false when a < b
// or the difference does not fit in an int64.
func (a *Acc) Minus(b *Acc) (int64, bool) {
	if a.Cmp(b) < 0 {
		return 0, false
	}
	lo, borrow := bits.Sub64(a.lo, b.lo, 0)
	hi, _ := bits.Sub64(a.hi, b.hi, borrow)
	if hi != 0 || lo > math.MaxInt64 {
		return 0, false
	}
	return int64(lo), true
}
