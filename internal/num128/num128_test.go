package num128

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func bigProd(a, b int64) *big.Int {
	return new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
}

func TestCmpProdAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		a, b, c, d := rng.Int63(), rng.Int63(), rng.Int63(), rng.Int63()
		switch i % 4 {
		case 1:
			a, c = -a, -c
		case 2:
			b, d = -b, -d
		case 3:
			a, d = -a, -d
		}
		want := bigProd(a, b).Cmp(bigProd(c, d))
		if got := CmpProd(a, b, c, d); got != want {
			t.Fatalf("CmpProd(%d,%d,%d,%d) = %d, want %d", a, b, c, d, got, want)
		}
	}
}

func TestCmpProdEdges(t *testing.T) {
	cases := [][4]int64{
		{0, 0, 0, 0},
		{math.MaxInt64, math.MaxInt64, math.MaxInt64, math.MaxInt64},
		{math.MinInt64, math.MinInt64, math.MaxInt64, math.MaxInt64},
		{math.MinInt64, 1, math.MinInt64, 1},
		{math.MinInt64, -1, math.MaxInt64, 1},
		{1, -1, -1, 1},
		{0, math.MaxInt64, 0, math.MinInt64},
	}
	for _, c := range cases {
		want := bigProd(c[0], c[1]).Cmp(bigProd(c[2], c[3]))
		if got := CmpProd(c[0], c[1], c[2], c[3]); got != want {
			t.Errorf("CmpProd(%v) = %d, want %d", c, got, want)
		}
	}
}

func TestCeilFloorDivAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		a := rng.Int63n(1 << 50)
		b := rng.Int63n(1 << 50)
		q := rng.Int63n(1<<40) + 1
		p := bigProd(a, b)
		quo, rem := new(big.Int).QuoRem(p, big.NewInt(q), new(big.Int))
		wantFloor := quo.Int64()
		wantCeil := wantFloor
		if rem.Sign() > 0 {
			wantCeil++
		}
		fitsFloor := quo.IsInt64()
		gf, okf := FloorDiv(a, b, q)
		if okf != fitsFloor || (okf && gf != wantFloor) {
			t.Fatalf("FloorDiv(%d,%d,%d) = (%d,%v), want (%d,%v)", a, b, q, gf, okf, wantFloor, fitsFloor)
		}
		gc, okc := CeilDiv(a, b, q)
		if okc && gc != wantCeil {
			t.Fatalf("CeilDiv(%d,%d,%d) = %d, want %d", a, b, q, gc, wantCeil)
		}
	}
}

func TestDivRejectsBadInput(t *testing.T) {
	if _, ok := CeilDiv(-1, 1, 1); ok {
		t.Error("CeilDiv accepted negative a")
	}
	if _, ok := CeilDiv(1, -1, 1); ok {
		t.Error("CeilDiv accepted negative b")
	}
	if _, ok := CeilDiv(1, 1, 0); ok {
		t.Error("CeilDiv accepted zero divisor")
	}
	if _, ok := FloorDiv(1, 1, -3); ok {
		t.Error("FloorDiv accepted negative divisor")
	}
	// Quotient overflow.
	if _, ok := CeilDiv(math.MaxInt64, math.MaxInt64, 1); ok {
		t.Error("CeilDiv accepted overflowing quotient")
	}
	if v, ok := FloorDiv(math.MaxInt64, 2, 2); !ok || v != math.MaxInt64 {
		t.Errorf("FloorDiv(MaxInt64,2,2) = (%d,%v)", v, ok)
	}
}

func TestCeilDivExactBoundary(t *testing.T) {
	// Exact division must not round up.
	if v, ok := CeilDiv(6, 7, 21); !ok || v != 2 {
		t.Errorf("CeilDiv(6,7,21) = (%d,%v), want (2,true)", v, ok)
	}
	if v, ok := CeilDiv(6, 7, 20); !ok || v != 3 {
		t.Errorf("CeilDiv(6,7,20) = (%d,%v), want (3,true)", v, ok)
	}
}

func TestAccBasic(t *testing.T) {
	var a Acc
	a.AddInt(5)
	a.AddProd(3, 4)
	if got := a.CmpProd(17, 1); got != 0 {
		t.Errorf("acc != 17 (cmp=%d)", got)
	}
	if got := a.CmpProd(4, 4); got != 1 {
		t.Errorf("acc <= 16 (cmp=%d)", got)
	}
	if got := a.CmpProd(3, 6); got != -1 {
		t.Errorf("acc >= 18 (cmp=%d)", got)
	}
	v, ok := a.Int64()
	if !ok || v != 17 {
		t.Errorf("Int64 = (%d,%v)", v, ok)
	}
}

func TestAccLarge(t *testing.T) {
	var a Acc
	for i := 0; i < 3; i++ {
		a.AddProd(math.MaxInt64, math.MaxInt64)
	}
	if a.Saturated() {
		t.Fatal("acc saturated too early: 3*(2^63-1)^2 < 2^128")
	}
	if _, ok := a.Int64(); ok {
		t.Error("Int64 should not fit")
	}
	if got := a.CmpProd(math.MaxInt64, math.MaxInt64); got != 1 {
		t.Errorf("CmpProd = %d, want 1", got)
	}
}

func TestAccSaturation(t *testing.T) {
	var a Acc
	for i := 0; i < 100 && !a.Saturated(); i++ {
		a.AddProd(math.MaxInt64, math.MaxInt64)
		a.AddProd(math.MaxInt64, math.MaxInt64)
		a.AddProd(math.MaxInt64, math.MaxInt64)
		a.AddProd(math.MaxInt64, math.MaxInt64)
		a.AddProd(math.MaxInt64, math.MaxInt64)
		a.AddProd(math.MaxInt64, math.MaxInt64)
		a.AddProd(math.MaxInt64, math.MaxInt64)
		a.AddProd(math.MaxInt64, math.MaxInt64)
	}
	if !a.Saturated() {
		t.Fatal("acc never saturated")
	}
	// Saturated accumulator compares greater than any product.
	if got := a.CmpProd(math.MaxInt64, math.MaxInt64); got != 1 {
		t.Errorf("saturated CmpProd = %d, want 1", got)
	}
}

func TestAccPanicsOnNegative(t *testing.T) {
	for name, f := range map[string]func(a *Acc){
		"AddInt":   func(a *Acc) { a.AddInt(-1) },
		"AddProd":  func(a *Acc) { a.AddProd(-1, 2) },
		"CmpProd":  func(a *Acc) { a.CmpProd(-1, 2) },
		"AddProd2": func(a *Acc) { a.AddProd(2, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on negative input", name)
				}
			}()
			var a Acc
			f(&a)
		}()
	}
}

func TestQuickCmpProdAntisymmetry(t *testing.T) {
	f := func(a, b, c, d int64) bool {
		return CmpProd(a, b, c, d) == -CmpProd(c, d, a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCmpProdCommutes(t *testing.T) {
	f := func(a, b int64) bool {
		return CmpProd(a, b, b, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCeilGeqFloor(t *testing.T) {
	f := func(a, b, q int64) bool {
		if a < 0 {
			a = -(a + 1)
		}
		if b < 0 {
			b = -(b + 1)
		}
		if q <= 0 {
			q = -(q - 1)
		}
		fl, okf := FloorDiv(a, b, q)
		cl, okc := CeilDiv(a, b, q)
		if !okf {
			return true
		}
		if !okc {
			// ceil may overflow where floor fits only at MaxInt64
			return fl == math.MaxInt64
		}
		return cl == fl || cl == fl+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
