package render

import (
	"strings"
	"testing"

	"setupsched/sched"
)

func demoSchedule() (*sched.Instance, *sched.Schedule) {
	in := &sched.Instance{M: 3, Classes: []sched.Class{
		{Setup: 2, Jobs: []int64{4, 4}},
		{Setup: 1, Jobs: []int64{3}},
	}}
	s := &sched.Schedule{Variant: sched.NonPreemptive, T: sched.R(8)}
	b := sched.NewMachineBuilder()
	b.Place(sched.SlotSetup, 0, -1, sched.R(2))
	b.Place(sched.SlotJob, 0, 0, sched.R(4))
	b.Place(sched.SlotJob, 0, 1, sched.R(4))
	s.AddMachine(b.Slots())
	b = sched.NewMachineBuilder()
	b.Place(sched.SlotSetup, 1, -1, sched.R(1))
	b.Place(sched.SlotJob, 1, 0, sched.R(3))
	s.AddMachine(b.Slots())
	return in, s
}

func TestGanttBasics(t *testing.T) {
	in, s := demoSchedule()
	out := Gantt(s, &Options{Width: 60, T: sched.R(8)})
	if !strings.Contains(out, "m0") || !strings.Contains(out, "m1") {
		t.Errorf("missing machine rows:\n%s", out)
	}
	if !strings.Contains(out, "A") || !strings.Contains(out, "a") {
		t.Errorf("missing class-0 setup/job glyphs:\n%s", out)
	}
	if !strings.Contains(out, "T/2") || !strings.Contains(out, "3T/2") {
		t.Errorf("missing grid labels:\n%s", out)
	}
	leg := Legend(in)
	if !strings.Contains(leg, "a(s=2,P=8)") {
		t.Errorf("legend broken: %q", leg)
	}
}

func TestGanttRunsAndEliding(t *testing.T) {
	s := &sched.Schedule{Variant: sched.Splittable, T: sched.R(4)}
	b := sched.NewMachineBuilder()
	b.Place(sched.SlotSetup, 0, -1, sched.R(1))
	b.Place(sched.SlotJob, 0, 0, sched.R(2))
	s.AddRun(500, b.Slots())
	for i := 0; i < 40; i++ {
		s.AddMachine(b.Slots())
	}
	out := Gantt(s, &Options{Width: 40, MaxMachines: 10})
	if !strings.Contains(out, "x500") {
		t.Errorf("run multiplicity not shown:\n%s", out)
	}
	if !strings.Contains(out, "elided") {
		t.Errorf("eliding marker missing:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	s := &sched.Schedule{}
	if out := Gantt(s, nil); !strings.Contains(out, "empty") {
		t.Errorf("empty schedule rendering: %q", out)
	}
}

func TestGanttDefaultOptions(t *testing.T) {
	_, s := demoSchedule()
	out := Gantt(s, nil)
	if len(out) == 0 || !strings.Contains(out, "|") {
		t.Errorf("default rendering broken:\n%s", out)
	}
}
