// Package render draws schedules as ASCII Gantt charts, machine per row,
// with grid marks at the fractions of the makespan guess T the paper's
// figures annotate (T/4, T/2, 3/4T, T, 5/4T, 3/2T).
//
// Setups are drawn as uppercase letters and job load as lowercase letters,
// both keyed by class (class 0 = 'A'/'a', class 1 = 'B'/'b', ...), so the
// charts can be compared directly with Figures 1-13 of the paper.
package render

import (
	"fmt"
	"strings"

	"setupsched/sched"
)

// Options configure the renderer.
type Options struct {
	// Width is the chart width in characters (default 96).
	Width int
	// MaxMachines caps the number of rendered machine rows (default 24);
	// larger schedules elide the middle.
	MaxMachines int
	// T draws grid marks at k*T/4; when zero the schedule's own T is used.
	T sched.Rat
}

func (o *Options) defaults(s *sched.Schedule) Options {
	out := Options{Width: 96, MaxMachines: 24, T: s.T}
	if o != nil {
		if o.Width > 16 {
			out.Width = o.Width
		}
		if o.MaxMachines > 0 {
			out.MaxMachines = o.MaxMachines
		}
		if o.T.Sign() > 0 {
			out.T = o.T
		}
	}
	return out
}

func classChar(class int, setup bool) byte {
	base := byte('a')
	if setup {
		base = 'A'
	}
	return base + byte(class%26)
}

// Gantt renders the schedule.
func Gantt(s *sched.Schedule, opts *Options) string {
	o := opts.defaults(s)
	horizon := s.Makespan()
	if o.T.Sign() > 0 {
		horizon = sched.MaxRat(horizon, o.T.MulInt(3).Half())
	}
	if horizon.Sign() <= 0 {
		return "(empty schedule)\n"
	}
	hf := horizon.Float64()
	scale := func(t sched.Rat) int {
		x := int(t.Float64() / hf * float64(o.Width))
		if x > o.Width {
			x = o.Width
		}
		if x < 0 {
			x = 0
		}
		return x
	}

	var sb strings.Builder
	sb.WriteString(ruler(o, hf, scale))

	rows := 0
	total := len(s.Runs)
	for ri, run := range s.Runs {
		if rows >= o.MaxMachines && ri < total-1 {
			sb.WriteString(fmt.Sprintf("  ...   (%d more machine rows elided)\n", total-ri))
			break
		}
		line := make([]byte, o.Width)
		for i := range line {
			line[i] = '.'
		}
		for _, sl := range run.Slots {
			a, b := scale(sl.Start), scale(sl.End)
			if b == a && b < o.Width {
				b = a + 1
			}
			ch := classChar(sl.Class, sl.Kind == sched.SlotSetup)
			for i := a; i < b && i < o.Width; i++ {
				line[i] = ch
			}
		}
		label := fmt.Sprintf("m%-4d", ri)
		if run.Count > 1 {
			label = fmt.Sprintf("x%-4d", run.Count)
		}
		sb.WriteString(label + "|" + string(line) + "|\n")
		rows++
	}
	return sb.String()
}

// ruler draws the header with marks at quarters of T.
func ruler(o Options, hf float64, scale func(sched.Rat) int) string {
	line := make([]byte, o.Width+1)
	for i := range line {
		line[i] = ' '
	}
	labels := make([]byte, o.Width+8)
	for i := range labels {
		labels[i] = ' '
	}
	if o.T.Sign() > 0 {
		for k := int64(1); k <= 6; k++ {
			pos := scale(o.T.MulInt(k).DivInt(4))
			if pos <= o.Width {
				line[pos] = '|'
				var name string
				switch k {
				case 1:
					name = "T/4"
				case 2:
					name = "T/2"
				case 3:
					name = "3T/4"
				case 4:
					name = "T"
				case 5:
					name = "5T/4"
				case 6:
					name = "3T/2"
				}
				copy(labels[min(pos, len(labels)-len(name)):], name)
			}
		}
	}
	return "     " + strings.TrimRight(string(labels), " ") + "\n" +
		"     +" + strings.TrimRight(string(line), " ") + "\n"
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Legend lists the class-letter mapping with setup and work totals.
func Legend(in *sched.Instance) string {
	var sb strings.Builder
	sb.WriteString("classes: ")
	for i := range in.Classes {
		if i > 0 {
			sb.WriteString(", ")
		}
		if i >= 12 {
			sb.WriteString(fmt.Sprintf("... (%d total)", len(in.Classes)))
			break
		}
		sb.WriteString(fmt.Sprintf("%c(s=%d,P=%d)", classChar(i, false), in.Classes[i].Setup, in.Classes[i].Work()))
	}
	sb.WriteString("\n")
	return sb.String()
}
