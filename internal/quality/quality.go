// Package quality measures the realized approximation quality of the
// paper's non-preemptive algorithms against the exact reference backend
// (the public RefExact SolveAll run) and emits/validates the
// machine-readable BENCH_quality.json report: per (schedgen family,
// algorithm) distributions of the measured makespan/OPT ratio, with the
// worst ratio kept as an exact rational so guarantee checks and the CI
// regression gate never depend on float rounding.
//
// Where the reference backend converges the recorded ratio is the true
// realized ratio; where its node budget runs out, the certified bracket's
// lower end still gives a sound upper bound on the ratio, tracked
// separately as worst_bound.  cmd/schedquality drives this package as a
// CLI; quality_test.go drives the same entry point as the tier-1
// guarantee table.
package quality

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"setupsched"
	"setupsched/internal/core"
	"setupsched/sched"
	"setupsched/schedgen"
)

// Schema versions the BENCH_quality.json wire format.
const Schema = "setupsched/bench_quality/v1"

// DefaultEpsilon is the eps-search accuracy measured when Config.Epsilon
// is zero.
const DefaultEpsilon = 1e-3

// Spec is one measured algorithm (all non-preemptive: that is the variant
// the exact reference solves).
type Spec struct {
	Name      string
	Algorithm setupsched.Algorithm
}

// Specs returns the measured algorithms in report order.
func Specs() []Spec {
	return []Spec{
		{"nonp/2approx", setupsched.TwoApprox},
		{"nonp/eps", setupsched.EpsilonSearch},
		{"nonp/exact32", setupsched.Exact32},
	}
}

// Guarantee returns the paper's ratio bound for the spec as an exact
// rational: 2 for the 2-approximation, 3/2 for the exact search, and
// (3/2)(1 + core.EpsRat(eps)) for the eps-search — the bound the search
// actually certifies for the rational tolerance it runs with.
func (s Spec) Guarantee(eps float64) sched.Rat {
	switch s.Algorithm {
	case setupsched.TwoApprox:
		return sched.R(2)
	case setupsched.EpsilonSearch:
		if eps <= 0 {
			eps = DefaultEpsilon
		}
		return sched.RatOf(3, 2).Mul(core.EpsRat(eps).AddInt(1))
	default:
		return sched.RatOf(3, 2)
	}
}

// FamilyResult is one (family, algorithm) distribution of measured
// ratios.
type FamilyResult struct {
	Family string `json:"family"`
	Spec   string `json:"spec"`
	// Instances is the number of swept instances; Exact of them had a
	// converged reference optimum, Bracket only a certified OPT bracket.
	Instances int `json:"instances"`
	Exact     int `json:"exact"`
	Bracket   int `json:"bracket"`
	// Guarantee is the paper's ratio bound for this spec, exact.
	Guarantee sched.Rat `json:"guarantee"`
	// WorstRatio is the worst true makespan/OPT ratio over the Exact
	// instances (zero when Exact is 0); every ratio is exact, so the
	// guarantee comparison has no float slack anywhere.
	WorstRatio sched.Rat `json:"worst_ratio"`
	// WorstFloat renders WorstRatio for humans and plots.
	WorstFloat float64 `json:"worst_ratio_float"`
	// MeanFloat is the mean true ratio over the Exact instances.
	MeanFloat float64 `json:"mean_ratio_float"`
	// WorstBound is the worst certified ratio upper bound
	// makespan/bracket-lo over the Bracket instances (zero when Bracket
	// is 0).  It bounds the true ratio from above but is not itself a
	// realized ratio, so the guarantee is asserted on WorstRatio only.
	WorstBound sched.Rat `json:"worst_bound"`
}

// Run is one environment's sweep.  Ratios are deterministic in the sweep
// parameters — the environment key only tells regenerations apart.
type Run struct {
	GoVersion     string  `json:"go_version"`
	GOOS          string  `json:"goos"`
	GOARCH        string  `json:"goarch"`
	GoMaxProcs    int     `json:"gomaxprocs"`
	NumCPU        int     `json:"num_cpu"`
	GeneratedUnix int64   `json:"generated_unix"`
	Seeds         int64   `json:"seeds"`
	SeedBase      int64   `json:"seed_base"`
	Epsilon       float64 `json:"epsilon"`
	NodeBudget    int64   `json:"node_budget"`
	// Params sizes the swept instances (Seed is overwritten per seed).
	M        int64 `json:"m"`
	Classes  int   `json:"classes"`
	JobsPer  int   `json:"jobs_per"`
	MaxSetup int64 `json:"max_setup"`
	MaxJob   int64 `json:"max_job"`

	Results []FamilyResult `json:"results"`
}

// EnvKey identifies the environment a run was measured in; regenerations
// replace the run with the matching key.
func (r *Run) EnvKey() string {
	return fmt.Sprintf("%s/%s/%s/gomaxprocs=%d", r.GoVersion, r.GOOS, r.GOARCH, r.GoMaxProcs)
}

// Report is the schema of BENCH_quality.json: environment-keyed runs.
type Report struct {
	Schema string `json:"schema"`
	Runs   []Run  `json:"runs"`
}

// MergeRun inserts the run into the report, replacing an existing run
// with the same environment key.
func MergeRun(rep *Report, run Run) {
	rep.Schema = Schema
	for i := range rep.Runs {
		if rep.Runs[i].EnvKey() == run.EnvKey() {
			rep.Runs[i] = run
			return
		}
	}
	rep.Runs = append(rep.Runs, run)
}

// Config drives one Sweep.
type Config struct {
	// Families to sweep; empty means the full schedgen catalog.
	Families []schedgen.Family
	// Params sizes every instance (Seed is overwritten per seed).  The
	// zero value selects a small profile every family converges on.
	Params schedgen.Params
	// Seeds runs seeds SeedBase .. SeedBase+Seeds-1 per family.
	Seeds    int64
	SeedBase int64
	// Epsilon is the eps-search accuracy (default DefaultEpsilon).
	Epsilon float64
	// NodeBudget bounds the reference backend per instance (0 = the
	// backend's default).
	NodeBudget int64
	// Workers bounds sweep parallelism; <= 0 means 1.
	Workers int
}

// DefaultParams is the sweep profile committed in BENCH_quality.json:
// beyond the exhaustive gate (so the branch-and-bound reference is the
// only source of optima) yet small enough that it converges across the
// catalog.
func DefaultParams() schedgen.Params {
	return schedgen.Params{M: 4, Classes: 10, JobsPer: 3, MaxSetup: 40, MaxJob: 60}
}

// ratioAcc accumulates one (family, spec) distribution.
type ratioAcc struct {
	instances, exact, bracket int
	worst, worstBound         sched.Rat
	sumFloat                  float64
}

// Sweep measures every family under Config and returns one
// environment-keyed run, deterministic in the sweep parameters.  Every
// solve goes through the public Solver surface: the three approximation
// algorithms and the RefExact reference are one SolveAll call per
// instance.
func Sweep(ctx context.Context, cfg Config) (*Run, error) {
	families := cfg.Families
	if len(families) == 0 {
		families = schedgen.Families
	}
	params := cfg.Params
	if params == (schedgen.Params{}) {
		params = DefaultParams()
	}
	seeds := cfg.Seeds
	if seeds <= 0 {
		seeds = 1
	}
	eps := cfg.Epsilon
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}

	specs := Specs()
	runs := make([]setupsched.Run, 0, len(specs)+1)
	for _, sp := range specs {
		runs = append(runs, setupsched.Run{Variant: setupsched.NonPreemptive, Algorithm: sp.Algorithm})
	}
	runs = append(runs, setupsched.Run{Variant: setupsched.NonPreemptive, Algorithm: setupsched.RefExact})

	accs := make([][]ratioAcc, len(families))
	for i := range accs {
		accs[i] = make([]ratioAcc, len(specs))
	}

	type item struct{ fam, seed int }
	jobs := make(chan item)
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range jobs {
				p := params
				p.Seed = cfg.SeedBase + int64(it.seed)
				err := sweepOne(ctx, families[it.fam].Make(p), runs, specs, eps, cfg.NodeBudget, &mu, accs[it.fam])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("%s seed %d: %w", families[it.fam].Name, p.Seed, err)
					}
					mu.Unlock()
				}
			}
		}()
	}
feed:
	for fi := range families {
		for s := 0; s < int(seeds); s++ {
			if ctx.Err() != nil {
				break feed
			}
			mu.Lock()
			stop := firstErr != nil
			mu.Unlock()
			if stop {
				break feed
			}
			jobs <- item{fi, s}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	run := &Run{
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		GeneratedUnix: time.Now().Unix(),
		Seeds:         seeds,
		SeedBase:      cfg.SeedBase,
		Epsilon:       eps,
		NodeBudget:    cfg.NodeBudget,
		M:             params.M,
		Classes:       params.Classes,
		JobsPer:       params.JobsPer,
		MaxSetup:      params.MaxSetup,
		MaxJob:        params.MaxJob,
	}
	for fi, fam := range families {
		for si, sp := range specs {
			a := accs[fi][si]
			fr := FamilyResult{
				Family:     fam.Name,
				Spec:       sp.Name,
				Instances:  a.instances,
				Exact:      a.exact,
				Bracket:    a.bracket,
				Guarantee:  sp.Guarantee(eps),
				WorstRatio: a.worst,
				WorstBound: a.worstBound,
			}
			if a.exact > 0 {
				fr.WorstFloat = a.worst.Float64()
				fr.MeanFloat = a.sumFloat / float64(a.exact)
			}
			run.Results = append(run.Results, fr)
		}
	}
	return run, nil
}

// sweepOne solves one instance (three approximations plus the RefExact
// reference in one SolveAll) and folds the measured ratios into the
// family's accumulators under mu.
func sweepOne(ctx context.Context, in *sched.Instance, runs []setupsched.Run, specs []Spec,
	eps float64, budget int64, mu *sync.Mutex, accs []ratioAcc) error {
	solver, err := setupsched.NewSolver(in)
	if err != nil {
		return err
	}
	opts := []setupsched.Option{
		setupsched.WithRuns(runs...),
		setupsched.WithEpsilon(eps),
	}
	if budget > 0 {
		opts = append(opts, setupsched.WithNodeBudget(budget))
	}
	rrs, err := solver.SolveAll(ctx, opts...)
	if err != nil {
		return err
	}

	// The RefExact run is last: its result (or typed budget error) is the
	// reference the approximation ratios are measured against.
	ref := rrs[len(rrs)-1]
	var opt, lo int64 // opt > 0: true optimum; else lo > 0: bracket lower end
	switch {
	case ref.Err == nil:
		o := ref.Result.Makespan
		if !o.IsInt() {
			return fmt.Errorf("reference optimum %s is not integral", o)
		}
		opt = o.Num()
	case errors.Is(ref.Err, setupsched.ErrExactBudget):
		var be *setupsched.ExactBudgetError
		if !errors.As(ref.Err, &be) {
			return fmt.Errorf("budget error without bracket: %w", ref.Err)
		}
		lo = be.Lo
	default:
		return ref.Err
	}

	mu.Lock()
	defer mu.Unlock()
	for i := range specs {
		rr := rrs[i]
		if rr.Err != nil {
			return fmt.Errorf("%s: %w", specs[i].Name, rr.Err)
		}
		a := &accs[i]
		a.instances++
		if opt > 0 {
			ratio := rr.Result.Makespan.DivInt(opt)
			a.exact++
			a.sumFloat += ratio.Float64()
			if a.worst.Less(ratio) {
				a.worst = ratio
			}
		} else {
			bound := rr.Result.Makespan.DivInt(lo)
			a.bracket++
			if a.worstBound.Less(bound) {
				a.worstBound = bound
			}
		}
	}
	return nil
}

// Validate checks the structural invariants of a BENCH_quality report:
// schema tag, at least one run with unique environment keys, complete
// sweep parameters, and per result a known spec, consistent counts, and
// exact ratios that are >= 1 where present and — the point of the file —
// within the recorded paper guarantee.
func Validate(rep *Report) error {
	if rep == nil {
		return errors.New("quality: nil report")
	}
	if rep.Schema != Schema {
		return fmt.Errorf("quality: schema %q, want %q (regenerate with schedquality -o)", rep.Schema, Schema)
	}
	if len(rep.Runs) == 0 {
		return errors.New("quality: report has no runs")
	}
	envs := map[string]bool{}
	for i := range rep.Runs {
		run := &rep.Runs[i]
		if err := validateRun(run); err != nil {
			return fmt.Errorf("quality: run %s: %w", run.EnvKey(), err)
		}
		if envs[run.EnvKey()] {
			return fmt.Errorf("quality: duplicate environment %s (runs must be merged per environment)", run.EnvKey())
		}
		envs[run.EnvKey()] = true
	}
	return nil
}

func validateRun(run *Run) error {
	if run.GoVersion == "" || run.GOOS == "" || run.GOARCH == "" || run.GoMaxProcs < 1 || run.NumCPU < 1 {
		return errors.New("missing environment fields")
	}
	if run.GeneratedUnix <= 0 || run.Seeds < 1 {
		return errors.New("missing run parameters")
	}
	if run.M < 1 || run.Classes < 1 || run.JobsPer < 1 || run.MaxJob < 1 {
		return errors.New("missing sweep size parameters")
	}
	if len(run.Results) == 0 {
		return errors.New("no results")
	}
	known := map[string]bool{}
	for _, sp := range Specs() {
		known[sp.Name] = true
	}
	one := sched.R(1)
	seen := map[string]bool{}
	for _, fr := range run.Results {
		tag := fr.Family + "/" + fr.Spec
		if fr.Family == "" || !known[fr.Spec] {
			return fmt.Errorf("result %q has unknown family or spec", tag)
		}
		if seen[tag] {
			return fmt.Errorf("duplicate result %q", tag)
		}
		seen[tag] = true
		if fr.Instances < 1 || fr.Exact+fr.Bracket != fr.Instances {
			return fmt.Errorf("result %q: counts exact=%d bracket=%d don't add to instances=%d",
				tag, fr.Exact, fr.Bracket, fr.Instances)
		}
		if fr.Guarantee.Sign() <= 0 {
			return fmt.Errorf("result %q: missing guarantee", tag)
		}
		if fr.Exact > 0 {
			if fr.WorstRatio.Less(one) {
				return fmt.Errorf("result %q: worst ratio %s below 1 (a schedule beat the optimum)", tag, fr.WorstRatio)
			}
			if fr.Guarantee.Less(fr.WorstRatio) {
				return fmt.Errorf("result %q: worst measured ratio %s exceeds the paper guarantee %s",
					tag, fr.WorstRatio, fr.Guarantee)
			}
		}
		if fr.Bracket > 0 && fr.WorstBound.Less(one) {
			return fmt.Errorf("result %q: worst certified bound %s below 1", tag, fr.WorstBound)
		}
	}
	return nil
}

// CompareRuns gates the current sweep against a baseline run: for every
// (family, spec) present in both, the current worst measured ratio must
// not exceed the baseline's (exact rational compare).  The sweeps must
// use the same size parameters, eps and seed base — with those fixed and
// current seeds <= baseline seeds, the current worst is measured over a
// subset of the baseline's instances, so any increase is a genuine
// algorithmic regression, not sampling noise.  Returns one message per
// regression (empty = gate passes).
func CompareRuns(baseline, current *Run) []string {
	var msgs []string
	if baseline.M != current.M || baseline.Classes != current.Classes ||
		baseline.JobsPer != current.JobsPer || baseline.MaxSetup != current.MaxSetup ||
		baseline.MaxJob != current.MaxJob || baseline.SeedBase != current.SeedBase ||
		baseline.Epsilon != current.Epsilon {
		return []string{"sweep parameters differ from the baseline; ratios are not comparable (regenerate the baseline)"}
	}
	if current.Seeds > baseline.Seeds {
		msgs = append(msgs, fmt.Sprintf(
			"current sweep has more seeds (%d) than the baseline (%d); extra seeds can only widen the worst case — regenerate the baseline to accept",
			current.Seeds, baseline.Seeds))
	}
	base := map[string]FamilyResult{}
	for _, fr := range baseline.Results {
		base[fr.Family+"/"+fr.Spec] = fr
	}
	keys := make([]string, 0, len(current.Results))
	cur := map[string]FamilyResult{}
	for _, fr := range current.Results {
		k := fr.Family + "/" + fr.Spec
		cur[k] = fr
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b, ok := base[k]
		if !ok {
			continue // new family: nothing to regress against
		}
		c := cur[k]
		if c.Exact > 0 && b.Exact > 0 && b.WorstRatio.Less(c.WorstRatio) {
			msgs = append(msgs, fmt.Sprintf("%s: worst measured ratio regressed %s -> %s",
				k, b.WorstRatio, c.WorstRatio))
		}
		if c.Exact == 0 && b.Exact > 0 {
			msgs = append(msgs, fmt.Sprintf("%s: reference backend no longer converges on any instance (baseline had %d)",
				k, b.Exact))
		}
	}
	return msgs
}
