package quality

import (
	"context"
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"setupsched/sched"
	"setupsched/schedgen"
)

// TestSweepGuaranteesAcrossCatalog is the tier-1 face of the quality
// harness: sweep every schedgen family through the library entry point
// cmd/schedquality uses and assert — by exact rational comparison, no
// float slack — that every measured ratio stays within the paper
// guarantee for its algorithm.
func TestSweepGuaranteesAcrossCatalog(t *testing.T) {
	seeds := int64(2)
	if testing.Short() {
		seeds = 1
	}
	run, err := Sweep(context.Background(), Config{Seeds: seeds, Workers: runtime.NumCPU()})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(schedgen.Families) * len(Specs()); len(run.Results) != want {
		t.Fatalf("%d results for %d families x %d specs", len(run.Results), len(schedgen.Families), len(Specs()))
	}

	one := sched.R(1)
	exactTotal := 0
	for _, fr := range run.Results {
		fr := fr
		t.Run(fr.Family+"/"+fr.Spec, func(t *testing.T) {
			if fr.Instances != int(seeds) {
				t.Fatalf("swept %d instances, want %d", fr.Instances, seeds)
			}
			if fr.Exact+fr.Bracket != fr.Instances {
				t.Fatalf("counts exact=%d bracket=%d don't add to %d", fr.Exact, fr.Bracket, fr.Instances)
			}
			if fr.Exact > 0 {
				if fr.WorstRatio.Less(one) {
					t.Errorf("worst ratio %s below 1: a schedule beat the reference optimum", fr.WorstRatio)
				}
				if fr.Guarantee.Less(fr.WorstRatio) {
					t.Errorf("worst measured ratio %s exceeds the paper guarantee %s", fr.WorstRatio, fr.Guarantee)
				}
			}
			if fr.Bracket > 0 && fr.WorstBound.Less(one) {
				t.Errorf("worst certified bound %s below 1", fr.WorstBound)
			}
		})
		exactTotal += fr.Exact
	}
	if exactTotal == 0 {
		t.Fatal("reference backend converged on no instance; the guarantee table is vacuous")
	}

	// The run must merge into a self-validating report, the same path the
	// CLI takes before writing BENCH_quality.json.
	rep := &Report{}
	MergeRun(rep, *run)
	if err := Validate(rep); err != nil {
		t.Fatalf("swept run fails its own validation: %v", err)
	}
}

func TestGuaranteeValues(t *testing.T) {
	specs := Specs()
	if len(specs) != 3 {
		t.Fatalf("%d specs, want 3", len(specs))
	}
	if g := specs[0].Guarantee(0); !g.Equal(sched.R(2)) {
		t.Errorf("2approx guarantee = %s, want 2", g)
	}
	if g := specs[2].Guarantee(0); !g.Equal(sched.RatOf(3, 2)) {
		t.Errorf("exact32 guarantee = %s, want 3/2", g)
	}
	// The eps-search guarantee is the bound the search certifies for its
	// rational tolerance: strictly above 3/2, and still below 2 for the
	// default accuracy.
	g := specs[1].Guarantee(DefaultEpsilon)
	if !sched.RatOf(3, 2).Less(g) || !g.Less(sched.R(2)) {
		t.Errorf("eps guarantee = %s, want in (3/2, 2)", g)
	}
	if !g.Equal(specs[1].Guarantee(0)) {
		t.Errorf("eps guarantee with eps=0 should default to DefaultEpsilon")
	}
}

// testRun builds a structurally valid run for validator and gate tests.
func testRun() Run {
	return Run{
		GoVersion: "go-test", GOOS: "linux", GOARCH: "amd64", GoMaxProcs: 1, NumCPU: 1,
		GeneratedUnix: 1, Seeds: 2, Epsilon: DefaultEpsilon,
		M: 4, Classes: 10, JobsPer: 3, MaxSetup: 40, MaxJob: 60,
		Results: []FamilyResult{
			{Family: "uniform", Spec: "nonp/2approx", Instances: 2, Exact: 2,
				Guarantee: sched.R(2), WorstRatio: sched.RatOf(3, 2), WorstFloat: 1.5, MeanFloat: 1.4},
			{Family: "uniform", Spec: "nonp/exact32", Instances: 2, Exact: 1, Bracket: 1,
				Guarantee: sched.RatOf(3, 2), WorstRatio: sched.RatOf(13, 10),
				WorstBound: sched.RatOf(7, 5), WorstFloat: 1.3, MeanFloat: 1.3},
		},
	}
}

func TestValidateCatchesCorruptReports(t *testing.T) {
	valid := func() *Report {
		rep := &Report{}
		MergeRun(rep, testRun())
		return rep
	}
	if err := Validate(valid()); err != nil {
		t.Fatalf("baseline report invalid: %v", err)
	}

	cases := []struct {
		name    string
		corrupt func(*Report)
		want    string
	}{
		{"nil report", nil, "nil report"},
		{"wrong schema", func(r *Report) { r.Schema = "v0" }, "schema"},
		{"no runs", func(r *Report) { r.Runs = nil }, "no runs"},
		{"duplicate env", func(r *Report) { r.Runs = append(r.Runs, r.Runs[0]) }, "duplicate environment"},
		{"missing env fields", func(r *Report) { r.Runs[0].GoVersion = "" }, "environment fields"},
		{"missing params", func(r *Report) { r.Runs[0].Seeds = 0 }, "run parameters"},
		{"missing sizes", func(r *Report) { r.Runs[0].Classes = 0 }, "size parameters"},
		{"no results", func(r *Report) { r.Runs[0].Results = nil }, "no results"},
		{"unknown spec", func(r *Report) { r.Runs[0].Results[0].Spec = "nonp/magic" }, "unknown family or spec"},
		{"duplicate result", func(r *Report) {
			r.Runs[0].Results = append(r.Runs[0].Results, r.Runs[0].Results[0])
		}, "duplicate result"},
		{"count mismatch", func(r *Report) { r.Runs[0].Results[0].Exact = 1 }, "don't add"},
		{"missing guarantee", func(r *Report) { r.Runs[0].Results[0].Guarantee = sched.Rat{} }, "missing guarantee"},
		{"ratio below 1", func(r *Report) { r.Runs[0].Results[0].WorstRatio = sched.RatOf(9, 10) }, "below 1"},
		{"ratio above guarantee", func(r *Report) { r.Runs[0].Results[0].WorstRatio = sched.RatOf(5, 2) }, "exceeds the paper guarantee"},
		{"bound below 1", func(r *Report) { r.Runs[0].Results[1].WorstBound = sched.RatOf(1, 2) }, "below 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rep *Report
			if tc.corrupt != nil {
				rep = valid()
				tc.corrupt(rep)
			}
			err := Validate(rep)
			if err == nil {
				t.Fatal("corrupt report accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestMergeRunReplacesByEnvKey(t *testing.T) {
	rep := &Report{}
	MergeRun(rep, testRun())
	if rep.Schema != Schema || len(rep.Runs) != 1 {
		t.Fatalf("first merge: schema %q, %d runs", rep.Schema, len(rep.Runs))
	}

	updated := testRun()
	updated.Seeds = 9
	MergeRun(rep, updated)
	if len(rep.Runs) != 1 || rep.Runs[0].Seeds != 9 {
		t.Fatalf("same-env merge did not replace: %d runs, seeds %d", len(rep.Runs), rep.Runs[0].Seeds)
	}

	other := testRun()
	other.GoVersion = "go-other"
	MergeRun(rep, other)
	if len(rep.Runs) != 2 {
		t.Fatalf("new-env merge did not append: %d runs", len(rep.Runs))
	}
}

func TestCompareRunsGate(t *testing.T) {
	base := testRun()

	// Identical sweep: gate passes.
	same := testRun()
	if msgs := CompareRuns(&base, &same); len(msgs) != 0 {
		t.Fatalf("identical runs flagged: %v", msgs)
	}

	// A worse worst ratio is a regression.
	regressed := testRun()
	regressed.Results[0].WorstRatio = sched.RatOf(8, 5)
	msgs := CompareRuns(&base, &regressed)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "regressed 3/2 -> 8/5") {
		t.Fatalf("regression not flagged: %v", msgs)
	}

	// A better (or equal) worst ratio passes.
	improved := testRun()
	improved.Results[0].WorstRatio = sched.RatOf(7, 5)
	if msgs := CompareRuns(&base, &improved); len(msgs) != 0 {
		t.Fatalf("improvement flagged: %v", msgs)
	}

	// Convergence loss is flagged even without a ratio to compare.
	vanished := testRun()
	vanished.Results[1].Exact = 0
	vanished.Results[1].Bracket = 2
	vanished.Results[1].WorstRatio = sched.Rat{}
	if msgs := CompareRuns(&base, &vanished); len(msgs) != 1 || !strings.Contains(msgs[0], "no longer converges") {
		t.Fatalf("convergence loss not flagged: %v", msgs)
	}

	// Different sweep parameters are incomparable, not silently passed.
	differentParams := testRun()
	differentParams.MaxJob = 99
	if msgs := CompareRuns(&base, &differentParams); len(msgs) != 1 || !strings.Contains(msgs[0], "not comparable") {
		t.Fatalf("parameter mismatch not flagged: %v", msgs)
	}

	// More seeds than the baseline can only widen the worst case.
	moreSeeds := testRun()
	moreSeeds.Seeds = 50
	if msgs := CompareRuns(&base, &moreSeeds); len(msgs) != 1 || !strings.Contains(msgs[0], "more seeds") {
		t.Fatalf("seed superset not flagged: %v", msgs)
	}

	// A family only the current sweep has is new coverage, not a regression.
	newFamily := testRun()
	newFamily.Results = append(newFamily.Results, FamilyResult{
		Family: "zipf", Spec: "nonp/2approx", Instances: 2, Exact: 2,
		Guarantee: sched.R(2), WorstRatio: sched.RatOf(19, 10)})
	if msgs := CompareRuns(&base, &newFamily); len(msgs) != 0 {
		t.Fatalf("new family flagged: %v", msgs)
	}
}

// TestReportRoundTripsExactRationals pins the wire format: worst ratios
// survive JSON as exact "p/q" strings, so a committed report re-read by
// the gate compares the same rationals the sweep measured.
func TestReportRoundTripsExactRationals(t *testing.T) {
	rep := &Report{}
	MergeRun(rep, testRun())
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), `"worst_ratio":"3/2"`) {
		t.Fatalf("worst ratio not serialized as an exact rational: %s", buf)
	}
	var back Report
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if err := Validate(&back); err != nil {
		t.Fatalf("round-tripped report invalid: %v", err)
	}
	if !back.Runs[0].Results[0].WorstRatio.Equal(sched.RatOf(3, 2)) {
		t.Fatalf("worst ratio changed across round trip: %s", back.Runs[0].Results[0].WorstRatio)
	}
}
