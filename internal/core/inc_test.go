package core

import (
	"math/rand"
	"testing"

	"setupsched/sched"
)

func incTestInstance(rng *rand.Rand, classes int) *sched.Instance {
	in := &sched.Instance{M: 1 + rng.Int63n(8)}
	for c := 0; c < classes; c++ {
		cl := sched.Class{Setup: rng.Int63n(50)}
		for j := 0; j <= rng.Intn(5); j++ {
			cl.Jobs = append(cl.Jobs, 1+rng.Int63n(40))
		}
		in.Classes = append(in.Classes, cl)
	}
	return in
}

// randomDelta proposes a random delta against the current instance shape;
// it may be invalid (Inc must reject it without state damage).
func randomDelta(rng *rand.Rand, in *sched.Instance) sched.Delta {
	switch rng.Intn(7) {
	case 0:
		jobs := make([]int64, 1+rng.Intn(3))
		for i := range jobs {
			jobs[i] = 1 + rng.Int63n(40)
		}
		return sched.Delta{Op: sched.DeltaAddJobs, Class: rng.Intn(len(in.Classes) + 1), Jobs: jobs}
	case 1:
		c := rng.Intn(len(in.Classes))
		j := 0
		if n := len(in.Classes[c].Jobs); n > 0 {
			j = rng.Intn(n + 1) // may be out of range
		}
		return sched.Delta{Op: sched.DeltaRemoveJob, Class: c, Job: j}
	case 2:
		return sched.Delta{Op: sched.DeltaSetSetup, Class: rng.Intn(len(in.Classes)), Setup: rng.Int63n(60) - 2}
	case 3:
		jobs := make([]int64, 1+rng.Intn(3))
		for i := range jobs {
			jobs[i] = 1 + rng.Int63n(40)
		}
		return sched.Delta{Op: sched.DeltaAddClass, Setup: rng.Int63n(50), Jobs: jobs}
	case 4:
		return sched.Delta{Op: sched.DeltaRemoveClass, Class: rng.Intn(len(in.Classes) + 1)}
	case 5:
		return sched.Delta{Op: sched.DeltaSetMachines, M: rng.Int63n(12)} // may be 0 (invalid)
	default:
		return sched.Delta{Op: sched.DeltaSetSetup, Class: rng.Intn(len(in.Classes)), Setup: rng.Int63n(60)}
	}
}

// TestIncMatchesFreshPrepare drives random delta sequences through Inc
// and asserts after every step that the patched Prep equals a cold
// Prepare, and that a mirror instance evolved by sched.Delta.Apply agrees
// on acceptance and content.
func TestIncMatchesFreshPrepare(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := incTestInstance(rng, 2+rng.Intn(8))
		if err := base.Validate(); err != nil {
			t.Fatalf("seed %d: invalid base: %v", seed, err)
		}
		inc := NewInc(base.Clone())
		mirror := base.Clone()
		for step := 0; step < 120; step++ {
			d := randomDelta(rng, mirror)
			errInc := inc.Apply(d)
			_, errMirror := d.Apply(mirror)
			if (errInc == nil) != (errMirror == nil) {
				t.Fatalf("seed %d step %d %s: Inc err %v, fresh err %v", seed, step, d, errInc, errMirror)
			}
			if !inc.Prep().In.Equal(mirror) {
				t.Fatalf("seed %d step %d %s: Inc instance diverged from mirror", seed, step, d)
			}
			if err := inc.Check(); err != nil {
				t.Fatalf("seed %d step %d %s: %v", seed, step, d, err)
			}
		}
		if inc.Rebuilds() == 0 {
			t.Errorf("seed %d: 120 deltas never hit the staleness rebuild", seed)
		}
	}
}

// TestIncStalenessRebuild pins the rebuild fallback: the threshold is
// max(64, c), so 64 patches on a small instance trigger exactly one
// rebuild and reset the patch counter.
func TestIncStalenessRebuild(t *testing.T) {
	in := &sched.Instance{M: 2, Classes: []sched.Class{{Setup: 3, Jobs: []int64{4, 5}}}}
	inc := NewInc(in)
	for i := 0; i < 63; i++ {
		if err := inc.Apply(sched.Delta{Op: sched.DeltaSetSetup, Class: 0, Setup: int64(3 + i%5)}); err != nil {
			t.Fatal(err)
		}
	}
	if inc.Rebuilds() != 0 || inc.Patched() != 63 {
		t.Fatalf("after 63 deltas: rebuilds %d, patched %d", inc.Rebuilds(), inc.Patched())
	}
	if err := inc.Apply(sched.Delta{Op: sched.DeltaSetSetup, Class: 0, Setup: 9}); err != nil {
		t.Fatal(err)
	}
	if inc.Rebuilds() != 1 || inc.Patched() != 0 {
		t.Fatalf("after 64 deltas: rebuilds %d, patched %d (want 1, 0)", inc.Rebuilds(), inc.Patched())
	}
	if err := inc.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestSeededSearchesMatchCold asserts the core warm-start contract
// directly: for arbitrary (even wrong) seeds, the exact searches return
// bit-identical schedules, guesses and bounds to the cold run.
func TestSeededSearchesMatchCold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		in := incTestInstance(rng, 3+rng.Intn(10))
		if err := in.Validate(); err != nil {
			continue
		}
		p := Prepare(in)
		for _, tc := range []struct {
			name  string
			solve func(Ctl) (*Result, error)
		}{
			{"split/jump", p.SolveSplitJump},
			{"pmtn/jump", p.SolvePmtnJump},
			{"nonp/binsearch", p.SolveNonpSearch},
		} {
			cold, err := tc.solve(Ctl{})
			if err != nil {
				t.Fatalf("trial %d %s cold: %v", trial, tc.name, err)
			}
			var los []sched.Rat
			if cold.HasSeedLo {
				los = []sched.Rat{cold.SeedLo}
			}
			seeds := []*BracketSeed{
				// The previous certified pair itself (the unchanged-instance case).
				{Los: los, His: []sched.Rat{cold.T}},
				// A shifted ladder (the post-delta case).
				{Los: append(append([]sched.Rat(nil), los...), cold.SeedLo.SubInt(3)),
					His: []sched.Rat{cold.T, cold.T.AddInt(5)}},
				// A wrong pair (lo candidate above the threshold, hi below it).
				{Los: []sched.Rat{cold.T.AddInt(2)}, His: los},
				// Hi only.
				{His: []sched.Rat{cold.T}},
			}
			for si, sd := range seeds {
				warm, err := tc.solve(Ctl{Seed: sd})
				if err != nil {
					t.Fatalf("trial %d %s seed %d: %v", trial, tc.name, si, err)
				}
				if cold.Fallback || warm.Fallback {
					continue // trajectory-dependent conservative path
				}
				if !warm.T.Equal(cold.T) || !warm.LowerBound.Equal(cold.LowerBound) ||
					!warm.Schedule.Makespan().Equal(cold.Schedule.Makespan()) ||
					warm.Algorithm != cold.Algorithm {
					t.Fatalf("trial %d %s seed %d: warm (T=%s LB=%s mk=%s %s) != cold (T=%s LB=%s mk=%s %s)",
						trial, tc.name, si,
						warm.T, warm.LowerBound, warm.Schedule.Makespan(), warm.Algorithm,
						cold.T, cold.LowerBound, cold.Schedule.Makespan(), cold.Algorithm)
				}
			}
		}
	}
}

// TestSeededSearchSavesProbes pins the point of warm starts: re-solving
// with the previous certified pair must not probe more than a handful of
// times, far below the cold search.
func TestSeededSearchSavesProbes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := incTestInstance(rng, 60)
	in.M = 7
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	p := Prepare(in)
	cold, err := p.SolveNonpSearch(Ctl{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Probes < 5 {
		t.Skipf("cold search converged in %d probes; instance too easy to demonstrate savings", cold.Probes)
	}
	seed := &BracketSeed{His: []sched.Rat{cold.T}}
	if cold.HasSeedLo {
		seed.Los = []sched.Rat{cold.SeedLo}
	}
	warm, err := p.SolveNonpSearch(Ctl{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.SeedUsed {
		t.Fatal("seed with the previous certified pair was not used")
	}
	if warm.Probes > 4 {
		t.Fatalf("warm re-solve took %d probes (cold %d); want <= 4", warm.Probes, cold.Probes)
	}
}
