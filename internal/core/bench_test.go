package core

import (
	"testing"

	"setupsched/sched"
	"setupsched/schedgen"
)

// benchEvalPrep builds the n-job setup-heavy shape the BENCH_core
// trajectory rows use, plus a probe ladder spanning the searches'
// decision regions — the workload of one dual search's worth of guesses.
func benchEvalPrep(n int) (*Prep, []sched.Rat) {
	in := schedgen.ExpensiveSetups(schedgen.Params{
		M: int64(n/10 + 1), Classes: n / 8, JobsPer: 8,
		MaxSetup: 100_000, MaxJob: 10_000, Seed: int64(n),
	})
	p := Prepare(in)
	tmin := p.TMin(sched.NonPreemptive)
	ladder := []sched.Rat{
		sched.R(p.SPT), tmin, tmin.MulInt(2),
		sched.Mid(tmin, sched.R(p.N)), sched.R(p.N),
		sched.RatOf(2*p.N+1, 3), sched.RatOf(3*p.N+2, 5), tmin.MulInt(3),
	}
	return p, ladder
}

// BenchmarkEvalNonpWalk_n1e5 is the pre-SoA baseline: the reference
// per-job walk, kept as the differential oracle.  One op = one 8-guess
// ladder sweep.
func BenchmarkEvalNonpWalk_n1e5(b *testing.B) {
	p, ladder := benchEvalPrep(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, T := range ladder {
			p.EvalNonpRef(T)
		}
	}
}

// BenchmarkEvalNonpSoA_n1e5 is the rewritten probe: binary-search
// thresholds over per-class sorted jobs plus prefix-sum K-work lookups.
func BenchmarkEvalNonpSoA_n1e5(b *testing.B) {
	p, ladder := benchEvalPrep(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, T := range ladder {
			p.EvalNonp(T)
		}
	}
}

// BenchmarkEvalNonpScratch_n1e5 is the warm serial probe: the SoA eval
// through a reused scratch, as stream sessions and serve solves run it.
// Allocs/op must be 0 (pinned by TestEvalNonpScratchZeroAlloc).
func BenchmarkEvalNonpScratch_n1e5(b *testing.B) {
	p, ladder := benchEvalPrep(100_000)
	var sc NonpEvalScratch
	p.EvalNonpScratch(ladder[0], &sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, T := range ladder {
			p.EvalNonpScratch(T, &sc)
		}
	}
}

// BenchmarkEvalNonpBatch_n1e5 is the speculative probe batch: all 8
// guesses decided in one fused sweep over the classes, each class's
// setup and job partition loaded once for the whole batch.
func BenchmarkEvalNonpBatch_n1e5(b *testing.B) {
	p, ladder := benchEvalPrep(100_000)
	var sc NonpBatchScratch
	p.EvalNonpBatch(ladder, &sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.EvalNonpBatch(ladder, &sc)
	}
}
