package core

import (
	"math"
	"sort"
	"sync"

	"setupsched/sched"
)

// Result is the outcome of a full approximation run.
type Result struct {
	Schedule *sched.Schedule
	// T is the accepted makespan guess the schedule was built for; the
	// schedule's makespan is at most 3/2*T (2*T for the 2-approximations).
	T sched.Rat
	// LowerBound is a certified lower bound on OPT (OPT >= LowerBound),
	// derived from rejected guesses and the trivial bounds.
	LowerBound sched.Rat
	// Algorithm names the algorithm that produced the schedule.
	Algorithm string
	// Probes counts dual-test evaluations performed by the search.
	Probes int
	// Fallback marks the bounded-round conservative paths: the schedule
	// and its 3/2*T bound are still sound, but the certified LowerBound is
	// conservative, so Makespan/LowerBound may exceed the search's usual
	// guarantee.
	Fallback bool
	// SeedLo is the final rejected end of the search bracket (every probe
	// at or below it was rejected, certifying OPT > SeedLo) when HasSeedLo;
	// searches that accepted the trivial bound outright have none.  A
	// subsequent solve of a slightly changed instance warm-starts from
	// (SeedLo, T) via Ctl.Seed.
	SeedLo    sched.Rat
	HasSeedLo bool
	// SeedUsed reports that a Ctl.Seed guess was validated by its probe
	// and narrowed the bracket (a warm hit).
	SeedUsed bool
}

// RatioUpperBound returns Makespan/LowerBound as a float, an upper bound
// on the realized approximation ratio.
func (r *Result) RatioUpperBound() float64 {
	lb := r.LowerBound.Float64()
	if lb <= 0 {
		return math.Inf(1)
	}
	return r.Schedule.Makespan().Float64() / lb
}

// bracket maintains the dual-search invariant: every probe at or below lo
// was rejected (or lo is the trivial lower bound), so OPT > every rejected
// point; hi was accepted.
//
// The bracket is also the choke point for per-probe control: every probe
// first checks the Ctl's context and probe budget and notifies its
// observer.  Once err is set (cancellation or budget exhaustion) all
// further probes are no-ops that report rejection without moving the
// bracket; callers must check err before trusting the bracket or building
// a schedule.
type bracket struct {
	lo, hi sched.Rat
	probes int
	ctl    Ctl
	err    error
	// seeded records that a Ctl.Seed hi-guess was confirmed by its probe
	// (a warm hit); surfaced as Result.SeedUsed.
	seeded bool
	// batch, when set, decides a whole speculative batch in one call —
	// one shared sweep over the classes instead of per-guess goroutine
	// fan-out.  probeBatch then never runs the serial test function
	// concurrently, which is what lets that function use a per-solve
	// eval scratch.  Outcomes must be bit-identical to per-guess tests.
	batch func([]sched.Rat) []bool
}

// seedNarrow probes the Ctl's warm-start guesses, narrowing the bracket
// before the main search phases run.  It must be called after the trivial
// lower bound was probed and rejected (so br.lo is a certified reject) and
// before the trivial upper bound is probed.  It reports whether an
// accepted seed established the bracket's upper end, in which case the
// caller may skip its trivial-upper-bound probe (acceptance at the larger
// trivial bound is implied by monotonicity).  Each guess is validated by a
// real probe and only adopted strictly inside the current bracket, so a
// wrong seed cannot corrupt the bracket invariant or the final answer.
func (br *bracket) seedNarrow(test func(sched.Rat) bool) (hiSeeded bool) {
	sd := br.ctl.Seed
	if sd == nil {
		return false
	}
	// His in optimism order until one confirms: a rejected hi candidate
	// still helps (it becomes the new lo).
	for _, hi := range sd.His {
		if br.err != nil {
			return hiSeeded
		}
		if !br.lo.Less(hi) || !hi.Less(br.hi) {
			continue
		}
		if br.probe(test, hi) {
			hiSeeded = true
			br.seeded = true
			break
		}
	}
	// Los mirror the His: stop once one rejects (lo established); an
	// accepted lo candidate became the new hi (the threshold moved below
	// it), so the next, smaller candidate is still worth probing.
	for _, lo := range sd.Los {
		if br.err != nil {
			return hiSeeded
		}
		if !br.lo.Less(lo) || !lo.Less(br.hi) {
			continue
		}
		if !br.probe(test, lo) {
			break
		}
		// The candidate accepted: it is now a certified upper end, which
		// also makes the trivial-upper-bound probe redundant.
		hiSeeded = true
		br.seeded = true
	}
	return hiSeeded
}

// annotate fills a Result's warm-start bookkeeping from the bracket's
// final state.  loRejected must report whether br.lo is a probed rejected
// guess (false only on the early trivial-bound accept paths).
func (br *bracket) annotate(r *Result, loRejected bool) *Result {
	r.SeedUsed = br.seeded
	if loRejected {
		r.SeedLo, r.HasSeedLo = br.lo, true
	}
	return r
}

// begin performs the pre-probe bookkeeping (cancellation check, probe
// budget, observer notification).  It reports whether the probe may run;
// on false the bracket's err is set.
func (br *bracket) begin(T sched.Rat) bool {
	if br.err != nil {
		return false
	}
	if err := br.ctl.interrupted(); err != nil {
		br.err = err
		return false
	}
	if br.ctl.ProbeLimit > 0 && br.probes >= br.ctl.ProbeLimit {
		br.err = ErrProbeLimit
		return false
	}
	br.probes++
	if br.ctl.Obs != nil {
		br.ctl.Obs.ProbeStarted(T)
	}
	return true
}

// end performs the post-probe observer notification.
func (br *bracket) end(T sched.Rat, accepted bool) {
	if br.ctl.Obs != nil {
		br.ctl.Obs.ProbeFinished(T, accepted)
	}
}

// checkpoint reports any pending abort condition (set error, canceled
// context).  Solvers call it before expensive post-search work such as
// schedule construction, so an expired deadline is honored even when
// every probe beat it.
func (br *bracket) checkpoint() error {
	if br.err == nil {
		br.err = br.ctl.interrupted()
	}
	return br.err
}

// probe tests T and narrows the bracket, keeping the invariant.
func (br *bracket) probe(test func(sched.Rat) bool, T sched.Rat) bool {
	if !br.begin(T) {
		return false
	}
	ok := test(T)
	br.end(T, ok)
	if ok {
		br.hi = T
		return true
	}
	br.lo = T
	return false
}

// specProbe is the outcome of one guess of a speculative batch.
type specProbe struct {
	T  sched.Rat
	ok bool
}

// probeBatch speculatively evaluates several candidate guesses at once on
// up to Ctl.Parallelism goroutines.  Ts must be sorted ascending and
// deduplicated.  The pre-probe bookkeeping (cancellation check, probe
// budget, ProbeStarted) runs for every admitted candidate in ascending-T
// order before any evaluation starts, and every ProbeFinished fires in the
// same order after all evaluations returned, so observers never see
// concurrent or reordered events (see the Observer contract).  A budget or
// cancellation cut admits only a prefix.  The bracket itself is not moved;
// callers merge the outcomes with adopt or their own monotone update.
func (br *bracket) probeBatch(test func(sched.Rat) bool, Ts []sched.Rat) []specProbe {
	out := make([]specProbe, 0, len(Ts))
	for _, T := range Ts {
		if !br.begin(T) {
			break
		}
		out = append(out, specProbe{T: T})
	}
	switch len(out) {
	case 0:
		return out
	case 1:
		out[0].ok = test(out[0].T)
		br.end(out[0].T, out[0].ok)
		return out
	}
	if br.batch != nil {
		Ts2 := make([]sched.Rat, len(out))
		for i := range out {
			Ts2[i] = out[i].T
		}
		for i, ok := range br.batch(Ts2) {
			out[i].ok = ok
		}
		for _, pr := range out {
			br.end(pr.T, pr.ok)
		}
		return out
	}
	workers := br.ctl.width()
	if workers > len(out) {
		workers = len(out)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(out); i += workers {
				out[i].ok = test(out[i].T)
			}
		}(w)
	}
	wg.Wait()
	for _, pr := range out {
		br.end(pr.T, pr.ok)
	}
	return out
}

// adopt narrows the bracket to the tightest accept/reject pair of a batch:
// the largest rejected guess becomes lo, the smallest accepted guess
// becomes hi.  The dual tests are monotone (accepting T accepts every
// T' >= T), so outcomes past the first acceptance carry no information;
// stopping there also keeps lo < hi even if an implementation bug ever
// produced a non-monotone outcome pattern.
func (br *bracket) adopt(probes []specProbe) {
	for _, pr := range probes {
		if pr.ok {
			if br.lo.Less(pr.T) && pr.T.Less(br.hi) {
				br.hi = pr.T
			}
			return
		}
		if br.lo.Less(pr.T) && pr.T.Less(br.hi) {
			br.lo = pr.T
		}
	}
}

// pickSpread selects up to k evenly spaced elements of the sorted window.
// For k = 1 it returns the midpoint the serial binary search would probe.
func pickSpread(window []sched.Rat, k int) []sched.Rat {
	if len(window) <= k {
		return window
	}
	out := make([]sched.Rat, 0, k)
	last := -1
	for j := 1; j <= k; j++ {
		idx := j * len(window) / (k + 1)
		if idx == last {
			continue
		}
		out = append(out, window[idx])
		last = idx
	}
	return out
}

// narrowOnCandidates searches the sorted ascending candidate list,
// restricted to the open interval (lo, hi), until no candidate remains
// strictly inside the bracket.
//
// Serially this is a binary search.  With speculation (Ctl.Parallelism
// k > 1) each round probes up to k evenly spaced interior candidates
// concurrently and keeps the tightest accept/reject pair.  Both converge
// to the same final bracket — the unique threshold pair of the candidate
// set under the monotone dual test — so every downstream decision is
// bit-identical; only wall-clock time and the probe count differ.
func (br *bracket) narrowOnCandidates(test func(sched.Rat) bool, cands []sched.Rat) {
	if br.ctl.width() > 1 {
		br.narrowOnCandidatesSpec(test, cands)
		return
	}
	lo := sort.Search(len(cands), func(i int) bool { return br.lo.Less(cands[i]) })
	hi := sort.Search(len(cands), func(i int) bool { return !cands[i].Less(br.hi) })
	for lo < hi && br.err == nil {
		mid := lo + (hi-lo)/2
		c := cands[mid]
		if !br.lo.Less(c) { // candidate slid out of the bracket
			lo = mid + 1
			continue
		}
		if !c.Less(br.hi) {
			hi = mid
			continue
		}
		if br.probe(test, c) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
}

// narrowOnCandidatesSpec is the speculative form of narrowOnCandidates.
func (br *bracket) narrowOnCandidatesSpec(test func(sched.Rat) bool, cands []sched.Rat) {
	k := br.ctl.width()
	for br.err == nil {
		lo := sort.Search(len(cands), func(i int) bool { return br.lo.Less(cands[i]) })
		hi := sort.Search(len(cands), func(i int) bool { return !cands[i].Less(br.hi) })
		if lo >= hi {
			return
		}
		br.adopt(br.probeBatch(test, pickSpread(cands[lo:hi], k)))
	}
}

// narrowOnJumps searches the decreasing jump family jumpAt(g) for g in
// [gLo, gHi], narrowing the bracket until no family member remains
// strictly inside.  Like narrowOnCandidates it binary-searches serially
// and probes up to Ctl.Parallelism evenly spaced members per round under
// speculation, converging to the identical final bracket either way.
func (br *bracket) narrowOnJumps(test func(sched.Rat) bool, jumpAt func(int64) sched.Rat, gLo, gHi int64) {
	if br.ctl.width() > 1 {
		br.narrowOnJumpsSpec(test, jumpAt, gLo, gHi)
		return
	}
	for gLo <= gHi && br.err == nil {
		g := gLo + (gHi-gLo)/2
		T := jumpAt(g) // decreasing in g
		switch {
		case !br.lo.Less(T): // T <= lo: larger g values are even smaller
			gHi = g - 1
		case !T.Less(br.hi): // T >= hi
			gLo = g + 1
		case br.probe(test, T):
			gLo = g + 1
		default:
			gHi = g - 1
		}
	}
}

// narrowOnJumpsSpec is the speculative form of narrowOnJumps.  The batch
// is assembled in ascending-T order (descending g); a rejection at g
// eliminates every g' >= g (their jumps are even smaller), an acceptance
// at g eliminates every g' <= g.
func (br *bracket) narrowOnJumpsSpec(test func(sched.Rat) bool, jumpAt func(int64) sched.Rat, gLo, gHi int64) {
	k := int64(br.ctl.width())
	for gLo <= gHi && br.err == nil {
		// Up to k evenly spaced g values of the window, ascending.
		w := gHi - gLo + 1
		gs := make([]int64, 0, k)
		if w <= k {
			for g := gLo; g <= gHi; g++ {
				gs = append(gs, g)
			}
		} else {
			last := int64(-1)
			for j := int64(1); j <= k; j++ {
				g := gLo + j*w/(k+1)
				if g != last && g >= gLo && g <= gHi {
					gs = append(gs, g)
					last = g
				}
			}
		}
		// Reverse into ascending T; drop members outside the open bracket.
		Ts := make([]sched.Rat, 0, len(gs))
		gOfT := make([]int64, 0, len(gs))
		for i := len(gs) - 1; i >= 0; i-- {
			T := jumpAt(gs[i])
			switch {
			case !br.lo.Less(T): // T <= lo: this and all larger g are out
				if gs[i]-1 < gHi {
					gHi = gs[i] - 1
				}
			case !T.Less(br.hi): // T >= hi: this and all smaller g are out
				if gs[i]+1 > gLo {
					gLo = gs[i] + 1
				}
			default:
				Ts = append(Ts, T)
				gOfT = append(gOfT, gs[i])
			}
		}
		if len(Ts) == 0 {
			if gLo > gHi {
				return
			}
			continue
		}
		out := br.probeBatch(test, Ts)
		br.adopt(out)
		for i, pr := range out { // ascending T = descending g
			if pr.ok {
				// Smallest accepted T: every smaller or equal g is done.
				if gOfT[i]+1 > gLo {
					gLo = gOfT[i] + 1
				}
				break
			}
			// Largest rejected T so far: every larger or equal g is done.
			if gOfT[i]-1 < gHi {
				gHi = gOfT[i] - 1
			}
		}
		if int64(len(out)) < int64(len(Ts)) {
			return // budget or cancellation cut the batch short
		}
	}
}

// dyadicMidpoints returns the midpoints of the full binary subdivision of
// (lo, hi) down to depth d — the 2^d - 1 guesses a serial bisection could
// visit in its next d rounds — sorted ascending.
func dyadicMidpoints(lo, hi sched.Rat, d int) []sched.Rat {
	out := make([]sched.Rat, 0, (1<<d)-1)
	var rec func(a, b sched.Rat, depth int)
	rec = func(a, b sched.Rat, depth int) {
		if depth == 0 {
			return
		}
		m := sched.Mid(a, b)
		out = append(out, m)
		rec(a, m, depth-1)
		rec(m, b, depth-1)
	}
	rec(lo, hi, d)
	return sortRats(out)
}

// lookupProbe finds the outcome recorded for guess T in a batch.
func lookupProbe(probes []specProbe, T sched.Rat) (ok, found bool) {
	for _, pr := range probes {
		if pr.T.Equal(T) {
			return pr.ok, true
		}
	}
	return false, false
}

// sortRats sorts a slice of rationals ascending and removes duplicates.
func sortRats(rs []sched.Rat) []sched.Rat {
	sort.Slice(rs, func(a, b int) bool { return rs[a].Less(rs[b]) })
	out := rs[:0]
	for i, r := range rs {
		if i == 0 || !r.Equal(out[len(out)-1]) {
			out = append(out, r)
		}
	}
	return out
}

// SolveSplit2 runs the splittable 2-approximation (Theorem 1).
func (p *Prep) SolveSplit2(ctl Ctl) (*Result, error) {
	if err := ctl.interrupted(); err != nil {
		return nil, err
	}
	s, err := p.TwoApproxSplit()
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: s, T: s.T, LowerBound: p.TMin(sched.Splittable), Algorithm: "split/2approx"}, nil
}

// SolveNonp2 runs the non-preemptive (or preemptive) 2-approximation.
func (p *Prep) SolveNonp2(ctl Ctl, v sched.Variant) (*Result, error) {
	if err := ctl.interrupted(); err != nil {
		return nil, err
	}
	s, err := p.TwoApproxNonPreemptive(v)
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: s, T: s.T, LowerBound: p.TMin(v), Algorithm: v.Short() + "/2approx"}, nil
}

// EpsRat exposes the rational tolerance SolveEps actually searches with
// for a float eps: the guarantee the eps-search certifies is
// (3/2)(1 + EpsRat(eps)), so exact guarantee checks must compare against
// this value, not against the float the caller passed.
func EpsRat(eps float64) sched.Rat { return epsToRat(eps) }

// epsToRat converts a float tolerance to a rational (rounded up slightly).
func epsToRat(eps float64) sched.Rat {
	if eps <= 0 {
		eps = 1e-6
	}
	if eps > 1 {
		eps = 1
	}
	const den = 1 << 20
	num := int64(math.Ceil(eps * den))
	if num < 1 {
		num = 1
	}
	return sched.RatOf(num, den)
}

// SolveEps runs the (3/2+eps)-approximation (Theorem 2): binary search on
// the 3/2-dual test over [T_min, N] until the bracket's relative width is
// below eps, then build at the accepted end.
func (p *Prep) SolveEps(ctl Ctl, v sched.Variant, eps float64) (*Result, error) {
	test, build, name := p.dualFor(v)
	tmin := p.TMin(v)
	br := &bracket{lo: tmin, hi: sched.R(p.N), ctl: ctl}
	if v != sched.Splittable && v != sched.Preemptive {
		// Non-preemptive probes route through the reusable eval scratch;
		// speculative batches go through the shared class sweep, which
		// keeps the scratch-using serial test single-threaded.
		sc := p.evalScratchFor(ctl)
		test = func(T sched.Rat) bool { return p.EvalNonpScratch(T, sc).OK }
		build = func(T sched.Rat) (*sched.Schedule, error) {
			return p.buildNonpWith(ctl, p.EvalNonpScratch(T, sc))
		}
		var bsc NonpBatchScratch
		br.batch = func(Ts []sched.Rat) []bool { return p.EvalNonpBatch(Ts, &bsc) }
	}
	if br.probe(test, tmin) {
		if err := br.checkpoint(); err != nil {
			return nil, err
		}
		s, err := build(tmin)
		if err != nil {
			return nil, err
		}
		return &Result{Schedule: s, T: tmin, LowerBound: tmin, Algorithm: name + "/eps", Probes: br.probes}, nil
	}
	if !br.probe(test, sched.R(p.N)) {
		if br.err != nil {
			return nil, br.err
		}
		return nil, errInternal("dual test rejected the trivial upper bound N (unsound rejection)")
	}
	er := epsToRat(eps)
	converged := func() bool { return br.hi.Sub(br.lo).Cmp(br.lo.Mul(er)) <= 0 }
	if k := br.ctl.width(); k <= 1 {
		for iter := 0; iter < 128 && br.err == nil; iter++ {
			if converged() {
				break
			}
			br.probe(test, sched.Mid(br.lo, br.hi))
		}
	} else {
		// Speculative bisection: probe the full midpoint tree of the
		// current bracket d levels deep (2^d - 1 <= k guesses) in one
		// concurrent batch, then REPLAY the serial bisection decisions
		// against the precomputed outcomes, including the serial
		// termination checks.  The replayed bracket — and so the built
		// schedule and certified bound — is bit-identical to the serial
		// search's; the speculative extra probes only buy wall-clock time
		// (d serial rounds collapse into one).
		iter := 0
		for iter < 128 && br.err == nil && !converged() {
			d := 1
			for (1<<(d+1))-1 <= k && d < 6 {
				d++
			}
			if rem := 128 - iter; d > rem {
				d = rem
			}
			points := dyadicMidpoints(br.lo, br.hi, d)
			out := br.probeBatch(test, points)
			if br.err != nil {
				break
			}
			for step := 0; step < d && iter < 128 && !converged(); step++ {
				T := sched.Mid(br.lo, br.hi)
				ok, found := lookupProbe(out, T)
				if !found {
					// Unreachable by construction (every replay midpoint
					// is a tree node); probe serially as a safety net.
					ok = br.probe(test, T)
					if br.err != nil {
						break
					}
					iter++
					continue
				}
				if ok {
					br.hi = T
				} else {
					br.lo = T
				}
				iter++
			}
		}
	}
	if err := br.checkpoint(); err != nil {
		return nil, err
	}
	s, err := build(br.hi)
	if err != nil {
		return nil, err
	}
	return br.annotate(&Result{Schedule: s, T: br.hi, LowerBound: br.lo, Algorithm: name + "/eps", Probes: br.probes}, true), nil
}

// buildNonpWith builds through the Ctl's scratch when one is lent.
func (p *Prep) buildNonpWith(ctl Ctl, ev *NonpEval) (*sched.Schedule, error) {
	if ctl.Scratch != nil {
		return p.BuildNonpScratch(ev, &ctl.Scratch.Nonp)
	}
	return p.BuildNonp(ev)
}

// evalScratchFor returns the Ctl's lent eval scratch, or a fresh
// per-solve one.  Either way the scratch is only ever used from the
// solve's coordinating goroutine (speculative batches run through
// bracket.batch, not the serial test), so a lent scratch needs the same
// caller-side serialization as the build scratch it rides in.
func (p *Prep) evalScratchFor(ctl Ctl) *NonpEvalScratch {
	if ctl.Scratch != nil {
		return &ctl.Scratch.Eval
	}
	return &NonpEvalScratch{}
}

// dualFor returns the dual test and builder for a variant.
func (p *Prep) dualFor(v sched.Variant) (func(sched.Rat) bool, func(sched.Rat) (*sched.Schedule, error), string) {
	switch v {
	case sched.Splittable:
		return func(T sched.Rat) bool { return p.EvalSplit(T, nil).OK },
			func(T sched.Rat) (*sched.Schedule, error) { return p.BuildSplit(p.EvalSplit(T, nil)) },
			"split"
	case sched.Preemptive:
		return func(T sched.Rat) bool { return p.EvalPmtn(T, nil).OK },
			func(T sched.Rat) (*sched.Schedule, error) { return p.BuildPmtn(p.EvalPmtn(T, nil)) },
			"pmtn"
	default:
		return func(T sched.Rat) bool { return p.EvalNonp(T).OK },
			func(T sched.Rat) (*sched.Schedule, error) { return p.BuildNonp(p.EvalNonp(T)) },
			"nonp"
	}
}

// SolveSplitJump is the exact 3/2-approximation for the splittable case in
// O(n + c log(c+m)) via Class Jumping (Theorem 3, Algorithm 1).
//
// The search maintains a right interval (lo, hi]: lo rejected (so
// OPT > lo), hi accepted.  Phase A removes all partition breakpoints 2 s_i
// from the interval; phase B removes the jumps 2 P_f / g of a fastest
// expensive class f; phase C removes the remaining (at most one per class,
// Lemma 3) jumps.  On the final jump-free interval the required load L and
// machine count m_exp are constant, so the smallest acceptable makespan is
// either hi or L/m, decided in O(1) (step 9 of Algorithm 1).
func (p *Prep) SolveSplitJump(ctl Ctl) (*Result, error) {
	test := func(T sched.Rat) bool { return p.EvalSplit(T, nil).OK }
	tmin := p.TMin(sched.Splittable)
	br := &bracket{lo: tmin, hi: sched.R(p.N), ctl: ctl}
	if br.probe(test, tmin) {
		if err := br.checkpoint(); err != nil {
			return nil, err
		}
		s, err := p.BuildSplit(p.EvalSplit(tmin, nil))
		if err != nil {
			return nil, err
		}
		return &Result{Schedule: s, T: tmin, LowerBound: tmin, Algorithm: "split/jump", Probes: br.probes}, nil
	}
	// Warm start: a confirmed seed hi makes the N probe redundant (N >= hi
	// is accepted by monotonicity).
	if !br.seedNarrow(test) {
		if !br.probe(test, sched.R(p.N)) {
			if br.err != nil {
				return nil, br.err
			}
			return nil, errInternal("splittable dual rejected N")
		}
	}
	if br.err != nil {
		return nil, br.err
	}

	// Phase A: partition breakpoints 2 s_i.
	bps := make([]sched.Rat, 0, p.C)
	for i := range p.In.Classes {
		bps = append(bps, sched.R(2*p.In.Classes[i].Setup))
	}
	br.narrowOnCandidates(test, sortRats(bps))
	if br.err != nil {
		return nil, br.err
	}

	// Phases B + C: jumps of expensive classes.
	evInt := p.EvalSplit(br.lo, &br.hi)
	if len(evInt.Exp) > 0 {
		// Fastest jumping class f: maximal P_f.
		f := evInt.Exp[0]
		for _, i := range evInt.Exp {
			if p.P[i] > p.P[f] {
				f = i
			}
		}
		jumpAt := func(g int64) sched.Rat { return sched.RatOf(2*p.P[f], g) }
		gLo := sched.FloorDivInt(2*p.P[f], br.hi) + 1
		gHi := sched.CeilDivInt(2*p.P[f], br.lo) - 1
		br.narrowOnJumps(test, jumpAt, gLo, gHi)

		// Phase C: at most one jump per remaining class inside (lo, hi).
		var cands []sched.Rat
		for _, i := range evInt.Exp {
			if i == f {
				continue
			}
			g0 := sched.FloorDivInt(2*p.P[i], br.hi) + 1
			g1 := sched.CeilDivInt(2*p.P[i], br.lo) - 1
			for g := g0; g <= g1 && g-g0 < 8; g++ {
				J := sched.RatOf(2*p.P[i], g)
				if br.lo.Less(J) && J.Less(br.hi) {
					cands = append(cands, J)
				}
			}
		}
		br.narrowOnCandidates(test, sortRats(cands))
	}
	if br.err != nil {
		return nil, br.err
	}

	// Closing step (Algorithm 1, step 9).
	return p.closeJump(br, p.EvalSplit(br.lo, &br.hi).machineData(), test,
		func(T sched.Rat) (*sched.Schedule, error) { return p.BuildSplit(p.EvalSplit(T, nil)) },
		"split/jump")
}

// intervalData captures the interval-constant quantities of a dual
// evaluation needed by the closing step.
type intervalData struct {
	machinesOK bool  // m >= required machine count on the interval
	L          int64 // required load on the interval (valid if machinesOK)
}

func (ev *SplitEval) machineData() intervalData {
	return intervalData{machinesOK: !ev.MachFail, L: ev.L}
}

// closeJump performs the O(1) final decision on a breakpoint- and
// jump-free right interval (lo, hi]: on such an interval the dual's
// required load L and machine demand are constant, so every T in
// (lo, min(hi, L/m)) is rejected.  Consequently
//
//	m too small or L/m >= hi  ->  OPT >= hi,  return hi;
//	otherwise                  ->  OPT >= L/m, return T_new = L/m
//
// and the returned guess is both accepted and a certified lower bound,
// giving the exact 3/2 ratio.
func (p *Prep) closeJump(br *bracket, data intervalData, test func(sched.Rat) bool,
	build func(sched.Rat) (*sched.Schedule, error), algo string) (*Result, error) {
	if err := br.checkpoint(); err != nil {
		return nil, err
	}
	ret := func(T sched.Rat) (*Result, error) {
		s, err := build(T)
		if err != nil {
			return nil, err
		}
		return br.annotate(&Result{Schedule: s, T: T, LowerBound: T, Algorithm: algo, Probes: br.probes}, true), nil
	}
	if !data.machinesOK {
		return ret(br.hi)
	}
	tNew := sched.RatOf(data.L, p.M)
	if !tNew.Less(br.hi) {
		return ret(br.hi)
	}
	if !br.lo.Less(tNew) {
		// L/m at or below the rejected end: every interior point already
		// satisfies m*T >= L, so the machine condition must have rejected
		// them; hi is the threshold.
		return ret(br.hi)
	}
	if br.probe(test, tNew) {
		return ret(tNew)
	}
	if br.err != nil {
		return nil, br.err
	}
	// The interval-constancy assumption failed (possible only for the
	// preemptive knapsack term, see DESIGN.md); fall back to a sound
	// conservative answer: build at hi, certify only lo.
	s, err := build(br.hi)
	if err != nil {
		return nil, err
	}
	return br.annotate(&Result{Schedule: s, T: br.hi, LowerBound: br.lo, Algorithm: algo + "/fallback", Probes: br.probes, Fallback: true}, true), nil
}

// SolveNonpSearch is the exact 3/2-approximation for the non-preemptive
// case (Theorem 8): OPT is integral, so an integer binary search over
// [T_min, 2 T_min] with the 3/2-dual test of Theorem 9 is exact and runs
// in O(n log T_min) = O(n log(n + Delta)).
func (p *Prep) SolveNonpSearch(ctl Ctl) (*Result, error) {
	if err := ctl.interrupted(); err != nil {
		return nil, err
	}
	if p.M >= int64(p.NJob) {
		s := p.oneJobPerMachine(sched.NonPreemptive)
		return &Result{Schedule: s, T: s.T, LowerBound: s.T, Algorithm: "nonp/binsearch"}, nil
	}
	// Every serial probe runs through the reusable eval scratch, so a
	// warm re-solve's probes allocate nothing.  This is race-free even
	// under speculation (Ctl.Parallelism > 1): batches route through
	// bracket.batch — one shared sweep over the classes with its own
	// accumulators — so the scratch-using test only ever runs from the
	// solve's coordinating goroutine.  lastEv aliases the scratch's
	// current eval; it is consumed (built from, or reported on) before
	// the next probe overwrites it.
	sc := p.evalScratchFor(ctl)
	var lastEv *NonpEval
	serialTest := func(T sched.Rat) bool { lastEv = p.EvalNonpScratch(T, sc); return lastEv.OK }
	test := func(T sched.Rat) bool { return p.EvalNonpScratch(T, sc).OK }
	tmin := p.TMin(sched.NonPreemptive).Num()
	br := &bracket{lo: sched.R(tmin), hi: sched.R(2 * tmin), ctl: ctl}
	var bsc NonpBatchScratch
	br.batch = func(Ts []sched.Rat) []bool { return p.EvalNonpBatch(Ts, &bsc) }
	if br.probe(serialTest, sched.R(tmin)) {
		if err := br.checkpoint(); err != nil {
			return nil, err
		}
		s, err := p.buildNonpWith(ctl, lastEv)
		if err != nil {
			return nil, err
		}
		return &Result{Schedule: s, T: sched.R(tmin), LowerBound: sched.R(tmin), Algorithm: "nonp/binsearch", Probes: br.probes}, nil
	}
	// Warm start: OPT is integral, so seed guesses are rounded outward
	// (floor for the reject candidate, ceil for the accept candidate) and
	// validated by real probes; a confirmed hi seed makes the 2*T_min
	// probe redundant by monotonicity.  The search still converges to the
	// unique minimal accepted integer from any correctly narrowed bracket.
	lo, hi := tmin, 2*tmin
	warm := false
	if sd := br.ctl.Seed; sd != nil {
		for _, cand := range sd.His {
			if br.err != nil {
				break
			}
			h := cand.Ceil()
			if h <= lo || h >= hi {
				continue
			}
			if br.probe(test, sched.R(h)) {
				hi, warm = h, true
				br.seeded = true
				break
			}
			lo = h
		}
		for _, cand := range sd.Los {
			if br.err != nil {
				break
			}
			l := cand.Floor()
			if l <= lo || l >= hi {
				continue
			}
			if !br.probe(test, sched.R(l)) {
				lo = l
				break
			}
			hi, warm = l, true
			br.seeded = true
		}
		if br.err != nil {
			return nil, br.err
		}
	}
	if !warm && !br.probe(serialTest, sched.R(2*tmin)) {
		if br.err != nil {
			return nil, br.err
		}
		return nil, errInternal("non-preemptive dual rejected 2*T_min >= OPT (%s)", lastEv.Reason)
	}
	if k := int64(br.ctl.width()); k <= 1 {
		for hi-lo > 1 && br.err == nil {
			mid := lo + (hi-lo)/2
			if br.probe(test, sched.R(mid)) {
				hi = mid
			} else {
				lo = mid
			}
		}
	} else {
		// Speculative k-ary search: probe up to k evenly spaced interior
		// integers per round.  OPT is integral, so the search converges to
		// the unique minimal accepted integer — the same hi the serial
		// bisection finds — regardless of the probing pattern.
		for hi-lo > 1 && br.err == nil {
			w := hi - lo
			vals := make([]int64, 0, k)
			if w-1 <= k {
				for v := lo + 1; v < hi; v++ {
					vals = append(vals, v)
				}
			} else {
				last := int64(-1)
				for j := int64(1); j <= k; j++ {
					v := lo + j*w/(k+1)
					if v != last && v > lo && v < hi {
						vals = append(vals, v)
						last = v
					}
				}
			}
			Ts := make([]sched.Rat, len(vals))
			for i, v := range vals {
				Ts[i] = sched.R(v)
			}
			out := br.probeBatch(test, Ts)
			br.adopt(out)
			for i, pr := range out { // ascending
				if pr.ok {
					hi = vals[i]
					break
				}
				lo = vals[i]
			}
			if len(out) < len(Ts) {
				break // budget or cancellation cut the batch short
			}
		}
	}
	if err := br.checkpoint(); err != nil {
		return nil, err
	}
	// lo rejected => OPT >= lo+1 = hi: the result is a true 3/2-approximation.
	s, err := p.buildNonpWith(ctl, p.EvalNonpScratch(sched.R(hi), sc))
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: s, T: sched.R(hi), LowerBound: sched.R(hi), Algorithm: "nonp/binsearch", Probes: br.probes,
		SeedUsed: br.seeded, SeedLo: sched.R(lo), HasSeedLo: true}, nil
}
