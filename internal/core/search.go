package core

import (
	"math"
	"sort"

	"setupsched/sched"
)

// Result is the outcome of a full approximation run.
type Result struct {
	Schedule *sched.Schedule
	// T is the accepted makespan guess the schedule was built for; the
	// schedule's makespan is at most 3/2*T (2*T for the 2-approximations).
	T sched.Rat
	// LowerBound is a certified lower bound on OPT (OPT >= LowerBound),
	// derived from rejected guesses and the trivial bounds.
	LowerBound sched.Rat
	// Algorithm names the algorithm that produced the schedule.
	Algorithm string
	// Probes counts dual-test evaluations performed by the search.
	Probes int
	// Fallback marks the bounded-round conservative paths: the schedule
	// and its 3/2*T bound are still sound, but the certified LowerBound is
	// conservative, so Makespan/LowerBound may exceed the search's usual
	// guarantee.
	Fallback bool
}

// RatioUpperBound returns Makespan/LowerBound as a float, an upper bound
// on the realized approximation ratio.
func (r *Result) RatioUpperBound() float64 {
	lb := r.LowerBound.Float64()
	if lb <= 0 {
		return math.Inf(1)
	}
	return r.Schedule.Makespan().Float64() / lb
}

// bracket maintains the dual-search invariant: every probe at or below lo
// was rejected (or lo is the trivial lower bound), so OPT > every rejected
// point; hi was accepted.
//
// The bracket is also the choke point for per-probe control: every probe
// first checks the Ctl's context and probe budget and notifies its
// observer.  Once err is set (cancellation or budget exhaustion) all
// further probes are no-ops that report rejection without moving the
// bracket; callers must check err before trusting the bracket or building
// a schedule.
type bracket struct {
	lo, hi sched.Rat
	probes int
	ctl    Ctl
	err    error
}

// begin performs the pre-probe bookkeeping (cancellation check, probe
// budget, observer notification).  It reports whether the probe may run;
// on false the bracket's err is set.
func (br *bracket) begin(T sched.Rat) bool {
	if br.err != nil {
		return false
	}
	if err := br.ctl.interrupted(); err != nil {
		br.err = err
		return false
	}
	if br.ctl.ProbeLimit > 0 && br.probes >= br.ctl.ProbeLimit {
		br.err = ErrProbeLimit
		return false
	}
	br.probes++
	if br.ctl.Obs != nil {
		br.ctl.Obs.ProbeStarted(T)
	}
	return true
}

// end performs the post-probe observer notification.
func (br *bracket) end(T sched.Rat, accepted bool) {
	if br.ctl.Obs != nil {
		br.ctl.Obs.ProbeFinished(T, accepted)
	}
}

// checkpoint reports any pending abort condition (set error, canceled
// context).  Solvers call it before expensive post-search work such as
// schedule construction, so an expired deadline is honored even when
// every probe beat it.
func (br *bracket) checkpoint() error {
	if br.err == nil {
		br.err = br.ctl.interrupted()
	}
	return br.err
}

// probe tests T and narrows the bracket, keeping the invariant.
func (br *bracket) probe(test func(sched.Rat) bool, T sched.Rat) bool {
	if !br.begin(T) {
		return false
	}
	ok := test(T)
	br.end(T, ok)
	if ok {
		br.hi = T
		return true
	}
	br.lo = T
	return false
}

// narrowOnCandidates binary-searches the sorted ascending candidate list,
// restricted to the open interval (lo, hi), until no candidate remains
// strictly inside the bracket.
func (br *bracket) narrowOnCandidates(test func(sched.Rat) bool, cands []sched.Rat) {
	lo := sort.Search(len(cands), func(i int) bool { return br.lo.Less(cands[i]) })
	hi := sort.Search(len(cands), func(i int) bool { return !cands[i].Less(br.hi) })
	for lo < hi && br.err == nil {
		mid := lo + (hi-lo)/2
		c := cands[mid]
		if !br.lo.Less(c) { // candidate slid out of the bracket
			lo = mid + 1
			continue
		}
		if !c.Less(br.hi) {
			hi = mid
			continue
		}
		if br.probe(test, c) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
}

// narrowOnJumps binary-searches the decreasing jump family jumpAt(g) for
// g in [gLo, gHi], narrowing the bracket until no family member remains
// strictly inside.
func (br *bracket) narrowOnJumps(test func(sched.Rat) bool, jumpAt func(int64) sched.Rat, gLo, gHi int64) {
	for gLo <= gHi && br.err == nil {
		g := gLo + (gHi-gLo)/2
		T := jumpAt(g) // decreasing in g
		switch {
		case !br.lo.Less(T): // T <= lo: larger g values are even smaller
			gHi = g - 1
		case !T.Less(br.hi): // T >= hi
			gLo = g + 1
		case br.probe(test, T):
			gLo = g + 1
		default:
			gHi = g - 1
		}
	}
}

// sortRats sorts a slice of rationals ascending and removes duplicates.
func sortRats(rs []sched.Rat) []sched.Rat {
	sort.Slice(rs, func(a, b int) bool { return rs[a].Less(rs[b]) })
	out := rs[:0]
	for i, r := range rs {
		if i == 0 || !r.Equal(out[len(out)-1]) {
			out = append(out, r)
		}
	}
	return out
}

// SolveSplit2 runs the splittable 2-approximation (Theorem 1).
func (p *Prep) SolveSplit2(ctl Ctl) (*Result, error) {
	if err := ctl.interrupted(); err != nil {
		return nil, err
	}
	s, err := p.TwoApproxSplit()
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: s, T: s.T, LowerBound: p.TMin(sched.Splittable), Algorithm: "split/2approx"}, nil
}

// SolveNonp2 runs the non-preemptive (or preemptive) 2-approximation.
func (p *Prep) SolveNonp2(ctl Ctl, v sched.Variant) (*Result, error) {
	if err := ctl.interrupted(); err != nil {
		return nil, err
	}
	s, err := p.TwoApproxNonPreemptive(v)
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: s, T: s.T, LowerBound: p.TMin(v), Algorithm: v.Short() + "/2approx"}, nil
}

// epsToRat converts a float tolerance to a rational (rounded up slightly).
func epsToRat(eps float64) sched.Rat {
	if eps <= 0 {
		eps = 1e-6
	}
	if eps > 1 {
		eps = 1
	}
	const den = 1 << 20
	num := int64(math.Ceil(eps * den))
	if num < 1 {
		num = 1
	}
	return sched.RatOf(num, den)
}

// SolveEps runs the (3/2+eps)-approximation (Theorem 2): binary search on
// the 3/2-dual test over [T_min, N] until the bracket's relative width is
// below eps, then build at the accepted end.
func (p *Prep) SolveEps(ctl Ctl, v sched.Variant, eps float64) (*Result, error) {
	test, build, name := p.dualFor(v)
	tmin := p.TMin(v)
	br := &bracket{lo: tmin, hi: sched.R(p.N), ctl: ctl}
	if br.probe(test, tmin) {
		if err := br.checkpoint(); err != nil {
			return nil, err
		}
		s, err := build(tmin)
		if err != nil {
			return nil, err
		}
		return &Result{Schedule: s, T: tmin, LowerBound: tmin, Algorithm: name + "/eps", Probes: br.probes}, nil
	}
	if !br.probe(test, sched.R(p.N)) {
		if br.err != nil {
			return nil, br.err
		}
		return nil, errInternal("dual test rejected the trivial upper bound N (unsound rejection)")
	}
	er := epsToRat(eps)
	for iter := 0; iter < 128 && br.err == nil; iter++ {
		if br.hi.Sub(br.lo).Cmp(br.lo.Mul(er)) <= 0 {
			break
		}
		br.probe(test, sched.Mid(br.lo, br.hi))
	}
	if err := br.checkpoint(); err != nil {
		return nil, err
	}
	s, err := build(br.hi)
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: s, T: br.hi, LowerBound: br.lo, Algorithm: name + "/eps", Probes: br.probes}, nil
}

// dualFor returns the dual test and builder for a variant.
func (p *Prep) dualFor(v sched.Variant) (func(sched.Rat) bool, func(sched.Rat) (*sched.Schedule, error), string) {
	switch v {
	case sched.Splittable:
		return func(T sched.Rat) bool { return p.EvalSplit(T, nil).OK },
			func(T sched.Rat) (*sched.Schedule, error) { return p.BuildSplit(p.EvalSplit(T, nil)) },
			"split"
	case sched.Preemptive:
		return func(T sched.Rat) bool { return p.EvalPmtn(T, nil).OK },
			func(T sched.Rat) (*sched.Schedule, error) { return p.BuildPmtn(p.EvalPmtn(T, nil)) },
			"pmtn"
	default:
		return func(T sched.Rat) bool { return p.EvalNonp(T).OK },
			func(T sched.Rat) (*sched.Schedule, error) { return p.BuildNonp(p.EvalNonp(T)) },
			"nonp"
	}
}

// SolveSplitJump is the exact 3/2-approximation for the splittable case in
// O(n + c log(c+m)) via Class Jumping (Theorem 3, Algorithm 1).
//
// The search maintains a right interval (lo, hi]: lo rejected (so
// OPT > lo), hi accepted.  Phase A removes all partition breakpoints 2 s_i
// from the interval; phase B removes the jumps 2 P_f / g of a fastest
// expensive class f; phase C removes the remaining (at most one per class,
// Lemma 3) jumps.  On the final jump-free interval the required load L and
// machine count m_exp are constant, so the smallest acceptable makespan is
// either hi or L/m, decided in O(1) (step 9 of Algorithm 1).
func (p *Prep) SolveSplitJump(ctl Ctl) (*Result, error) {
	test := func(T sched.Rat) bool { return p.EvalSplit(T, nil).OK }
	tmin := p.TMin(sched.Splittable)
	br := &bracket{lo: tmin, hi: sched.R(p.N), ctl: ctl}
	if br.probe(test, tmin) {
		if err := br.checkpoint(); err != nil {
			return nil, err
		}
		s, err := p.BuildSplit(p.EvalSplit(tmin, nil))
		if err != nil {
			return nil, err
		}
		return &Result{Schedule: s, T: tmin, LowerBound: tmin, Algorithm: "split/jump", Probes: br.probes}, nil
	}
	if !br.probe(test, sched.R(p.N)) {
		if br.err != nil {
			return nil, br.err
		}
		return nil, errInternal("splittable dual rejected N")
	}

	// Phase A: partition breakpoints 2 s_i.
	bps := make([]sched.Rat, 0, p.C)
	for i := range p.In.Classes {
		bps = append(bps, sched.R(2*p.In.Classes[i].Setup))
	}
	br.narrowOnCandidates(test, sortRats(bps))
	if br.err != nil {
		return nil, br.err
	}

	// Phases B + C: jumps of expensive classes.
	evInt := p.EvalSplit(br.lo, &br.hi)
	if len(evInt.Exp) > 0 {
		// Fastest jumping class f: maximal P_f.
		f := evInt.Exp[0]
		for _, i := range evInt.Exp {
			if p.P[i] > p.P[f] {
				f = i
			}
		}
		jumpAt := func(g int64) sched.Rat { return sched.RatOf(2*p.P[f], g) }
		gLo := sched.FloorDivInt(2*p.P[f], br.hi) + 1
		gHi := sched.CeilDivInt(2*p.P[f], br.lo) - 1
		br.narrowOnJumps(test, jumpAt, gLo, gHi)

		// Phase C: at most one jump per remaining class inside (lo, hi).
		var cands []sched.Rat
		for _, i := range evInt.Exp {
			if i == f {
				continue
			}
			g0 := sched.FloorDivInt(2*p.P[i], br.hi) + 1
			g1 := sched.CeilDivInt(2*p.P[i], br.lo) - 1
			for g := g0; g <= g1 && g-g0 < 8; g++ {
				J := sched.RatOf(2*p.P[i], g)
				if br.lo.Less(J) && J.Less(br.hi) {
					cands = append(cands, J)
				}
			}
		}
		br.narrowOnCandidates(test, sortRats(cands))
	}
	if br.err != nil {
		return nil, br.err
	}

	// Closing step (Algorithm 1, step 9).
	return p.closeJump(br, p.EvalSplit(br.lo, &br.hi).machineData(), test,
		func(T sched.Rat) (*sched.Schedule, error) { return p.BuildSplit(p.EvalSplit(T, nil)) },
		"split/jump")
}

// intervalData captures the interval-constant quantities of a dual
// evaluation needed by the closing step.
type intervalData struct {
	machinesOK bool  // m >= required machine count on the interval
	L          int64 // required load on the interval (valid if machinesOK)
}

func (ev *SplitEval) machineData() intervalData {
	return intervalData{machinesOK: !ev.MachFail, L: ev.L}
}

// closeJump performs the O(1) final decision on a breakpoint- and
// jump-free right interval (lo, hi]: on such an interval the dual's
// required load L and machine demand are constant, so every T in
// (lo, min(hi, L/m)) is rejected.  Consequently
//
//	m too small or L/m >= hi  ->  OPT >= hi,  return hi;
//	otherwise                  ->  OPT >= L/m, return T_new = L/m
//
// and the returned guess is both accepted and a certified lower bound,
// giving the exact 3/2 ratio.
func (p *Prep) closeJump(br *bracket, data intervalData, test func(sched.Rat) bool,
	build func(sched.Rat) (*sched.Schedule, error), algo string) (*Result, error) {
	if err := br.checkpoint(); err != nil {
		return nil, err
	}
	ret := func(T sched.Rat) (*Result, error) {
		s, err := build(T)
		if err != nil {
			return nil, err
		}
		return &Result{Schedule: s, T: T, LowerBound: T, Algorithm: algo, Probes: br.probes}, nil
	}
	if !data.machinesOK {
		return ret(br.hi)
	}
	tNew := sched.RatOf(data.L, p.M)
	if !tNew.Less(br.hi) {
		return ret(br.hi)
	}
	if !br.lo.Less(tNew) {
		// L/m at or below the rejected end: every interior point already
		// satisfies m*T >= L, so the machine condition must have rejected
		// them; hi is the threshold.
		return ret(br.hi)
	}
	if br.probe(test, tNew) {
		return ret(tNew)
	}
	if br.err != nil {
		return nil, br.err
	}
	// The interval-constancy assumption failed (possible only for the
	// preemptive knapsack term, see DESIGN.md); fall back to a sound
	// conservative answer: build at hi, certify only lo.
	s, err := build(br.hi)
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: s, T: br.hi, LowerBound: br.lo, Algorithm: algo + "/fallback", Probes: br.probes, Fallback: true}, nil
}

// SolveNonpSearch is the exact 3/2-approximation for the non-preemptive
// case (Theorem 8): OPT is integral, so an integer binary search over
// [T_min, 2 T_min] with the 3/2-dual test of Theorem 9 is exact and runs
// in O(n log T_min) = O(n log(n + Delta)).
func (p *Prep) SolveNonpSearch(ctl Ctl) (*Result, error) {
	if err := ctl.interrupted(); err != nil {
		return nil, err
	}
	if p.M >= int64(p.NJob) {
		s := p.oneJobPerMachine(sched.NonPreemptive)
		return &Result{Schedule: s, T: s.T, LowerBound: s.T, Algorithm: "nonp/binsearch"}, nil
	}
	// lastEv keeps the most recent evaluation so the accept-at-tmin fast
	// path can build from it without re-running the O(n) dual test.
	var lastEv *NonpEval
	test := func(T sched.Rat) bool { lastEv = p.EvalNonp(T); return lastEv.OK }
	tmin := p.TMin(sched.NonPreemptive).Num()
	br := &bracket{lo: sched.R(tmin), hi: sched.R(2 * tmin), ctl: ctl}
	if br.probe(test, sched.R(tmin)) {
		if err := br.checkpoint(); err != nil {
			return nil, err
		}
		s, err := p.BuildNonp(lastEv)
		if err != nil {
			return nil, err
		}
		return &Result{Schedule: s, T: sched.R(tmin), LowerBound: sched.R(tmin), Algorithm: "nonp/binsearch", Probes: br.probes}, nil
	}
	lo, hi := tmin, 2*tmin
	if !br.probe(test, sched.R(hi)) {
		if br.err != nil {
			return nil, br.err
		}
		return nil, errInternal("non-preemptive dual rejected 2*T_min >= OPT (%s)", lastEv.Reason)
	}
	for hi-lo > 1 && br.err == nil {
		mid := lo + (hi-lo)/2
		if br.probe(test, sched.R(mid)) {
			hi = mid
		} else {
			lo = mid
		}
	}
	if err := br.checkpoint(); err != nil {
		return nil, err
	}
	// lo rejected => OPT >= lo+1 = hi: the result is a true 3/2-approximation.
	s, err := p.BuildNonp(p.EvalNonp(sched.R(hi)))
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: s, T: sched.R(hi), LowerBound: sched.R(hi), Algorithm: "nonp/binsearch", Probes: br.probes}, nil
}
