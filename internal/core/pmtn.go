package core

import (
	"sort"

	"setupsched/internal/knap"
	"setupsched/internal/num128"
	"setupsched/sched"
)

// PmtnEval is the outcome of the preemptive 3/2-dual test (Theorems 4/5
// with the Section 4.4 machine counts).
//
// For a guess T the classes are partitioned into
//
//	I+exp:  s_i > T/2, s_i + P_i >= T        (gamma_i machines)
//	I0exp:  s_i > T/2, 3/4T < s_i+P_i < T    (the "large machines")
//	I-exp:  s_i > T/2, s_i + P_i <= 3/4T     (paired two per machine)
//	I+chp:  T/4 <= s_i <= T/2
//	I-chp:  s_i < T/4
//
// where gamma_i = max(ceil(2(s_i+P_i)/T) - 2, 1) is the machine count of
// the modified step 1 (Section 4.4), satisfying gamma_i <= beta_i <=
// alpha_i <= lambda_i, so the lower-bound direction of the dual test is
// preserved.  I*chp collects the I-chp classes with big jobs
// (s_i + t_j > T/2); a continuous knapsack (profit s_i, weight
// w_i = P(C_i) - L*_i, capacity Y = F - L*) decides which of them are
// scheduled entirely outside the large machines (case A).  When everything
// fits (case B) a greedy split is used instead.
type PmtnEval struct {
	T        sched.Rat
	OK       bool
	MachFail bool
	Reason   string

	ExpPlus, ExpZero, ExpMinus []int
	ChpPlus, ChpMinus          []int
	Gamma                      []int64 // parallel to ExpPlus

	Star     []int   // I*chp class indices
	BigCnt   []int64 // |C*_i| per Star position
	BigWork  []int64 // P(C*_i)
	CaseA    bool
	Sel      []bool // case A: x_i == 1 per Star position
	SplitPos int    // case A: Star position of the split item, or -1
	SplitU   int64  // case A: x_e * w_e in units of 1/(2 den)

	NiceRest   []int // case B: ChpMinus\Star classes fully in the nice part
	BSplit     int   // case B: class split between nice and K, or -1
	BSplitU    int64 // case B: nice-side job time of the split class (units)
	KRest      []int // case B: classes fully in the K part
	L          int64
	MPrime     int64
	RefNum     int64 // reference T for unit conversions (numerator)
	RefDen     int64 // and denominator; units are 1/(2*RefDen)
	UnselSetup int64 // sum of setups of unselected I*chp classes (case A)
}

// pmtnPredicates bundles the partition comparisons for point and interval
// evaluation modes.
type pmtnPredicates struct {
	point bool
	T, hi sched.Rat
}

// above reports x > T (point) resp. x > T' for all T' in (T, hi).
func (q *pmtnPredicates) above(x int64) bool {
	if q.point {
		return q.T.CmpInt(x) < 0
	}
	return sched.R(x).Cmp(q.hi) >= 0
}

// strictBelow reports x < T resp. x < T' for all T' in the open interval.
func (q *pmtnPredicates) strictBelow(x int64) bool {
	if q.point {
		return q.T.CmpInt(x) > 0
	}
	return sched.R(x).Cmp(q.T) <= 0
}

// aboveScaled reports a*x > b*T on the point/interval.
func (q *pmtnPredicates) aboveScaled(x, a, b int64) bool {
	ref := q.T
	if !q.point {
		ref = q.hi
	}
	c := cmpProd(a*x, ref.Den(), b, ref.Num())
	if q.point {
		return c > 0
	}
	return c >= 0
}

// gamma returns the Section 4.4 machine count of an I+exp class.
func (q *pmtnPredicates) gamma(sp int64) int64 {
	var g int64
	if q.point {
		g = sched.CeilDivInt(2*sp, q.T) - 2
	} else {
		g = sched.FloorDivInt(2*sp, q.hi) - 1
	}
	if g < 1 {
		g = 1
	}
	return g
}

// EvalPmtn runs the preemptive dual test in O(n).
//
// Interval mode (hi non-nil) evaluates the quantities shared by every T in
// the open interval (T, hi), assuming no partition breakpoint or class
// jump lies strictly inside; the knapsack is evaluated at the reference
// point hi (its selection is verified by the closing step of the search).
func (p *Prep) EvalPmtn(T sched.Rat, hi *sched.Rat) *PmtnEval {
	ev := &PmtnEval{T: T, SplitPos: -1, BSplit: -1}
	q := &pmtnPredicates{point: hi == nil, T: T}
	ref := T
	if hi != nil {
		q.hi = *hi
		ref = *hi
	}
	ev.RefNum, ev.RefDen = ref.Num(), ref.Den()
	if q.point && T.CmpInt(p.SPT) < 0 {
		ev.Reason = "T < max_i(s_i + t_max) <= OPT"
		return ev
	}

	// Partition and machine demand.
	for i := range p.In.Classes {
		s := p.In.Classes[i].Setup
		sp := s + p.P[i]
		switch {
		case q.above(2 * s): // expensive
			switch {
			case !q.strictBelow(sp): // s+P >= T
				ev.ExpPlus = append(ev.ExpPlus, i)
				ev.Gamma = append(ev.Gamma, q.gamma(sp))
			case q.aboveScaled(sp, 4, 3): // s+P > 3/4 T
				ev.ExpZero = append(ev.ExpZero, i)
			default: // s+P <= 3/4 T
				ev.ExpMinus = append(ev.ExpMinus, i)
			}
		case q.strictBelow(4 * s): // s < T/4
			ev.ChpMinus = append(ev.ChpMinus, i)
		default: // T/4 <= s <= T/2
			ev.ChpPlus = append(ev.ChpPlus, i)
		}
	}
	l := int64(len(ev.ExpZero))
	ev.MPrime = l + (int64(len(ev.ExpMinus))+1)/2
	for _, g := range ev.Gamma {
		ev.MPrime += g
	}
	if ev.MPrime > p.M {
		ev.MachFail = true
		ev.Reason = "m < m' (obligatory machines exceed m)"
		return ev
	}

	// Star classes and their obligatory-outside loads.
	den := ev.RefDen
	tn := ev.RefNum
	for _, i := range ev.ChpMinus {
		s := p.Setups[i]
		// above is monotone in its argument, so the big jobs of the class
		// (s + t_j > T/2) are a suffix of the sorted layout: one binary
		// search replaces the per-job walk, and the suffix work is a
		// prefix-sum difference.  The maximum-job check skips classes with
		// no big jobs outright.
		if !q.above(2 * (s + p.TMaxC[i])) {
			continue
		}
		jobs := p.Sorted[i]
		lo, up := 0, len(jobs)
		for lo < up {
			mid := int(uint(lo+up) >> 1)
			if q.above(2 * (s + jobs[mid])) {
				up = mid
			} else {
				lo = mid + 1
			}
		}
		if cnt := int64(len(jobs) - lo); cnt > 0 {
			ev.Star = append(ev.Star, i)
			ev.BigCnt = append(ev.BigCnt, cnt)
			ev.BigWork = append(ev.BigWork, p.P[i]-p.Pref[i][lo])
		}
	}

	// A = load of classes that must live entirely in the nice part.
	var a int64
	for k, i := range ev.ExpPlus {
		a += ev.Gamma[k]*p.In.Classes[i].Setup + p.P[i]
	}
	for _, i := range ev.ExpMinus {
		a += p.In.Classes[i].Setup + p.P[i]
	}
	for _, i := range ev.ChpPlus {
		a += p.In.Classes[i].Setup + p.P[i]
	}
	var bStar int64
	for _, i := range ev.Star {
		bStar += p.In.Classes[i].Setup + p.P[i]
	}
	// Case A iff F = (m-l)T - A < bStar.
	ev.CaseA = cmpProd(p.M-l, tn, a+bStar, den) < 0

	if ev.CaseA && l == 0 {
		// For T >= OPT, m*T >= total load implies F >= bStar when l = 0,
		// so this rejection is sound (see DESIGN.md).
		ev.Reason = "free time below obligatory star load with no large machines"
		return ev
	}

	if ev.CaseA {
		// Obligatory loads in 1/(2*den) units:
		// L*_i = 2*work*den - cnt*(tn - 2*s*den) >= 0,
		// w_i  = 2*(P_i - work)*den + cnt*(tn - 2*s*den) >= 1.
		items := make([]knap.Item, len(ev.Star))
		var lStarU num128.Acc
		var sumW int64
		for k, i := range ev.Star {
			s := p.In.Classes[i].Setup
			halfGap := tn - 2*s*den // (T - 2s)*den > 0
			lu := 2*ev.BigWork[k]*den - ev.BigCnt[k]*halfGap
			wu := 2*(p.P[i]-ev.BigWork[k])*den + ev.BigCnt[k]*halfGap
			if lu < 0 || wu < 1 {
				ev.Reason = "internal: malformed star load"
				return ev
			}
			lStarU.AddInt(lu)
			lStarU.AddInt(2 * s * den)
			items[k] = knap.Item{Profit: s, Weight: wu}
			sumW += wu
		}
		// Capacity Y = F - L* in units, clamped to [reject-if-negative, sumW].
		var lhs, rhs num128.Acc
		lhs.AddProd(2*(p.M-l), tn)
		rhs.AddProd(2*a, den)
		rhs.AddAcc(&lStarU)
		capU := int64(0)
		switch lhs.Cmp(&rhs) {
		case -1:
			ev.Reason = "negative knapsack capacity (obligatory load exceeds free time)"
			return ev
		case 0:
			capU = 0
		default:
			diff, fits := lhs.Minus(&rhs)
			if !fits || diff > sumW {
				capU = sumW
			} else {
				capU = diff
			}
		}
		sol, err := knap.SolveContinuous(items, capU)
		if err != nil {
			ev.Reason = "internal: knapsack failure: " + err.Error()
			return ev
		}
		ev.Sel = sol.Selected
		ev.SplitPos = sol.Split
		ev.SplitU = sol.SplitFill
		for k, i := range ev.Star {
			if !sol.Selected[k] && k != sol.Split {
				ev.UnselSetup += p.In.Classes[i].Setup
			}
		}
	} else {
		// Case B: split ChpMinus\Star greedily (largest setups first into
		// the nice part, so the boundary class has a small setup) such
		// that the nice part receives exactly F - bStar.
		rest := make([]int, 0, len(ev.ChpMinus))
		star := make(map[int]bool, len(ev.Star))
		for _, i := range ev.Star {
			star[i] = true
		}
		for _, i := range ev.ChpMinus {
			if !star[i] {
				rest = append(rest, i)
			}
		}
		sortBySetupDesc(p, rest)
		var cum int64
		k := 0
		for ; k < len(rest); k++ {
			i := rest[k]
			next := cum + p.In.Classes[i].Setup + p.P[i]
			// Fits entirely iff A + bStar + next <= (m-l)T.
			if cmpProd(p.M-l, tn, a+bStar+next, den) < 0 {
				break
			}
			ev.NiceRest = append(ev.NiceRest, i)
			cum = next
		}
		if k < len(rest) {
			e := rest[k]
			// nice-side job time of e in units:
			// 2((m-l)tn - (a+bStar+cum+s_e)*den), clamped to [0, 2 P_e den].
			var lhs, rhs num128.Acc
			lhs.AddProd(2*(p.M-l), tn)
			rhs.AddProd(2*(a+bStar+cum+p.In.Classes[e].Setup), den)
			if lhs.Cmp(&rhs) > 0 {
				diff, fits := lhs.Minus(&rhs)
				if fits && diff > 0 && diff < 2*p.P[e]*den {
					ev.BSplit = e
					ev.BSplitU = diff
				} else if fits && diff >= 2*p.P[e]*den {
					ev.NiceRest = append(ev.NiceRest, e)
					k++
				}
			}
			for k2 := k; k2 < len(rest); k2++ {
				if rest[k2] != ev.BSplit {
					ev.KRest = append(ev.KRest, rest[k2])
				}
			}
		}
	}

	// L_pmtn and the capacity test.
	ev.L = p.PJ + ev.UnselSetup + p.SumS
	for k, i := range ev.ExpPlus {
		// ExpPlus classes pay gamma_i setups instead of one.
		ev.L += (ev.Gamma[k] - 1) * p.In.Classes[i].Setup
	}
	if cmpProd(p.M, ref.Num(), ev.L, ref.Den()) < 0 {
		ev.Reason = "m*T < L_pmtn (load exceeds capacity)"
		return ev
	}
	ev.OK = true
	return ev
}

func sortBySetupDesc(p *Prep, xs []int) {
	sort.Slice(xs, func(a, b int) bool {
		sa, sb := p.In.Classes[xs[a]].Setup, p.In.Classes[xs[b]].Setup
		if sa != sb {
			return sa > sb
		}
		return xs[a] < xs[b]
	})
}
