package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"setupsched/sched"
	"setupsched/schedgen"
)

// solveWith runs every search algorithm of a variant with the given Ctl.
func allSearches(v sched.Variant) map[string]func(p *Prep, ctl Ctl) (*Result, error) {
	out := map[string]func(p *Prep, ctl Ctl) (*Result, error){
		"eps": func(p *Prep, ctl Ctl) (*Result, error) { return p.SolveEps(ctl, v, 1e-3) },
	}
	switch v {
	case sched.Splittable:
		out["exact32"] = func(p *Prep, ctl Ctl) (*Result, error) { return p.SolveSplitJump(ctl) }
	case sched.Preemptive:
		out["exact32"] = func(p *Prep, ctl Ctl) (*Result, error) { return p.SolvePmtnJump(ctl) }
	default:
		out["exact32"] = func(p *Prep, ctl Ctl) (*Result, error) { return p.SolveNonpSearch(ctl) }
	}
	return out
}

// TestSpeculativeBitIdentical asserts that the speculative searches return
// bit-identical accepted guesses, lower bounds and makespans for every
// speculation width, across the full schedgen catalog and all variants.
func TestSpeculativeBitIdentical(t *testing.T) {
	// Three regimes: one where most duals accept the trivial bound (fast
	// paths), and two setup-heavy ones whose searches genuinely probe
	// (7-17 dual tests each, see the class-jumping breakpoint structure).
	regimes := []schedgen.Params{
		{M: 6, Classes: 20, JobsPer: 4, MaxSetup: 60, MaxJob: 90},
		{M: 32, Classes: 40, JobsPer: 3, MaxSetup: 500, MaxJob: 60},
		{M: 8, Classes: 12, JobsPer: 1, MaxSetup: 300, MaxJob: 300},
	}
	for _, fam := range schedgen.Families {
		for _, params := range regimes {
			for seed := int64(0); seed < 2; seed++ {
				p := params
				p.Seed = seed
				in := fam.Make(p)
				prep := Prepare(in)
				for _, v := range sched.Variants {
					for name, run := range allSearches(v) {
						serial, err := run(prep, Ctl{})
						if err != nil {
							t.Fatalf("%s/%s/%v seed %d: serial: %v", fam.Name, name, v, seed, err)
						}
						for _, k := range []int{2, 3, 4, 8} {
							spec, err := run(prep, Ctl{Parallelism: k})
							if err != nil {
								t.Fatalf("%s/%s/%v seed %d k=%d: %v", fam.Name, name, v, seed, k, err)
							}
							tag := fmt.Sprintf("%s/%s/%v seed %d k=%d", fam.Name, name, v, seed, k)
							if !spec.T.Equal(serial.T) {
								t.Errorf("%s: guess %s != serial %s", tag, spec.T, serial.T)
							}
							if !spec.LowerBound.Equal(serial.LowerBound) {
								t.Errorf("%s: lower bound %s != serial %s", tag, spec.LowerBound, serial.LowerBound)
							}
							if !spec.Schedule.Makespan().Equal(serial.Schedule.Makespan()) {
								t.Errorf("%s: makespan %s != serial %s", tag, spec.Schedule.Makespan(), serial.Schedule.Makespan())
							}
							if spec.Algorithm != serial.Algorithm {
								t.Errorf("%s: algorithm %q != serial %q", tag, spec.Algorithm, serial.Algorithm)
							}
							if spec.Probes < serial.Probes {
								t.Errorf("%s: speculative probes %d < serial %d (speculation can only add probes)",
									tag, spec.Probes, serial.Probes)
							}
						}
					}
				}
			}
		}
	}
}

// TestPrepConcurrentUse hammers one shared Prep from many goroutines mixing
// dual evaluations, builds and full (speculative) searches.  Run under
// -race this is the concurrency-contract regression test for Prep.
func TestPrepConcurrentUse(t *testing.T) {
	in := schedgen.BigJobs(schedgen.Params{M: 8, Classes: 40, JobsPer: 5, MaxSetup: 80, MaxJob: 120, Seed: 7})
	prep := Prepare(in)
	T := prep.TMin(sched.Preemptive).MulInt(3).DivInt(2)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				switch g % 4 {
				case 0:
					if ev := prep.EvalSplit(T, nil); ev.OK {
						if _, err := prep.BuildSplit(ev); err != nil {
							errs <- err
							return
						}
					}
				case 1:
					if ev := prep.EvalPmtn(T, nil); ev.OK {
						if _, err := prep.BuildPmtn(ev); err != nil {
							errs <- err
							return
						}
					}
				case 2:
					if ev := prep.EvalNonp(T.MulInt(2)); ev.OK {
						if _, err := prep.BuildNonp(ev); err != nil {
							errs <- err
							return
						}
					}
				default:
					if _, err := prep.SolvePmtnJump(Ctl{Parallelism: 4}); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// orderObserver records the probe event stream and fails on contract
// violations: a ProbeFinished without a preceding ProbeStarted for the
// same guess, or concurrent (interleaved-from-two-goroutines) events are
// surfaced as out-of-order sequences.
type orderObserver struct {
	started  []sched.Rat
	finished []sched.Rat
}

func (o *orderObserver) ProbeStarted(T sched.Rat) { o.started = append(o.started, T) }
func (o *orderObserver) ProbeFinished(T sched.Rat, ok bool) {
	o.finished = append(o.finished, T)
}
func (o *orderObserver) SearchFinished(string, int) {}

// TestSpeculativeObserverOrdering is the regression test for the
// bracket.probe observer contract under speculation: every guess is
// started exactly once and finished exactly once, no guess is probed
// twice (Trace stays deduplicated), and the number of events matches the
// reported probe count.
func TestSpeculativeObserverOrdering(t *testing.T) {
	for _, fam := range []schedgen.Family{schedgen.Families[0], schedgen.Families[5]} {
		in := fam.Make(schedgen.Params{M: 5, Classes: 24, JobsPer: 4, MaxSetup: 50, MaxJob: 70, Seed: 11})
		prep := Prepare(in)
		for _, v := range sched.Variants {
			for name, run := range allSearches(v) {
				for _, k := range []int{1, 4} {
					obs := &orderObserver{}
					res, err := run(prep, Ctl{Obs: obs, Parallelism: k})
					if err != nil {
						t.Fatalf("%s/%s/%v k=%d: %v", fam.Name, name, v, k, err)
					}
					tag := fmt.Sprintf("%s/%s/%v k=%d", fam.Name, name, v, k)
					if len(obs.started) != res.Probes || len(obs.finished) != res.Probes {
						t.Fatalf("%s: %d started / %d finished events for %d probes",
							tag, len(obs.started), len(obs.finished), res.Probes)
					}
					seen := map[string]int{}
					for _, T := range obs.started {
						seen[T.String()]++
					}
					for s, n := range seen {
						if n > 1 {
							t.Errorf("%s: guess %s probed %d times (want deduplicated probes)", tag, s, n)
						}
					}
					fin := map[string]int{}
					for _, T := range obs.finished {
						fin[T.String()]++
						if fin[T.String()] > seen[T.String()] {
							t.Errorf("%s: ProbeFinished(%s) without matching ProbeStarted", tag, T)
						}
					}
				}
			}
		}
	}
}

// TestSpeculativeCancellation checks that cancellation aborts speculative
// searches with the context's error, exactly like the serial path.
func TestSpeculativeCancellation(t *testing.T) {
	// Setup-heavy regime whose non-preemptive search needs ~11 probes, so
	// both the cancellation and the probe budget genuinely interrupt it.
	in := schedgen.ExpensiveSetups(schedgen.Params{M: 32, Classes: 40, JobsPer: 3, MaxSetup: 500, MaxJob: 60, Seed: 11})
	prep := Prepare(in)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := prep.SolveNonpSearch(Ctl{Ctx: ctx, Parallelism: 4}); err == nil {
		t.Fatal("canceled speculative search returned no error")
	} else if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// A probe budget must also cut speculative batches short.  Calibrate
	// the limit against the unbounded serial run so the search is
	// guaranteed to need more probes than the budget allows.
	full, err := prep.SolveNonpSearch(Ctl{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Probes < 3 {
		t.Fatalf("calibration instance converged in %d probes; need >= 3", full.Probes)
	}
	if _, err := prep.SolveNonpSearch(Ctl{ProbeLimit: 2, Parallelism: 8}); err != ErrProbeLimit {
		t.Fatalf("want ErrProbeLimit, got %v", err)
	}
}
