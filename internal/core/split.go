package core

import (
	"setupsched/internal/wrap"
	"setupsched/sched"
)

// SplitEval is the outcome of the splittable 3/2-dual test (Theorem 7).
//
// For a makespan guess T the classes split into expensive (s_i > T/2) and
// cheap (s_i <= T/2).  With beta_i = ceil(2 P_i / T), the test rejects T
// (certifying T < OPT) when m*T < L_split or m < m_exp where
//
//	L_split = P(J) + sum_{cheap} s_i + sum_{exp} beta_i s_i
//	m_exp   = sum_{exp} beta_i.
type SplitEval struct {
	T        sched.Rat
	OK       bool
	MachFail bool   // rejected because m < m_exp
	Reason   string // human-readable rejection reason

	Exp  []int   // expensive class indices
	Chp  []int   // cheap class indices
	Beta []int64 // parallel to Exp
	MExp int64
	L    int64 // L_split (valid only when machine test passed)
}

// EvalSplit runs the splittable dual test in O(c) given Prep.
//
// Interval mode: when hi is non-nil the evaluation describes every T in the
// open interval (T, hi) under the precondition that no partition breakpoint
// 2 s_i and no class jump 2 P_i / g lies strictly inside; the partition is
// then decided by comparisons against hi and beta_i via floor division.
func (p *Prep) EvalSplit(T sched.Rat, hi *sched.Rat) *SplitEval {
	ev := &SplitEval{T: T}
	// Guard: OPT > s_max, so any T < s_max is rejected (T = s_max itself
	// is constructible when the load and machine tests pass, and rejecting
	// it would break the closing step's certified-rejection chain).
	if T.CmpInt(p.SMax) < 0 && hi == nil {
		ev.Reason = "T < s_max < OPT"
		return ev
	}
	expensive := func(s int64) bool {
		if hi != nil {
			return sched.R(2*s).Cmp(*hi) >= 0
		}
		return T.CmpInt(2*s) < 0
	}
	beta := func(work int64) int64 {
		if hi != nil {
			return sched.FloorDivInt(2*work, *hi) + 1
		}
		return sched.CeilDivInt(2*work, T)
	}
	for i := range p.In.Classes {
		if expensive(p.In.Classes[i].Setup) {
			ev.Exp = append(ev.Exp, i)
			b := beta(p.P[i])
			ev.Beta = append(ev.Beta, b)
			ev.MExp += b
			if ev.MExp > p.M {
				ev.MachFail = true
				ev.Reason = "m < m_exp (expensive classes need too many machines)"
				return ev
			}
		} else {
			ev.Chp = append(ev.Chp, i)
		}
	}
	// m_exp <= m established; now L_split fits in int64:
	// beta_i*s_i <= 2 P_i + s_i (since s_i <= T), so L <= 3 N, and also
	// sum beta_i s_i <= m*s_max <= MaxMachineLoadProduct.
	ev.L = p.PJ
	for _, i := range ev.Chp {
		ev.L += p.In.Classes[i].Setup
	}
	for k, i := range ev.Exp {
		ev.L += ev.Beta[k] * p.In.Classes[i].Setup
	}
	ref := T
	if hi != nil {
		// For all T' in (T, hi): m T' >= L iff m*T >= L at the infimum is
		// not required -- the closing step handles the threshold; here we
		// report the test at the supremum for bracket narrowing.
		ref = *hi
	}
	if cmpProd(p.M, ref.Num(), ev.L, ref.Den()) < 0 {
		ev.Reason = "m*T < L_split (load exceeds capacity)"
		return ev
	}
	ev.OK = true
	return ev
}

// BuildSplit constructs a feasible splittable schedule with makespan at
// most 3/2*T from an accepting evaluation (Theorem 7(ii)).
//
// Step 1 packs each expensive class i onto beta_i dedicated machines, each
// holding the setup plus at most T/2 of job load; at most one last machine
// per class stays below load T.  Step 2 wraps all cheap classes into the
// residual time of those last machines (above a reserved T/2 window for one
// cheap setup) and into gaps [T/2, 3/2T) on the m - m_exp unused machines,
// emitting compressed machine runs for the unused-machine region.
func (p *Prep) BuildSplit(ev *SplitEval) (*sched.Schedule, error) {
	if !ev.OK {
		return nil, errInternal("BuildSplit on rejected evaluation (%s)", ev.Reason)
	}
	T := ev.T
	halfT := T.Half()
	top := T.MulInt(3).DivInt(2)
	out := &sched.Schedule{Variant: sched.Splittable, T: T}

	// Step 1: expensive classes.
	var cheapGaps []wrap.Gap
	gapOwner := []int{} // schedule run index per cheap gap
	for k, i := range ev.Exp {
		cls := &p.In.Classes[i]
		beta := ev.Beta[k]
		setup := sched.R(cls.Setup)
		jobIdx, jobLeft := 0, sched.R(cls.Jobs[0])
		for u := int64(0); u < beta; u++ {
			// Machine-configuration compression (proof of Theorem 7): a
			// job spanning many full machines emits one run of identical
			// [setup, T/2-piece] machines instead of one row per machine.
			if u < beta-1 && jobLeft.Cmp(halfT) >= 0 {
				full := jobLeft.DivInt(halfT.Num()).MulInt(halfT.Den()).Floor()
				if full > beta-1-u {
					full = beta - 1 - u
				}
				if full >= 2 {
					b := sched.NewMachineBuilder()
					b.Place(sched.SlotSetup, i, -1, setup)
					b.Place(sched.SlotJob, i, jobIdx, halfT)
					out.AddRun(full, b.Slots())
					jobLeft = jobLeft.Sub(halfT.MulInt(full))
					if jobLeft.IsZero() && jobIdx+1 < len(cls.Jobs) {
						jobIdx++
						jobLeft = sched.R(cls.Jobs[jobIdx])
					}
					u += full - 1
					continue
				}
			}
			b := sched.NewMachineBuilder()
			b.Place(sched.SlotSetup, i, -1, setup)
			cap := halfT
			if u == beta-1 {
				// Last machine takes the remainder r in (0, T/2].
				cap = sched.R(p.P[i]).Sub(halfT.MulInt(beta - 1))
			}
			for cap.Sign() > 0 && jobIdx < len(cls.Jobs) {
				take := sched.MinRat(cap, jobLeft)
				b.Place(sched.SlotJob, i, jobIdx, take)
				cap = cap.Sub(take)
				jobLeft = jobLeft.Sub(take)
				if jobLeft.IsZero() {
					jobIdx++
					if jobIdx < len(cls.Jobs) {
						jobLeft = sched.R(cls.Jobs[jobIdx])
					}
				}
			}
			ri := out.AddMachine(b.Slots())
			if u == beta-1 && b.Top().Cmp(T) < 0 {
				// Reserve [L, L+T/2) for one cheap setup, fill above.
				cheapGaps = append(cheapGaps, wrap.Gap{
					Machine: int64(ri), A: b.Top().Add(halfT), B: top,
				})
				gapOwner = append(gapOwner, ri)
			}
		}
		if jobLeft.Sign() > 0 || jobIdx < len(cls.Jobs)-1 {
			return nil, errInternal("splittable step 1 left work of class %d unplaced", i)
		}
	}

	// Step 2: cheap classes into the gaps plus unused machines.
	if len(ev.Chp) > 0 {
		var q wrap.Sequence
		for _, i := range ev.Chp {
			q.AddBatch(i, p.In.Classes[i].Setup, p.In.Classes[i].Jobs)
		}
		tail := wrap.TailRun{Count: p.M - ev.MExp, A: halfT, B: top}
		placed, err := wrap.Wrap(cheapGaps, tail, &q, p.setups())
		if err != nil {
			return nil, errInternal("splittable cheap wrap failed: %v", err)
		}
		for g, slots := range placed.Machines {
			ri := gapOwner[g]
			out.Runs[ri].Slots = append(out.Runs[ri].Slots, slots...)
		}
		for _, r := range placed.Tail {
			out.AddRun(r.Count, r.Slots)
		}
	}
	return out, nil
}
