// Package core implements the approximation algorithms of Deppert & Jansen,
// "Near-Linear Approximation Algorithms for Scheduling Problems with Batch
// Setup Times" (SPAA 2019):
//
//   - 2-approximations in O(n) for all three variants (Appendix A.2);
//   - 3/2-dual approximations in O(n) for the splittable (Theorem 7),
//     preemptive (Theorems 4/5) and non-preemptive (Theorem 9) variants;
//   - (3/2+eps)-approximations via bracketed dual search (Theorem 2);
//   - exact 3/2-approximations via Class Jumping for the splittable
//     (Theorem 3, Algorithm 1) and preemptive (Theorem 6, Algorithm 4)
//     variants, and via integral binary search for the non-preemptive
//     variant (Theorem 8).
//
// A rho-dual approximation takes a makespan guess T and either builds a
// feasible schedule with makespan <= rho*T or rejects T, certifying
// T < OPT.  All accept/reject decisions here use exact rational arithmetic.
package core

import (
	"fmt"

	"setupsched/internal/num128"
	"setupsched/sched"
)

// cmpProd is the exact sign of a*b - c*d.
func cmpProd(a, b, c, d int64) int { return num128.CmpProd(a, b, c, d) }

// Prep carries the per-instance precomputation shared by all algorithms:
// class work sums, maxima and the trivial bounds.  Build once, reuse for
// every makespan probe.
//
// Concurrency contract: a Prep is immutable after Prepare returns (and the
// instance it wraps must not be mutated while in use).  Every Eval*,
// Build* and Solve* method only reads the Prep and keeps all mutable
// per-probe state in per-call evaluation records (SplitEval, PmtnEval,
// NonpEval) and builder locals, so any number of goroutines may run any
// of them on one shared Prep concurrently.  This is what allows one
// prepared instance to back speculative probing (Ctl.Parallelism) and
// whole-solve fan-out (the public Solver.SolveAll) without copies.
type Prep struct {
	In   *sched.Instance
	M    int64
	C    int
	NJob int

	P      []int64 // P[i] = P(C_i)
	TMaxC  []int64 // max job length per class
	Setups []int64 // Setups[i] = s_i (flat copy shared by all wrap calls)
	SMax   int64
	PJ     int64 // P(J) total work
	SumS   int64 // sum of all setups
	N      int64 // PJ + SumS
	SPT    int64 // max_i (s_i + tmax_i)
}

// Prepare computes the shared per-instance data in O(n).
func Prepare(in *sched.Instance) *Prep {
	p := &Prep{
		In:     in,
		M:      in.M,
		C:      len(in.Classes),
		P:      make([]int64, len(in.Classes)),
		TMaxC:  make([]int64, len(in.Classes)),
		Setups: make([]int64, len(in.Classes)),
	}
	for i := range in.Classes {
		c := &in.Classes[i]
		p.P[i] = c.Work()
		p.TMaxC[i] = c.MaxJob()
		p.Setups[i] = c.Setup
		p.PJ += p.P[i]
		p.SumS += c.Setup
		if c.Setup > p.SMax {
			p.SMax = c.Setup
		}
		if v := c.Setup + p.TMaxC[i]; v > p.SPT {
			p.SPT = v
		}
		p.NJob += len(c.Jobs)
	}
	p.N = p.PJ + p.SumS
	return p
}

// TMin returns the variant-specific trivial lower bound on OPT.
func (p *Prep) TMin(v sched.Variant) sched.Rat {
	perMachine := sched.RatOf(p.N, p.M)
	switch v {
	case sched.Splittable:
		return sched.MaxRat(perMachine, sched.R(p.SMax))
	case sched.Preemptive:
		return sched.MaxRat(perMachine, sched.R(p.SPT))
	default:
		return sched.R(sched.MaxRat(perMachine, sched.R(p.SPT)).Ceil())
	}
}

// setups returns the shared per-class setup slice (for wrap calls).  The
// slice is part of the immutable Prep; callers must not modify it.
func (p *Prep) setups() []int64 { return p.Setups }

// mulRatCmp reports the sign of a*T - b where a, b >= 0 and T is rational,
// computed exactly in 128 bits.
func mulRatCmp(a int64, t sched.Rat, b int64) int {
	return cmpProd(a, t.Num(), b, t.Den())
}

// errInternal wraps construction-invariant violations.  These indicate a
// bug (the dual accept conditions guarantee constructibility) and are
// surfaced rather than silently producing an invalid schedule.
func errInternal(format string, args ...any) error {
	return fmt.Errorf("core: internal invariant violation: "+format, args...)
}
