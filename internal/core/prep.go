// Package core implements the approximation algorithms of Deppert & Jansen,
// "Near-Linear Approximation Algorithms for Scheduling Problems with Batch
// Setup Times" (SPAA 2019):
//
//   - 2-approximations in O(n) for all three variants (Appendix A.2);
//   - 3/2-dual approximations in O(n) for the splittable (Theorem 7),
//     preemptive (Theorems 4/5) and non-preemptive (Theorem 9) variants;
//   - (3/2+eps)-approximations via bracketed dual search (Theorem 2);
//   - exact 3/2-approximations via Class Jumping for the splittable
//     (Theorem 3, Algorithm 1) and preemptive (Theorem 6, Algorithm 4)
//     variants, and via integral binary search for the non-preemptive
//     variant (Theorem 8).
//
// A rho-dual approximation takes a makespan guess T and either builds a
// feasible schedule with makespan <= rho*T or rejects T, certifying
// T < OPT.  All accept/reject decisions here use exact rational arithmetic.
package core

import (
	"cmp"
	"fmt"
	"slices"

	"setupsched/internal/num128"
	"setupsched/sched"
)

// cmpProd is the exact sign of a*b - c*d.
func cmpProd(a, b, c, d int64) int { return num128.CmpProd(a, b, c, d) }

// Prep carries the per-instance precomputation shared by all algorithms:
// class work sums, maxima and the trivial bounds.  Build once, reuse for
// every makespan probe.
//
// Concurrency contract: a Prep is immutable after Prepare returns (and the
// instance it wraps must not be mutated while in use).  Every Eval*,
// Build* and Solve* method only reads the Prep and keeps all mutable
// per-probe state in per-call evaluation records (SplitEval, PmtnEval,
// NonpEval) and builder locals, so any number of goroutines may run any
// of them on one shared Prep concurrently.  This is what allows one
// prepared instance to back speculative probing (Ctl.Parallelism) and
// whole-solve fan-out (the public Solver.SolveAll) without copies.
type Prep struct {
	In   *sched.Instance
	M    int64
	C    int
	NJob int

	P      []int64 // P[i] = P(C_i)
	TMaxC  []int64 // max job length per class
	Setups []int64 // Setups[i] = s_i (flat copy shared by all wrap calls)
	SMax   int64
	PJ     int64 // P(J) total work
	SumS   int64 // sum of all setups
	N      int64 // PJ + SumS
	SPT    int64 // max_i (s_i + tmax_i)

	// SoA eval layout.  The dual tests classify a class's jobs by monotone
	// thresholds on t (big jobs, the K set, the preemptive C*), so with the
	// jobs sorted ascending every classification is a binary search and
	// every classified work sum is one prefix-sum difference — the per-probe
	// cost drops from O(n) to O(c log(max_i |C_i|)).
	//
	// Sorted[i] holds class i's processing times ascending; Pref[i] has
	// length len(Sorted[i])+1 with Pref[i][k] = Sorted[i][0] + ... +
	// Sorted[i][k-1] (so Pref[i][len] = P[i]).  Both are carved from flat
	// arenas by the cold Prepare; Inc replaces only a touched class's
	// segments.  Job sums are exact int64 and addition is commutative, so
	// every quantity read off this layout is bit-identical to the
	// original-order walk it replaces.
	Sorted [][]int64
	Pref   [][]int64
	// SptOrder lists the class indices ordered by ascending
	// (Setups[i]+TMaxC[i], i).  Classes form a suffix of this order exactly
	// when they can demand machines at a guess T (2*(s_i+tmax_i) > T), so
	// the warm-probe fast path walks only that suffix; the last entry also
	// yields SPT, which is how Inc maintains the maximum under removals.
	SptOrder []int32
}

// Prepare computes the shared per-instance data in O(n log(max_i |C_i|))
// — one pass for the sums plus the per-class job sort of the SoA eval
// layout.  The sort is paid once per instance; it buys O(c log) dual-test
// probes, which dominate every search.
func Prepare(in *sched.Instance) *Prep {
	p := &Prep{
		In:     in,
		M:      in.M,
		C:      len(in.Classes),
		P:      make([]int64, len(in.Classes)),
		TMaxC:  make([]int64, len(in.Classes)),
		Setups: make([]int64, len(in.Classes)),
	}
	for i := range in.Classes {
		c := &in.Classes[i]
		p.P[i] = c.Work()
		p.TMaxC[i] = c.MaxJob()
		p.Setups[i] = c.Setup
		p.PJ += p.P[i]
		p.SumS += c.Setup
		if c.Setup > p.SMax {
			p.SMax = c.Setup
		}
		if v := c.Setup + p.TMaxC[i]; v > p.SPT {
			p.SPT = v
		}
		p.NJob += len(c.Jobs)
	}
	p.N = p.PJ + p.SumS
	p.buildSoA()
	return p
}

// buildSoA constructs the sorted-jobs/prefix-sum arrays and the spt class
// order from the instance.  The per-class slices are carved out of two
// flat arenas so the whole layout is three allocations plus the slice
// headers.
func (p *Prep) buildSoA() {
	in := p.In
	sortedArena := make([]int64, p.NJob)
	prefArena := make([]int64, p.NJob+p.C)
	p.Sorted = make([][]int64, p.C)
	p.Pref = make([][]int64, p.C)
	so, po := 0, 0
	for i := range in.Classes {
		jobs := in.Classes[i].Jobs
		seg := sortedArena[so : so+len(jobs) : so+len(jobs)]
		copy(seg, jobs)
		slices.Sort(seg)
		pseg := prefArena[po : po+len(jobs)+1 : po+len(jobs)+1]
		fillPrefix(pseg, seg)
		p.Sorted[i] = seg
		p.Pref[i] = pseg
		so += len(jobs)
		po += len(jobs) + 1
	}
	p.SptOrder = make([]int32, p.C)
	for i := range p.SptOrder {
		p.SptOrder[i] = int32(i)
	}
	slices.SortFunc(p.SptOrder, func(a, b int32) int {
		ba, bb := p.Setups[a]+p.TMaxC[a], p.Setups[b]+p.TMaxC[b]
		if ba != bb {
			return cmp.Compare(ba, bb)
		}
		return cmp.Compare(a, b)
	})
}

// classSoA (re)computes one class's sorted segment and prefix sums into
// fresh slices; Inc uses it to replace a touched class's layout.
func classSoA(jobs []int64) (sorted, pref []int64) {
	sorted = make([]int64, len(jobs))
	copy(sorted, jobs)
	slices.Sort(sorted)
	pref = make([]int64, len(jobs)+1)
	fillPrefix(pref, sorted)
	return sorted, pref
}

func fillPrefix(pref, sorted []int64) {
	var sum int64
	pref[0] = 0
	for k, t := range sorted {
		sum += t
		pref[k+1] = sum
	}
}

// lowerBound64 returns the first index with a[idx] >= v (len(a) if none).
func lowerBound64(a []int64, v int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// TMin returns the variant-specific trivial lower bound on OPT.
func (p *Prep) TMin(v sched.Variant) sched.Rat {
	perMachine := sched.RatOf(p.N, p.M)
	switch v {
	case sched.Splittable:
		return sched.MaxRat(perMachine, sched.R(p.SMax))
	case sched.Preemptive:
		return sched.MaxRat(perMachine, sched.R(p.SPT))
	default:
		return sched.R(sched.MaxRat(perMachine, sched.R(p.SPT)).Ceil())
	}
}

// setups returns the shared per-class setup slice (for wrap calls).  The
// slice is part of the immutable Prep; callers must not modify it.
func (p *Prep) setups() []int64 { return p.Setups }

// mulRatCmp reports the sign of a*T - b where a, b >= 0 and T is rational,
// computed exactly in 128 bits.
func mulRatCmp(a int64, t sched.Rat, b int64) int {
	return cmpProd(a, t.Num(), b, t.Den())
}

// errInternal wraps construction-invariant violations.  These indicate a
// bug (the dual accept conditions guarantee constructibility) and are
// surfaced rather than silently producing an invalid schedule.
func errInternal(format string, args ...any) error {
	return fmt.Errorf("core: internal invariant violation: "+format, args...)
}
