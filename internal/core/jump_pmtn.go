package core

import (
	"setupsched/sched"
)

// SolvePmtnJump is the 3/2-approximation for the preemptive case in
// O(n log n) via Class Jumping (Theorem 6, Algorithm 4).
//
// Compared with the splittable search, the breakpoint set is richer: the
// partition of classes changes at 2 s_i, s_i + P_i, 4(s_i+P_i)/3 and
// 4 s_i, and the membership of individual jobs in the big-job sets C*_i
// changes at 2(s_i + t_j), giving O(n) breakpoints in total.  The jumps of
// the I+exp classes follow the family T = 2(s_i+P_i)/(g+2) of the modified
// step 1 (Section 4.4), for which Lemma 5 bounds the jumps inside the
// final interval by one per class.
//
// The one quantity the paper leaves underspecified is the knapsack
// selection's dependence on T between breakpoints (profits are constant
// but weights and capacity vary continuously).  The closing step therefore
// re-verifies its candidate T_new = L/m with a full point evaluation; if
// the selection shifted, the search subdivides at T_new and retries,
// falling back to a sound conservative answer after a bounded number of
// rounds (see DESIGN.md, "Knapsack constancy").
func (p *Prep) SolvePmtnJump(ctl Ctl) (*Result, error) {
	if err := ctl.interrupted(); err != nil {
		return nil, err
	}
	if p.M >= int64(p.NJob) {
		s := p.oneJobPerMachine(sched.Preemptive)
		return &Result{Schedule: s, T: s.T, LowerBound: s.T, Algorithm: "pmtn/jump"}, nil
	}
	test := func(T sched.Rat) bool { return p.EvalPmtn(T, nil).OK }
	build := func(T sched.Rat) (*sched.Schedule, error) { return p.BuildPmtn(p.EvalPmtn(T, nil)) }
	tmin := p.TMin(sched.Preemptive)
	br := &bracket{lo: tmin, hi: sched.R(p.N), ctl: ctl}
	if br.probe(test, tmin) {
		if err := br.checkpoint(); err != nil {
			return nil, err
		}
		s, err := build(tmin)
		if err != nil {
			return nil, err
		}
		return &Result{Schedule: s, T: tmin, LowerBound: tmin, Algorithm: "pmtn/jump", Probes: br.probes}, nil
	}
	// Warm start: a confirmed seed hi makes the N probe redundant (N >= hi
	// is accepted by monotonicity).
	if !br.seedNarrow(test) {
		if !br.probe(test, sched.R(p.N)) {
			if br.err != nil {
				return nil, br.err
			}
			return nil, errInternal("preemptive dual rejected N")
		}
	}
	if br.err != nil {
		return nil, br.err
	}

	// Breakpoints of the partition and of big-job membership.
	bps := make([]sched.Rat, 0, p.NJob+3*p.C)
	for i := range p.In.Classes {
		cls := &p.In.Classes[i]
		sp := cls.Setup + p.P[i]
		bps = append(bps,
			sched.R(2*cls.Setup),
			sched.R(4*cls.Setup),
			sched.R(sp),
			sched.RatOf(4*sp, 3))
		for _, t := range cls.Jobs {
			bps = append(bps, sched.R(2*(cls.Setup+t)))
		}
	}
	bps = sortRats(bps)

	for round := 0; round < 48 && br.err == nil; round++ {
		br.narrowOnCandidates(test, bps)

		// Jump search for the I+exp classes of the interval's partition.
		evInt := p.EvalPmtn(br.lo, &br.hi)
		if len(evInt.ExpPlus) > 0 {
			f := evInt.ExpPlus[0]
			for _, i := range evInt.ExpPlus {
				if p.In.Classes[i].Setup+p.P[i] > p.In.Classes[f].Setup+p.P[f] {
					f = i
				}
			}
			spf := p.In.Classes[f].Setup + p.P[f]
			jumpAt := func(k int64) sched.Rat { return sched.RatOf(2*spf, k) }
			kLo := sched.FloorDivInt(2*spf, br.hi) + 1
			if kLo < 3 {
				kLo = 3 // gamma is clamped at 1 below k = 3: no jumps there
			}
			kHi := sched.CeilDivInt(2*spf, br.lo) - 1
			br.narrowOnJumps(test, jumpAt, kLo, kHi)

			var cands []sched.Rat
			for _, i := range evInt.ExpPlus {
				if i == f {
					continue
				}
				sp := p.In.Classes[i].Setup + p.P[i]
				k0 := sched.FloorDivInt(2*sp, br.hi) + 1
				if k0 < 3 {
					k0 = 3
				}
				k1 := sched.CeilDivInt(2*sp, br.lo) - 1
				for k := k0; k <= k1 && k-k0 < 8; k++ {
					J := sched.RatOf(2*sp, k)
					if br.lo.Less(J) && J.Less(br.hi) {
						cands = append(cands, J)
					}
				}
			}
			br.narrowOnCandidates(test, sortRats(cands))
		}

		// Closing attempt.
		evInt = p.EvalPmtn(br.lo, &br.hi)
		data := intervalData{machinesOK: !evInt.MachFail, L: evInt.L}
		if !data.machinesOK {
			return p.closeJump(br, data, test, build, "pmtn/jump")
		}
		tNew := sched.RatOf(evInt.L, p.M)
		if !tNew.Less(br.hi) || !br.lo.Less(tNew) {
			return p.closeJump(br, data, test, build, "pmtn/jump")
		}
		// Verify the interval constancy at the candidate point; on a
		// mismatch, subdivide at the candidate and retry.
		if !br.begin(tNew) {
			return nil, br.err
		}
		evPoint := p.EvalPmtn(tNew, nil)
		br.end(tNew, evPoint.OK)
		if evPoint.OK && evPoint.L == evInt.L {
			s, err := p.BuildPmtn(evPoint)
			if err != nil {
				return nil, err
			}
			return br.annotate(&Result{Schedule: s, T: tNew, LowerBound: tNew, Algorithm: "pmtn/jump", Probes: br.probes}, true), nil
		}
		if evPoint.OK {
			br.hi = tNew
		} else {
			br.lo = tNew
		}
	}
	if err := br.checkpoint(); err != nil {
		return nil, err
	}
	// Bounded rounds exhausted: sound conservative fallback.
	s, err := build(br.hi)
	if err != nil {
		return nil, err
	}
	return br.annotate(&Result{Schedule: s, T: br.hi, LowerBound: br.lo, Algorithm: "pmtn/jump/fallback", Probes: br.probes, Fallback: true}, true), nil
}
