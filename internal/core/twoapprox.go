package core

import (
	"setupsched/internal/wrap"
	"setupsched/sched"
)

// TwoApproxSplit is the O(n) 2-approximation for the splittable case
// (Lemma 8): wrap the whole instance as one sequence into m identical gaps
// [s_max, s_max + N/m), leaving room for any setup below each gap.
func (p *Prep) TwoApproxSplit() (*sched.Schedule, error) {
	var q wrap.Sequence
	for i := range p.In.Classes {
		q.AddBatch(i, p.In.Classes[i].Setup, p.In.Classes[i].Jobs)
	}
	a := sched.R(p.SMax)
	b := a.Add(sched.RatOf(p.N, p.M))
	placed, err := wrap.Wrap(nil, wrap.TailRun{Count: p.M, A: a, B: b}, &q, p.setups())
	if err != nil {
		return nil, errInternal("splittable 2-approx wrap failed: %v", err)
	}
	out := &sched.Schedule{Variant: sched.Splittable, T: p.TMin(sched.Splittable)}
	for _, r := range placed.Tail {
		out.AddRun(r.Count, r.Slots)
	}
	return out, nil
}

// nfItem is one next-fit sequence element for the non-preemptive/preemptive
// 2-approximation.
type nfItem struct {
	isSetup bool
	class   int
	job     int
	length  int64
}

// TwoApproxNonPreemptive is the O(n) 2-approximation for the
// non-preemptive (and hence also preemptive) case (Lemma 9): next-fit by
// class with threshold T_min, then move every T_min-crossing item to the
// beginning of the next machine, paying one extra setup for moved jobs.
func (p *Prep) TwoApproxNonPreemptive(v sched.Variant) (*sched.Schedule, error) {
	if v == sched.Splittable {
		return nil, errInternal("TwoApproxNonPreemptive called with splittable variant")
	}
	// Trivial optimum when m >= n: one job (plus setup) per machine.
	if p.M >= int64(p.NJob) {
		return p.oneJobPerMachine(v), nil
	}
	tmin := sched.MaxRat(sched.RatOf(p.N, p.M), sched.R(p.SPT))
	// Work on the scaled threshold exactly: compare load*den vs num.
	tn, td := tmin.Num(), tmin.Den()

	// Pass 1: next-fit with threshold, keeping the crossing item.
	machines := make([][]nfItem, 1, p.M)
	load := make([]int64, 1, p.M)
	cur := 0
	push := func(it nfItem) {
		machines[cur] = append(machines[cur], it)
		load[cur] += it.length
		if cmpProd(load[cur], td, tn, 1) > 0 { // load > T_min: close machine
			machines = append(machines, nil)
			load = append(load, 0)
			cur++
		}
	}
	for i := range p.In.Classes {
		c := &p.In.Classes[i]
		if c.Setup > 0 {
			push(nfItem{isSetup: true, class: i, job: -1, length: c.Setup})
		}
		for j, t := range c.Jobs {
			push(nfItem{class: i, job: j, length: t})
		}
	}
	if int64(len(machines)) > p.M {
		if len(machines[len(machines)-1]) == 0 {
			machines = machines[:len(machines)-1]
		}
		if int64(len(machines)) > p.M {
			return nil, errInternal("2-approx next-fit used %d > m = %d machines", len(machines), p.M)
		}
	}

	// Pass 2: move crossing items (the last item of every machine whose
	// load exceeds T_min) to the beginning of the next machine, with an
	// extra setup for moved jobs.
	type incoming struct {
		items []nfItem
	}
	in := make([]incoming, len(machines))
	for u := 0; u < len(machines)-1; u++ {
		if cmpProd(load[u], td, tn, 1) <= 0 {
			continue
		}
		last := machines[u][len(machines[u])-1]
		machines[u] = machines[u][:len(machines[u])-1]
		if !last.isSetup {
			s := p.In.Classes[last.class].Setup
			if s > 0 {
				in[u+1].items = append(in[u+1].items, nfItem{isSetup: true, class: last.class, job: -1, length: s})
			}
		}
		in[u+1].items = append(in[u+1].items, last)
	}

	out := &sched.Schedule{Variant: v, T: tmin}
	for u := range machines {
		items := append(in[u].items, machines[u]...)
		items = dropUselessSetups(items)
		b := sched.NewMachineBuilder()
		for _, it := range items {
			if it.isSetup {
				b.Place(sched.SlotSetup, it.class, -1, sched.R(it.length))
			} else {
				b.Place(sched.SlotJob, it.class, it.job, sched.R(it.length))
			}
		}
		out.AddMachine(b.Slots())
	}
	return out, nil
}

// dropUselessSetups removes setup items that are not directly followed by
// a job of their class (e.g. setups stranded at the top of a machine).
func dropUselessSetups(items []nfItem) []nfItem {
	keep := items[:0]
	for k := 0; k < len(items); k++ {
		it := items[k]
		if it.isSetup && (k+1 >= len(items) || items[k+1].isSetup || items[k+1].class != it.class) {
			continue
		}
		keep = append(keep, it)
	}
	return keep
}

// oneJobPerMachine returns the trivial optimal schedule for m >= n: every
// job gets its own machine with one setup.  Its makespan is
// max_i (s_i + t_max^(i)) = OPT.
func (p *Prep) oneJobPerMachine(v sched.Variant) *sched.Schedule {
	out := &sched.Schedule{Variant: v, T: sched.R(p.SPT)}
	for i := range p.In.Classes {
		c := &p.In.Classes[i]
		for j := range c.Jobs {
			b := sched.NewMachineBuilder()
			if c.Setup > 0 {
				b.Place(sched.SlotSetup, i, -1, sched.R(c.Setup))
			}
			b.Place(sched.SlotJob, i, j, sched.R(c.Jobs[j]))
			out.AddMachine(b.Slots())
		}
	}
	return out
}
