package core

import (
	"sort"

	"setupsched/internal/wrap"
	"setupsched/sched"
)

// piece is a (possibly fractional) part of a job.
type piece struct {
	job    int
	length sched.Rat
}

// cheapBatch is one class's contribution to the nice instance's cheap wrap
// sequence.
type cheapBatch struct {
	class  int
	pieces []piece
}

// kItem is one job piece destined for the bottom of the large machines.
type kItem struct {
	class  int
	job    int
	length sched.Rat
}

// BuildPmtn constructs a feasible preemptive schedule with makespan at most
// 3/2*T from an accepting point evaluation (Theorem 5(ii), Algorithm 3).
//
// The I0exp classes occupy one large machine each, placed at [T/2, T/2+s+P).
// The knapsack/greedy decision of the evaluation splits the I-chp load into
// a part that joins the nice instance on the other m-l machines and the
// set K placed at the bottoms [0, T/2) of the large machines.  Job pieces
// in K run strictly below T/2 while their sibling pieces in the nice part
// run at or above T/2, so no job ever runs in parallel with itself.
func (p *Prep) BuildPmtn(ev *PmtnEval) (*sched.Schedule, error) {
	if !ev.OK {
		return nil, errInternal("BuildPmtn on rejected evaluation (%s)", ev.Reason)
	}
	T := ev.T
	if ev.RefNum != T.Num() || ev.RefDen != T.Den() {
		return nil, errInternal("BuildPmtn on interval-mode evaluation")
	}
	tn, td := T.Num(), T.Den()
	uDen := 2 * td
	uRat := func(u int64) sched.Rat { return sched.RatOf(u, uDen) }
	halfT := T.Half()
	quarterT := T.Quarter()
	out := &sched.Schedule{Variant: sched.Preemptive, T: T}

	// Step 1: large machines, one I0exp class each, starting at T/2.
	largeRuns := make([]int, 0, len(ev.ExpZero))
	for _, i := range ev.ExpZero {
		cls := &p.In.Classes[i] // expensive, so cls.Setup > T/2 > 0
		b := sched.NewMachineBuilder()
		b.PlaceAt(sched.SlotSetup, i, -1, halfT, sched.R(cls.Setup))
		for j, t := range cls.Jobs {
			b.Place(sched.SlotJob, i, j, sched.R(t))
		}
		largeRuns = append(largeRuns, out.AddMachine(b.Slots()))
	}
	l := int64(len(largeRuns))

	// Step 2: distribute the I-chp load between the nice instance and K.
	var niceCheap []cheapBatch
	var kPieces []kItem
	for _, i := range ev.ChpPlus {
		niceCheap = append(niceCheap, fullBatch(p, i))
	}
	splitClass := -1
	if ev.CaseA {
		splitClass = splitClassOf(ev)
		inStar := make(map[int]int, len(ev.Star))
		for k, i := range ev.Star {
			inStar[i] = k
		}
		for k, i := range ev.Star {
			cls := &p.In.Classes[i]
			switch {
			case ev.Sel[k]:
				niceCheap = append(niceCheap, fullBatch(p, i))
			case k == ev.SplitPos:
				nb, kp, err := splitStarClass(p, ev, i)
				if err != nil {
					return nil, err
				}
				niceCheap = append(niceCheap, nb)
				kPieces = append(kPieces, kp...)
			default:
				// Unselected: obligatory pieces j(2) to the nice part,
				// j(1) pieces and small jobs to K.
				var nice []piece
				for j, t := range cls.Jobs {
					if isBigFor(cls.Setup, t, tn, td) {
						nice = append(nice, piece{j, uRat(2*(cls.Setup+t)*td - tn)})
						kPieces = append(kPieces, kItem{i, j, uRat(tn - 2*cls.Setup*td)})
					} else {
						kPieces = append(kPieces, kItem{i, j, sched.R(t)})
					}
				}
				niceCheap = append(niceCheap, cheapBatch{class: i, pieces: nice})
			}
		}
		for _, i := range ev.ChpMinus {
			if _, ok := inStar[i]; !ok {
				kPieces = append(kPieces, wholeK(p, i)...)
			}
		}
	} else {
		splitClass = ev.BSplit
		for _, i := range ev.Star {
			niceCheap = append(niceCheap, fullBatch(p, i))
		}
		for _, i := range ev.NiceRest {
			niceCheap = append(niceCheap, fullBatch(p, i))
		}
		if ev.BSplit >= 0 {
			cls := &p.In.Classes[ev.BSplit]
			budget := ev.BSplitU
			var nice []piece
			for j, t := range cls.Jobs {
				maxU := 2 * t * td
				take := maxU
				if take > budget {
					take = budget
				}
				budget -= take
				if take > 0 {
					nice = append(nice, piece{j, uRat(take)})
				}
				if take < maxU {
					kPieces = append(kPieces, kItem{ev.BSplit, j, uRat(maxU - take)})
				}
			}
			if budget != 0 {
				return nil, errInternal("case-B split budget not exhausted (%d units left)", budget)
			}
			niceCheap = append(niceCheap, cheapBatch{class: ev.BSplit, pieces: nice})
		}
		for _, i := range ev.KRest {
			kPieces = append(kPieces, wholeK(p, i)...)
		}
	}

	// Step 3: the nice instance on the residual m-l machines.
	niceRuns, err := p.buildNice(T, p.M-l, ev.ExpPlus, ev.Gamma, ev.ExpMinus, niceCheap)
	if err != nil {
		return nil, err
	}
	out.Runs = append(out.Runs, niceRuns...)

	// Step 4: place K at the bottoms of the large machines.
	if len(kPieces) > 0 {
		if err := p.placeK(out, largeRuns, kPieces, splitClass, halfT, quarterT); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// splitClassOf returns the class index of the case-A split item, or -1.
func splitClassOf(ev *PmtnEval) int {
	if ev.SplitPos >= 0 {
		return ev.Star[ev.SplitPos]
	}
	return -1
}

// isBigFor reports s + t > T/2, i.e. 2(s+t) > T.
func isBigFor(s, t, tn, td int64) bool {
	return cmpProd(2*(s+t), td, tn, 1) > 0
}

// fullBatch returns the whole class as a cheap batch.
func fullBatch(p *Prep, class int) cheapBatch {
	cls := &p.In.Classes[class]
	pieces := make([]piece, len(cls.Jobs))
	for j, t := range cls.Jobs {
		pieces[j] = piece{j, sched.R(t)}
	}
	return cheapBatch{class: class, pieces: pieces}
}

// wholeK returns every job of the class as a K item.
func wholeK(p *Prep, class int) []kItem {
	cls := &p.In.Classes[class]
	items := make([]kItem, len(cls.Jobs))
	for j, t := range cls.Jobs {
		items[j] = kItem{class, j, sched.R(t)}
	}
	return items
}

// splitStarClass distributes the split class's jobs between the nice part
// and K so that the nice part receives exactly L*_e + x_e*w_e and every K
// piece j[1] keeps s_e + t <= T/2 (paper equation (6) and Note 3; we use a
// per-job greedy that preserves the same invariants with small-denominator
// rationals, see DESIGN.md).
func splitStarClass(p *Prep, ev *PmtnEval, class int) (cheapBatch, []kItem, error) {
	cls := &p.In.Classes[class]
	tn, td := ev.RefNum, ev.RefDen
	uDen := 2 * td
	surplus := ev.SplitU
	var nice []piece
	var ks []kItem
	for j, t := range cls.Jobs {
		var minU int64
		if isBigFor(cls.Setup, t, tn, td) {
			minU = 2*(cls.Setup+t)*td - tn // t(2)_j units
		}
		maxU := 2 * t * td
		raise := maxU - minU
		if raise > surplus {
			raise = surplus
		}
		surplus -= raise
		t2 := minU + raise
		if t2 > 0 {
			nice = append(nice, piece{j, sched.RatOf(t2, uDen)})
		}
		if t2 < maxU {
			ks = append(ks, kItem{class, j, sched.RatOf(maxU-t2, uDen)})
		}
	}
	if surplus != 0 {
		return cheapBatch{}, nil, errInternal("split-class surplus %d units not distributed", surplus)
	}
	return cheapBatch{class: class, pieces: nice}, ks, nil
}

// placeK places the K pieces at the bottoms [0, T/2) of the large
// machines: pieces longer than T/4 (K+) each get a dedicated bottom with
// their own setup; the rest (K-) is wrapped into a first full gap
// [0, T/2) and gaps [T/4, T/2) on the remaining large machines, ordered by
// class with the split class first.
func (p *Prep) placeK(out *sched.Schedule, largeRuns []int, kPieces []kItem, splitClass int, halfT, quarterT sched.Rat) error {
	var kPlus, kMinus []kItem
	for _, it := range kPieces {
		if it.length.Cmp(quarterT) > 0 {
			kPlus = append(kPlus, it)
		} else {
			kMinus = append(kMinus, it)
		}
	}
	if len(kPlus) > len(largeRuns) {
		return errInternal("K+ needs %d large machines, have %d", len(kPlus), len(largeRuns))
	}
	for k, it := range kPlus {
		s := p.In.Classes[it.class].Setup
		if sched.R(s).Add(it.length).Cmp(halfT) > 0 {
			return errInternal("K+ piece of class %d exceeds T/2", it.class)
		}
		b := sched.NewMachineBuilder()
		if s > 0 {
			b.Place(sched.SlotSetup, it.class, -1, sched.R(s))
		}
		b.Place(sched.SlotJob, it.class, it.job, it.length)
		run := &out.Runs[largeRuns[k]]
		run.Slots = append(b.Slots(), run.Slots...)
	}
	if len(kMinus) == 0 {
		return nil
	}
	lPrime := len(kPlus)
	if lPrime >= len(largeRuns) {
		return errInternal("no large machines left for K- wrap")
	}
	// Group by class, split class first, then ascending class index.
	sort.SliceStable(kMinus, func(a, b int) bool {
		ca, cb := kMinus[a].class, kMinus[b].class
		if (ca == splitClass) != (cb == splitClass) {
			return ca == splitClass
		}
		return ca < cb
	})
	var q wrap.Sequence
	last := -1
	for _, it := range kMinus {
		if it.class != last {
			q.AddSetup(it.class, p.In.Classes[it.class].Setup)
			last = it.class
		}
		q.AddJob(it.class, it.job, it.length)
	}
	gaps := make([]wrap.Gap, 0, len(largeRuns)-lPrime)
	gaps = append(gaps, wrap.Gap{Machine: int64(lPrime), A: sched.Rat{}, B: halfT})
	for g := lPrime + 1; g < len(largeRuns); g++ {
		gaps = append(gaps, wrap.Gap{Machine: int64(g), A: quarterT, B: halfT})
	}
	placed, err := wrap.Wrap(gaps, wrap.TailRun{}, &q, p.setups())
	if err != nil {
		return errInternal("K- wrap failed: %v", err)
	}
	for g, slots := range placed.Machines {
		if len(slots) == 0 {
			continue
		}
		run := &out.Runs[largeRuns[lPrime+g]]
		run.Slots = append(append([]sched.Slot(nil), slots...), run.Slots...)
	}
	return nil
}

// buildNice schedules a nice instance (empty I0exp) on `budget` fresh
// machines (Theorem 4(ii), Algorithm 2 with the Section 4.4 step 1):
//
//	step 1: each I+exp class i fills gamma_i machines, the first
//	        gamma_i - 1 to exactly s_i + T/2 (> T) and the last to at
//	        most 3/2 T;
//	step 2: I-exp classes are paired two per machine (load in (T, 3/2T]);
//	        an odd last class sits alone on machine mu;
//	step 3: the cheap load is wrapped into the gap [T, 3/2T) of mu and
//	        gaps [T/2, 3/2T) on the remaining machines.
func (p *Prep) buildNice(T sched.Rat, budget int64, expPlus []int, gamma []int64, expMinus []int, cheap []cheapBatch) ([]sched.MachineRun, error) {
	halfT := T.Half()
	top := T.MulInt(3).DivInt(2)
	var runs []sched.MachineRun
	used := int64(0)

	// Step 1.
	for k, i := range expPlus {
		cls := &p.In.Classes[i]
		g := gamma[k]
		jobIdx, jobLeft := 0, sched.R(cls.Jobs[0])
		for u := int64(0); u < g; u++ {
			b := sched.NewMachineBuilder()
			if cls.Setup > 0 {
				b.Place(sched.SlotSetup, i, -1, sched.R(cls.Setup))
			}
			cap := halfT
			if u == g-1 {
				cap = sched.R(p.P[i]).Sub(halfT.MulInt(g - 1))
			}
			for cap.Sign() > 0 && jobIdx < len(cls.Jobs) {
				take := sched.MinRat(cap, jobLeft)
				b.Place(sched.SlotJob, i, jobIdx, take)
				cap = cap.Sub(take)
				jobLeft = jobLeft.Sub(take)
				if jobLeft.IsZero() {
					jobIdx++
					if jobIdx < len(cls.Jobs) {
						jobLeft = sched.R(cls.Jobs[jobIdx])
					}
				}
			}
			if b.Top().Cmp(top) > 0 {
				return nil, errInternal("nice step 1 machine exceeds 3/2T (class %d)", i)
			}
			runs = append(runs, sched.MachineRun{Count: 1, Slots: b.Slots()})
			used++
		}
		if jobIdx < len(cls.Jobs) {
			return nil, errInternal("nice step 1 left work of class %d", i)
		}
	}

	// Step 2.
	muIdx := -1
	for k := 0; k < len(expMinus); k += 2 {
		b := sched.NewMachineBuilder()
		for _, i := range []int{expMinus[k], pairOrNeg(expMinus, k+1)} {
			if i < 0 {
				continue
			}
			cls := &p.In.Classes[i]
			if cls.Setup > 0 {
				b.Place(sched.SlotSetup, i, -1, sched.R(cls.Setup))
			}
			for j, t := range cls.Jobs {
				b.Place(sched.SlotJob, i, j, sched.R(t))
			}
		}
		if k+1 >= len(expMinus) {
			muIdx = len(runs)
		}
		runs = append(runs, sched.MachineRun{Count: 1, Slots: b.Slots()})
		used++
	}

	// Step 3.
	var q wrap.Sequence
	for _, batch := range cheap {
		if len(batch.pieces) == 0 {
			continue
		}
		q.AddSetup(batch.class, p.In.Classes[batch.class].Setup)
		for _, pc := range batch.pieces {
			q.AddJob(batch.class, pc.job, pc.length)
		}
	}
	if q.Len() > 0 {
		var gaps []wrap.Gap
		if muIdx >= 0 {
			gaps = append(gaps, wrap.Gap{Machine: int64(muIdx), A: T, B: top})
		}
		tail := wrap.TailRun{Count: budget - used, A: halfT, B: top}
		if tail.Count < 0 {
			return nil, errInternal("nice instance machine budget exceeded (%d used of %d)", used, budget)
		}
		placed, err := wrap.Wrap(gaps, tail, &q, p.setups())
		if err != nil {
			return nil, errInternal("nice cheap wrap failed: %v", err)
		}
		if muIdx >= 0 && len(placed.Machines) > 0 {
			runs[muIdx].Slots = append(runs[muIdx].Slots, placed.Machines[0]...)
		}
		for _, r := range placed.Tail {
			runs = append(runs, r)
		}
	}
	return runs, nil
}

func pairOrNeg(xs []int, k int) int {
	if k < len(xs) {
		return xs[k]
	}
	return -1
}
