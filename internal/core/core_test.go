package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	. "setupsched/internal/core"
	"setupsched/internal/exact"
	"setupsched/sched"
	"setupsched/schedgen"
)

// smallRandomInstance draws a tiny instance suitable for exact solving.
func smallRandomInstance(rng *rand.Rand) *sched.Instance {
	m := int64(1 + rng.Intn(4))
	c := 1 + rng.Intn(4)
	in := &sched.Instance{M: m}
	jobsLeft := 2 + rng.Intn(7) // <= 8 jobs
	for i := 0; i < c; i++ {
		nj := 1
		if i == c-1 {
			nj = jobsLeft - (c - 1 - i)
		} else if jobsLeft > c-i {
			nj = 1 + rng.Intn(jobsLeft-(c-i))
		}
		if nj < 1 {
			nj = 1
		}
		jobsLeft -= nj
		cl := sched.Class{Setup: rng.Int63n(13)}
		for j := 0; j < nj; j++ {
			cl.Jobs = append(cl.Jobs, 1+rng.Int63n(16))
		}
		in.Classes = append(in.Classes, cl)
		if jobsLeft <= 0 && i+1 < c {
			c = i + 1
			break
		}
	}
	in.Classes = in.Classes[:c]
	return in
}

// checkResult validates a solver result against the dual guarantee.
func checkResult(t *testing.T, in *sched.Instance, v sched.Variant, r *Result, ratio int64, tag string) {
	t.Helper()
	if err := r.Schedule.Validate(in); err != nil {
		t.Fatalf("%s: invalid schedule: %v", tag, err)
	}
	if r.Schedule.Variant != v {
		t.Fatalf("%s: variant %v, want %v", tag, r.Schedule.Variant, v)
	}
	// makespan <= ratio/2 * T
	bound := r.T.MulInt(ratio).Half()
	if err := r.Schedule.CheckMakespanAtMost(bound); err != nil {
		t.Fatalf("%s: %v (T=%s)", tag, err, r.T)
	}
	if r.LowerBound.Sign() <= 0 {
		t.Fatalf("%s: non-positive lower bound %s", tag, r.LowerBound)
	}
	lb := in.LowerBound(v)
	if r.LowerBound.Less(lb) {
		t.Fatalf("%s: reported lower bound %s below trivial bound %s", tag, r.LowerBound, lb)
	}
}

func TestSolversOnSmallRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for iter := 0; iter < 1500; iter++ {
		in := smallRandomInstance(rng)
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		p := Prepare(in)
		tag := func(s string) string { return fmt.Sprintf("iter %d %s (%+v)", iter, s, in) }

		optNonp, errN := exact.NonPreemptive(in)
		optSplit, errS := exact.Splittable(in)

		// --- splittable ---
		r2, err := p.SolveSplit2(Ctl{})
		if err != nil {
			t.Fatalf("%s: %v", tag("split2"), err)
		}
		checkResult(t, in, sched.Splittable, r2, 4, tag("split2"))
		re, err := p.SolveEps(Ctl{}, sched.Splittable, 1e-4)
		if err != nil {
			t.Fatalf("%s: %v", tag("splitEps"), err)
		}
		checkResult(t, in, sched.Splittable, re, 3, tag("splitEps"))
		rj, err := p.SolveSplitJump(Ctl{})
		if err != nil {
			t.Fatalf("%s: %v", tag("splitJump"), err)
		}
		checkResult(t, in, sched.Splittable, rj, 3, tag("splitJump"))
		if errS == nil {
			if optSplit.Less(rj.LowerBound) {
				t.Fatalf("%s: certified LB %s exceeds exact OPT %s", tag("splitJump"), rj.LowerBound, optSplit)
			}
			mk := rj.Schedule.Makespan()
			if optSplit.MulInt(3).Half().Less(mk) {
				t.Fatalf("%s: makespan %s > 1.5*OPT (OPT=%s)", tag("splitJump"), mk, optSplit)
			}
		}

		// --- non-preemptive ---
		rn2, err := p.SolveNonp2(Ctl{}, sched.NonPreemptive)
		if err != nil {
			t.Fatalf("%s: %v", tag("nonp2"), err)
		}
		checkResult(t, in, sched.NonPreemptive, rn2, 4, tag("nonp2"))
		rne, err := p.SolveEps(Ctl{}, sched.NonPreemptive, 1e-4)
		if err != nil {
			t.Fatalf("%s: %v", tag("nonpEps"), err)
		}
		checkResult(t, in, sched.NonPreemptive, rne, 3, tag("nonpEps"))
		rnb, err := p.SolveNonpSearch(Ctl{})
		if err != nil {
			t.Fatalf("%s: %v", tag("nonpSearch"), err)
		}
		checkResult(t, in, sched.NonPreemptive, rnb, 3, tag("nonpSearch"))
		if errN == nil {
			if sched.R(optNonp).Less(rnb.LowerBound) {
				t.Fatalf("%s: certified LB %s exceeds exact OPT %d", tag("nonpSearch"), rnb.LowerBound, optNonp)
			}
			mk := rnb.Schedule.Makespan()
			if sched.R(optNonp).MulInt(3).Half().Less(mk) {
				t.Fatalf("%s: makespan %s > 1.5*OPT (OPT=%d)", tag("nonpSearch"), mk, optNonp)
			}
		}

		// --- preemptive ---
		rp2, err := p.SolveNonp2(Ctl{}, sched.Preemptive)
		if err != nil {
			t.Fatalf("%s: %v", tag("pmtn2"), err)
		}
		checkResult(t, in, sched.Preemptive, rp2, 4, tag("pmtn2"))
		rpe, err := p.SolveEps(Ctl{}, sched.Preemptive, 1e-4)
		if err != nil {
			t.Fatalf("%s: %v", tag("pmtnEps"), err)
		}
		checkResult(t, in, sched.Preemptive, rpe, 3, tag("pmtnEps"))
		rpj, err := p.SolvePmtnJump(Ctl{})
		if err != nil {
			t.Fatalf("%s: %v", tag("pmtnJump"), err)
		}
		checkResult(t, in, sched.Preemptive, rpj, 3, tag("pmtnJump"))
		if errN == nil {
			// OPT_pmtn <= OPT_nonp, so the certified bound must not exceed
			// the exact non-preemptive optimum...
			if sched.R(optNonp).Less(rpj.LowerBound) {
				t.Fatalf("%s: certified LB %s exceeds OPT_nonp %d >= OPT_pmtn", tag("pmtnJump"), rpj.LowerBound, optNonp)
			}
			mk := rpj.Schedule.Makespan()
			if sched.R(optNonp).MulInt(3).Half().Less(mk) {
				t.Fatalf("%s: makespan %s > 1.5*OPT_nonp (OPT_nonp=%d)", tag("pmtnJump"), mk, optNonp)
			}
		}
		if errS == nil {
			// ... and the preemptive makespan can never beat OPT_split.
			if rpj.Schedule.Makespan().Less(optSplit) {
				t.Fatalf("%s: makespan %s below OPT_split %s", tag("pmtnJump"), rpj.Schedule.Makespan(), optSplit)
			}
		}
	}
}

// TestDualSoundness sweeps makespan guesses and checks that rejections are
// sound (a rejected T certifies T < OPT) and that accepted guesses build
// valid schedules within 3/2*T.
func TestDualSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 400; iter++ {
		in := smallRandomInstance(rng)
		p := Prepare(in)
		optNonp, errN := exact.NonPreemptive(in)
		optSplit, errS := exact.Splittable(in)
		n := in.N()
		for _, num := range []int64{1, 2, 3} {
			for den := int64(1); den <= 3; den++ {
				T := sched.RatOf(num*n, 2*den)
				if T.Sign() <= 0 {
					continue
				}
				// Splittable.
				ev := p.EvalSplit(T, nil)
				if ev.OK {
					s, err := p.BuildSplit(ev)
					if err != nil {
						t.Fatalf("iter %d: split build at %s: %v\n%+v", iter, T, err, in)
					}
					if err := s.Validate(in); err != nil {
						t.Fatalf("iter %d: split at %s: %v\n%+v", iter, T, err, in)
					}
					if err := s.CheckMakespanAtMost(T.MulInt(3).Half()); err != nil {
						t.Fatalf("iter %d: split at %s: %v", iter, T, err)
					}
				} else if errS == nil && !T.Less(optSplit) {
					t.Fatalf("iter %d: split dual rejected T=%s >= OPT=%s (%s)\n%+v",
						iter, T, optSplit, ev.Reason, in)
				}
				// Preemptive.
				evp := p.EvalPmtn(T, nil)
				if evp.OK {
					s, err := p.BuildPmtn(evp)
					if err != nil {
						t.Fatalf("iter %d: pmtn build at %s: %v\n%+v", iter, T, err, in)
					}
					if err := s.Validate(in); err != nil {
						t.Fatalf("iter %d: pmtn at %s: %v\n%+v", iter, T, err, in)
					}
					if err := s.CheckMakespanAtMost(T.MulInt(3).Half()); err != nil {
						t.Fatalf("iter %d: pmtn at %s: %v", iter, T, err)
					}
				} else if errN == nil && !T.Less(sched.R(optNonp)) {
					t.Fatalf("iter %d: pmtn dual rejected T=%s >= OPT_nonp=%d >= OPT_pmtn (%s)\n%+v",
						iter, T, optNonp, evp.Reason, in)
				}
				// Non-preemptive.
				evn := p.EvalNonp(T)
				if evn.OK {
					s, err := p.BuildNonp(evn)
					if err != nil {
						t.Fatalf("iter %d: nonp build at %s: %v\n%+v", iter, T, err, in)
					}
					if err := s.Validate(in); err != nil {
						t.Fatalf("iter %d: nonp at %s: %v\n%+v", iter, T, err, in)
					}
					if err := s.CheckMakespanAtMost(sched.R(evn.T).MulInt(3).Half()); err != nil {
						t.Fatalf("iter %d: nonp at %s: %v", iter, T, err)
					}
				} else if errN == nil && sched.R(optNonp).CmpInt(evn.T) <= 0 && evn.T >= 1 {
					t.Fatalf("iter %d: nonp dual rejected T=%d >= OPT=%d (%s)\n%+v",
						iter, evn.T, optNonp, evn.Reason, in)
				}
			}
		}
	}
}

// TestGeneratorFamiliesMediumSize runs every solver on medium instances
// from all generator families.
func TestGeneratorFamiliesMediumSize(t *testing.T) {
	for _, fam := range schedgen.Families {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			for seed := int64(0); seed < 6; seed++ {
				in := fam.Make(schedgen.Params{
					M: 3 + seed*2, Classes: 8 + int(seed), JobsPer: 5,
					MaxSetup: 40, MaxJob: 60, Seed: seed,
				})
				if err := in.Validate(); err != nil {
					t.Fatal(err)
				}
				p := Prepare(in)
				for _, run := range []struct {
					name  string
					ratio int64
					v     sched.Variant
					f     func() (*Result, error)
				}{
					{"split2", 4, sched.Splittable, func() (*Result, error) { return p.SolveSplit2(Ctl{}) }},
					{"splitJump", 3, sched.Splittable, func() (*Result, error) { return p.SolveSplitJump(Ctl{}) }},
					{"pmtn2", 4, sched.Preemptive, func() (*Result, error) { return p.SolveNonp2(Ctl{}, sched.Preemptive) }},
					{"pmtnJump", 3, sched.Preemptive, func() (*Result, error) { return p.SolvePmtnJump(Ctl{}) }},
					{"nonp2", 4, sched.NonPreemptive, func() (*Result, error) { return p.SolveNonp2(Ctl{}, sched.NonPreemptive) }},
					{"nonpSearch", 3, sched.NonPreemptive, func() (*Result, error) { return p.SolveNonpSearch(Ctl{}) }},
					{"splitEps", 3, sched.Splittable, func() (*Result, error) { return p.SolveEps(Ctl{}, sched.Splittable, 0.01) }},
					{"pmtnEps", 3, sched.Preemptive, func() (*Result, error) { return p.SolveEps(Ctl{}, sched.Preemptive, 0.01) }},
					{"nonpEps", 3, sched.NonPreemptive, func() (*Result, error) { return p.SolveEps(Ctl{}, sched.NonPreemptive, 0.01) }},
				} {
					r, err := run.f()
					if err != nil {
						t.Fatalf("seed %d %s: %v", seed, run.name, err)
					}
					tag := fmt.Sprintf("%s seed %d %s", fam.Name, seed, run.name)
					checkResult(t, in, run.v, r, run.ratio, tag)
				}
			}
		})
	}
}

// TestTrivialAndEdgeInstances exercises the corner cases.
func TestTrivialAndEdgeInstances(t *testing.T) {
	cases := []*sched.Instance{
		{M: 1, Classes: []sched.Class{{Setup: 5, Jobs: []int64{3}}}},
		{M: 1, Classes: []sched.Class{{Setup: 0, Jobs: []int64{1}}}},
		{M: 8, Classes: []sched.Class{{Setup: 1, Jobs: []int64{1}}}},       // m >> n
		{M: 1000000, Classes: []sched.Class{{Setup: 3, Jobs: []int64{7}}}}, // huge m, splittable
		{M: 2, Classes: []sched.Class{{Setup: 100, Jobs: []int64{1, 1}}, {Setup: 100, Jobs: []int64{1}}}},
		{M: 3, Classes: []sched.Class{{Setup: 0, Jobs: []int64{9, 9, 9}}, {Setup: 0, Jobs: []int64{5}}}},
		{M: 2, Classes: []sched.Class{
			{Setup: 10, Jobs: []int64{1}}, {Setup: 1, Jobs: []int64{20, 20}}, {Setup: 2, Jobs: []int64{3, 3, 3}},
		}},
	}
	for ci, in := range cases {
		if err := in.Validate(); err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		p := Prepare(in)
		for vi, solve := range []func() (*Result, error){
			func() (*Result, error) { return p.SolveSplit2(Ctl{}) },
			func() (*Result, error) { return p.SolveSplitJump(Ctl{}) },
			func() (*Result, error) { return p.SolveNonp2(Ctl{}, sched.Preemptive) },
			func() (*Result, error) { return p.SolvePmtnJump(Ctl{}) },
			func() (*Result, error) { return p.SolveNonp2(Ctl{}, sched.NonPreemptive) },
			func() (*Result, error) { return p.SolveNonpSearch(Ctl{}) },
		} {
			r, err := solve()
			if err != nil {
				t.Fatalf("case %d solver %d: %v", ci, vi, err)
			}
			if err := r.Schedule.Validate(in); err != nil {
				t.Fatalf("case %d solver %d: %v", ci, vi, err)
			}
		}
	}
}

// TestAcceptAtN asserts the dual tests accept the trivial upper bound N,
// a prerequisite for the searches' initial bracket.
func TestAcceptAtN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 800; iter++ {
		in := smallRandomInstance(rng)
		p := Prepare(in)
		N := sched.R(in.N())
		if ev := p.EvalSplit(N, nil); !ev.OK {
			t.Fatalf("iter %d: split rejected N: %s\n%+v", iter, ev.Reason, in)
		}
		if ev := p.EvalPmtn(N, nil); !ev.OK {
			t.Fatalf("iter %d: pmtn rejected N: %s\n%+v", iter, ev.Reason, in)
		}
		if ev := p.EvalNonp(N); !ev.OK {
			t.Fatalf("iter %d: nonp rejected N: %s\n%+v", iter, ev.Reason, in)
		}
	}
}
