package core

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"setupsched/sched"
	"setupsched/schedgen"
)

// stressSeed is the single source of randomness for the stress tests.
// Every rand source and generator seed below derives from it, and it is
// always logged, so any stress failure is reproduced by rerunning with
// SETUPSCHED_STRESS_SEED set to the logged value.
func stressSeed(t *testing.T, fallback int64) int64 {
	t.Helper()
	if env := os.Getenv("SETUPSCHED_STRESS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad SETUPSCHED_STRESS_SEED %q: %v", env, err)
		}
		t.Logf("stress seed %d (from SETUPSCHED_STRESS_SEED)", v)
		return v
	}
	t.Logf("stress seed %d (override with SETUPSCHED_STRESS_SEED)", fallback)
	return fallback
}

// TestStressLargeInstances runs the full searches on larger instances
// across all families and validates every schedule.  Use -short to skip.
func TestStressLargeInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	for _, fam := range schedgen.Families {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			t.Parallel()
			seed := stressSeed(t, 1)
			for _, size := range []struct {
				m       int64
				classes int
			}{
				{7, 200},
				{63, 1500},
			} {
				in := fam.Make(schedgen.Params{
					M: size.m, Classes: size.classes, JobsPer: 6,
					MaxSetup: 500, MaxJob: 700, Seed: seed + int64(size.classes),
				})
				p := Prepare(in)
				for _, run := range []struct {
					name string
					f    func() (*Result, error)
				}{
					{"splitJump", func() (*Result, error) { return p.SolveSplitJump(Ctl{}) }},
					{"pmtnJump", func() (*Result, error) { return p.SolvePmtnJump(Ctl{}) }},
					{"nonpSearch", func() (*Result, error) { return p.SolveNonpSearch(Ctl{}) }},
				} {
					r, err := run.f()
					if err != nil {
						t.Fatalf("%s n=%d: %v", run.name, in.NumJobs(), err)
					}
					if err := r.Schedule.Validate(in); err != nil {
						t.Fatalf("%s n=%d: %v", run.name, in.NumJobs(), err)
					}
					if err := r.Schedule.CheckMakespanAtMost(r.T.MulInt(3).Half()); err != nil {
						t.Fatalf("%s n=%d: %v", run.name, in.NumJobs(), err)
					}
					if r.T.Less(r.LowerBound) {
						t.Fatalf("%s: accepted guess %s below certified bound %s", run.name, r.T, r.LowerBound)
					}
				}
			}
		})
	}
}

// TestStressHugeMachineCounts exercises the splittable run compression on
// machine counts far beyond the job count.
func TestStressHugeMachineCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(stressSeed(t, 31)))
	for iter := 0; iter < 25; iter++ {
		in := &sched.Instance{M: 1 << (10 + rng.Intn(16))}
		c := 1 + rng.Intn(12)
		for i := 0; i < c; i++ {
			cl := sched.Class{Setup: rng.Int63n(100)}
			for j := 0; j <= rng.Intn(5); j++ {
				cl.Jobs = append(cl.Jobs, 1+rng.Int63n(1000))
			}
			in.Classes = append(in.Classes, cl)
		}
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		p := Prepare(in)
		r, err := p.SolveSplitJump(Ctl{})
		if err != nil {
			t.Fatalf("iter %d (m=%d): %v", iter, in.M, err)
		}
		if err := r.Schedule.Validate(in); err != nil {
			t.Fatalf("iter %d (m=%d): %v", iter, in.M, err)
		}
		// The schedule must stay compact regardless of m.
		if r.Schedule.NumSlots() > 20*in.NumJobs()+100 {
			t.Fatalf("iter %d: schedule blew up to %d slots for %d jobs",
				iter, r.Schedule.NumSlots(), in.NumJobs())
		}
		// Splittable makespan shrinks with m: for huge m it approaches
		// max(s_i + something) scale; sanity: <= 3/2 * (s_max + t_max).
		bound := sched.R(p.SMax + maxJob(in)).MulInt(3).Half()
		if bound.Less(r.Schedule.Makespan()) {
			t.Fatalf("iter %d: makespan %s above saturation bound %s", iter, r.Schedule.Makespan(), bound)
		}
	}
}

func maxJob(in *sched.Instance) int64 {
	var mx int64
	for i := range in.Classes {
		if v := in.Classes[i].MaxJob(); v > mx {
			mx = v
		}
	}
	return mx
}

// TestEpsAccuracy confirms the eps-search honors tighter tolerances with
// more probes and never widens the certified gap beyond eps.
func TestEpsAccuracy(t *testing.T) {
	in := schedgen.Uniform(schedgen.Params{M: 5, Classes: 30, JobsPer: 4, MaxSetup: 90, MaxJob: 120, Seed: 3})
	p := Prepare(in)
	var lastGap float64
	for i, eps := range []float64{0.5, 0.05, 0.005, 0.0005} {
		r, err := p.SolveEps(Ctl{}, sched.Preemptive, eps)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Schedule.Validate(in); err != nil {
			t.Fatal(err)
		}
		gap := r.T.Sub(r.LowerBound).Float64() / r.LowerBound.Float64()
		if gap > eps*1.0001 {
			t.Errorf("eps=%g: certified relative gap %g exceeds eps", eps, gap)
		}
		if i > 0 && gap > lastGap+1e-12 && lastGap > 0 {
			t.Errorf("eps=%g: gap %g did not improve on %g", eps, gap, lastGap)
		}
		lastGap = gap
	}
}

// TestDeterminism: identical inputs must give identical schedules.
func TestDeterminism(t *testing.T) {
	in := schedgen.BigJobs(schedgen.Params{M: 6, Classes: 40, JobsPer: 5, MaxSetup: 70, MaxJob: 90, Seed: 9})
	for _, f := range []func(*Prep) (*Result, error){
		func(p *Prep) (*Result, error) { return p.SolveSplitJump(Ctl{}) },
		func(p *Prep) (*Result, error) { return p.SolvePmtnJump(Ctl{}) },
		func(p *Prep) (*Result, error) { return p.SolveNonpSearch(Ctl{}) },
	} {
		a, err := f(Prepare(in))
		if err != nil {
			t.Fatal(err)
		}
		b, err := f(Prepare(in.Clone()))
		if err != nil {
			t.Fatal(err)
		}
		if !a.Schedule.Makespan().Equal(b.Schedule.Makespan()) ||
			a.Schedule.NumSlots() != b.Schedule.NumSlots() ||
			a.Probes != b.Probes {
			t.Errorf("nondeterministic result: %v vs %v", a.Schedule, b.Schedule)
		}
	}
}
