package core_test

import (
	"testing"

	. "setupsched/internal/core"
	"setupsched/internal/exact"
	"setupsched/sched"
)

// TestBoundaryInstances places values exactly on the partition thresholds
// (s = T/2, s = T/4, s+t = T/2, s+P = 3/4T, t = T/2) and sweeps guesses.
func TestBoundaryInstances(t *testing.T) {
	const T = 40
	in := &sched.Instance{M: 4, Classes: []sched.Class{
		{Setup: T / 2, Jobs: []int64{T / 2}},        // s = T/2 exactly, s+t = T
		{Setup: T / 4, Jobs: []int64{T / 4}},        // s = T/4 exactly, s+t = T/2
		{Setup: T/4 - 1, Jobs: []int64{T/4 + 1, 3}}, // s+t = T/2 exactly
		{Setup: T/2 + 1, Jobs: []int64{T/4 - 1, 4}}, // expensive, s+P = 3/4T - ish
	}}
	p := Prepare(in)
	optN, errN := exact.NonPreemptive(in)
	for guess := int64(1); guess <= 2*T; guess++ {
		TR := sched.R(guess)
		for _, run := range []struct {
			name string
			eval func() (bool, func() (*sched.Schedule, error))
		}{
			{"split", func() (bool, func() (*sched.Schedule, error)) {
				ev := p.EvalSplit(TR, nil)
				return ev.OK, func() (*sched.Schedule, error) { return p.BuildSplit(ev) }
			}},
			{"pmtn", func() (bool, func() (*sched.Schedule, error)) {
				ev := p.EvalPmtn(TR, nil)
				return ev.OK, func() (*sched.Schedule, error) { return p.BuildPmtn(ev) }
			}},
			{"nonp", func() (bool, func() (*sched.Schedule, error)) {
				ev := p.EvalNonp(TR)
				return ev.OK, func() (*sched.Schedule, error) { return p.BuildNonp(ev) }
			}},
		} {
			ok, build := run.eval()
			if !ok {
				if run.name == "nonp" && errN == nil && guess >= optN {
					t.Fatalf("%s rejected T=%d >= OPT=%d", run.name, guess, optN)
				}
				continue
			}
			s, err := build()
			if err != nil {
				t.Fatalf("%s at T=%d: %v", run.name, guess, err)
			}
			if err := s.Validate(in); err != nil {
				t.Fatalf("%s at T=%d: %v", run.name, guess, err)
			}
			if err := s.CheckMakespanAtMost(TR.MulInt(3).Half()); err != nil {
				t.Fatalf("%s at T=%d: %v", run.name, guess, err)
			}
		}
	}
}
