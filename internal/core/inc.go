package core

import (
	"fmt"
	"slices"

	"setupsched/sched"
)

// incStalenessBase is the minimum number of absorbed deltas before the
// staleness fallback considers a full rebuild.
const incStalenessBase = 64

// Inc maintains a Prep incrementally under instance deltas, so a stream
// of small edits pays O(|C_i| log |C_i|) for a job edit of class i (plus
// the slice edit) per change instead of the O(n) cold Prepare pass.
//
// The maintained state is exactly what Prepare computes:
//
//   - running sums (PJ, SumS, N, NJob and the per-class work P[i]) are
//     patched by the delta's exact integer contribution;
//   - the per-class Setups and TMaxC slices are patched in place (removals
//     are order-preserving, matching sched.Delta.Apply);
//   - the SoA eval layout (Sorted/Pref) is refreshed only for the touched
//     class — re-sorting one class is O(|C_i| log |C_i|), not O(n);
//   - SMax, which a removal can decrease, is read off an ascending
//     multiset of the per-class setups maintained by binary-search
//     insert/delete; SPT is the bound of the last SptOrder entry, and
//     SptOrder itself is maintained by (setup+t_max, index) pair
//     insert/delete (class removals renumber the surviving indices).
//
// All patches are exact int64 arithmetic on values a fresh Prepare would
// recompute, so the maintained Prep is field-for-field identical to
// Prepare(in) at every point — the property the session layer's
// incremental-vs-fresh bit-identity guarantee rests on, and what Check
// verifies.  As a defensive bound on drift, Inc falls back to a full
// rebuild once the number of absorbed deltas since the last rebuild
// exceeds the staleness threshold max(64, c).
//
// Inc is not safe for concurrent use: the owner must serialize Apply
// against any solve using the Prep (stream.Session holds its lock across
// both), because solvers rely on the Prep being immutable while running.
type Inc struct {
	p *Prep
	// setupsSorted is the ascending multiset of the per-class setup
	// values; the last element is SMax.  (SPT needs no twin multiset:
	// p.SptOrder already orders the classes by setup+t_max.)
	setupsSorted []int64
	patched      int // deltas absorbed since the last full (re)build
	rebuilds     int
}

// NewInc prepares the instance and builds the incremental state.  The
// instance must be valid; Inc assumes ownership of keeping the Prep in
// sync — the caller must route every subsequent mutation through Apply.
func NewInc(in *sched.Instance) *Inc {
	inc := &Inc{p: Prepare(in)}
	inc.rebuildSorted()
	return inc
}

// Prep returns the maintained preparation.  The pointer changes on
// rebuilds; callers must re-fetch it after every Apply.
func (inc *Inc) Prep() *Prep { return inc.p }

// N returns the maintained total load (setups + processing times).
func (inc *Inc) N() int64 { return inc.p.N }

// Patched returns the number of deltas absorbed since the last rebuild.
func (inc *Inc) Patched() int { return inc.patched }

// Rebuilds returns how many staleness-triggered full rebuilds have run.
func (inc *Inc) Rebuilds() int { return inc.rebuilds }

func (inc *Inc) rebuildSorted() {
	p := inc.p
	inc.setupsSorted = append(inc.setupsSorted[:0], p.Setups...)
	slices.Sort(inc.setupsSorted)
}

// Rebuild discards the patched state and re-runs the O(n) Prepare pass.
func (inc *Inc) Rebuild() {
	inc.p = Prepare(inc.p.In)
	inc.rebuildSorted()
	inc.patched = 0
	inc.rebuilds++
}

// Apply validates the delta (sched.Delta.ApplyWithLoad with the tracked
// load), applies it to the underlying instance, and patches the Prep.  On
// a validation error neither the instance nor the Prep changes.
func (inc *Inc) Apply(d sched.Delta) error {
	p := inc.p
	in := p.In

	// Pre-state the patches need (captured before the instance mutates).
	var oldSetup, oldJob int64
	var oldClassJobs int
	switch d.Op {
	case sched.DeltaSetSetup:
		if d.Class >= 0 && d.Class < len(in.Classes) {
			oldSetup = in.Classes[d.Class].Setup
		}
	case sched.DeltaRemoveJob:
		if d.Class >= 0 && d.Class < len(in.Classes) {
			if cl := &in.Classes[d.Class]; d.Job >= 0 && d.Job < len(cl.Jobs) {
				oldJob = cl.Jobs[d.Job]
			}
		}
	case sched.DeltaRemoveClass:
		if d.Class >= 0 && d.Class < len(in.Classes) {
			oldClassJobs = len(in.Classes[d.Class].Jobs)
		}
	}

	newN, err := d.ApplyWithLoad(in, p.N)
	if err != nil {
		return err
	}
	inc.patched++

	switch d.Op {
	case sched.DeltaAddJobs:
		i := d.Class
		var sum int64
		mx := p.TMaxC[i]
		for _, t := range d.Jobs {
			sum += t
			if t > mx {
				mx = t
			}
		}
		p.P[i] += sum
		p.PJ += sum
		p.NJob += len(d.Jobs)
		p.Sorted[i], p.Pref[i] = classSoA(in.Classes[i].Jobs)
		if mx != p.TMaxC[i] {
			inc.sptRemove(i)
			p.TMaxC[i] = mx
			inc.sptInsert(i)
		}

	case sched.DeltaRemoveJob:
		i := d.Class
		p.P[i] -= oldJob
		p.PJ -= oldJob
		p.NJob--
		p.Sorted[i], p.Pref[i] = classSoA(in.Classes[i].Jobs)
		if oldJob == p.TMaxC[i] {
			// The removed job may have been the class maximum; the new
			// maximum is the last sorted entry.
			var mx int64
			if n := len(p.Sorted[i]); n > 0 {
				mx = p.Sorted[i][n-1]
			}
			if mx != p.TMaxC[i] {
				inc.sptRemove(i)
				p.TMaxC[i] = mx
				inc.sptInsert(i)
			}
		}

	case sched.DeltaSetSetup:
		i := d.Class
		p.SumS += d.Setup - oldSetup
		inc.replaceSetup(oldSetup, d.Setup)
		inc.sptRemove(i)
		p.Setups[i] = d.Setup
		inc.sptInsert(i)

	case sched.DeltaAddClass:
		cl := &in.Classes[len(in.Classes)-1]
		w, mx := cl.Work(), cl.MaxJob()
		p.P = append(p.P, w)
		p.TMaxC = append(p.TMaxC, mx)
		p.Setups = append(p.Setups, cl.Setup)
		srt, pref := classSoA(cl.Jobs)
		p.Sorted = append(p.Sorted, srt)
		p.Pref = append(p.Pref, pref)
		p.PJ += w
		p.SumS += cl.Setup
		p.NJob += len(cl.Jobs)
		p.C++
		inc.setupsSorted = insertSorted(inc.setupsSorted, cl.Setup)
		inc.sptInsert(p.C - 1)

	case sched.DeltaRemoveClass:
		i := d.Class
		p.PJ -= p.P[i]
		p.SumS -= p.Setups[i]
		p.NJob -= oldClassJobs
		p.C--
		inc.setupsSorted = inc.removeSorted(inc.setupsSorted, p.Setups[i])
		inc.sptRemove(i)
		// Surviving classes above i shift down by one (the instance-side
		// removal is order-preserving); renumbering by -1 keeps SptOrder
		// sorted, since equal-bound runs stay in ascending index order.
		for k, j := range p.SptOrder {
			if int(j) > i {
				p.SptOrder[k] = j - 1
			}
		}
		p.P = append(p.P[:i], p.P[i+1:]...)
		p.TMaxC = append(p.TMaxC[:i], p.TMaxC[i+1:]...)
		p.Setups = append(p.Setups[:i], p.Setups[i+1:]...)
		p.Sorted = append(p.Sorted[:i], p.Sorted[i+1:]...)
		p.Pref = append(p.Pref[:i], p.Pref[i+1:]...)

	case sched.DeltaSetMachines:
		p.M = in.M
	}

	p.N = newN
	if len(inc.setupsSorted) > 0 {
		p.SMax = inc.setupsSorted[len(inc.setupsSorted)-1]
	}
	if n := len(p.SptOrder); n > 0 {
		j := p.SptOrder[n-1]
		p.SPT = p.Setups[j] + p.TMaxC[j]
	}

	if threshold := max(incStalenessBase, p.C); inc.patched >= threshold {
		inc.Rebuild()
	}
	return nil
}

func (inc *Inc) replaceSetup(old, new int64) {
	if old == new {
		return
	}
	inc.setupsSorted = inc.removeSorted(inc.setupsSorted, old)
	inc.setupsSorted = insertSorted(inc.setupsSorted, new)
}

// sptFind returns the SptOrder position at or before which class i's
// (setup+t_max, index) key sorts, reading the bounds off the current
// Setups/TMaxC entries — so removals must run before a class's entries
// are patched and insertions after.
func (inc *Inc) sptFind(i int) int {
	p := inc.p
	b := p.Setups[i] + p.TMaxC[i]
	lo, hi := 0, len(p.SptOrder)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		j := p.SptOrder[mid]
		bj := p.Setups[j] + p.TMaxC[j]
		if bj < b || (bj == b && int(j) < i) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// sptInsert inserts class i into SptOrder; i's Setups/TMaxC entries must
// already hold the values it sorts under.
func (inc *Inc) sptInsert(i int) {
	inc.p.SptOrder = slices.Insert(inc.p.SptOrder, inc.sptFind(i), int32(i))
}

// sptRemove deletes class i from SptOrder; i's Setups/TMaxC entries must
// still hold the values it was inserted under.  A missing entry means the
// order drifted from the instance — a bug; rather than corrupt SPT
// silently, force the staleness rebuild (as removeSorted does).
func (inc *Inc) sptRemove(i int) {
	p := inc.p
	if pos := inc.sptFind(i); pos < len(p.SptOrder) && p.SptOrder[pos] == int32(i) {
		p.SptOrder = slices.Delete(p.SptOrder, pos, pos+1)
		return
	}
	inc.patched = 1 << 30
}

func insertSorted(s []int64, v int64) []int64 {
	i, _ := slices.BinarySearch(s, v)
	return slices.Insert(s, i, v)
}

// removeSorted deletes one occurrence of v.  A missing value would mean
// the multiset drifted from the instance — a bug; rather than corrupt the
// maxima silently, the Inc schedules an immediate rebuild by treating the
// state as fully stale.
func (inc *Inc) removeSorted(s []int64, v int64) []int64 {
	if i, ok := slices.BinarySearch(s, v); ok {
		return slices.Delete(s, i, i+1)
	}
	inc.patched = 1 << 30 // force the staleness rebuild at the end of Apply
	return s
}

// Check verifies the maintained Prep against a fresh Prepare of the same
// instance, field for field — including the SoA eval layout, which the
// dual tests read on every probe.  It backs the session self-checks and
// the delta fuzz target; any difference is an Inc bug.
func (inc *Inc) Check() error {
	got, want := inc.p, Prepare(inc.p.In)
	switch {
	case got.M != want.M:
		return fmt.Errorf("core: Inc drift: M %d != %d", got.M, want.M)
	case got.C != want.C:
		return fmt.Errorf("core: Inc drift: C %d != %d", got.C, want.C)
	case got.NJob != want.NJob:
		return fmt.Errorf("core: Inc drift: NJob %d != %d", got.NJob, want.NJob)
	case got.PJ != want.PJ:
		return fmt.Errorf("core: Inc drift: PJ %d != %d", got.PJ, want.PJ)
	case got.SumS != want.SumS:
		return fmt.Errorf("core: Inc drift: SumS %d != %d", got.SumS, want.SumS)
	case got.N != want.N:
		return fmt.Errorf("core: Inc drift: N %d != %d", got.N, want.N)
	case got.SMax != want.SMax:
		return fmt.Errorf("core: Inc drift: SMax %d != %d", got.SMax, want.SMax)
	case got.SPT != want.SPT:
		return fmt.Errorf("core: Inc drift: SPT %d != %d", got.SPT, want.SPT)
	case !slices.Equal(got.P, want.P):
		return fmt.Errorf("core: Inc drift: per-class work sums differ")
	case !slices.Equal(got.TMaxC, want.TMaxC):
		return fmt.Errorf("core: Inc drift: per-class max jobs differ")
	case !slices.Equal(got.Setups, want.Setups):
		return fmt.Errorf("core: Inc drift: per-class setups differ")
	case !slices.Equal(got.SptOrder, want.SptOrder):
		return fmt.Errorf("core: Inc drift: spt class order differs")
	}
	for i := range want.Sorted {
		if !slices.Equal(got.Sorted[i], want.Sorted[i]) {
			return fmt.Errorf("core: Inc drift: sorted jobs of class %d differ", i)
		}
		if !slices.Equal(got.Pref[i], want.Pref[i]) {
			return fmt.Errorf("core: Inc drift: prefix sums of class %d differ", i)
		}
	}
	if !slices.IsSorted(inc.setupsSorted) || len(inc.setupsSorted) != got.C {
		return fmt.Errorf("core: Inc drift: sorted setup order corrupt")
	}
	return nil
}
