package core

import (
	"fmt"
	"slices"

	"setupsched/sched"
)

// incStalenessBase is the minimum number of absorbed deltas before the
// staleness fallback considers a full rebuild.
const incStalenessBase = 64

// Inc maintains a Prep incrementally under instance deltas, so a stream
// of small edits pays O(|delta| + log c) (plus the slice edit) per change
// instead of the O(n) cold Prepare pass.
//
// The maintained state is exactly what Prepare computes:
//
//   - running sums (PJ, SumS, N, NJob and the per-class work P[i]) are
//     patched by the delta's exact integer contribution;
//   - the per-class Setups and TMaxC slices are patched in place (removals
//     are order-preserving, matching sched.Delta.Apply);
//   - the maxima SMax and SPT, which a removal can decrease, are read off
//     two sorted orders (ascending multisets of the per-class setup and
//     setup+t_max values) maintained by binary-search insert/delete.
//
// All patches are exact int64 arithmetic on values a fresh Prepare would
// recompute, so the maintained Prep is field-for-field identical to
// Prepare(in) at every point — the property the session layer's
// incremental-vs-fresh bit-identity guarantee rests on, and what Check
// verifies.  As a defensive bound on drift, Inc falls back to a full
// rebuild once the number of absorbed deltas since the last rebuild
// exceeds the staleness threshold max(64, c).
//
// Inc is not safe for concurrent use: the owner must serialize Apply
// against any solve using the Prep (stream.Session holds its lock across
// both), because solvers rely on the Prep being immutable while running.
type Inc struct {
	p *Prep
	// setupsSorted and sptSorted are ascending multisets of the per-class
	// setup resp. setup+t_max values; the last element is SMax resp. SPT.
	setupsSorted []int64
	sptSorted    []int64
	patched      int // deltas absorbed since the last full (re)build
	rebuilds     int
}

// NewInc prepares the instance and builds the incremental state.  The
// instance must be valid; Inc assumes ownership of keeping the Prep in
// sync — the caller must route every subsequent mutation through Apply.
func NewInc(in *sched.Instance) *Inc {
	inc := &Inc{p: Prepare(in)}
	inc.rebuildSorted()
	return inc
}

// Prep returns the maintained preparation.  The pointer changes on
// rebuilds; callers must re-fetch it after every Apply.
func (inc *Inc) Prep() *Prep { return inc.p }

// N returns the maintained total load (setups + processing times).
func (inc *Inc) N() int64 { return inc.p.N }

// Patched returns the number of deltas absorbed since the last rebuild.
func (inc *Inc) Patched() int { return inc.patched }

// Rebuilds returns how many staleness-triggered full rebuilds have run.
func (inc *Inc) Rebuilds() int { return inc.rebuilds }

func (inc *Inc) rebuildSorted() {
	p := inc.p
	inc.setupsSorted = append(inc.setupsSorted[:0], p.Setups...)
	slices.Sort(inc.setupsSorted)
	inc.sptSorted = inc.sptSorted[:0]
	for i := range p.Setups {
		inc.sptSorted = append(inc.sptSorted, p.Setups[i]+p.TMaxC[i])
	}
	slices.Sort(inc.sptSorted)
}

// Rebuild discards the patched state and re-runs the O(n) Prepare pass.
func (inc *Inc) Rebuild() {
	inc.p = Prepare(inc.p.In)
	inc.rebuildSorted()
	inc.patched = 0
	inc.rebuilds++
}

// Apply validates the delta (sched.Delta.ApplyWithLoad with the tracked
// load), applies it to the underlying instance, and patches the Prep.  On
// a validation error neither the instance nor the Prep changes.
func (inc *Inc) Apply(d sched.Delta) error {
	p := inc.p
	in := p.In

	// Pre-state the patches need (captured before the instance mutates).
	var oldSetup, oldJob int64
	var oldClassJobs int
	switch d.Op {
	case sched.DeltaSetSetup:
		if d.Class >= 0 && d.Class < len(in.Classes) {
			oldSetup = in.Classes[d.Class].Setup
		}
	case sched.DeltaRemoveJob:
		if d.Class >= 0 && d.Class < len(in.Classes) {
			if cl := &in.Classes[d.Class]; d.Job >= 0 && d.Job < len(cl.Jobs) {
				oldJob = cl.Jobs[d.Job]
			}
		}
	case sched.DeltaRemoveClass:
		if d.Class >= 0 && d.Class < len(in.Classes) {
			oldClassJobs = len(in.Classes[d.Class].Jobs)
		}
	}

	newN, err := d.ApplyWithLoad(in, p.N)
	if err != nil {
		return err
	}
	inc.patched++

	switch d.Op {
	case sched.DeltaAddJobs:
		i := d.Class
		var sum int64
		mx := p.TMaxC[i]
		for _, t := range d.Jobs {
			sum += t
			if t > mx {
				mx = t
			}
		}
		p.P[i] += sum
		p.PJ += sum
		p.NJob += len(d.Jobs)
		if mx != p.TMaxC[i] {
			inc.replaceSPT(p.Setups[i]+p.TMaxC[i], p.Setups[i]+mx)
			p.TMaxC[i] = mx
		}

	case sched.DeltaRemoveJob:
		i := d.Class
		p.P[i] -= oldJob
		p.PJ -= oldJob
		p.NJob--
		if oldJob == p.TMaxC[i] {
			// The removed job may have been the class maximum; rescan.
			var mx int64
			for _, t := range in.Classes[i].Jobs {
				if t > mx {
					mx = t
				}
			}
			if mx != p.TMaxC[i] {
				inc.replaceSPT(p.Setups[i]+p.TMaxC[i], p.Setups[i]+mx)
				p.TMaxC[i] = mx
			}
		}

	case sched.DeltaSetSetup:
		i := d.Class
		p.SumS += d.Setup - oldSetup
		inc.replaceSetup(oldSetup, d.Setup)
		inc.replaceSPT(oldSetup+p.TMaxC[i], d.Setup+p.TMaxC[i])
		p.Setups[i] = d.Setup

	case sched.DeltaAddClass:
		cl := &in.Classes[len(in.Classes)-1]
		w, mx := cl.Work(), cl.MaxJob()
		p.P = append(p.P, w)
		p.TMaxC = append(p.TMaxC, mx)
		p.Setups = append(p.Setups, cl.Setup)
		p.PJ += w
		p.SumS += cl.Setup
		p.NJob += len(cl.Jobs)
		p.C++
		inc.setupsSorted = insertSorted(inc.setupsSorted, cl.Setup)
		inc.sptSorted = insertSorted(inc.sptSorted, cl.Setup+mx)

	case sched.DeltaRemoveClass:
		i := d.Class
		p.PJ -= p.P[i]
		p.SumS -= p.Setups[i]
		p.NJob -= oldClassJobs
		p.C--
		inc.setupsSorted = inc.removeSorted(inc.setupsSorted, p.Setups[i])
		inc.sptSorted = inc.removeSorted(inc.sptSorted, p.Setups[i]+p.TMaxC[i])
		p.P = append(p.P[:i], p.P[i+1:]...)
		p.TMaxC = append(p.TMaxC[:i], p.TMaxC[i+1:]...)
		p.Setups = append(p.Setups[:i], p.Setups[i+1:]...)

	case sched.DeltaSetMachines:
		p.M = in.M
	}

	p.N = newN
	if len(inc.setupsSorted) > 0 {
		p.SMax = inc.setupsSorted[len(inc.setupsSorted)-1]
		p.SPT = inc.sptSorted[len(inc.sptSorted)-1]
	}

	if threshold := max(incStalenessBase, p.C); inc.patched >= threshold {
		inc.Rebuild()
	}
	return nil
}

func (inc *Inc) replaceSetup(old, new int64) {
	if old == new {
		return
	}
	inc.setupsSorted = inc.removeSorted(inc.setupsSorted, old)
	inc.setupsSorted = insertSorted(inc.setupsSorted, new)
}

func (inc *Inc) replaceSPT(old, new int64) {
	if old == new {
		return
	}
	inc.sptSorted = inc.removeSorted(inc.sptSorted, old)
	inc.sptSorted = insertSorted(inc.sptSorted, new)
}

func insertSorted(s []int64, v int64) []int64 {
	i, _ := slices.BinarySearch(s, v)
	return slices.Insert(s, i, v)
}

// removeSorted deletes one occurrence of v.  A missing value would mean
// the multiset drifted from the instance — a bug; rather than corrupt the
// maxima silently, the Inc schedules an immediate rebuild by treating the
// state as fully stale.
func (inc *Inc) removeSorted(s []int64, v int64) []int64 {
	if i, ok := slices.BinarySearch(s, v); ok {
		return slices.Delete(s, i, i+1)
	}
	inc.patched = 1 << 30 // force the staleness rebuild at the end of Apply
	return s
}

// Check verifies the maintained Prep against a fresh Prepare of the same
// instance, field for field.  It backs the session self-checks and the
// delta fuzz target; any difference is an Inc bug.
func (inc *Inc) Check() error {
	got, want := inc.p, Prepare(inc.p.In)
	switch {
	case got.M != want.M:
		return fmt.Errorf("core: Inc drift: M %d != %d", got.M, want.M)
	case got.C != want.C:
		return fmt.Errorf("core: Inc drift: C %d != %d", got.C, want.C)
	case got.NJob != want.NJob:
		return fmt.Errorf("core: Inc drift: NJob %d != %d", got.NJob, want.NJob)
	case got.PJ != want.PJ:
		return fmt.Errorf("core: Inc drift: PJ %d != %d", got.PJ, want.PJ)
	case got.SumS != want.SumS:
		return fmt.Errorf("core: Inc drift: SumS %d != %d", got.SumS, want.SumS)
	case got.N != want.N:
		return fmt.Errorf("core: Inc drift: N %d != %d", got.N, want.N)
	case got.SMax != want.SMax:
		return fmt.Errorf("core: Inc drift: SMax %d != %d", got.SMax, want.SMax)
	case got.SPT != want.SPT:
		return fmt.Errorf("core: Inc drift: SPT %d != %d", got.SPT, want.SPT)
	case !slices.Equal(got.P, want.P):
		return fmt.Errorf("core: Inc drift: per-class work sums differ")
	case !slices.Equal(got.TMaxC, want.TMaxC):
		return fmt.Errorf("core: Inc drift: per-class max jobs differ")
	case !slices.Equal(got.Setups, want.Setups):
		return fmt.Errorf("core: Inc drift: per-class setups differ")
	}
	if !slices.IsSorted(inc.setupsSorted) || !slices.IsSorted(inc.sptSorted) ||
		len(inc.setupsSorted) != got.C || len(inc.sptSorted) != got.C {
		return fmt.Errorf("core: Inc drift: sorted orders corrupt")
	}
	return nil
}
