package core

import (
	"setupsched/sched"
)

// NonpEval is the outcome of the non-preemptive 3/2-dual test (Theorem 9).
//
// With big jobs J+ = {t_j > T/2} and K = union over cheap classes of
// {j in C_i cap J- : s_i + t_j > T/2}, every class needs at least
//
//	m_i = ceil(P(C_i)/(T-s_i))                       (expensive)
//	m_i = |C_i cap J+| + ceil(P(C_i cap K)/(T-s_i))  (cheap)
//
// machines (Lemma 12), and classes with leftover work
// x_i = P(C_i) - m_i (T - s_i) > 0 need one extra setup (Note 7).  The
// test rejects T, certifying T < OPT, when m < sum m_i or
// m*T < L_nonp = P(J) + sum_i m_i s_i + sum_{x_i > 0} s_i.
type NonpEval struct {
	T      int64 // the dual works on integral T (OPT is integral)
	OK     bool
	Reason string

	Exp    []int
	Mi     []int64 // per class
	XiPos  []bool  // per class: x_i > 0
	MPrime int64
	L      int64
}

// EvalNonp runs the non-preemptive dual test in O(c log(max_i |C_i|)),
// reading the Prep's SoA layout: with class i's jobs sorted ascending,
// jobs with 2t > T are exactly those t >= T/2+1 (both parities of T) and
// the K set is the band [T/2+1-s_i, T/2+1), so the big-job count and the
// K work are two binary searches plus one prefix-sum difference instead
// of a walk over C_i.  Non-integral T is floored first, which is sound
// and lossless because OPT is integral.  Outcomes are bit-identical to
// EvalNonpRef, the original O(n) walk.
func (p *Prep) EvalNonp(TR sched.Rat) *NonpEval {
	T := TR.Floor()
	ev := &NonpEval{T: T}
	if T < p.SPT {
		ev.Reason = "T < max_i(s_i + t_max) <= OPT"
		return ev
	}
	ev.Mi = make([]int64, p.C)
	ev.XiPos = make([]bool, p.C)
	p.evalNonpCore(ev)
	return ev
}

// NonpEvalScratch holds the per-probe arrays of the non-preemptive dual
// test so repeated probes in one bracket are allocation-free (the eval
// mirror of NonpScratch).  Zero value is ready; not safe for concurrent
// use.
type NonpEvalScratch struct {
	mi    []int64
	xiPos []bool
	exp   []int
	ev    NonpEval
}

func (sc *NonpEvalScratch) ensure(c int) {
	if cap(sc.mi) < c {
		sc.mi = make([]int64, c)
		sc.xiPos = make([]bool, c)
		sc.exp = make([]int, 0, c)
	}
}

// EvalNonpScratch is EvalNonp writing into sc's reusable buffers.  The
// returned eval and its slices are owned by sc: they are valid only until
// the next call with the same scratch, and only one goroutine may use a
// scratch at a time.
func (p *Prep) EvalNonpScratch(TR sched.Rat, sc *NonpEvalScratch) *NonpEval {
	T := TR.Floor()
	ev := &sc.ev
	*ev = NonpEval{T: T}
	if T < p.SPT {
		ev.Reason = "T < max_i(s_i + t_max) <= OPT"
		return ev
	}
	sc.ensure(p.C)
	ev.Mi = sc.mi[:p.C]
	ev.XiPos = sc.xiPos[:p.C]
	ev.Exp = sc.exp[:0]
	p.evalNonpCore(ev)
	sc.exp = ev.Exp[:0]
	return ev
}

// NonpBatchScratch holds the per-guess accumulators of EvalNonpBatch so
// repeated speculative batches in one search are allocation-free.  Zero
// value is ready; not safe for concurrent use.
type NonpBatchScratch struct {
	t      []int64
	mprime []int64
	l      []int64
	dead   []bool
	ok     []bool
}

func (sc *NonpBatchScratch) ensure(k int) {
	if cap(sc.t) < k {
		sc.t = make([]int64, k)
		sc.mprime = make([]int64, k)
		sc.l = make([]int64, k)
		sc.dead = make([]bool, k)
		sc.ok = make([]bool, k)
	}
	sc.t = sc.t[:k]
	sc.mprime = sc.mprime[:k]
	sc.l = sc.l[:k]
	sc.dead = sc.dead[:k]
	sc.ok = sc.ok[:k]
}

// EvalNonpBatch decides the non-preemptive dual test for every guess in
// one shared sweep over the classes: each class's setup, maximum and
// sorted segment are loaded once and reused for all k guesses, instead
// of k independent passes re-walking the whole layout.  The per-guess
// accept/reject outcomes are bit-identical to k EvalNonp calls — the
// machine-demand and load accumulations are fused into a single pass,
// which is sound because every per-class term of L depends only on that
// class's own m_i.  The returned slice is owned by sc and valid until
// the next call.
func (p *Prep) EvalNonpBatch(Ts []sched.Rat, sc *NonpBatchScratch) []bool {
	k := len(Ts)
	sc.ensure(k)
	alive := 0
	for j, TR := range Ts {
		T := TR.Floor()
		sc.t[j] = T
		sc.mprime[j] = 0
		sc.l[j] = p.PJ
		sc.dead[j] = T < p.SPT
		if !sc.dead[j] {
			alive++
		}
	}
	for i := 0; i < p.C && alive > 0; i++ {
		s := p.Setups[i]
		tm := p.TMaxC[i]
		for j := 0; j < k; j++ {
			if sc.dead[j] {
				continue
			}
			T := sc.t[j]
			var mi int64
			switch {
			case 2*s > T:
				mi = ceilDiv64(p.P[i], T-s)
			case 2*(s+tm) <= T:
				// mi = 0: no machine demand; the x_i load term below
				// still applies (a non-empty class needs one setup).
			default:
				jobs := p.Sorted[i]
				bigThr := T/2 + 1
				bigIdx := lowerBound64(jobs, bigThr)
				kIdx := lowerBound64(jobs[:bigIdx], bigThr-s)
				kWork := p.Pref[i][bigIdx] - p.Pref[i][kIdx]
				mi = int64(len(jobs)-bigIdx) + ceilDiv64(kWork, T-s)
			}
			sc.mprime[j] += mi
			if sc.mprime[j] > p.M {
				sc.dead[j] = true // m < m'
				alive--
				continue
			}
			sc.l[j] += mi * s
			if p.P[i] > mi*(T-s) { // x_i > 0
				sc.l[j] += s
			}
		}
	}
	for j := range sc.ok {
		sc.ok[j] = !sc.dead[j] && p.M*sc.t[j] >= sc.l[j]
	}
	return sc.ok
}

// evalNonpCore runs both passes of the dual test on ev, which must carry
// T >= SPT, Mi and XiPos of length C with arbitrary contents (they are
// fully overwritten), and an empty Exp.
func (p *Prep) evalNonpCore(ev *NonpEval) {
	T := ev.T
	c := p.C
	bigThr := T/2 + 1 // 2t > T  <=>  t >= floor(T/2)+1, either parity
	// Pass 1: machine demands.
	for i := 0; i < c; i++ {
		s := p.Setups[i]
		ev.XiPos[i] = false
		switch {
		case 2*s > T:
			ev.Exp = append(ev.Exp, i)
			ev.Mi[i] = ceilDiv64(p.P[i], T-s) // T-s >= t_max^(i) >= 1
		case 2*(s+p.TMaxC[i]) <= T:
			// Even the longest job clears neither threshold: the class
			// demands no machines at T.  This skip is what makes warm
			// probes near a seeded threshold o(n): only classes in the
			// active suffix of SptOrder pay the binary searches.
			ev.Mi[i] = 0
		default:
			jobs := p.Sorted[i]
			bigIdx := lowerBound64(jobs, bigThr)
			// K = jobs with 2(s+t) > T but 2t <= T, i.e. t in
			// [bigThr-s, bigThr); s >= 0 keeps the band below bigIdx.
			kIdx := lowerBound64(jobs[:bigIdx], bigThr-s)
			kWork := p.Pref[i][bigIdx] - p.Pref[i][kIdx]
			ev.Mi[i] = int64(len(jobs)-bigIdx) + ceilDiv64(kWork, T-s)
		}
		ev.MPrime += ev.Mi[i]
		if ev.MPrime > p.M {
			ev.Reason = "m < m' (classes need too many machines)"
			// Scratch reuse: the walk never reached [i+1:c), so those
			// entries must read as untouched.
			clear(ev.Mi[i+1:])
			clear(ev.XiPos[i+1:])
			return
		}
	}
	// Pass 2: L_nonp.  sum m_i s_i <= m*s_max fits in int64 by the
	// instance magnitude limits.
	ev.L = p.PJ
	for i := 0; i < c; i++ {
		s := p.Setups[i]
		ev.L += ev.Mi[i] * s
		// x_i > 0  <=>  P_i > m_i (T - s_i)
		if p.P[i] > ev.Mi[i]*(T-s) {
			ev.XiPos[i] = true
			ev.L += s
		}
	}
	if p.M*T < ev.L {
		ev.Reason = "m*T < L_nonp (load exceeds capacity)"
		return
	}
	ev.OK = true
}

// EvalNonpRef is the original O(n) dual test, classifying every job by a
// direct walk over the class slices.  It is retained as the differential
// oracle for the SoA eval (see internal/diff and the layout fuzz target);
// EvalNonp must agree with it bit for bit on every field.
func (p *Prep) EvalNonpRef(TR sched.Rat) *NonpEval {
	T := TR.Floor()
	ev := &NonpEval{T: T}
	if T < p.SPT {
		ev.Reason = "T < max_i(s_i + t_max) <= OPT"
		return ev
	}
	c := p.C
	ev.Mi = make([]int64, c)
	ev.XiPos = make([]bool, c)
	// Pass 1: machine demands.
	for i := 0; i < c; i++ {
		cls := &p.In.Classes[i]
		free := T - cls.Setup // >= t_max^(i) >= 1
		if 2*cls.Setup > T {
			ev.Exp = append(ev.Exp, i)
			ev.Mi[i] = ceilDiv64(p.P[i], free)
		} else {
			var big int64
			var kWork int64
			for _, t := range cls.Jobs {
				switch {
				case 2*t > T:
					big++
				case 2*(cls.Setup+t) > T:
					kWork += t
				}
			}
			ev.Mi[i] = big + ceilDiv64(kWork, free)
		}
		ev.MPrime += ev.Mi[i]
		if ev.MPrime > p.M {
			ev.Reason = "m < m' (classes need too many machines)"
			return ev
		}
	}
	// Pass 2: L_nonp.  sum m_i s_i <= m*s_max fits in int64 by the
	// instance magnitude limits.
	ev.L = p.PJ
	for i := 0; i < c; i++ {
		cls := &p.In.Classes[i]
		ev.L += ev.Mi[i] * cls.Setup
		// x_i > 0  <=>  P_i > m_i (T - s_i)
		if p.P[i] > ev.Mi[i]*(T-cls.Setup) {
			ev.XiPos[i] = true
			ev.L += cls.Setup
		}
	}
	if p.M*T < ev.L {
		ev.Reason = "m*T < L_nonp (load exceeds capacity)"
		return ev
	}
	ev.OK = true
	return ev
}

func ceilDiv64(a, b int64) int64 {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// ---------------------------------------------------------------------------
// Construction (Algorithm 6).
//
// Step 1 schedules the jobs that pairwise exclude each other (expensive
// classes, big jobs, the set K) on their obligatory machines, wrapping
// preemptively.  Step 2 tops the same machines up with the class's
// remaining jobs without new setups.  Step 3 fills all machines to the
// border T with the residual sequence Q, keeping border items whole.
// Step 4 makes the schedule non-preemptive (each split job is restored at
// a machine-last piece) and moves every border item below the first
// step-3 item of the next machine, adding a setup for moved jobs; this
// move also repairs the setups of batches that continue across machines.

type nonpItem struct {
	isSetup bool
	class   int
	job     int
	length  int64
	parent  int // index into nonpBuild.parents, or -1
	deleted bool
}

type nonpParent struct {
	class, job int
	total      int64
	pieces     []nonpLoc
}

type nonpLoc struct{ mach, item int }

type nonpMachine struct {
	items      []nonpItem
	load       int64
	step3Start int
	crossing   int // index of the border-reaching step-3 item, or -1
}

// nonpClassState tracks one class's machines and leftover jobs between
// the construction steps.
type nonpClassState struct {
	candidates []int // machines that may take step-2/3 load of the class
	restJobs   []int
	restLens   []int64
	restFull   []int64
}

// nonpBuild is the builder's working state.  Machines live in one value
// slice and are addressed by index only (taking a *nonpMachine across a
// newMachine call would dangle when the slice grows); their initial item
// lists are carved out of a shared arena.  Everything here is reusable
// between builds — see NonpScratch — and nothing the emitted Schedule
// references aliases it.
type nonpBuild struct {
	p *Prep
	T int64

	machines  []nonpMachine
	itemArena []nonpItem
	itemOff   int
	parents   []nonpParent
	parentIdx map[int64]int

	states    []nonpClassState
	wrapJobsA []int
	wrapLensA []int64
	restJobsA []int
	restLensA []int64

	order   []int
	live    []nonpItem
	insBuf  []nonpItem
	tailBuf []nonpItem
}

// machItemCap is each machine's arena-backed initial item capacity (a
// setup plus a handful of jobs); machines that outgrow it migrate to a
// private backing array on the next append.
const machItemCap = 8

// reset prepares the builder for one construction, retaining all backing
// arrays from previous uses.
func (b *nonpBuild) reset(p *Prep, T int64) {
	b.p, b.T = p, T
	b.machines = b.machines[:0]
	b.itemOff = 0
	b.parents = b.parents[:0]
	if b.parentIdx == nil {
		b.parentIdx = map[int64]int{}
	} else {
		clear(b.parentIdx)
	}
	if cap(b.states) >= p.C {
		b.states = b.states[:p.C]
	} else {
		b.states = make([]nonpClassState, p.C)
	}
	if cap(b.wrapJobsA) < p.NJob {
		b.wrapJobsA = make([]int, 0, p.NJob)
		b.wrapLensA = make([]int64, 0, p.NJob)
		b.restJobsA = make([]int, 0, p.NJob)
		b.restLensA = make([]int64, 0, p.NJob)
	} else {
		b.wrapJobsA = b.wrapJobsA[:0]
		b.wrapLensA = b.wrapLensA[:0]
		b.restJobsA = b.restJobsA[:0]
		b.restLensA = b.restLensA[:0]
	}
	b.order = b.order[:0]
}

// itemSeg returns a fresh exclusive full-slice segment of the item arena.
// Old segments keep whatever backing they were carved from, so replacing
// an exhausted arena never invalidates them.
func (b *nonpBuild) itemSeg() []nonpItem {
	if b.itemOff+machItemCap > len(b.itemArena) {
		n := 2 * len(b.itemArena)
		if n < 2048 {
			n = 2048
		}
		b.itemArena = make([]nonpItem, n)
		b.itemOff = 0
	}
	seg := b.itemArena[b.itemOff : b.itemOff : b.itemOff+machItemCap]
	b.itemOff += machItemCap
	return seg
}

func (b *nonpBuild) newMachine() int {
	b.machines = append(b.machines, nonpMachine{crossing: -1, step3Start: -1, items: b.itemSeg()})
	return len(b.machines) - 1
}

func (b *nonpBuild) put(mi int, it nonpItem) {
	m := &b.machines[mi]
	if it.parent >= 0 {
		b.parents[it.parent].pieces = append(b.parents[it.parent].pieces,
			nonpLoc{mach: mi, item: len(m.items)})
	}
	m.items = append(m.items, it)
	m.load += it.length
}

func parentKey(class, job int) int64 { return int64(class)<<32 | int64(job) }

// ensureParent registers (or finds) the parent record of a job being split.
func (b *nonpBuild) ensureParent(class, job int, total int64) int {
	key := parentKey(class, job)
	if pi, ok := b.parentIdx[key]; ok {
		return pi
	}
	b.parents = append(b.parents, nonpParent{class: class, job: job, total: total})
	pi := len(b.parents) - 1
	b.parentIdx[key] = pi
	return pi
}

// jobCursor walks a job list, splitting jobs at machine capacity borders.
type jobCursor struct {
	b     *nonpBuild
	class int
	jobs  []int
	lens  []int64
	full  []int64 // original full lengths (for parent registration)
	pos   int
	left  int64
}

func newJobCursor(b *nonpBuild, class int, jobs []int, lens, full []int64) *jobCursor {
	jc := &jobCursor{b: b, class: class, jobs: jobs, lens: lens, full: full}
	if len(jobs) > 0 {
		jc.left = lens[0]
	}
	return jc
}

func (jc *jobCursor) done() bool { return jc.pos >= len(jc.jobs) }

// fill places up to cap units onto machine mi, splitting the border job.
func (jc *jobCursor) fill(mi int, cap int64) {
	for cap > 0 && !jc.done() {
		take := jc.left
		parent := -1
		split := take > cap
		if split {
			take = cap
		}
		if split || jc.left != jc.full[jc.pos] {
			parent = jc.b.ensureParent(jc.class, jc.jobs[jc.pos], jc.full[jc.pos])
		}
		jc.b.put(mi, nonpItem{class: jc.class, job: jc.jobs[jc.pos], length: take, parent: parent})
		cap -= take
		jc.left -= take
		if jc.left == 0 {
			jc.pos++
			if !jc.done() {
				jc.left = jc.lens[jc.pos]
			}
		}
	}
}

// remainder returns the unplaced jobs; the first may be a partial piece.
// The returned slices alias the cursor's inputs where possible (nothing
// downstream mutates them); only a genuinely split first job forces a
// copy of the length column.
func (jc *jobCursor) remainder() ([]int, []int64, []int64) {
	if jc.done() {
		return nil, nil, nil
	}
	jobs := jc.jobs[jc.pos:]
	full := jc.full[jc.pos:]
	lens := jc.lens[jc.pos:]
	if jc.left != lens[0] {
		lens = append([]int64(nil), lens...)
		lens[0] = jc.left
	}
	return jobs, lens, full
}

// NonpScratch carries the non-preemptive builder's reusable working
// memory across solves.  Construction is allocation-bound; a serialized
// caller that rebuilds after every change (stream.Session) passes one
// scratch via Ctl.Scratch so steady-state re-solves stop paying the
// builder's allocations.  The emitted Schedule never aliases scratch
// memory, so results stay valid after the scratch is reused.  A scratch
// must not be used by two builds concurrently.
type NonpScratch struct {
	b nonpBuild
}

// BuildNonp constructs a feasible non-preemptive schedule with makespan at
// most 3/2*T from an accepting evaluation (Theorem 9(ii), Algorithm 6).
func (p *Prep) BuildNonp(ev *NonpEval) (*sched.Schedule, error) {
	return p.BuildNonpScratch(ev, nil)
}

// BuildNonpScratch is BuildNonp drawing its working memory from sc; a nil
// sc allocates fresh memory (identical output either way).
func (p *Prep) BuildNonpScratch(ev *NonpEval, sc *NonpScratch) (*sched.Schedule, error) {
	if !ev.OK {
		return nil, errInternal("BuildNonp on rejected evaluation (%s)", ev.Reason)
	}
	T := ev.T
	if sc == nil {
		sc = &NonpScratch{}
	}
	b := &sc.b
	b.reset(p, T)

	// Step 1.  The per-class wrap/rest partitions draw from four shared
	// arenas (every job lands in at most one partition) instead of
	// thousands of small growing slices.  The sub-slices are read-only
	// downstream — jobCursor.fill never mutates its inputs and remainder
	// copies the one column it edits.
	for i := range p.In.Classes {
		cls := &p.In.Classes[i]
		st := &b.states[i]
		st.candidates = st.candidates[:0]
		expensive := 2*cls.Setup > T
		ws, rs := len(b.wrapJobsA), len(b.restJobsA)
		for j, t := range cls.Jobs {
			switch {
			case expensive || 2*(cls.Setup+t) > T && 2*t <= T:
				b.wrapJobsA = append(b.wrapJobsA, j)
				b.wrapLensA = append(b.wrapLensA, t)
			case 2*t > T: // big job: own machine
				mi := b.newMachine()
				if cls.Setup > 0 {
					b.put(mi, nonpItem{isSetup: true, class: i, job: -1, length: cls.Setup, parent: -1})
				}
				b.put(mi, nonpItem{class: i, job: j, length: t, parent: -1})
				st.candidates = append(st.candidates, mi)
			default:
				b.restJobsA = append(b.restJobsA, j)
				b.restLensA = append(b.restLensA, t)
			}
		}
		wrapJobs := b.wrapJobsA[ws:len(b.wrapJobsA):len(b.wrapJobsA)]
		wrapLens := b.wrapLensA[ws:len(b.wrapLensA):len(b.wrapLensA)]
		st.restJobs = b.restJobsA[rs:len(b.restJobsA):len(b.restJobsA)]
		st.restLens = b.restLensA[rs:len(b.restLensA):len(b.restLensA)]
		// The full-length column equals the (unmutated) length column at
		// creation; remainder splits them when a border job is cut.
		st.restFull = st.restLens
		if len(wrapJobs) > 0 {
			jc := newJobCursor(b, i, wrapJobs, wrapLens, wrapLens)
			last := -1
			for !jc.done() {
				mi := b.newMachine()
				last = mi
				if cls.Setup > 0 {
					b.put(mi, nonpItem{isSetup: true, class: i, job: -1, length: cls.Setup, parent: -1})
				}
				jc.fill(mi, T-cls.Setup)
			}
			if !expensive && last >= 0 {
				st.candidates = append(st.candidates, last)
			}
		}
	}

	// Step 2: top up candidate machines with the class's remaining jobs.
	for i := range p.In.Classes {
		st := &b.states[i]
		if len(st.restJobs) == 0 {
			continue
		}
		jc := newJobCursor(b, i, st.restJobs, st.restLens, st.restFull)
		for _, mi := range st.candidates {
			if jc.done() {
				break
			}
			if load := b.machines[mi].load; load < T {
				jc.fill(mi, T-load)
			}
		}
		st.restJobs, st.restLens, st.restFull = jc.remainder()
	}

	// Step 3: greedy fill with the residual sequence Q.  A machine closes
	// when its load reaches the border T; the border item stays for now
	// and is relocated in step 4b, which also restores missing setups of
	// batches continuing across machines.
	cur, next := -1, 0
	advance := func() error {
		for {
			if next < len(b.machines) {
				if b.machines[next].load >= T {
					next++
					continue
				}
				cur = next
				next++
			} else {
				if int64(len(b.machines)) >= p.M {
					return errInternal("non-preemptive step 3 ran out of machines")
				}
				cur = b.newMachine()
				next = len(b.machines)
			}
			m := &b.machines[cur]
			m.step3Start = len(m.items)
			b.order = append(b.order, cur)
			return nil
		}
	}
	place := func(it nonpItem) error {
		for cur < 0 || b.machines[cur].load >= T {
			if cur >= 0 && b.machines[cur].load >= T {
				cur = -1
			}
			if cur < 0 {
				if err := advance(); err != nil {
					return err
				}
			}
		}
		mi := cur
		idx := len(b.machines[mi].items)
		b.put(mi, it)
		if m := &b.machines[mi]; m.load >= T {
			m.crossing = idx
			cur = -1
		}
		return nil
	}
	for i := range p.In.Classes {
		st := &b.states[i]
		if len(st.restJobs) == 0 {
			continue
		}
		cls := &p.In.Classes[i]
		if cls.Setup > 0 {
			if err := place(nonpItem{isSetup: true, class: i, job: -1, length: cls.Setup, parent: -1}); err != nil {
				return nil, err
			}
		}
		for k, j := range st.restJobs {
			parent := -1
			if st.restLens[k] != st.restFull[k] {
				parent = b.ensureParent(i, j, st.restFull[k])
			}
			if err := place(nonpItem{class: i, job: j, length: st.restLens[k], parent: parent}); err != nil {
				return nil, err
			}
		}
	}

	// Step 4a: restore non-preemption.  Prefer hosting the whole job at a
	// piece that is a border (crossing) item, so that step 4b still moves
	// it (and its fresh setup) below the continuation.
	for pi := range b.parents {
		par := &b.parents[pi]
		if len(par.pieces) == 0 {
			continue
		}
		if len(par.pieces) == 1 {
			loc := par.pieces[0]
			it := &b.machines[loc.mach].items[loc.item]
			if it.length != par.total {
				return nil, errInternal("sole piece of job (%d,%d) has length %d of %d",
					par.class, par.job, it.length, par.total)
			}
			it.parent = -1
			continue
		}
		host := -1
		for k, loc := range par.pieces {
			if b.machines[loc.mach].crossing == loc.item {
				host = k
				break
			}
		}
		if host < 0 {
			for k, loc := range par.pieces {
				if loc.item == len(b.machines[loc.mach].items)-1 {
					host = k
					break
				}
			}
		}
		if host < 0 {
			return nil, errInternal("no machine-last piece for split job (%d,%d)", par.class, par.job)
		}
		for k, loc := range par.pieces {
			m := &b.machines[loc.mach]
			it := &m.items[loc.item]
			if k == host {
				m.load += par.total - it.length
				it.length = par.total
				it.parent = -1
			} else {
				it.deleted = true
				m.load -= it.length
			}
		}
	}

	// Step 4b: move surviving border items, processing machines in reverse
	// fill order so insertion indices stay valid.  The insertion scratch
	// buffers are shared across iterations.
	for oi := len(b.order) - 1; oi >= 0; oi-- {
		m := &b.machines[b.order[oi]]
		if m.crossing < 0 {
			continue
		}
		it := m.items[m.crossing]
		if it.deleted {
			continue
		}
		if oi+1 >= len(b.order) {
			// The border item ends the whole sequence Q, so no
			// continuation setup needs repair.  But if this machine also
			// receives the previous machine's move, keeping the item
			// could push it past 3/2 T (an edge case the paper's step 4
			// glosses over): relocate the item to the top of the first
			// step-3 machine, which never receives a move and ends below
			// T once its own border item departs.
			if len(b.order) < 2 {
				continue // sole machine: load < T plus one item <= 3/2 T
			}
			m.items[m.crossing].deleted = true
			m.load -= it.length
			if it.isSetup {
				continue // a trailing setup enables nothing; drop it
			}
			first := &b.machines[b.order[0]]
			if s := p.In.Classes[it.class].Setup; s > 0 {
				first.items = append(first.items, nonpItem{isSetup: true, class: it.class, job: -1, length: s, parent: -1})
				first.load += s
			}
			it.deleted = false
			first.items = append(first.items, it)
			first.load += it.length
			continue
		}
		m.items[m.crossing].deleted = true
		m.load -= it.length
		recv := &b.machines[b.order[oi+1]]
		b.insBuf = b.insBuf[:0]
		if !it.isSetup {
			if s := p.In.Classes[it.class].Setup; s > 0 {
				b.insBuf = append(b.insBuf, nonpItem{isSetup: true, class: it.class, job: -1, length: s, parent: -1})
			}
		}
		b.insBuf = append(b.insBuf, it)
		b.tailBuf = append(b.tailBuf[:0], recv.items[recv.step3Start:]...)
		recv.items = append(recv.items[:recv.step3Start], b.insBuf...)
		recv.items = append(recv.items, b.tailBuf...)
		for _, x := range b.insBuf {
			recv.load += x.length
		}
	}

	// Emit.  Schedule construction is allocation-bound and runs on every
	// solve — warm session re-solves included, where it dominates once
	// the search itself is down to a few probes — so all machines' slots
	// share one arena sized up front (AddMachine aliases, never copies)
	// and the per-machine scratch is reused.  All times are integral
	// here, so the running top stays in int64.  The arena is the one
	// allocation that escapes into the result; it must never come from
	// the reusable scratch.
	out := &sched.Schedule{Variant: sched.NonPreemptive, T: sched.R(T)}
	total := 0
	for mi := range b.machines {
		total += len(b.machines[mi].items)
	}
	arena := make([]sched.Slot, 0, total)
	out.Runs = make([]sched.MachineRun, 0, len(b.machines))
	for mi := range b.machines {
		m := &b.machines[mi]
		b.live = b.live[:0]
		for _, it := range m.items {
			if !it.deleted {
				b.live = append(b.live, it)
			}
		}
		live := dropUselessNonpSetups(b.live)
		start := len(arena)
		var top int64
		for _, it := range live {
			if it.length <= 0 {
				if it.length < 0 {
					return nil, errInternal("negative slot length %d", it.length)
				}
				continue
			}
			kind, job := sched.SlotJob, it.job
			if it.isSetup {
				kind, job = sched.SlotSetup, -1
			}
			arena = append(arena, sched.Slot{
				Kind: kind, Class: it.class, Job: job,
				Start: sched.R(top), End: sched.R(top + it.length),
			})
			top += it.length
		}
		out.AddMachine(arena[start:len(arena):len(arena)])
	}
	return out, nil
}

// dropUselessNonpSetups removes setups not directly followed by a job of
// their class.
func dropUselessNonpSetups(items []nonpItem) []nonpItem {
	keep := items[:0]
	for k := 0; k < len(items); k++ {
		it := items[k]
		if it.isSetup && (k+1 >= len(items) || items[k+1].isSetup || items[k+1].class != it.class) {
			continue
		}
		keep = append(keep, it)
	}
	return keep
}
