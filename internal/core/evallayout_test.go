package core

import (
	"math/rand"
	"slices"
	"testing"

	"setupsched/sched"
	"setupsched/schedgen"
)

// evalLadder returns makespan guesses exercising every decision region of
// the dual tests: below SPT, at and around the trivial bounds, random
// interior points, and non-integral rationals (the floor path).
func evalLadder(p *Prep, rng *rand.Rand) []sched.Rat {
	tmin := p.TMin(sched.NonPreemptive)
	ladder := []sched.Rat{
		sched.R(1),
		sched.R(p.SPT - 1), sched.R(p.SPT), sched.R(p.SPT + 1),
		tmin, tmin.MulInt(2), sched.R(p.N),
		sched.Mid(tmin, sched.R(p.N)),
		sched.RatOf(2*p.N+1, 3), // non-integral
	}
	for i := 0; i < 24; i++ {
		ladder = append(ladder, sched.RatOf(1+rng.Int63n(2*p.N), 1+rng.Int63n(4)))
	}
	return ladder
}

func sameNonpEval(t *testing.T, tag string, got, want *NonpEval) {
	t.Helper()
	if got.T != want.T || got.OK != want.OK || got.Reason != want.Reason ||
		got.MPrime != want.MPrime || got.L != want.L {
		t.Fatalf("%s: eval header differs:\n got %+v\nwant %+v", tag, got, want)
	}
	if !slices.Equal(got.Exp, want.Exp) {
		t.Fatalf("%s: Exp %v != %v", tag, got.Exp, want.Exp)
	}
	if !slices.Equal(got.Mi, want.Mi) {
		t.Fatalf("%s: Mi %v != %v", tag, got.Mi, want.Mi)
	}
	if !slices.Equal(got.XiPos, want.XiPos) {
		t.Fatalf("%s: XiPos %v != %v", tag, got.XiPos, want.XiPos)
	}
}

// TestEvalNonpLayoutMatchesRef pins the SoA eval (binary-search
// thresholds over sorted jobs + prefix sums), its scratch variant and the
// batched sweep to the original per-job walk, field for field, across the
// generator catalog.
func TestEvalNonpLayoutMatchesRef(t *testing.T) {
	for _, fam := range schedgen.Families {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				in := fam.Make(schedgen.Params{
					M: 3 + seed*3, Classes: 7 + int(seed), JobsPer: 6,
					MaxSetup: 50, MaxJob: 70, Seed: seed,
				})
				p := Prepare(in)
				rng := rand.New(rand.NewSource(seed * 7919))
				ladder := evalLadder(p, rng)
				var sc NonpEvalScratch
				var bsc NonpBatchScratch
				oks := p.EvalNonpBatch(ladder, &bsc)
				for li, T := range ladder {
					want := p.EvalNonpRef(T)
					sameNonpEval(t, "soa", p.EvalNonp(T), want)
					sameNonpEval(t, "scratch", p.EvalNonpScratch(T, &sc), want)
					if oks[li] != want.OK {
						t.Fatalf("batch outcome at T=%s: %v, want %v", T, oks[li], want.OK)
					}
				}
			}
		})
	}
}

// TestEvalPmtnStarMatchesWalk pins the preemptive Star-class binary
// search to a direct per-job walk under both point and interval
// predicates.
func TestEvalPmtnStarMatchesWalk(t *testing.T) {
	for _, fam := range schedgen.Families {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				in := fam.Make(schedgen.Params{
					M: 4 + seed, Classes: 8, JobsPer: 5,
					MaxSetup: 60, MaxJob: 45, Seed: seed,
				})
				p := Prepare(in)
				rng := rand.New(rand.NewSource(seed * 104729))
				for _, T := range evalLadder(p, rng) {
					hi := T.MulInt(9).Half().Half() // 9/4 T > T
					for _, mode := range []struct {
						name string
						hi   *sched.Rat
					}{{"point", nil}, {"interval", &hi}} {
						ev := p.EvalPmtn(T, mode.hi)
						if ev.MachFail {
							continue // rejected before the Star loop ran
						}
						q := &pmtnPredicates{point: mode.hi == nil, T: T}
						if mode.hi != nil {
							q.hi = *mode.hi
						}
						var star []int
						var cnts, works []int64
						for _, i := range ev.ChpMinus {
							cls := &in.Classes[i]
							var cnt, work int64
							for _, tj := range cls.Jobs {
								if q.above(2 * (cls.Setup + tj)) {
									cnt++
									work += tj
								}
							}
							if cnt > 0 {
								star = append(star, i)
								cnts = append(cnts, cnt)
								works = append(works, work)
							}
						}
						if !slices.Equal(ev.Star, star) ||
							!slices.Equal(ev.BigCnt, cnts) || !slices.Equal(ev.BigWork, works) {
							t.Fatalf("%s T=%s: star sets differ:\n got %v %v %v\nwant %v %v %v",
								mode.name, T, ev.Star, ev.BigCnt, ev.BigWork, star, cnts, works)
						}
					}
				}
			}
		})
	}
}

// TestEvalNonpScratchZeroAlloc pins the bugfix for per-probe Mi/XiPos
// allocations: repeated probes through one scratch allocate nothing.
func TestEvalNonpScratchZeroAlloc(t *testing.T) {
	in := schedgen.Families[0].Make(schedgen.Params{
		M: 16, Classes: 64, JobsPer: 32, MaxSetup: 200, MaxJob: 300, Seed: 42,
	})
	p := Prepare(in)
	var sc NonpEvalScratch
	tmin := p.TMin(sched.NonPreemptive)
	ladder := []sched.Rat{tmin, sched.Mid(tmin, sched.R(p.N)), sched.R(p.N), sched.R(p.SPT - 1)}
	p.EvalNonpScratch(ladder[0], &sc) // warm the scratch
	if n := testing.AllocsPerRun(100, func() {
		for _, T := range ladder {
			p.EvalNonpScratch(T, &sc)
		}
	}); n != 0 {
		t.Fatalf("EvalNonpScratch allocates %v per run, want 0", n)
	}

	var bsc NonpBatchScratch
	p.EvalNonpBatch(ladder, &bsc)
	if n := testing.AllocsPerRun(100, func() {
		p.EvalNonpBatch(ladder, &bsc)
	}); n != 0 {
		t.Fatalf("EvalNonpBatch allocates %v per run, want 0", n)
	}
}

// FuzzEvalNonpLayout cross-checks the SoA eval against the reference walk
// on fuzzer-shaped instances and guesses.
func FuzzEvalNonpLayout(f *testing.F) {
	f.Add(int64(3), int64(2), uint8(4), uint8(3), int64(7), int64(1))
	f.Add(int64(1), int64(0), uint8(1), uint8(1), int64(2), int64(3))
	f.Add(int64(9), int64(40), uint8(6), uint8(9), int64(1000), int64(2))
	f.Fuzz(func(t *testing.T, m, setupBase int64, classes, jobsPer uint8, tNum, tDen int64) {
		if m < 1 || m > 1<<20 || classes == 0 || jobsPer == 0 {
			t.Skip()
		}
		if setupBase < 0 || setupBase > 1<<30 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(setupBase ^ tNum ^ int64(classes)))
		in := &sched.Instance{M: m}
		for i := 0; i < int(classes); i++ {
			cl := sched.Class{Setup: setupBase + rng.Int63n(setupBase+13)}
			for j := 0; j < int(jobsPer); j++ {
				cl.Jobs = append(cl.Jobs, 1+rng.Int63n(97))
			}
			in.Classes = append(in.Classes, cl)
		}
		if err := in.Validate(); err != nil {
			t.Skip()
		}
		p := Prepare(in)
		if tDen < 1 {
			tDen = 1
		}
		if tNum < 1 {
			tNum = 1
		}
		T := sched.RatOf(tNum%(2*p.N)+1, tDen%7+1)
		want := p.EvalNonpRef(T)
		sameNonpEval(t, "soa", p.EvalNonp(T), want)
		var sc NonpEvalScratch
		sameNonpEval(t, "scratch", p.EvalNonpScratch(T, &sc), want)
		if oks := p.EvalNonpBatch([]sched.Rat{T, T.MulInt(2)}, &NonpBatchScratch{}); oks[0] != want.OK {
			t.Fatalf("batch outcome %v, want %v", oks[0], want.OK)
		}
	})
}
