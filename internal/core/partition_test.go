package core

import (
	"math/rand"
	"testing"

	"setupsched/sched"
)

// TestSplitEvalHandExample verifies the splittable dual quantities against
// hand computation at T = 100.
func TestSplitEvalHandExample(t *testing.T) {
	in := &sched.Instance{M: 13, Classes: []sched.Class{
		{Setup: 60, Jobs: []int64{90, 80}}, // expensive, beta = ceil(340/100) = 4
		{Setup: 55, Jobs: []int64{70, 60}}, // expensive, beta = 3
		{Setup: 70, Jobs: []int64{30}},     // expensive, beta = 1
		{Setup: 50, Jobs: []int64{50, 30}}, // 2s = T: cheap
		{Setup: 20, Jobs: []int64{15}},     // cheap
	}}
	p := Prepare(in)
	ev := p.EvalSplit(sched.R(100), nil)
	if !ev.OK {
		t.Fatalf("rejected: %s", ev.Reason)
	}
	if len(ev.Exp) != 3 || len(ev.Chp) != 2 {
		t.Fatalf("partition: exp=%v chp=%v", ev.Exp, ev.Chp)
	}
	wantBeta := []int64{4, 3, 1}
	for k := range ev.Exp {
		if ev.Beta[k] != wantBeta[k] {
			t.Errorf("beta[%d] = %d, want %d", k, ev.Beta[k], wantBeta[k])
		}
	}
	if ev.MExp != 8 {
		t.Errorf("mexp = %d", ev.MExp)
	}
	// L = P(J) + s_chp + sum beta*s = 425 + 70 + (240+165+70) = 970.
	if ev.L != 970 {
		t.Errorf("L = %d, want 970", ev.L)
	}
}

// TestPmtnEvalHandExample verifies the preemptive partition and gamma
// values at T = 100.
func TestPmtnEvalHandExample(t *testing.T) {
	in := &sched.Instance{M: 12, Classes: []sched.Class{
		{Setup: 55, Jobs: []int64{45, 45, 45, 20}}, // s+P = 210 >= T: I+exp, gamma = ceil(420/100)-2 = 3
		{Setup: 60, Jobs: []int64{25}},             // s+P = 85 in (75,100): I0exp
		{Setup: 70, Jobs: []int64{5}},              // s+P = 75 <= 3/4T: I-exp
		{Setup: 30, Jobs: []int64{10}},             // T/4 <= s <= T/2: I+chp
		{Setup: 10, Jobs: []int64{45, 5}},          // s < T/4, job 45: s+t = 55 > T/2: I*chp
		{Setup: 5, Jobs: []int64{12}},              // I-chp, no big jobs
	}}
	p := Prepare(in)
	ev := p.EvalPmtn(sched.R(100), nil)
	if !ev.OK {
		t.Fatalf("rejected: %s", ev.Reason)
	}
	if len(ev.ExpPlus) != 1 || ev.ExpPlus[0] != 0 || ev.Gamma[0] != 3 {
		t.Errorf("ExpPlus=%v Gamma=%v", ev.ExpPlus, ev.Gamma)
	}
	if len(ev.ExpZero) != 1 || ev.ExpZero[0] != 1 {
		t.Errorf("ExpZero=%v", ev.ExpZero)
	}
	if len(ev.ExpMinus) != 1 || ev.ExpMinus[0] != 2 {
		t.Errorf("ExpMinus=%v", ev.ExpMinus)
	}
	if len(ev.ChpPlus) != 1 || ev.ChpPlus[0] != 3 {
		t.Errorf("ChpPlus=%v", ev.ChpPlus)
	}
	if len(ev.ChpMinus) != 2 {
		t.Errorf("ChpMinus=%v", ev.ChpMinus)
	}
	if len(ev.Star) != 1 || ev.Star[0] != 4 || ev.BigCnt[0] != 1 || ev.BigWork[0] != 45 {
		t.Errorf("Star=%v cnt=%v work=%v", ev.Star, ev.BigCnt, ev.BigWork)
	}
	// m' = l + sum gamma + ceil(|I-exp|/2) = 1 + 3 + 1 = 5.
	if ev.MPrime != 5 {
		t.Errorf("m' = %d", ev.MPrime)
	}
}

// TestGammaFormula cross-checks the closed form
// gamma = max(ceil(2(s+P)/T) - 2, 1) against the paper's case definition
// using beta' = floor(2P/T).
func TestGammaFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 20000; iter++ {
		T := 2 + rng.Int63n(1000)
		s := T/2 + 1 + rng.Int63n(T/2) // expensive: s in (T/2, T]
		if s > T {
			s = T
		}
		// I+exp requires s + P >= T.
		minP := T - s
		if minP < 1 {
			minP = 1
		}
		P := minP + rng.Int63n(3*T)
		TR := sched.R(T)
		got := (&pmtnPredicates{point: true, T: TR}).gamma(s + P)
		// Paper definition.
		betaP := (2 * P) / T // floor
		var want int64
		if 2*P-betaP*T <= 2*(T-s) { // P - beta'*T/2 <= T - s, scaled by 2
			want = betaP
			if want < 1 {
				want = 1
			}
		} else {
			want = sched.CeilDivInt(2*P, TR) // beta = ceil(2P/T)
		}
		if got != want {
			t.Fatalf("T=%d s=%d P=%d: gamma=%d, want %d", T, s, P, got, want)
		}
	}
}

// TestPmtnCaseBPath forces the greedy (no-knapsack) branch and verifies
// the construction.
func TestPmtnCaseBPath(t *testing.T) {
	// Plenty of machines: F is huge, so F >= sum_star(s+P) (case B), with
	// star classes present.
	in := &sched.Instance{M: 10, Classes: []sched.Class{
		{Setup: 60, Jobs: []int64{25}},    // I0exp at T=100
		{Setup: 10, Jobs: []int64{45, 4}}, // star
		{Setup: 4, Jobs: []int64{20, 7}},  // plain cheap
		{Setup: 3, Jobs: []int64{11}},
	}}
	p := Prepare(in)
	ev := p.EvalPmtn(sched.R(100), nil)
	if !ev.OK {
		t.Fatalf("rejected: %s", ev.Reason)
	}
	if ev.CaseA {
		t.Fatal("expected case B")
	}
	s, err := p.BuildPmtn(ev)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckMakespanAtMost(sched.R(150)); err != nil {
		t.Fatal(err)
	}
}

// TestPmtnCaseAPath forces the knapsack branch.
func TestPmtnCaseAPath(t *testing.T) {
	classes := []sched.Class{}
	for k := 0; k < 7; k++ {
		classes = append(classes, sched.Class{Setup: 55, Jobs: []int64{25}}) // I0exp
	}
	classes = append(classes,
		sched.Class{Setup: 52, Jobs: []int64{48, 48}}, // I+exp
		sched.Class{Setup: 10, Jobs: []int64{45, 4}},  // star
		sched.Class{Setup: 6, Jobs: []int64{47}},      // star
	)
	in := &sched.Instance{M: 9, Classes: classes}
	p := Prepare(in)
	ev := p.EvalPmtn(sched.R(100), nil)
	if !ev.OK {
		t.Fatalf("rejected: %s", ev.Reason)
	}
	if !ev.CaseA {
		t.Fatal("expected case A")
	}
	if ev.SplitPos < 0 && ev.UnselSetup == 0 {
		t.Log("knapsack selected everything (allowed but unusual here)")
	}
	s, err := p.BuildPmtn(ev)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckMakespanAtMost(sched.R(150)); err != nil {
		t.Fatal(err)
	}
}

// TestTrivialOneJobPerMachine covers the m >= n fast path.
func TestTrivialOneJobPerMachine(t *testing.T) {
	in := &sched.Instance{M: 10, Classes: []sched.Class{
		{Setup: 5, Jobs: []int64{8, 2}},
		{Setup: 1, Jobs: []int64{9}},
	}}
	p := Prepare(in)
	for _, f := range []func() (*Result, error){
		func() (*Result, error) { return p.SolvePmtnJump(Ctl{}) },
		func() (*Result, error) { return p.SolveNonpSearch(Ctl{}) },
	} {
		r, err := f()
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Schedule.Validate(in); err != nil {
			t.Fatal(err)
		}
		// The trivial schedule is optimal: makespan = max(s_i + t_j) = 13.
		if !r.Schedule.Makespan().Equal(sched.R(13)) {
			t.Errorf("makespan %s, want 13", r.Schedule.Makespan())
		}
		if !r.LowerBound.Equal(sched.R(13)) {
			t.Errorf("lower bound %s, want 13", r.LowerBound)
		}
	}
}

// TestProbeCounts verifies the searches stay within their probe budgets
// (the practical content of the O(log ...) claims).
func TestProbeCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 60; iter++ {
		in := &sched.Instance{M: int64(2 + rng.Intn(30))}
		c := 2 + rng.Intn(50)
		for i := 0; i < c; i++ {
			cl := sched.Class{Setup: rng.Int63n(500)}
			for j := 0; j <= rng.Intn(8); j++ {
				cl.Jobs = append(cl.Jobs, 1+rng.Int63n(800))
			}
			in.Classes = append(in.Classes, cl)
		}
		p := Prepare(in)
		rs, err := p.SolveSplitJump(Ctl{})
		if err != nil {
			t.Fatal(err)
		}
		// Phases: O(log c) + O(log m) + O(log c) + closing.
		budget := 6*log2(int64(c)+2) + 3*log2(in.M+2) + 16
		if rs.Probes > budget {
			t.Errorf("iter %d: split jump used %d probes (c=%d m=%d budget %d)",
				iter, rs.Probes, c, in.M, budget)
		}
		rp, err := p.SolvePmtnJump(Ctl{})
		if err != nil {
			t.Fatal(err)
		}
		n := int64(in.NumJobs())
		budget = 8*log2(n+2) + 6*log2(in.M+2) + 24
		if rp.Probes > budget {
			t.Errorf("iter %d: pmtn jump used %d probes (n=%d budget %d)",
				iter, rp.Probes, n, budget)
		}
	}
}

func log2(x int64) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n + 1
}
