package core_test

import (
	"math/rand"
	"sort"
	"testing"

	. "setupsched/internal/core"
	"setupsched/sched"
)

// sortRats mirrors the unexported core helper: sort ascending, dedupe.
func sortRats(rs []sched.Rat) []sched.Rat {
	sort.Slice(rs, func(a, b int) bool { return rs[a].Less(rs[b]) })
	out := rs[:0]
	for i, r := range rs {
		if i == 0 || !r.Equal(out[len(out)-1]) {
			out = append(out, r)
		}
	}
	return out
}

// TestSplitIntervalEvalConsistency verifies the foundation of the Class
// Jumping closing step: on an open interval between adjacent breakpoints
// and jumps, the interval-mode evaluation must agree with a point
// evaluation anywhere inside (same partition, same beta machine counts,
// same required load L).
func TestSplitIntervalEvalConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 200; iter++ {
		in := smallRandomInstance(rng)
		p := Prepare(in)
		tmin := p.TMin(sched.Splittable)
		// All breakpoints (2 s_i) and jumps (2 P_i / g) above tmin.
		var marks []sched.Rat
		for i := range in.Classes {
			marks = append(marks, sched.R(2*in.Classes[i].Setup))
			gMax := sched.CeilDivInt(2*p.P[i], tmin) + 1
			for g := int64(1); g <= gMax; g++ {
				marks = append(marks, sched.RatOf(2*p.P[i], g))
			}
		}
		marks = append(marks, tmin, sched.R(p.N))
		marks = sortRats(marks)
		for k := 1; k < len(marks); k++ {
			a, b := marks[k-1], marks[k]
			if a.Cmp(tmin) < 0 || b.Cmp(sched.R(p.N)) > 0 || !a.Less(b) {
				continue
			}
			mid := sched.Mid(a, b)
			evInt := p.EvalSplit(a, &b)
			evPt := p.EvalSplit(mid, nil)
			if evInt.MachFail != evPt.MachFail {
				t.Fatalf("iter %d (%s,%s): MachFail %v vs %v at %s",
					iter, a, b, evInt.MachFail, evPt.MachFail, mid)
			}
			if evInt.MachFail {
				continue
			}
			if evInt.L != evPt.L || evInt.MExp != evPt.MExp {
				t.Fatalf("iter %d (%s,%s): interval L=%d mexp=%d, point at %s L=%d mexp=%d\n%+v",
					iter, a, b, evInt.L, evInt.MExp, mid, evPt.L, evPt.MExp, in)
			}
			if len(evInt.Exp) != len(evPt.Exp) {
				t.Fatalf("iter %d (%s,%s): partitions differ", iter, a, b)
			}
		}
	}
}

// TestPmtnIntervalPartitionConsistency does the same for the preemptive
// partition and gamma counts (the knapsack-dependent part of L is
// verified separately by the closing step at runtime).
func TestPmtnIntervalPartitionConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 150; iter++ {
		in := smallRandomInstance(rng)
		p := Prepare(in)
		tmin := p.TMin(sched.Preemptive)
		var marks []sched.Rat
		for i := range in.Classes {
			s := in.Classes[i].Setup
			sp := s + p.P[i]
			marks = append(marks, sched.R(2*s), sched.R(4*s), sched.R(sp), sched.RatOf(4*sp, 3))
			for _, tj := range in.Classes[i].Jobs {
				marks = append(marks, sched.R(2*(s+tj)))
			}
			kMax := sched.CeilDivInt(2*sp, tmin) + 1
			for k := int64(3); k <= kMax; k++ {
				marks = append(marks, sched.RatOf(2*sp, k))
			}
		}
		marks = append(marks, tmin, sched.R(p.N))
		marks = sortRats(marks)
		for k := 1; k < len(marks); k++ {
			a, b := marks[k-1], marks[k]
			if a.Cmp(tmin) < 0 || b.Cmp(sched.R(p.N)) > 0 || !a.Less(b) {
				continue
			}
			mid := sched.Mid(a, b)
			evInt := p.EvalPmtn(a, &b)
			evPt := p.EvalPmtn(mid, nil)
			if evInt.MachFail != evPt.MachFail {
				t.Fatalf("iter %d (%s,%s): MachFail mismatch", iter, a, b)
			}
			if evInt.MachFail {
				continue
			}
			if evInt.MPrime != evPt.MPrime {
				t.Fatalf("iter %d (%s,%s): m' %d vs %d at %s\n%+v",
					iter, a, b, evInt.MPrime, evPt.MPrime, mid, in)
			}
			if len(evInt.ExpPlus) != len(evPt.ExpPlus) ||
				len(evInt.ExpZero) != len(evPt.ExpZero) ||
				len(evInt.ExpMinus) != len(evPt.ExpMinus) ||
				len(evInt.Star) != len(evPt.Star) {
				t.Fatalf("iter %d (%s,%s): partition mismatch at %s\nint: %v/%v/%v star %v\npt:  %v/%v/%v star %v",
					iter, a, b, mid,
					evInt.ExpPlus, evInt.ExpZero, evInt.ExpMinus, evInt.Star,
					evPt.ExpPlus, evPt.ExpZero, evPt.ExpMinus, evPt.Star)
			}
			for g := range evInt.Gamma {
				if evInt.Gamma[g] != evPt.Gamma[g] {
					t.Fatalf("iter %d (%s,%s): gamma mismatch at %s: %v vs %v",
						iter, a, b, mid, evInt.Gamma, evPt.Gamma)
				}
			}
		}
	}
}
