package core

import (
	"context"
	"errors"
	"time"

	"setupsched/sched"
)

// ErrProbeLimit is returned when a search exceeds its configured probe
// budget before converging.
var ErrProbeLimit = errors.New("probe limit reached")

// Observer receives probe-level events from the dual-approximation
// searches.
//
// Event ordering contract: all events of one solve are emitted
// sequentially from the goroutine coordinating that solve, never
// concurrently — even when the search probes speculatively
// (Ctl.Parallelism > 1).  A speculative batch of k guesses is reported as
// a block: k ProbeStarted calls in ascending-T order before any of the k
// evaluations runs, then k ProbeFinished calls in the same ascending-T
// order once all of them have returned.  Serial probes (the default)
// interleave Started/Finished pairwise as before.  An Observer shared by
// several concurrent solves (e.g. one metrics sink behind a server) must
// itself be safe for concurrent use.
type Observer interface {
	// ProbeStarted fires before a dual test is evaluated at guess T.
	ProbeStarted(T sched.Rat)
	// ProbeFinished fires after the dual test at T decided accept/reject.
	ProbeFinished(T sched.Rat, accepted bool)
	// SearchFinished fires once after a solve completes successfully.
	SearchFinished(algorithm string, probes int)
}

// Ctl carries the per-solve control surface through the searches: a
// cancellation context, an optional probe observer, an optional probe
// budget and the speculative-probing width.  The zero value means "run to
// completion, serially, unobserved".
type Ctl struct {
	// Ctx cancels the search between probes; nil means never cancel.
	Ctx context.Context
	// Obs receives probe events; nil means no observation.
	Obs Observer
	// ProbeLimit aborts the search with ErrProbeLimit once this many
	// probes have run; zero or negative means unlimited.  Speculative
	// probes count against the budget like serial ones, so a tight limit
	// may abort a speculative search where the serial one converges.
	ProbeLimit int
	// Parallelism is the speculative probe width: the searches may
	// evaluate up to this many candidate guesses T concurrently per
	// round, keeping the tightest resulting accept/reject bracket.  The
	// accepted guess, certified lower bound and schedule are bit-identical
	// to the serial search for any width; only wall-clock time, the probe
	// count and the Trace length change.  Zero or one means fully serial.
	Parallelism int
}

// width returns the effective speculation width (>= 1).
func (c Ctl) width() int {
	if c.Parallelism < 1 {
		return 1
	}
	return c.Parallelism
}

// interrupted reports the context error, if any.  The deadline is also
// checked against the wall clock directly: probes are tight CPU-bound
// loops, and on a saturated (or single-core) machine the context's timer
// goroutine may not have been scheduled yet when the deadline passes.
func (c Ctl) interrupted() error {
	if c.Ctx == nil {
		return nil
	}
	if err := c.Ctx.Err(); err != nil {
		return err
	}
	if d, ok := c.Ctx.Deadline(); ok && !time.Now().Before(d) {
		return context.DeadlineExceeded
	}
	return nil
}
