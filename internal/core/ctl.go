package core

import (
	"context"
	"errors"
	"time"

	"setupsched/sched"
)

// ErrProbeLimit is returned when a search exceeds its configured probe
// budget before converging.
var ErrProbeLimit = errors.New("probe limit reached")

// Observer receives probe-level events from the dual-approximation
// searches.
//
// Event ordering contract: all events of one solve are emitted
// sequentially from the goroutine coordinating that solve, never
// concurrently — even when the search probes speculatively
// (Ctl.Parallelism > 1).  A speculative batch of k guesses is reported as
// a block: k ProbeStarted calls in ascending-T order before any of the k
// evaluations runs, then k ProbeFinished calls in the same ascending-T
// order once all of them have returned.  Serial probes (the default)
// interleave Started/Finished pairwise as before.  An Observer shared by
// several concurrent solves (e.g. one metrics sink behind a server) must
// itself be safe for concurrent use.
type Observer interface {
	// ProbeStarted fires before a dual test is evaluated at guess T.
	ProbeStarted(T sched.Rat)
	// ProbeFinished fires after the dual test at T decided accept/reject.
	ProbeFinished(T sched.Rat, accepted bool)
	// SearchFinished fires once after a solve completes successfully.
	SearchFinished(algorithm string, probes int)
}

// BracketSeed warm-starts a dual search from a previously certified
// [reject, accept] pair.  Each side is an optimism-ordered candidate
// ladder: His typically holds the previous accepted guess itself (small
// deltas rarely move the threshold, so re-confirming it costs one probe)
// followed by the guess shifted up by the delta's added load (the
// provable upper bound on how far the threshold can move); Los mirrors
// this downward.  The seed is advisory: every candidate is validated by a
// real probe before it narrows the bracket, so a stale or wrong seed
// costs a bounded number of extra probes and can never change the
// search's answer — the exact searches converge to the unique threshold
// of the monotone dual test from any correctly narrowed bracket.  See
// stream.Session for the producer.
type BracketSeed struct {
	// Los are guesses expected to be rejected (certifying OPT > Lo),
	// probed in order while they lie strictly inside the bracket.
	Los []sched.Rat
	// His are guesses expected to be accepted, probed in order until one
	// confirms; a confirmed hi lets the search skip its trivial-upper-
	// bound probe and reports Result.SeedUsed.
	His []sched.Rat
}

// Ctl carries the per-solve control surface through the searches: a
// cancellation context, an optional probe observer, an optional probe
// budget and the speculative-probing width.  The zero value means "run to
// completion, serially, unobserved".
type Ctl struct {
	// Ctx cancels the search between probes; nil means never cancel.
	Ctx context.Context
	// Obs receives probe events; nil means no observation.
	Obs Observer
	// ProbeLimit aborts the search with ErrProbeLimit once this many
	// probes have run; zero or negative means unlimited.  Speculative
	// probes count against the budget like serial ones, so a tight limit
	// may abort a speculative search where the serial one converges.
	ProbeLimit int
	// Parallelism is the speculative probe width: the searches may
	// evaluate up to this many candidate guesses T concurrently per
	// round, keeping the tightest resulting accept/reject bracket.  The
	// accepted guess, certified lower bound and schedule are bit-identical
	// to the serial search for any width; only wall-clock time, the probe
	// count and the Trace length change.  Zero or one means fully serial.
	Parallelism int
	// Seed warm-starts the exact searches (Class Jumping, the integral
	// non-preemptive search) from a previously certified bracket; nil
	// means a cold start.  The eps-search ignores it: its certified pair
	// is a function of the full bisection trajectory, so seeding would
	// change the reported bound (see ALGORITHMS.md, "Warm-started
	// re-solves").
	Seed *BracketSeed
	// Scratch lends the schedule builders reusable working memory; nil
	// allocates per call.  Output is identical either way.  Setting it is
	// only sound when the caller serializes all solves sharing the
	// scratch (stream.Session holds its lock across the whole solve);
	// the concurrent paths (Solver, SolveAll fan-out) must leave it nil.
	Scratch *BuildScratch
}

// BuildScratch aggregates the builders' and dual tests' reusable working
// memory (see Ctl.Scratch).  The zero value is ready for use.
type BuildScratch struct {
	Nonp NonpScratch
	// Eval backs the non-preemptive dual test's per-probe arrays, so a
	// warm re-solve's serial probes allocate nothing (the searches route
	// speculative batches through EvalNonpBatch, which keeps the serial
	// test single-threaded and the shared scratch sound).
	Eval NonpEvalScratch
}

// width returns the effective speculation width (>= 1).
func (c Ctl) width() int {
	if c.Parallelism < 1 {
		return 1
	}
	return c.Parallelism
}

// interrupted reports the context error, if any.  The deadline is also
// checked against the wall clock directly: probes are tight CPU-bound
// loops, and on a saturated (or single-core) machine the context's timer
// goroutine may not have been scheduled yet when the deadline passes.
func (c Ctl) interrupted() error {
	if c.Ctx == nil {
		return nil
	}
	if err := c.Ctx.Err(); err != nil {
		return err
	}
	if d, ok := c.Ctx.Deadline(); ok && !time.Now().Before(d) {
		return context.DeadlineExceeded
	}
	return nil
}
