package core

import (
	"context"
	"errors"
	"time"

	"setupsched/sched"
)

// ErrProbeLimit is returned when a search exceeds its configured probe
// budget before converging.
var ErrProbeLimit = errors.New("probe limit reached")

// Observer receives probe-level events from the dual-approximation
// searches.  Implementations must be safe for use from the goroutine
// running the solve; a single solve never emits events concurrently.
type Observer interface {
	// ProbeStarted fires before a dual test is evaluated at guess T.
	ProbeStarted(T sched.Rat)
	// ProbeFinished fires after the dual test at T decided accept/reject.
	ProbeFinished(T sched.Rat, accepted bool)
	// SearchFinished fires once after a solve completes successfully.
	SearchFinished(algorithm string, probes int)
}

// Ctl carries the per-solve control surface through the searches: a
// cancellation context, an optional probe observer and an optional probe
// budget.  The zero value means "run to completion, unobserved".
type Ctl struct {
	// Ctx cancels the search between probes; nil means never cancel.
	Ctx context.Context
	// Obs receives probe events; nil means no observation.
	Obs Observer
	// ProbeLimit aborts the search with ErrProbeLimit once this many
	// probes have run; zero or negative means unlimited.
	ProbeLimit int
}

// interrupted reports the context error, if any.  The deadline is also
// checked against the wall clock directly: probes are tight CPU-bound
// loops, and on a saturated (or single-core) machine the context's timer
// goroutine may not have been scheduled yet when the deadline passes.
func (c Ctl) interrupted() error {
	if c.Ctx == nil {
		return nil
	}
	if err := c.Ctx.Err(); err != nil {
		return err
	}
	if d, ok := c.Ctx.Deadline(); ok && !time.Now().Before(d) {
		return context.DeadlineExceeded
	}
	return nil
}
