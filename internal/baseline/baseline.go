// Package baseline implements the comparison algorithms that the paper's
// results are measured against:
//
//   - McNaughton's wrap-around rule for P|pmtn|Cmax (the classical
//     substrate the paper's Batch Wrapping generalizes);
//   - LPT list scheduling of whole batches (the classical heuristic for
//     the non-preemptive case, in the spirit of Monma & Potts' first
//     phase);
//   - a next-fit batch heuristic in the spirit of Jansen & Land's
//     linear-time 3-approximation.
//
// These baselines carry weaker guarantees than the paper's algorithms; the
// benchmark harness uses them to reproduce the "who wins" shape of
// Table 1.
package baseline

import (
	"container/heap"
	"sort"

	"setupsched/sched"
)

// McNaughton solves P|pmtn|Cmax exactly for jobs without setup classes:
// the optimal makespan is max(t_max, sum t_j / m) and the wrap-around rule
// achieves it.  The jobs are modelled as a single class with setup 0.
func McNaughton(jobs []int64, m int64) *sched.Schedule {
	var sum, tmax int64
	for _, t := range jobs {
		sum += t
		if t > tmax {
			tmax = t
		}
	}
	T := sched.MaxRat(sched.R(tmax), sched.RatOf(sum, m))
	out := &sched.Schedule{Variant: sched.Preemptive, T: T}
	b := sched.NewMachineBuilder()
	cursor := sched.Rat{}
	for j, t := range jobs {
		left := sched.R(t)
		for left.Sign() > 0 {
			room := T.Sub(cursor)
			take := sched.MinRat(left, room)
			b.PlaceAt(sched.SlotJob, 0, j, cursor, take)
			cursor = cursor.Add(take)
			left = left.Sub(take)
			if cursor.Cmp(T) >= 0 {
				out.AddMachine(b.Slots())
				b = sched.NewMachineBuilder()
				cursor = sched.Rat{}
			}
		}
	}
	if len(b.Slots()) > 0 {
		out.AddMachine(b.Slots())
	}
	return out
}

// machineHeap is a min-heap of machine loads for list scheduling.
type machineHeap struct {
	load []int64
	idx  []int
}

func (h *machineHeap) Len() int           { return len(h.load) }
func (h *machineHeap) Less(a, b int) bool { return h.load[a] < h.load[b] }
func (h *machineHeap) Swap(a, b int) {
	h.load[a], h.load[b] = h.load[b], h.load[a]
	h.idx[a], h.idx[b] = h.idx[b], h.idx[a]
}
func (h *machineHeap) Push(x any) { panic("fixed size") }
func (h *machineHeap) Pop() any   { panic("fixed size") }

// LPTBatches schedules whole batches (setup + all jobs of a class) by
// longest processing time first onto the least loaded machine.  This is
// the classical list-scheduling baseline for the non-preemptive case.
func LPTBatches(in *sched.Instance) *sched.Schedule {
	c := len(in.Classes)
	order := make([]int, c)
	weight := make([]int64, c)
	for i := range in.Classes {
		order[i] = i
		weight[i] = in.Classes[i].Setup + in.Classes[i].Work()
	}
	sort.Slice(order, func(a, b int) bool {
		if weight[order[a]] != weight[order[b]] {
			return weight[order[a]] > weight[order[b]]
		}
		return order[a] < order[b]
	})
	m := in.M
	if m > int64(c) {
		m = int64(c) // extra machines stay idle for whole-batch scheduling
	}
	h := &machineHeap{load: make([]int64, m), idx: make([]int, m)}
	for u := range h.idx {
		h.idx[u] = u
	}
	heap.Init(h)
	assign := make([][]int, m)
	for _, i := range order {
		assign[h.idx[0]] = append(assign[h.idx[0]], i)
		h.load[0] += weight[i]
		heap.Fix(h, 0)
	}
	out := &sched.Schedule{Variant: sched.NonPreemptive}
	for u := int64(0); u < m; u++ {
		b := sched.NewMachineBuilder()
		for _, i := range assign[u] {
			cls := &in.Classes[i]
			if cls.Setup > 0 {
				b.Place(sched.SlotSetup, i, -1, sched.R(cls.Setup))
			}
			for j, t := range cls.Jobs {
				b.Place(sched.SlotJob, i, j, sched.R(t))
			}
		}
		out.AddMachine(b.Slots())
	}
	out.T = out.Makespan()
	return out
}

// NextFitBatches fills machines class by class up to the threshold
// max(N/m, max_i(s_i+t_max)) and closes a machine as soon as it would be
// exceeded, starting the class over (with a fresh setup) on the next
// machine.  It is the simple linear-time strategy in the spirit of Jansen
// & Land's next-fit 3-approximation.
func NextFitBatches(in *sched.Instance) *sched.Schedule {
	thr := in.LowerBound(sched.Preemptive)
	out := &sched.Schedule{Variant: sched.NonPreemptive, T: thr}
	b := sched.NewMachineBuilder()
	flush := func() {
		if len(b.Slots()) > 0 {
			out.AddMachine(b.Slots())
			b = sched.NewMachineBuilder()
		}
	}
	for i := range in.Classes {
		cls := &in.Classes[i]
		setupPending := true
		for j, t := range cls.Jobs {
			need := t
			if setupPending {
				need += cls.Setup
			}
			if !b.Top().IsZero() && b.Top().AddInt(need).Cmp(thr) > 0 {
				flush()
				setupPending = true
				need = t + cls.Setup
			}
			if setupPending {
				if cls.Setup > 0 {
					b.Place(sched.SlotSetup, i, -1, sched.R(cls.Setup))
				}
				setupPending = false
			}
			b.Place(sched.SlotJob, i, j, sched.R(t))
		}
	}
	flush()
	// Next-fit may open more machines than m on tight instances; fold the
	// overflow back round-robin is not feasible non-preemptively, so fall
	// back to stacking overflow machines onto the first ones.
	if int64(len(out.Runs)) > in.M {
		folded := &sched.Schedule{Variant: sched.NonPreemptive, T: thr}
		tops := make([]sched.Rat, in.M)
		items := make([][]sched.Slot, in.M)
		for ri, run := range out.Runs {
			u := int64(ri) % in.M
			for _, sl := range run.Slots {
				length := sl.End.Sub(sl.Start)
				sl.Start = tops[u]
				sl.End = tops[u].Add(length)
				tops[u] = sl.End
				items[u] = append(items[u], sl)
			}
		}
		for u := int64(0); u < in.M; u++ {
			folded.AddMachine(items[u])
		}
		return folded
	}
	return out
}
