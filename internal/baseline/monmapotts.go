package baseline

import (
	"sort"

	"setupsched/sched"
)

// MonmaPottsSplit reconstructs the spirit of Monma & Potts' second
// heuristic (Operations Research 1993), the comparator in the paper's
// Table 1 for the small-batch regime: first list-schedule whole batches
// (LPT), then repeatedly try to split the top batch of the makespan
// machine, moving a suffix of its jobs (plus a fresh setup) to the least
// loaded machine when that reduces the makespan.
//
// The original analysis gives (3/2 - 1/(4m-4)) for small batches with
// m <= 4 and (5/3 - 1/m)-style bounds beyond; this reconstruction makes no
// ratio claim and is used purely as an empirical baseline.
func MonmaPottsSplit(in *sched.Instance) *sched.Schedule {
	type batchPart struct {
		class int
		jobs  []int // job indices
	}
	m := int(in.M)
	if int64(len(in.Classes)) < in.M {
		m = len(in.Classes)
	}
	if m == 0 {
		m = 1
	}
	// Phase 1: LPT whole batches.
	order := make([]int, len(in.Classes))
	for i := range order {
		order[i] = i
	}
	weight := func(i int) int64 { return in.Classes[i].Setup + in.Classes[i].Work() }
	sort.Slice(order, func(a, b int) bool {
		if weight(order[a]) != weight(order[b]) {
			return weight(order[a]) > weight(order[b])
		}
		return order[a] < order[b]
	})
	loads := make([]int64, m)
	parts := make([][]batchPart, m)
	for _, i := range order {
		u := 0
		for v := 1; v < m; v++ {
			if loads[v] < loads[u] {
				u = v
			}
		}
		jobs := make([]int, len(in.Classes[i].Jobs))
		for j := range jobs {
			jobs[j] = j
		}
		parts[u] = append(parts[u], batchPart{class: i, jobs: jobs})
		loads[u] += weight(i)
	}

	// Phase 2: batch splitting.  Move single jobs off the top batch of the
	// makespan machine while it strictly improves the makespan.
	for round := 0; round < 4*len(in.Classes)+8; round++ {
		hi, lo := 0, 0
		for u := 1; u < m; u++ {
			if loads[u] > loads[hi] {
				hi = u
			}
			if loads[u] < loads[lo] {
				lo = u
			}
		}
		if hi == lo || len(parts[hi]) == 0 {
			break
		}
		top := &parts[hi][len(parts[hi])-1]
		if len(top.jobs) == 0 {
			break
		}
		cls := &in.Classes[top.class]
		j := top.jobs[len(top.jobs)-1]
		move := cls.Jobs[j]
		// Receiving machine pays a fresh setup unless it already carries
		// a part of this class.
		extra := cls.Setup
		for _, bp := range parts[lo] {
			if bp.class == top.class {
				extra = 0
				break
			}
		}
		newHi := loads[hi] - move
		if len(top.jobs) == 1 {
			newHi -= cls.Setup // batch leaves entirely
		}
		newLo := loads[lo] + move + extra
		if maxi64(newHi, newLo) >= loads[hi] {
			break // no improvement possible with this move
		}
		// Apply.
		top.jobs = top.jobs[:len(top.jobs)-1]
		loads[hi] = newHi
		if len(top.jobs) == 0 {
			parts[hi] = parts[hi][:len(parts[hi])-1]
		}
		placed := false
		for k := range parts[lo] {
			if parts[lo][k].class == top.class {
				parts[lo][k].jobs = append(parts[lo][k].jobs, j)
				placed = true
				break
			}
		}
		if !placed {
			parts[lo] = append(parts[lo], batchPart{class: top.class, jobs: []int{j}})
		}
		loads[lo] = newLo
	}

	// Emit.
	out := &sched.Schedule{Variant: sched.NonPreemptive}
	for u := 0; u < m; u++ {
		b := sched.NewMachineBuilder()
		for _, bp := range parts[u] {
			if len(bp.jobs) == 0 {
				continue
			}
			cls := &in.Classes[bp.class]
			if cls.Setup > 0 {
				b.Place(sched.SlotSetup, bp.class, -1, sched.R(cls.Setup))
			}
			for _, j := range bp.jobs {
				b.Place(sched.SlotJob, bp.class, j, sched.R(cls.Jobs[j]))
			}
		}
		out.AddMachine(b.Slots())
	}
	out.T = out.Makespan()
	return out
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
