package baseline

import (
	"math/rand"
	"testing"

	"setupsched/internal/exact"
	"setupsched/sched"
)

func TestMcNaughtonOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 300; iter++ {
		m := int64(1 + rng.Intn(6))
		n := 1 + rng.Intn(12)
		jobs := make([]int64, n)
		var sum, tmax int64
		for j := range jobs {
			jobs[j] = 1 + rng.Int63n(30)
			sum += jobs[j]
			if jobs[j] > tmax {
				tmax = jobs[j]
			}
		}
		s := McNaughton(jobs, m)
		in := &sched.Instance{M: m, Classes: []sched.Class{{Setup: 0, Jobs: jobs}}}
		if err := s.Validate(in); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		opt := sched.MaxRat(sched.R(tmax), sched.RatOf(sum, m))
		if !s.Makespan().Equal(opt) {
			t.Fatalf("iter %d: makespan %s, want optimal %s", iter, s.Makespan(), opt)
		}
	}
}

func TestLPTBatchesFeasibleAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 200; iter++ {
		in := randomInstance(rng)
		s := LPTBatches(in)
		if err := s.Validate(in); err != nil {
			t.Fatalf("iter %d: %v\n%+v", iter, err, in)
		}
		// Whole-batch LPT is a (2 - 1/m)-approximation w.r.t. the batch
		// lower bound max(max_i(s_i+P_i), sum_i(s_i+P_i)/m).
		var sum, mx int64
		for i := range in.Classes {
			w := in.Classes[i].Setup + in.Classes[i].Work()
			sum += w
			if w > mx {
				mx = w
			}
		}
		lb := sched.MaxRat(sched.R(mx), sched.RatOf(sum, in.M))
		if s.Makespan().Cmp(lb.MulInt(2)) > 0 {
			t.Fatalf("iter %d: LPT makespan %s above 2x batch bound %s", iter, s.Makespan(), lb)
		}
	}
}

func TestNextFitBatchesFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		in := randomInstance(rng)
		s := NextFitBatches(in)
		if err := s.Validate(in); err != nil {
			t.Fatalf("iter %d: %v\n%+v", iter, err, in)
		}
	}
}

func TestBaselinesVersusExactOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 80; iter++ {
		in := &sched.Instance{M: int64(1 + rng.Intn(3))}
		c := 1 + rng.Intn(3)
		for i := 0; i < c; i++ {
			cl := sched.Class{Setup: rng.Int63n(8)}
			for j := 0; j <= rng.Intn(3); j++ {
				cl.Jobs = append(cl.Jobs, 1+rng.Int63n(9))
			}
			in.Classes = append(in.Classes, cl)
		}
		opt, err := exact.NonPreemptive(in)
		if err != nil {
			continue
		}
		for name, s := range map[string]*sched.Schedule{
			"lpt":     LPTBatches(in),
			"nextfit": NextFitBatches(in),
		} {
			if s.Makespan().CmpInt(opt) < 0 {
				t.Fatalf("iter %d: %s beats the exact optimum (%s < %d)\n%+v",
					iter, name, s.Makespan(), opt, in)
			}
		}
	}
}

func randomInstance(rng *rand.Rand) *sched.Instance {
	in := &sched.Instance{M: int64(1 + rng.Intn(6))}
	c := 1 + rng.Intn(8)
	for i := 0; i < c; i++ {
		cl := sched.Class{Setup: rng.Int63n(20)}
		nj := 1 + rng.Intn(6)
		for j := 0; j < nj; j++ {
			cl.Jobs = append(cl.Jobs, 1+rng.Int63n(30))
		}
		in.Classes = append(in.Classes, cl)
	}
	return in
}

func TestMonmaPottsSplitFeasibleAndNoWorseThanLPT(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	better := 0
	for iter := 0; iter < 300; iter++ {
		in := randomInstance(rng)
		mp := MonmaPottsSplit(in)
		if err := mp.Validate(in); err != nil {
			t.Fatalf("iter %d: %v\n%+v", iter, err, in)
		}
		lpt := LPTBatches(in)
		// Splitting starts from the LPT solution and only applies
		// improving moves, so it can never be worse.
		if lpt.Makespan().Less(mp.Makespan()) {
			t.Fatalf("iter %d: batch splitting worsened LPT (%s -> %s)\n%+v",
				iter, lpt.Makespan(), mp.Makespan(), in)
		}
		if mp.Makespan().Less(lpt.Makespan()) {
			better++
		}
	}
	if better == 0 {
		t.Error("batch splitting never improved LPT across 300 instances")
	}
}
