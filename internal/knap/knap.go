// Package knap solves the continuous (fractional) knapsack problem exactly
// in linear time.
//
// The preemptive 3/2-dual approximation (Deppert & Jansen, SPAA 2019,
// Section 4.2) decides which cheap classes are scheduled entirely outside
// the "large machines" by solving a continuous knapsack with profits s_i
// and weights w_i = P(C_i) - L*_i.  The optimal continuous solution selects
// a prefix of the items in non-increasing profit/weight order and splits at
// most one item.  SolveContinuous finds that prefix in O(n) worst case via
// median-of-medians selection, matching the paper's O(c) budget; a sorting
// reference implementation is kept for cross-checking.
//
// Weights and the capacity are integers; callers express rational weights
// by scaling everything to a common denominator.
package knap

import (
	"errors"
	"sort"

	"setupsched/internal/num128"
)

// Item is a knapsack item.  Profit and Weight must be >= 0 and Weight >= 1.
type Item struct {
	Profit int64
	Weight int64
}

// Solution describes the optimal continuous solution.
type Solution struct {
	// Selected[i] reports x_i == 1 for input item i.
	Selected []bool
	// Split is the index of the single fractional item (0 < x_e < 1), or
	// -1 when the solution is integral.
	Split int
	// SplitFill is the capacity assigned to the split item
	// (SplitFill == x_e * w_e; 0 < SplitFill < Weight of the split item).
	SplitFill int64
	// Profit is the total integral profit sum over selected items
	// (excluding the fractional contribution of the split item).
	Profit int64
	// UsedCapacity is the total capacity consumed, including SplitFill.
	UsedCapacity int64
}

// ErrBadItem reports a non-positive weight or negative profit.
var ErrBadItem = errors.New("knap: items need weight >= 1 and profit >= 0")

// ratioLess reports whether item a ranks strictly after item b in the
// greedy order (profit/weight descending, index ascending for ties).
func ratioLess(items []Item, a, b int) bool {
	c := num128.CmpProd(items[a].Profit, items[b].Weight, items[b].Profit, items[a].Weight)
	if c != 0 {
		return c > 0 // larger ratio first
	}
	return a < b
}

// SolveContinuous returns the optimal continuous knapsack solution in O(n)
// worst-case time.  A non-positive capacity selects nothing.
func SolveContinuous(items []Item, capacity int64) (Solution, error) {
	sol := Solution{Selected: make([]bool, len(items)), Split: -1}
	for i := range items {
		if items[i].Weight < 1 || items[i].Profit < 0 {
			return sol, ErrBadItem
		}
	}
	if capacity <= 0 || len(items) == 0 {
		return sol, nil
	}
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	s := &selector{items: items}
	s.run(idx, capacity, &sol)
	return sol, nil
}

type selector struct {
	items []Item
}

// run processes the candidate set cand with the given remaining capacity,
// recording selections into sol.  It recurses on one side of a
// median-of-medians pivot, giving O(n) total work.
func (s *selector) run(cand []int, capacity int64, sol *Solution) {
	for len(cand) > 0 {
		if len(cand) <= 32 {
			sort.Slice(cand, func(a, b int) bool { return ratioLess(s.items, cand[a], cand[b]) })
			for _, i := range cand {
				w := s.items[i].Weight
				switch {
				case w <= capacity:
					sol.Selected[i] = true
					sol.Profit += s.items[i].Profit
					sol.UsedCapacity += w
					capacity -= w
				case capacity > 0:
					sol.Split = i
					sol.SplitFill = capacity
					sol.UsedCapacity += capacity
					capacity = 0
				default:
					return
				}
			}
			return
		}
		p := s.medianOfMedians(cand)
		// Partition: high = strictly better than pivot, low = strictly worse.
		var high, low []int
		for _, i := range cand {
			if i == p {
				continue
			}
			if ratioLess(s.items, i, p) {
				high = append(high, i)
			} else {
				low = append(low, i)
			}
		}
		var wHigh int64
		for _, i := range high {
			wHigh += s.items[i].Weight
		}
		switch {
		case wHigh > capacity:
			cand = high
		case wHigh+s.items[p].Weight > capacity:
			// Everything in high fits; pivot is the boundary item.
			for _, i := range high {
				sol.Selected[i] = true
				sol.Profit += s.items[i].Profit
			}
			sol.UsedCapacity += wHigh
			capacity -= wHigh
			if capacity > 0 {
				sol.Split = p
				sol.SplitFill = capacity
				sol.UsedCapacity += capacity
			}
			return
		default:
			for _, i := range high {
				sol.Selected[i] = true
				sol.Profit += s.items[i].Profit
			}
			sol.Selected[p] = true
			sol.Profit += s.items[p].Profit
			used := wHigh + s.items[p].Weight
			sol.UsedCapacity += used
			capacity -= used
			cand = low
		}
	}
}

// medianOfMedians returns a pivot index guaranteeing a 30/70 split.
func (s *selector) medianOfMedians(cand []int) int {
	if len(cand) <= 5 {
		return s.median5(cand)
	}
	medians := make([]int, 0, (len(cand)+4)/5)
	for i := 0; i < len(cand); i += 5 {
		j := i + 5
		if j > len(cand) {
			j = len(cand)
		}
		medians = append(medians, s.median5(cand[i:j]))
	}
	return s.medianOfMedians(medians)
}

// median5 returns the median (by greedy order) of at most five candidates.
func (s *selector) median5(g []int) int {
	buf := make([]int, len(g))
	copy(buf, g)
	sort.Slice(buf, func(a, b int) bool { return ratioLess(s.items, buf[a], buf[b]) })
	return buf[len(buf)/2]
}

// SolveBySort is the O(n log n) reference implementation used for testing.
func SolveBySort(items []Item, capacity int64) (Solution, error) {
	sol := Solution{Selected: make([]bool, len(items)), Split: -1}
	for i := range items {
		if items[i].Weight < 1 || items[i].Profit < 0 {
			return sol, ErrBadItem
		}
	}
	if capacity <= 0 {
		return sol, nil
	}
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ratioLess(items, idx[a], idx[b]) })
	for _, i := range idx {
		w := items[i].Weight
		switch {
		case w <= capacity:
			sol.Selected[i] = true
			sol.Profit += items[i].Profit
			sol.UsedCapacity += w
			capacity -= w
		case capacity > 0:
			sol.Split = i
			sol.SplitFill = capacity
			sol.UsedCapacity += capacity
			capacity = 0
		default:
			return sol, nil
		}
	}
	return sol, nil
}
