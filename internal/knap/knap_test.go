package knap

import (
	"math/rand"
	"testing"
)

func randomItems(rng *rand.Rand, n int, maxP, maxW int64) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Profit: rng.Int63n(maxP), Weight: rng.Int63n(maxW) + 1}
	}
	return items
}

func sameSolution(a, b Solution) bool {
	if a.Split != b.Split || a.SplitFill != b.SplitFill ||
		a.Profit != b.Profit || a.UsedCapacity != b.UsedCapacity {
		return false
	}
	for i := range a.Selected {
		if a.Selected[i] != b.Selected[i] {
			return false
		}
	}
	return true
}

func TestSelectionMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 500; iter++ {
		n := rng.Intn(200) + 1
		items := randomItems(rng, n, 1000, 1000)
		var total int64
		for _, it := range items {
			total += it.Weight
		}
		capacity := rng.Int63n(total + 10)
		a, err := SolveContinuous(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SolveBySort(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSolution(a, b) {
			t.Fatalf("iter %d (n=%d cap=%d):\nselect: %+v\nsort:   %+v", iter, n, capacity, a, b)
		}
	}
}

func TestSolutionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 300; iter++ {
		n := rng.Intn(100) + 1
		items := randomItems(rng, n, 50, 50)
		var total int64
		for _, it := range items {
			total += it.Weight
		}
		capacity := rng.Int63n(total + 5)
		sol, err := SolveContinuous(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		var used, profit int64
		for i, sel := range sol.Selected {
			if sel {
				used += items[i].Weight
				profit += items[i].Profit
				if i == sol.Split {
					t.Fatal("split item marked selected")
				}
			}
		}
		if profit != sol.Profit {
			t.Fatalf("profit mismatch %d vs %d", profit, sol.Profit)
		}
		if sol.Split >= 0 {
			if sol.SplitFill <= 0 || sol.SplitFill >= items[sol.Split].Weight {
				t.Fatalf("split fill %d out of (0, %d)", sol.SplitFill, items[sol.Split].Weight)
			}
			used += sol.SplitFill
		}
		if used != sol.UsedCapacity {
			t.Fatalf("capacity accounting %d vs %d", used, sol.UsedCapacity)
		}
		if used > capacity {
			t.Fatalf("capacity exceeded: %d > %d", used, capacity)
		}
		// The knapsack is either full or everything is selected.
		if used < capacity {
			for i, sel := range sol.Selected {
				if !sel {
					t.Fatalf("slack capacity but item %d unselected (w=%d)", i, items[i].Weight)
				}
			}
		}
	}
}

func TestGreedyDominance(t *testing.T) {
	// No unselected item may have a strictly better ratio than a selected
	// one (exchange argument for continuous optimality).
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 200; iter++ {
		items := randomItems(rng, rng.Intn(80)+2, 100, 100)
		var total int64
		for _, it := range items {
			total += it.Weight
		}
		sol, err := SolveContinuous(items, rng.Int63n(total)+1)
		if err != nil {
			t.Fatal(err)
		}
		for i, si := range sol.Selected {
			if si || i == sol.Split {
				continue
			}
			for j, sj := range sol.Selected {
				if !sj {
					continue
				}
				// items[i] must not rank strictly before items[j].
				if ratioLess(items, i, j) && !ratioLess(items, j, i) {
					// strict ratio order i before j
					ci := items[i].Profit * items[j].Weight
					cj := items[j].Profit * items[i].Weight
					if ci > cj {
						t.Fatalf("unselected %d has better ratio than selected %d", i, j)
					}
				}
			}
		}
	}
}

func TestEdgeCases(t *testing.T) {
	// Zero capacity.
	sol, err := SolveContinuous([]Item{{Profit: 5, Weight: 3}}, 0)
	if err != nil || sol.Split != -1 || sol.Selected[0] {
		t.Errorf("zero capacity: %+v, %v", sol, err)
	}
	// Everything fits.
	sol, err = SolveContinuous([]Item{{5, 3}, {2, 2}}, 10)
	if err != nil || sol.Split != -1 || !sol.Selected[0] || !sol.Selected[1] || sol.UsedCapacity != 5 {
		t.Errorf("all fit: %+v, %v", sol, err)
	}
	// Exact fit leaves no split item.
	sol, err = SolveContinuous([]Item{{5, 3}, {1, 7}}, 3)
	if err != nil || sol.Split != -1 || !sol.Selected[0] || sol.Selected[1] {
		t.Errorf("exact fit: %+v, %v", sol, err)
	}
	// Empty items.
	sol, err = SolveContinuous(nil, 10)
	if err != nil || sol.Split != -1 {
		t.Errorf("empty: %+v, %v", sol, err)
	}
	// Invalid weight.
	if _, err := SolveContinuous([]Item{{1, 0}}, 1); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := SolveContinuous([]Item{{-1, 1}}, 1); err == nil {
		t.Error("negative profit accepted")
	}
	if _, err := SolveBySort([]Item{{1, 0}}, 1); err == nil {
		t.Error("reference accepted zero weight")
	}
}

func TestTieBreakDeterminism(t *testing.T) {
	// Equal ratios: lower index wins.
	items := []Item{{2, 4}, {1, 2}, {3, 6}}
	sol, err := SolveContinuous(items, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Selected[0] || sol.Split != 1 || sol.SplitFill != 1 {
		t.Errorf("tie-break: %+v", sol)
	}
}

func TestLargeValuesNoOverflow(t *testing.T) {
	items := []Item{
		{Profit: 1 << 52, Weight: 1 << 50},
		{Profit: 1 << 51, Weight: 1 << 49},
		{Profit: 1, Weight: 1 << 52},
	}
	a, err := SolveContinuous(items, 1<<51)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := SolveBySort(items, 1<<51)
	if !sameSolution(a, b) {
		t.Fatalf("large values: %+v vs %+v", a, b)
	}
}

func BenchmarkSolveContinuous(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	items := randomItems(rng, 100000, 1<<30, 1<<30)
	var total int64
	for _, it := range items {
		total += it.Weight
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveContinuous(items, total/2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveBySort(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	items := randomItems(rng, 100000, 1<<30, 1<<30)
	var total int64
	for _, it := range items {
		total += it.Weight
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveBySort(items, total/2); err != nil {
			b.Fatal(err)
		}
	}
}
