// Package wrap implements Batch Wrapping (Deppert & Jansen, SPAA 2019,
// Appendix A.1): scheduling a wrap sequence of batches (a setup followed by
// the jobs of its class) into a wrap template (a list of free time gaps,
// at most one per machine) in McNaughton wrap-around style.
//
// When an item hits the upper border of a gap it is handled as in the
// paper's Wrap/Split procedures: a setup is moved whole below the next gap;
// a job is split, the first piece ends at the border, and the remainder
// continues at the start of the next gap with a fresh setup placed directly
// below that gap.
//
// The template may end with a "tail run" of identical gaps (same start and
// end on many machines).  Pieces that span several identical tail gaps are
// emitted as machine runs with multiplicities, which is the trick the paper
// uses (proof of Theorem 7) to make the splittable algorithm run in
// O(n + c) even when m is much larger than n.
package wrap

import (
	"errors"
	"fmt"

	"setupsched/sched"
)

// Gap is one free interval [A, B) on a specific machine.
type Gap struct {
	Machine int64 // informational machine index
	A, B    sched.Rat
}

// Span returns B - A.
func (g Gap) Span() sched.Rat { return g.B.Sub(g.A) }

// TailRun describes Count additional identical gaps [A, B), one per unused
// machine, following the explicit gaps.
type TailRun struct {
	Count int64
	A, B  sched.Rat
}

// Item is one element of a wrap sequence.
type Item struct {
	Kind  sched.SlotKind
	Class int
	Job   int // -1 for setups
	Len   sched.Rat
}

// Sequence builds a wrap sequence [s_i, C_i]... batch by batch.
type Sequence struct {
	Items []Item
	total sched.Rat
}

// AddSetup appends a setup item for the class (skipped when s == 0).
func (q *Sequence) AddSetup(class int, s int64) {
	if s == 0 {
		return
	}
	q.Items = append(q.Items, Item{Kind: sched.SlotSetup, Class: class, Job: -1, Len: sched.R(s)})
	q.total = q.total.AddInt(s)
}

// AddJob appends a job piece of the given rational length (skipped when
// the length is zero).
func (q *Sequence) AddJob(class, job int, length sched.Rat) {
	if length.Sign() < 0 {
		panic("wrap: negative job length")
	}
	if length.IsZero() {
		return
	}
	q.Items = append(q.Items, Item{Kind: sched.SlotJob, Class: class, Job: job, Len: length})
	q.total = q.total.Add(length)
}

// AddBatch appends a setup followed by all jobs of the class.
func (q *Sequence) AddBatch(class int, setup int64, jobs []int64) {
	q.AddSetup(class, setup)
	for j, t := range jobs {
		q.AddJob(class, j, sched.R(t))
	}
}

// Load returns L(Q), the total length of all items.
func (q *Sequence) Load() sched.Rat { return q.total }

// Len returns the number of items.
func (q *Sequence) Len() int { return len(q.Items) }

// Placement is the result of wrapping a sequence into a template.
type Placement struct {
	// Machines[g] holds the slots placed on the machine of explicit gap g
	// (possibly including one setup below the gap start), in time order.
	// Entries may be empty when the sequence ended early.
	Machines [][]sched.Slot
	// Tail holds machine runs placed on tail-run machines, in machine
	// order.  The sum of their counts is at most the tail count.
	Tail []sched.MachineRun
	// TailUsed is the number of tail machines that received load.
	TailUsed int64
}

var (
	// ErrTemplateTooSmall reports that the template cannot hold the
	// sequence (S(omega) < L(Q) or a border case exhausted the gaps).
	ErrTemplateTooSmall = errors.New("wrap: template too small for sequence")
	// ErrSetupBelowGap reports that a setup did not fit below a gap.
	ErrSetupBelowGap = errors.New("wrap: no room for setup below gap")
)

// wrapState tracks the cursor during wrapping.
type wrapState struct {
	gaps   []Gap
	tail   TailRun
	place  *Placement
	gapIdx int // next explicit gap to open; len(gaps)+k for tail machine k
	cur    []sched.Slot
	curGap Gap
	open   bool
	t      sched.Rat // cursor within the open gap
	setups []int64   // per-class setup times
}

// Wrap places the sequence q into the template formed by the explicit gaps
// followed by the optional tail run.  It returns ErrTemplateTooSmall if the
// template's total span is insufficient.
//
// setups must hold the per-class setup times; they are consulted when a
// split job needs a fresh setup below the next gap.
func Wrap(gaps []Gap, tail TailRun, q *Sequence, setups []int64) (*Placement, error) {
	// Capacity pre-check: S(omega) >= L(Q).
	var span sched.Rat
	for _, g := range gaps {
		if g.A.Sign() < 0 || g.B.Cmp(g.A) <= 0 {
			return nil, fmt.Errorf("wrap: malformed gap [%s,%s)", g.A, g.B)
		}
		span = span.Add(g.Span())
	}
	if tail.Count > 0 {
		if tail.A.Sign() < 0 || tail.B.Cmp(tail.A) <= 0 {
			return nil, fmt.Errorf("wrap: malformed tail gap [%s,%s)", tail.A, tail.B)
		}
		span = span.Add(tail.B.Sub(tail.A).MulInt(tail.Count))
	}
	if span.Cmp(q.Load()) < 0 {
		return nil, fmt.Errorf("%w: S=%s < L=%s", ErrTemplateTooSmall, span, q.Load())
	}

	st := &wrapState{
		gaps:   gaps,
		tail:   tail,
		place:  &Placement{Machines: make([][]sched.Slot, len(gaps))},
		setups: setups,
	}
	for i := range q.Items {
		if err := st.placeItem(&q.Items[i]); err != nil {
			return nil, err
		}
	}
	st.closeGap()
	return st.place, nil
}

// advance opens the next gap, optionally placing a setup of class `class`
// directly below its start (class < 0 places nothing).
func (st *wrapState) advance(class int) error {
	st.closeGap()
	var g Gap
	switch {
	case st.gapIdx < len(st.gaps):
		g = st.gaps[st.gapIdx]
	case int64(st.gapIdx-len(st.gaps)) < st.tail.Count:
		g = Gap{Machine: -1, A: st.tail.A, B: st.tail.B}
	default:
		return ErrTemplateTooSmall
	}
	st.gapIdx++
	st.curGap = g
	st.open = true
	st.t = g.A
	st.cur = nil
	if class >= 0 {
		s := st.setups[class]
		if s > 0 {
			start := g.A.SubInt(s)
			if start.Sign() < 0 {
				return fmt.Errorf("%w: class %d setup %d below gap start %s", ErrSetupBelowGap, class, s, g.A)
			}
			st.cur = append(st.cur, sched.Slot{Kind: sched.SlotSetup, Class: class, Job: -1, Start: start, End: g.A})
		}
	}
	return nil
}

// closeGap flushes the current machine's slots into the placement.
func (st *wrapState) closeGap() {
	if !st.open {
		return
	}
	idx := st.gapIdx - 1
	if idx < len(st.gaps) {
		st.place.Machines[idx] = st.cur
	} else if len(st.cur) > 0 {
		st.place.Tail = append(st.place.Tail, sched.MachineRun{Count: 1, Slots: st.cur})
		st.place.TailUsed++
	}
	st.open = false
	st.cur = nil
}

// inTail reports whether the open gap is a tail gap.
func (st *wrapState) inTail() bool { return st.open && st.gapIdx > len(st.gaps) }

// tailLeft returns how many tail gaps remain unopened.
func (st *wrapState) tailLeft() int64 {
	used := int64(st.gapIdx - len(st.gaps))
	if used < 0 {
		used = 0
	}
	return st.tail.Count - used
}

func (st *wrapState) emit(kind sched.SlotKind, class, job int, length sched.Rat) {
	if length.Sign() <= 0 {
		return
	}
	end := st.t.Add(length)
	st.cur = append(st.cur, sched.Slot{Kind: kind, Class: class, Job: job, Start: st.t, End: end})
	st.t = end
}

func (st *wrapState) placeItem(it *Item) error {
	if !st.open {
		// A job opening a fresh gap needs its class setup below the gap
		// (this happens when the previous item ended exactly at a border,
		// e.g. after a bulk run).  A setup item simply starts inside.
		cls := -1
		if it.Kind == sched.SlotJob {
			cls = it.Class
		}
		if err := st.advance(cls); err != nil {
			return err
		}
	}
	if it.Kind == sched.SlotSetup {
		// Fits entirely, or moves whole below the next gap.
		if st.t.Add(it.Len).Cmp(st.curGap.B) <= 0 {
			st.emit(sched.SlotSetup, it.Class, -1, it.Len)
			return nil
		}
		return st.advance(it.Class)
	}
	remaining := it.Len
	for remaining.Sign() > 0 {
		room := st.curGap.B.Sub(st.t)
		if room.Sign() <= 0 {
			// Border reached: continue in the next gap with a fresh setup.
			// Bulk-emit full tail gaps when the piece spans many of them.
			if st.tailLeft() > 0 && st.gapIdx >= len(st.gaps) {
				gapLen := st.tail.B.Sub(st.tail.A)
				full := fullGapCount(remaining, gapLen)
				if full > st.tailLeft() {
					full = st.tailLeft()
				}
				if full >= 2 {
					st.closeGap()
					slots := fullGapSlots(it, st.tail, st.setups)
					st.place.Tail = append(st.place.Tail, sched.MachineRun{Count: full, Slots: slots})
					st.place.TailUsed += full
					st.gapIdx += int(full)
					remaining = remaining.Sub(gapLen.MulInt(full))
					if remaining.Sign() == 0 {
						return nil
					}
					continue
				}
			}
			if err := st.advance(it.Class); err != nil {
				return err
			}
			continue
		}
		take := sched.MinRat(remaining, room)
		st.emit(sched.SlotJob, it.Class, it.Job, take)
		remaining = remaining.Sub(take)
	}
	return nil
}

// fullGapCount returns floor(remaining / gapLen).
func fullGapCount(remaining, gapLen sched.Rat) int64 {
	ratio := remaining.DivInt(gapLen.Num()).MulInt(gapLen.Den())
	return ratio.Floor()
}

// fullGapSlots builds the slot layout of one fully consumed tail gap:
// an optional setup below the gap plus a job piece spanning the gap.
func fullGapSlots(it *Item, tail TailRun, setups []int64) []sched.Slot {
	var slots []sched.Slot
	if s := setups[it.Class]; s > 0 {
		slots = append(slots, sched.Slot{
			Kind: sched.SlotSetup, Class: it.Class, Job: -1,
			Start: tail.A.SubInt(s), End: tail.A,
		})
	}
	slots = append(slots, sched.Slot{
		Kind: sched.SlotJob, Class: it.Class, Job: it.Job,
		Start: tail.A, End: tail.B,
	})
	return slots
}
