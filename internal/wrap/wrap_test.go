package wrap

import (
	"errors"
	"math/rand"
	"testing"

	"setupsched/sched"
)

// collect assembles a full Schedule from a placement plus pre-existing
// machine content (nil for fresh machines).
func collect(p *Placement, pre [][]sched.Slot, v sched.Variant) *sched.Schedule {
	s := &sched.Schedule{Variant: v}
	for g, slots := range p.Machines {
		var all []sched.Slot
		if pre != nil {
			all = append(all, pre[g]...)
		}
		all = append(all, slots...)
		s.AddMachine(all)
	}
	for _, r := range p.Tail {
		s.AddRun(r.Count, r.Slots)
	}
	return s
}

func seqLoad(t *testing.T, q *Sequence) sched.Rat {
	t.Helper()
	var sum sched.Rat
	for _, it := range q.Items {
		sum = sum.Add(it.Len)
	}
	if !sum.Equal(q.Load()) {
		t.Fatalf("sequence load mismatch: %s vs %s", sum, q.Load())
	}
	return sum
}

func TestWrapSingleGapFits(t *testing.T) {
	in := &sched.Instance{M: 1, Classes: []sched.Class{{Setup: 2, Jobs: []int64{3, 4}}}}
	var q Sequence
	q.AddBatch(0, 2, in.Classes[0].Jobs)
	seqLoad(t, &q)
	gaps := []Gap{{Machine: 0, A: sched.R(0), B: sched.R(9)}}
	p, err := Wrap(gaps, TailRun{}, &q, []int64{2})
	if err != nil {
		t.Fatal(err)
	}
	s := collect(p, nil, sched.NonPreemptive)
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	if !s.Makespan().Equal(sched.R(9)) {
		t.Errorf("makespan = %s", s.Makespan())
	}
}

func TestWrapSplitsJobAcrossGaps(t *testing.T) {
	// One class, setup 1, one job of length 10; two gaps of span 6 each
	// with room for a setup below the second gap.
	in := &sched.Instance{M: 2, Classes: []sched.Class{{Setup: 1, Jobs: []int64{10}}}}
	var q Sequence
	q.AddBatch(0, 1, in.Classes[0].Jobs)
	gaps := []Gap{
		{Machine: 0, A: sched.R(0), B: sched.R(6)},
		{Machine: 1, A: sched.R(1), B: sched.R(7)},
	}
	p, err := Wrap(gaps, TailRun{}, &q, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	s := collect(p, nil, sched.Splittable)
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	// First machine: setup [0,1), piece [1,6).  Second: setup [0,1) below
	// gap, piece [1,6).
	if len(p.Machines[0]) != 2 || len(p.Machines[1]) != 2 {
		t.Fatalf("unexpected slot counts: %d, %d", len(p.Machines[0]), len(p.Machines[1]))
	}
	if !p.Machines[1][0].Start.Equal(sched.R(0)) || p.Machines[1][0].Kind != sched.SlotSetup {
		t.Errorf("continuation setup not below gap: %+v", p.Machines[1][0])
	}
}

func TestWrapMovesSetupBelowNextGap(t *testing.T) {
	// Two classes; the second setup would cross the first gap's border, so
	// it must move whole below the second gap.
	in := &sched.Instance{M: 2, Classes: []sched.Class{
		{Setup: 2, Jobs: []int64{3}},
		{Setup: 4, Jobs: []int64{2}},
	}}
	var q Sequence
	q.AddBatch(0, 2, in.Classes[0].Jobs)
	q.AddBatch(1, 4, in.Classes[1].Jobs)
	gaps := []Gap{
		{Machine: 0, A: sched.R(0), B: sched.R(7)}, // room for 2+3, then 4 would cross
		{Machine: 1, A: sched.R(5), B: sched.R(11)},
	}
	p, err := Wrap(gaps, TailRun{}, &q, []int64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	s := collect(p, nil, sched.NonPreemptive)
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	// The class-1 setup occupies [1,5) below gap 2 and its job [5,7).
	m1 := p.Machines[1]
	if len(m1) != 2 || m1[0].Kind != sched.SlotSetup || !m1[0].Start.Equal(sched.R(1)) {
		t.Errorf("setup below gap misplaced: %+v", m1)
	}
}

func TestWrapBorderExactSetupThenJob(t *testing.T) {
	// The setup ends exactly at the border; the job must open the next gap
	// with a fresh setup below it.
	in := &sched.Instance{M: 2, Classes: []sched.Class{{Setup: 3, Jobs: []int64{4}}}}
	var q Sequence
	q.AddBatch(0, 3, in.Classes[0].Jobs)
	gaps := []Gap{
		{Machine: 0, A: sched.R(0), B: sched.R(3)},
		{Machine: 1, A: sched.R(3), B: sched.R(8)},
	}
	p, err := Wrap(gaps, TailRun{}, &q, []int64{3})
	if err != nil {
		t.Fatal(err)
	}
	s := collect(p, nil, sched.Splittable)
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	if got := s.SetupCount(); got != 2 {
		t.Errorf("setups = %d, want 2 (one wasted at border)", got)
	}
}

func TestWrapTemplateTooSmall(t *testing.T) {
	var q Sequence
	q.AddBatch(0, 1, []int64{100})
	gaps := []Gap{{Machine: 0, A: sched.R(0), B: sched.R(5)}}
	_, err := Wrap(gaps, TailRun{}, &q, []int64{1})
	if !errors.Is(err, ErrTemplateTooSmall) {
		t.Errorf("err = %v, want ErrTemplateTooSmall", err)
	}
}

func TestWrapSetupDoesNotFitBelowGap(t *testing.T) {
	var q Sequence
	q.AddBatch(0, 3, []int64{4, 4})
	gaps := []Gap{
		{Machine: 0, A: sched.R(0), B: sched.R(8)},
		{Machine: 1, A: sched.R(2), B: sched.R(8)}, // only 2 below gap, setup is 3
	}
	_, err := Wrap(gaps, TailRun{}, &q, []int64{3})
	if !errors.Is(err, ErrSetupBelowGap) {
		t.Errorf("err = %v, want ErrSetupBelowGap", err)
	}
}

func TestWrapTailRunCapacityCheck(t *testing.T) {
	// Load 5002 against 1000 tail gaps of span 5 (capacity 5000): the
	// wrap must refuse up front.
	var q Sequence
	q.AddBatch(0, 2, []int64{5000})
	tail := TailRun{Count: 1000, A: sched.R(2), B: sched.R(7)}
	_, err := Wrap(nil, tail, &q, []int64{2})
	if !errors.Is(err, ErrTemplateTooSmall) {
		t.Errorf("err = %v, want ErrTemplateTooSmall", err)
	}
}

func TestWrapTailRunBulkCompression(t *testing.T) {
	// 10 units setup+job per machine; big job covering exactly 200 tail
	// gaps plus change, distinct slot structures must stay tiny.
	in := &sched.Instance{M: 300, Classes: []sched.Class{{Setup: 1, Jobs: []int64{2000}}}}
	var q Sequence
	q.AddBatch(0, 1, in.Classes[0].Jobs)
	tail := TailRun{Count: 300, A: sched.R(1), B: sched.R(11)} // span 10
	p, err := Wrap(nil, tail, &q, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	s := collect(p, nil, sched.Splittable)
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	if s.NumSlots() > 8 {
		t.Errorf("run compression failed: %d distinct slots", s.NumSlots())
	}
	if s.MachineCount() > 300 {
		t.Errorf("used %d machines", s.MachineCount())
	}
}

func TestWrapRandomizedFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		c := rng.Intn(5) + 1
		classes := make([]sched.Class, c)
		var q Sequence
		var load int64
		smax := int64(0)
		for i := 0; i < c; i++ {
			s := rng.Int63n(5)
			nj := rng.Intn(4) + 1
			jobs := make([]int64, nj)
			for j := range jobs {
				jobs[j] = rng.Int63n(20) + 1
				load += jobs[j]
			}
			load += s
			if s > smax {
				smax = s
			}
			classes[i] = sched.Class{Setup: s, Jobs: jobs}
			q.AddBatch(i, s, jobs)
		}
		// Template: identical gaps [smax, smax+h) with h chosen so the
		// total span just covers the load.
		h := rng.Int63n(30) + 21 // gap span > max job? not required for splittable
		gapCount := (load + h - 1) / h
		m := gapCount + int64(rng.Intn(3))
		in := &sched.Instance{M: m, Classes: classes}
		setups := make([]int64, c)
		for i := range classes {
			setups[i] = classes[i].Setup
		}
		tail := TailRun{Count: m, A: sched.R(smax), B: sched.R(smax + h)}
		p, err := Wrap(nil, tail, &q, setups)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		s := collect(p, nil, sched.Splittable)
		if err := s.Validate(in); err != nil {
			t.Fatalf("iter %d: %v\n%v", iter, err, s)
		}
		if s.Makespan().CmpInt(smax+h) > 0 {
			t.Fatalf("iter %d: makespan %s over gap top %d", iter, s.Makespan(), smax+h)
		}
	}
}

func TestSequenceHelpers(t *testing.T) {
	var q Sequence
	q.AddSetup(0, 0) // skipped
	q.AddJob(0, 0, sched.Rat{})
	if q.Len() != 0 {
		t.Error("zero items must be skipped")
	}
	q.AddBatch(1, 3, []int64{1, 2})
	if q.Len() != 3 || !q.Load().Equal(sched.R(6)) {
		t.Errorf("batch: len=%d load=%s", q.Len(), q.Load())
	}
}

func TestWrapBulkThenNewJobGetsSetup(t *testing.T) {
	// Regression: job 0 consumes exactly k full tail gaps (bulk run);
	// job 1 then opens a fresh gap and must get a setup below it.
	in := &sched.Instance{M: 10, Classes: []sched.Class{
		{Setup: 3, Jobs: []int64{40, 12}},
	}}
	var q Sequence
	q.AddBatch(0, 3, in.Classes[0].Jobs)
	tail := TailRun{Count: 10, A: sched.R(3), B: sched.R(13)} // span 10
	p, err := Wrap(nil, tail, &q, []int64{3})
	if err != nil {
		t.Fatal(err)
	}
	s := collect(p, nil, sched.Splittable)
	if err := s.Validate(in); err != nil {
		t.Fatalf("bulk-boundary setup missing: %v\n%v", err, s)
	}
}

func TestWrapZeroSetupClassFirstItem(t *testing.T) {
	// A zero-setup class may legally start a gap without any setup.
	in := &sched.Instance{M: 3, Classes: []sched.Class{
		{Setup: 0, Jobs: []int64{9, 9}},
	}}
	var q Sequence
	q.AddBatch(0, 0, in.Classes[0].Jobs)
	tail := TailRun{Count: 3, A: sched.R(0), B: sched.R(7)}
	p, err := Wrap(nil, tail, &q, []int64{0})
	if err != nil {
		t.Fatal(err)
	}
	s := collect(p, nil, sched.Splittable)
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
}
