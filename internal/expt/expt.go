// Package expt is the experiment harness that regenerates the paper's
// evaluation artifacts.
//
// The paper is theoretical: its "evaluation" is Table 1 (approximation
// ratios and running times of all algorithms) and Figures 1-13 (schedule
// shapes produced by the algorithms).  This package reproduces both:
//
//   - RatioTable measures realized approximation ratios of every algorithm
//     against certified lower bounds and (on small instances) exact optima,
//     checking the Table 1 guarantees (2, 3/2+eps, 3/2);
//   - ScalingTable measures running time against n to confirm the
//     near-linear claims;
//   - Figures re-creates the paper's figures from real algorithm runs on
//     hand-crafted instances with the same class structure.
package expt

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"setupsched/internal/baseline"
	"setupsched/internal/core"
	"setupsched/internal/exact"
	"setupsched/sched"
	"setupsched/schedgen"
)

// Algo describes one algorithm under test.
type Algo struct {
	Name      string
	Variant   sched.Variant
	Guarantee float64 // upper bound on makespan / T-guess
	Run       func(p *core.Prep) (*core.Result, error)
}

// Algorithms lists the paper's algorithms (rows of Table 1).
func Algorithms() []Algo {
	return []Algo{
		{"split/2approx", sched.Splittable, 2.0,
			func(p *core.Prep) (*core.Result, error) { return p.SolveSplit2(core.Ctl{}) }},
		{"split/eps", sched.Splittable, 1.5 * 1.001,
			func(p *core.Prep) (*core.Result, error) { return p.SolveEps(core.Ctl{}, sched.Splittable, 1e-3) }},
		{"split/jump", sched.Splittable, 1.5,
			func(p *core.Prep) (*core.Result, error) { return p.SolveSplitJump(core.Ctl{}) }},
		{"pmtn/2approx", sched.Preemptive, 2.0,
			func(p *core.Prep) (*core.Result, error) { return p.SolveNonp2(core.Ctl{}, sched.Preemptive) }},
		{"pmtn/eps", sched.Preemptive, 1.5 * 1.001,
			func(p *core.Prep) (*core.Result, error) { return p.SolveEps(core.Ctl{}, sched.Preemptive, 1e-3) }},
		{"pmtn/jump", sched.Preemptive, 1.5,
			func(p *core.Prep) (*core.Result, error) { return p.SolvePmtnJump(core.Ctl{}) }},
		{"nonp/2approx", sched.NonPreemptive, 2.0,
			func(p *core.Prep) (*core.Result, error) { return p.SolveNonp2(core.Ctl{}, sched.NonPreemptive) }},
		{"nonp/eps", sched.NonPreemptive, 1.5 * 1.001,
			func(p *core.Prep) (*core.Result, error) { return p.SolveEps(core.Ctl{}, sched.NonPreemptive, 1e-3) }},
		{"nonp/binsearch", sched.NonPreemptive, 1.5,
			func(p *core.Prep) (*core.Result, error) { return p.SolveNonpSearch(core.Ctl{}) }},
	}
}

// RatioRow is one row of the measured ratio table.
type RatioRow struct {
	Algo      string
	Family    string
	Instances int
	// MaxVsLB and AvgVsLB compare against the run's certified lower bound.
	MaxVsLB, AvgVsLB float64
	// MaxVsOPT compares against the exact optimum where computable
	// (exact splittable / exact non-preemptive OPT on small instances);
	// zero when not available.
	MaxVsOPT float64
	// Guarantee is the theoretical bound the measurements must respect.
	Guarantee float64
	// Violations counts guarantee violations (must be 0).
	Violations int
}

// RatioTable measures realized ratios over small random instances of every
// generator family.
func RatioTable(instancesPerFamily int) ([]RatioRow, error) {
	algos := Algorithms()
	var rows []RatioRow
	for _, fam := range schedgen.Families {
		insts := make([]*sched.Instance, 0, instancesPerFamily)
		for seed := 0; seed < instancesPerFamily; seed++ {
			in := fam.Make(schedgen.Params{
				M:        int64(2 + seed%3),
				Classes:  2 + seed%3,
				JobsPer:  2,
				MaxSetup: 15,
				MaxJob:   20,
				Seed:     int64(seed),
			})
			insts = append(insts, in)
		}
		for _, algo := range algos {
			row := RatioRow{Algo: algo.Name, Family: fam.Name, Guarantee: algo.Guarantee}
			for _, in := range insts {
				p := core.Prepare(in)
				res, err := algo.Run(p)
				if err != nil {
					return nil, fmt.Errorf("%s/%s: %w", algo.Name, fam.Name, err)
				}
				if err := res.Schedule.Validate(in); err != nil {
					return nil, fmt.Errorf("%s/%s: %w", algo.Name, fam.Name, err)
				}
				mk := res.Schedule.Makespan().Float64()
				r := mk / res.LowerBound.Float64()
				row.Instances++
				row.AvgVsLB += r
				if r > row.MaxVsLB {
					row.MaxVsLB = r
				}
				// Exact reference.
				var opt float64
				switch algo.Variant {
				case sched.Splittable:
					if o, err := exact.Splittable(in); err == nil {
						opt = o.Float64()
					}
				case sched.NonPreemptive:
					if o, err := exact.NonPreemptive(in); err == nil {
						opt = float64(o)
					}
				case sched.Preemptive:
					// sandwich: OPT_pmtn <= OPT_nonp
					if o, err := exact.NonPreemptive(in); err == nil {
						opt = float64(o)
					}
				}
				if opt > 0 {
					if v := mk / opt; v > row.MaxVsOPT {
						row.MaxVsOPT = v
					}
				}
				if r > algo.Guarantee+1e-9 && !res.Fallback {
					row.Violations++
				}
			}
			row.AvgVsLB /= float64(row.Instances)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatRatioTable renders the rows as an aligned text table.
func FormatRatioTable(rows []RatioRow) string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("%-16s %-11s %5s %10s %10s %10s %6s %5s\n",
		"algorithm", "family", "#inst", "max(mk/LB)", "avg(mk/LB)", "max(mk/OPT)", "bound", "viol"))
	for _, r := range rows {
		opt := "-"
		if r.MaxVsOPT > 0 {
			opt = fmt.Sprintf("%.4f", r.MaxVsOPT)
		}
		sb.WriteString(fmt.Sprintf("%-16s %-11s %5d %10.4f %10.4f %10s %6.2f %5d\n",
			r.Algo, r.Family, r.Instances, r.MaxVsLB, r.AvgVsLB, opt, r.Guarantee, r.Violations))
	}
	return sb.String()
}

// ScalingRow is one running-time measurement.
type ScalingRow struct {
	Algo   string
	N      int     // number of jobs
	Micros float64 // wall time per solve in microseconds
	PerJob float64 // nanoseconds per job
}

// ScalingTable measures running times across instance sizes, reproducing
// the near-linear running-time column of Table 1.
func ScalingTable(sizes []int, reps int) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, algo := range Algorithms() {
		for _, n := range sizes {
			classes := n / 8
			if classes < 1 {
				classes = 1
			}
			in := schedgen.Uniform(schedgen.Params{
				M: int64(n/50 + 1), Classes: classes, JobsPer: 8,
				MaxSetup: 1000, MaxJob: 1000, Seed: int64(n),
			})
			p := core.Prepare(in)
			nj := in.NumJobs()
			start := time.Now()
			for r := 0; r < reps; r++ {
				if _, err := algo.Run(p); err != nil {
					return nil, fmt.Errorf("%s n=%d: %w", algo.Name, n, err)
				}
			}
			el := time.Since(start).Seconds() / float64(reps)
			rows = append(rows, ScalingRow{
				Algo: algo.Name, N: nj,
				Micros: el * 1e6,
				PerJob: el * 1e9 / float64(nj),
			})
		}
	}
	return rows, nil
}

// FormatScalingTable renders scaling rows plus a doubling-exponent estimate
// per algorithm (near 1.0 confirms near-linear behavior).
func FormatScalingTable(rows []ScalingRow) string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("%-16s %9s %12s %10s\n", "algorithm", "n", "micros/op", "ns/job"))
	byAlgo := map[string][]ScalingRow{}
	var order []string
	for _, r := range rows {
		if _, ok := byAlgo[r.Algo]; !ok {
			order = append(order, r.Algo)
		}
		byAlgo[r.Algo] = append(byAlgo[r.Algo], r)
		sb.WriteString(fmt.Sprintf("%-16s %9d %12.1f %10.2f\n", r.Algo, r.N, r.Micros, r.PerJob))
	}
	sb.WriteString("\nfitted growth exponents (time ~ n^e between the extreme sizes):\n")
	for _, a := range order {
		rs := byAlgo[a]
		sort.Slice(rs, func(i, j int) bool { return rs[i].N < rs[j].N })
		if len(rs) >= 2 {
			lo, hi := rs[0], rs[len(rs)-1]
			e := logRatio(hi.Micros/lo.Micros) / logRatio(float64(hi.N)/float64(lo.N))
			sb.WriteString(fmt.Sprintf("  %-16s e = %.2f\n", a, e))
		}
	}
	return sb.String()
}

func logRatio(x float64) float64 {
	// natural log via math is fine; isolated to keep imports tight
	return ln(x)
}

// CompareRow pits the 3/2-algorithms against weaker baselines on the same
// instances (the "who wins" shape of Table 1).
type CompareRow struct {
	Family                  string
	Instances               int
	AvgJump, AvgTwo, AvgLPT float64 // avg makespan / lower bound
	AvgMP, AvgNextFit       float64
	JumpWins                int // jump strictly better than all baselines
}

// CompareTable compares nonpreemptive algorithms with classical baselines.
func CompareTable(instancesPerFamily int) ([]CompareRow, error) {
	var rows []CompareRow
	for _, fam := range schedgen.Families {
		row := CompareRow{Family: fam.Name}
		for seed := 0; seed < instancesPerFamily; seed++ {
			in := fam.Make(schedgen.Params{
				M: 4, Classes: 12, JobsPer: 4,
				MaxSetup: 30, MaxJob: 40, Seed: int64(seed),
			})
			p := core.Prepare(in)
			lb := in.LowerBound(sched.NonPreemptive).Float64()
			r, err := p.SolveNonpSearch(core.Ctl{})
			if err != nil {
				return nil, err
			}
			jump := r.Schedule.Makespan().Float64() / lb
			two, err := p.SolveNonp2(core.Ctl{}, sched.NonPreemptive)
			if err != nil {
				return nil, err
			}
			lpt := baseline.LPTBatches(in)
			mp := baseline.MonmaPottsSplit(in)
			nf := baseline.NextFitBatches(in)
			for name, s := range map[string]*sched.Schedule{"lpt": lpt, "mp": mp, "nextfit": nf} {
				if err := s.Validate(in); err != nil {
					return nil, fmt.Errorf("%s: %w", name, err)
				}
			}
			twoR := two.Schedule.Makespan().Float64() / lb
			lptR := lpt.Makespan().Float64() / lb
			mpR := mp.Makespan().Float64() / lb
			nfR := nf.Makespan().Float64() / lb
			row.Instances++
			row.AvgJump += jump
			row.AvgTwo += twoR
			row.AvgLPT += lptR
			row.AvgMP += mpR
			row.AvgNextFit += nfR
			if jump < twoR && jump < nfR && jump < mpR {
				row.JumpWins++
			}
		}
		n := float64(row.Instances)
		row.AvgJump /= n
		row.AvgTwo /= n
		row.AvgLPT /= n
		row.AvgMP /= n
		row.AvgNextFit /= n
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatCompareTable renders the baseline comparison.
func FormatCompareTable(rows []CompareRow) string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("%-11s %5s %10s %10s %10s %10s %10s %9s\n",
		"family", "#inst", "3/2-alg", "2-approx", "LPT", "MP-split", "next-fit", "3/2 wins"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-11s %5d %10.4f %10.4f %10.4f %10.4f %10.4f %6d/%d\n",
			r.Family, r.Instances, r.AvgJump, r.AvgTwo, r.AvgLPT, r.AvgMP, r.AvgNextFit, r.JumpWins, r.Instances))
	}
	sb.WriteString("(columns are average makespan / trivial lower bound; smaller is better)\n")
	return sb.String()
}
