package expt

import (
	"strings"
	"testing"
)

func TestCrossoverSweep(t *testing.T) {
	rows, err := Crossover([]int64{1, 2, 4, 8, 16, 64}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	if err := VerifyCrossoverOrdering(rows); err != nil {
		t.Error(err)
	}
	if err := nonDecreasingMachines(rows); err != nil {
		t.Error(err)
	}
	// With one machine every variant's optimum is N; the 3/2-algorithms
	// must stay within 1.5x of it.
	if rows[0].Nonp > rows[0].Split*1.5+1e-6 || rows[0].Split > rows[0].Nonp*1.5+1e-6 {
		t.Errorf("m=1: split %f and nonp %f differ by more than the guarantees allow",
			rows[0].Split, rows[0].Nonp)
	}
	// With many machines the splittable makespan must drop well below the
	// single-machine one.
	if rows[len(rows)-1].Split > rows[0].Split/4 {
		t.Errorf("m=64 split %f did not scale down from m=1 %f", rows[len(rows)-1].Split, rows[0].Split)
	}
	out := FormatCrossover(rows)
	if !strings.Contains(out, "setup-share") {
		t.Errorf("format broken:\n%s", out)
	}
}
