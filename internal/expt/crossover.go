package expt

import (
	"fmt"
	"strings"

	"setupsched/internal/core"
	"setupsched/schedgen"
)

// CrossoverRow records the makespans of the three variants on the same
// instance as the machine count grows.  The paper's introduction motivates
// the variants by exactly this trade-off: splitting always helps
// (OPT_split <= OPT_pmtn <= OPT_nonp), and the gap widens with m until
// setups dominate.
type CrossoverRow struct {
	M                 int64
	Split, Pmtn, Nonp float64 // makespans (3/2-algorithms)
	SetupShare        float64 // setup time share of the splittable schedule
}

// Crossover sweeps the machine count on a fixed workload.
func Crossover(ms []int64, seed int64) ([]CrossoverRow, error) {
	base := schedgen.Uniform(schedgen.Params{
		M: 1, Classes: 24, JobsPer: 6, MaxSetup: 120, MaxJob: 80, Seed: seed,
	})
	var rows []CrossoverRow
	for _, m := range ms {
		in := base.Clone()
		in.M = m
		p := core.Prepare(in)
		rs, err := p.SolveSplitJump(core.Ctl{})
		if err != nil {
			return nil, fmt.Errorf("crossover m=%d split: %w", m, err)
		}
		rp, err := p.SolvePmtnJump(core.Ctl{})
		if err != nil {
			return nil, fmt.Errorf("crossover m=%d pmtn: %w", m, err)
		}
		rn, err := p.SolveNonpSearch(core.Ctl{})
		if err != nil {
			return nil, fmt.Errorf("crossover m=%d nonp: %w", m, err)
		}
		st := rs.Schedule.ComputeStats(in.NumClasses())
		rows = append(rows, CrossoverRow{
			M:          m,
			Split:      rs.Schedule.Makespan().Float64(),
			Pmtn:       rp.Schedule.Makespan().Float64(),
			Nonp:       rn.Schedule.Makespan().Float64(),
			SetupShare: st.SetupOverhead(),
		})
	}
	return rows, nil
}

// FormatCrossover renders the sweep.
func FormatCrossover(rows []CrossoverRow) string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("%6s %12s %12s %12s %12s\n",
		"m", "splittable", "preemptive", "nonpreempt", "setup-share"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%6d %12.1f %12.1f %12.1f %11.1f%%\n",
			r.M, r.Split, r.Pmtn, r.Nonp, 100*r.SetupShare))
	}
	sb.WriteString("(same workload under the three job models; more machines widen the\n" +
		"preemption/splitting advantage until duplicated setups dominate)\n")
	return sb.String()
}

// VerifyCrossoverOrdering checks the sandwich
// mk_split <= 3/2 OPT_split <= 3/2 OPT_pmtn <= 3/2 OPT_nonp against the
// measured makespans being within their guarantees; used by tests.
func VerifyCrossoverOrdering(rows []CrossoverRow) error {
	for _, r := range rows {
		// Each algorithm's makespan is within 3/2 of its own optimum and
		// the optima are ordered, so split <= 1.5*nonp-optimum <= 1.5*nonp.
		if r.Split > 1.5*r.Nonp+1e-6 {
			return fmt.Errorf("m=%d: splittable makespan %f above 1.5x nonpreemptive %f", r.M, r.Split, r.Nonp)
		}
		if r.Pmtn > 1.5*r.Nonp+1e-6 {
			return fmt.Errorf("m=%d: preemptive makespan %f above 1.5x nonpreemptive %f", r.M, r.Pmtn, r.Nonp)
		}
	}
	return nil
}

// nonDecreasingMachines asserts makespans shrink (weakly) as m grows.
func nonDecreasingMachines(rows []CrossoverRow) error {
	for k := 1; k < len(rows); k++ {
		if rows[k].Split > rows[k-1].Split*1.5+1e-6 {
			return fmt.Errorf("splittable makespan grew sharply from m=%d to m=%d",
				rows[k-1].M, rows[k].M)
		}
	}
	return nil
}
