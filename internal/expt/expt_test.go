package expt

import (
	"strings"
	"testing"
)

func TestRatioTableRespectsGuarantees(t *testing.T) {
	rows, err := RatioTable(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Violations != 0 {
			t.Errorf("%s on %s: %d guarantee violations (max ratio %.4f > %.2f)",
				r.Algo, r.Family, r.Violations, r.MaxVsLB, r.Guarantee)
		}
		if r.MaxVsLB < 1.0-1e-9 {
			t.Errorf("%s on %s: impossible ratio %.4f < 1", r.Algo, r.Family, r.MaxVsLB)
		}
	}
	out := FormatRatioTable(rows)
	if !strings.Contains(out, "split/jump") || !strings.Contains(out, "max(mk/LB)") {
		t.Errorf("table formatting broken:\n%s", out)
	}
}

func TestScalingTableRuns(t *testing.T) {
	rows, err := ScalingTable([]int{200, 800}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(Algorithms()) {
		t.Fatalf("rows = %d", len(rows))
	}
	out := FormatScalingTable(rows)
	if !strings.Contains(out, "fitted growth exponents") {
		t.Errorf("scaling format broken:\n%s", out)
	}
}

func TestCompareTableRuns(t *testing.T) {
	rows, err := CompareTable(6)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.AvgJump <= 0 || r.AvgLPT <= 0 {
			t.Errorf("degenerate comparison row %+v", r)
		}
		// The 3/2-algorithm must on average beat the 2-approximation's
		// certified quality... at minimum it must stay within its bound.
		if r.AvgJump > 1.5+1e-9 {
			t.Errorf("family %s: 3/2-algorithm average ratio %.4f above bound", r.Family, r.AvgJump)
		}
	}
	_ = FormatCompareTable(rows)
}

func TestFiguresBuildAndValidate(t *testing.T) {
	figs, err := Figures()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"fig1a", "fig1b", "fig2", "fig3", "fig6", "fig7", "fig10"}
	if len(figs) != len(want) {
		t.Fatalf("figures = %d, want %d", len(figs), len(want))
	}
	for k, f := range figs {
		if f.ID != want[k] {
			t.Errorf("figure %d id = %s, want %s", k, f.ID, want[k])
		}
		if !strings.Contains(f.Art, "|") || len(f.Art) < 100 {
			t.Errorf("%s: suspicious art:\n%s", f.ID, f.Art)
		}
		if f.Title == "" || f.Notes == "" {
			t.Errorf("%s: missing title/notes", f.ID)
		}
	}
}
