package expt

import (
	"fmt"

	"setupsched/internal/core"
	"setupsched/internal/render"
	"setupsched/internal/wrap"
	"setupsched/sched"
)

// Figure is one regenerated paper figure.
type Figure struct {
	ID    string // e.g. "fig1b"
	Title string
	Notes string
	Art   string
}

// buildAt runs the variant's dual construction at the given guess,
// increasing m as needed until the guess is accepted (figures fix T to
// match the paper's drawings and let the machine count follow).
func buildAt(in *sched.Instance, v sched.Variant, T sched.Rat) (*sched.Schedule, *sched.Instance, error) {
	work := in.Clone()
	for tries := 0; tries < 64; tries++ {
		p := core.Prepare(work)
		switch v {
		case sched.Splittable:
			if ev := p.EvalSplit(T, nil); ev.OK {
				s, err := p.BuildSplit(ev)
				return s, work, err
			}
		case sched.Preemptive:
			if ev := p.EvalPmtn(T, nil); ev.OK {
				s, err := p.BuildPmtn(ev)
				return s, work, err
			}
		default:
			if ev := p.EvalNonp(T); ev.OK {
				s, err := p.BuildNonp(ev)
				return s, work, err
			}
		}
		work.M++
	}
	return nil, nil, fmt.Errorf("expt: guess %s not accepted within machine budget", T)
}

func renderFigure(id, title, notes string, in *sched.Instance, s *sched.Schedule, T sched.Rat) Figure {
	art := render.Legend(in) + render.Gantt(s, &render.Options{T: T, Width: 96, MaxMachines: 28})
	return Figure{ID: id, Title: title, Notes: notes, Art: art}
}

// Figures regenerates the paper's figures from live algorithm runs.
func Figures() ([]Figure, error) {
	var figs []Figure
	T := sched.R(100)

	// --- Figure 1(a): splittable step 1 (expensive classes only) ---
	expOnly := &sched.Instance{M: 13, Classes: []sched.Class{
		{Setup: 60, Jobs: []int64{90, 80}}, // beta = 4
		{Setup: 55, Jobs: []int64{70, 60}}, // beta = 3
		{Setup: 70, Jobs: []int64{30}},     // beta = 1
		{Setup: 52, Jobs: []int64{50, 30}}, // beta = 2
	}}
	s, in, err := buildAt(expOnly, sched.Splittable, T)
	if err != nil {
		return nil, fmt.Errorf("fig1a: %w", err)
	}
	figs = append(figs, renderFigure("fig1a",
		"Figure 1(a): splittable algorithm after step (1)",
		"Expensive classes I_exp = {A,B,C,D} occupy beta_i machines each,\n"+
			"filled to s_i + T/2; the last machine of a class may stay below T.",
		in, s, T))

	// --- Figure 1(b): splittable after step 2 (cheap classes wrapped) ---
	full := expOnly.Clone()
	full.Classes = append(full.Classes,
		sched.Class{Setup: 20, Jobs: []int64{15, 15, 10}},
		sched.Class{Setup: 15, Jobs: []int64{25, 25}},
		sched.Class{Setup: 25, Jobs: []int64{10, 20}},
		sched.Class{Setup: 10, Jobs: []int64{20, 15}},
	)
	s, in, err = buildAt(full, sched.Splittable, T)
	if err != nil {
		return nil, fmt.Errorf("fig1b: %w", err)
	}
	figs = append(figs, renderFigure("fig1b",
		"Figure 1(b): splittable algorithm after step (2)",
		"Cheap classes I_chp = {E,F,G,H} wrap into the reserved windows of the\n"+
			"partially filled machines and into gaps [T/2, 3/2T) on unused machines.",
		in, s, T))

	// --- Figures 2 and 5: the (modified) nice-instance algorithm ---
	nice := &sched.Instance{M: 11, Classes: []sched.Class{
		{Setup: 55, Jobs: []int64{40, 40, 40, 30}},     // I+exp, gamma = 3
		{Setup: 52, Jobs: []int64{45, 45, 45, 45, 20}}, // I+exp, gamma = 4
		{Setup: 60, Jobs: []int64{10}},                 // I-exp
		{Setup: 55, Jobs: []int64{15}},                 // I-exp
		{Setup: 12, Jobs: []int64{20, 20}},             // cheap
		{Setup: 8, Jobs: []int64{25, 15}},              // cheap
		{Setup: 15, Jobs: []int64{30}},                 // cheap
	}}
	s, in, err = buildAt(nice, sched.Preemptive, T)
	if err != nil {
		return nil, fmt.Errorf("fig2: %w", err)
	}
	fig2 := renderFigure("fig2",
		"Figures 2/5: preemptive nice instance (Algorithm 2, Section 4.4 step 1)",
		"I+exp = {A,B} fill gamma_i machines to s_i + T/2 with the residue moved\n"+
			"on top of the last machine; I-exp = {C,D} pair onto one machine; cheap\n"+
			"classes wrap above T/2 on the remaining machines.",
		in, s, T)
	figs = append(figs, fig2)

	// --- Figures 3, 4, 8, 9: general preemptive with large machines ---
	large := &sched.Instance{M: 9, Classes: []sched.Class{
		{Setup: 55, Jobs: []int64{25}},     // I0exp: s+P = 80 in (3/4T, T)
		{Setup: 55, Jobs: []int64{25}},     // I0exp
		{Setup: 55, Jobs: []int64{25}},     // I0exp
		{Setup: 55, Jobs: []int64{25}},     // I0exp
		{Setup: 55, Jobs: []int64{25}},     // I0exp
		{Setup: 55, Jobs: []int64{25}},     // I0exp
		{Setup: 55, Jobs: []int64{25}},     // I0exp
		{Setup: 52, Jobs: []int64{48, 48}}, // I+exp, gamma = 1
		{Setup: 10, Jobs: []int64{45, 4}},  // I*chp: big job 45 (s+t = 55 > T/2)
		{Setup: 6, Jobs: []int64{47}},      // I*chp: big job 47
	}}
	s, in, err = buildAt(large, sched.Preemptive, T)
	if err != nil {
		return nil, fmt.Errorf("fig3: %w", err)
	}
	figs = append(figs, renderFigure("fig3",
		"Figures 3/4/8/9: preemptive general algorithm with large machines",
		"I0exp classes {A..G} sit alone on large machines starting at T/2; the\n"+
			"knapsack (case 3.a) decides which I*chp classes {I,J} stay outside; their\n"+
			"obligatory pieces and the set K fill the bottoms below T/2 (Figure 4).",
		in, s, T))

	// --- Figure 6: a wrap template in action ---
	wrapIn := &sched.Instance{M: 4, Classes: []sched.Class{
		{Setup: 1, Jobs: []int64{5, 4}},
		{Setup: 2, Jobs: []int64{3, 3, 2}},
	}}
	var q wrap.Sequence
	q.AddBatch(0, 1, wrapIn.Classes[0].Jobs)
	q.AddBatch(1, 2, wrapIn.Classes[1].Jobs)
	gaps := []wrap.Gap{
		{Machine: 0, A: sched.R(2), B: sched.R(9)},
		{Machine: 1, A: sched.R(3), B: sched.R(8)},
		{Machine: 2, A: sched.R(2), B: sched.R(7)},
		{Machine: 3, A: sched.R(4), B: sched.R(9)},
	}
	placed, err := wrap.Wrap(gaps, wrap.TailRun{}, &q, []int64{1, 2})
	if err != nil {
		return nil, fmt.Errorf("fig6: %w", err)
	}
	ws := &sched.Schedule{Variant: sched.Splittable, T: sched.R(6)}
	for _, slots := range placed.Machines {
		ws.AddMachine(slots)
	}
	figs = append(figs, renderFigure("fig6",
		"Figure 6: Batch Wrapping into a wrap template",
		"A wrap sequence [s_A, C_A, s_B, C_B] wrapped through four gaps; split\n"+
			"jobs continue at the start of the next gap with a fresh setup below it.",
		wrapIn, ws, sched.R(6)))

	// --- Figure 7: the next-fit 2-approximation with m = c = 5 ---
	nf := &sched.Instance{M: 5, Classes: []sched.Class{
		{Setup: 4, Jobs: []int64{9, 8, 7}},
		{Setup: 3, Jobs: []int64{10, 9, 4}},
		{Setup: 5, Jobs: []int64{12, 6}},
		{Setup: 2, Jobs: []int64{8, 8, 5}},
		{Setup: 6, Jobs: []int64{11, 7}},
	}}
	p := core.Prepare(nf)
	s2, err := p.TwoApproxNonPreemptive(sched.NonPreemptive)
	if err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	figs = append(figs, renderFigure("fig7",
		"Figure 7: next-fit 2-approximation (m = c = 5)",
		"Next-fit with threshold T_min; items crossing the border move to the\n"+
			"beginning of the next machine with an extra setup (Lemma 9).",
		nf, s2, p.TMin(sched.NonPreemptive)))

	// --- Figures 10-13: non-preemptive Algorithm 6 ---
	nonp := &sched.Instance{M: 8, Classes: []sched.Class{
		{Setup: 60, Jobs: []int64{40, 40, 40, 35, 25}},            // expensive, alpha = 5-ish
		{Setup: 10, Jobs: []int64{55, 52, 60, 45, 44, 12, 11, 9}}, // cheap: J+ and K jobs
		{Setup: 8, Jobs: []int64{20, 14}},
		{Setup: 6, Jobs: []int64{18, 10, 7}},
		{Setup: 12, Jobs: []int64{16, 5}},
	}}
	s3, in, err := buildAt(nonp, sched.NonPreemptive, T)
	if err != nil {
		return nil, fmt.Errorf("fig10: %w", err)
	}
	figs = append(figs, renderFigure("fig10",
		"Figures 10-13: non-preemptive Algorithm 6 (final state)",
		"Expensive class A wraps over its obligatory machines; big jobs of cheap\n"+
			"class B own machines; K jobs wrap; steps 2-4 fill to the border T, make\n"+
			"the schedule non-preemptive and relocate border items with new setups.",
		in, s3, T))

	return figs, nil
}
