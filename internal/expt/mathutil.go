package expt

import "math"

// ln is a thin wrapper so the scaling-exponent fit reads clearly.
func ln(x float64) float64 { return math.Log(x) }
