package setupsched

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"setupsched/internal/core"
	"setupsched/internal/exact"
	"setupsched/sched"
)

// DefaultEpsilon is the accuracy used by EpsilonSearch when no explicit
// epsilon is supplied.
const DefaultEpsilon = 1e-4

// Observer receives probe-level events from a running solve.  The dual
// approximation searches are sequences of probe evaluations at makespan
// guesses T; an Observer sees each one as it happens, which powers live
// metrics, progress reporting and Result.Trace.
//
// A single solve emits events sequentially from its own goroutine, but an
// Observer shared between concurrent solves (for example one Solver used
// by many requests) must be safe for concurrent use.
type Observer interface {
	// ProbeStarted fires before the dual test is evaluated at guess T.
	ProbeStarted(T Rat)
	// ProbeFinished fires after the dual test at T decided accept/reject.
	ProbeFinished(T Rat, accepted bool)
	// SearchFinished fires once after a successful solve with the
	// algorithm's name and its total probe count.
	SearchFinished(algorithm string, probes int)
}

// Probe records one dual-test evaluation of a search (see Result.Trace).
type Probe struct {
	// T is the makespan guess that was tested.
	T Rat
	// Accepted reports the dual test's decision: true means a schedule
	// with makespan at most 3/2*T exists, false certifies T < OPT.
	Accepted bool
}

// Solver solves one instance repeatedly without redoing the per-instance
// preparation (class work sums, maxima, trivial bounds — the O(n)
// core.Prepare pass).  Create one with NewSolver and reuse it across
// variants, algorithms and requests; it is immutable after construction
// and safe for concurrent use.
type Solver struct {
	in   *Instance
	prep *core.Prep
}

// NewSolver validates the instance and computes the shared preparation.
// The instance must not be mutated while the Solver is in use.
func NewSolver(in *Instance) (*Solver, error) {
	if in == nil {
		return nil, ErrNilInstance
	}
	if err := in.Validate(); err != nil {
		return nil, &ValidationError{Err: err}
	}
	return &Solver{in: in, prep: core.Prepare(in)}, nil
}

// Instance returns the instance this Solver was built for.
func (s *Solver) Instance() *Instance { return s.in }

// LowerBound returns the trivial variant-specific lower bound on OPT
// (max(N/m, s_max) for splittable; max(N/m, max_i(s_i + t_max^(i)))
// otherwise, rounded up to an integer for the non-preemptive case).
func (s *Solver) LowerBound(v Variant) Rat { return s.prep.TMin(v) }

// Option configures one Solver.Solve, Solver.SolveAll or Solver.DualTest
// call.
type Option func(*solveConfig) error

// solveConfig is the resolved option set of one call.
//
// The two inline arrays keep observer wiring allocation-neutral: the
// observers slice appends into obsBuf and solveRun fans out through
// fanBuf, so attaching up to three observers adds zero heap allocations
// beyond the config itself — a solve with live metrics costs exactly as
// many allocations as a bare one (asserted by a regression test).
type solveConfig struct {
	algorithm   Algorithm
	epsilon     float64
	observers   []Observer
	probeLimit  int
	parallelism int
	nodeBudget  int64
	runs        []Run

	obsBuf [3]Observer // backing array for observers
	fanBuf [4]Observer // backing array for solveRun's fan-out (trace + obsBuf)
}

// WithAlgorithm selects the approximation algorithm (default Auto, the
// exact 3/2-approximation).
func WithAlgorithm(a Algorithm) Option {
	return func(c *solveConfig) error {
		switch a {
		case Auto, TwoApprox, EpsilonSearch, Exact32, RefExact:
			c.algorithm = a
			return nil
		}
		return fmt.Errorf("setupsched: unknown algorithm %v", a)
	}
}

// WithNodeBudget bounds the branch-and-bound node count of a RefExact
// solve; exceeding it aborts with an *ExactBudgetError (matching
// ErrExactBudget) that carries the certified bracket reached.  Zero (the
// default) selects the backend's default budget; negative budgets are
// rejected.  Other algorithms ignore the option.
func WithNodeBudget(n int64) Option {
	return func(c *solveConfig) error {
		if n < 0 {
			return fmt.Errorf("setupsched: negative node budget %d", n)
		}
		c.nodeBudget = n
		return nil
	}
}

// WithParallelism sets the number of goroutines a call may use.  n must
// be at least 1 (the default: fully serial).
//
// For Solver.Solve, n is the speculative probing width: the dual search
// evaluates up to n candidate makespan guesses concurrently per round and
// keeps the tightest accept/reject bracket.  The accepted guess, the
// certified lower bound and the schedule are bit-identical to the serial
// search; only wall-clock time, Probes and the Trace length change
// (speculation evaluates guesses a serial search can skip).
//
// For Solver.SolveAll, n bounds how many (variant, algorithm) runs solve
// concurrently; each individual run probes serially.
func WithParallelism(n int) Option {
	return func(c *solveConfig) error {
		if n < 1 {
			return fmt.Errorf("setupsched: parallelism %d < 1", n)
		}
		c.parallelism = n
		return nil
	}
}

// WithRuns restricts Solver.SolveAll to the given (variant, algorithm)
// combinations, solved and reported in exactly this order.  Only applies
// to SolveAll; Solve and DualTest reject it.
func WithRuns(runs ...Run) Option {
	return func(c *solveConfig) error {
		if len(runs) == 0 {
			return fmt.Errorf("setupsched: WithRuns needs at least one run")
		}
		for _, r := range runs {
			switch r.Variant {
			case Splittable, Preemptive, NonPreemptive:
			default:
				return fmt.Errorf("setupsched: unknown variant %v in WithRuns", r.Variant)
			}
			switch r.Algorithm {
			case Auto, TwoApprox, EpsilonSearch, Exact32, RefExact:
			default:
				return fmt.Errorf("setupsched: unknown algorithm %v in WithRuns", r.Algorithm)
			}
		}
		c.runs = append([]Run(nil), runs...)
		return nil
	}
}

// WithEpsilon sets the accuracy of EpsilonSearch.  The value must lie in
// the open interval (0, 1); anything else is rejected with an
// *EpsilonRangeError instead of being silently replaced by the default.
// The search works on exact rationals with tolerance denominator 2^20, so
// the certified relative gap effectively floors at 2^-20 for smaller
// epsilons.
func WithEpsilon(eps float64) Option {
	return func(c *solveConfig) error {
		if eps <= 0 || eps >= 1 {
			return &EpsilonRangeError{Epsilon: eps}
		}
		c.epsilon = eps
		return nil
	}
}

// WithObserver attaches an Observer to the call.  Multiple observers may
// be attached; they are notified in registration order.  A nil observer
// is ignored.
func WithObserver(obs Observer) Option {
	return func(c *solveConfig) error {
		if obs != nil {
			c.observers = append(c.observers, obs)
		}
		return nil
	}
}

// WithProbeLimit bounds the number of dual-test evaluations a search may
// perform; exceeding it aborts the solve with ErrProbeLimit.  The
// searches need O(log) probes, so a limit of a few dozen is generous for
// any realistic instance.  Zero (the default) means unlimited; negative
// limits are rejected.
func WithProbeLimit(n int) Option {
	return func(c *solveConfig) error {
		if n < 0 {
			return fmt.Errorf("setupsched: negative probe limit %d", n)
		}
		c.probeLimit = n
		return nil
	}
}

func resolveOptions(opts []Option) (*solveConfig, error) {
	cfg := &solveConfig{algorithm: Auto, epsilon: DefaultEpsilon, parallelism: 1}
	cfg.observers = cfg.obsBuf[:0]
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(cfg); err != nil {
			return nil, err
		}
	}
	return cfg, nil
}

// traceObserver collects the probe sequence for Result.Trace, in the
// order the search admitted the probes and deduplicated by guess: a
// makespan guess evaluated more than once (possible only under
// speculative probing) is recorded at its first evaluation.
type traceObserver struct {
	trace []Probe
	seen  map[string]bool
}

func (t *traceObserver) ProbeStarted(Rat) {}
func (t *traceObserver) ProbeFinished(T Rat, accepted bool) {
	key := T.String()
	if t.seen == nil {
		t.seen = make(map[string]bool)
	}
	if t.seen[key] {
		return
	}
	t.seen[key] = true
	t.trace = append(t.trace, Probe{T: T, Accepted: accepted})
}
func (t *traceObserver) SearchFinished(string, int) {}

// multiObserver fans events out to several observers in order.
type multiObserver []Observer

func (m multiObserver) ProbeStarted(T Rat) {
	for _, o := range m {
		o.ProbeStarted(T)
	}
}

func (m multiObserver) ProbeFinished(T Rat, accepted bool) {
	for _, o := range m {
		o.ProbeFinished(T, accepted)
	}
}

func (m multiObserver) SearchFinished(algorithm string, probes int) {
	for _, o := range m {
		o.SearchFinished(algorithm, probes)
	}
}

// Solve computes an approximate schedule for the Solver's instance under
// the given variant.  The context cancels the search between probes: a
// canceled or expired ctx aborts promptly with an error matching both
// ErrCanceled and the context's own error, and no partial schedule is
// returned.  With no options it runs the exact 3/2-approximation
// serially; WithParallelism(n) turns on speculative probing (see the
// option's documentation — results stay bit-identical to the serial
// search).
func (s *Solver) Solve(ctx context.Context, v Variant, opts ...Option) (*Result, error) {
	cfg, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	if cfg.runs != nil {
		return nil, errors.New("setupsched: WithRuns only applies to SolveAll")
	}
	return s.solveRun(ctx, v, cfg.algorithm, cfg, cfg.parallelism, cfg.fanBuf[:0])
}

// solveRun executes one (variant, algorithm) solve under the resolved
// configuration; parallelism is the speculative probing width.  fan is
// the backing storage for the observer fan-out: Solve passes the
// config's inline buffer (zero extra allocations); SolveAll passes nil
// because its concurrent runs must not share one buffer.
func (s *Solver) solveRun(ctx context.Context, v Variant, algorithm Algorithm, cfg *solveConfig, parallelism int, fan []Observer) (*Result, error) {
	tr := &traceObserver{}
	fan = append(fan, tr)
	fan = append(fan, cfg.observers...)
	obs := multiObserver(fan)
	if algorithm == RefExact {
		res, err := s.solveExact(ctx, v, cfg)
		if err != nil {
			return nil, err
		}
		obs.SearchFinished(res.Algorithm, res.Probes)
		return res, nil
	}
	ctl := core.Ctl{Ctx: ctx, Obs: obs, ProbeLimit: cfg.probeLimit, Parallelism: parallelism}

	var r *core.Result
	var err error
	switch algorithm {
	case TwoApprox:
		if v == Splittable {
			r, err = s.prep.SolveSplit2(ctl)
		} else {
			r, err = s.prep.SolveNonp2(ctl, v)
		}
	case EpsilonSearch:
		r, err = s.prep.SolveEps(ctl, v, cfg.epsilon)
	default: // Auto, Exact32
		switch v {
		case Splittable:
			r, err = s.prep.SolveSplitJump(ctl)
		case Preemptive:
			r, err = s.prep.SolvePmtnJump(ctl)
		default:
			r, err = s.prep.SolveNonpSearch(ctl)
		}
	}
	if err != nil {
		return nil, wrapSolveErr(err)
	}
	res := finish(r)
	res.Trace = tr.trace
	obs.SearchFinished(res.Algorithm, res.Probes)
	return res, nil
}

// solveExact runs the RefExact branch-and-bound reference backend.  It
// sits outside the core.Result pipeline: the backend returns the true
// optimum, so Makespan, Guess and LowerBound all collapse to OPT and the
// realized ratio is exactly 1.  The search has no dual-test probes to
// observe; Probes counts the backend's threshold probes and Trace stays
// empty.
func (s *Solver) solveExact(ctx context.Context, v Variant, cfg *solveConfig) (*Result, error) {
	if v != NonPreemptive {
		return nil, ErrExactUnsupported
	}
	res, err := exact.BranchBound(ctx, s.in, cfg.nodeBudget)
	if err != nil {
		if errors.Is(err, exact.ErrTooLarge) {
			return nil, ErrExactTooLarge
		}
		var be *exact.BudgetError
		if errors.As(err, &be) {
			return nil, &ExactBudgetError{Budget: be.Budget, Nodes: be.Nodes, Lo: be.Lo, Hi: be.Hi}
		}
		return nil, wrapSolveErr(err)
	}
	opt := sched.R(res.Opt)
	return &Result{
		Schedule:   res.Schedule,
		Makespan:   opt,
		Guess:      opt,
		LowerBound: opt,
		Ratio:      1,
		Algorithm:  RefExact.String(),
		Probes:     res.Probes,
	}, nil
}

// Run names one (variant, algorithm) combination for Solver.SolveAll.
type Run struct {
	Variant   Variant
	Algorithm Algorithm
}

// String renders the run as "variant/algorithm".
func (r Run) String() string { return r.Variant.Short() + "/" + r.Algorithm.String() }

// RunResult is the outcome of one Run of a SolveAll call.  Exactly one of
// Result and Err is non-nil.
type RunResult struct {
	Run    Run
	Result *Result
	Err    error
}

// PaperRuns returns the nine algorithm combinations of the paper's
// Table 1 — every variant solved with the 2-approximation, the
// (3/2+eps)-search and the exact 3/2-approximation — in the order
// SolveAll reports them by default.
func PaperRuns() []Run {
	var out []Run
	for _, v := range []Variant{Splittable, Preemptive, NonPreemptive} {
		for _, a := range []Algorithm{TwoApprox, EpsilonSearch, Exact32} {
			out = append(out, Run{Variant: v, Algorithm: a})
		}
	}
	return out
}

// SolveAll solves many (variant, algorithm) combinations concurrently off
// the Solver's one shared preparation.  By default it runs PaperRuns();
// restrict or reorder the set with WithRuns.  WithParallelism(n) bounds
// how many runs are in flight at once (default 1, fully serial); each
// run probes serially, so results are bit-identical to calling Solve once
// per run.  The returned slice always has one entry per requested run, in
// the requested order regardless of completion order, with per-run
// failures in RunResult.Err (a canceled context marks every unfinished
// run with an error matching ErrCanceled).  The error return is reserved
// for invalid options.
//
// WithAlgorithm does not apply (the algorithm is part of each Run);
// WithEpsilon configures every EpsilonSearch run, and observers attached
// with WithObserver receive events from concurrent runs and must be safe
// for concurrent use.
func (s *Solver) SolveAll(ctx context.Context, opts ...Option) ([]RunResult, error) {
	cfg, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	if cfg.algorithm != Auto {
		return nil, errors.New("setupsched: WithAlgorithm does not apply to SolveAll; use WithRuns")
	}
	runs := cfg.runs
	if runs == nil {
		runs = PaperRuns()
	}
	out := make([]RunResult, len(runs))
	workers := cfg.parallelism
	if workers > len(runs) {
		workers = len(runs)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				r := runs[i]
				res, err := s.solveRun(ctx, r.Variant, r.Algorithm, cfg, 1, nil)
				out[i] = RunResult{Run: r, Result: res, Err: err}
			}
		}()
	}
	for i := range runs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out, nil
}

// DualTest runs the variant's 3/2-dual approximation at the makespan
// guess T: it either returns a feasible schedule with makespan at most
// 3/2*T (accepted) or reports that T was rejected, which certifies
// T < OPT.  Observers attached with WithObserver see the probe; the
// search-only options WithAlgorithm and WithProbeLimit do not apply to a
// single probe and are rejected rather than silently ignored.
//
// T must be positive with denominator at most 2^20.
func (s *Solver) DualTest(ctx context.Context, v Variant, T Rat, opts ...Option) (accepted bool, sc *Schedule, err error) {
	cfg, err := resolveOptions(opts)
	if err != nil {
		return false, nil, err
	}
	if cfg.algorithm != Auto || cfg.probeLimit != 0 || cfg.parallelism != 1 || cfg.runs != nil {
		return false, nil, errors.New("setupsched: WithAlgorithm, WithProbeLimit, WithParallelism and WithRuns do not apply to DualTest")
	}
	if T.Sign() <= 0 {
		return false, nil, fmt.Errorf("setupsched: non-positive makespan guess %s", T)
	}
	if T.Den() > maxDualDen {
		return false, nil, fmt.Errorf("setupsched: makespan guess denominator %d exceeds %d", T.Den(), maxDualDen)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return false, nil, wrapSolveErr(err)
		}
	}
	obs := multiObserver(cfg.observers)
	obs.ProbeStarted(T)
	accepted, sc, err = s.dualTest(v, T)
	obs.ProbeFinished(T, accepted)
	return accepted, sc, err
}

func (s *Solver) dualTest(v Variant, T Rat) (bool, *Schedule, error) {
	switch v {
	case Splittable:
		ev := s.prep.EvalSplit(T, nil)
		if !ev.OK {
			return false, nil, nil
		}
		sc, err := s.prep.BuildSplit(ev)
		return true, sc, err
	case Preemptive:
		ev := s.prep.EvalPmtn(T, nil)
		if !ev.OK {
			return false, nil, nil
		}
		sc, err := s.prep.BuildPmtn(ev)
		return true, sc, err
	default:
		ev := s.prep.EvalNonp(T)
		if !ev.OK {
			return false, nil, nil
		}
		sc, err := s.prep.BuildNonp(ev)
		return true, sc, err
	}
}
