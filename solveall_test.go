package setupsched

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"setupsched/schedgen"
)

func solveAllInstance(t *testing.T) *Solver {
	t.Helper()
	in := schedgen.ExpensiveSetups(schedgen.Params{
		M: 32, Classes: 40, JobsPer: 3, MaxSetup: 500, MaxJob: 60, Seed: 11,
	})
	s, err := NewSolver(in)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSolveAllMatchesSerialSolve asserts SolveAll's results are
// bit-identical to one Solve per run, for every parallelism, and that the
// output order is the requested order.
func TestSolveAllMatchesSerialSolve(t *testing.T) {
	s := solveAllInstance(t)
	ctx := context.Background()
	runs := PaperRuns()
	want := make([]*Result, len(runs))
	for i, r := range runs {
		res, err := s.Solve(ctx, r.Variant, WithAlgorithm(r.Algorithm))
		if err != nil {
			t.Fatalf("%s: %v", r, err)
		}
		want[i] = res
	}
	for _, par := range []int{1, 2, 4, 16} {
		got, err := s.SolveAll(ctx, WithParallelism(par))
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(got) != len(runs) {
			t.Fatalf("parallelism %d: %d results for %d runs", par, len(got), len(runs))
		}
		for i, rr := range got {
			if rr.Run != runs[i] {
				t.Fatalf("parallelism %d: result %d is %s, want %s (ordering must be deterministic)",
					par, i, rr.Run, runs[i])
			}
			if rr.Err != nil {
				t.Fatalf("parallelism %d: %s: %v", par, rr.Run, rr.Err)
			}
			if !rr.Result.Makespan.Equal(want[i].Makespan) ||
				!rr.Result.LowerBound.Equal(want[i].LowerBound) ||
				!rr.Result.Guess.Equal(want[i].Guess) {
				t.Errorf("parallelism %d: %s: (%s, %s, %s) != serial (%s, %s, %s)",
					par, rr.Run,
					rr.Result.Makespan, rr.Result.LowerBound, rr.Result.Guess,
					want[i].Makespan, want[i].LowerBound, want[i].Guess)
			}
			if rr.Result.Algorithm != want[i].Algorithm {
				t.Errorf("parallelism %d: %s: algorithm %q != %q", par, rr.Run, rr.Result.Algorithm, want[i].Algorithm)
			}
		}
	}
}

// TestSolveAllWithRuns checks subset selection and requested-order output.
func TestSolveAllWithRuns(t *testing.T) {
	s := solveAllInstance(t)
	runs := []Run{
		{NonPreemptive, Exact32},
		{Splittable, TwoApprox},
		{NonPreemptive, EpsilonSearch},
	}
	got, err := s.SolveAll(context.Background(), WithRuns(runs...), WithParallelism(3), WithEpsilon(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(runs) {
		t.Fatalf("%d results for %d runs", len(got), len(runs))
	}
	for i, rr := range got {
		if rr.Run != runs[i] {
			t.Fatalf("result %d is %s, want %s", i, rr.Run, runs[i])
		}
		if rr.Err != nil {
			t.Fatalf("%s: %v", rr.Run, rr.Err)
		}
		if err := Verify(s.Instance(), rr.Run.Variant, rr.Result); err != nil {
			t.Fatalf("%s: %v", rr.Run, err)
		}
	}
}

// TestSolveAllOptionValidation covers the option rejection rules.
func TestSolveAllOptionValidation(t *testing.T) {
	s := solveAllInstance(t)
	ctx := context.Background()
	if _, err := s.SolveAll(ctx, WithAlgorithm(Exact32)); err == nil ||
		!strings.Contains(err.Error(), "WithRuns") {
		t.Fatalf("SolveAll accepted WithAlgorithm: %v", err)
	}
	if _, err := s.SolveAll(ctx, WithParallelism(0)); err == nil {
		t.Fatal("SolveAll accepted parallelism 0")
	}
	if _, err := s.SolveAll(ctx, WithRuns()); err == nil {
		t.Fatal("SolveAll accepted empty WithRuns")
	}
	if _, err := s.SolveAll(ctx, WithRuns(Run{Variant: 42})); err == nil {
		t.Fatal("SolveAll accepted an unknown variant")
	}
	if _, err := s.SolveAll(ctx, WithRuns(Run{Variant: NonPreemptive, Algorithm: 42})); err == nil {
		t.Fatal("SolveAll accepted an unknown algorithm")
	}
	if _, err := s.Solve(ctx, NonPreemptive, WithRuns(Run{Variant: NonPreemptive})); err == nil {
		t.Fatal("Solve accepted WithRuns")
	}
	if _, _, err := s.DualTest(ctx, NonPreemptive, Rat{}.AddInt(1000), WithParallelism(2)); err == nil {
		t.Fatal("DualTest accepted WithParallelism")
	}
}

// TestSolveSpeculativeMatchesSerial asserts the public Solve path with
// WithParallelism returns bit-identical results to the serial path.
func TestSolveSpeculativeMatchesSerial(t *testing.T) {
	s := solveAllInstance(t)
	ctx := context.Background()
	for _, r := range PaperRuns() {
		serial, err := s.Solve(ctx, r.Variant, WithAlgorithm(r.Algorithm))
		if err != nil {
			t.Fatalf("%s: %v", r, err)
		}
		spec, err := s.Solve(ctx, r.Variant, WithAlgorithm(r.Algorithm), WithParallelism(4))
		if err != nil {
			t.Fatalf("%s speculative: %v", r, err)
		}
		if !spec.Makespan.Equal(serial.Makespan) || !spec.LowerBound.Equal(serial.LowerBound) {
			t.Errorf("%s: speculative (%s, %s) != serial (%s, %s)",
				r, spec.Makespan, spec.LowerBound, serial.Makespan, serial.LowerBound)
		}
		// Trace must stay deduplicated and consistent under speculation.
		seen := map[string]bool{}
		for _, p := range spec.Trace {
			if seen[p.T.String()] {
				t.Errorf("%s: duplicate trace entry for guess %s", r, p.T)
			}
			seen[p.T.String()] = true
		}
		if len(spec.Trace) > spec.Probes {
			t.Errorf("%s: %d trace entries > %d probes", r, len(spec.Trace), spec.Probes)
		}
	}
}

// TestSolveAllCancellation: a canceled context yields one ErrCanceled per
// run and no partial results.
func TestSolveAllCancellation(t *testing.T) {
	s := solveAllInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := s.SolveAll(ctx, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range got {
		if rr.Err == nil {
			t.Fatalf("%s: no error under canceled context", rr.Run)
		}
		if !errors.Is(rr.Err, ErrCanceled) || !errors.Is(rr.Err, context.Canceled) {
			t.Fatalf("%s: error %v does not match ErrCanceled/context.Canceled", rr.Run, rr.Err)
		}
		if rr.Result != nil {
			t.Fatalf("%s: partial result under canceled context", rr.Run)
		}
	}
}

// TestSolveAllSharedObserver: an observer passed to SolveAll sees events
// from all runs (and must therefore be concurrency-safe, which this test
// exercises under -race).
func TestSolveAllSharedObserver(t *testing.T) {
	s := solveAllInstance(t)
	var mu sync.Mutex
	finished := map[string]int{}
	obs := funcObserver{onSearchFinished: func(algorithm string, probes int) {
		mu.Lock()
		finished[algorithm]++
		mu.Unlock()
	}}
	got, err := s.SolveAll(context.Background(), WithParallelism(8), WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, n := range finished {
		total += n
	}
	if total != len(got) {
		t.Fatalf("observer saw %d SearchFinished events for %d runs", total, len(got))
	}
}

// funcObserver adapts callbacks to the Observer interface.
type funcObserver struct {
	onSearchFinished func(string, int)
}

func (f funcObserver) ProbeStarted(Rat)        {}
func (f funcObserver) ProbeFinished(Rat, bool) {}
func (f funcObserver) SearchFinished(a string, p int) {
	if f.onSearchFinished != nil {
		f.onSearchFinished(a, p)
	}
}
