package schedgen_test

import (
	"fmt"
	"log"

	"setupsched/schedgen"
)

// Example_catalog walks the adversarial family catalog: every family is
// self-describing, deterministic and seed-reproducible, so a (family,
// Params) pair regenerates an instance exactly.
func Example_catalog() {
	fams, err := schedgen.Select("nearhalf,ratstress")
	if err != nil {
		log.Fatal(err)
	}
	p := schedgen.Params{M: 4, Classes: 6, JobsPer: 3, MaxSetup: 20, MaxJob: 30, Seed: 42}
	for _, fam := range fams {
		in := fam.Make(p)
		again := fam.Make(p)
		fmt.Printf("%s: m=%d classes=%d jobs=%d reproducible=%v\n",
			fam.Name, in.M, in.NumClasses(), in.NumJobs(), in.Fingerprint() == again.Fingerprint())
	}
	// Output:
	// nearhalf: m=4 classes=6 jobs=13 reproducible=true
	// ratstress: m=4 classes=6 jobs=17 reproducible=true
}
