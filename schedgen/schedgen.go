// Package schedgen generates deterministic, seed-reproducible scheduling
// instances for tests, benchmarks and the differential guarantee-checking
// harness (internal/diff, cmd/schedstress).
//
// The source paper (Deppert & Jansen, SPAA 2019) has no empirical section,
// so the catalog is built from the structural regimes its worst-case
// analysis distinguishes: cheap vs expensive setups, small batches
// (s_i + P(C_i) << OPT), single-job classes (the Schuurman-Woeginger
// preemptive regime), jobs near the T/2 big-job threshold, heavy-tailed
// class sizes, degenerate all-setup / no-setup extremes, rational-ratio
// stress for the exact arithmetic, and machine-count sweeps.  Related
// evaluations (Mäcker et al.; Jansen et al., "Empowering the
// Configuration-IP") test against exactly these adversarial shapes.
//
// Every family is pure: the same Params always produce the identical
// instance, so any failure found by a soak or fuzz run is reproduced by
// its (family, Params) pair alone.
package schedgen

import (
	"fmt"
	"math/rand"
	"strings"

	"setupsched/sched"
)

// Params control the generators.  All families draw from
// rand.NewSource(Seed) only, so equal Params give equal instances.
type Params struct {
	M        int64 // machines
	Classes  int   // number of classes c (some families reinterpret, see docs)
	JobsPer  int   // expected jobs per class (>= 1)
	MaxSetup int64 // setups drawn from [0, MaxSetup]
	MaxJob   int64 // processing times drawn from [1, MaxJob]
	Seed     int64
}

// Family is one named, self-describing generator.
type Family struct {
	// Name is the stable identifier used by CLIs and test tables.
	Name string
	// Description says which structural regime the family stresses.
	Description string
	// Make builds the instance; it must be deterministic in Params.
	Make func(Params) *sched.Instance
}

// Uniform draws setups and job lengths uniformly.
func Uniform(p Params) *sched.Instance {
	rng := rand.New(rand.NewSource(p.Seed))
	in := &sched.Instance{M: p.M}
	for c := 0; c < p.Classes; c++ {
		nj := 1
		if p.JobsPer > 1 {
			nj = 1 + rng.Intn(2*p.JobsPer-1)
		}
		cl := sched.Class{Setup: rng.Int63n(p.MaxSetup + 1)}
		for j := 0; j < nj; j++ {
			cl.Jobs = append(cl.Jobs, 1+rng.Int63n(p.MaxJob))
		}
		in.Classes = append(in.Classes, cl)
	}
	return in
}

// ExpensiveSetups makes setups dominate processing times, so most classes
// are expensive at the interesting makespan guesses.
func ExpensiveSetups(p Params) *sched.Instance {
	rng := rand.New(rand.NewSource(p.Seed))
	in := &sched.Instance{M: p.M}
	for c := 0; c < p.Classes; c++ {
		cl := sched.Class{Setup: p.MaxSetup/2 + rng.Int63n(p.MaxSetup/2+1)}
		nj := 1 + rng.Intn(max(p.JobsPer, 1))
		for j := 0; j < nj; j++ {
			cl.Jobs = append(cl.Jobs, 1+rng.Int63n(max(p.MaxJob/4, 1)))
		}
		in.Classes = append(in.Classes, cl)
	}
	return in
}

// SmallBatches produces many light classes (the Monma-Potts/Chen regime
// where s_i + P(C_i) is far below OPT).
func SmallBatches(p Params) *sched.Instance {
	rng := rand.New(rand.NewSource(p.Seed))
	in := &sched.Instance{M: p.M}
	for c := 0; c < p.Classes; c++ {
		cl := sched.Class{Setup: rng.Int63n(max(p.MaxSetup/8, 1) + 1)}
		nj := 1 + rng.Intn(max(p.JobsPer, 1))
		for j := 0; j < nj; j++ {
			cl.Jobs = append(cl.Jobs, 1+rng.Int63n(max(p.MaxJob/8, 1)))
		}
		in.Classes = append(in.Classes, cl)
	}
	return in
}

// SingleJobClasses produces |C_i| = 1 instances (the Schuurman-Woeginger
// preemptive regime).
func SingleJobClasses(p Params) *sched.Instance {
	rng := rand.New(rand.NewSource(p.Seed))
	in := &sched.Instance{M: p.M}
	for c := 0; c < p.Classes; c++ {
		in.Classes = append(in.Classes, sched.Class{
			Setup: rng.Int63n(p.MaxSetup + 1),
			Jobs:  []int64{1 + rng.Int63n(p.MaxJob)},
		})
	}
	return in
}

// BigJobs places many jobs just above and below T/2-style thresholds,
// stressing the J+/K/C* partitions.
func BigJobs(p Params) *sched.Instance {
	rng := rand.New(rand.NewSource(p.Seed))
	in := &sched.Instance{M: p.M}
	base := max(p.MaxJob, 8)
	for c := 0; c < p.Classes; c++ {
		cl := sched.Class{Setup: rng.Int63n(base/4 + 1)}
		nj := 1 + rng.Intn(max(p.JobsPer, 1))
		for j := 0; j < nj; j++ {
			switch rng.Intn(3) {
			case 0: // big
				cl.Jobs = append(cl.Jobs, base/2+rng.Int63n(base/2+1))
			case 1: // near the boundary
				cl.Jobs = append(cl.Jobs, base/2-rng.Int63n(base/8+1))
			default: // small
				cl.Jobs = append(cl.Jobs, 1+rng.Int63n(base/4))
			}
		}
		in.Classes = append(in.Classes, cl)
	}
	return in
}

// NearHalf concentrates every job tightly at the T/2 big-job threshold:
// processing times are MaxJob/2 - 1, MaxJob/2 or MaxJob/2 + 1 with small
// setups.  At makespan guesses around MaxJob the J+ partition flips job by
// job, the adversarial regime for the 3/2 dual tests.
func NearHalf(p Params) *sched.Instance {
	rng := rand.New(rand.NewSource(p.Seed))
	in := &sched.Instance{M: p.M}
	base := max(p.MaxJob, 8)
	for c := 0; c < p.Classes; c++ {
		cl := sched.Class{Setup: rng.Int63n(max(base/8, 1) + 1)}
		nj := 1 + rng.Intn(max(p.JobsPer, 1))
		for j := 0; j < nj; j++ {
			cl.Jobs = append(cl.Jobs, max(base/2+rng.Int63n(3)-1, 1))
		}
		in.Classes = append(in.Classes, cl)
	}
	return in
}

// Zipf draws job lengths and setups from a heavy-tailed distribution,
// producing a few dominant classes.
func Zipf(p Params) *sched.Instance {
	rng := rand.New(rand.NewSource(p.Seed))
	zipf := rand.NewZipf(rng, 1.5, 1, uint64(max(p.MaxJob-1, 1)))
	zipfS := rand.NewZipf(rng, 1.3, 1, uint64(max(p.MaxSetup, 1)))
	in := &sched.Instance{M: p.M}
	for c := 0; c < p.Classes; c++ {
		cl := sched.Class{Setup: int64(zipfS.Uint64())}
		nj := 1 + rng.Intn(max(p.JobsPer, 1))
		for j := 0; j < nj; j++ {
			cl.Jobs = append(cl.Jobs, 1+int64(zipf.Uint64()))
		}
		in.Classes = append(in.Classes, cl)
	}
	return in
}

// ZipfClassSizes draws the number of jobs per class from a heavy-tailed
// distribution: a few giant classes next to many singletons, so class
// work P(C_i) spans orders of magnitude within one instance.
func ZipfClassSizes(p Params) *sched.Instance {
	rng := rand.New(rand.NewSource(p.Seed))
	// Tail up to ~JobsPer^2 jobs in one class, expectation near JobsPer.
	tail := uint64(max(p.JobsPer*p.JobsPer, 2))
	zipfN := rand.NewZipf(rng, 1.4, 1, tail)
	in := &sched.Instance{M: p.M}
	for c := 0; c < p.Classes; c++ {
		cl := sched.Class{Setup: rng.Int63n(p.MaxSetup + 1)}
		nj := 1 + int(zipfN.Uint64())
		for j := 0; j < nj; j++ {
			cl.Jobs = append(cl.Jobs, 1+rng.Int63n(p.MaxJob))
		}
		in.Classes = append(in.Classes, cl)
	}
	return in
}

// NoSetup sets every setup to zero: the problem degenerates to classical
// makespan scheduling (P||Cmax and relatives), the boundary where every
// class is trivially cheap and the setup machinery must get out of the way.
func NoSetup(p Params) *sched.Instance {
	rng := rand.New(rand.NewSource(p.Seed))
	in := &sched.Instance{M: p.M}
	for c := 0; c < p.Classes; c++ {
		cl := sched.Class{Setup: 0}
		nj := 1 + rng.Intn(max(p.JobsPer, 1))
		for j := 0; j < nj; j++ {
			cl.Jobs = append(cl.Jobs, 1+rng.Int63n(p.MaxJob))
		}
		in.Classes = append(in.Classes, cl)
	}
	return in
}

// AllSetup makes the schedule almost pure setup: setups in
// [MaxSetup/2, MaxSetup], every job a unit.  Placement of setups is the
// whole problem, the opposite extreme of NoSetup.
func AllSetup(p Params) *sched.Instance {
	rng := rand.New(rand.NewSource(p.Seed))
	in := &sched.Instance{M: p.M}
	for c := 0; c < p.Classes; c++ {
		cl := sched.Class{Setup: p.MaxSetup/2 + rng.Int63n(p.MaxSetup/2+1)}
		nj := 1 + rng.Intn(max(p.JobsPer, 1))
		for j := 0; j < nj; j++ {
			cl.Jobs = append(cl.Jobs, 1)
		}
		in.Classes = append(in.Classes, cl)
	}
	return in
}

// ManyClassesOneJob sharpens the Schuurman-Woeginger regime: every class
// is a single unit job behind a full-range setup, and classes vastly
// outnumber machines, so setups are the entire scheduling substance.
func ManyClassesOneJob(p Params) *sched.Instance {
	rng := rand.New(rand.NewSource(p.Seed))
	in := &sched.Instance{M: p.M}
	// Guarantee classes >> machines regardless of the caller's ratio.
	c := max(p.Classes, int(min(4*p.M, 1<<20)))
	for i := 0; i < c; i++ {
		in.Classes = append(in.Classes, sched.Class{
			Setup: rng.Int63n(p.MaxSetup + 1),
			Jobs:  []int64{1},
		})
	}
	// The amplified class count must still respect the magnitude contract
	// m*N <= MaxMachineLoadProduct; shed classes (never machines — the
	// machine excess is the family's point) until it fits.
	if in.M > 0 {
		n := in.N()
		for len(in.Classes) > 1 && n > sched.MaxMachineLoadProduct/in.M {
			last := &in.Classes[len(in.Classes)-1]
			n -= last.Setup + 1
			in.Classes = in.Classes[:len(in.Classes)-1]
		}
	}
	return in
}

// OneClassManyJobs is the opposite degenerate shape: a single class
// carrying Classes*JobsPer jobs behind one setup, so the only question is
// how to split one batch across all machines.
func OneClassManyJobs(p Params) *sched.Instance {
	rng := rand.New(rand.NewSource(p.Seed))
	cl := sched.Class{Setup: rng.Int63n(p.MaxSetup + 1)}
	n := max(p.Classes, 1) * max(p.JobsPer, 1)
	for j := 0; j < n; j++ {
		cl.Jobs = append(cl.Jobs, 1+rng.Int63n(p.MaxJob))
	}
	return &sched.Instance{M: p.M, Classes: []sched.Class{cl}}
}

// RationalStress pads a uniform instance so the total load N satisfies
// N = 1 (mod m): the per-machine bound N/m and the guesses derived from it
// carry the full denominator m through every probe, stressing the exact
// rational arithmetic (and any code tempted to round).
func RationalStress(p Params) *sched.Instance {
	in := Uniform(p)
	if in.M > 1 && len(in.Classes) > 0 {
		delta := ((1-in.N())%in.M + in.M) % in.M
		if delta == 0 {
			delta = in.M
		}
		last := len(in.Classes) - 1
		in.Classes[last].Jobs = append(in.Classes[last].Jobs, delta)
	}
	return in
}

// MachineSweep reinterprets the seed as a machine-count sweep: m is
// Params.M shifted left by Seed mod 11 (so consecutive seeds cover three
// decades of machine counts, from fewer machines than classes to vastly
// more), with uniform setups and jobs.  It exercises the splittable run
// compression and every m-dependent partition boundary.
func MachineSweep(p Params) *sched.Instance {
	shifted := p
	shift := uint(((p.Seed % 11) + 11) % 11) // Go's % keeps the sign; negative seeds must still shift by 0..10
	shifted.M = min(p.M<<shift, sched.MaxMachines)
	in := Uniform(shifted)
	// Respect the magnitude contract m*N <= MaxMachineLoadProduct even for
	// extreme sweeps: shrink m (never the load) until it fits.
	for in.M > 1 && in.N() > sched.MaxMachineLoadProduct/in.M {
		in.M /= 2
	}
	return in
}

// Families lists the full catalog in a stable order.
var Families = []Family{
	{"uniform", "uniform setups and job lengths; the unbiased control", Uniform},
	{"expensive", "setups dominate processing times; most classes expensive at interesting guesses", ExpensiveSetups},
	{"smallbatch", "many light classes with s_i + P(C_i) far below OPT (Monma-Potts/Chen regime)", SmallBatches},
	{"singlejob", "every class one job (Schuurman-Woeginger preemptive regime)", SingleJobClasses},
	{"bigjobs", "jobs scattered above/below the T/2 threshold, stressing J+/K/C* partitions", BigJobs},
	{"nearhalf", "all jobs within 1 of MaxJob/2; the J+ partition flips job by job near T=MaxJob", NearHalf},
	{"zipf", "heavy-tailed job lengths and setups; a few dominant classes", Zipf},
	{"zipfclass", "heavy-tailed class sizes; giant classes next to singletons", ZipfClassSizes},
	{"nosetup", "all setups zero; degenerates to classical makespan scheduling", NoSetup},
	{"allsetup", "setups in [max/2, max] with unit jobs; schedules are almost pure setup", AllSetup},
	{"manyclasses", "unit job per class, classes >> machines; setups are the whole problem", ManyClassesOneJob},
	{"oneclass", "a single class with all jobs behind one setup; pure batch splitting", OneClassManyJobs},
	{"ratstress", "total load fixed to 1 mod m, so N/m carries denominator m through every probe", RationalStress},
	{"msweep", "machine count swept over three decades by seed; stresses run compression", MachineSweep},
}

// ByName returns the named family.
func ByName(name string) (Family, error) {
	for _, f := range Families {
		if f.Name == name {
			return f, nil
		}
	}
	return Family{}, fmt.Errorf("schedgen: unknown family %q (known: %s)", name, strings.Join(Names(), ", "))
}

// Names returns the catalog's family names in stable order.
func Names() []string {
	out := make([]string, len(Families))
	for i, f := range Families {
		out[i] = f.Name
	}
	return out
}

// Select resolves a comma-separated family list; "all" (or "") selects the
// whole catalog.  Duplicates are removed, order follows the catalog.
func Select(spec string) ([]Family, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "all" {
		return append([]Family(nil), Families...), nil
	}
	want := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, err := ByName(name); err != nil {
			return nil, err
		}
		want[name] = true
	}
	var out []Family
	for _, f := range Families {
		if want[f.Name] {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("schedgen: empty family selection %q", spec)
	}
	return out, nil
}
