package schedgen

import (
	"bytes"
	"strings"
	"testing"
)

func driftParams(seed int64) Params {
	return Params{M: 6, Classes: 12, JobsPer: 4, MaxSetup: 80, MaxJob: 100, Seed: seed}
}

// TestDriftRegimesReplayable asserts the catalog contract for every
// regime: the trace starts with a valid base, every delta replays cleanly
// in order, solve points are present, and the whole thing is
// deterministic in (Params, steps).
func TestDriftRegimesReplayable(t *testing.T) {
	for _, regime := range DriftRegimes {
		t.Run(regime.Name, func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				events := regime.Make(driftParams(seed), 30)
				if len(events) == 0 || events[0].Base == nil {
					t.Fatalf("seed %d: trace does not start with a base", seed)
				}
				if err := events[0].Base.Validate(); err != nil {
					t.Fatalf("seed %d: invalid base: %v", seed, err)
				}
				mirror := events[0].Base.Clone()
				deltas, solves := 0, 0
				for i, ev := range events[1:] {
					switch {
					case ev.Base != nil:
						t.Fatalf("seed %d: second base at event %d", seed, i+1)
					case ev.Delta != nil:
						deltas++
						if _, err := ev.Delta.Apply(mirror); err != nil {
							t.Fatalf("seed %d event %d: generated delta does not replay: %v", seed, i+1, err)
						}
					case ev.Solve:
						solves++
					default:
						t.Fatalf("seed %d: empty event %d", seed, i+1)
					}
				}
				if deltas == 0 {
					t.Fatalf("seed %d: trace has no deltas", seed)
				}
				if solves < 2 {
					t.Fatalf("seed %d: trace has %d solve points, want >= 2", seed, solves)
				}
				if !events[len(events)-1].Solve {
					t.Fatalf("seed %d: trace does not end on a solve point", seed)
				}
				if err := mirror.Validate(); err != nil {
					t.Fatalf("seed %d: replayed instance invalid: %v", seed, err)
				}

				// Determinism: a second generation is byte-identical.
				var a, b bytes.Buffer
				if err := EncodeTrace(&a, events); err != nil {
					t.Fatal(err)
				}
				if err := EncodeTrace(&b, regime.Make(driftParams(seed), 30)); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(a.Bytes(), b.Bytes()) {
					t.Fatalf("seed %d: regeneration differs (non-deterministic regime)", seed)
				}
			}
		})
	}
}

func TestDriftTraceRoundTrip(t *testing.T) {
	events := Churn(driftParams(3), 20)
	var buf bytes.Buffer
	if err := EncodeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip: %d events, want %d", len(got), len(events))
	}
	if !got[0].Base.Equal(events[0].Base) {
		t.Fatal("round trip changed the base instance")
	}
	for i := range events {
		if (got[i].Delta == nil) != (events[i].Delta == nil) || got[i].Solve != events[i].Solve {
			t.Fatalf("round trip changed event %d", i)
		}
		if got[i].Delta != nil && got[i].Delta.Op != events[i].Delta.Op {
			t.Fatalf("round trip changed delta op at event %d", i)
		}
	}
}

func TestDecodeTraceRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, ndjson, want string
	}{
		{"empty", "", "empty trace"},
		{"no base first", `{"solve":true}`, "must start with a base"},
		{"two bases", `{"base":{"m":1,"classes":[{"setup":0,"jobs":[1]}]}}` + "\n" + `{"base":{"m":1,"classes":[{"setup":0,"jobs":[1]}]}}`, "must be the first"},
		{"both fields", `{"base":{"m":1,"classes":[{"setup":0,"jobs":[1]}]},"solve":true}`, "exactly one"},
		{"invalid base", `{"base":{"m":0,"classes":[]}}`, "invalid base"},
		{"garbage", "not json", "line 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeTrace(strings.NewReader(tc.ndjson))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("DecodeTrace = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestDriftCatalogSelectors(t *testing.T) {
	if len(DriftNames()) != len(DriftRegimes) {
		t.Fatal("DriftNames length mismatch")
	}
	if _, err := DriftByName("churn"); err != nil {
		t.Fatal(err)
	}
	if _, err := DriftByName("nope"); err == nil || !strings.Contains(err.Error(), "churn") {
		t.Fatalf("unknown regime error %v should list known names", err)
	}
	all, err := SelectDrift("all")
	if err != nil || len(all) != len(DriftRegimes) {
		t.Fatalf("SelectDrift(all) = %d regimes, err %v", len(all), err)
	}
	two, err := SelectDrift("scale, churn")
	if err != nil || len(two) != 2 || two[0].Name != "churn" {
		t.Fatalf("SelectDrift order/dedup broken: %v %v", two, err)
	}
	if _, err := SelectDrift("bogus"); err == nil {
		t.Fatal("SelectDrift accepted unknown regime")
	}
}
