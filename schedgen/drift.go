package schedgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"setupsched/sched"
)

// TraceEvent is one line of a replayable NDJSON delta trace: exactly one
// of Base (first line: the starting instance), Delta (one instance edit)
// or Solve (a solve point — replayers solve and cross-check here) is set.
type TraceEvent struct {
	Base  *sched.Instance `json:"base,omitempty"`
	Delta *sched.Delta    `json:"delta,omitempty"`
	Solve bool            `json:"solve,omitempty"`
}

// DriftRegime is one named generator of delta traces: a base instance
// plus a deterministic, seed-reproducible stream of edits with embedded
// solve points.  Every generated delta is valid at its position (the
// generator replays its own trace while producing it), so replaying the
// trace never hits a rejected delta.
type DriftRegime struct {
	// Name is the stable identifier used by CLIs and test tables.
	Name string
	// Description says which streaming regime the trace stresses.
	Description string
	// Make builds a trace of roughly steps deltas; deterministic in
	// (Params, steps).
	Make func(p Params, steps int) []TraceEvent
}

// driftSolveEvery is the delta cadence between generated solve points.
const driftSolveEvery = 4

// driftTrace drives the shared generation loop: propose deltas with pick,
// keep the valid ones (retrying a few proposals per step), and interleave
// solve points.  The mirror instance always reflects the trace applied so
// far, so pick sees the state its delta will apply to.
func driftTrace(base *sched.Instance, rng *rand.Rand, steps int,
	pick func(rng *rand.Rand, mirror *sched.Instance) sched.Delta) []TraceEvent {
	mirror := base.Clone()
	events := []TraceEvent{{Base: base}, {Solve: true}}
	sinceSolve := 0
	for s := 0; s < steps; s++ {
		for attempt := 0; attempt < 16; attempt++ {
			d := pick(rng, mirror)
			if _, err := d.Apply(mirror); err != nil {
				continue
			}
			dd := d
			events = append(events, TraceEvent{Delta: &dd})
			sinceSolve++
			break
		}
		if sinceSolve >= driftSolveEvery {
			events = append(events, TraceEvent{Solve: true})
			sinceSolve = 0
		}
	}
	if sinceSolve > 0 {
		events = append(events, TraceEvent{Solve: true})
	}
	return events
}

// pickAddJobs proposes appending 1..3 jobs to a random class.
func pickAddJobs(rng *rand.Rand, mirror *sched.Instance, maxJob int64) sched.Delta {
	nj := 1 + rng.Intn(3)
	jobs := make([]int64, nj)
	for i := range jobs {
		jobs[i] = 1 + rng.Int63n(maxJob)
	}
	return sched.Delta{Op: sched.DeltaAddJobs, Class: rng.Intn(len(mirror.Classes)), Jobs: jobs}
}

// pickRemoveJob proposes removing a random job of a random class.
func pickRemoveJob(rng *rand.Rand, mirror *sched.Instance) sched.Delta {
	c := rng.Intn(len(mirror.Classes))
	j := 0
	if n := len(mirror.Classes[c].Jobs); n > 0 {
		j = rng.Intn(n)
	}
	return sched.Delta{Op: sched.DeltaRemoveJob, Class: c, Job: j}
}

// pickAddClass proposes a fresh class with 1..JobsPer jobs.
func pickAddClass(rng *rand.Rand, p Params) sched.Delta {
	nj := 1 + rng.Intn(max(p.JobsPer, 1))
	jobs := make([]int64, nj)
	for i := range jobs {
		jobs[i] = 1 + rng.Int63n(p.MaxJob)
	}
	return sched.Delta{Op: sched.DeltaAddClass, Setup: rng.Int63n(p.MaxSetup + 1), Jobs: jobs}
}

// Churn generates job churn over a uniform base: jobs arrive and depart,
// classes occasionally appear and drain, machines stay fixed — the
// steady-state online workload (Mäcker et al.).
func Churn(p Params, steps int) []TraceEvent {
	rng := rand.New(rand.NewSource(p.Seed))
	base := Uniform(Params{M: p.M, Classes: p.Classes, JobsPer: p.JobsPer,
		MaxSetup: p.MaxSetup, MaxJob: p.MaxJob, Seed: p.Seed ^ 0x5eed})
	return driftTrace(base, rng, steps, func(rng *rand.Rand, mirror *sched.Instance) sched.Delta {
		switch r := rng.Intn(100); {
		case r < 45:
			return pickAddJobs(rng, mirror, p.MaxJob)
		case r < 80:
			return pickRemoveJob(rng, mirror)
		case r < 90:
			return pickAddClass(rng, p)
		default:
			return sched.Delta{Op: sched.DeltaRemoveClass, Class: rng.Intn(len(mirror.Classes))}
		}
	})
}

// SetupDrift random-walks the setup times of a uniform base with light
// job churn: the regime where batch boundaries (2 s_i breakpoints and the
// expensive-class partition) move between solves while total load barely
// changes — the adversarial case for warm-start bracket seeding.
func SetupDrift(p Params, steps int) []TraceEvent {
	rng := rand.New(rand.NewSource(p.Seed))
	base := Uniform(Params{M: p.M, Classes: p.Classes, JobsPer: p.JobsPer,
		MaxSetup: p.MaxSetup, MaxJob: p.MaxJob, Seed: p.Seed ^ 0x5eed})
	step := max(p.MaxSetup/8, 1)
	return driftTrace(base, rng, steps, func(rng *rand.Rand, mirror *sched.Instance) sched.Delta {
		if rng.Intn(100) < 80 {
			c := rng.Intn(len(mirror.Classes))
			s := mirror.Classes[c].Setup + rng.Int63n(2*step+1) - step
			if s < 0 {
				s = 0
			}
			return sched.Delta{Op: sched.DeltaSetSetup, Class: c, Setup: s}
		}
		if rng.Intn(2) == 0 {
			return pickAddJobs(rng, mirror, p.MaxJob)
		}
		return pickRemoveJob(rng, mirror)
	})
}

// MachineScale scales the machine count up and down (doublings, halvings
// and ±25% steps) over light job churn: every scaling step moves the
// per-machine bound N/m, invalidating warm seeds — the regime that
// exercises the session's cold-restart path and seed epochs.
func MachineScale(p Params, steps int) []TraceEvent {
	rng := rand.New(rand.NewSource(p.Seed))
	base := Uniform(Params{M: p.M, Classes: p.Classes, JobsPer: p.JobsPer,
		MaxSetup: p.MaxSetup, MaxJob: p.MaxJob, Seed: p.Seed ^ 0x5eed})
	return driftTrace(base, rng, steps, func(rng *rand.Rand, mirror *sched.Instance) sched.Delta {
		if rng.Intn(100) < 30 {
			m := mirror.M
			switch rng.Intn(4) {
			case 0:
				m *= 2
			case 1:
				m /= 2
			case 2:
				m += max(m/4, 1)
			default:
				m -= max(m/4, 1)
			}
			if m < 1 {
				m = 1
			}
			return sched.Delta{Op: sched.DeltaSetMachines, M: m}
		}
		if rng.Intn(2) == 0 {
			return pickAddJobs(rng, mirror, p.MaxJob)
		}
		return pickRemoveJob(rng, mirror)
	})
}

// Growth generates a monotone arrival stream: jobs and classes only ever
// arrive (no departures), starting from a small seed instance — the
// classic online setting (Kawase et al.) where warm upper seeds shift up
// by exactly the arrived load.
func Growth(p Params, steps int) []TraceEvent {
	rng := rand.New(rand.NewSource(p.Seed))
	small := Params{M: p.M, Classes: max(p.Classes/4, 1), JobsPer: p.JobsPer,
		MaxSetup: p.MaxSetup, MaxJob: p.MaxJob, Seed: p.Seed ^ 0x5eed}
	base := Uniform(small)
	return driftTrace(base, rng, steps, func(rng *rand.Rand, mirror *sched.Instance) sched.Delta {
		if rng.Intn(100) < 75 {
			return pickAddJobs(rng, mirror, p.MaxJob)
		}
		return pickAddClass(rng, p)
	})
}

// Mixed draws every delta op with equal probability — the unbiased
// control for the drift regimes.
func Mixed(p Params, steps int) []TraceEvent {
	rng := rand.New(rand.NewSource(p.Seed))
	base := Uniform(Params{M: p.M, Classes: p.Classes, JobsPer: p.JobsPer,
		MaxSetup: p.MaxSetup, MaxJob: p.MaxJob, Seed: p.Seed ^ 0x5eed})
	return driftTrace(base, rng, steps, func(rng *rand.Rand, mirror *sched.Instance) sched.Delta {
		switch rng.Intn(6) {
		case 0:
			return pickAddJobs(rng, mirror, p.MaxJob)
		case 1:
			return pickRemoveJob(rng, mirror)
		case 2:
			c := rng.Intn(len(mirror.Classes))
			return sched.Delta{Op: sched.DeltaSetSetup, Class: c, Setup: rng.Int63n(p.MaxSetup + 1)}
		case 3:
			return pickAddClass(rng, p)
		case 4:
			return sched.Delta{Op: sched.DeltaRemoveClass, Class: rng.Intn(len(mirror.Classes))}
		default:
			return sched.Delta{Op: sched.DeltaSetMachines, M: 1 + rng.Int63n(2*p.M)}
		}
	})
}

// DriftRegimes lists the delta-trace catalog in a stable order.
var DriftRegimes = []DriftRegime{
	{"churn", "steady-state job churn: arrivals and departures over a fixed fleet", Churn},
	{"setupdrift", "setup times random-walk; batch boundaries move while load stays put", SetupDrift},
	{"scale", "machine count doubles/halves under light churn; warm seeds must re-cold", MachineScale},
	{"grow", "monotone online arrivals from a small base; upper seeds shift by arrived load", Growth},
	{"mixed", "every delta op equiprobable; the unbiased control", Mixed},
}

// DriftByName returns the named drift regime.
func DriftByName(name string) (DriftRegime, error) {
	for _, r := range DriftRegimes {
		if r.Name == name {
			return r, nil
		}
	}
	return DriftRegime{}, fmt.Errorf("schedgen: unknown drift regime %q (known: %s)",
		name, strings.Join(DriftNames(), ", "))
}

// DriftNames returns the drift catalog's regime names in stable order.
func DriftNames() []string {
	out := make([]string, len(DriftRegimes))
	for i, r := range DriftRegimes {
		out[i] = r.Name
	}
	return out
}

// SelectDrift resolves a comma-separated regime list; "all" (or "")
// selects the whole catalog.  Duplicates are removed, order follows the
// catalog.
func SelectDrift(spec string) ([]DriftRegime, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "all" {
		return append([]DriftRegime(nil), DriftRegimes...), nil
	}
	want := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, err := DriftByName(name); err != nil {
			return nil, err
		}
		want[name] = true
	}
	var out []DriftRegime
	for _, r := range DriftRegimes {
		if want[r.Name] {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("schedgen: empty drift regime selection %q", spec)
	}
	return out, nil
}

// EncodeTrace writes a trace as NDJSON, one event per line.
func EncodeTrace(w io.Writer, events []TraceEvent) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeTrace parses an NDJSON trace and checks its shape: the first
// event must carry the base instance (which must validate), every event
// must carry exactly one of base/delta/solve, and only the first may be a
// base.  Delta validity against the evolving instance is the replayer's
// business (stream.Session rejects invalid deltas at apply time).
func DecodeTrace(r io.Reader) ([]TraceEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	var events []TraceEvent
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var ev TraceEvent
		if err := json.Unmarshal([]byte(raw), &ev); err != nil {
			return nil, fmt.Errorf("schedgen: trace line %d: %w", line, err)
		}
		set := 0
		if ev.Base != nil {
			set++
		}
		if ev.Delta != nil {
			set++
		}
		if ev.Solve {
			set++
		}
		if set != 1 {
			return nil, fmt.Errorf("schedgen: trace line %d: want exactly one of base/delta/solve", line)
		}
		if ev.Base != nil {
			if len(events) != 0 {
				return nil, fmt.Errorf("schedgen: trace line %d: base instance must be the first event", line)
			}
			if err := ev.Base.Validate(); err != nil {
				return nil, fmt.Errorf("schedgen: trace line %d: invalid base instance: %w", line, err)
			}
		} else if len(events) == 0 {
			return nil, fmt.Errorf("schedgen: trace line %d: trace must start with a base instance", line)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("schedgen: empty trace")
	}
	return events, nil
}
