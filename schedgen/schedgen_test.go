package schedgen

import (
	"strings"
	"testing"

	"setupsched/sched"
)

func TestAllFamiliesProduceValidInstances(t *testing.T) {
	for _, fam := range Families {
		for seed := int64(0); seed < 20; seed++ {
			in := fam.Make(Params{
				M: 1 + seed%7, Classes: 1 + int(seed)%9, JobsPer: 1 + int(seed)%5,
				MaxSetup: 1 + seed*3, MaxJob: 1 + seed*7, Seed: seed,
			})
			if err := in.Validate(); err != nil {
				t.Fatalf("%s seed %d: %v", fam.Name, seed, err)
			}
			if in.NumClasses() == 0 || in.NumJobs() == 0 {
				t.Fatalf("%s seed %d: empty instance", fam.Name, seed)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	p := Params{M: 4, Classes: 6, JobsPer: 3, MaxSetup: 20, MaxJob: 30, Seed: 99}
	for _, fam := range Families {
		a, b := fam.Make(p), fam.Make(p)
		if !a.Equal(b) {
			t.Errorf("%s: generator not deterministic", fam.Name)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	p := Params{M: 4, Classes: 12, JobsPer: 4, MaxSetup: 50, MaxJob: 80, Seed: 1}
	q := p
	q.Seed = 2
	for _, fam := range Families {
		if fam.Make(p).Fingerprint() == fam.Make(q).Fingerprint() {
			t.Errorf("%s: seeds 1 and 2 collide", fam.Name)
		}
	}
}

func TestFamilyShapes(t *testing.T) {
	p := Params{M: 4, Classes: 40, JobsPer: 4, MaxSetup: 100, MaxJob: 100, Seed: 3}

	// expensive: setups at least half the configured maximum.
	exp := ExpensiveSetups(p)
	for i := range exp.Classes {
		if exp.Classes[i].Setup < p.MaxSetup/2 {
			t.Fatalf("expensive family made cheap setup %d", exp.Classes[i].Setup)
		}
	}
	// smallbatch: batch weights well below max setup + jobs.
	small := SmallBatches(p)
	for i := range small.Classes {
		if small.Classes[i].Setup > p.MaxSetup/8 {
			t.Fatalf("smallbatch family made setup %d", small.Classes[i].Setup)
		}
	}
	// singlejob: every class has exactly one job.
	single := SingleJobClasses(p)
	for i := range single.Classes {
		if len(single.Classes[i].Jobs) != 1 {
			t.Fatalf("singlejob family made %d jobs", len(single.Classes[i].Jobs))
		}
	}
	// zipf produces valid instances with heavy tails (sanity only).
	z := Zipf(p)
	if err := z.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNearHalfClustersAtThreshold(t *testing.T) {
	p := Params{M: 4, Classes: 30, JobsPer: 4, MaxSetup: 100, MaxJob: 64, Seed: 5}
	in := NearHalf(p)
	for i := range in.Classes {
		if in.Classes[i].Setup > p.MaxJob/8 {
			t.Fatalf("nearhalf setup %d above base/8", in.Classes[i].Setup)
		}
		for _, tj := range in.Classes[i].Jobs {
			if tj < p.MaxJob/2-1 || tj > p.MaxJob/2+1 {
				t.Fatalf("nearhalf job %d outside [%d, %d]", tj, p.MaxJob/2-1, p.MaxJob/2+1)
			}
		}
	}
}

func TestZipfClassSizesHeavyTail(t *testing.T) {
	p := Params{M: 4, Classes: 200, JobsPer: 5, MaxSetup: 50, MaxJob: 60, Seed: 11}
	in := ZipfClassSizes(p)
	singles, giant := 0, 0
	for i := range in.Classes {
		switch n := len(in.Classes[i].Jobs); {
		case n == 1:
			singles++
		case n >= 2*p.JobsPer:
			giant++
		}
	}
	if singles == 0 || giant == 0 {
		t.Fatalf("zipfclass tail not heavy: %d singletons, %d giants", singles, giant)
	}
}

func TestExtremes(t *testing.T) {
	p := Params{M: 4, Classes: 25, JobsPer: 3, MaxSetup: 80, MaxJob: 90, Seed: 7}
	for i, cl := range NoSetup(p).Classes {
		if cl.Setup != 0 {
			t.Fatalf("nosetup class %d has setup %d", i, cl.Setup)
		}
	}
	for i, cl := range AllSetup(p).Classes {
		if cl.Setup < p.MaxSetup/2 {
			t.Fatalf("allsetup class %d has cheap setup %d", i, cl.Setup)
		}
		for _, tj := range cl.Jobs {
			if tj != 1 {
				t.Fatalf("allsetup class %d has non-unit job %d", i, tj)
			}
		}
	}
}

func TestManyClassesOneJob(t *testing.T) {
	p := Params{M: 8, Classes: 3, JobsPer: 4, MaxSetup: 60, MaxJob: 50, Seed: 2}
	in := ManyClassesOneJob(p)
	if int64(len(in.Classes)) < 4*p.M {
		t.Fatalf("manyclasses made only %d classes for m=%d", len(in.Classes), p.M)
	}
	for i := range in.Classes {
		if len(in.Classes[i].Jobs) != 1 || in.Classes[i].Jobs[0] != 1 {
			t.Fatalf("manyclasses class %d is not a single unit job", i)
		}
	}
}

func TestOneClassManyJobs(t *testing.T) {
	p := Params{M: 8, Classes: 6, JobsPer: 4, MaxSetup: 60, MaxJob: 50, Seed: 2}
	in := OneClassManyJobs(p)
	if len(in.Classes) != 1 {
		t.Fatalf("oneclass made %d classes", len(in.Classes))
	}
	if got := len(in.Classes[0].Jobs); got != p.Classes*p.JobsPer {
		t.Fatalf("oneclass made %d jobs, want %d", got, p.Classes*p.JobsPer)
	}
}

func TestRationalStressResidue(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := Params{M: 2 + seed%9, Classes: 8, JobsPer: 3, MaxSetup: 40, MaxJob: 70, Seed: seed}
		in := RationalStress(p)
		if err := in.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if in.M > 1 && in.N()%in.M != 1 {
			t.Fatalf("seed %d: N=%d mod m=%d is %d, want 1", seed, in.N(), in.M, in.N()%in.M)
		}
	}
}

// TestDegenerateParams pins the CLI-reachable edge cases: zero classes
// must not panic, negative seeds must still produce valid instances, and
// the self-amplifying families must respect the m*N magnitude contract
// even at the machine-count limit.
func TestDegenerateParams(t *testing.T) {
	if in := RationalStress(Params{M: 4, Classes: 0, JobsPer: 2, MaxSetup: 10, MaxJob: 10, Seed: 1}); len(in.Classes) != 0 {
		t.Fatalf("ratstress invented %d classes from none", len(in.Classes))
	}
	for _, seed := range []int64{-1, -5, -1 << 62} {
		in := MachineSweep(Params{M: 4, Classes: 5, JobsPer: 2, MaxSetup: 10, MaxJob: 10, Seed: seed})
		if err := in.Validate(); err != nil {
			t.Fatalf("msweep seed %d: %v", seed, err)
		}
	}
	huge := ManyClassesOneJob(Params{M: sched.MaxMachines, Classes: 3, JobsPer: 1, MaxSetup: 100, MaxJob: 10, Seed: 1})
	if err := huge.Validate(); err != nil {
		t.Fatalf("manyclasses at the machine limit: %v", err)
	}
}

func TestMachineSweepCoversDecades(t *testing.T) {
	p := Params{M: 4, Classes: 10, JobsPer: 3, MaxSetup: 30, MaxJob: 40}
	seen := map[int64]bool{}
	for seed := int64(0); seed < 11; seed++ {
		p.Seed = seed
		in := MachineSweep(p)
		if err := in.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		seen[in.M] = true
	}
	if len(seen) < 8 {
		t.Fatalf("msweep produced only %d distinct machine counts over 11 seeds", len(seen))
	}
}

func TestBigJobsHitThresholds(t *testing.T) {
	in := BigJobs(Params{M: 3, Classes: 30, JobsPer: 5, MaxJob: 64, MaxSetup: 10, Seed: 1})
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// The family must actually produce jobs above half the base size.
	big := 0
	for i := range in.Classes {
		for _, tj := range in.Classes[i].Jobs {
			if tj > 32 {
				big++
			}
		}
	}
	if big == 0 {
		t.Error("bigjobs family produced no big jobs")
	}
	_ = sched.Splittable
}

func TestByName(t *testing.T) {
	f, err := ByName("uniform")
	if err != nil || f.Name != "uniform" {
		t.Errorf("ByName(uniform) = %v, %v", f.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestCatalogSelfDescribing(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range Families {
		if f.Name == "" || f.Description == "" || f.Make == nil {
			t.Fatalf("family %+v not self-describing", f.Name)
		}
		if seen[f.Name] {
			t.Fatalf("duplicate family name %q", f.Name)
		}
		seen[f.Name] = true
	}
	if len(Names()) != len(Families) {
		t.Fatalf("Names() returned %d entries for %d families", len(Names()), len(Families))
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("all")
	if err != nil || len(all) != len(Families) {
		t.Fatalf("Select(all) = %d families, %v", len(all), err)
	}
	got, err := Select("zipf, uniform,uniform")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "uniform" || got[1].Name != "zipf" {
		names := make([]string, len(got))
		for i, f := range got {
			names[i] = f.Name
		}
		t.Fatalf("Select order/dedup wrong: %s", strings.Join(names, ","))
	}
	if _, err := Select("uniform,bogus"); err == nil {
		t.Error("Select accepted unknown family")
	}
	if _, err := Select(" , "); err == nil {
		t.Error("Select accepted blank selection")
	}
}
