// Package setupsched implements near-linear approximation algorithms for
// makespan scheduling with batch setup times on identical parallel
// machines, reproducing
//
//	Max A. Deppert and Klaus Jansen.
//	"Near-Linear Approximation Algorithms for Scheduling Problems with
//	Batch Setup Times".  SPAA 2019.  https://arxiv.org/abs/1810.01223
//
// # Problem
//
// n jobs are partitioned into c classes; machine u must run a setup s_i
// before processing jobs of class i whenever it starts class i or switches
// to it from another class.  Setups are never preempted.  The objective is
// to minimize the makespan.  Three flavors are supported:
//
//   - Splittable (P|split,setup=s_i|Cmax): jobs may be preempted and
//     processed on several machines in parallel.
//   - Preemptive (P|pmtn,setup=s_i|Cmax): jobs may be preempted but run on
//     at most one machine at a time.
//   - NonPreemptive (P|setup=s_i|Cmax): jobs run in one piece.
//
// # Algorithms
//
// For every flavor the package provides, matching the paper:
//
//   - a 2-approximation in O(n)                              (Theorem 1)
//   - a (3/2+eps)-approximation in O(n log 1/eps)            (Theorem 2)
//   - an exact 3/2-approximation:
//     splittable    in O(n + c log(c+m))  via Class Jumping  (Theorem 3)
//     preemptive    in O(n log n)         via Class Jumping  (Theorem 6)
//     non-preemptive in O(n log(n+Delta)) via binary search  (Theorem 8)
//
// All makespan decisions use exact rational arithmetic with 128-bit
// intermediate products, so the stated approximation ratios are hard
// guarantees, not floating-point approximations.  Every Result carries a
// certified lower bound on OPT derived from rejected dual guesses.
//
// # Quick start
//
//	in := &setupsched.Instance{
//		M: 3,
//		Classes: []setupsched.Class{
//			{Setup: 4, Jobs: []int64{7, 2, 5}},
//			{Setup: 1, Jobs: []int64{3, 3}},
//		},
//	}
//	res, err := setupsched.Solve(in, setupsched.NonPreemptive, nil)
//	if err != nil { ... }
//	fmt.Println(res.Makespan, res.LowerBound, res.Ratio)
//
// # Serving
//
// Package setupsched/serve exposes the solvers as a long-running HTTP/JSON
// service (run with cmd/schedserve): single and streaming-batch solve
// endpoints backed by a bounded worker pool, plus an LRU result cache
// keyed by sched.Instance.Fingerprint, a canonical-form hash invariant
// under permutation of classes and of jobs within a class.  Cached
// results are re-checked with Verify before they are served.
//
// See the examples/ directory for runnable end-to-end scenarios and
// DESIGN.md for the system inventory and reproduction notes.
package setupsched
