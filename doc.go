// Package setupsched implements near-linear approximation algorithms for
// makespan scheduling with batch setup times on identical parallel
// machines, reproducing
//
//	Max A. Deppert and Klaus Jansen.
//	"Near-Linear Approximation Algorithms for Scheduling Problems with
//	Batch Setup Times".  SPAA 2019.  https://arxiv.org/abs/1810.01223
//
// # Problem
//
// n jobs are partitioned into c classes; machine u must run a setup s_i
// before processing jobs of class i whenever it starts class i or switches
// to it from another class.  Setups are never preempted.  The objective is
// to minimize the makespan.  Three flavors are supported:
//
//   - Splittable (P|split,setup=s_i|Cmax): jobs may be preempted and
//     processed on several machines in parallel.
//   - Preemptive (P|pmtn,setup=s_i|Cmax): jobs may be preempted but run on
//     at most one machine at a time.
//   - NonPreemptive (P|setup=s_i|Cmax): jobs run in one piece.
//
// # Algorithms
//
// For every flavor the package provides, matching the paper:
//
//   - a 2-approximation in O(n)                              (Theorem 1)
//   - a (3/2+eps)-approximation in O(n log 1/eps)            (Theorem 2)
//   - an exact 3/2-approximation:
//     splittable    in O(n + c log(c+m))  via Class Jumping  (Theorem 3)
//     preemptive    in O(n log n)         via Class Jumping  (Theorem 6)
//     non-preemptive in O(n log(n+Delta)) via binary search  (Theorem 8)
//
// All makespan decisions use exact rational arithmetic with 128-bit
// intermediate products, so the stated approximation ratios are hard
// guarantees, not floating-point approximations.  Every Result carries a
// certified lower bound on OPT derived from rejected dual guesses.
//
// # Quick start
//
//	in := &setupsched.Instance{
//		M: 3,
//		Classes: []setupsched.Class{
//			{Setup: 4, Jobs: []int64{7, 2, 5}},
//			{Setup: 1, Jobs: []int64{3, 3}},
//		},
//	}
//	solver, err := setupsched.NewSolver(in)
//	if err != nil { ... }
//	res, err := solver.Solve(ctx, setupsched.NonPreemptive)
//	if err != nil { ... }
//	fmt.Println(res.Makespan, res.LowerBound, res.Ratio)
//
// # Solver API
//
// A Solver is created once per instance and reused: NewSolver validates
// the instance and runs the O(n) preparation that every algorithm and
// every dual test shares, so repeated solves — across variants,
// algorithms, or a stream of probe requests — skip it.  All methods are
// context-first and safe for concurrent use:
//
//	solver, err := setupsched.NewSolver(in)
//	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
//	defer cancel()
//	res, err := solver.Solve(ctx, setupsched.Preemptive,
//		setupsched.WithAlgorithm(setupsched.EpsilonSearch),
//		setupsched.WithEpsilon(1e-6),
//		setupsched.WithProbeLimit(64),
//		setupsched.WithObserver(myMetrics))
//
// A canceled or expired context aborts the search between probes with an
// error matching both ErrCanceled and the context's own error; no
// partial schedule is returned.  The searches are sequences of dual-test
// evaluations ("probes") at makespan guesses T; an Observer registered
// with WithObserver sees every probe live, and Result.Trace records the
// full sequence after the fact.
//
// # Concurrency and parallelism
//
// A Solver is immutable after NewSolver and safe for concurrent use: any
// number of goroutines may call Solve, SolveAll, DualTest and LowerBound
// on one Solver simultaneously, all sharing the one prepared instance.
// On top of that, two knobs parallelize a single logical request:
//
//   - Solve with WithParallelism(n) probes speculatively: the dual
//     search evaluates up to n candidate guesses concurrently per round
//     and keeps the tightest accept/reject bracket.  The accepted guess,
//     certified lower bound and schedule are bit-identical to the serial
//     search; only latency, Probes and the Trace length change.
//   - SolveAll solves many (variant, algorithm) combinations — by
//     default the paper's nine, see PaperRuns and WithRuns — off the one
//     shared preparation, with WithParallelism(n) bounding the number of
//     concurrent runs and results reported in deterministic (requested)
//     order.
//
// Observer event ordering: one solve emits its events sequentially from
// the goroutine coordinating it, never concurrently.  A speculative
// batch of k guesses is reported as a block — k ProbeStarted calls in
// ascending-T order before any evaluation runs, then the k matching
// ProbeFinished calls in the same order.  An Observer shared by several
// concurrent solves (one metrics sink behind a server, or any Observer
// passed to SolveAll) must be safe for concurrent use.  Result.Trace
// stays execution-ordered and deduplicated by guess under speculation.
//
// The whole tree runs race-clean (go test -race ./..., enforced in CI),
// and internal/diff cross-checks the parallel engine's bit-identity
// against the serial path over the full schedgen catalog.
//
// # Observability
//
// Package setupsched/obs builds on the Observer seam: an obs.ProbeCounter
// feeds probe events into an atomic counter with zero allocations per
// probe, and an obs.SpanRecorder assembles a solve-lifecycle span tree —
// prepare (the shared O(n) preprocessing), search (one child per dual
// test, recording the guess T and its accept/reject outcome) and build
// (schedule construction) — mirroring the phase structure of the paper's
// algorithms.  Both satisfy Observer directly; neither changes answers.
// The same package provides the metrics core (counters, gauges,
// fixed-bucket histograms) and the Prometheus text exposition behind
// serve's GET /metrics.  See the README's "Observability" section and
// ALGORITHMS.md for the span-name-to-paper-phase map.
//
// See ALGORITHMS.md for the paper-to-code map of all nine algorithms and
// the search machinery the parallel engine plugs into.
//
// # Incremental sessions
//
// A Solver is immutable by design; absorbing instance mutation is the
// job of package setupsched/stream.  A stream.Session wraps a private
// mutable instance, applies deltas (sched.Delta: job churn, setup drift,
// class add/remove, machine scaling) by patching the shared preparation
// in O(|delta|) instead of re-running the O(n) pass, and re-solves
// warm: the exact searches are seeded with the previous certified
// [reject, accept] bracket — the previous threshold probed first, the
// delta-shifted bound second — so a stream of small edits re-certifies
// in O(1)-ish probes per change.  The contract is bit-identity: at
// every revision a session solve returns exactly what a fresh
// NewSolver + Solve of the current instance returns (probe counts and
// traces excepted — warm solves run fewer probes).  The eps-search
// always re-solves cold, because its certified pair is a function of
// the full bisection trajectory; warm solves that land on a documented
// bounded-round fallback are discarded and re-run cold for the same
// reason.  internal/diff replays generated drift traces through
// sessions and fresh solvers side by side to enforce all of this
// (tier-1, schedstress -drift, FuzzSessionDeltas).
//
// Migration from the legacy free functions (kept as deprecated shims):
//
//	Solve(in, v, &Options{Algorithm: a, Epsilon: e})  ->  NewSolver(in); s.Solve(ctx, v, WithAlgorithm(a), WithEpsilon(e))
//	DualTest(in, v, T)                                ->  NewSolver(in); s.DualTest(ctx, v, T)
//	LowerBound(in, v)                                 ->  NewSolver(in); s.LowerBound(v)
//
// Errors are typed: ErrNilInstance, *ValidationError (bad instance),
// *EpsilonRangeError (epsilon outside (0, 1)), ErrCanceled (context),
// ErrProbeLimit (budget from WithProbeLimit exhausted).
//
// # Serving
//
// Package setupsched/serve exposes the solvers as a long-running HTTP/JSON
// service (run with cmd/schedserve): single and streaming-batch solve
// endpoints backed by a bounded worker pool, plus an LRU result cache
// keyed by sched.Instance.Fingerprint, a canonical-form hash invariant
// under permutation of classes and of jobs within a class.  Cached
// results are re-checked with Verify before they are served.  The
// service keeps one prepared Solver per fingerprint, honors per-request
// timeouts, client-disconnect cancellation and a per-request parallelism
// knob (speculative probing, clamped server-side), and reports
// probe-level search metrics plus the process's goroutine posture on
// /v1/stats.  Stateful delta traffic goes through the /v1/sessions
// endpoints, which keep stream.Sessions alive server-side under TTL and
// LRU eviction; a saturated batch worker pool answers 429 with
// Retry-After instead of queueing unboundedly.
//
// # Scaling out
//
// One serve process is the unit of deployment; package setupsched/shard
// and cmd/schedlb compose k of them into one horizontally scaled
// service.  shard provides the pluggable Store interface behind serve's
// result, solver and session state (in-memory today, external
// tomorrow) and a consistent-hash Ring (1024 virtual nodes per shard)
// that routes stateless solves by canonical instance fingerprint and
// session traffic by session id.  schedlb is the stateless front tier:
// it pins session ids at create time, fans /v1/solve/batch lines
// across owning shards merging responses in arrival order, retries
// idempotent requests once on connection failure, and verifies every
// response's X-Sched-Shard echo against its own ring (misroutes are
// counted; the contract is zero).  Topology changes migrate sessions
// by drain + snapshot import with solves bit-identical to fresh solves
// of the moved instances.  cmd/schedload is the multi-process
// load-test harness proving the contract and recording the latency/RPS
// trajectory in BENCH_serve.json.
//
// # Testing
//
// Package setupsched/schedgen generates deterministic, seed-reproducible
// adversarial instances, one self-describing family per structural regime
// of the paper's analysis (cheap/expensive setups, single-job classes,
// jobs at the T/2 threshold, heavy-tailed class sizes, all-setup and
// no-setup extremes, rational-ratio stress, machine-count sweeps).  On
// top of it, the differential harness internal/diff solves every family
// with all nine paper algorithms, re-checks each result with Verify,
// asserts the measured ratios against the per-variant guarantees, and
// cross-checks certified bounds and makespans against exhaustive optima
// (internal/exact) on small instances and against baseline and
// cross-variant bounds otherwise.  cmd/schedstress exposes the harness as
// a soak CLI; native fuzz targets (FuzzFingerprintCanonicalRoundTrip,
// FuzzVerifySchedule) guard the canonicalization and verification trust
// boundaries.
//
// See the examples/ directory for runnable end-to-end scenarios and
// DESIGN.md for the system inventory and reproduction notes.
package setupsched
