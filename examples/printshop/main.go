// Printshop: non-preemptive scheduling of print jobs on identical presses.
//
// Each paper stock / ink combination is a class: switching a press to a
// different combination requires a washup-and-plate setup.  Jobs cannot be
// interrupted once started (a print run is atomic), so this is the
// non-preemptive variant P|setup=s_i|Cmax.
//
// The example compares the paper's exact 3/2-approximation with the
// 2-approximation and a classical LPT whole-batch baseline on a month of
// synthetic orders, and prints how much of the makespan the setups claim.
//
// Run with:  go run ./examples/printshop
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"setupsched"
	"setupsched/sched"
)

func main() {
	rng := rand.New(rand.NewSource(2019))

	// 14 stock/ink combinations with washup setups between 20 and 90
	// minutes; run lengths between 15 minutes and 6 hours.
	const presses = 6
	in := &setupsched.Instance{M: presses}
	for c := 0; c < 14; c++ {
		cls := setupsched.Class{Setup: 20 + rng.Int63n(71)}
		orders := 3 + rng.Intn(9)
		for j := 0; j < orders; j++ {
			cls.Jobs = append(cls.Jobs, 15+rng.Int63n(346))
		}
		in.Classes = append(in.Classes, cls)
	}
	fmt.Printf("print shop: %d presses, %d stock/ink classes, %d orders, total work+setups %d min\n\n",
		in.M, in.NumClasses(), in.NumJobs(), in.N())

	// One Solver runs all three algorithms on the shared preparation.
	solver, err := setupsched.NewSolver(in)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	type row struct {
		name string
		res  *setupsched.Result
	}
	var rows []row
	for _, r := range []struct {
		name string
		opts []setupsched.Option
	}{
		{"exact 3/2 (binary search)", []setupsched.Option{setupsched.WithAlgorithm(setupsched.Exact32)}},
		{"(3/2+eps) dual search", []setupsched.Option{
			setupsched.WithAlgorithm(setupsched.EpsilonSearch), setupsched.WithEpsilon(1e-4)}},
		{"2-approximation", []setupsched.Option{setupsched.WithAlgorithm(setupsched.TwoApprox)}},
	} {
		res, err := solver.Solve(ctx, setupsched.NonPreemptive, r.opts...)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Schedule.Validate(in); err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{r.name, res})
	}

	lb := rows[0].res.LowerBound
	fmt.Printf("%-28s %10s %12s %8s %8s\n", "algorithm", "makespan", "vs OPT>=", "setups", "machines")
	for _, r := range rows {
		fmt.Printf("%-28s %10s %11.4fx %8d %8d\n",
			r.name,
			r.res.Makespan,
			r.res.Makespan.Float64()/lb.Float64(),
			r.res.Schedule.SetupCount(),
			r.res.Schedule.MachineCount())
	}

	// Setup overhead of the best schedule.
	best := rows[0].res.Schedule
	var setupTime sched.Rat
	for _, run := range best.Runs {
		for _, sl := range run.Slots {
			if sl.Kind == sched.SlotSetup {
				setupTime = setupTime.Add(sl.End.Sub(sl.Start).MulInt(run.Count))
			}
		}
	}
	fmt.Printf("\nbest schedule spends %s min on washups (%.1f%% of press time %s*%d)\n",
		setupTime, 100*setupTime.Float64()/(best.Makespan().Float64()*float64(presses)),
		best.Makespan(), presses)
}
