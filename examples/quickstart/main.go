// Quickstart: build a small instance, solve it under all three problem
// variants, and print the schedules.
//
// Run with:  go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"setupsched"
)

func main() {
	// Three machines; three job classes.  Class 0 has an expensive setup
	// (e.g. a long tool change), class 1 is cheap, class 2 is in between.
	in := &setupsched.Instance{
		M: 3,
		Classes: []setupsched.Class{
			{Setup: 9, Jobs: []int64{6, 4}},
			{Setup: 1, Jobs: []int64{3, 3, 2}},
			{Setup: 4, Jobs: []int64{7, 2, 5}},
		},
	}

	// One Solver validates and prepares the instance once; every solve
	// below reuses that preparation.
	solver, err := setupsched.NewSolver(in)
	if err != nil {
		log.Fatal(err)
	}

	// A context bounds each solve; here a generous safety timeout.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()

	for _, v := range []setupsched.Variant{
		setupsched.Splittable, setupsched.Preemptive, setupsched.NonPreemptive,
	} {
		res, err := solver.Solve(ctx, v) // no options = exact 3/2-approximation
		if err != nil {
			log.Fatal(err)
		}
		// Every result is verifiable: the schedule re-validates against the
		// instance, and the lower bound certifies the quality.
		if err := res.Schedule.Validate(in); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s makespan=%-8s OPT>=%-8s ratio<=%.3f  (%s, %d probes)\n",
			v, res.Makespan, res.LowerBound, res.Ratio, res.Algorithm, res.Probes)
		// Result.Trace records the search: every guess T and its verdict.
		for _, p := range res.Trace {
			fmt.Printf("    probe T=%-8s accepted=%v\n", p.T, p.Accepted)
		}
	}

	// The dual test is available directly: either build a schedule with
	// makespan <= 3/2*T or learn that T < OPT.
	T := setupsched.Rat{}.AddInt(14)
	ok, s, err := solver.DualTest(ctx, setupsched.NonPreemptive, T)
	if err != nil {
		log.Fatal(err)
	}
	if ok {
		fmt.Printf("\ndual test at T=%s: accepted, schedule with makespan %s <= 3/2*T\n", T, s.Makespan())
	} else {
		fmt.Printf("\ndual test at T=%s: rejected, so the optimum exceeds %s\n", T, T)
	}
}
