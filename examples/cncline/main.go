// CNC line: preemptive scheduling of machining operations with tool-group
// setups.
//
// Parts are grouped by the tool configuration they need (the class);
// mounting a tool group on a machining center takes significant time (the
// setup).  An operation may be interrupted and resumed later -- also on a
// different center after a new setup -- but a single part is never worked
// on by two centers at once.  That is exactly the preemptive variant
// P|pmtn,setup=s_i|Cmax, whose 3/2-approximation (Theorem 6) is the
// paper's main result, improving on the 2-approximation of Monma & Potts
// that had stood since 1993.
//
// Run with:  go run ./examples/cncline
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"setupsched"
	"setupsched/internal/render"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// 5 machining centers; 8 tool groups; operation times 10-90 min;
	// tool-group mounts 25-120 min.
	in := &setupsched.Instance{M: 5}
	for g := 0; g < 8; g++ {
		cls := setupsched.Class{Setup: 25 + rng.Int63n(96)}
		parts := 2 + rng.Intn(6)
		for p := 0; p < parts; p++ {
			cls.Jobs = append(cls.Jobs, 10+rng.Int63n(81))
		}
		in.Classes = append(in.Classes, cls)
	}
	fmt.Printf("CNC line: %d centers, %d tool groups, %d operations\n\n",
		in.M, in.NumClasses(), in.NumJobs())

	// One Solver, three solves: the preemptive optimum can be strictly
	// better than any non-preemptive schedule; compare both variants plus
	// the classical 2-approximation bound.  The per-instance preparation
	// is shared by all three runs.
	solver, err := setupsched.NewSolver(in)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	pmtn, err := solver.Solve(ctx, setupsched.Preemptive)
	if err != nil {
		log.Fatal(err)
	}
	nonp, err := solver.Solve(ctx, setupsched.NonPreemptive)
	if err != nil {
		log.Fatal(err)
	}
	two, err := solver.Solve(ctx, setupsched.Preemptive,
		setupsched.WithAlgorithm(setupsched.TwoApprox))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range []*setupsched.Result{pmtn, nonp, two} {
		if err := r.Schedule.Validate(in); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("%-34s %10s %10s %8s\n", "algorithm", "makespan", "OPT >=", "ratio<=")
	fmt.Printf("%-34s %10s %10s %8.4f\n", "preemptive 3/2 (this paper)", pmtn.Makespan, pmtn.LowerBound, pmtn.Ratio)
	fmt.Printf("%-34s %10s %10s %8.4f\n", "non-preemptive 3/2 (this paper)", nonp.Makespan, nonp.LowerBound, nonp.Ratio)
	fmt.Printf("%-34s %10s %10s %8.4f\n", "preemptive 2-approx (Monma-Potts)", two.Makespan, two.LowerBound, two.Ratio)

	fmt.Println("\npreemptive schedule (tool mounts uppercase, machining lowercase):")
	fmt.Print(render.Legend(in))
	fmt.Print(render.Gantt(pmtn.Schedule, &render.Options{T: pmtn.Guess, Width: 90}))
}
