// Renderfarm: splittable scheduling of frame batches on a render cluster.
//
// Every scene is a class: before a node renders frames of a scene it must
// load the scene's assets (the setup).  Frames are embarrassingly parallel
// -- a scene's remaining frames can run on any number of nodes at once --
// so this is the splittable variant P|split,setup=s_i|Cmax.  The paper's
// Class Jumping algorithm (Theorem 3) runs in O(n + c log(c+m)) and is
// exercised here on a cluster far larger than the job count of some
// scenes, which the schedule represents with compressed machine runs.
//
// Run with:  go run ./examples/renderfarm
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"setupsched"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// 40 scenes; asset loads of 30-300 seconds; frames of 5-120 seconds.
	in := &setupsched.Instance{M: 512}
	for sc := 0; sc < 40; sc++ {
		cls := setupsched.Class{Setup: 30 + rng.Int63n(271)}
		frames := 20 + rng.Intn(400)
		for f := 0; f < frames; f++ {
			cls.Jobs = append(cls.Jobs, 5+rng.Int63n(116))
		}
		in.Classes = append(in.Classes, cls)
	}
	fmt.Printf("render farm: %d nodes, %d scenes, %d frames, %d s of work+setups\n\n",
		in.M, in.NumClasses(), in.NumJobs(), in.N())

	ctx := context.Background()
	solver, err := setupsched.NewSolver(in)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := solver.Solve(ctx, setupsched.Splittable)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	if err := res.Schedule.Validate(in); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("algorithm:     %s (solved in %v)\n", res.Algorithm, elapsed.Round(time.Microsecond))
	fmt.Printf("makespan:      %s s\n", res.Makespan)
	fmt.Printf("optimum is >=  %s s  (certified)\n", res.LowerBound)
	fmt.Printf("ratio at most  %.4f  (guarantee: 1.5)\n", res.Ratio)
	fmt.Printf("nodes used:    %d of %d\n", res.Schedule.MachineCount(), in.M)
	fmt.Printf("asset loads:   %d (scene switches across the farm)\n", res.Schedule.SetupCount())
	fmt.Printf("run-compressed rows in schedule: %d (distinct machine configurations)\n\n", len(res.Schedule.Runs))

	// Doubling the cluster should cut the makespan roughly in half until
	// setups dominate -- sweep it.
	fmt.Println("cluster scaling sweep (exact 3/2 algorithm):")
	fmt.Printf("%8s %12s %12s\n", "nodes", "makespan", "ratio<=")
	for _, m := range []int64{64, 128, 256, 512, 1024, 4096} {
		cp := in.Clone()
		cp.M = m
		sv, err := setupsched.NewSolver(cp)
		if err != nil {
			log.Fatal(err)
		}
		r, err := sv.Solve(ctx, setupsched.Splittable)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12s %12.4f\n", m, r.Makespan, r.Ratio)
	}
}
