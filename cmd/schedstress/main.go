// Command schedstress soaks the solvers with generated adversarial
// instances and differentially verifies every paper guarantee: each
// instance is solved by all nine algorithms through the public Solver API,
// every result is re-checked with setupsched.Verify, measured ratios are
// asserted against the per-variant guarantees, and — on instances small
// enough for exhaustive search — certified bounds and makespans are
// checked against true optima (plus baseline and cross-variant sanity).
//
// Usage:
//
//	schedstress [-families all] [-profiles all] [-seeds 20] [-seedbase 0]
//	            [-workers NumCPU] [-parallelism 1] [-crosscheck 0]
//	            [-duration 0] [-eps 1e-3] [-maxviol 20] [-progress 10s] [-v]
//	schedstress -drift [-regimes all] [-steps 24] ...
//
//	schedstress -families all -seeds 50          # one full verified sweep
//	schedstress -duration 10s                    # soak until the clock runs out
//	schedstress -families nearhalf,ratstress -v  # drill into two regimes
//	schedstress -parallelism 4 -crosscheck 4     # exercise + verify the parallel engine
//	schedstress -drift -seeds 10                 # incremental-vs-fresh identity soak
//
// With -drift the soak switches to the streaming layer: schedgen drift
// traces (job churn, setup drift, machine scaling) are replayed through
// stream.Sessions and every solve point is checked bit-for-bit against a
// fresh cold solve (see internal/diff.CheckSessionTrace).
//
// During a stateless soak a one-line progress report (instances, solves,
// violations, and p50/p99 per-instance check latency from a shared
// histogram) is printed to stderr every -progress interval, and the final
// report includes the latency quantiles over the whole run.
//
// Every violation is printed with the (family-or-regime, profile, seed)
// triple that regenerates the offending instance or trace.  Exit status:
// 0 all checks passed, 1 violations found, 2 usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"setupsched/internal/diff"
	"setupsched/obs"
	"setupsched/schedgen"
)

func main() {
	os.Exit(run())
}

func run() int {
	families := flag.String("families", "all", "comma-separated schedgen families, or 'all'")
	profiles := flag.String("profiles", "all", "comma-separated size profiles (tiny, small, medium), or 'all'")
	seeds := flag.Int64("seeds", 20, "seeds per (family, profile) pair and round")
	seedBase := flag.Int64("seedbase", 0, "first seed of the sweep")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel check workers")
	parallelism := flag.Int("parallelism", 1, "per-instance SolveAll fan-out width (each instance's nine algorithms solved concurrently)")
	crossCheck := flag.Int("crosscheck", 0, "if > 1, also verify the parallel engine (fan-out + speculative probing at this width) is bit-identical to the serial path")
	duration := flag.Duration("duration", 0, "keep sweeping fresh seeds until this much time has passed (0 = one sweep)")
	eps := flag.Float64("eps", diff.DefaultEpsilon, "accuracy of the eps-search specs")
	exactBudget := flag.Int64("exactbudget", 0, "if > 0, run the branch-and-bound exact reference per instance with this node budget (true-ratio checks where it converges, certified OPT brackets where it does not)")
	maxViol := flag.Int("maxviol", 20, "stop after this many violations (0 = unlimited)")
	drift := flag.Bool("drift", false, "soak the streaming session layer on drift traces instead of stateless instances")
	regimes := flag.String("regimes", "all", "with -drift: comma-separated drift regimes, or 'all'")
	steps := flag.Int("steps", 24, "with -drift: deltas per generated trace")
	progressEvery := flag.Duration("progress", 10*time.Second, "periodic one-line progress report interval, stateless soak only (0 disables)")
	verbose := flag.Bool("v", false, "per-round progress output")
	flag.Parse()

	fams, err := schedgen.Select(*families)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedstress:", err)
		return 2
	}
	profs, err := diff.ProfilesByNames(*profiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedstress:", err)
		return 2
	}
	if *seeds <= 0 {
		fmt.Fprintln(os.Stderr, "schedstress: -seeds must be positive")
		return 2
	}

	ctx := context.Background()
	var cancel context.CancelFunc
	if *duration > 0 {
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	if *drift {
		regs, err := schedgen.SelectDrift(*regimes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedstress:", err)
			return 2
		}
		return runDrift(ctx, regs, profs, *seeds, *seedBase, *steps, *eps, *workers, *maxViol, *duration, *verbose)
	}

	total := &diff.Summary{MaxRatioVsLB: map[string]float64{}}
	start := time.Now()
	rounds := 0

	// Shared across all rounds: the per-instance check-latency histogram
	// and the running totals the progress reporter reads.
	hist := obs.NewHistogram(obs.DefaultLatencyBuckets()...)
	var liveInstances, liveSolves, liveViolations atomic.Int64
	if *progressEvery > 0 {
		ticker := time.NewTicker(*progressEvery)
		done := make(chan struct{})
		defer close(done)
		go func() {
			defer ticker.Stop()
			for {
				select {
				case <-done:
					return
				case <-ticker.C:
					p50, _, p99 := hist.P50P90P99()
					fmt.Fprintf(os.Stderr,
						"schedstress: progress: %d instances, %d solves, %d violations, check p50 %.1fms p99 %.1fms (%.0fs elapsed)\n",
						liveInstances.Load(), liveSolves.Load(), liveViolations.Load(),
						p50*1e3, p99*1e3, time.Since(start).Seconds())
				}
			}
		}()
	}

	for {
		// The Progress hook reports per-round totals; offset by what the
		// earlier rounds accumulated so the live counters never reset.
		baseInstances, baseSolves := total.Instances, total.Solves
		baseViolations := int64(len(total.Violations))
		cfg := diff.Config{
			Families: fams, Profiles: profs,
			Seeds: *seeds, SeedBase: *seedBase + int64(rounds)*(*seeds),
			Epsilon: *eps, ExactNodeBudget: *exactBudget,
			Workers: *workers, MaxViolations: *maxViol,
			Parallelism: *parallelism, CrossCheckParallel: *crossCheck,
			Observe: hist.ObserveDuration,
			Progress: func(instances, solves int64, violations int) {
				liveInstances.Store(baseInstances + instances)
				liveSolves.Store(baseSolves + solves)
				liveViolations.Store(baseViolations + int64(violations))
			},
		}
		sum, err := diff.Run(ctx, cfg)
		merge(total, sum)
		rounds++
		if *verbose {
			fmt.Printf("round %d: seeds [%d, %d), %d instances, %d solves, %d violations (%.1fs elapsed)\n",
				rounds, cfg.SeedBase, cfg.SeedBase+cfg.Seeds,
				sum.Instances, sum.Solves, len(sum.Violations), time.Since(start).Seconds())
		}
		// Only the soak deadline itself is a clean stop; any other error is
		// an infrastructure failure that must fail the run even if the
		// deadline has since expired.
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			report(total, rounds, time.Since(start))
			fmt.Fprintln(os.Stderr, "schedstress:", err)
			return 2
		}
		stop := *duration <= 0 || ctx.Err() != nil
		if *maxViol > 0 && len(total.Violations) >= *maxViol {
			stop = true
		}
		if stop {
			break
		}
	}

	report(total, rounds, time.Since(start))
	if n := hist.Count(); n > 0 {
		p50, p90, p99 := hist.P50P90P99()
		fmt.Printf("  instance check latency: p50 %.1fms p90 %.1fms p99 %.1fms max %.1fms (%d checks)\n",
			p50*1e3, p90*1e3, p99*1e3, hist.Max()*1e3, n)
	}
	if len(total.Violations) > 0 {
		return 1
	}
	return 0
}

// runDrift is the -drift soak loop: sweep drift traces until the clock
// (or the single sweep) runs out, mirroring the stateless soak's round
// structure so seeds never repeat across rounds.
func runDrift(ctx context.Context, regimes []schedgen.DriftRegime, profs []diff.Profile,
	seeds, seedBase int64, steps int, eps float64, workers, maxViol int,
	duration time.Duration, verbose bool) int {
	total := &diff.DriftSummary{}
	start := time.Now()
	rounds := 0
	for {
		cfg := diff.DriftConfig{
			Regimes: regimes, Profiles: profs,
			Seeds: seeds, SeedBase: seedBase + int64(rounds)*seeds,
			Steps: steps, Epsilon: eps, Workers: workers, MaxViolations: maxViol,
		}
		sum, err := diff.RunDrift(ctx, cfg)
		total.Traces += sum.Traces
		total.Deltas += sum.Deltas
		total.Solves += sum.Solves
		total.WarmHits += sum.WarmHits
		total.CacheHits += sum.CacheHits
		total.Rebuilds += sum.Rebuilds
		total.Violations = append(total.Violations, sum.Violations...)
		rounds++
		if verbose {
			fmt.Printf("drift round %d: seeds [%d, %d), %d traces, %d deltas, %d solves, %d violations (%.1fs elapsed)\n",
				rounds, cfg.SeedBase, cfg.SeedBase+cfg.Seeds,
				sum.Traces, sum.Deltas, sum.Solves, len(sum.Violations), time.Since(start).Seconds())
		}
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			reportDrift(total, rounds, time.Since(start))
			fmt.Fprintln(os.Stderr, "schedstress:", err)
			return 2
		}
		stop := duration <= 0 || ctx.Err() != nil
		if maxViol > 0 && len(total.Violations) >= maxViol {
			stop = true
		}
		if stop {
			break
		}
	}
	reportDrift(total, rounds, time.Since(start))
	if len(total.Violations) > 0 {
		return 1
	}
	return 0
}

func reportDrift(sum *diff.DriftSummary, rounds int, elapsed time.Duration) {
	fmt.Printf("schedstress -drift: %d traces, %d deltas, %d session solves in %d round(s), %.1fs\n",
		sum.Traces, sum.Deltas, sum.Solves, rounds, elapsed.Seconds())
	fmt.Printf("  engine: %d warm hits, %d cache hits, %d prep rebuilds\n",
		sum.WarmHits, sum.CacheHits, sum.Rebuilds)
	if len(sum.Violations) == 0 {
		fmt.Println("  every solve point bit-identical to a fresh solve")
		return
	}
	fmt.Printf("  %d VIOLATIONS:\n", len(sum.Violations))
	for _, v := range sum.Violations {
		fmt.Printf("    %s\n", v)
	}
}

func merge(dst, src *diff.Summary) {
	dst.Instances += src.Instances
	dst.Solves += src.Solves
	dst.ExactNonp += src.ExactNonp
	dst.ExactSplit += src.ExactSplit
	dst.BBBrackets += src.BBBrackets
	dst.Fallbacks += src.Fallbacks
	for name, r := range src.MaxRatioVsLB {
		if r > dst.MaxRatioVsLB[name] {
			dst.MaxRatioVsLB[name] = r
		}
	}
	dst.Violations = append(dst.Violations, src.Violations...)
}

func report(sum *diff.Summary, rounds int, elapsed time.Duration) {
	fmt.Printf("schedstress: %d instances, %d solves in %d round(s), %.1fs\n",
		sum.Instances, sum.Solves, rounds, elapsed.Seconds())
	fmt.Printf("  exact references: %d non-preemptive, %d splittable, %d B&B brackets; %d fallback runs\n",
		sum.ExactNonp, sum.ExactSplit, sum.BBBrackets, sum.Fallbacks)

	names := make([]string, 0, len(sum.MaxRatioVsLB))
	for name := range sum.MaxRatioVsLB {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("  worst measured makespan / certified-bound ratios:")
	for _, name := range names {
		fmt.Printf("    %-14s %.6f\n", name, sum.MaxRatioVsLB[name])
	}

	if len(sum.Violations) == 0 {
		fmt.Println("  all guarantees held")
		return
	}
	fmt.Printf("  %d VIOLATIONS:\n", len(sum.Violations))
	for _, v := range sum.Violations {
		fmt.Printf("    %s\n", v)
	}
}
