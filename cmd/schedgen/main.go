// Command schedgen emits synthetic scheduling instances as JSON, ready to
// be piped into schedsolve.
//
// Usage:
//
//	schedgen [-family uniform] [-m 8] [-classes 20] [-jobs 5]
//	         [-maxsetup 100] [-maxjob 100] [-seed 1]
//
//	schedgen -family bigjobs -m 6 | schedsolve -variant pmtn -gantt
//	schedgen -list   # print the full catalog with descriptions
//
// The catalog lives in package schedgen; -list prints every family and
// the structural regime it stresses.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"setupsched/schedgen"
)

func main() {
	family := flag.String("family", "uniform", "generator family")
	m := flag.Int64("m", 8, "machines")
	classes := flag.Int("classes", 20, "number of classes")
	jobs := flag.Int("jobs", 5, "expected jobs per class")
	maxSetup := flag.Int64("maxsetup", 100, "maximum setup time")
	maxJob := flag.Int64("maxjob", 100, "maximum job processing time")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "print the family catalog with descriptions and exit")
	flag.Parse()

	if *list {
		for _, f := range schedgen.Families {
			fmt.Printf("%-12s %s\n", f.Name, f.Description)
		}
		return
	}

	fam, err := schedgen.ByName(*family)
	if err != nil {
		// The error already lists the known families.
		fmt.Fprintln(os.Stderr, "schedgen:", err)
		os.Exit(2)
	}
	in := fam.Make(schedgen.Params{
		M: *m, Classes: *classes, JobsPer: *jobs,
		MaxSetup: *maxSetup, MaxJob: *maxJob, Seed: *seed,
	})
	if err := in.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "schedgen: generated invalid instance:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(in); err != nil {
		fmt.Fprintln(os.Stderr, "schedgen:", err)
		os.Exit(1)
	}
}
