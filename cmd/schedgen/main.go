// Command schedgen emits synthetic scheduling instances as JSON, ready to
// be piped into schedsolve, and replayable NDJSON delta traces for the
// streaming session layer (stream.Session, schedstream).
//
// Usage:
//
//	schedgen [-family uniform] [-m 8] [-classes 20] [-jobs 5]
//	         [-maxsetup 100] [-maxjob 100] [-seed 1]
//	schedgen -trace churn [-steps 40] ...    # NDJSON delta trace
//
//	schedgen -family bigjobs -m 6 | schedsolve -variant pmtn -gantt
//	schedgen -trace setupdrift | schedstream -check
//	schedgen -list   # print both catalogs with descriptions
//
// The catalogs live in package schedgen; -list prints every instance
// family and every drift regime with the structural regime it stresses.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"setupsched/schedgen"
)

func main() {
	family := flag.String("family", "uniform", "generator family")
	trace := flag.String("trace", "", "emit an NDJSON delta trace from this drift regime instead of one instance")
	steps := flag.Int("steps", 40, "with -trace: number of deltas to generate")
	m := flag.Int64("m", 8, "machines")
	classes := flag.Int("classes", 20, "number of classes")
	jobs := flag.Int("jobs", 5, "expected jobs per class")
	maxSetup := flag.Int64("maxsetup", 100, "maximum setup time")
	maxJob := flag.Int64("maxjob", 100, "maximum job processing time")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "print the family and drift-regime catalogs with descriptions and exit")
	flag.Parse()

	if *list {
		fmt.Println("instance families (-family):")
		for _, f := range schedgen.Families {
			fmt.Printf("  %-12s %s\n", f.Name, f.Description)
		}
		fmt.Println("\ndrift regimes (-trace):")
		for _, r := range schedgen.DriftRegimes {
			fmt.Printf("  %-12s %s\n", r.Name, r.Description)
		}
		return
	}

	p := schedgen.Params{
		M: *m, Classes: *classes, JobsPer: *jobs,
		MaxSetup: *maxSetup, MaxJob: *maxJob, Seed: *seed,
	}

	if *trace != "" {
		regime, err := schedgen.DriftByName(*trace)
		if err != nil {
			// The error already lists the known regimes.
			fmt.Fprintln(os.Stderr, "schedgen:", err)
			os.Exit(2)
		}
		if *steps < 1 {
			fmt.Fprintln(os.Stderr, "schedgen: -steps must be positive")
			os.Exit(2)
		}
		if err := schedgen.EncodeTrace(os.Stdout, regime.Make(p, *steps)); err != nil {
			fmt.Fprintln(os.Stderr, "schedgen:", err)
			os.Exit(1)
		}
		return
	}

	fam, err := schedgen.ByName(*family)
	if err != nil {
		// The error already lists the known families.
		fmt.Fprintln(os.Stderr, "schedgen:", err)
		os.Exit(2)
	}
	in := fam.Make(p)
	if err := in.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "schedgen: generated invalid instance:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(in); err != nil {
		fmt.Fprintln(os.Stderr, "schedgen:", err)
		os.Exit(1)
	}
}
