// Command schedgen emits synthetic scheduling instances as JSON, ready to
// be piped into schedsolve.
//
// Usage:
//
//	schedgen [-family uniform] [-m 8] [-classes 20] [-jobs 5]
//	         [-maxsetup 100] [-maxjob 100] [-seed 1]
//
//	schedgen -family bigjobs -m 6 | schedsolve -variant pmtn -gantt
//
// Families: uniform, expensive, smallbatch, singlejob, bigjobs, zipf.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"setupsched/internal/gen"
)

func main() {
	family := flag.String("family", "uniform", "generator family")
	m := flag.Int64("m", 8, "machines")
	classes := flag.Int("classes", 20, "number of classes")
	jobs := flag.Int("jobs", 5, "expected jobs per class")
	maxSetup := flag.Int64("maxsetup", 100, "maximum setup time")
	maxJob := flag.Int64("maxjob", 100, "maximum job processing time")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	fam, err := gen.ByName(*family)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedgen:", err)
		fmt.Fprint(os.Stderr, "known families:")
		for _, f := range gen.Families {
			fmt.Fprintf(os.Stderr, " %s", f.Name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
	in := fam.Make(gen.Params{
		M: *m, Classes: *classes, JobsPer: *jobs,
		MaxSetup: *maxSetup, MaxJob: *maxJob, Seed: *seed,
	})
	if err := in.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "schedgen: generated invalid instance:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(in); err != nil {
		fmt.Fprintln(os.Stderr, "schedgen:", err)
		os.Exit(1)
	}
}
