// Command schedstream replays an NDJSON delta trace (schedgen -trace, or
// hand-written) through an incremental solve session, reporting how the
// session engine answered each solve point — warm-started, cached or
// cold — and the amortized cost against stateless re-solving.
//
// Usage:
//
//	schedstream [-f trace.ndjson] [-variant nonp] [-algorithm auto]
//	            [-eps 1e-4] [-check] [-v]
//
//	schedgen -trace churn -steps 100 | schedstream
//	schedgen -trace scale | schedstream -check -v   # cross-check vs fresh solves
//
// The trace format is one JSON object per line: first {"base": instance},
// then {"delta": {"op": ...}} edits interleaved with {"solve": true}
// solve points.  With -check every solve point is also solved by a fresh
// cold Solver and compared bit-for-bit (the stream package's identity
// contract); any mismatch fails the run.  Exit status: 0 ok, 1 mismatch
// or replay failure, 2 usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"setupsched"
	"setupsched/obs"
	"setupsched/sched"
	"setupsched/schedgen"
	"setupsched/stream"
)

func main() {
	os.Exit(run())
}

func run() int {
	file := flag.String("f", "", "trace file (default stdin)")
	variant := flag.String("variant", "nonp", "variant solved at solve points: split, pmtn or nonp")
	algorithm := flag.String("algorithm", "auto", "algorithm: auto, 2approx, eps or exact")
	eps := flag.Float64("eps", setupsched.DefaultEpsilon, "accuracy for -algorithm eps")
	check := flag.Bool("check", false, "cross-check every solve point against a fresh cold Solver (bit-identity)")
	verbose := flag.Bool("v", false, "per-solve-point output")
	flag.Parse()

	v, ok := map[string]sched.Variant{
		"split": sched.Splittable, "splittable": sched.Splittable,
		"pmtn": sched.Preemptive, "preemptive": sched.Preemptive,
		"nonp": sched.NonPreemptive, "nonpreemptive": sched.NonPreemptive,
	}[*variant]
	if !ok {
		fmt.Fprintf(os.Stderr, "schedstream: unknown variant %q (want split, pmtn or nonp)\n", *variant)
		return 2
	}
	algo, ok := map[string]setupsched.Algorithm{
		"auto": setupsched.Auto, "2approx": setupsched.TwoApprox,
		"eps": setupsched.EpsilonSearch, "exact": setupsched.Exact32, "exact32": setupsched.Exact32,
	}[*algorithm]
	if !ok {
		fmt.Fprintf(os.Stderr, "schedstream: unknown algorithm %q (want auto, 2approx, eps or exact)\n", *algorithm)
		return 2
	}

	var in io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedstream:", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	events, err := schedgen.DecodeTrace(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedstream:", err)
		return 1
	}

	sess, err := stream.NewSession(events[0].Base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedstream:", err)
		return 1
	}
	mirror := events[0].Base.Clone()
	opts := []stream.SolveOption{stream.WithAlgorithm(algo)}
	if algo == setupsched.EpsilonSearch {
		opts = append(opts, stream.WithEpsilon(*eps))
	}

	ctx := context.Background()
	var sessionNs, freshNs int64
	solvePoints, mismatches := 0, 0
	hist := obs.NewHistogram(obs.DefaultLatencyBuckets()...)
	start := time.Now()
	for i, ev := range events[1:] {
		switch {
		case ev.Delta != nil:
			if err := sess.Apply(ctx, *ev.Delta); err != nil {
				fmt.Fprintf(os.Stderr, "schedstream: event %d (%s): %v\n", i+1, ev.Delta, err)
				return 1
			}
			if *check {
				if _, err := ev.Delta.Apply(mirror); err != nil {
					fmt.Fprintf(os.Stderr, "schedstream: event %d (%s): fresh replay rejected: %v\n", i+1, ev.Delta, err)
					return 1
				}
			}
		case ev.Solve:
			solvePoints++
			t0 := time.Now()
			res, err := sess.Solve(ctx, v, opts...)
			d := time.Since(t0)
			sessionNs += d.Nanoseconds()
			hist.ObserveDuration(d)
			if err != nil {
				fmt.Fprintf(os.Stderr, "schedstream: solve point %d: %v\n", solvePoints, err)
				return 1
			}
			mode := "cold"
			switch {
			case res.Cached:
				mode = "cached"
			case res.Warm:
				mode = "warm"
			}
			if *verbose {
				shape, _ := sess.Describe(ctx)
				fmt.Printf("solve %3d rev %4d (m=%d c=%d n=%d): makespan %-12s bound %-12s probes %2d %s\n",
					solvePoints, res.Rev, shape.Machines, shape.Classes, shape.Jobs, res.Makespan, res.LowerBound, res.Probes, mode)
			}
			if *check {
				t1 := time.Now()
				solver, err := setupsched.NewSolver(mirror.Clone())
				var fres *setupsched.Result
				if err == nil {
					fOpts := []setupsched.Option{setupsched.WithAlgorithm(algo)}
					if algo == setupsched.EpsilonSearch {
						fOpts = append(fOpts, setupsched.WithEpsilon(*eps))
					}
					fres, err = solver.Solve(ctx, v, fOpts...)
				}
				freshNs += time.Since(t1).Nanoseconds()
				if err != nil {
					fmt.Fprintf(os.Stderr, "schedstream: solve point %d: fresh solve: %v\n", solvePoints, err)
					return 1
				}
				if !res.Fallback && !fres.Fallback &&
					(!res.Makespan.Equal(fres.Makespan) || !res.LowerBound.Equal(fres.LowerBound) ||
						!res.Guess.Equal(fres.Guess) || res.Algorithm != fres.Algorithm) {
					mismatches++
					fmt.Fprintf(os.Stderr,
						"schedstream: solve point %d MISMATCH: session (mk=%s lb=%s T=%s %s) != fresh (mk=%s lb=%s T=%s %s)\n",
						solvePoints, res.Makespan, res.LowerBound, res.Guess, res.Algorithm,
						fres.Makespan, fres.LowerBound, fres.Guess, fres.Algorithm)
				}
			}
		}
	}

	st := sess.Stats()
	fmt.Printf("schedstream: %d deltas, %d solve points in %.1fms (%s, %s)\n",
		st.Deltas, solvePoints, float64(time.Since(start).Nanoseconds())/1e6, v.Short(), algo)
	fmt.Printf("  engine: %d solver runs, %d warm hits, %d cache hits, %d prep rebuilds\n",
		st.Solves, st.WarmHits, st.CacheHits, st.Rebuilds)
	if solvePoints > 0 {
		fmt.Printf("  session solve time: %.3fms total, %.3fms/solve\n",
			float64(sessionNs)/1e6, float64(sessionNs)/1e6/float64(solvePoints))
		p50, p90, p99 := hist.P50P90P99()
		fmt.Printf("  session solve latency: p50 %.3fms p90 %.3fms p99 %.3fms max %.3fms\n",
			p50*1e3, p90*1e3, p99*1e3, hist.Max()*1e3)
	}
	if *check {
		if solvePoints > 0 {
			fmt.Printf("  fresh solve time:   %.3fms total, %.3fms/solve (%.1fx)\n",
				float64(freshNs)/1e6, float64(freshNs)/1e6/float64(solvePoints),
				float64(freshNs)/float64(max64(sessionNs, 1)))
		}
		if mismatches > 0 {
			fmt.Printf("  %d MISMATCHES\n", mismatches)
			return 1
		}
		fmt.Println("  all solve points bit-identical to fresh solves")
	}
	return 0
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
