// Command schedload is the multi-process load-test harness for the
// sharded schedserve deployment.  One invocation spawns a fleet per
// requested shard count — k schedserve processes behind one schedlb —
// drives a mixed solve/session workload through the proxy at a target
// request rate, verifies every response's X-Sched-Shard echo against
// the consistent-hash ring (zero tolerance), and merges the measured
// latency trajectory into BENCH_serve.json.
//
// Usage:
//
//	schedload [-shards 1,3] [-duration 5s] [-rps 50] [-workers 8] \
//	          [-session-frac 0.25] [-instances 64] [-seed 1] \
//	          [-serve-bin path] [-lb-bin path] \
//	          [-out BENCH_serve.json] [-validate file] \
//	          [-trace-report] [-trace-requests 120]
//
// -trace-report switches the harness into tracing mode: it mints one
// sampled W3C trace context per solve, joins the lb-side and shard-side
// flight recorders (GET /v1/debug/traces) by trace id, and prints a
// per-segment latency attribution table — lb routing, network hop,
// shard queue, prepare, search, build — with nearest-rank p50/p99 per
// segment.  A trace landing off its ring-predicted shard, or segments
// summing more than 5% away from the measured end-to-end latency, is
// fatal.
//
// With -serve-bin/-lb-bin the fleet runs those real binaries (CI builds
// them first); without, schedload re-execs itself in child mode, so
// `go run ./cmd/schedload` needs nothing prebuilt.  -validate checks an
// existing report's structural invariants and exits.
//
// The report keeps one run per environment (go version / OS / arch /
// GOMAXPROCS), each holding solve and session rows for every measured
// shard count — always at least two counts, so the file answers "what
// did scaling out change" (see internal/loadtest for the schema).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"setupsched/internal/loadtest"
)

func main() {
	loadtest.MaybeRunChild()

	shardsFlag := flag.String("shards", "1,3", "comma-separated shard counts to measure (each spawns its own fleet)")
	duration := flag.Duration("duration", 5*time.Second, "workload duration per shard count")
	rps := flag.Int("rps", 50, "target request rate for the mixed workload")
	workers := flag.Int("workers", 8, "concurrent request workers")
	sessionFrac := flag.Float64("session-frac", 0.25, "fraction of operations that run a session lifecycle")
	instances := flag.Int("instances", 64, "instance pool size")
	seed := flag.Int64("seed", 1, "workload op-sequence seed")
	serveBin := flag.String("serve-bin", "", "path to a real schedserve binary (default: re-exec self)")
	lbBin := flag.String("lb-bin", "", "path to a real schedlb binary (default: re-exec self)")
	out := flag.String("out", "", "merge results into this BENCH_serve.json (empty: print to stdout only)")
	validate := flag.String("validate", "", "validate this BENCH_serve.json and exit")
	traceReport := flag.Bool("trace-report", false, "drive traced solves and print the per-segment latency attribution instead of the workload")
	traceRequests := flag.Int("trace-requests", 120, "traced solves per fleet in -trace-report mode")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "schedload: unexpected arguments:", flag.Args())
		os.Exit(2)
	}

	if *validate != "" {
		rep, err := readReport(*validate)
		if err != nil {
			log.Fatalf("schedload: %v", err)
		}
		if err := loadtest.ValidateServeReport(rep); err != nil {
			log.Fatalf("schedload: %s: %v", *validate, err)
		}
		fmt.Printf("schedload: %s ok (%d runs)\n", *validate, len(rep.Runs))
		return
	}

	var counts []int
	for _, part := range strings.Split(*shardsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			log.Fatalf("schedload: bad -shards entry %q", part)
		}
		counts = append(counts, n)
	}

	ctx := context.Background()
	if *traceReport {
		for _, k := range counts {
			if err := runTraceReport(ctx, k, *serveBin, *lbBin, *traceRequests, *seed); err != nil {
				log.Fatalf("schedload: %d shards: %v", k, err)
			}
		}
		return
	}
	run := loadtest.NewServeRun(*duration, *workers)
	totalRouting := 0
	for _, k := range counts {
		res, err := measure(ctx, loadtest.ClusterConfig{
			Shards: k, ServeBin: *serveBin, LBBin: *lbBin, Logf: log.Printf,
		}, loadtest.WorkloadConfig{
			Duration: *duration, RPS: *rps, Workers: *workers,
			SessionFraction: *sessionFrac, Instances: *instances, Seed: *seed,
		})
		if err != nil {
			log.Fatalf("schedload: %d shards: %v", k, err)
		}
		log.Printf("shards=%d: %.1f req/s achieved (target %d), solve p50=%.2fms p99=%.2fms, session p50=%.2fms p99=%.2fms, routing errors=%d, spread=%v",
			k, res.AchievedRPS, *rps, res.Solve.P50Ms, res.Solve.P99Ms,
			res.Session.P50Ms, res.Session.P99Ms, res.RoutingErrors, res.ShardHits)
		totalRouting += res.RoutingErrors
		run.AppendWorkload(res)
	}
	if totalRouting > 0 {
		log.Fatalf("schedload: %d routing errors (want zero) — ring and fleet disagree", totalRouting)
	}

	if *out != "" {
		rep, err := readReport(*out)
		if err != nil && !os.IsNotExist(err) {
			log.Fatalf("schedload: %v", err)
		}
		if rep == nil {
			rep = &loadtest.ServeReport{}
		}
		loadtest.MergeServeRun(rep, run)
		if err := loadtest.ValidateServeReport(rep); err != nil {
			log.Fatalf("schedload: refusing to write invalid report: %v", err)
		}
		if err := writeReport(*out, rep); err != nil {
			log.Fatalf("schedload: %v", err)
		}
		log.Printf("schedload: merged run into %s", *out)
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	rep := &loadtest.ServeReport{}
	loadtest.MergeServeRun(rep, run)
	enc.Encode(rep)
}

// runTraceReport spawns one fleet, drives the traced solves, joins the
// lb-side and shard-side flight recorders by trace id, and prints the
// per-segment latency attribution table.  A placement error (a trace
// off its ring-predicted shard) or a segment sum off the end-to-end
// latency by more than 5% is fatal.
func runTraceReport(ctx context.Context, shards int, serveBin, lbBin string, requests int, seed int64) error {
	cluster, err := loadtest.StartCluster(ctx, loadtest.ClusterConfig{
		Shards: shards, ServeBin: serveBin, LBBin: lbBin, Logf: log.Printf,
	})
	if err != nil {
		return err
	}
	defer cluster.Stop()
	rep, err := loadtest.RunTraceReport(ctx, cluster.LBURL, cluster.Shards, loadtest.TraceReportConfig{
		Requests: requests, Seed: uint64(seed),
	})
	if err != nil {
		return err
	}
	fmt.Printf("trace report (%d shards): %d requests, %d joined, %d placement errors, max segment-sum error %.2f%%\n",
		rep.Shards, rep.Requests, rep.Joined, len(rep.PlacementErrors), rep.MaxSumErrPct)
	fmt.Printf("%-12s %10s %10s %10s\n", "segment", "p50 ms", "p99 ms", "max ms")
	for _, seg := range rep.Segments {
		fmt.Printf("%-12s %10.3f %10.3f %10.3f\n", seg.Name, seg.P50Ms, seg.P99Ms, seg.MaxMs)
	}
	fmt.Printf("%-12s %10.3f %10.3f %10.3f\n", rep.E2E.Name, rep.E2E.P50Ms, rep.E2E.P99Ms, rep.E2E.MaxMs)
	return rep.Check()
}

func measure(ctx context.Context, cc loadtest.ClusterConfig, wc loadtest.WorkloadConfig) (*loadtest.WorkloadResult, error) {
	cluster, err := loadtest.StartCluster(ctx, cc)
	if err != nil {
		return nil, err
	}
	defer cluster.Stop()
	return loadtest.RunWorkload(ctx, cluster.LBURL, cluster.Shards, wc)
}

func readReport(path string) (*loadtest.ServeReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep loadtest.ServeReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &rep, nil
}

// writeReport writes atomically (tmp + rename) so a crashed run never
// truncates the committed trajectory.
func writeReport(path string, rep *loadtest.ServeReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
