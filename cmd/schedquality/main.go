// Command schedquality measures the realized approximation quality of
// the paper's non-preemptive algorithms against the exact reference
// backend (the RefExact branch-and-bound) across the full schedgen
// catalog, and maintains the committed BENCH_quality.json report.
//
// Usage:
//
//	schedquality [-seeds 12] [-budget N] [-o BENCH_quality.json]
//	schedquality -validate BENCH_quality.json
//	schedquality -gate -baseline BENCH_quality.json [-seeds 4]
//
// The default mode sweeps every family, solving each instance's three
// approximation algorithms plus the RefExact reference in one SolveAll
// call, and prints (or with -o merges into the env-keyed report file)
// the per-family distributions of the measured makespan/OPT ratio.  The
// worst ratio per (family, algorithm) is an exact rational; instances
// where the reference's node budget runs out contribute a certified
// ratio upper bound instead (worst_bound).
//
// -validate checks an existing report: schema, structure, and that every
// recorded worst ratio respects the recorded paper guarantee by exact
// rational comparison.  -gate re-sweeps with the current binary and
// fails (exit 1) if any family's worst measured ratio regressed against
// the baseline report — the CI hook that catches approximation-quality
// regressions the performance benchmarks cannot see.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"setupsched/internal/quality"
	"setupsched/schedgen"
)

func main() {
	os.Exit(run())
}

func run() int {
	seeds := flag.Int64("seeds", 12, "seeds per family")
	seedBase := flag.Int64("seedbase", 0, "first seed of the sweep")
	eps := flag.Float64("eps", quality.DefaultEpsilon, "accuracy of the eps-search spec")
	budget := flag.Int64("budget", 0, "node budget of the reference backend per instance (0 = backend default)")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel sweep workers")
	m := flag.Int64("m", 0, "machines (0 = default sweep profile)")
	classes := flag.Int("classes", 0, "classes per instance (0 = default sweep profile)")
	jobsPer := flag.Int("jobsper", 0, "expected jobs per class (0 = default sweep profile)")
	maxSetup := flag.Int64("maxsetup", 0, "setup magnitude (0 = default sweep profile)")
	maxJob := flag.Int64("maxjob", 0, "job magnitude (0 = default sweep profile)")
	out := flag.String("o", "", "merge the run into this env-keyed report file instead of stdout")
	validate := flag.String("validate", "", "validate an existing BENCH_quality.json report and exit")
	gate := flag.Bool("gate", false, "re-sweep and fail if any worst ratio regressed vs -baseline")
	baseline := flag.String("baseline", "BENCH_quality.json", "with -gate: baseline report to compare against")
	flag.Parse()

	if *validate != "" {
		return runValidate(*validate)
	}

	params := quality.DefaultParams()
	if *m > 0 {
		params.M = *m
	}
	if *classes > 0 {
		params.Classes = *classes
	}
	if *jobsPer > 0 {
		params.JobsPer = *jobsPer
	}
	if *maxSetup > 0 {
		params.MaxSetup = *maxSetup
	}
	if *maxJob > 0 {
		params.MaxJob = *maxJob
	}
	cfg := quality.Config{
		Params:     params,
		Seeds:      *seeds,
		SeedBase:   *seedBase,
		Epsilon:    *eps,
		NodeBudget: *budget,
		Workers:    *workers,
	}
	run, err := quality.Sweep(context.Background(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedquality:", err)
		return 1
	}

	if *gate {
		return runGate(*baseline, run)
	}
	return emit(run, *out)
}

// emit merges the run into the env-keyed report at out (stdout if empty).
func emit(run *quality.Run, out string) int {
	rep := &quality.Report{}
	if out != "" {
		if prev, err := os.ReadFile(out); err == nil {
			var existing quality.Report
			// A stale or differently-versioned file is replaced wholesale.
			if json.Unmarshal(prev, &existing) == nil && existing.Schema == quality.Schema {
				rep = &existing
			}
		}
	}
	quality.MergeRun(rep, *run)
	if err := quality.Validate(rep); err != nil {
		fmt.Fprintln(os.Stderr, "schedquality: self-check failed:", err)
		return 1
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedquality:", err)
		return 1
	}
	buf = append(buf, '\n')
	if out == "" {
		_, err = os.Stdout.Write(buf)
	} else {
		err = os.WriteFile(out, buf, 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedquality:", err)
		return 1
	}
	return 0
}

// runValidate parses and validates a report file.
func runValidate(path string) int {
	rep, err := readReport(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedquality: %s: %v\n", path, err)
		return 1
	}
	if err := quality.Validate(rep); err != nil {
		fmt.Fprintf(os.Stderr, "schedquality: %s: %v\n", path, err)
		return 1
	}
	nfam := len(schedgen.Families)
	fmt.Printf("%s: valid %s report (%d runs, %d families in catalog)\n", path, rep.Schema, len(rep.Runs), nfam)
	for i := range rep.Runs {
		r := &rep.Runs[i]
		fams := map[string]bool{}
		for _, fr := range r.Results {
			fams[fr.Family] = true
		}
		fmt.Printf("  %s: %d results over %d families, %d seeds each\n",
			r.EnvKey(), len(r.Results), len(fams), r.Seeds)
	}
	return 0
}

// runGate compares a fresh sweep against the committed baseline: the run
// with the matching environment key if present, the first run otherwise
// (ratios are deterministic in the sweep parameters, so cross-environment
// comparison is sound — only the parameters must match, which
// CompareRuns enforces).
func runGate(path string, current *quality.Run) int {
	rep, err := readReport(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedquality: %s: %v\n", path, err)
		return 1
	}
	if err := quality.Validate(rep); err != nil {
		fmt.Fprintf(os.Stderr, "schedquality: %s: %v\n", path, err)
		return 1
	}
	base := &rep.Runs[0]
	for i := range rep.Runs {
		if rep.Runs[i].EnvKey() == current.EnvKey() {
			base = &rep.Runs[i]
			break
		}
	}
	msgs := quality.CompareRuns(base, current)
	if len(msgs) > 0 {
		fmt.Fprintf(os.Stderr, "schedquality: quality gate FAILED against %s (%s):\n", path, base.EnvKey())
		for _, m := range msgs {
			fmt.Fprintln(os.Stderr, "  "+m)
		}
		return 1
	}
	fmt.Printf("quality gate passed: no worst-ratio regressions against %s (%d comparisons)\n",
		path, len(current.Results))
	return 0
}

func readReport(path string) (*quality.Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep quality.Report
	dec := json.NewDecoder(strings.NewReader(string(buf)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}
