// Command schedfig regenerates the paper's figures (Deppert & Jansen,
// SPAA 2019, Figures 1-13) as ASCII Gantt charts from live algorithm runs.
//
// Usage:
//
//	schedfig [-only fig1b]
package main

import (
	"flag"
	"fmt"
	"os"

	"setupsched/internal/expt"
)

func main() {
	only := flag.String("only", "", "render only the figure with this id (e.g. fig1b)")
	flag.Parse()

	figs, err := expt.Figures()
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedfig:", err)
		os.Exit(1)
	}
	for _, f := range figs {
		if *only != "" && f.ID != *only {
			continue
		}
		fmt.Printf("=== %s: %s ===\n%s\n%s\n", f.ID, f.Title, f.Notes, f.Art)
	}
}
