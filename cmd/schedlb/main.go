// Command schedlb runs the stateless consistent-hash front tier of a
// sharded schedserve deployment.
//
// Usage:
//
//	schedlb -addr :8090 -shard a=http://127.0.0.1:8081 -shard b=http://127.0.0.1:8082 \
//	        [-replicas 1024] [-timeout 60s] [-flight 256] [-slow-trace 0]
//
// Each -shard flag names one backend as id=url; the id must equal that
// backend's schedserve -shard-id so the X-Sched-Shard response echo can
// verify every routing decision.  All schedlb processes fronting the
// same shard set route identically as long as their -shard sets and
// -replicas agree — the ring is a pure function of the topology, so the
// front tier scales horizontally with no coordination.
//
// Endpoints: the same /v1 surface as a single schedserve (solve, batch,
// sessions), plus the proxy's own aggregated GET /healthz (200 iff all
// shards healthy; a degraded body names the failing shards), GET
// /metrics (schedlb_* series: per-route request counts, retries,
// per-shard up gauges, and the misroute counters — aggregate and
// per-shard — that must stay at zero), and GET /v1/debug/traces (the
// flight recorder of completed request traces; ring size -flight,
// negative disables; -slow-trace additionally pins traces slower than
// the threshold).  Every proxied request is traced: the proxy opens a
// root span, adopts an incoming sampled W3C traceparent when present,
// and propagates the context to the owning shard so both tiers'
// recorders join on one trace id (see `schedload -trace-report`).  See
// package setupsched/internal/lb for routing semantics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"setupsched/internal/lb"
)

// shardFlags collects repeated -shard id=url flags.
type shardFlags []lb.Shard

func (f *shardFlags) String() string {
	parts := make([]string, len(*f))
	for i, s := range *f {
		parts[i] = s.ID + "=" + s.URL
	}
	return strings.Join(parts, ",")
}

func (f *shardFlags) Set(v string) error {
	id, url, ok := strings.Cut(v, "=")
	if !ok || id == "" || url == "" {
		return fmt.Errorf("want id=url, got %q", v)
	}
	*f = append(*f, lb.Shard{ID: id, URL: strings.TrimRight(url, "/")})
	return nil
}

func main() {
	var shards shardFlags
	addr := flag.String("addr", ":8090", "listen address")
	replicas := flag.Int("replicas", 0, "consistent-hash virtual nodes per shard (0 = library default)")
	timeout := flag.Duration("timeout", 60*time.Second, "backend request timeout")
	flight := flag.Int("flight", 0, "flight-recorder ring size for completed request traces (0 = default, negative disables)")
	slowTrace := flag.Duration("slow-trace", 0, "additionally pin traces slower than this in the recorder's slow ring (0 disables)")
	flag.Var(&shards, "shard", "backend shard as id=url (repeatable, at least one)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "schedlb: unexpected arguments:", flag.Args())
		os.Exit(2)
	}

	proxy, err := lb.New(lb.Config{
		Shards:             shards,
		Replicas:           *replicas,
		Client:             &http.Client{Timeout: *timeout},
		FlightRecorderSize: *flight,
		SlowTraceThreshold: *slowTrace,
	})
	if err != nil {
		log.Fatalf("schedlb: %v", err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           proxy,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("schedlb: listening on %s fronting %d shards (%s)", *addr, len(shards), shards.String())
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("schedlb: %v", err)
		}
	case <-ctx.Done():
		log.Print("schedlb: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("schedlb: shutdown: %v", err)
		}
	}
}
