// Command schedbench runs the experiment harness that reproduces the
// paper's Table 1: measured approximation ratios per algorithm, running
// time scaling against n, and a comparison against classical baselines.
//
// Usage:
//
//	schedbench [-instances 40] [-sizes 1000,10000,100000] [-reps 3] [-skip-scaling]
//
// The output is the source of EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"setupsched/internal/expt"
)

func main() {
	instances := flag.Int("instances", 40, "instances per generator family for ratio/compare tables")
	sizesFlag := flag.String("sizes", "1000,10000,100000", "comma-separated job counts for the scaling table")
	reps := flag.Int("reps", 3, "repetitions per timing measurement")
	skipScaling := flag.Bool("skip-scaling", false, "skip the (slower) scaling table")
	flag.Parse()

	var sizes []int
	for _, part := range strings.Split(*sizesFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "schedbench: bad size %q\n", part)
			os.Exit(2)
		}
		sizes = append(sizes, v)
	}

	fmt.Println("## Measured approximation ratios (Table 1 reproduction)")
	fmt.Println()
	rows, err := expt.RatioTable(*instances)
	if err != nil {
		fail(err)
	}
	fmt.Println(expt.FormatRatioTable(rows))

	fmt.Println("## Comparison against classical baselines")
	fmt.Println()
	cmp, err := expt.CompareTable(*instances)
	if err != nil {
		fail(err)
	}
	fmt.Println(expt.FormatCompareTable(cmp))

	fmt.Println("## Variant crossover (value of preemption/splitting as m grows)")
	fmt.Println()
	cross, err := expt.Crossover([]int64{1, 2, 4, 8, 16, 32, 64, 128}, 2019)
	if err != nil {
		fail(err)
	}
	fmt.Println(expt.FormatCrossover(cross))

	if !*skipScaling {
		fmt.Println("## Running time scaling (near-linear claims of Table 1)")
		fmt.Println()
		sc, err := expt.ScalingTable(sizes, *reps)
		if err != nil {
			fail(err)
		}
		fmt.Println(expt.FormatScalingTable(sc))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "schedbench:", err)
	os.Exit(1)
}
