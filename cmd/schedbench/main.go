// Command schedbench runs the experiment harness that reproduces the
// paper's Table 1: measured approximation ratios per algorithm, running
// time scaling against n, and a comparison against classical baselines.
//
// Usage:
//
//	schedbench [-instances 40] [-sizes 1000,10000,100000] [-reps 3] [-skip-scaling]
//	schedbench -json [-o BENCH_core.json] [-parallelism N]
//	schedbench -validate BENCH_core.json
//
// The default (table) output is the source of EXPERIMENTS.md.  With
// -json the command instead measures the parallel solve engine against
// the serial path (speculative probing per algorithm plus the SolveAll
// nine-run fan-out) and the incremental session engine against stateless
// re-solving (warm re-solve after a delta vs cold NewSolver+Solve), and
// records the run into the machine-readable BENCH_core.json report
// tracking the repo's performance trajectory.  The report holds one run
// per environment (go version / OS / arch / GOMAXPROCS): regenerating
// into an existing file replaces the matching environment's run and
// keeps the others, so single-core and multi-core baselines coexist and
// comparisons never mix environments.  -validate checks an existing
// report's schema, for CI smoke tests and pre-commit sanity.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"setupsched/internal/benchjson"
	"setupsched/internal/expt"
)

func main() {
	instances := flag.Int("instances", 40, "instances per generator family for ratio/compare tables")
	sizesFlag := flag.String("sizes", "1000,10000,100000", "comma-separated job counts for the scaling table / -json datapoints")
	reps := flag.Int("reps", 3, "repetitions per timing measurement")
	skipScaling := flag.Bool("skip-scaling", false, "skip the (slower) scaling table")
	jsonMode := flag.Bool("json", false, "emit the machine-readable BENCH_core.json report instead of tables")
	out := flag.String("o", "", "with -json: write the report to this file instead of stdout")
	parallelism := flag.Int("parallelism", 0, "with -json: goroutine width of the parallel datapoints (default GOMAXPROCS)")
	validate := flag.String("validate", "", "validate an existing BENCH_core.json report and exit")
	flag.Parse()

	if *validate != "" {
		os.Exit(runValidate(*validate))
	}

	var sizes []int
	for _, part := range strings.Split(*sizesFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "schedbench: bad size %q\n", part)
			os.Exit(2)
		}
		sizes = append(sizes, v)
	}

	if *jsonMode {
		os.Exit(runJSON(sizes, *reps, *parallelism, *out))
	}

	fmt.Println("## Measured approximation ratios (Table 1 reproduction)")
	fmt.Println()
	rows, err := expt.RatioTable(*instances)
	if err != nil {
		fail(err)
	}
	fmt.Println(expt.FormatRatioTable(rows))

	fmt.Println("## Comparison against classical baselines")
	fmt.Println()
	cmp, err := expt.CompareTable(*instances)
	if err != nil {
		fail(err)
	}
	fmt.Println(expt.FormatCompareTable(cmp))

	fmt.Println("## Variant crossover (value of preemption/splitting as m grows)")
	fmt.Println()
	cross, err := expt.Crossover([]int64{1, 2, 4, 8, 16, 32, 64, 128}, 2019)
	if err != nil {
		fail(err)
	}
	fmt.Println(expt.FormatCrossover(cross))

	if !*skipScaling {
		fmt.Println("## Running time scaling (near-linear claims of Table 1)")
		fmt.Println()
		sc, err := expt.ScalingTable(sizes, *reps)
		if err != nil {
			fail(err)
		}
		fmt.Println(expt.FormatScalingTable(sc))
	}
}

// runJSON measures the solve engines and writes the BENCH_core report,
// merging the run into an existing env-keyed report at -o if present.
func runJSON(sizes []int, reps, parallelism int, out string) int {
	run, err := benchjson.BenchCore(sizes, reps, parallelism)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		return 1
	}
	rep := &benchjson.BenchReport{}
	if out != "" {
		if prev, err := os.ReadFile(out); err == nil {
			var existing benchjson.BenchReport
			// A stale or pre-v2 file is replaced wholesale rather than
			// merged into.
			if json.Unmarshal(prev, &existing) == nil && existing.Schema == benchjson.BenchCoreSchema {
				rep = &existing
			}
		}
	}
	benchjson.MergeRun(rep, *run)
	if err := benchjson.ValidateBenchReport(rep); err != nil {
		fmt.Fprintln(os.Stderr, "schedbench: self-check failed:", err)
		return 1
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		return 1
	}
	buf = append(buf, '\n')
	if out == "" {
		_, err = os.Stdout.Write(buf)
	} else {
		err = os.WriteFile(out, buf, 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		return 1
	}
	return 0
}

// runValidate parses and validates a report file.
func runValidate(path string) int {
	buf, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		return 1
	}
	var rep benchjson.BenchReport
	dec := json.NewDecoder(strings.NewReader(string(buf)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		fmt.Fprintf(os.Stderr, "schedbench: %s: %v\n", path, err)
		return 1
	}
	if err := benchjson.ValidateBenchReport(&rep); err != nil {
		fmt.Fprintf(os.Stderr, "schedbench: %s: %v\n", path, err)
		return 1
	}
	fmt.Printf("%s: valid %s report (%d runs)\n", path, rep.Schema, len(rep.Runs))
	for i := range rep.Runs {
		fmt.Printf("  %s: %d results (num_cpu=%d)\n", rep.Runs[i].EnvKey(), len(rep.Runs[i].Results), rep.Runs[i].NumCPU)
	}
	return 0
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "schedbench:", err)
	os.Exit(1)
}
