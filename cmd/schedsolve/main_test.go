package main

import (
	"testing"

	"setupsched"
)

func TestParseVariant(t *testing.T) {
	cases := map[string]setupsched.Variant{
		"split": setupsched.Splittable, "splittable": setupsched.Splittable,
		"pmtn": setupsched.Preemptive, "preemptive": setupsched.Preemptive,
		"nonp": setupsched.NonPreemptive, "nonpreemptive": setupsched.NonPreemptive,
	}
	for in, want := range cases {
		got, err := parseVariant(in)
		if err != nil || got != want {
			t.Errorf("parseVariant(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseVariant("bogus"); err == nil {
		t.Error("bogus variant accepted")
	}
}

func TestParseAlgo(t *testing.T) {
	cases := map[string]setupsched.Algorithm{
		"auto": setupsched.Auto, "2approx": setupsched.TwoApprox,
		"eps": setupsched.EpsilonSearch, "exact": setupsched.Exact32,
		"exact32": setupsched.Exact32,
	}
	for in, want := range cases {
		got, err := parseAlgo(in)
		if err != nil || got != want {
			t.Errorf("parseAlgo(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseAlgo("bogus"); err == nil {
		t.Error("bogus algorithm accepted")
	}
}
