// Command schedsolve reads a scheduling instance as JSON and solves it.
//
// Usage:
//
//	schedsolve [-variant split|pmtn|nonp] [-algo auto|2approx|eps|exact] \
//	           [-eps 1e-4] [-timeout 0] [-gantt] [-trace] [-spans] \
//	           [instance.json]
//
// The instance format is
//
//	{"m": 3, "classes": [{"setup": 4, "jobs": [7, 2, 5]}, ...]}
//
// With no file argument the instance is read from standard input.
//
// With -spans the solve is traced and its span tree — prepare (the O(n)
// preprocessing), search (one child per dual-approximation probe) and
// build (schedule construction) — is printed as JSON after the summary,
// bound to a locally generated trace id (the same identity scheme the
// serving tier's distributed traces use).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"setupsched"
	"setupsched/internal/render"
	"setupsched/obs"
	"setupsched/sched"
)

func main() {
	variant := flag.String("variant", "nonp", "problem variant: split, pmtn or nonp")
	algo := flag.String("algo", "auto", "algorithm: auto, 2approx, eps or exact")
	eps := flag.Float64("eps", setupsched.DefaultEpsilon, "accuracy for -algo eps")
	timeout := flag.Duration("timeout", 0, "abort the solve after this long (0 = no limit)")
	gantt := flag.Bool("gantt", false, "render the schedule as an ASCII Gantt chart")
	trace := flag.Bool("trace", false, "print the search's probe trace")
	spans := flag.Bool("spans", false, "print the solve's span tree (phase timings) as JSON")
	flag.Parse()

	var r io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	var in setupsched.Instance
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		fail(fmt.Errorf("decoding instance: %w", err))
	}

	v, err := parseVariant(*variant)
	if err != nil {
		fail(err)
	}
	a, err := parseAlgo(*algo)
	if err != nil {
		fail(err)
	}
	var rec *obs.SpanRecorder
	var tc obs.TraceContext
	if *spans {
		// Bind a locally generated trace id so the printed tree carries
		// the same identity scheme as the serving tier's recorders.
		rec = obs.NewSpanRecorder()
		tc = obs.NewTrace()
		rec.Trace(tc, obs.SpanID{})
	}
	var solver *setupsched.Solver
	{
		var stop func()
		if rec != nil {
			stop = rec.StartPhase("prepare")
		}
		solver, err = setupsched.NewSolver(&in)
		if stop != nil {
			stop()
		}
	}
	if err != nil {
		fail(err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := []setupsched.Option{setupsched.WithAlgorithm(a)}
	if a == setupsched.EpsilonSearch {
		opts = append(opts, setupsched.WithEpsilon(*eps))
	}
	if rec != nil {
		opts = append(opts, setupsched.WithObserver(rec))
	}
	res, err := solver.Solve(ctx, v, opts...)
	if err != nil {
		fail(err)
	}
	if err := res.Schedule.Validate(&in); err != nil {
		fail(fmt.Errorf("internal error, invalid schedule: %w", err))
	}

	fmt.Printf("variant:     %s\n", v)
	fmt.Printf("algorithm:   %s\n", res.Algorithm)
	fmt.Printf("makespan:    %s (%.4f)\n", res.Makespan, res.Makespan.Float64())
	fmt.Printf("lower bound: %s (%.4f)\n", res.LowerBound, res.LowerBound.Float64())
	fmt.Printf("ratio <=     %.4f\n", res.Ratio)
	fmt.Printf("machines:    %d of %d used\n", res.Schedule.MachineCount(), in.M)
	fmt.Printf("setups:      %d\n", res.Schedule.SetupCount())
	fmt.Printf("probes:      %d\n", res.Probes)
	if *trace {
		for i, pr := range res.Trace {
			verdict := "rejected (OPT > T)"
			if pr.Accepted {
				verdict = "accepted"
			}
			fmt.Printf("  probe %2d: T=%-12s %s\n", i+1, pr.T, verdict)
		}
	}
	if *spans {
		fmt.Printf("trace id:    %s\n", tc.TraceID)
		buf, err := json.MarshalIndent(rec.Root(), "", "  ")
		if err != nil {
			fail(err)
		}
		fmt.Printf("spans:\n%s\n", buf)
	}
	if *gantt {
		fmt.Println()
		fmt.Print(render.Legend(&in))
		fmt.Print(render.Gantt(res.Schedule, &render.Options{T: res.Guess}))
	}
}

func parseVariant(s string) (sched.Variant, error) {
	switch s {
	case "split", "splittable":
		return setupsched.Splittable, nil
	case "pmtn", "preemptive":
		return setupsched.Preemptive, nil
	case "nonp", "nonpreemptive":
		return setupsched.NonPreemptive, nil
	}
	return 0, fmt.Errorf("unknown variant %q (want split, pmtn or nonp)", s)
}

func parseAlgo(s string) (setupsched.Algorithm, error) {
	switch s {
	case "auto":
		return setupsched.Auto, nil
	case "2approx":
		return setupsched.TwoApprox, nil
	case "eps":
		return setupsched.EpsilonSearch, nil
	case "exact", "exact32":
		return setupsched.Exact32, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "schedsolve:", err)
	os.Exit(1)
}
