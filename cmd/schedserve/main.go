// Command schedserve runs the setupsched HTTP solve service.
//
// Usage:
//
//	schedserve [-addr :8080] [-workers N] [-cache 4096] [-solvers 1024] \
//	           [-timeout 0] [-max-parallelism GOMAXPROCS] [-max-batches 2*N] \
//	           [-max-sessions 256] [-session-ttl 15m] \
//	           [-shard-id ID] [-session-snapshot FILE] \
//	           [-pprof] [-slow-solve 0] [-flight 256]
//
// Endpoints (see package setupsched/serve for the wire formats):
//
//	POST   /v1/solve               solve one instance
//	POST   /v1/solve/batch         solve an NDJSON stream of instances
//	                               (429 + Retry-After when saturated)
//	POST   /v1/sessions            open an incremental solve session
//	GET    /v1/sessions/{id}       session shape and revision
//	POST   /v1/sessions/{id}/delta apply instance deltas
//	POST   /v1/sessions/{id}/solve warm re-solve of the session instance
//	DELETE /v1/sessions/{id}       close a session
//	POST   /v1/admin/drain         flip into draining mode and stream a
//	                               session snapshot export (NDJSON)
//	POST   /v1/admin/sessions/import
//	                               bulk re-create sessions from a
//	                               snapshot stream
//	GET    /healthz                liveness probe (503 while draining)
//	GET    /v1/stats               counters, cache/session hit rates,
//	                               latency quantiles
//	GET    /metrics                Prometheus text exposition over the
//	                               same registry as /v1/stats
//	GET    /v1/debug/traces        flight recorder: recently completed
//	                               request traces (?trace_id=, ?min_ms=)
//	GET    /debug/pprof/...        runtime profiles (only with -pprof)
//
// With -slow-solve DURATION every solve slower than the threshold emits
// one structured log line (trace id, fingerprint, algorithm, probe
// count, and the prepare/search/build phase breakdown from the solve's
// span tree) and the trace is pinned in the flight recorder's slow ring.
//
// A request carrying a sampled W3C traceparent — the header, or the
// per-line "traceparent" field on the batch route — gets a distributed
// trace: the response carries trace_id, and the completed handler/queue/
// solve span tree lands in the flight recorder at /v1/debug/traces
// (ring size -flight, negative disables).  Untraced requests pay
// nothing.
//
// In a sharded deployment (see cmd/schedlb) set -shard-id so responses
// carry the X-Sched-Shard identity echo the front tier verifies routing
// against.  -session-snapshot FILE makes shard restarts lossless for
// session state: on SIGTERM the process drains in-flight requests, then
// exports every live session to FILE (atomic tmp+rename); on start, if
// FILE exists, its sessions are imported under their original ids and
// revisions and the file is removed.
//
// Example (stateless solve, then a session with a delta):
//
//	schedserve -addr :8080 &
//	curl -s localhost:8080/v1/solve -d '{
//	  "variant": "nonp",
//	  "instance": {"m": 3, "classes": [{"setup": 4, "jobs": [7, 2, 5]},
//	                                   {"setup": 1, "jobs": [3, 3]}]}
//	}'
//	SID=$(curl -s localhost:8080/v1/sessions -d '{
//	  "instance": {"m": 3, "classes": [{"setup": 4, "jobs": [7, 2, 5]}]}
//	}' | jq -r .session_id)
//	curl -s localhost:8080/v1/sessions/$SID/delta -d '{
//	  "deltas": [{"op": "add_jobs", "class": 0, "jobs": [6]}]}'
//	curl -s localhost:8080/v1/sessions/$SID/solve -d '{"variant": "nonp"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"setupsched/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "batch worker pool size")
	cacheSize := flag.Int("cache", 4096, "result cache capacity in entries (negative disables)")
	solverCache := flag.Int("solvers", 1024, "prepared-solver cache capacity in entries (negative disables)")
	timeout := flag.Duration("timeout", 0, "per-solve timeout (0 disables; requests may set a tighter timeout_ms)")
	maxPar := flag.Int("max-parallelism", runtime.GOMAXPROCS(0), "cap on the per-request parallelism knob (negative forces serial solves)")
	maxBatches := flag.Int("max-batches", 0, "concurrent batch requests before 429 (0 = 2*workers, negative = unlimited)")
	maxSessions := flag.Int("max-sessions", 256, "live incremental solve sessions retained, LRU-evicted past this (negative disables sessions)")
	sessionTTL := flag.Duration("session-ttl", 15*time.Minute, "idle session eviction deadline (negative disables the TTL)")
	shardID := flag.String("shard-id", "", "shard identity echoed in X-Sched-Shard responses (sharded deployments)")
	snapshotFile := flag.String("session-snapshot", "", "session snapshot file: import+remove on start, export on shutdown")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	slowSolve := flag.Duration("slow-solve", 0, "log a structured slow-solve line for solves slower than this (0 disables)")
	flight := flag.Int("flight", 0, "flight-recorder ring size for completed request traces (0 = default, negative disables)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "schedserve: unexpected arguments:", flag.Args())
		os.Exit(2)
	}

	server := serve.New(serve.Config{
		Workers:              *workers,
		CacheSize:            *cacheSize,
		SolverCacheSize:      *solverCache,
		MaxParallelism:       *maxPar,
		SolveTimeout:         *timeout,
		MaxConcurrentBatches: *maxBatches,
		SessionCapacity:      *maxSessions,
		SessionTTL:           *sessionTTL,
		SlowSolveThreshold:   *slowSolve,
		ShardID:              *shardID,
		FlightRecorderSize:   *flight,
	})
	if *snapshotFile != "" {
		if err := importSnapshot(server, *snapshotFile); err != nil {
			log.Fatalf("schedserve: session snapshot import: %v", err)
		}
	}
	var handler http.Handler = server
	if *pprofFlag {
		// The serve mux knows nothing about pprof; wrap it so the debug
		// endpoints stay strictly opt-in.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("schedserve: listening on %s (workers=%d, cache=%d, solvers=%d, timeout=%v, max-parallelism=%d, max-batches=%d, max-sessions=%d, session-ttl=%v)",
			*addr, *workers, *cacheSize, *solverCache, *timeout, *maxPar, *maxBatches, *maxSessions, *sessionTTL)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("schedserve: %v", err)
		}
	case <-ctx.Done():
		log.Print("schedserve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("schedserve: shutdown: %v", err)
		}
		// In-flight requests have drained; the session registry is
		// quiescent, so export after Shutdown, not before.
		if *snapshotFile != "" {
			if err := exportSnapshot(server, *snapshotFile); err != nil {
				log.Printf("schedserve: session snapshot export: %v", err)
			}
		}
	}
}

// importSnapshot restores sessions from a previous run's export and
// removes the file so a crash before the next export can't resurrect
// stale sessions twice.
func importSnapshot(server *serve.Server, path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	n, impErr := server.ImportSessions(context.Background(), f)
	f.Close()
	if impErr != nil {
		return impErr
	}
	if err := os.Remove(path); err != nil {
		return err
	}
	log.Printf("schedserve: imported %d sessions from %s", n, path)
	return nil
}

// exportSnapshot writes the live sessions atomically (tmp + rename) so
// a crash mid-export never leaves a truncated snapshot for the next
// start to trip over.
func exportSnapshot(server *serve.Server, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	n, expErr := server.ExportSessions(context.Background(), f)
	if err := f.Close(); expErr == nil {
		expErr = err
	}
	if expErr != nil {
		os.Remove(tmp)
		return expErr
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	log.Printf("schedserve: exported %d sessions to %s", n, path)
	return nil
}
