package setupsched

import (
	"context"
	"errors"
	"fmt"

	"setupsched/internal/core"
	"setupsched/sched"
)

// Re-exported model types; see package sched for their documentation.
type (
	// Instance is a scheduling instance (machines and job classes).
	Instance = sched.Instance
	// Class is one batch class (setup time plus job processing times).
	Class = sched.Class
	// Schedule is a feasible schedule with exact rational time stamps.
	Schedule = sched.Schedule
	// Slot is one machine occupation (setup or job piece).
	Slot = sched.Slot
	// MachineRun is a group of identical machines in a schedule.
	MachineRun = sched.MachineRun
	// Rat is an exact rational number used for all times.
	Rat = sched.Rat
	// Variant selects the problem flavor.
	Variant = sched.Variant
)

// Problem variants.
const (
	Splittable    = sched.Splittable
	Preemptive    = sched.Preemptive
	NonPreemptive = sched.NonPreemptive
)

// Algorithm selects the approximation algorithm used by Solve.
type Algorithm int

const (
	// Auto picks the strongest guarantee: the exact 3/2-approximation.
	Auto Algorithm = iota
	// TwoApprox is the linear-time 2-approximation (Theorem 1).
	TwoApprox
	// EpsilonSearch is the (3/2+eps)-approximation (Theorem 2).
	EpsilonSearch
	// Exact32 is the exact 3/2-approximation (Theorems 3, 6 and 8).
	Exact32
	// RefExact is the exact reference backend: a branch-and-bound over
	// the threshold/batch structure that computes the true optimum (ratio
	// exactly 1) for the non-preemptive variant, bounded by a node budget
	// (WithNodeBudget).  It exists to measure the approximation quality of
	// the paper's algorithms, not to replace them: budget exhaustion is a
	// normal outcome on adversarial instances and surfaces as an
	// *ExactBudgetError carrying a certified bracket on OPT.
	RefExact
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case TwoApprox:
		return "2-approximation"
	case EpsilonSearch:
		return "(3/2+eps)-approximation"
	case Exact32:
		return "3/2-approximation"
	case RefExact:
		return "exact"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Options configure the legacy Solve free function.  The zero value (or
// nil) selects Auto.
//
// Deprecated: use functional options (WithAlgorithm, WithEpsilon, ...)
// with Solver.Solve instead.
type Options struct {
	// Algorithm picks the approximation algorithm.
	Algorithm Algorithm
	// Epsilon is the accuracy of EpsilonSearch (default DefaultEpsilon).
	Epsilon float64
}

// Result is the outcome of a solve.
type Result struct {
	// Schedule is the feasible schedule found.
	Schedule *Schedule
	// Makespan is the schedule's makespan.
	Makespan Rat
	// Guess is the accepted dual makespan guess T; the approximation
	// guarantee bounds Makespan by 3/2*Guess (2*Guess for TwoApprox).
	Guess Rat
	// LowerBound is a certified lower bound on the optimal makespan.
	LowerBound Rat
	// Ratio is Makespan/LowerBound, an upper bound on the realized
	// approximation ratio (reported as float for convenience).
	Ratio float64
	// Algorithm names the algorithm that produced the schedule.
	Algorithm string
	// Probes is the number of dual-test evaluations performed.
	Probes int
	// Fallback marks results from a search's documented bounded-round
	// conservative path: the schedule is still feasible and within 3/2 of
	// the accepted guess, but the certified LowerBound is conservative,
	// so Ratio may exceed the algorithm's usual guarantee.
	Fallback bool
	// Trace records the dual-test evaluations of the search in execution
	// order, deduplicated by guess: under speculative probing
	// (WithParallelism) a guess can be evaluated redundantly and is
	// recorded once, at its first evaluation, so len(Trace) <= Probes
	// with equality for serial solves.  Nil for results that predate the
	// Solver API (e.g. deserialized ones).
	Trace []Probe
}

// Solve computes an approximate schedule for the instance under the given
// variant.  A nil opts selects the exact 3/2-approximation.
//
// Deprecated: use NewSolver and Solver.Solve, which reuse the
// per-instance preparation across calls and support cancellation,
// observers and probe limits.  Solve(in, v, opts) is equivalent to a
// fresh NewSolver(in) followed by Solve(context.Background(), v, ...).
func Solve(in *Instance, v Variant, opts *Options) (*Result, error) {
	s, err := NewSolver(in)
	if err != nil {
		return nil, err
	}
	var o []Option
	if opts != nil {
		// The legacy switch ran the exact-3/2 path for Auto, Exact32 AND
		// any out-of-enum value, and only ever read Epsilon for
		// EpsilonSearch; preserve both so no old caller breaks.
		switch opts.Algorithm {
		case TwoApprox, EpsilonSearch, Exact32:
			o = append(o, WithAlgorithm(opts.Algorithm))
		}
		if opts.Algorithm == EpsilonSearch && opts.Epsilon != 0 {
			o = append(o, WithEpsilon(opts.Epsilon))
		}
	}
	return s.Solve(context.Background(), v, o...)
}

func finish(r *core.Result) *Result {
	return &Result{
		Schedule:   r.Schedule,
		Makespan:   r.Schedule.Makespan(),
		Guess:      r.T,
		LowerBound: r.LowerBound,
		Ratio:      r.RatioUpperBound(),
		Algorithm:  r.Algorithm,
		Probes:     r.Probes,
		Fallback:   r.Fallback,
	}
}

// LowerBound returns the trivial variant-specific lower bound on OPT
// (max(N/m, s_max) for splittable; max(N/m, max_i(s_i + t_max^(i)))
// otherwise, rounded up to an integer for the non-preemptive case).
//
// Deprecated: use NewSolver and Solver.LowerBound.
func LowerBound(in *Instance, v Variant) (Rat, error) {
	s, err := NewSolver(in)
	if err != nil {
		return Rat{}, err
	}
	return s.LowerBound(v), nil
}

// maxDualDen bounds the denominator of user-supplied dual guesses so the
// internal exact arithmetic cannot overflow.
const maxDualDen = 1 << 20

// DualTest runs the variant's 3/2-dual approximation at the makespan guess
// T: it either returns a feasible schedule with makespan at most 3/2*T
// (accepted) or reports that T was rejected, which certifies T < OPT.
//
// T must be positive with denominator at most 2^20.
//
// Deprecated: use NewSolver and Solver.DualTest, which reuse the
// per-instance preparation across probes.
func DualTest(in *Instance, v Variant, T Rat) (accepted bool, s *Schedule, err error) {
	sv, err := NewSolver(in)
	if err != nil {
		return false, nil, err
	}
	return sv.DualTest(context.Background(), v, T)
}

// Verify re-checks a Result against its instance: the schedule must be
// feasible for the variant, the makespan must match, and the certified
// lower bound must not exceed the makespan.  Use it to audit results that
// crossed a serialization or trust boundary.
func Verify(in *Instance, v Variant, r *Result) error {
	if in == nil || r == nil || r.Schedule == nil {
		return errors.New("setupsched: Verify needs an instance and a result with a schedule")
	}
	if r.Schedule.Variant != v {
		return fmt.Errorf("setupsched: schedule variant %v does not match %v", r.Schedule.Variant, v)
	}
	if err := r.Schedule.Validate(in); err != nil {
		return err
	}
	if !r.Schedule.Makespan().Equal(r.Makespan) {
		return fmt.Errorf("setupsched: stated makespan %s differs from schedule makespan %s",
			r.Makespan, r.Schedule.Makespan())
	}
	if r.Makespan.Less(r.LowerBound) {
		return fmt.Errorf("setupsched: makespan %s below claimed lower bound %s", r.Makespan, r.LowerBound)
	}
	if lb := in.LowerBound(v); r.LowerBound.Less(lb) {
		return fmt.Errorf("setupsched: certified bound %s below trivial bound %s", r.LowerBound, lb)
	}
	return nil
}
