package setupsched

import (
	"math/rand"
	"strings"
	"testing"

	"setupsched/schedgen"
)

func exampleInstance() *Instance {
	return &Instance{
		M: 3,
		Classes: []Class{
			{Setup: 4, Jobs: []int64{7, 2, 5}},
			{Setup: 1, Jobs: []int64{3, 3}},
			{Setup: 9, Jobs: []int64{6}},
		},
	}
}

func TestSolveAllVariantsAndAlgorithms(t *testing.T) {
	in := exampleInstance()
	for _, v := range []Variant{Splittable, Preemptive, NonPreemptive} {
		for _, algo := range []Algorithm{Auto, TwoApprox, EpsilonSearch, Exact32} {
			res, err := Solve(in, v, &Options{Algorithm: algo})
			if err != nil {
				t.Fatalf("%v/%v: %v", v, algo, err)
			}
			if err := res.Schedule.Validate(in); err != nil {
				t.Fatalf("%v/%v: %v", v, algo, err)
			}
			limit := int64(3)
			if algo == TwoApprox {
				limit = 4
			}
			if res.Schedule.Makespan().Cmp(res.Guess.MulInt(limit).Half()) > 0 {
				t.Fatalf("%v/%v: makespan %s breaks the %d/2 * %s guarantee",
					v, algo, res.Makespan, limit, res.Guess)
			}
			if res.LowerBound.Sign() <= 0 || res.Makespan.Less(res.LowerBound) {
				t.Fatalf("%v/%v: inconsistent bounds mk=%s lb=%s", v, algo, res.Makespan, res.LowerBound)
			}
			if res.Ratio < 1.0 {
				t.Fatalf("%v/%v: ratio %f < 1", v, algo, res.Ratio)
			}
		}
	}
}

func TestSolveDefaultsToExact32(t *testing.T) {
	in := exampleInstance()
	res, err := Solve(in, NonPreemptive, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Algorithm, "binsearch") {
		t.Errorf("default algorithm = %q", res.Algorithm)
	}
	if res.Ratio > 1.5+1e-12 {
		t.Errorf("exact 3/2 returned ratio bound %f", res.Ratio)
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	if _, err := Solve(nil, Splittable, nil); err == nil {
		t.Error("nil instance accepted")
	}
	if _, err := Solve(&Instance{M: 0}, Splittable, nil); err == nil {
		t.Error("invalid instance accepted")
	}
	if _, err := LowerBound(nil, Splittable); err == nil {
		t.Error("nil instance accepted by LowerBound")
	}
}

func TestLowerBoundMatchesVariant(t *testing.T) {
	in := exampleInstance() // N = 4+14+1+6+9+6 = 40, m=3; s_max = 9; max s+t = 15
	lb, err := LowerBound(in, Splittable)
	if err != nil {
		t.Fatal(err)
	}
	if !lb.Equal(Rat{}.AddInt(40).DivInt(3)) {
		t.Errorf("splittable LB = %s", lb)
	}
	lbN, _ := LowerBound(in, NonPreemptive)
	if !lbN.Equal(Rat{}.AddInt(15)) {
		t.Errorf("nonpreemptive LB = %s", lbN)
	}
}

func TestDualTestAcceptAndReject(t *testing.T) {
	in := exampleInstance()
	for _, v := range []Variant{Splittable, Preemptive, NonPreemptive} {
		// N is always accepted.
		acc, s, err := DualTest(in, v, Rat{}.AddInt(in.N()))
		if err != nil || !acc || s == nil {
			t.Fatalf("%v: DualTest(N) = (%v, %v, %v)", v, acc, s, err)
		}
		if err := s.Validate(in); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		// A tiny guess is always rejected.
		acc, s, err = DualTest(in, v, Rat{}.AddInt(1))
		if err != nil || acc || s != nil {
			t.Fatalf("%v: DualTest(1) = (%v, %v, %v)", v, acc, s, err)
		}
	}
	// Guard rails.
	if _, _, err := DualTest(in, Splittable, Rat{}); err == nil {
		t.Error("zero guess accepted")
	}
	bad := Rat{}.AddInt(1).DivInt(maxDualDen * 2)
	if _, _, err := DualTest(in, Splittable, bad.AddInt(10)); err == nil {
		t.Error("huge denominator accepted")
	}
}

// TestPublicAPIRandomized drives the facade over every generator family
// and checks the documented guarantees end to end.
func TestPublicAPIRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 40; iter++ {
		fam := schedgen.Families[iter%len(schedgen.Families)]
		in := fam.Make(schedgen.Params{
			M:        int64(1 + rng.Intn(8)),
			Classes:  1 + rng.Intn(10),
			JobsPer:  1 + rng.Intn(6),
			MaxSetup: 1 + rng.Int63n(50),
			MaxJob:   1 + rng.Int63n(80),
			Seed:     rng.Int63(),
		})
		for _, v := range []Variant{Splittable, Preemptive, NonPreemptive} {
			res, err := Solve(in, v, nil)
			if err != nil {
				t.Fatalf("iter %d %s/%v: %v\n%+v", iter, fam.Name, v, err, in)
			}
			if err := res.Schedule.Validate(in); err != nil {
				t.Fatalf("iter %d %s/%v: %v", iter, fam.Name, v, err)
			}
			if res.Ratio > 1.5000001 && !strings.Contains(res.Algorithm, "fallback") {
				t.Fatalf("iter %d %s/%v: certified ratio %f > 3/2 (algo %s)",
					iter, fam.Name, v, res.Ratio, res.Algorithm)
			}
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	for a, want := range map[Algorithm]string{
		Auto: "auto", TwoApprox: "2-approximation",
		EpsilonSearch: "(3/2+eps)-approximation", Exact32: "3/2-approximation",
	} {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
}

func TestVerify(t *testing.T) {
	in := exampleInstance()
	res, err := Solve(in, Preemptive, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(in, Preemptive, res); err != nil {
		t.Fatalf("genuine result rejected: %v", err)
	}
	// Wrong variant.
	if err := Verify(in, Splittable, res); err == nil {
		t.Error("wrong variant accepted")
	}
	// Tampered makespan claim.
	bad := *res
	bad.Makespan = bad.Makespan.AddInt(1)
	if err := Verify(in, Preemptive, &bad); err == nil {
		t.Error("tampered makespan accepted")
	}
	// Inflated lower bound claim.
	bad = *res
	bad.LowerBound = bad.Makespan.AddInt(5)
	if err := Verify(in, Preemptive, &bad); err == nil {
		t.Error("inflated lower bound accepted")
	}
	// Nil handling.
	if err := Verify(nil, Preemptive, res); err == nil {
		t.Error("nil instance accepted")
	}
	if err := Verify(in, Preemptive, nil); err == nil {
		t.Error("nil result accepted")
	}
}
